/**
 * @file
 * Temporal-opportunity analysis of a workload's miss sequence with
 * Sequitur: coverage bound, oracle stream lengths, and the n-gram
 * lookup statistics behind Figures 3 and 4.
 *
 *   $ ./examples/opportunity_analysis --workload "Web Search"
 */

#include <iostream>

#include "analysis/coverage.h"
#include "common/cli.h"
#include "common/table_format.h"
#include "prefetch/nlookup.h"
#include "sequitur/opportunity.h"
#include "workloads/server_workload.h"

using namespace domino;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const std::uint64_t accesses = args.getU64("n", 400'000);
    const std::uint64_t seed = args.getU64("seed", 1);
    const std::string name = args.get("workload", "OLTP");

    WorkloadParams wl;
    if (!findWorkload(name, wl)) {
        std::cerr << "unknown workload: " << name << "\n";
        std::cerr << "available:";
        for (const auto &n : suiteNames())
            std::cerr << " \"" << n << "\"";
        std::cerr << "\n";
        return 1;
    }

    std::cout << "\n=== Temporal opportunity of " << wl.name
              << " (" << accesses << " accesses) ===\n\n";

    ServerWorkload src(wl, seed, accesses);
    const auto misses = baselineMissSequence(src);
    std::cout << "L1-D miss sequence: " << misses.size()
              << " misses\n\n";

    const OpportunityResult opp = analyzeOpportunity(misses);
    std::cout << "Sequitur opportunity: "
              << formatPct(opp.coverage())
              << " of misses are inside repeated streams\n"
              << "Oracle streams: " << opp.streamCount
              << ", mean length "
              << formatFixed(opp.meanStreamLength(), 2) << "\n\n";

    std::cout << "Stream-length distribution (Figure 12 buckets):\n";
    TextTable hist({"Length", "Streams", "Cumulative"});
    const EdgeHistogram &h = opp.streamLengths;
    for (std::size_t b = 0; b < h.buckets(); ++b) {
        hist.newRow();
        hist.cell(b + 1 < h.buckets()
                  ? "<= " + std::to_string(h.edge(b))
                  : std::string("more"));
        hist.cell(h.count(b));
        hist.cellPct(h.cumulative(b));
    }
    hist.print(std::cout);

    std::cout << "\nLookup-depth statistics (Figures 3 and 4):\n";
    NGramAnalyzer an(5);
    for (const LineAddr m : misses)
        an.observe(m);
    TextTable lookup({"Depth", "Match rate", "Correct | match"});
    for (unsigned n = 1; n <= 5; ++n) {
        lookup.newRow();
        lookup.cell(std::uint64_t{n});
        lookup.cellPct(an.stats(n).matchFraction());
        lookup.cellPct(an.stats(n).correctFraction());
    }
    lookup.print(std::cout);

    std::cout << "\nHot recurring streams (top 5 by volume):\n";
    TextTable top({"Occurrences", "Length", "Prefix"});
    for (const auto &stream : topStreams(misses, 5)) {
        top.newRow();
        top.cell(std::uint64_t{stream.occurrences});
        top.cell(stream.length);
        std::string prefix;
        for (const LineAddr l : stream.prefix)
            prefix += (prefix.empty() ? "" : " ") + std::to_string(l);
        top.cell(prefix + " ...");
    }
    top.print(std::cout);

    std::cout << "\nReading: single-address matches are plentiful"
              << " but often wrong; pairs are scarcer but much\n"
              << "more accurate -- Domino's lookup uses both.\n";
    return 0;
}
