/**
 * @file
 * Domain study: the OLTP workload (pointer-chasing over shared
 * index structures) under every evaluated prefetcher -- coverage,
 * overpredictions, and timing speedup in one report.
 *
 *   $ ./examples/oltp_prefetch_study [--n 400000] [--seed 1]
 *                                    [--workload OLTP]
 */

#include <iostream>

#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "common/cli.h"
#include "common/table_format.h"
#include "sim/timing_sim.h"
#include "workloads/server_workload.h"

using namespace domino;

namespace
{

TimingResult
timingRun(const WorkloadParams &wl, const std::string &tech,
          const FactoryConfig &factory, std::uint64_t seed,
          std::uint64_t accesses)
{
    SystemConfig sys;
    sys.llcBytes = 512 * 1024;  // scaled, see DESIGN.md
    std::vector<std::unique_ptr<ServerWorkload>> sources;
    std::vector<std::unique_ptr<Prefetcher>> prefetchers;
    std::vector<CoreSetup> setups;
    for (unsigned c = 0; c < sys.cores; ++c) {
        sources.push_back(std::make_unique<ServerWorkload>(
            wl, seed + 31 * c, accesses / sys.cores));
        CoreSetup setup;
        setup.source = sources.back().get();
        if (!tech.empty()) {
            prefetchers.push_back(makePrefetcher(tech, factory));
            setup.prefetcher = prefetchers.back().get();
        }
        setup.mlpFactor = wl.mlpFactor;
        setup.instPerAccess = wl.instPerAccess;
        setups.push_back(setup);
    }
    TimingSimulator sim(sys);
    return sim.run(setups);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const std::uint64_t accesses = args.getU64("n", 400'000);
    const std::uint64_t seed = args.getU64("seed", 1);
    const std::string name = args.get("workload", "OLTP");

    WorkloadParams wl;
    if (!findWorkload(name, wl)) {
        std::cerr << "unknown workload: " << name << "\n";
        return 1;
    }

    std::cout << "\n=== " << wl.name << " under the evaluated "
              << "prefetchers (degree 4) ===\n\n";

    const TimingResult baseline =
        timingRun(wl, "", FactoryConfig{}, seed, accesses);

    TextTable table({"Prefetcher", "Coverage", "Overpredictions",
                     "Metadata", "Speedup"});
    for (const std::string tech :
         {"VLDP", "ISB", "STMS", "Digram", "Domino",
          "VLDP+Domino"}) {
        FactoryConfig f;
        f.degree = 4;
        f.samplingProb = 0.5;

        auto pf = makePrefetcher(tech, f);
        ServerWorkload src(wl, seed, accesses);
        CoverageSimulator sim;
        const CoverageResult r = sim.run(src, pf.get());

        const TimingResult t =
            timingRun(wl, tech, f, seed, accesses);

        table.newRow();
        table.cell(tech);
        table.cellPct(r.coverage());
        table.cellPct(r.overpredictionRate());
        table.cell(formatBytes(r.metadata.readBytes() +
                               r.metadata.writeBytes()));
        table.cellPct(t.speedupOver(baseline) - 1.0);
    }
    table.print(std::cout);

    std::cout << "\nReading: Domino pairs STMS-level coverage with"
              << " Digram-level overpredictions, and its first\n"
              << "prefetch needs one off-chip round trip instead of"
              << " two -- see bench_fig14_speedup --naive.\n";
    return 0;
}
