/**
 * @file
 * Trace tooling: generate a synthetic server trace, persist it in
 * the binary trace format, reload it, and verify the round trip --
 * the workflow for plugging external traces (e.g. converted
 * ChampSim traces) into the simulators.
 *
 *   $ ./examples/trace_capture --workload OLTP --out /tmp/oltp.dtr
 */

#include <iostream>

#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "common/cli.h"
#include "common/table_format.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "workloads/server_workload.h"

using namespace domino;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const std::uint64_t accesses = args.getU64("n", 200'000);
    const std::uint64_t seed = args.getU64("seed", 1);
    const std::string name = args.get("workload", "OLTP");
    const std::string path =
        args.get("out", "/tmp/domino_example_trace.dtr");

    WorkloadParams wl;
    if (!findWorkload(name, wl)) {
        std::cerr << "unknown workload: " << name << "\n";
        return 1;
    }

    std::cout << "\n=== Capturing " << accesses << " accesses of "
              << wl.name << " ===\n\n";
    const TraceBuffer trace = generateTrace(wl, seed, accesses);

    const TraceStats stats = computeTraceStats(trace);
    TextTable t({"Metric", "Value"});
    t.newRow();
    t.cell("Accesses");
    t.cell(stats.accesses);
    t.newRow();
    t.cell("Distinct lines");
    t.cell(stats.distinctLines);
    t.newRow();
    t.cell("Footprint");
    t.cell(formatBytes(stats.footprintBytes()));
    t.newRow();
    t.cell("Distinct PCs");
    t.cell(stats.distinctPcs);
    t.newRow();
    t.cell("Line reuse");
    t.cellPct(stats.lineReuseFraction);
    t.newRow();
    t.cell("Same-page successor");
    t.cellPct(stats.samePageFraction);
    t.print(std::cout);

    const IoResult wrote = writeTrace(path, trace);
    if (!wrote.ok) {
        std::cerr << "write failed: " << wrote.error << "\n";
        return 1;
    }
    std::cout << "\nwrote " << path << "\n";

    TraceBuffer loaded;
    const IoResult read = readTrace(path, loaded);
    if (!read.ok) {
        std::cerr << "read failed: " << read.error << "\n";
        return 1;
    }
    bool identical = loaded.size() == trace.size();
    for (std::size_t i = 0; identical && i < trace.size(); ++i)
        identical = loaded[i] == trace[i];
    std::cout << "round trip: "
              << (identical ? "identical" : "MISMATCH") << "\n";

    // Use the reloaded trace exactly like a live workload source.
    FactoryConfig f;
    f.degree = 4;
    auto pf = makePrefetcher("Domino", f);
    CoverageSimulator sim;
    const CoverageResult r = sim.run(loaded, pf.get());
    std::cout << "Domino coverage on the reloaded trace: "
              << formatPct(r.coverage()) << "\n";
    return identical ? 0 : 1;
}
