/**
 * @file
 * Quickstart: build a Domino prefetcher, feed it a recurring miss
 * stream, and watch the one-round-trip first prefetch and the
 * two-address confirmation at work.
 *
 *   $ ./examples/quickstart
 */

#include <iostream>
#include <vector>

#include "domino/domino_prefetcher.h"

using namespace domino;

namespace
{

/** A sink that narrates every action the prefetcher takes. */
class NarratingSink : public PrefetchSink
{
  public:
    void
    issue(LineAddr line, std::uint32_t stream_id,
          unsigned metadata_trips) override
    {
        std::cout << "    -> prefetch line " << line << " (stream "
                  << stream_id << ", " << metadata_trips
                  << " serial metadata trip(s))\n";
        buffered.push_back({line, stream_id});
    }

    void
    dropStream(std::uint32_t stream_id) override
    {
        std::cout << "    -> drop stream " << stream_id << "\n";
        for (std::size_t i = 0; i < buffered.size();) {
            if (buffered[i].second == stream_id)
                buffered.erase(buffered.begin() +
                               static_cast<std::ptrdiff_t>(i));
            else
                ++i;
        }
    }

    /** Feed a demand access: prefetch-buffer hit or miss. */
    void
    demand(DominoPrefetcher &pf, LineAddr line)
    {
        TriggerEvent event;
        event.line = line;
        for (std::size_t i = 0; i < buffered.size(); ++i) {
            if (buffered[i].first == line) {
                event.wasPrefetchHit = true;
                event.hitStreamId = buffered[i].second;
                buffered.erase(buffered.begin() +
                               static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
        std::cout << "  demand line " << line
                  << (event.wasPrefetchHit
                      ? "  [PREFETCH HIT]" : "  [miss]")
                  << "\n";
        pf.onTrigger(event, *this);
    }

  private:
    std::vector<std::pair<LineAddr, std::uint32_t>> buffered;
};

} // anonymous namespace

int
main()
{
    // A Domino prefetcher with always-on index updates so the tiny
    // example trains instantly (real configs sample at 12.5 %).
    DominoConfig config;
    config.degree = 2;
    config.samplingProb = 1.0;
    DominoPrefetcher domino(config);
    NarratingSink sink;

    // Two temporal streams that share their first miss address 100
    // -- exactly the ambiguity that defeats single-address lookup.
    const std::vector<LineAddr> stream_a = {100, 11, 12, 13, 14};
    const std::vector<LineAddr> stream_b = {100, 51, 52, 53, 54};

    std::cout << "== training: one pass over each stream ==\n";
    for (const LineAddr l : stream_a)
        sink.demand(domino, l);
    for (const LineAddr l : stream_b)
        sink.demand(domino, l);

    std::cout << "\n== replaying stream A ==\n"
              << "(the miss of 100 fetches its EIT row and issues\n"
              << " ONE speculative prefetch after one round trip;\n"
              << " the next miss, 11, matches the (100, 11) entry\n"
              << " and locks the correct stream)\n";
    for (const LineAddr l : stream_a)
        sink.demand(domino, l);

    std::cout << "\n== replaying stream B ==\n";
    for (const LineAddr l : stream_b)
        sink.demand(domino, l);

    const DominoCounters &c = domino.counters();
    std::cout << "\nDomino counters: " << c.embryosCreated
              << " embryos, " << c.confirmedByMiss
              << " confirmed by miss, " << c.confirmedByHit
              << " confirmed by hit, " << c.pairMisses
              << " pair misses\n"
              << "Off-chip metadata: "
              << domino.metadata().readBlocks << " row reads, "
              << domino.metadata().writeBlocks << " row writes\n";
    return 0;
}
