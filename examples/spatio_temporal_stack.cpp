/**
 * @file
 * Spatio-temporal stacking (Figure 16): run VLDP, Domino, and the
 * VLDP+Domino stack over a workload and decompose where each
 * technique's coverage comes from.
 *
 *   $ ./examples/spatio_temporal_stack --workload "Data Serving"
 */

#include <iostream>

#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "common/cli.h"
#include "common/table_format.h"
#include "workloads/server_workload.h"

using namespace domino;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const std::uint64_t accesses = args.getU64("n", 400'000);
    const std::uint64_t seed = args.getU64("seed", 1);
    const std::string name = args.get("workload", "Data Serving");

    WorkloadParams wl;
    if (!findWorkload(name, wl)) {
        std::cerr << "unknown workload: " << name << "\n";
        return 1;
    }

    std::cout << "\n=== Spatio-temporal prefetching on " << wl.name
              << " ===\n"
              << "(spatial stream fraction of this workload: "
              << formatPct(wl.spatialFraction) << "; spatial\n"
              << " replays land on fresh pages "
              << formatPct(wl.spatialNewPageProb)
              << " of the time -- only a spatial\n"
              << " prefetcher can cover those)\n\n";

    TextTable table({"Prefetcher", "Coverage", "Overpredictions",
                     "Issued"});
    double cov_vldp = 0, cov_domino = 0, cov_stack = 0;
    for (const std::string tech : {"VLDP", "Domino",
                                   "VLDP+Domino"}) {
        FactoryConfig f;
        f.degree = 4;
        f.samplingProb = 0.5;
        auto pf = makePrefetcher(tech, f);
        ServerWorkload src(wl, seed, accesses);
        CoverageSimulator sim;
        const CoverageResult r = sim.run(src, pf.get());
        table.newRow();
        table.cell(tech);
        table.cellPct(r.coverage());
        table.cellPct(r.overpredictionRate());
        table.cell(r.issued);
        if (tech == "VLDP")
            cov_vldp = r.coverage();
        else if (tech == "Domino")
            cov_domino = r.coverage();
        else
            cov_stack = r.coverage();
    }
    table.print(std::cout);

    std::cout << "\nThe stack covers "
              << formatPct(cov_stack - cov_vldp)
              << " more misses than VLDP alone and "
              << formatPct(cov_stack - cov_domino)
              << " more than Domino alone:\n"
              << "the techniques target disjoint miss classes "
              << "(in-page delta runs vs. recurring\n"
              << "arbitrary-address streams), so stacking them is "
              << "nearly additive.\n";
    return 0;
}
