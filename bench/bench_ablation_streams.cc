/**
 * @file
 * Ablation: number of simultaneously tracked active streams.
 *
 * The paper configures STMS, Digram, and Domino with four active
 * streams.  This sweep shows why: one slot thrashes whenever
 * contexts interleave, two-to-four capture the concurrency of the
 * server workloads, and more than four adds little.
 */

#include "bench_common.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    const std::string tech = args.get("prefetcher", "Domino");
    banner("Ablation: active-stream slots (" + tech +
           ", degree 4)", opts);

    const std::vector<unsigned> slot_counts = {1, 2, 4, 8};
    const auto workloads = selectedWorkloads(opts, args);

    const auto cells = runWorkloadGrid(
        opts, workloads, slot_counts.size(),
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            FactoryConfig f = defaultFactory(args, 4, seed);
            f.activeStreams = slot_counts[config];
            auto pf = makePrefetcher(tech, f);
            TraceView src = cachedTrace(wl, seed, opts.accesses);
            CoverageSimulator sim;
            return sim.run(src, pf.get()).coverage();
        });

    std::vector<std::string> headers = {"Workload"};
    for (const unsigned n : slot_counts)
        headers.push_back(std::to_string(n) + " slots");
    TextTable table(headers);
    std::vector<RunningStat> avg(slot_counts.size());

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        table.newRow();
        table.cell(workloads[w].name);
        for (std::size_t i = 0; i < slot_counts.size(); ++i) {
            const double cov = cells[w * slot_counts.size() + i];
            table.cellPct(cov);
            avg[i].add(cov);
        }
    }

    table.newRow();
    table.cell("Average");
    for (std::size_t i = 0; i < slot_counts.size(); ++i)
        table.cellPct(avg[i].mean());

    emit(table, opts);
    return 0;
}
