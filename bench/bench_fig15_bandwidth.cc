/**
 * @file
 * Figure 15: off-chip traffic overhead of STMS, Digram, and Domino
 * over the no-prefetcher baseline, split into incorrect prefetches,
 * metadata updates, and metadata reads; plus the bandwidth
 * utilisation discussion of Section V.D.
 *
 * Headline shapes: STMS has the highest overhead (overpredictions
 * dominate); Digram and Domino are the cheapest; Domino reads less
 * metadata than STMS because it restarts streams less often.
 *
 * --sampling-sweep runs the DESIGN.md ablation over the index
 * update sampling probability.
 */

#include <iostream>

#include "bench_common.h"
#include "sim/timing_sim.h"

using namespace domino;
using namespace domino::bench;

namespace
{

struct TrafficRow
{
    double incorrect = 0;
    double update = 0;
    double read = 0;
    double bandwidthGBs = 0;
    double utilisation = 0;
};

TrafficRow
runOne(const WorkloadParams &wl, const std::string &tech,
       const FactoryConfig &factory, const SystemConfig &sys,
       std::uint64_t seed, std::uint64_t accesses)
{
    std::vector<TraceView> sources;
    std::vector<std::unique_ptr<Prefetcher>> prefetchers;
    std::vector<CoreSetup> setups;
    sources.reserve(sys.cores);
    for (unsigned c = 0; c < sys.cores; ++c) {
        sources.push_back(
            cachedTrace(wl, seed + c * 977, accesses));
        CoreSetup setup;
        setup.source = &sources.back();
        if (!tech.empty()) {
            prefetchers.push_back(makePrefetcher(tech, factory));
            setup.prefetcher = prefetchers.back().get();
        }
        setup.mlpFactor = wl.mlpFactor;
        setup.instPerAccess = wl.instPerAccess;
        setups.push_back(setup);
    }
    TimingSimulator sim(sys);
    const TimingResult r = sim.run(setups);

    TrafficRow row;
    const double base =
        static_cast<double>(r.traffic.demandBytes +
                            r.traffic.usefulPrefetchBytes);
    if (base > 0) {
        row.incorrect = r.traffic.incorrectPrefetchBytes / base;
        row.update = r.traffic.metadataUpdateBytes / base;
        row.read = r.traffic.metadataReadBytes / base;
    }
    row.bandwidthGBs = r.bandwidthGBs(sys.mem.coreGhz);
    row.utilisation = row.bandwidthGBs / sys.mem.peakBandwidthGBs;
    return row;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    const SystemConfig sys = systemFromCli(args);
    // Same per-core budget policy as bench_fig14_speedup: the 50 k
    // floor holds at the seed-era core counts (<= 8, byte-identical
    // outputs) and scales down past that, so --cores 16..64 from
    // systemFromCli keeps the total budget bounded.
    const std::uint64_t floor_per_core =
        sys.cores <= 8 ? 50'000 : 400'000 / sys.cores;
    const std::uint64_t per_core = std::max<std::uint64_t>(
        opts.accesses / sys.cores, floor_per_core);
    const std::vector<std::string> techniques =
        {"STMS", "Digram", "Domino"};
    const auto workloads = selectedWorkloads(opts, args);

    if (args.getBool("sampling-sweep")) {
        banner("Ablation: traffic overhead vs sampling probability "
               "(Domino)", opts);
        const std::vector<double> sampling =
            {0.0625, 0.125, 0.25, 0.5, 1.0};

        struct SweepCell
        {
            double coverage = 0;
            double update = 0;
            double read = 0;
        };

        const auto cells = runWorkloadGrid(
            opts, workloads, sampling.size(),
            [&](const WorkloadParams &wl, std::size_t config,
                std::uint64_t seed) {
                FactoryConfig f = defaultFactory(args, 4, seed);
                f.samplingProb = sampling[config];
                // Coverage from the trace-based simulator, over
                // the shared packed image.
                auto pf = makePrefetcher("Domino", f);
                const auto image =
                    cachedReplayImage(wl, seed, opts.accesses);
                CoverageSimulator csim;
                const CoverageResult cr =
                    csim.runMany(*image, {pf.get()}).front();
                const TrafficRow row = runOne(
                    wl, "Domino", f, sys, seed, per_core);
                return SweepCell{cr.coverage(), row.update,
                                 row.read};
            });

        TextTable table({"Workload", "Sampling", "Coverage",
                         "Update", "Read"});
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            for (std::size_t s = 0; s < sampling.size(); ++s) {
                const SweepCell &r = cells[w * sampling.size() + s];
                table.newRow();
                table.cell(workloads[w].name);
                table.cell(sampling[s], 4);
                table.cellPct(r.coverage);
                table.cellPct(r.update);
                table.cellPct(r.read);
            }
        }
        emit(table, opts);
        return 0;
    }

    banner("Figure 15: off-chip traffic overhead over baseline",
           opts);

    const auto cells = runWorkloadGrid(
        opts, workloads, techniques.size(),
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            // The paper's sampling probability (12.5 %) is the
            // default here because this figure measures the
            // metadata traffic the sampling exists to bound.
            FactoryConfig f = defaultFactory(args, 4, seed);
            if (!args.has("sampling"))
                f.samplingProb = 0.125;
            return runOne(wl, techniques[config], f, sys, seed,
                          per_core);
        });

    TextTable table({"Workload", "Prefetcher", "Incorrect",
                     "MetaUpdate", "MetaRead", "Total",
                     "GB/s", "Utilisation"});
    std::vector<RunningStat> avg_total(techniques.size());

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t i = 0; i < techniques.size(); ++i) {
            const TrafficRow &row = cells[w * techniques.size() + i];
            const double total =
                row.incorrect + row.update + row.read;
            table.newRow();
            table.cell(workloads[w].name);
            table.cell(techniques[i]);
            table.cellPct(row.incorrect);
            table.cellPct(row.update);
            table.cellPct(row.read);
            table.cellPct(total);
            table.cell(row.bandwidthGBs);
            table.cellPct(row.utilisation);
            avg_total[i].add(total);
        }
    }

    for (std::size_t i = 0; i < techniques.size(); ++i) {
        table.newRow();
        table.cell("Average");
        table.cell(techniques[i]);
        table.cell("");
        table.cell("");
        table.cell("");
        table.cellPct(avg_total[i].mean());
        table.cell("");
        table.cell("");
    }

    emit(table, opts);
    return 0;
}
