/**
 * @file
 * Figure 9: Domino coverage as a function of History Table capacity
 * (with an effectively unlimited EIT).
 *
 * Headline shape: coverage grows with HT entries and saturates once
 * the HT retains the workload's full reuse window (the paper picks
 * 16 M entries; bench traces saturate proportionally earlier, so
 * the sweep is expressed in entries and scaled with --n).
 */

#include "bench_common.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    banner("Figure 9: Domino coverage vs HT capacity", opts);

    std::vector<std::uint64_t> sizes;
    for (std::uint64_t e = args.getU64("min", 1ULL << 12);
         e <= args.getU64("max", 1ULL << 19); e <<= 1) {
        sizes.push_back(e);
    }

    const auto workloads = selectedWorkloads(opts, args);
    // Config axis: one HT capacity per column.
    const auto cells = runWorkloadGrid(
        opts, workloads, sizes.size(),
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            FactoryConfig f = defaultFactory(args, 4, seed);
            f.htEntries = sizes[config];
            f.eitRows = 1ULL << 22;  // effectively unlimited
            auto pf = makePrefetcher("Domino", f);
            TraceView src = cachedTrace(wl, seed, opts.accesses);
            CoverageSimulator sim;
            return sim.run(src, pf.get()).coverage();
        });

    std::vector<std::string> headers = {"Workload"};
    for (const auto e : sizes) {
        headers.push_back(e >= (1ULL << 20)
            ? std::to_string(e >> 20) + "M"
            : std::to_string(e >> 10) + "K");
    }
    TextTable table(headers);
    std::vector<RunningStat> avg(sizes.size());

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        table.newRow();
        table.cell(workloads[w].name);
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const double cov = cells[w * sizes.size() + i];
            table.cellPct(cov);
            avg[i].add(cov);
        }
    }

    table.newRow();
    table.cell("Average");
    for (std::size_t i = 0; i < sizes.size(); ++i)
        table.cellPct(avg[i].mean());

    emit(table, opts);
    return 0;
}
