/**
 * @file
 * Ablation: prefetch degree sweep (1/2/4/8) for one technique.
 *
 * The paper evaluates degrees 1 and 4 (Figures 11 and 13) and notes
 * that higher degree buys coverage and timeliness at the cost of
 * overpredictions -- fastest-growing for single-address lookup.
 * This sweep prints both axes per degree.
 */

#include "bench_common.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    const std::string tech = args.get("prefetcher", "Domino");
    banner("Ablation: prefetch degree (" + tech + ")", opts);

    const std::vector<unsigned> degrees = {1, 2, 4, 8};
    TextTable table({"Workload", "Degree", "Coverage",
                     "Overpredictions"});
    std::vector<RunningStat> avg_cov(degrees.size());
    std::vector<RunningStat> avg_over(degrees.size());

    for (const auto &wl : selectedWorkloads(opts, args)) {
        for (std::size_t i = 0; i < degrees.size(); ++i) {
            FactoryConfig f = defaultFactory(args, degrees[i]);
            auto pf = makePrefetcher(tech, f);
            ServerWorkload src(wl, opts.seed, opts.accesses);
            CoverageSimulator sim;
            const CoverageResult r = sim.run(src, pf.get());
            table.newRow();
            table.cell(wl.name);
            table.cell(std::uint64_t{degrees[i]});
            table.cellPct(r.coverage());
            table.cellPct(r.overpredictionRate());
            avg_cov[i].add(r.coverage());
            avg_over[i].add(r.overpredictionRate());
        }
    }

    for (std::size_t i = 0; i < degrees.size(); ++i) {
        table.newRow();
        table.cell("Average");
        table.cell(std::uint64_t{degrees[i]});
        table.cellPct(avg_cov[i].mean());
        table.cellPct(avg_over[i].mean());
    }

    emit(table, opts);
    return 0;
}
