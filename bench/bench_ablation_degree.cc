/**
 * @file
 * Ablation: prefetch degree sweep (1/2/4/8) for one technique.
 *
 * The paper evaluates degrees 1 and 4 (Figures 11 and 13) and notes
 * that higher degree buys coverage and timeliness at the cost of
 * overpredictions -- fastest-growing for single-address lookup.
 * This sweep prints both axes per degree.
 */

#include "bench_common.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    const std::string tech = args.get("prefetcher", "Domino");
    banner("Ablation: prefetch degree (" + tech + ")", opts);

    struct CellResult
    {
        double coverage = 0.0;
        double overprediction = 0.0;
    };

    const std::vector<unsigned> degrees = {1, 2, 4, 8};
    const auto workloads = selectedWorkloads(opts, args);

    const auto cells = runWorkloadGrid(
        opts, workloads, degrees.size(),
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            FactoryConfig f =
                defaultFactory(args, degrees[config], seed);
            auto pf = makePrefetcher(tech, f);
            TraceView src = cachedTrace(wl, seed, opts.accesses);
            CoverageSimulator sim;
            const CoverageResult r = sim.run(src, pf.get());
            return CellResult{r.coverage(), r.overpredictionRate()};
        });

    TextTable table({"Workload", "Degree", "Coverage",
                     "Overpredictions"});
    std::vector<RunningStat> avg_cov(degrees.size());
    std::vector<RunningStat> avg_over(degrees.size());

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t i = 0; i < degrees.size(); ++i) {
            const CellResult &r = cells[w * degrees.size() + i];
            table.newRow();
            table.cell(workloads[w].name);
            table.cell(std::uint64_t{degrees[i]});
            table.cellPct(r.coverage);
            table.cellPct(r.overprediction);
            avg_cov[i].add(r.coverage);
            avg_over[i].add(r.overprediction);
        }
    }

    for (std::size_t i = 0; i < degrees.size(); ++i) {
        table.newRow();
        table.cell("Average");
        table.cell(std::uint64_t{degrees[i]});
        table.cellPct(avg_cov[i].mean());
        table.cellPct(avg_over[i].mean());
    }

    emit(table, opts);
    return 0;
}
