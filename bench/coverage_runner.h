/**
 * @file
 * Shared runner for the coverage-comparison figures (11 and 13).
 */

#ifndef DOMINO_BENCH_COVERAGE_RUNNER_H
#define DOMINO_BENCH_COVERAGE_RUNNER_H

#include "bench_common.h"
#include "sequitur/opportunity.h"

namespace domino::bench
{

/**
 * Run the evaluated-prefetcher roster plus the Sequitur opportunity
 * over the selected workloads and print the coverage /
 * overprediction table (the layout of Figures 11 and 13).  Cells
 * fan out over the experiment runner (--jobs).
 */
inline void
runCoverageComparison(const CliArgs &args, unsigned default_degree,
                      const std::string &title)
{
    const BenchOptions opts = BenchOptions::fromCli(args);
    const unsigned degree = static_cast<unsigned>(
        args.getU64("degree", default_degree));
    banner(title, opts);

    const auto workloads = selectedWorkloads(opts, args);
    const std::vector<std::string> techniques = evaluatedPrefetchers();
    // Config 0 runs the whole technique roster in lockstep off one
    // trace replay (the L1 evolution is prefetcher-independent, so
    // the per-lane results match separate runs exactly); config 1
    // is the Sequitur opportunity over the memoised miss sequence.
    const std::size_t configs = 2;

    struct CellResult
    {
        std::vector<double> coverage;
        std::vector<double> overprediction;
    };

    const auto cells = runWorkloadGrid(
        opts, workloads, configs,
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            CellResult out;
            if (config == 0) {
                const FactoryConfig f =
                    defaultFactory(args, degree, seed);
                std::vector<std::unique_ptr<Prefetcher>> owned;
                std::vector<Prefetcher *> roster;
                for (const std::string &tech : techniques) {
                    owned.push_back(makePrefetcher(tech, f));
                    roster.push_back(owned.back().get());
                }
                CoverageSimulator sim;
                std::vector<CoverageResult> results;
                if (opts.stream) {
                    // Out-of-core replay: same lockstep lanes off a
                    // bounded streaming cursor over the spilled
                    // trace -- byte-identical results by the
                    // streaming determinism contract.
                    StreamingTraceSource src = streamedTrace(
                        opts, wl, seed, opts.accesses);
                    results = sim.runMany(src, roster);
                    CHECK(src.audit().empty());
                } else {
                    const auto image =
                        cachedReplayImage(wl, seed, opts.accesses);
                    results = sim.runMany(*image, roster);
                }
                for (const CoverageResult &r : results) {
                    out.coverage.push_back(r.coverage());
                    out.overprediction.push_back(
                        r.overpredictionRate());
                }
            } else {
                const auto misses = cachedBaselineMisses(
                    opts, wl, seed, opts.accesses);
                out.coverage.push_back(
                    benchOpportunity(opts, *misses).coverage());
                out.overprediction.push_back(0.0);
            }
            return out;
        });

    // Rows keep the original (technique..., Sequitur) order.
    const std::size_t rows = techniques.size() + 1;
    TextTable table({"Workload", "Prefetcher", "Coverage",
                     "Uncovered", "Overpredictions"});
    std::vector<RunningStat> avg_cov(rows);
    std::vector<RunningStat> avg_over(rows);

    const auto techName = [&](std::size_t c) {
        return c < techniques.size() ? techniques[c]
                                     : std::string("Sequitur");
    };
    const auto cellValue = [&](std::size_t w, std::size_t c,
                               double &cov, double &over) {
        const CellResult &r = c < techniques.size()
            ? cells[w * configs]
            : cells[w * configs + 1];
        const std::size_t i = c < techniques.size() ? c : 0;
        cov = r.coverage[i];
        over = r.overprediction[i];
    };

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t c = 0; c < rows; ++c) {
            double cov = 0.0, over = 0.0;
            cellValue(w, c, cov, over);
            table.newRow();
            table.cell(workloads[w].name);
            table.cell(techName(c));
            table.cellPct(cov);
            table.cellPct(1.0 - cov);
            table.cellPct(over);
            avg_cov[c].add(cov);
            avg_over[c].add(over);
        }
    }

    for (std::size_t c = 0; c < rows; ++c) {
        table.newRow();
        table.cell("Average");
        table.cell(techName(c));
        table.cellPct(avg_cov[c].mean());
        table.cellPct(1.0 - avg_cov[c].mean());
        table.cellPct(avg_over[c].mean());
    }

    emit(table, opts);
}

} // namespace domino::bench

#endif // DOMINO_BENCH_COVERAGE_RUNNER_H
