/**
 * @file
 * Shared runner for the coverage-comparison figures (11 and 13).
 */

#ifndef DOMINO_BENCH_COVERAGE_RUNNER_H
#define DOMINO_BENCH_COVERAGE_RUNNER_H

#include "bench_common.h"
#include "sequitur/opportunity.h"

namespace domino::bench
{

/**
 * Run the evaluated-prefetcher roster plus the Sequitur opportunity
 * over the selected workloads and print the coverage /
 * overprediction table (the layout of Figures 11 and 13).  Cells
 * fan out over the experiment runner (--jobs).
 */
inline void
runCoverageComparison(const CliArgs &args, unsigned default_degree,
                      const std::string &title)
{
    const BenchOptions opts = BenchOptions::fromCli(args);
    const unsigned degree = static_cast<unsigned>(
        args.getU64("degree", default_degree));
    banner(title, opts);

    const auto workloads = selectedWorkloads(opts, args);
    const std::vector<std::string> techniques = evaluatedPrefetchers();
    // One config per technique plus the Sequitur opportunity.
    const std::size_t configs = techniques.size() + 1;

    struct CellResult
    {
        double coverage = 0.0;
        double overprediction = 0.0;
    };

    const auto cells = runWorkloadGrid(
        opts, workloads, configs,
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            CellResult out;
            ServerWorkload src(wl, seed, opts.accesses);
            if (config < techniques.size()) {
                FactoryConfig f = defaultFactory(args, degree);
                auto pf = makePrefetcher(techniques[config], f);
                CoverageSimulator sim;
                const CoverageResult r = sim.run(src, pf.get());
                out.coverage = r.coverage();
                out.overprediction = r.overpredictionRate();
            } else {
                const auto misses = baselineMissSequence(src);
                out.coverage = analyzeOpportunity(misses).coverage();
            }
            return out;
        });

    TextTable table({"Workload", "Prefetcher", "Coverage",
                     "Uncovered", "Overpredictions"});
    std::vector<RunningStat> avg_cov(configs);
    std::vector<RunningStat> avg_over(configs);

    const auto techName = [&](std::size_t c) {
        return c < techniques.size() ? techniques[c]
                                     : std::string("Sequitur");
    };

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t c = 0; c < configs; ++c) {
            const CellResult &r = cells[w * configs + c];
            table.newRow();
            table.cell(workloads[w].name);
            table.cell(techName(c));
            table.cellPct(r.coverage);
            table.cellPct(1.0 - r.coverage);
            table.cellPct(r.overprediction);
            avg_cov[c].add(r.coverage);
            avg_over[c].add(r.overprediction);
        }
    }

    for (std::size_t c = 0; c < configs; ++c) {
        table.newRow();
        table.cell("Average");
        table.cell(techName(c));
        table.cellPct(avg_cov[c].mean());
        table.cellPct(1.0 - avg_cov[c].mean());
        table.cellPct(avg_over[c].mean());
    }

    emit(table, opts);
}

} // namespace domino::bench

#endif // DOMINO_BENCH_COVERAGE_RUNNER_H
