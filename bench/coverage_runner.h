/**
 * @file
 * Shared runner for the coverage-comparison figures (11 and 13).
 */

#ifndef DOMINO_BENCH_COVERAGE_RUNNER_H
#define DOMINO_BENCH_COVERAGE_RUNNER_H

#include "bench_common.h"
#include "sequitur/opportunity.h"

namespace domino::bench
{

/**
 * Run the evaluated-prefetcher roster plus the Sequitur opportunity
 * over the selected workloads and print the coverage /
 * overprediction table (the layout of Figures 11 and 13).
 */
inline void
runCoverageComparison(const CliArgs &args, unsigned default_degree,
                      const std::string &title)
{
    const BenchOptions opts = BenchOptions::fromCli(args);
    const unsigned degree = static_cast<unsigned>(
        args.getU64("degree", default_degree));
    banner(title, opts);

    TextTable table({"Workload", "Prefetcher", "Coverage",
                     "Uncovered", "Overpredictions"});
    const std::vector<std::string> techniques = evaluatedPrefetchers();
    std::vector<RunningStat> avg_cov(techniques.size() + 1);
    std::vector<RunningStat> avg_over(techniques.size() + 1);

    for (const auto &wl : selectedWorkloads(opts, args)) {
        std::size_t col = 0;
        for (const auto &tech : techniques) {
            FactoryConfig f = defaultFactory(args, degree);
            auto pf = makePrefetcher(tech, f);
            ServerWorkload src(wl, opts.seed, opts.accesses);
            CoverageSimulator sim;
            const CoverageResult r = sim.run(src, pf.get());

            table.newRow();
            table.cell(wl.name);
            table.cell(tech);
            table.cellPct(r.coverage());
            table.cellPct(1.0 - r.coverage());
            table.cellPct(r.overpredictionRate());
            avg_cov[col].add(r.coverage());
            avg_over[col].add(r.overpredictionRate());
            ++col;
        }

        ServerWorkload src(wl, opts.seed, opts.accesses);
        const auto misses = baselineMissSequence(src);
        const OpportunityResult opp = analyzeOpportunity(misses);
        table.newRow();
        table.cell(wl.name);
        table.cell("Sequitur");
        table.cellPct(opp.coverage());
        table.cellPct(1.0 - opp.coverage());
        table.cellPct(0.0);
        avg_cov[col].add(opp.coverage());
        avg_over[col].add(0.0);
    }

    for (std::size_t i = 0; i <= techniques.size(); ++i) {
        table.newRow();
        table.cell("Average");
        table.cell(i < techniques.size() ? techniques[i]
                                         : std::string("Sequitur"));
        table.cellPct(avg_cov[i].mean());
        table.cellPct(1.0 - avg_cov[i].mean());
        table.cellPct(avg_over[i].mean());
    }

    emit(table, opts);
}

} // namespace domino::bench

#endif // DOMINO_BENCH_COVERAGE_RUNNER_H
