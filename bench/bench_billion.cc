/**
 * @file
 * Billion-access pipeline demonstrator: one Data Serving run at a
 * scale where nothing may be resident, exercising every
 * bounded-memory layer end to end and reporting peak RSS so the
 * "bounded" claim is a measured number, not a promise.
 *
 * Pipeline (all O(buffer) memory, never O(trace)):
 *   1. spill  -- materialise the workload once as an on-disk
 *      DOMTRACE via one streamed generation pass (trace cache disk
 *      tier; reused across runs, so re-invocations skip straight to
 *      replay).
 *   2. replay -- a single streamed pass through the coverage
 *      simulator drives the Domino lane *and* the windowed
 *      opportunity oracle at once: every trigger (baseline miss) is
 *      pushed into a WindowedOpportunityAnalyzer through
 *      CoverageOptions::triggerSink, so the miss sequence is never
 *      materialised.  The trigger sequence is prefetcher-independent
 *      (see analysis/coverage.h), so the oracle sees exactly the
 *      baseline miss sequence.
 *
 * Output is one JSON document with phase wall times, the coverage
 * and opportunity numbers, trace-cache tier counters, and
 * peak_rss_mib from getrusage(): the number EXPERIMENTS.md's
 * billion-run recipe tabulates against its < 4 GiB target.
 *
 * Defaults are sized for a quick smoke run; the headline run is
 *   bench_billion --n 1000000000
 * The oracle window defaults to 2^20 misses here (unlike the figure
 * harnesses, whose default of 0 preserves byte-identical captures):
 * a whole-trace grammar at 10^9 accesses is exactly the wall this
 * harness exists to demonstrate the absence of.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.h"
#include "analysis/factory.h"
#include "sequitur/windowed_oracle.h"

using namespace domino;
using namespace domino::bench;

namespace
{

/** Seconds elapsed since @p start. */
double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Peak resident set of this process in MiB (ru_maxrss is KiB on
 *  Linux). */
double
peakRssMib()
{
    struct rusage usage = {};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    BenchOptions opts = BenchOptions::fromCli(args);
    // This harness *is* the out-of-core pipeline: always streamed,
    // always through the disk tier, windowed oracle by default.
    opts.stream = true;
    if (opts.workload.empty())
        opts.workload = "Data Serving";
    if (!args.has("oracle-window"))
        opts.oracleWindow = std::uint64_t{1} << 20;
    traceCache().setSpillDir(opts.spillDir);

    const auto workloads = selectedWorkloads(opts, args);
    const WorkloadParams wl = workloads.front();
    const unsigned degree =
        static_cast<unsigned>(args.getU64("degree", 4));
    const FactoryConfig f = defaultFactory(args, degree, opts.seed);

    // --- Phase 1: ensure the DOMTRACE spill (streamed generation).
    const auto spill_start = std::chrono::steady_clock::now();
    std::string trace_path;
    const IoResult spilled = traceCache().tracePath(
        wl.cacheKey(opts.seed, opts.accesses),
        [&] {
            return std::make_unique<ServerWorkload>(wl, opts.seed,
                                                    opts.accesses);
        },
        trace_path);
    if (!spilled.ok) {
        std::cerr << "bench_billion: spill failed: " << spilled.error
                  << '\n';
        return 1;
    }
    const double spill_s = secondsSince(spill_start);
    std::uint64_t trace_bytes = 0;
    {
        std::ifstream in(trace_path,
                         std::ios::binary | std::ios::ate);
        if (in)
            trace_bytes =
                static_cast<std::uint64_t>(in.tellg());
    }

    // --- Phase 2: one streamed replay driving the Domino lane and
    // the windowed oracle together.
    const auto replay_start = std::chrono::steady_clock::now();
    OracleWindowOptions wopt;
    wopt.window = opts.oracleWindow;
    wopt.digestCapacity = opts.oracleLru;
    WindowedOpportunityAnalyzer oracle(wopt);

    CoverageOptions copt;
    copt.triggerSink = [&oracle](LineAddr line) {
        oracle.push(line);
    };
    CoverageSimulator sim(copt);
    auto pf = makePrefetcher("Domino", f);

    StreamingTraceSource src =
        streamedTrace(opts, wl, opts.seed, opts.accesses);
    const CoverageResult domino =
        sim.runMany(src, {pf.get()}).front();
    CHECK(src.audit().empty());
    CHECK(oracle.audit().empty());
    const OpportunityResult opp = oracle.finish();
    const double replay_s = secondsSince(replay_start);
    CHECK_EQ(opp.totalMisses, domino.baselineMisses());

    // --- Emit JSON.
    std::cout << "{\n"
              << "  \"workload\": \"" << wl.name << "\",\n"
              << "  \"n\": " << opts.accesses << ",\n"
              << "  \"seed\": " << opts.seed << ",\n"
              << "  \"stream_chunk\": " << opts.streamChunk << ",\n"
              << "  \"mmap_tier\": "
              << (opts.mmap ? "true" : "false") << ",\n"
              << "  \"oracle_window\": " << opts.oracleWindow
              << ",\n"
              << "  \"oracle_lru\": " << opts.oracleLru << ",\n"
              << "  \"trace_path\": \"" << trace_path << "\",\n"
              << "  \"trace_bytes\": " << trace_bytes << ",\n"
              << "  \"spill_seconds\": " << spill_s << ",\n"
              << "  \"replay_seconds\": " << replay_s << ",\n"
              << "  \"accesses\": " << domino.accesses << ",\n"
              << "  \"baseline_misses\": "
              << domino.baselineMisses() << ",\n"
              << "  \"domino_coverage\": " << domino.coverage()
              << ",\n"
              << "  \"domino_overprediction\": "
              << domino.overpredictionRate() << ",\n"
              << "  \"domino_mean_stream_run\": "
              << domino.meanStreamRun() << ",\n"
              << "  \"oracle_coverage\": " << opp.coverage()
              << ",\n"
              << "  \"oracle_mean_stream\": "
              << opp.meanStreamLength() << ",\n"
              << "  \"oracle_streams\": " << opp.streamCount
              << ",\n"
              << "  \"cache_disk_hits\": "
              << traceCache().diskHits() << ",\n"
              << "  \"cache_mmap_hits\": "
              << traceCache().mmapHits() << ",\n"
              << "  \"cache_spills\": " << traceCache().spills()
              << ",\n"
              << "  \"peak_rss_mib\": " << peakRssMib() << "\n"
              << "}\n";
    return 0;
}
