/**
 * @file
 * Shared harness glue for the figure-reproduction benchmarks: a
 * common CLI (--n, --seed, --jobs, --csv, --json, --workload),
 * parallel (workload x config) fan-out through the experiment
 * runner, and header printing.
 */

#ifndef DOMINO_BENCH_BENCH_COMMON_H
#define DOMINO_BENCH_BENCH_COMMON_H

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table_format.h"
#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "runner/experiment_grid.h"
#include "sequitur/windowed_oracle.h"
#include "sim/system_config.h"
#include "trace/streaming_source.h"
#include "trace/trace_cache.h"
#include "workloads/server_workload.h"
#include "workloads/workload_params.h"

namespace domino::bench
{

/**
 * The process-wide trace cache every harness cell draws from.
 *
 * One figure row fans several config cells over the runner's pool
 * and all of them replay the identical access stream (the cell seed
 * is positional, never config-dependent), so the first cell to ask
 * generates the trace and the rest share the immutable buffer.
 * With --stream it also carries the disk tier (see BenchOptions).
 */
inline TraceCache &
traceCache()
{
    static TraceCache cache;
    return cache;
}

/** Options common to every figure harness. */
struct BenchOptions
{
    /** Accesses per workload run (0 = workload default). */
    std::uint64_t accesses = 600'000;
    std::uint64_t seed = 1;
    /** Worker threads for the cell sweep (0 = all hardware threads). */
    unsigned jobs = 1;
    bool csv = false;
    bool json = false;
    /** Paint a live cells-completed line on stderr. */
    bool progress = false;
    /** Restrict to one workload (empty = whole suite). */
    std::string workload;
    /** Replay spilled on-disk traces instead of resident buffers
     *  (the out-of-core substrate; byte-identical output). */
    bool stream = false;
    /** Streaming buffer capacity in records (--stream-chunk): the
     *  run's memory budget knob.  Must be >= 1 (a zero-record
     *  buffer could never make refill progress; the streaming layer
     *  rejects it and so does CLI parsing). */
    std::uint32_t streamChunk = defaultStreamBufferRecords;
    /** Disk-tier root for spilled traces/images (--spill-dir). */
    std::string spillDir = ".domino-spill";
    /** Serve disk-tier replay images as zero-copy views of a shared
     *  read-only file mapping (--mmap; implies the disk tier).
     *  Byte-identical output -- sharded sibling processes just fault
     *  the same page-cache pages instead of each materialising a
     *  private heap copy. */
    bool mmap = false;
    /** Misses per opportunity-oracle window (--oracle-window; 0 =
     *  whole trace, the default -- existing figures stay
     *  byte-identical).  With a window, oracle memory is O(window)
     *  instead of O(trace). */
    std::uint64_t oracleWindow = 0;
    /** Cross-window digest LRU capacity (--oracle-lru). */
    std::size_t oracleLru = std::size_t{1} << 20;
    /** Multi-process workload sharding (--shards K --shard i). */
    runner::ShardSpec shardSpec;

    static BenchOptions
    fromCli(const CliArgs &args)
    {
        BenchOptions o;
        o.accesses = args.getU64("n", o.accesses);
        o.seed = args.getU64("seed", o.seed);
        o.jobs = static_cast<unsigned>(args.getU64("jobs", o.jobs));
        if (o.jobs == 0)
            o.jobs = runner::ThreadPool::defaultJobs();
        o.csv = args.getBool("csv");
        o.json = args.getBool("json");
        o.progress = args.getBool("progress");
        o.workload = args.get("workload");
        o.stream = args.getBool("stream");
        o.streamChunk = static_cast<std::uint32_t>(
            args.getU64("stream-chunk", o.streamChunk));
        o.spillDir = args.get("spill-dir").empty()
            ? o.spillDir : args.get("spill-dir");
        o.mmap = args.getBool("mmap");
        o.oracleWindow = args.getU64("oracle-window",
                                     o.oracleWindow);
        o.oracleLru = static_cast<std::size_t>(
            args.getU64("oracle-lru", o.oracleLru));
        o.shardSpec.shards = static_cast<unsigned>(
            args.getU64("shards", o.shardSpec.shards));
        o.shardSpec.shard = static_cast<unsigned>(
            args.getU64("shard", o.shardSpec.shard));
        // Fail loudly at parse time, not mid-sweep.
        if (const std::string err = o.shardSpec.validate();
            !err.empty()) {
            std::cerr << "bench: " << err << '\n';
            std::exit(2);
        }
        if (o.streamChunk == 0) {
            std::cerr << "bench: --stream-chunk must be at least 1\n";
            std::exit(2);
        }
        if (o.oracleLru == 0) {
            std::cerr << "bench: --oracle-lru must be at least 1\n";
            std::exit(2);
        }
        // The disk and mmap tiers ride the process-wide cache;
        // configure them before any cell fans out.
        if (o.stream || o.mmap)
            traceCache().setSpillDir(o.spillDir);
        if (o.mmap)
            traceCache().setMmapTier(true);
        return o;
    }
};

/**
 * The simulated system from the command line -- one source of truth
 * for every timing/multicore harness, so "the system" means the same
 * thing in bench_fig14_speedup, bench_fig15_bandwidth, and
 * bench_multicore_scaling.
 *
 * Geometry: --cores, --llc-kb (default 512: the synthetic footprints
 * are ~100x smaller than the paper's multi-gigabyte datasets, so the
 * LLC is scaled down to preserve the property that most data misses
 * reach memory; pass --llc-kb 4096 for the Table I size), --llc-ways,
 * --l1-kb, --l1-ways, --mshrs, --buffer-blocks.
 *
 * Latency/bandwidth: --l1-lat, --llc-lat, --mem-lat, --metadata-lat
 * (0 = same DRAM as data), --ghz, --peak-bw.
 *
 * Multicore substrate: --shared (one HT/EIT for all cores),
 * --free-metadata (zero-cost-metadata control: count metadata bytes
 * but charge no bandwidth), --chunk (interleaver chunk length).
 */
inline SystemConfig
systemFromCli(const CliArgs &args)
{
    SystemConfig sys;
    sys.cores = static_cast<unsigned>(
        args.getU64("cores", sys.cores));
    sys.llcBytes = args.getU64("llc-kb", 512) * 1024;
    sys.llcWays = static_cast<std::uint32_t>(
        args.getU64("llc-ways", sys.llcWays));
    sys.l1Bytes = args.getU64("l1-kb", sys.l1Bytes / 1024) * 1024;
    sys.l1Ways = static_cast<std::uint32_t>(
        args.getU64("l1-ways", sys.l1Ways));
    sys.l1Mshrs = static_cast<unsigned>(
        args.getU64("mshrs", sys.l1Mshrs));
    sys.prefetchBufferBlocks = static_cast<std::uint32_t>(
        args.getU64("buffer-blocks", sys.prefetchBufferBlocks));
    sys.mem.l1Latency = args.getU64("l1-lat", sys.mem.l1Latency);
    sys.mem.llcLatency = args.getU64("llc-lat", sys.mem.llcLatency);
    sys.mem.memLatency = args.getU64("mem-lat", sys.mem.memLatency);
    sys.mem.metadataTripCycles =
        args.getU64("metadata-lat", sys.mem.metadataTripCycles);
    sys.mem.coreGhz = args.getDouble("ghz", sys.mem.coreGhz);
    sys.mem.peakBandwidthGBs =
        args.getDouble("peak-bw", sys.mem.peakBandwidthGBs);
    sys.multicore.sharedMetadata = args.getBool("shared");
    sys.multicore.chargeMetadata = !args.getBool("free-metadata");
    sys.multicore.shardChunk = static_cast<std::uint32_t>(
        args.getU64("chunk", sys.multicore.shardChunk));
    sys.multicore.occupancyWindow =
        args.getU64("occ-window", sys.multicore.occupancyWindow);
    return sys;
}

/**
 * A fresh zero-copy cursor over the shared trace for
 * (params, seed, limit), generating it on first request
 * (single-flight under the runner's pool).
 */
inline TraceView
cachedTrace(const WorkloadParams &params, std::uint64_t seed,
            std::uint64_t limit)
{
    return traceCache().view(
        params.cacheKey(seed, limit),
        [&] { return generateTrace(params, seed, limit); });
}

/**
 * The memoised packed replay image of the same shared trace, for
 * the zero-copy simulation paths (CoverageSimulator::runMany over
 * an image, CoreBinding::image).  Built once per (params, seed,
 * limit) key and shared by every cell that replays the trace.
 */
inline std::shared_ptr<const ReplayImage>
cachedReplayImage(const WorkloadParams &params, std::uint64_t seed,
                  std::uint64_t limit)
{
    const std::string key = params.cacheKey(seed, limit);
    return traceCache().image(
        key, [&] { return generateTrace(params, seed, limit); });
}

/**
 * A bounded-memory streaming cursor over the spilled on-disk trace
 * for (params, seed, limit): the disk tier materialises the
 * workload once as a DOMTRACE file (generated via one streamed
 * pass, never fully resident) and every cell replays it through a
 * buffer of opts.streamChunk records.  The yielded sequence is
 * record-for-record identical to cachedTrace's, so figure output is
 * byte-identical (the determinism contract's requirement for
 * adopting the disk tier).  Aborts on I/O failure: a Release-build
 * bench must not silently truncate a figure.
 */
inline StreamingTraceSource
streamedTrace(const BenchOptions &opts, const WorkloadParams &params,
              std::uint64_t seed, std::uint64_t limit)
{
    StreamingTraceSource src;
    const IoResult res = traceCache().stream(
        params.cacheKey(seed, limit),
        [&] {
            return std::make_unique<ServerWorkload>(params, seed,
                                                    limit);
        },
        src, opts.streamChunk);
    if (!res.ok) {
        std::cerr << "bench: streamed trace failed: " << res.error
                  << '\n';
        std::abort();
    }
    return src;
}

/** The shard-view equivalent for the multicore paths: stream only
 *  core @p core's (cores, chunk) shard of the spilled trace. */
inline StreamingTraceSource
streamedShard(const BenchOptions &opts, const WorkloadParams &params,
              std::uint64_t seed, std::uint64_t limit, unsigned cores,
              unsigned core, std::uint32_t chunk)
{
    std::string path;
    const IoResult res = traceCache().tracePath(
        params.cacheKey(seed, limit),
        [&] {
            return std::make_unique<ServerWorkload>(params, seed,
                                                    limit);
        },
        path);
    StreamingTraceSource src;
    const IoResult open = res.ok
        ? src.openShard(path, cores, core, chunk, opts.streamChunk)
        : res;
    if (!open.ok) {
        std::cerr << "bench: streamed shard failed: " << open.error
                  << '\n';
        std::abort();
    }
    return src;
}

/**
 * The memoised L1-filtered baseline miss sequence for the same
 * key, so the analysis cells (opportunity/Sequitur/n-gram columns)
 * run the baseline filter once per workload instead of once per
 * config cell.
 */
inline std::shared_ptr<const std::vector<LineAddr>>
cachedBaselineMisses(const WorkloadParams &params, std::uint64_t seed,
                     std::uint64_t limit)
{
    return traceCache().missSequence(
        "miss:" + params.cacheKey(seed, limit), [&] {
            TraceView src = cachedTrace(params, seed, limit);
            return baselineMissSequence(src);
        });
}

/**
 * Streaming-aware overload: with --stream the baseline L1 filter
 * reads the spilled trace through a bounded buffer instead of
 * materialising it (the filter is single-pass).  Only the derived
 * miss sequence stays resident -- the documented memory-tier
 * boundary (DESIGN.md "Out-of-core substrate").
 */
inline std::shared_ptr<const std::vector<LineAddr>>
cachedBaselineMisses(const BenchOptions &opts,
                     const WorkloadParams &params, std::uint64_t seed,
                     std::uint64_t limit)
{
    if (!opts.stream)
        return cachedBaselineMisses(params, seed, limit);
    return traceCache().missSequence(
        "miss:" + params.cacheKey(seed, limit), [&] {
            StreamingTraceSource src =
                streamedTrace(opts, params, seed, limit);
            auto misses = baselineMissSequence(src);
            CHECK(src.audit().empty());
            return misses;
        });
}

/**
 * The opportunity oracle under the harness's options: the
 * whole-trace analyzeOpportunity() by default (byte-identical to
 * every pre-windowing figure capture), the O(window)-memory
 * windowed analyzer when --oracle-window is set.
 */
inline OpportunityResult
benchOpportunity(const BenchOptions &opts,
                 const std::vector<LineAddr> &misses)
{
    if (opts.oracleWindow == 0)
        return analyzeOpportunity(misses);
    OracleWindowOptions w;
    w.window = opts.oracleWindow;
    w.digestCapacity = opts.oracleLru;
    return analyzeOpportunityWindowed(misses, w);
}

/** The workloads selected by the options, with ad-hoc overrides
 *  from the command line (--streams, --theta, --shared-prefix:
 *  tuning/ablation aids).  With --shards K --shard i, keep only the
 *  workloads this shard owns -- by position in the list the
 *  *unsharded* run would use, so the sharded row values are
 *  bit-identical to the unsharded run's (rep-0 seeding is
 *  positional; see runner::ShardSpec). */
inline std::vector<WorkloadParams>
selectedWorkloads(const BenchOptions &opts, const CliArgs &args)
{
    std::vector<WorkloadParams> full;
    for (const auto &p : serverSuite())
        if (opts.workload.empty() || p.name == opts.workload)
            full.push_back(p);
    if (full.empty()) {
        std::cerr << "unknown --workload \"" << opts.workload
                  << "\"; valid names:\n";
        for (const auto &p : serverSuite())
            std::cerr << "  " << p.name << "\n";
        std::exit(2);
    }
    std::vector<WorkloadParams> out;
    for (std::size_t i = 0; i < full.size(); ++i)
        if (opts.shardSpec.owns(i))
            out.push_back(full[i]);
    for (auto &p : out) {
        p.numStreams = static_cast<std::uint32_t>(
            args.getU64("streams", p.numStreams));
        p.zipfTheta = args.getDouble("theta", p.zipfTheta);
        p.sharedPrefixProb =
            args.getDouble("shared-prefix", p.sharedPrefixProb);
        p.sharedElementProb =
            args.getDouble("shared-element", p.sharedElementProb);
        p.interleaveProb =
            args.getDouble("interleave", p.interleaveProb);
        p.sharedPoolLines = static_cast<std::uint32_t>(
            args.getU64("pool", p.sharedPoolLines));
        p.shortLenMean = args.getDouble("short-len", p.shortLenMean);
        p.longLenMean = args.getDouble("long-len", p.longLenMean);
        p.longFraction = args.getDouble("long-frac", p.longFraction);
        p.noiseRate = args.getDouble("noise", p.noiseRate);
    }
    return out;
}

/** Print a figure banner. */
inline void
banner(const std::string &title, const BenchOptions &opts)
{
    if (opts.csv || opts.json)
        return;
    std::cout << "\n=== " << title << " ===\n"
              << "(synthetic server suite, " << opts.accesses
              << " accesses/workload, seed " << opts.seed << ")\n\n";
}

/** Emit a table in the selected format. */
inline void
emit(const TextTable &table, const BenchOptions &opts)
{
    if (opts.json)
        table.printJson(std::cout);
    else if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

/**
 * Fan one figure's (workload x config) cells across the runner.
 *
 * `fn(workload, configIndex, seed)` evaluates one cell and returns
 * its measurements; the result vector is in workload-major order
 * (index `w * configs + c`), identical for every `--jobs` value.
 * The per-cell `seed` equals `opts.seed` today (single-rep grids);
 * harnesses must use it rather than `opts.seed` so that replicated
 * grids keep deterministic positional seeding.
 */
template <typename Fn>
auto
runWorkloadGrid(const BenchOptions &opts,
                const std::vector<WorkloadParams> &workloads,
                std::size_t configs, Fn fn)
{
    runner::ExperimentGrid grid(
        {workloads.size(), configs, 1}, opts.seed);
    ProgressMeter progress(grid.size(), opts.progress);
    auto results = grid.run(
        opts.jobs,
        [&](const runner::Cell &cell) {
            return fn(workloads[cell.workload], cell.config,
                      cell.seed);
        },
        &progress);
    progress.finish();
    return results;
}

/**
 * Default factory configuration scaled to the bench trace lengths
 * (the paper's 16 M-entry HT / 2 M-row EIT are far larger than any
 * bench trace's miss count; pass --paper-scale for them).
 *
 * @param seed the *per-cell* seed the grid handed to the cell
 *        function.  For today's single-rep grids it equals the CLI
 *        --seed, but replicated grids derive a distinct seed per
 *        rep, and the prefetcher PRNG must follow it (hashing the
 *        CLI seed here would give every replica an identically
 *        seeded prefetcher).
 */
inline FactoryConfig
defaultFactory(const CliArgs &args, unsigned degree,
               std::uint64_t seed)
{
    FactoryConfig f;
    f.degree = degree;
    f.htEntries = args.getU64("ht", 1ULL << 20);
    f.eitRows = args.getU64("eit", 1ULL << 17);
    // Default sampling is 0.5 rather than the paper's 0.125: the
    // paper's value is tuned for billion-miss full-system runs,
    // while bench traces are ~10^5 misses, where 0.125 starves the
    // index tables.  Pass --sampling 0.125 for the paper value.
    f.samplingProb = args.getDouble("sampling", 0.5);
    f.entriesPerSuper = static_cast<unsigned>(
        args.getU64("entries", f.entriesPerSuper));
    f.maxReplayPerStream = static_cast<unsigned>(
        args.getU64("max-replay", f.maxReplayPerStream));
    f.seed = seed ^ 0xfac;
    if (args.getBool("paper-scale")) {
        f.htEntries = 16ULL << 20;
        f.eitRows = 2ULL << 20;
    }
    // Adaptive degree throttling (src/adaptive): --throttle wraps
    // every constructed technique in a ThrottledPrefetcher; the
    // remaining flags tune the AIMD controller.  Without --throttle
    // no wrapper is built and output is byte-identical to the
    // pre-adaptive harnesses.
    f.throttle.enabled = args.getBool("throttle");
    f.throttle.epochTriggers = static_cast<std::uint32_t>(
        args.getU64("throttle-epoch", f.throttle.epochTriggers));
    f.throttle.degreeMin = static_cast<std::uint32_t>(
        args.getU64("degree-min", f.throttle.degreeMin));
    f.throttle.degreeMax = static_cast<std::uint32_t>(args.getU64(
        "degree-max",
        std::max<std::uint64_t>(f.throttle.degreeMax, f.degree)));
    f.throttle.accuracyLowPm = static_cast<std::uint32_t>(
        args.getU64("acc-low", f.throttle.accuracyLowPm));
    f.throttle.accuracyHighPm = static_cast<std::uint32_t>(
        args.getU64("acc-high", f.throttle.accuracyHighPm));
    f.throttle.occupancyHighPm = static_cast<std::uint32_t>(
        args.getU64("occ-high", f.throttle.occupancyHighPm));
    f.throttle.suppressMeta = args.getBool("suppress-meta");
    return f;
}

} // namespace domino::bench

#endif // DOMINO_BENCH_BENCH_COMMON_H
