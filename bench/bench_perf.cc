/**
 * @file
 * Perf-regression harness: times the hot paths of the figure suite
 * (trace generation, the baseline L1 filter, one coverage run per
 * evaluated technique, and EIT update/lookup micro-ops) and emits
 * one JSON document on stdout.
 *
 * scripts/bench_perf.py wraps this binary: it adds machine info,
 * writes BENCH_PERF.json, and diffs the numbers against the
 * committed baseline so a future PR cannot silently regress the
 * suite's throughput.  Timings use the best (minimum) of --repeats
 * runs, which is the standard way to suppress scheduler noise for
 * CPU-bound loops.
 *
 * Usage:
 *   bench_perf [--n 120000] [--seed 1] [--repeats 3] [--quick]
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/flat_map.h"
#include "domino/eit.h"
#include "multicore/multicore_sim.h"
#include "trace/replay_image.h"
#include "trace/replay_spill.h"
#include "trace/streaming_source.h"

using namespace domino;
using namespace domino::bench;

namespace
{

struct CellTiming
{
    std::string name;
    /** Work items per repeat (accesses or table operations). */
    std::uint64_t ops = 0;
    /** Best wall-clock nanoseconds over all repeats. */
    double bestNs = 0.0;
};

/** Time fn() `repeats` times; keep the best run. */
template <typename Fn>
CellTiming
timeCell(const std::string &name, std::uint64_t ops, unsigned repeats,
         Fn fn)
{
    using Clock = std::chrono::steady_clock;
    CellTiming cell;
    cell.name = name;
    cell.ops = ops;
    for (unsigned r = 0; r < repeats; ++r) {
        const auto start = Clock::now();
        fn();
        const auto stop = Clock::now();
        const double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                stop - start)
                .count());
        if (r == 0 || ns < cell.bestNs)
            cell.bestNs = ns;
    }
    return cell;
}

/** Volatile sink so the compiler cannot elide a measured loop. */
volatile std::uint64_t sink = 0;

} // anonymous namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const std::uint64_t n = args.getU64("n", 120'000);
    const std::uint64_t seed = args.getU64("seed", 1);
    unsigned repeats =
        static_cast<unsigned>(args.getU64("repeats", 3));
    if (args.getBool("quick"))
        repeats = 1;

    const WorkloadParams wl = serverSuite().front();
    std::vector<CellTiming> cells;

    // --- Trace generation (the cost the trace cache deduplicates).
    cells.push_back(timeCell("trace_generation", n, repeats, [&] {
        const TraceBuffer trace = generateTrace(wl, seed, n);
        sink = sink + trace.size();
    }));

    // One shared trace for the simulation cells, like the figure
    // harnesses get from the cache.
    const TraceBuffer trace = generateTrace(wl, seed, n);

    // --- Baseline L1 filter (memoised per key by the cache).
    cells.push_back(timeCell("baseline_filter", n, repeats, [&] {
        TraceBuffer src = trace;
        sink = sink + baselineMissSequence(src).size();
    }));

    // The packed replay image the simulation cells iterate -- built
    // once, like the figure harnesses get from the trace cache.
    const ReplayImage image(trace);

    // --- One coverage simulation per evaluated technique, over the
    // zero-copy image path the coverage figures use.
    FactoryConfig f;
    f.degree = 4;
    f.htEntries = 1ULL << 20;
    f.eitRows = 1ULL << 17;
    f.samplingProb = 0.5;
    f.seed = seed ^ 0xfac;
    for (const std::string &tech : evaluatedPrefetchers()) {
        cells.push_back(
            timeCell("coverage_" + tech, n, repeats, [&] {
                auto pf = makePrefetcher(tech, f);
                CoverageSimulator sim;
                sink = sink +
                    sim.runMany(image, {pf.get()}).front().covered;
            }));
    }

    // --- Out-of-core substrate: spill throughput (the disk tier's
    // generation path), a bounded-buffer streamed scan, and one
    // streamed coverage run -- the resident-vs-streamed gap
    // EXPERIMENTS.md tabulates.
    const std::string spill_path = "bench_perf.domtrace";
    cells.push_back(timeCell("trace_spill_write", n, repeats, [&] {
        TraceBuffer src = trace;
        std::uint64_t written = 0;
        const IoResult res =
            writeTraceStreamed(spill_path, src, &written);
        CHECK(res.ok);
        sink = sink + written;
    }));
    cells.push_back(timeCell("stream_scan", n, repeats, [&] {
        StreamingTraceSource src;
        CHECK(src.open(spill_path).ok);
        Access a;
        std::uint64_t lines = 0;
        while (src.next(a))
            lines += a.line();
        CHECK(src.audit().empty());
        sink = sink + lines;
    }));
    cells.push_back(
        timeCell("stream_coverage_Domino", n, repeats, [&] {
            auto pf = makePrefetcher("Domino", f);
            StreamingTraceSource src;
            CHECK(src.open(spill_path).ok);
            CoverageSimulator sim;
            sink = sink +
                sim.runMany(src, {pf.get()}).front().covered;
            CHECK(src.audit().empty());
        }));
    std::remove(spill_path.c_str());

    // --- Replay-image load tiers: spill the packed image once,
    // then time the buffered heap reload against the mapped
    // zero-copy open (full lane-checksum validation in both, so the
    // comparison is like for like).  trace_mmap_load staying ahead
    // of trace_image_load is the mmap tier's reason to exist; the
    // compare gate keeps it honest.
    const std::string image_path = "bench_perf.domimage";
    CHECK(spillReplayImage(image_path, image, "bench_perf").ok);
    cells.push_back(timeCell("trace_image_load", n, repeats, [&] {
        ReplayImage loaded;
        CHECK(loadReplayImage(image_path, loaded).ok);
        sink = sink + loaded.size();
    }));
    cells.push_back(timeCell("trace_mmap_load", n, repeats, [&] {
        MappedReplayImage mapped;
        CHECK(mapped.open(image_path).ok);
        ReplayImage view;
        CHECK(mapped.image(view).ok);
        sink = sink + view.size();
    }));
    std::remove(image_path.c_str());

    // --- Opportunity oracles over the baseline miss sequence: the
    // whole-trace Sequitur walk and the windowed streaming analyzer
    // (64 Ki-miss windows, the bounded-memory path bench_billion
    // rides).
    {
        TraceBuffer src = trace;
        const std::vector<LineAddr> misses =
            baselineMissSequence(src);
        cells.push_back(timeCell(
            "oracle_whole_trace", misses.size(), repeats, [&] {
                sink = sink +
                    analyzeOpportunity(misses).coveredMisses;
            }));
        cells.push_back(timeCell(
            "oracle_windowed", misses.size(), repeats, [&] {
                OracleWindowOptions w;
                w.window = 64 * 1024;
                sink = sink +
                    analyzeOpportunityWindowed(misses, w)
                        .coveredMisses;
            }));
    }

    // --- Multicore runs: Domino over the sharded image with the
    // charged off-chip channel (the whole-substrate hot path of
    // bench_multicore_scaling), at the default 4-core geometry, at
    // 8 cores (the index-heap scheduler), with a shared HT/EIT, at
    // 16 cores (the many-core contention regime), and at 32 cores
    // under the adaptive degree throttle (src/adaptive), so neither
    // the heap scheduler at scale nor the wrapper's interposed
    // issue path can silently regress.
    const auto multicoreCell = [&](const std::string &name,
                                   unsigned cores, bool shared,
                                   bool throttled) {
        cells.push_back(timeCell(name, n, repeats, [&, cores,
                                                    shared,
                                                    throttled] {
            SystemConfig sys;
            sys.cores = cores;
            sys.llcBytes = 512 * 1024;
            sys.multicore.sharedMetadata = shared;
            FactoryConfig fc = f;
            fc.throttle.enabled = throttled;
            PrefetcherSet set = makePrefetcherSet(
                "Domino", fc, sys.cores,
                shared ? MetadataScope::Shared
                       : MetadataScope::Private);
            std::vector<CoreBinding> bindings;
            for (unsigned c = 0; c < sys.cores; ++c) {
                CoreBinding binding;
                binding.image = &image;
                binding.imageCore = c;
                binding.prefetcher = set.perCore[c];
                binding.observer = set.observers[c];
                bindings.push_back(binding);
            }
            MultiCoreSim sim(sys);
            sink = sink + sim.run(bindings).traffic.totalBytes();
        }));
    };
    multicoreCell("multicore_4core_Domino", 4, false, false);
    multicoreCell("multicore_8core_Domino", 8, false, false);
    multicoreCell("multicore_4core_shared_Domino", 4, true, false);
    multicoreCell("multicore_16core_Domino", 16, false, false);
    multicoreCell("multicore_32core_throttled_Domino", 32, false,
                  true);

    // --- EIT micro-ops at the factory geometry, over a tag working
    // set sized like a bench trace's trigger footprint.
    const std::uint64_t tag_pool = 1ULL << 15;
    std::vector<LineAddr> tags(n);
    {
        Prng rng(seed ^ 0xe17);
        for (std::uint64_t i = 0; i < n; ++i)
            tags[i] = 1 + rng.below(tag_pool);
    }
    EitConfig eit_cfg;
    eit_cfg.rows = 1ULL << 17;
    cells.push_back(timeCell("eit_update", n, repeats, [&] {
        // Fresh table per repeat so every run does identical work.
        EnhancedIndexTable fresh(eit_cfg);
        for (std::uint64_t i = 0; i + 1 < n; ++i)
            fresh.update(tags[i], tags[i + 1], i);
        sink = sink + fresh.touchedRows();
    }));
    cells.push_back(timeCell("eit_update_batched", n, repeats, [&] {
        // The same update stream with the lookahead software
        // prefetch the batched train path uses: warm the row of a
        // tag a few updates ahead while the current one is applied.
        EnhancedIndexTable fresh(eit_cfg);
        for (std::uint64_t i = 0; i + 1 < n; ++i) {
            if (i + 8 < n)
                fresh.prefetchRow(tags[i + 8]);
            fresh.update(tags[i], tags[i + 1], i);
        }
        sink = sink + fresh.touchedRows();
    }));
    EnhancedIndexTable eit(eit_cfg);
    for (std::uint64_t i = 0; i + 1 < n; ++i)
        eit.update(tags[i], tags[i + 1], i);
    cells.push_back(timeCell("eit_lookup", n, repeats, [&] {
        std::uint64_t found = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            found += static_cast<bool>(eit.lookup(tags[i]));
        sink = sink + found;
    }));

    // --- FlatHashMap group probes (the HT/ISB index substrate):
    // half the tag pool resident, probes alternating hit and miss.
    cells.push_back(timeCell("flat_map_probe", n, repeats, [&] {
        FlatHashMap<std::uint64_t> map(tag_pool);
        for (std::uint64_t k = 1; k <= tag_pool / 2; ++k)
            map[k] = k;
        std::uint64_t found = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            found += map.find(tags[i]) != nullptr;
        sink = sink + found + map.size();
    }));

    // --- Emit JSON.
    std::cout << "{\n"
              << "  \"n\": " << n << ",\n"
              << "  \"seed\": " << seed << ",\n"
              << "  \"repeats\": " << repeats << ",\n"
              << "  \"workload\": \"" << wl.name << "\",\n"
              << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellTiming &c = cells[i];
        const double ns_per_op =
            c.ops ? c.bestNs / static_cast<double>(c.ops) : 0.0;
        const double ops_per_sec =
            c.bestNs > 0.0
                ? static_cast<double>(c.ops) * 1e9 / c.bestNs
                : 0.0;
        std::cout << "    {\"name\": \"" << c.name << "\", "
                  << "\"ops\": " << c.ops << ", "
                  << "\"ns_per_op\": " << ns_per_op << ", "
                  << "\"ops_per_sec\": " << ops_per_sec << "}"
                  << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    std::cout << "  ]\n}\n";
    return 0;
}
