/**
 * @file
 * Figure 1: read-miss coverage of the two state-of-the-art temporal
 * prefetchers (STMS, global miss sequence; ISB, PC-localized) with
 * unlimited storage, against the Sequitur opportunity.
 *
 * Headline shape: a large gap between both prefetchers and the
 * opportunity, with ISB below STMS (PC localization does not help
 * on server workloads).
 */

#include "bench_common.h"
#include "sequitur/opportunity.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    banner("Figure 1: temporal prefetcher coverage vs opportunity",
           opts);

    TextTable table({"Workload", "ISB", "STMS", "Opportunity",
                     "STMS/Opportunity"});
    RunningStat avg_isb, avg_stms, avg_opp;

    for (const auto &wl : selectedWorkloads(opts, args)) {
        double cov[2];
        const char *tech[2] = {"ISB", "STMS"};
        for (int i = 0; i < 2; ++i) {
            FactoryConfig f = defaultFactory(args, 1);
            auto pf = makePrefetcher(tech[i], f);
            ServerWorkload src(wl, opts.seed, opts.accesses);
            CoverageSimulator sim;
            cov[i] = sim.run(src, pf.get()).coverage();
        }
        ServerWorkload src(wl, opts.seed, opts.accesses);
        const auto misses = baselineMissSequence(src);
        const double opp = analyzeOpportunity(misses).coverage();

        table.newRow();
        table.cell(wl.name);
        table.cellPct(cov[0]);
        table.cellPct(cov[1]);
        table.cellPct(opp);
        table.cellPct(opp > 0 ? cov[1] / opp : 0.0);
        avg_isb.add(cov[0]);
        avg_stms.add(cov[1]);
        avg_opp.add(opp);
    }

    table.newRow();
    table.cell("Average");
    table.cellPct(avg_isb.mean());
    table.cellPct(avg_stms.mean());
    table.cellPct(avg_opp.mean());
    table.cellPct(avg_opp.mean() > 0
                  ? avg_stms.mean() / avg_opp.mean() : 0.0);

    emit(table, opts);
    return 0;
}
