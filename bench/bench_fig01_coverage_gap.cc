/**
 * @file
 * Figure 1: read-miss coverage of the two state-of-the-art temporal
 * prefetchers (STMS, global miss sequence; ISB, PC-localized) with
 * unlimited storage, against the Sequitur opportunity.
 *
 * Headline shape: a large gap between both prefetchers and the
 * opportunity, with ISB below STMS (PC localization does not help
 * on server workloads).
 */

#include "bench_common.h"
#include "sequitur/opportunity.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    banner("Figure 1: temporal prefetcher coverage vs opportunity",
           opts);

    const auto workloads = selectedWorkloads(opts, args);
    // Configs: 0 = ISB, 1 = STMS, 2 = Sequitur opportunity.
    const char *tech[2] = {"ISB", "STMS"};
    const std::size_t configs = 3;

    const auto cells = runWorkloadGrid(
        opts, workloads, configs,
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            if (config < 2) {
                FactoryConfig f = defaultFactory(args, 1, seed);
                auto pf = makePrefetcher(tech[config], f);
                CoverageSimulator sim;
                if (opts.stream) {
                    StreamingTraceSource src = streamedTrace(
                        opts, wl, seed, opts.accesses);
                    const double cov =
                        sim.run(src, pf.get()).coverage();
                    CHECK(src.audit().empty());
                    return cov;
                }
                TraceView src = cachedTrace(wl, seed, opts.accesses);
                return sim.run(src, pf.get()).coverage();
            }
            const auto misses =
                cachedBaselineMisses(opts, wl, seed, opts.accesses);
            return benchOpportunity(opts, *misses).coverage();
        });

    TextTable table({"Workload", "ISB", "STMS", "Opportunity",
                     "STMS/Opportunity"});
    RunningStat avg_isb, avg_stms, avg_opp;

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const double isb = cells[w * configs + 0];
        const double stms = cells[w * configs + 1];
        const double opp = cells[w * configs + 2];
        table.newRow();
        table.cell(workloads[w].name);
        table.cellPct(isb);
        table.cellPct(stms);
        table.cellPct(opp);
        table.cellPct(opp > 0 ? stms / opp : 0.0);
        avg_isb.add(isb);
        avg_stms.add(stms);
        avg_opp.add(opp);
    }

    table.newRow();
    table.cell("Average");
    table.cellPct(avg_isb.mean());
    table.cellPct(avg_stms.mean());
    table.cellPct(avg_opp.mean());
    table.cellPct(avg_opp.mean() > 0
                  ? avg_stms.mean() / avg_opp.mean() : 0.0);

    emit(table, opts);
    return 0;
}
