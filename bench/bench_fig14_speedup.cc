/**
 * @file
 * Figure 14: speedup over the no-prefetcher baseline for VLDP, ISB,
 * STMS, Digram, and Domino, prefetching degree 4, on the four-core
 * timing model (plus Table I via --params).
 *
 * Headline shapes: Domino has the highest speedup on most workloads
 * (coverage + one-round-trip timeliness), STMS is second; high-MLP
 * workloads (Web Search, Media Streaming) gain least despite high
 * coverage; the GMean row mirrors the paper's 16 % (Domino) vs 10 %
 * (STMS) relationship directionally.
 *
 * --naive runs the ablation: Domino with the naive two-Index-Table
 * design that needs two serial metadata trips before the first
 * prefetch of a stream.
 */

#include <iostream>

#include "bench_common.h"
#include "sim/timing_sim.h"

using namespace domino;
using namespace domino::bench;

namespace
{

void
printParams(const SystemConfig &sys)
{
    TextTable t({"Parameter", "Value"});
    t.newRow();
    t.cell("Chip");
    t.cell(std::to_string(sys.cores) + " cores, " +
           formatFixed(sys.mem.coreGhz, 0) + " GHz");
    t.newRow();
    t.cell("L1-D");
    t.cell(formatBytes(sys.l1Bytes) + ", " +
           std::to_string(sys.l1Ways) + "-way, " +
           std::to_string(sys.mem.l1Latency) + "-cycle");
    t.newRow();
    t.cell("LLC");
    t.cell(formatBytes(sys.llcBytes) + ", " +
           std::to_string(sys.llcWays) + "-way, " +
           std::to_string(sys.mem.llcLatency) + "-cycle");
    t.newRow();
    t.cell("Memory");
    t.cell(std::to_string(sys.mem.memLatency) + " cycles, " +
           formatFixed(sys.mem.peakBandwidthGBs, 1) +
           " GB/s peak");
    t.newRow();
    t.cell("Prefetch buffer");
    t.cell(std::to_string(sys.prefetchBufferBlocks) + " blocks");
    t.print(std::cout);
}

/** One timing run: all cores run the same workload (different
 *  seeds), each with its own prefetcher instance.  Per-core traces
 *  come from the shared cache, so the baseline column and every
 *  technique column replay the same buffers. */
TimingResult
runTiming(const WorkloadParams &wl, const std::string &tech,
          const FactoryConfig &factory, const SystemConfig &sys,
          std::uint64_t seed, std::uint64_t accesses)
{
    std::vector<TraceView> sources;
    std::vector<std::unique_ptr<Prefetcher>> prefetchers;
    std::vector<CoreSetup> setups;
    sources.reserve(sys.cores);
    for (unsigned c = 0; c < sys.cores; ++c) {
        sources.push_back(
            cachedTrace(wl, seed + c * 977, accesses));
        CoreSetup setup;
        setup.source = &sources.back();
        if (!tech.empty()) {
            prefetchers.push_back(makePrefetcher(tech, factory));
            setup.prefetcher = prefetchers.back().get();
        }
        setup.mlpFactor = wl.mlpFactor;
        setup.instPerAccess = wl.instPerAccess;
        setups.push_back(setup);
    }
    TimingSimulator sim(sys);
    return sim.run(setups);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    const SystemConfig sys = systemFromCli(args);

    if (args.getBool("params")) {
        std::cout << "\n=== Table I: evaluation parameters ===\n\n";
        printParams(sys);
        return 0;
    }

    banner("Figure 14: speedup over no-prefetcher baseline "
           "(degree 4, timing model)", opts);

    std::vector<std::string> techniques = evaluatedPrefetchers();
    if (args.getBool("naive"))
        techniques.push_back("Domino-naive");

    // Per-core accesses: the requested budget split across the
    // cores so the default run costs the same as the coverage
    // benches.  The 50 k floor applies at the seed-era core counts
    // (<= 8, byte-identical outputs); past that it scales down so a
    // --cores 16..64 run from systemFromCli keeps the *total*
    // budget bounded instead of exploding to cores x 50 k accesses.
    const std::uint64_t floor_per_core =
        sys.cores <= 8 ? 50'000 : 400'000 / sys.cores;
    const std::uint64_t per_core = std::max<std::uint64_t>(
        opts.accesses / sys.cores, floor_per_core);

    const auto workloads = selectedWorkloads(opts, args);
    // Config axis: 0 = no-prefetcher baseline, then one technique
    // per column; every cell is a full timing run.
    const std::size_t configs = techniques.size() + 1;

    const auto cells = runWorkloadGrid(
        opts, workloads, configs,
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            if (config == 0) {
                return runTiming(wl, "", FactoryConfig{}, sys, seed,
                                 per_core);
            }
            FactoryConfig f = defaultFactory(args, 4, seed);
            std::string tech = techniques[config - 1];
            if (tech == "Domino-naive") {
                tech = "Domino";
                f.naiveDomino = true;
            }
            return runTiming(wl, tech, f, sys, seed, per_core);
        });

    std::vector<std::string> headers = {"Workload"};
    for (const auto &t : techniques)
        headers.push_back(t);
    TextTable table(headers);
    std::vector<GeoMean> gmean(techniques.size());

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const TimingResult &baseline = cells[w * configs];
        table.newRow();
        table.cell(workloads[w].name);
        for (std::size_t i = 0; i < techniques.size(); ++i) {
            const TimingResult &r = cells[w * configs + i + 1];
            const double speedup = r.speedupOver(baseline);
            table.cellPct(speedup - 1.0);
            gmean[i].add(speedup);
        }
    }

    table.newRow();
    table.cell("GMean");
    for (std::size_t i = 0; i < techniques.size(); ++i)
        table.cellPct(gmean[i].value() - 1.0);

    emit(table, opts);
    return 0;
}
