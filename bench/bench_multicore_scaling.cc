/**
 * @file
 * Multi-core scaling study on the src/multicore substrate: one
 * workload sharded across 1/2/4/8 cores (chunked round-robin, see
 * TraceInterleaver), private L1s + prefetch buffers in front of a
 * shared LLC and a shared off-chip channel that charges demand
 * fills *and* the temporal prefetchers' HT/EIT metadata traffic.
 *
 * Techniques: no-prefetcher baseline, ISB (on-chip metadata), STMS
 * (two serial off-chip trips), Domino (one trip), and Domino-free
 * -- the zero-cost-metadata control, identical to Domino except
 * that metadata consumes no channel bandwidth and trips pay the
 * uncontended latency.  The Domino vs Domino-free gap is the cost
 * of off-chip metadata as *per-core slowdown*, not just a byte
 * count (the question Figure 15 raises and on-chip designs answer
 * differently).
 *
 * Speedups are relative to the baseline at the same core count, so
 * the columns isolate the prefetcher, not the sharding.
 *
 * --shared runs one HT/EIT instance over the union of all cores'
 * trigger streams instead of per-core private tables; --cores N
 * restricts the grid to one core count.
 */

#include <iostream>

#include "bench_common.h"
#include "analysis/multicore_report.h"

using namespace domino;
using namespace domino::bench;

namespace
{

/** One cell's flattened measurements. */
struct McCell
{
    double systemIpc = 0.0;
    double coverage = 0.0;
    double metaShare = 0.0;
    double queuePerKiloInst = 0.0;
    double bandwidthGBs = 0.0;
    double utilisation = 0.0;
    std::uint64_t metadataBytes = 0;
};

McCell
runOne(const WorkloadParams &wl, const std::string &tech,
       const CliArgs &args, const BenchOptions &opts,
       SystemConfig sys, unsigned cores, std::uint64_t seed,
       std::uint64_t accesses)
{
    sys.cores = cores;
    std::string name = tech;
    if (name == "Domino-free") {
        name = "Domino";
        sys.multicore.chargeMetadata = false;
    }

    // The shared packed image replaces per-core ShardViews: each
    // core replays its shard zero-copy (CoreBinding::image), with
    // the same (cores, shardChunk) dealing the interleaver would
    // apply.  With --stream, each core instead pulls its shard
    // through a bounded cursor over the spilled trace -- same
    // dealing, same record sequence, O(buffer) memory per core.
    std::shared_ptr<const ReplayImage> image;
    std::vector<StreamingTraceSource> shardStreams;
    if (opts.stream) {
        shardStreams.reserve(cores);
        for (unsigned c = 0; c < cores; ++c) {
            shardStreams.push_back(streamedShard(
                opts, wl, seed, accesses, cores, c,
                sys.multicore.shardChunk));
        }
    } else {
        image = cachedReplayImage(wl, seed, accesses);
    }

    const MetadataScope scope = sys.multicore.sharedMetadata
        ? MetadataScope::Shared : MetadataScope::Private;
    // The paper's sampling probability (12.5 %) is the default here
    // (as in bench_fig15): this harness measures the cost of the
    // metadata traffic that sampling exists to bound, so the tuned
    // traffic volume is the honest input.
    FactoryConfig factory = defaultFactory(args, 4, seed);
    if (!args.has("sampling"))
        factory.samplingProb = 0.125;
    PrefetcherSet set = makePrefetcherSet(name, factory, cores,
                                          scope);

    std::vector<CoreBinding> bindings;
    for (unsigned c = 0; c < cores; ++c) {
        CoreBinding binding;
        if (opts.stream)
            binding.source = &shardStreams[c];
        else {
            binding.image = image.get();
            binding.imageCore = c;
        }
        binding.prefetcher = set.perCore[c];
        binding.mlpFactor = wl.mlpFactor;
        binding.instPerAccess = wl.instPerAccess;
        bindings.push_back(binding);
    }

    MultiCoreSim sim(sys);
    const MultiCoreResult result = sim.run(bindings);
    for (const StreamingTraceSource &s : shardStreams)
        CHECK(s.audit().empty());
    const MulticoreSummary s =
        summarizeMulticore(result, sys.mem.coreGhz);

    McCell cell;
    cell.systemIpc = s.systemIpc;
    cell.coverage = s.aggregateCoverage;
    cell.metaShare = s.metadataShare;
    const std::uint64_t inst = result.totalInstructions();
    cell.queuePerKiloInst = inst
        ? 1000.0 * static_cast<double>(s.queueCycles) /
            static_cast<double>(inst)
        : 0.0;
    cell.bandwidthGBs = s.bandwidthGBs;
    cell.utilisation = s.channelUtilization;
    cell.metadataBytes = s.traffic.metadataReadBytes +
        s.traffic.metadataUpdateBytes;
    return cell;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    const SystemConfig sys = systemFromCli(args);

    std::vector<unsigned> coreCounts = {1, 2, 4, 8};
    if (args.has("cores"))
        coreCounts = {sys.cores};

    const std::vector<std::string> techniques =
        {"Baseline", "ISB", "STMS", "Domino", "Domino-free"};

    banner("Multi-core scaling: shared LLC + contended off-chip "
           "channel (metadata charged)", opts);

    const auto workloads = selectedWorkloads(opts, args);
    // Config axis: (core count, technique), core-count-major.
    const std::size_t configs =
        coreCounts.size() * techniques.size();

    const auto cells = runWorkloadGrid(
        opts, workloads, configs,
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            const unsigned cores =
                coreCounts[config / techniques.size()];
            const std::string &tech =
                techniques[config % techniques.size()];
            return runOne(wl, tech == "Baseline" ? "" : tech, args,
                          opts, sys, cores, seed, opts.accesses);
        });

    TextTable table({"Workload", "Cores", "Prefetcher", "Speedup",
                     "Coverage", "MetaShare", "Q/kinst", "GB/s",
                     "Util"});
    // GMean speedup per (core count, technique) across workloads.
    std::vector<GeoMean> gmean(configs);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t cc = 0; cc < coreCounts.size(); ++cc) {
            const std::size_t group = cc * techniques.size();
            const McCell &base = cells[w * configs + group];
            for (std::size_t t = 0; t < techniques.size(); ++t) {
                const McCell &cell =
                    cells[w * configs + group + t];
                const double speedup = base.systemIpc > 0.0
                    ? cell.systemIpc / base.systemIpc : 0.0;
                gmean[group + t].add(speedup);
                table.newRow();
                table.cell(workloads[w].name);
                table.cell(std::to_string(coreCounts[cc]));
                table.cell(techniques[t]);
                table.cellPct(speedup - 1.0);
                table.cellPct(cell.coverage);
                table.cellPct(cell.metaShare);
                table.cell(cell.queuePerKiloInst);
                table.cell(cell.bandwidthGBs);
                table.cellPct(cell.utilisation);
            }
        }
    }

    for (std::size_t cc = 0; cc < coreCounts.size(); ++cc) {
        for (std::size_t t = 1; t < techniques.size(); ++t) {
            table.newRow();
            table.cell("GMean");
            table.cell(std::to_string(coreCounts[cc]));
            table.cell(techniques[t]);
            table.cellPct(
                gmean[cc * techniques.size() + t].value() - 1.0);
            table.cell("");
            table.cell("");
            table.cell("");
            table.cell("");
            table.cell("");
        }
    }

    emit(table, opts);
    return 0;
}
