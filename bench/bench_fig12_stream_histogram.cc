/**
 * @file
 * Figure 12: cumulative histogram of Sequitur temporal-stream
 * length, bucket edges {0, 2, 4, 8, 16, 32, 64, 128, 128+}.
 *
 * Headline shape: a short-dominated distribution -- a sizable
 * fraction of streams is <= 2 (the streams Digram can never act
 * on), and the large majority is below 8.
 */

#include "bench_common.h"
#include "sequitur/opportunity.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    banner("Figure 12: Sequitur stream-length histogram "
           "(cumulative % of streams)", opts);

    struct CellResult
    {
        std::vector<double> cumulative;
        double mean = 0.0;
    };

    const auto workloads = selectedWorkloads(opts, args);
    const auto cells = runWorkloadGrid(
        opts, workloads, 1,
        [&](const WorkloadParams &wl, std::size_t,
            std::uint64_t seed) {
            const auto misses =
                cachedBaselineMisses(opts, wl, seed, opts.accesses);
            const OpportunityResult opp =
                benchOpportunity(opts, *misses);
            const EdgeHistogram &h = opp.streamLengths;
            CellResult out;
            // Buckets: 0 at index 0; the "<=2" column is cumulative
            // through index 1, and so on; "all" includes the
            // overflow.
            for (std::size_t b = 1; b + 1 < h.buckets(); ++b)
                out.cumulative.push_back(h.cumulative(b));
            out.mean = opp.meanStreamLength();
            return out;
        });

    TextTable table({"Workload", "<=2", "<=4", "<=8", "<=16",
                     "<=32", "<=64", "<=128", "all", "mean"});

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        table.newRow();
        table.cell(workloads[w].name);
        for (const double c : cells[w].cumulative)
            table.cellPct(c);
        table.cellPct(1.0);
        table.cell(cells[w].mean);
    }

    emit(table, opts);
    return 0;
}
