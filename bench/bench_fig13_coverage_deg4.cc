/**
 * @file
 * Figure 13: coverage and overpredictions of VLDP, ISB, STMS,
 * Digram and Domino at prefetching degree 4.
 *
 * Headline shapes: Domino has the highest coverage; STMS is second
 * but with roughly 2-3x Domino's overpredictions (the paper reports
 * Domino's overpredictions at one third of STMS's); Digram has the
 * fewest overpredictions but the lowest temporal coverage.
 */

#include "coverage_runner.h"

int
main(int argc, char **argv)
{
    const domino::CliArgs args(argc, argv);
    domino::bench::runCoverageComparison(
        args, 4, "Figure 13: coverage/overpredictions, degree 4");
    return 0;
}
