/**
 * @file
 * Figure 10: Domino coverage as a function of EIT rows (HT fixed),
 * plus the entries-per-super-entry ablation called out in
 * DESIGN.md (--entries-sweep).
 *
 * Headline shape: coverage saturates once the EIT holds a
 * super-entry for every hot trigger address (2 M rows in the
 * paper; proportionally earlier at bench scale).
 */

#include "bench_common.h"

using namespace domino;
using namespace domino::bench;

namespace
{

void
entriesSweep(const CliArgs &args, const BenchOptions &opts)
{
    const auto workloads = selectedWorkloads(opts, args);
    // Config axis: entries per super-entry = config + 1.
    const std::size_t configs = 4;
    const auto cells = runWorkloadGrid(
        opts, workloads, configs,
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            FactoryConfig f = defaultFactory(args, 4, seed);
            f.entriesPerSuper = static_cast<unsigned>(config + 1);
            auto pf = makePrefetcher("Domino", f);
            TraceView src = cachedTrace(wl, seed, opts.accesses);
            CoverageSimulator sim;
            return sim.run(src, pf.get()).coverage();
        });

    TextTable table({"Workload", "entries=1", "entries=2",
                     "entries=3", "entries=4"});
    std::vector<RunningStat> avg(configs);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        table.newRow();
        table.cell(workloads[w].name);
        for (std::size_t e = 0; e < configs; ++e) {
            const double cov = cells[w * configs + e];
            table.cellPct(cov);
            avg[e].add(cov);
        }
    }
    table.newRow();
    table.cell("Average");
    for (std::size_t e = 0; e < configs; ++e)
        table.cellPct(avg[e].mean());
    emit(table, opts);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);

    if (args.getBool("entries-sweep")) {
        banner("Ablation: EIT entries per super-entry", opts);
        entriesSweep(args, opts);
        return 0;
    }

    banner("Figure 10: Domino coverage vs EIT rows", opts);

    std::vector<std::uint64_t> sizes;
    for (std::uint64_t r = args.getU64("min", 1ULL << 9);
         r <= args.getU64("max", 1ULL << 17); r <<= 2) {
        sizes.push_back(r);
    }

    const auto workloads = selectedWorkloads(opts, args);
    // Config axis: one EIT row count per column.
    const auto cells = runWorkloadGrid(
        opts, workloads, sizes.size(),
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            FactoryConfig f = defaultFactory(args, 4, seed);
            f.eitRows = sizes[config];
            auto pf = makePrefetcher("Domino", f);
            TraceView src = cachedTrace(wl, seed, opts.accesses);
            CoverageSimulator sim;
            return sim.run(src, pf.get()).coverage();
        });

    std::vector<std::string> headers = {"Workload"};
    for (const auto r : sizes) {
        headers.push_back(r >= (1ULL << 20)
            ? std::to_string(r >> 20) + "M rows"
            : std::to_string(r >> 10) + "K rows");
    }
    TextTable table(headers);
    std::vector<RunningStat> avg(sizes.size());

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        table.newRow();
        table.cell(workloads[w].name);
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const double cov = cells[w * sizes.size() + i];
            table.cellPct(cov);
            avg[i].add(cov);
        }
    }

    table.newRow();
    table.cell("Average");
    for (std::size_t i = 0; i < sizes.size(); ++i)
        table.cellPct(avg[i].mean());

    emit(table, opts);
    return 0;
}
