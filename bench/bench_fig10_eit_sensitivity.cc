/**
 * @file
 * Figure 10: Domino coverage as a function of EIT rows (HT fixed),
 * plus the entries-per-super-entry ablation called out in
 * DESIGN.md (--entries-sweep).
 *
 * Headline shape: coverage saturates once the EIT holds a
 * super-entry for every hot trigger address (2 M rows in the
 * paper; proportionally earlier at bench scale).
 */

#include "bench_common.h"

using namespace domino;
using namespace domino::bench;

namespace
{

void
entriesSweep(const CliArgs &args, const BenchOptions &opts)
{
    TextTable table({"Workload", "entries=1", "entries=2",
                     "entries=3", "entries=4"});
    std::vector<RunningStat> avg(4);
    for (const auto &wl : selectedWorkloads(opts, args)) {
        table.newRow();
        table.cell(wl.name);
        for (unsigned e = 1; e <= 4; ++e) {
            FactoryConfig f = defaultFactory(args, 4);
            f.entriesPerSuper = e;
            auto pf = makePrefetcher("Domino", f);
            ServerWorkload src(wl, opts.seed, opts.accesses);
            CoverageSimulator sim;
            const double cov = sim.run(src, pf.get()).coverage();
            table.cellPct(cov);
            avg[e - 1].add(cov);
        }
    }
    table.newRow();
    table.cell("Average");
    for (unsigned e = 1; e <= 4; ++e)
        table.cellPct(avg[e - 1].mean());
    emit(table, opts);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);

    if (args.getBool("entries-sweep")) {
        banner("Ablation: EIT entries per super-entry", opts);
        entriesSweep(args, opts);
        return 0;
    }

    banner("Figure 10: Domino coverage vs EIT rows", opts);

    std::vector<std::uint64_t> sizes;
    for (std::uint64_t r = args.getU64("min", 1ULL << 9);
         r <= args.getU64("max", 1ULL << 17); r <<= 2) {
        sizes.push_back(r);
    }

    std::vector<std::string> headers = {"Workload"};
    for (const auto r : sizes) {
        headers.push_back(r >= (1ULL << 20)
            ? std::to_string(r >> 20) + "M rows"
            : std::to_string(r >> 10) + "K rows");
    }
    TextTable table(headers);
    std::vector<RunningStat> avg(sizes.size());

    for (const auto &wl : selectedWorkloads(opts, args)) {
        table.newRow();
        table.cell(wl.name);
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            FactoryConfig f = defaultFactory(args, 4);
            f.eitRows = sizes[i];
            auto pf = makePrefetcher("Domino", f);
            ServerWorkload src(wl, opts.seed, opts.accesses);
            CoverageSimulator sim;
            const double cov = sim.run(src, pf.get()).coverage();
            table.cellPct(cov);
            avg[i].add(cov);
        }
    }

    table.newRow();
    table.cell("Average");
    for (std::size_t i = 0; i < sizes.size(); ++i)
        table.cellPct(avg[i].mean());

    emit(table, opts);
    return 0;
}
