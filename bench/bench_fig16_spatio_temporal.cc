/**
 * @file
 * Figure 16: spatio-temporal prefetching -- coverage of VLDP,
 * Domino, and the VLDP+Domino stack (Domino trains on the misses
 * VLDP cannot capture).
 *
 * Headline shape: the combination covers more than either alone
 * (the techniques target disjoint miss classes); the gain varies
 * widely across workloads, largest where the spatial fraction is
 * high (Data Serving) and negligible for OLTP.
 */

#include "bench_common.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    banner("Figure 16: spatio-temporal prefetching (degree 4)",
           opts);

    const std::vector<std::string> techniques =
        {"VLDP", "Domino", "VLDP+Domino"};
    const auto workloads = selectedWorkloads(opts, args);

    const auto cells = runWorkloadGrid(
        opts, workloads, techniques.size(),
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            FactoryConfig f = defaultFactory(args, 4, seed);
            auto pf = makePrefetcher(techniques[config], f);
            TraceView src = cachedTrace(wl, seed, opts.accesses);
            CoverageSimulator sim;
            return sim.run(src, pf.get()).coverage();
        });

    TextTable table({"Workload", "VLDP", "Domino", "VLDP+Domino",
                     "Gain vs VLDP", "Gain vs Domino"});
    std::vector<RunningStat> avg(techniques.size());

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const double *cov = &cells[w * techniques.size()];
        for (std::size_t i = 0; i < techniques.size(); ++i)
            avg[i].add(cov[i]);
        table.newRow();
        table.cell(workloads[w].name);
        table.cellPct(cov[0]);
        table.cellPct(cov[1]);
        table.cellPct(cov[2]);
        table.cellPct(cov[2] - cov[0]);
        table.cellPct(cov[2] - cov[1]);
    }

    table.newRow();
    table.cell("Average");
    table.cellPct(avg[0].mean());
    table.cellPct(avg[1].mean());
    table.cellPct(avg[2].mean());
    table.cellPct(avg[2].mean() - avg[0].mean());
    table.cellPct(avg[2].mean() - avg[1].mean());

    emit(table, opts);
    return 0;
}
