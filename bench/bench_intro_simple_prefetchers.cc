/**
 * @file
 * Section I claim check: "simple prefetching techniques, such as
 * stride prefetching, are ineffective for server workloads" [1],
 * [6].  Runs next-line, per-PC stride, and first-order Markov
 * prefetchers against Domino across the suite.
 *
 * Headline shape: next-line and stride cover almost nothing of the
 * pointer-chasing miss streams; Markov (bounded fan-out, no stream
 * replay) sits well below the streaming temporal designs.
 */

#include "bench_common.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    const unsigned degree =
        static_cast<unsigned>(args.getU64("degree", 4));
    banner("Intro claim: simple prefetchers on server workloads "
           "(degree " + std::to_string(degree) + ")", opts);

    const std::vector<std::string> techniques =
        {"NextLine", "Stride", "Markov", "List", "Domino"};
    TextTable table({"Workload", "NextLine", "Stride", "Markov",
                     "List", "Domino"});
    std::vector<RunningStat> avg(techniques.size());

    for (const auto &wl : selectedWorkloads(opts, args)) {
        table.newRow();
        table.cell(wl.name);
        for (std::size_t i = 0; i < techniques.size(); ++i) {
            FactoryConfig f = defaultFactory(args, degree);
            auto pf = makePrefetcher(techniques[i], f);
            ServerWorkload src(wl, opts.seed, opts.accesses);
            CoverageSimulator sim;
            const double cov = sim.run(src, pf.get()).coverage();
            table.cellPct(cov);
            avg[i].add(cov);
        }
    }

    table.newRow();
    table.cell("Average");
    for (std::size_t i = 0; i < techniques.size(); ++i)
        table.cellPct(avg[i].mean());

    emit(table, opts);
    return 0;
}
