/**
 * @file
 * Section I claim check: "simple prefetching techniques, such as
 * stride prefetching, are ineffective for server workloads" [1],
 * [6].  Runs next-line, per-PC stride, and first-order Markov
 * prefetchers against Domino across the suite.
 *
 * Headline shape: next-line and stride cover almost nothing of the
 * pointer-chasing miss streams; Markov (bounded fan-out, no stream
 * replay) sits well below the streaming temporal designs.
 */

#include "bench_common.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    const unsigned degree =
        static_cast<unsigned>(args.getU64("degree", 4));
    banner("Intro claim: simple prefetchers on server workloads "
           "(degree " + std::to_string(degree) + ")", opts);

    const std::vector<std::string> techniques =
        {"NextLine", "Stride", "Markov", "List", "Domino"};
    const auto workloads = selectedWorkloads(opts, args);

    const auto cells = runWorkloadGrid(
        opts, workloads, techniques.size(),
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            FactoryConfig f = defaultFactory(args, degree, seed);
            auto pf = makePrefetcher(techniques[config], f);
            TraceView src = cachedTrace(wl, seed, opts.accesses);
            CoverageSimulator sim;
            return sim.run(src, pf.get()).coverage();
        });

    TextTable table({"Workload", "NextLine", "Stride", "Markov",
                     "List", "Domino"});
    std::vector<RunningStat> avg(techniques.size());

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        table.newRow();
        table.cell(workloads[w].name);
        for (std::size_t i = 0; i < techniques.size(); ++i) {
            const double cov = cells[w * techniques.size() + i];
            table.cellPct(cov);
            avg[i].add(cov);
        }
    }

    table.newRow();
    table.cell("Average");
    for (std::size_t i = 0; i < techniques.size(); ++i)
        table.cellPct(avg[i].mean());

    emit(table, opts);
    return 0;
}
