/**
 * @file
 * Figure 11: coverage and overpredictions of VLDP, ISB, STMS,
 * Digram, Domino and the Sequitur opportunity, prefetching degree 1.
 *
 * For all temporal prefetchers except Domino the paper assumes
 * unlimited history; Domino is limited to 2 M EIT rows / 16 M HT
 * entries.  Here "unlimited" means sized far beyond the trace.
 */

#include "coverage_runner.h"

int
main(int argc, char **argv)
{
    const domino::CliArgs args(argc, argv);
    domino::bench::runCoverageComparison(
        args, 1, "Figure 11: coverage/overpredictions, degree 1");
    return 0;
}
