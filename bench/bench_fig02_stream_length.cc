/**
 * @file
 * Figure 2: average stream length with STMS, Digram, and Sequitur.
 *
 * A "stream" is a run of consecutive correct prefetches (for the
 * prefetchers) or a repeated-rule occurrence (for Sequitur, the
 * oracle that always picks the longest stream).  Headline shape:
 * Sequitur streams are much longer than either prefetcher's, and
 * Digram's two-address lookup picks longer streams than STMS's
 * single-address lookup.
 */

#include "bench_common.h"
#include "sequitur/opportunity.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    banner("Figure 2: average stream length", opts);

    TextTable table({"Workload", "STMS", "Digram", "Sequitur"});
    RunningStat avg_stms, avg_digram, avg_seq;

    for (const auto &wl : selectedWorkloads(opts, args)) {
        double runlen[2];
        const char *tech[2] = {"STMS", "Digram"};
        for (int i = 0; i < 2; ++i) {
            FactoryConfig f = defaultFactory(args, 1);
            auto pf = makePrefetcher(tech[i], f);
            ServerWorkload src(wl, opts.seed, opts.accesses);
            CoverageSimulator sim;
            runlen[i] = sim.run(src, pf.get()).meanStreamRun();
        }
        ServerWorkload src(wl, opts.seed, opts.accesses);
        const auto misses = baselineMissSequence(src);
        const double seq =
            analyzeOpportunity(misses).meanStreamLength();

        table.newRow();
        table.cell(wl.name);
        table.cell(runlen[0]);
        table.cell(runlen[1]);
        table.cell(seq);
        avg_stms.add(runlen[0]);
        avg_digram.add(runlen[1]);
        avg_seq.add(seq);
    }

    table.newRow();
    table.cell("Average");
    table.cell(avg_stms.mean());
    table.cell(avg_digram.mean());
    table.cell(avg_seq.mean());

    emit(table, opts);
    return 0;
}
