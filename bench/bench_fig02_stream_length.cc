/**
 * @file
 * Figure 2: average stream length with STMS, Digram, and Sequitur.
 *
 * A "stream" is a run of consecutive correct prefetches (for the
 * prefetchers) or a repeated-rule occurrence (for Sequitur, the
 * oracle that always picks the longest stream).  Headline shape:
 * Sequitur streams are much longer than either prefetcher's, and
 * Digram's two-address lookup picks longer streams than STMS's
 * single-address lookup.
 */

#include "bench_common.h"
#include "sequitur/opportunity.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    banner("Figure 2: average stream length", opts);

    const auto workloads = selectedWorkloads(opts, args);
    // Configs: 0 = STMS, 1 = Digram, 2 = Sequitur oracle.
    const char *tech[2] = {"STMS", "Digram"};
    const std::size_t configs = 3;

    const auto cells = runWorkloadGrid(
        opts, workloads, configs,
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            if (config < 2) {
                FactoryConfig f = defaultFactory(args, 1, seed);
                auto pf = makePrefetcher(tech[config], f);
                CoverageSimulator sim;
                if (opts.stream) {
                    StreamingTraceSource src = streamedTrace(
                        opts, wl, seed, opts.accesses);
                    const double len =
                        sim.run(src, pf.get()).meanStreamRun();
                    CHECK(src.audit().empty());
                    return len;
                }
                TraceView src = cachedTrace(wl, seed, opts.accesses);
                return sim.run(src, pf.get()).meanStreamRun();
            }
            const auto misses =
                cachedBaselineMisses(opts, wl, seed, opts.accesses);
            return benchOpportunity(opts, *misses).meanStreamLength();
        });

    TextTable table({"Workload", "STMS", "Digram", "Sequitur"});
    RunningStat avg_stms, avg_digram, avg_seq;

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const double stms = cells[w * configs + 0];
        const double digram = cells[w * configs + 1];
        const double seq = cells[w * configs + 2];
        table.newRow();
        table.cell(workloads[w].name);
        table.cell(stms);
        table.cell(digram);
        table.cell(seq);
        avg_stms.add(stms);
        avg_digram.add(digram);
        avg_seq.add(seq);
    }

    table.newRow();
    table.cell("Average");
    table.cell(avg_stms.mean());
    table.cell(avg_digram.mean());
    table.cell(avg_seq.mean());

    emit(table, opts);
    return 0;
}
