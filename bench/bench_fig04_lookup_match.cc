/**
 * @file
 * Figure 4: the fraction of lookups that find a match in the
 * history over all lookups, as a function of the number of
 * addresses matched (1..5).
 *
 * Headline shape: the match rate falls monotonically with depth --
 * pair-only lookups (Digram) forgo many prefetching opportunities.
 */

#include "bench_common.h"
#include "prefetch/nlookup.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    const unsigned max_depth =
        static_cast<unsigned>(args.getU64("depth", 5));
    banner("Figure 4: lookups that find a match", opts);

    const auto workloads = selectedWorkloads(opts, args);
    // One cell per workload: a single N-gram pass yields every depth.
    const auto cells = runWorkloadGrid(
        opts, workloads, 1,
        [&](const WorkloadParams &wl, std::size_t,
            std::uint64_t seed) {
            const auto misses =
                cachedBaselineMisses(wl, seed, opts.accesses);
            NGramAnalyzer analyzer(max_depth);
            for (const LineAddr m : *misses)
                analyzer.observe(m);
            std::vector<double> fracs(max_depth);
            for (unsigned n = 1; n <= max_depth; ++n)
                fracs[n - 1] = analyzer.stats(n).matchFraction();
            return fracs;
        });

    std::vector<std::string> headers = {"Workload"};
    for (unsigned n = 1; n <= max_depth; ++n)
        headers.push_back("n=" + std::to_string(n));
    TextTable table(headers);
    std::vector<RunningStat> avg(max_depth);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        table.newRow();
        table.cell(workloads[w].name);
        for (unsigned n = 1; n <= max_depth; ++n) {
            const double frac = cells[w][n - 1];
            table.cellPct(frac);
            avg[n - 1].add(frac);
        }
    }

    table.newRow();
    table.cell("Average");
    for (unsigned n = 1; n <= max_depth; ++n)
        table.cellPct(avg[n - 1].mean());

    emit(table, opts);
    return 0;
}
