/**
 * @file
 * Many-core contention study (the regime the paper could not
 * measure): one workload sharded across 1/4/8/16/32/64 cores on the
 * multi-core substrate -- shared LLC, one contended off-chip channel
 * charging demand fills *and* HT/EIT metadata traffic -- comparing
 * Baseline, STMS, ISB, Domino, and Domino under the adaptive degree
 * throttle (src/adaptive).
 *
 * Sharding one fixed-size trace keeps the total work constant
 * across core counts, so walking up the core axis walks up the
 * pressure on the single channel: by 32-64 cores the channel
 * saturates, fixed-degree prefetching turns counterproductive
 * (inaccurate fills and metadata trips queue ahead of demand), and
 * the feedback-directed throttle's degree cuts show up as higher
 * demand-bandwidth share and accuracy-weighted coverage --
 * fig14/15-style columns, extended with the contention counters
 * this PR adds (per-core metadata queueing, per-epoch occupancy).
 *
 * Columns per (workload, cores, technique) cell:
 *   Speedup   system-IPC speedup over the no-prefetcher baseline at
 *             the same core count;
 *   Cov       aggregate coverage;
 *   AccCov    accuracy-weighted coverage: coverage scaled by
 *             useful / (useful + incorrect) prefetch bytes;
 *   DemShare  demand-serving share of channel bytes
 *             ((demand + useful prefetch) / total);
 *   MetaShare metadata bytes over all off-chip bytes;
 *   MQ/kinst  critical-path metadata queueing cycles per
 *             kilo-instruction (the shared-HT/EIT contention
 *             counter);
 *   GB/s      achieved channel bandwidth over the makespan;
 *   Util      channel busy cycles over the makespan;
 *   OccP95    95th-percentile per-window channel occupancy from the
 *             per-epoch export (--occ-window cycles per window).
 *
 * --shared runs one HT/EIT instance over the union of all cores'
 * trigger streams; --cores N restricts the sweep to one core count;
 * --throttle-epoch / --degree-min / --degree-max / --acc-low /
 * --acc-high / --occ-high / --suppress-meta tune the throttled
 * column's controller (the column is always throttled; the plain
 * Domino column is the fixed-degree control).
 */

#include <iostream>

#include "bench_common.h"
#include "adaptive/throttled_prefetcher.h"
#include "analysis/multicore_report.h"

using namespace domino;
using namespace domino::bench;

namespace
{

/** One cell's flattened measurements. */
struct ContentionCell
{
    double systemIpc = 0.0;
    double coverage = 0.0;
    double accuracyWeightedCoverage = 0.0;
    double demandShare = 0.0;
    double metaShare = 0.0;
    double metaQueuePerKiloInst = 0.0;
    double bandwidthGBs = 0.0;
    double utilisation = 0.0;
    std::uint32_t occP95Pm = 0;
};

ContentionCell
runOne(const WorkloadParams &wl, const std::string &tech,
       const CliArgs &args, const BenchOptions &opts,
       SystemConfig sys, unsigned cores, std::uint64_t seed,
       std::uint64_t accesses)
{
    sys.cores = cores;
    std::string name = tech;
    FactoryConfig factory = defaultFactory(args, 4, seed);
    // As in bench_multicore_scaling, the paper's tuned sampling
    // probability is the honest default for a traffic study.
    if (!args.has("sampling"))
        factory.samplingProb = 0.125;
    if (name == "Domino+throttle") {
        name = "Domino";
        factory.throttle.enabled = true;
        // The throttled column runs the full adaptive design,
        // metadata suppression included: past the degree floor the
        // dominant channel load is trigger-driven HT/EIT traffic,
        // which only suppression can shed (defaultFactory leaves it
        // opt-in for the generic --throttle flag).
        factory.throttle.suppressMeta = true;
    }

    std::shared_ptr<const ReplayImage> image;
    std::vector<StreamingTraceSource> shardStreams;
    if (opts.stream) {
        shardStreams.reserve(cores);
        for (unsigned c = 0; c < cores; ++c) {
            shardStreams.push_back(streamedShard(
                opts, wl, seed, accesses, cores, c,
                sys.multicore.shardChunk));
        }
    } else {
        image = cachedReplayImage(wl, seed, accesses);
    }

    const MetadataScope scope = sys.multicore.sharedMetadata
        ? MetadataScope::Shared : MetadataScope::Private;
    PrefetcherSet set = makePrefetcherSet(name, factory, cores,
                                          scope);

    std::vector<CoreBinding> bindings;
    for (unsigned c = 0; c < cores; ++c) {
        CoreBinding binding;
        if (opts.stream)
            binding.source = &shardStreams[c];
        else {
            binding.image = image.get();
            binding.imageCore = c;
        }
        binding.prefetcher = set.perCore[c];
        binding.observer = set.observers[c];
        binding.mlpFactor = wl.mlpFactor;
        binding.instPerAccess = wl.instPerAccess;
        bindings.push_back(binding);
    }

    MultiCoreSim sim(sys);
    const MultiCoreResult result = sim.run(bindings);
    for (const StreamingTraceSource &s : shardStreams)
        CHECK(s.audit().empty());
    if (factory.throttle.enabled) {
        for (const auto &p : set.owned)
            CHECK_EQ(p->audit(), "");
    }
    const MulticoreSummary s =
        summarizeMulticore(result, sys.mem.coreGhz);

    ContentionCell cell;
    cell.systemIpc = s.systemIpc;
    cell.coverage = s.aggregateCoverage;
    const std::uint64_t useful = s.traffic.usefulPrefetchBytes;
    const std::uint64_t incorrect = s.traffic.incorrectPrefetchBytes;
    cell.accuracyWeightedCoverage = useful + incorrect
        ? s.aggregateCoverage * static_cast<double>(useful) /
            static_cast<double>(useful + incorrect)
        : s.aggregateCoverage;
    const std::uint64_t total = s.traffic.totalBytes();
    cell.demandShare = total
        ? static_cast<double>(s.traffic.demandBytes + useful) /
            static_cast<double>(total)
        : 0.0;
    cell.metaShare = s.metadataShare;
    const std::uint64_t inst = result.totalInstructions();
    cell.metaQueuePerKiloInst = inst
        ? 1000.0 *
            static_cast<double>(result.totalMetaQueueCycles()) /
            static_cast<double>(inst)
        : 0.0;
    cell.bandwidthGBs = s.bandwidthGBs;
    cell.utilisation = s.channelUtilization;
    cell.occP95Pm = result.occupancyPercentilePm(95);
    return cell;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    SystemConfig sys = systemFromCli(args);
    // Per-epoch occupancy export on by default here (it is this
    // study's saturation evidence); --occ-window overrides.
    if (!args.has("occ-window"))
        sys.multicore.occupancyWindow = 4096;

    std::vector<unsigned> coreCounts = {1, 4, 8, 16, 32, 64};
    if (args.has("cores"))
        coreCounts = {sys.cores};

    const std::vector<std::string> techniques =
        {"Baseline", "STMS", "ISB", "Domino", "Domino+throttle"};

    banner("Many-core contention: 1-64 cores, shared channel, "
           "adaptive degree throttling", opts);

    const auto workloads = selectedWorkloads(opts, args);
    // Config axis: (core count, technique), core-count-major.
    const std::size_t configs =
        coreCounts.size() * techniques.size();

    const auto cells = runWorkloadGrid(
        opts, workloads, configs,
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            const unsigned cores =
                coreCounts[config / techniques.size()];
            const std::string &tech =
                techniques[config % techniques.size()];
            return runOne(wl, tech == "Baseline" ? "" : tech, args,
                          opts, sys, cores, seed, opts.accesses);
        });

    TextTable table({"Workload", "Cores", "Prefetcher", "Speedup",
                     "Cov", "AccCov", "DemShare", "MetaShare",
                     "MQ/kinst", "GB/s", "Util", "OccP95"});
    std::vector<GeoMean> gmean(configs);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t cc = 0; cc < coreCounts.size(); ++cc) {
            const std::size_t group = cc * techniques.size();
            const ContentionCell &base =
                cells[w * configs + group];
            for (std::size_t t = 0; t < techniques.size(); ++t) {
                const ContentionCell &cell =
                    cells[w * configs + group + t];
                const double speedup = base.systemIpc > 0.0
                    ? cell.systemIpc / base.systemIpc : 0.0;
                gmean[group + t].add(speedup);
                table.newRow();
                table.cell(workloads[w].name);
                table.cell(std::to_string(coreCounts[cc]));
                table.cell(techniques[t]);
                table.cellPct(speedup - 1.0);
                table.cellPct(cell.coverage);
                table.cellPct(cell.accuracyWeightedCoverage);
                table.cellPct(cell.demandShare);
                table.cellPct(cell.metaShare);
                table.cell(cell.metaQueuePerKiloInst);
                table.cell(cell.bandwidthGBs);
                table.cellPct(cell.utilisation);
                table.cellPct(
                    static_cast<double>(cell.occP95Pm) / 1000.0);
            }
        }
    }

    for (std::size_t cc = 0; cc < coreCounts.size(); ++cc) {
        for (std::size_t t = 1; t < techniques.size(); ++t) {
            table.newRow();
            table.cell("GMean");
            table.cell(std::to_string(coreCounts[cc]));
            table.cell(techniques[t]);
            table.cellPct(
                gmean[cc * techniques.size() + t].value() - 1.0);
            for (int pad = 0; pad < 8; ++pad)
                table.cell("");
        }
    }

    emit(table, opts);
    return 0;
}
