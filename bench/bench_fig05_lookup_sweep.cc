/**
 * @file
 * Figure 5: coverage and overpredictions of an idealized temporal
 * prefetcher whose lookup recursively matches up to N addresses
 * (picking the deepest match), for N = 1..5.
 *
 * Headline shape: N=1 has low coverage and high overpredictions;
 * N=2 improves both markedly; beyond two the gains are negligible
 * -- the motivation for Domino's one-plus-two-address design.
 */

#include "bench_common.h"

using namespace domino;
using namespace domino::bench;

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv);
    const BenchOptions opts = BenchOptions::fromCli(args);
    const unsigned max_depth =
        static_cast<unsigned>(args.getU64("depth", 5));
    banner("Figure 5: coverage/overpredictions vs lookup depth",
           opts);

    struct CellResult
    {
        double coverage = 0.0;
        double overprediction = 0.0;
    };

    const auto workloads = selectedWorkloads(opts, args);
    // Config axis: lookup depth N = config + 1.
    const auto cells = runWorkloadGrid(
        opts, workloads, max_depth,
        [&](const WorkloadParams &wl, std::size_t config,
            std::uint64_t seed) {
            FactoryConfig f = defaultFactory(args, 1, seed);
            f.nlookupDepth = static_cast<unsigned>(config + 1);
            auto pf = makePrefetcher("NLookup", f);
            TraceView src = cachedTrace(wl, seed, opts.accesses);
            CoverageSimulator sim;
            const CoverageResult r = sim.run(src, pf.get());
            return CellResult{r.coverage(), r.overpredictionRate()};
        });

    TextTable table({"Workload", "N", "Coverage", "Overpredictions"});
    std::vector<RunningStat> avg_cov(max_depth), avg_over(max_depth);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (unsigned n = 1; n <= max_depth; ++n) {
            const CellResult &r = cells[w * max_depth + (n - 1)];
            table.newRow();
            table.cell(workloads[w].name);
            table.cell(std::uint64_t{n});
            table.cellPct(r.coverage);
            table.cellPct(r.overprediction);
            avg_cov[n - 1].add(r.coverage);
            avg_over[n - 1].add(r.overprediction);
        }
    }

    for (unsigned n = 1; n <= max_depth; ++n) {
        table.newRow();
        table.cell("Average");
        table.cell(std::uint64_t{n});
        table.cellPct(avg_cov[n - 1].mean());
        table.cellPct(avg_over[n - 1].mean());
    }

    emit(table, opts);
    return 0;
}
