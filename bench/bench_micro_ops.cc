/**
 * @file
 * Google-benchmark microbenchmarks: throughput of the core
 * operations (EIT update/lookup, prefetcher trigger handling,
 * Sequitur grammar construction, cache access, trace generation,
 * full coverage-simulation pipeline).
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "domino/eit.h"
#include "mem/cache.h"
#include "sequitur/sequitur.h"
#include "workloads/server_workload.h"

namespace
{

using namespace domino;

void
BM_EitUpdate(benchmark::State &state)
{
    EitConfig cfg;
    cfg.rows = 1 << 16;
    EnhancedIndexTable eit(cfg);
    Prng rng(7);
    std::uint64_t pos = 0;
    for (auto _ : state) {
        const LineAddr tag = rng.below(100'000);
        const LineAddr next = rng.below(100'000);
        eit.update(tag, next, ++pos);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EitUpdate);

void
BM_EitLookup(benchmark::State &state)
{
    EitConfig cfg;
    cfg.rows = 1 << 16;
    EnhancedIndexTable eit(cfg);
    Prng rng(7);
    for (int i = 0; i < 100'000; ++i)
        eit.update(rng.below(100'000), rng.below(100'000), i);
    for (auto _ : state)
        benchmark::DoNotOptimize(eit.lookup(rng.below(100'000)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EitLookup);

/** A sink that swallows prefetches (trigger-path cost only). */
class NullSink : public PrefetchSink
{
  public:
    void issue(LineAddr, std::uint32_t, unsigned) override {}
    void dropStream(std::uint32_t) override {}
};

void
BM_PrefetcherTrigger(benchmark::State &state,
                     const std::string &tech)
{
    FactoryConfig f;
    auto pf = makePrefetcher(tech, f);
    NullSink sink;
    Prng rng(11);
    // A repetitive-but-noisy trigger stream.
    std::vector<LineAddr> pattern;
    for (int i = 0; i < 4096; ++i)
        pattern.push_back(1000 + (i % 512) * 17);
    std::size_t idx = 0;
    for (auto _ : state) {
        TriggerEvent e;
        e.line = pattern[idx++ & 4095];
        e.pc = 0x400000 + (idx % 64) * 4;
        pf->onTrigger(e, sink);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_PrefetcherTrigger, stms, std::string("STMS"));
BENCHMARK_CAPTURE(BM_PrefetcherTrigger, digram, std::string("Digram"));
BENCHMARK_CAPTURE(BM_PrefetcherTrigger, domino, std::string("Domino"));
BENCHMARK_CAPTURE(BM_PrefetcherTrigger, isb, std::string("ISB"));
BENCHMARK_CAPTURE(BM_PrefetcherTrigger, vldp, std::string("VLDP"));

void
BM_SequiturPush(benchmark::State &state)
{
    Prng rng(3);
    std::vector<std::uint64_t> symbols;
    for (int i = 0; i < 1 << 14; ++i)
        symbols.push_back(rng.below(256));
    std::size_t idx = 0;
    auto g = std::make_unique<SequiturGrammar>();
    std::uint64_t pushed = 0;
    for (auto _ : state) {
        g->push(symbols[idx++ & ((1 << 14) - 1)]);
        if (++pushed % 100'000 == 0) {
            // Bound grammar growth across iterations.
            g = std::make_unique<SequiturGrammar>();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequiturPush);

void
BM_CacheAccess(benchmark::State &state)
{
    SetAssocCache cache(64 * 1024, 2);
    Prng rng(5);
    for (auto _ : state) {
        const LineAddr line = rng.below(4096);
        if (!cache.access(line))
            cache.fill(line);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    WorkloadParams params;
    findWorkload("OLTP", params);
    ServerWorkload gen(params, 1, ~0ULL >> 1);
    Access a;
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next(a));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGeneration);

void
BM_CoveragePipeline(benchmark::State &state)
{
    // Whole-pipeline throughput: accesses through L1 + buffer +
    // Domino per second.
    WorkloadParams params;
    findWorkload("OLTP", params);
    for (auto _ : state) {
        FactoryConfig f;
        auto pf = makePrefetcher("Domino", f);
        ServerWorkload src(params, 1, 100'000);
        CoverageSimulator sim;
        benchmark::DoNotOptimize(sim.run(src, pf.get()));
    }
    state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_CoveragePipeline)->Unit(benchmark::kMillisecond);

} // anonymous namespace

/**
 * Custom main: accept and discard the suite-wide --jobs flag (so
 * driver scripts can pass it to every bench binary uniformly)
 * before handing the remaining arguments to google-benchmark,
 * which rejects flags it does not recognise.  Microbenchmarks
 * measure single-threaded operation latency; parallelising them
 * would perturb the numbers they exist to report.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> kept;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs") {
            // Skip an attached "--jobs N" value as well.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0)
                ++i;
            continue;
        }
        if (arg.rfind("--jobs=", 0) == 0)
            continue;
        kept.push_back(argv[i]);
    }
    int kept_argc = static_cast<int>(kept.size());
    benchmark::Initialize(&kept_argc, kept.data());
    if (benchmark::ReportUnrecognizedArguments(kept_argc,
                                               kept.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
