#include "timing_sim.h"

#include "common/check.h"
#include "mem/mshr.h"

#include <algorithm>
#include <cmath>

namespace domino
{

std::uint64_t
TimingResult::totalInstructions() const
{
    std::uint64_t sum = 0;
    for (const auto &c : cores)
        sum += c.instructions;
    return sum;
}

Cycles
TimingResult::totalCycles() const
{
    Cycles sum = 0;
    for (const auto &c : cores)
        sum += c.cycles;
    return sum;
}

double
TimingResult::systemIpc() const
{
    const Cycles cyc = totalCycles();
    return cyc ? static_cast<double>(totalInstructions()) /
        static_cast<double>(cyc) : 0.0;
}

double
TimingResult::speedupOver(const TimingResult &baseline) const
{
    const double base = baseline.systemIpc();
    return base > 0.0 ? systemIpc() / base : 0.0;
}

double
TimingResult::bandwidthGBs(double core_ghz) const
{
    // Bytes over wall-clock time; with homogeneous cores, wall
    // clock ~= max per-core cycles ~= average per-core cycles.
    const Cycles cyc = cores.empty()
        ? 0 : totalCycles() / cores.size();
    if (!cyc)
        return 0.0;
    const double seconds =
        static_cast<double>(cyc) / (core_ghz * 1e9);
    return static_cast<double>(traffic.totalBytes()) / seconds / 1e9;
}

namespace
{

/** Per-core simulation state, including the prefetch sink. */
class CoreState : public PrefetchSink
{
  public:
    CoreState(const SystemConfig &cfg, const CoreSetup &setup,
              SetAssocCache &llc, OffChipTraffic &traffic)
        : cfg(cfg), setup(setup),
          l1(cfg.l1Bytes, cfg.l1Ways),
          buffer(cfg.prefetchBufferBlocks),
          mshrs(cfg.l1Mshrs),
          llc(llc), traffic(traffic)
    {}

    /** Process one access; @return false when the source is done. */
    bool
    step()
    {
        Access access;
        if (!setup.source->next(access))
            return false;

        // Useful work for the instructions this access represents.
        result.instructions +=
            static_cast<std::uint64_t>(setup.instPerAccess);
        now += static_cast<Cycles>(std::llround(
            setup.instPerAccess / cfg.baseIpc));

        const LineAddr line = access.line();
        if (l1.access(line))
            return true;  // L1 hit: latency hidden by the pipeline

        TriggerEvent event;
        event.line = line;
        event.pc = access.pc;

        const PrefetchBuffer::HitInfo hit = buffer.lookup(line);
        if (hit.hit) {
            ++result.covered;
            event.wasPrefetchHit = true;
            event.hitStreamId = hit.streamId;
            if (hit.readyCycle > now) {
                // Late prefetch: stall for the remainder, capped at
                // what the demand would have paid without the
                // prefetch (the demand merges with the in-flight
                // request or fetches independently, whichever is
                // sooner).
                ++result.lateCovered;
                stall(std::min<Cycles>(hit.readyCycle - now,
                                       hit.altLatency));
            }
            // Useful prefetch: account its fill now that it is
            // known useful (bytes were fetched from off-chip).
            traffic.usefulPrefetchBytes += blockBytes;
        } else {
            ++result.uncovered;
            // Demand fetch: LLC, then memory.  Channel queueing is
            // deliberately not modelled: the paper's premise
            // (Section V.D) is that server workloads leave most of
            // the off-chip bandwidth unused, so prefetcher traffic
            // does not delay demand fetches.
            if (llc.access(line)) {
                stall(cfg.mem.llcLatency);
            } else {
                stall(cfg.mem.memLatency);
                llc.fill(line);
                traffic.demandBytes += blockBytes;
            }
        }
        l1.fill(line);

        if (setup.prefetcher) {
            // Single-event batched dispatch: the uniform entry
            // point every simulator uses (identical to onTrigger
            // by the batched == scalar contract).
            setup.prefetcher->trainPredictMany(
                std::span<const TriggerEvent>(&event, 1), *this);
        }

        // Sampled structural audits: compiled in only for Debug /
        // DOMINO_CHECKS builds, so Release timing numbers are
        // untouched.
        if constexpr (checksEnabled) {
            if ((++stepsSinceAudit & (auditInterval - 1)) == 0)
                auditAll();
        }
        return true;
    }

    /** Run every structural audit; aborts on the first violation. */
    void
    auditAll() const
    {
        CHECK_EQ(l1.audit(), "");
        CHECK_EQ(llc.audit(), "");
        CHECK_EQ(buffer.audit(), "");
        CHECK_EQ(mshrs.audit(), "");
        if (setup.prefetcher)
            CHECK_EQ(setup.prefetcher->audit(), "");
    }

    /** Finalise counters at the end of the run. */
    CoreTimingResult
    finish()
    {
        // Whatever is still unused in the buffer was fetched in
        // vain.
        incorrectPrefetches += buffer.stats().evictedUnused;
        traffic.incorrectPrefetchBytes +=
            incorrectPrefetches * blockBytes;
        result.cycles = now;
        return result;
    }

    // PrefetchSink interface -------------------------------------
    void
    issue(LineAddr line, std::uint32_t stream_id,
          unsigned metadata_trips) override
    {
        if (l1.contains(line) || buffer.contains(line))
            return;
        // Serial metadata trips must complete before the prefetch
        // can be sent; the data then comes from the LLC or memory.
        Cycles ready =
            now + metadata_trips * cfg.mem.metadataLatency();
        Cycles alt;
        if (llc.access(line)) {
            ready += cfg.mem.llcLatency;
            alt = cfg.mem.llcLatency;
        } else {
            ready += cfg.mem.memLatency;
            alt = cfg.mem.memLatency;
            llc.fill(line);
            // Fill bytes are classified useful/incorrect later; for
            // LLC misses the transfer happens either way and is
            // attributed on use/eviction.
        }
        // The fill occupies an L1 MSHR until it completes; when
        // the file is exhausted the prefetch is dropped.
        mshrs.retire(now);
        if (!mshrs.allocate(line, ready))
            return;
        buffer.insert(line, stream_id, ready, alt);
    }

    void
    dropStream(std::uint32_t stream_id) override
    {
        // Dropped blocks are counted by the buffer as evicted
        // unused and picked up in finish().
        buffer.invalidateStream(stream_id);
    }

  private:
    void
    stall(Cycles amount)
    {
        // Demand stalls overlap with other outstanding misses
        // according to the workload's MLP.
        now += static_cast<Cycles>(std::llround(
            static_cast<double>(amount) /
            std::max(setup.mlpFactor, 1.0)));
    }

    const SystemConfig &cfg;
    const CoreSetup &setup;
    SetAssocCache l1;
    PrefetchBuffer buffer;
    MshrFile mshrs;
    SetAssocCache &llc;
    OffChipTraffic &traffic;
    CoreTimingResult result;
    Cycles now = 0;
    std::uint64_t incorrectPrefetches = 0;

    /** Audit cadence in triggering events (power of two). */
    static constexpr std::uint64_t auditInterval = 2048;
    std::uint64_t stepsSinceAudit = 0;
};

} // anonymous namespace

TimingSimulator::TimingSimulator(const SystemConfig &config)
    : cfg(config)
{}

TimingResult
TimingSimulator::run(std::vector<CoreSetup> &setups)
{
    TimingResult result;
    SetAssocCache llc(cfg.llcBytes, cfg.llcWays);

    std::vector<std::unique_ptr<CoreState>> cores;
    cores.reserve(setups.size());
    for (const auto &setup : setups) {
        cores.push_back(std::make_unique<CoreState>(
            cfg, setup, llc, result.traffic));
    }

    // Round-robin interleaving, one access per core per turn.
    bool any = true;
    std::vector<bool> done(cores.size(), false);
    while (any) {
        any = false;
        for (std::size_t i = 0; i < cores.size(); ++i) {
            if (done[i])
                continue;
            if (cores[i]->step())
                any = true;
            else
                done[i] = true;
        }
    }

    for (std::size_t i = 0; i < cores.size(); ++i) {
        result.cores.push_back(cores[i]->finish());
        if (setups[i].prefetcher) {
            const MetadataStats meta =
                setups[i].prefetcher->metadata();
            result.traffic.metadataReadBytes += meta.readBytes();
            result.traffic.metadataUpdateBytes += meta.writeBytes();
        }
    }
    return result;
}

} // namespace domino
