/**
 * @file
 * The multi-core timing simulator used for the cycle-level
 * evaluation (Figures 14 and 15).
 *
 * Substitution note (see DESIGN.md): the paper uses Flexus
 * full-system sampling on SPARC; this model is an event-count
 * approximation that captures the three effects the speedup depends
 * on:
 *
 *  - *coverage*: a prefetch-buffer hit removes the miss stall;
 *  - *MLP overlap*: demand stalls are divided by the workload's
 *    memory-level-parallelism factor (high-MLP workloads like Web
 *    Search gain less from prefetching, as in the paper);
 *  - *timeliness*: a prefetched block only removes the full stall if
 *    it has arrived; the first prefetch of a stream pays the serial
 *    off-chip metadata trips (two for STMS/Digram, one for Domino),
 *    so late prefetches save only part of the latency.
 *
 * Off-chip traffic (demand fills, useful/incorrect prefetch fills,
 * metadata reads/updates) is accounted in bytes for Figure 15.
 */

#ifndef DOMINO_SIM_TIMING_SIM_H
#define DOMINO_SIM_TIMING_SIM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache.h"
#include "mem/memory_model.h"
#include "mem/prefetch_buffer.h"
#include "prefetch/prefetcher.h"
#include "sim/system_config.h"
#include "trace/trace_buffer.h"

namespace domino
{

/** One core's workload/prefetcher binding for a timing run. */
struct CoreSetup
{
    /** Access stream for this core (not owned). */
    AccessSource *source = nullptr;
    /** Prefetcher for this core (not owned); nullptr = none. */
    Prefetcher *prefetcher = nullptr;
    /** Workload MLP factor (stall overlap divisor). */
    double mlpFactor = 1.3;
    /** Instructions represented by each trace access. */
    double instPerAccess = 3.0;
};

/** Per-core timing outcome. */
struct CoreTimingResult
{
    std::uint64_t instructions = 0;
    Cycles cycles = 0;
    std::uint64_t covered = 0;
    std::uint64_t uncovered = 0;
    std::uint64_t lateCovered = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
            static_cast<double>(cycles) : 0.0;
    }
};

/** Whole-chip timing outcome. */
struct TimingResult
{
    std::vector<CoreTimingResult> cores;
    OffChipTraffic traffic;

    /** Total instructions across cores. */
    std::uint64_t totalInstructions() const;
    /** Total cycles across cores (sum; homogeneous cores). */
    Cycles totalCycles() const;
    /** System throughput metric: instructions per aggregate cycle. */
    double systemIpc() const;
    /** Speedup of this run over a baseline run. */
    double speedupOver(const TimingResult &baseline) const;
    /** Achieved off-chip bandwidth in GB/s. */
    double bandwidthGBs(double core_ghz) const;
};

/** The timing simulator. */
class TimingSimulator
{
  public:
    explicit TimingSimulator(const SystemConfig &config = {});

    /**
     * Run all cores to the exhaustion of their sources.  Cores are
     * interleaved round-robin one access at a time and share the
     * LLC.
     */
    TimingResult run(std::vector<CoreSetup> &setups);

  private:
    SystemConfig cfg;
};

} // namespace domino

#endif // DOMINO_SIM_TIMING_SIM_H
