/**
 * @file
 * System-level configuration of the timing simulator (Table I).
 */

#ifndef DOMINO_SIM_SYSTEM_CONFIG_H
#define DOMINO_SIM_SYSTEM_CONFIG_H

#include <cstdint>

#include "mem/memory_model.h"

namespace domino
{

/** Quad-core server chip parameters (Table I). */
struct SystemConfig
{
    /** Number of cores. */
    unsigned cores = 4;
    /** Per-core L1-D: 64 KB, 2-way. */
    std::uint64_t l1Bytes = 64 * 1024;
    std::uint32_t l1Ways = 2;
    /** Shared LLC: 4 MB, 16-way. */
    std::uint64_t llcBytes = 4ULL * 1024 * 1024;
    std::uint32_t llcWays = 16;
    /** Prefetch buffer blocks per core. */
    std::uint32_t prefetchBufferBlocks = 32;
    /** L1-D MSHRs per core (Table I: 32); prefetch fills compete
     *  for them and are dropped when none is free. */
    unsigned l1Mshrs = 32;
    /** Latencies and bandwidth. */
    MemoryParams mem;
    /**
     * Base sustained IPC of the 4-wide OOO core on non-stalling
     * code (used to convert the instruction mix into cycles).
     */
    double baseIpc = 2.0;
};

} // namespace domino

#endif // DOMINO_SIM_SYSTEM_CONFIG_H
