/**
 * @file
 * System-level configuration of the timing simulator (Table I).
 */

#ifndef DOMINO_SIM_SYSTEM_CONFIG_H
#define DOMINO_SIM_SYSTEM_CONFIG_H

#include <cstdint>

#include "mem/memory_model.h"

namespace domino
{

/**
 * Knobs specific to the multi-core substrate (src/multicore): how
 * one workload is sharded across cores, whether Domino's HT/EIT is
 * one shared table or per-core private tables, and whether the
 * metadata traffic is charged to the shared off-chip channel (the
 * zero-cost control exists so experiments can isolate the cost of
 * off-chip metadata, Figure 15 / Triangel's motivation).
 */
struct MulticoreParams
{
    /**
     * One HT/EIT instance serving every core (shared scope) instead
     * of per-core private tables.  Shared tables see the union of
     * all cores' trigger sequences.
     */
    bool sharedMetadata = false;
    /**
     * Charge HT appends and EIT lookups/updates to the shared
     * off-chip channel.  When false (the zero-cost-metadata
     * control), metadata bytes are still *counted* in the traffic
     * breakdown but consume no bandwidth and metadata trips pay the
     * uncontended latency.
     */
    bool chargeMetadata = true;
    /**
     * Accesses per interleaver chunk when sharding one workload
     * trace into per-core streams (TraceInterleaver): large enough
     * to keep temporal streams intact inside one core's shard,
     * small enough that cores interleave.
     */
    std::uint32_t shardChunk = 256;
    /**
     * Per-epoch occupancy export: when positive, the shared channel
     * logs its occupied cycles into fixed windows of this many
     * cycles and MultiCoreResult carries the per-window occupancy
     * (per mille).  0 = off (no log, no cost).
     */
    std::uint64_t occupancyWindow = 0;
};

/** Quad-core server chip parameters (Table I). */
struct SystemConfig
{
    /** Number of cores. */
    unsigned cores = 4;
    /** Per-core L1-D: 64 KB, 2-way. */
    std::uint64_t l1Bytes = 64 * 1024;
    std::uint32_t l1Ways = 2;
    /** Shared LLC: 4 MB, 16-way. */
    std::uint64_t llcBytes = 4ULL * 1024 * 1024;
    std::uint32_t llcWays = 16;
    /** Prefetch buffer blocks per core. */
    std::uint32_t prefetchBufferBlocks = 32;
    /** L1-D MSHRs per core (Table I: 32); prefetch fills compete
     *  for them and are dropped when none is free. */
    unsigned l1Mshrs = 32;
    /** Latencies and bandwidth (single source of truth for both
     *  the single-core timing model and the multicore substrate). */
    MemoryParams mem;
    /** Multi-core substrate knobs (src/multicore). */
    MulticoreParams multicore;
    /**
     * Base sustained IPC of the 4-wide OOO core on non-stalling
     * code (used to convert the instruction mix into cycles).
     */
    double baseIpc = 2.0;
};

} // namespace domino

#endif // DOMINO_SIM_SYSTEM_CONFIG_H
