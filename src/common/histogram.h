/**
 * @file
 * Histogram with explicit bucket edges, used for the stream-length
 * distributions of Figures 2 and 12.
 */

#ifndef DOMINO_COMMON_HISTOGRAM_H
#define DOMINO_COMMON_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace domino
{

/**
 * Histogram over unsigned samples with caller-supplied upper edges.
 *
 * A sample x falls in the first bucket whose edge satisfies
 * x <= edge; samples beyond the last edge land in a final overflow
 * bucket.  Figure 12 of the paper uses edges
 * {0, 2, 4, 8, 16, 32, 64, 128} plus a "128+" overflow bucket.
 */
class EdgeHistogram
{
  public:
    explicit EdgeHistogram(std::vector<std::uint64_t> upper_edges)
        : edges(std::move(upper_edges)), counts(edges.size() + 1, 0)
    {}

    /** Add one sample. */
    void
    add(std::uint64_t x)
    {
        ++total;
        sum += x;
        for (std::size_t i = 0; i < edges.size(); ++i) {
            if (x <= edges[i]) {
                ++counts[i];
                return;
            }
        }
        ++counts.back();
    }

    /** Number of buckets including the overflow bucket. */
    std::size_t buckets() const { return counts.size(); }

    /** Upper edge of bucket i (the overflow bucket has no edge). */
    std::uint64_t edge(std::size_t i) const { return edges[i]; }

    /** Raw count in bucket i. */
    std::uint64_t count(std::size_t i) const { return counts[i]; }

    /** Total number of samples. */
    std::uint64_t totalCount() const { return total; }

    /** Mean of all samples (0 if empty). */
    double
    mean() const
    {
        return total ? static_cast<double>(sum) /
            static_cast<double>(total) : 0.0;
    }

    /** Fraction of samples in bucket i. */
    double
    fraction(std::size_t i) const
    {
        return total ? static_cast<double>(counts[i]) /
            static_cast<double>(total) : 0.0;
    }

    /** Cumulative fraction of samples in buckets [0, i]. */
    double
    cumulative(std::size_t i) const
    {
        if (!total)
            return 0.0;
        std::uint64_t c = 0;
        for (std::size_t j = 0; j <= i && j < counts.size(); ++j)
            c += counts[j];
        return static_cast<double>(c) / static_cast<double>(total);
    }

    /**
     * Verify the histogram's structural invariants: one overflow
     * bucket beyond the edges, strictly increasing edges, and
     * bucket counts summing to the sample total.  @return empty
     * string if OK, else a description.
     */
    std::string
    audit() const
    {
        if (counts.size() != edges.size() + 1)
            return "bucket count drifted from the edge list";
        for (std::size_t i = 1; i < edges.size(); ++i)
            if (edges[i] <= edges[i - 1])
                return "bucket edges are not strictly increasing";
        std::uint64_t in_buckets = 0;
        for (const std::uint64_t c : counts)
            in_buckets += c;
        if (in_buckets != total)
            return "bucket counts do not sum to the sample total";
        return "";
    }

  private:
    std::vector<std::uint64_t> edges;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
};

} // namespace domino

#endif // DOMINO_COMMON_HISTOGRAM_H
