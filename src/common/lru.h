/**
 * @file
 * Small fixed-capacity LRU containers.
 *
 * The metadata tables of all temporal prefetchers (STMS index rows,
 * Domino super-entries and entries, ISB training units) are
 * bucketised structures with a handful of ways per bucket managed
 * with LRU.  These helpers implement that pattern once: a
 * move-to-front vector, which for the 2..8-way associativities used
 * here is faster and far smaller than a list + map combination.
 */

#ifndef DOMINO_COMMON_LRU_H
#define DOMINO_COMMON_LRU_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace domino
{

/**
 * A fixed-capacity set of items kept in recency order.
 *
 * Index 0 is the most recently used item; the last index is the
 * least recently used.  Insertion beyond capacity evicts the LRU
 * item.  Lookup is linear, which is appropriate for the small
 * associativities (<= 16) used by every table in this project.
 *
 * @tparam T item type; must be movable.
 */
template <typename T>
class LruSet
{
  public:
    explicit LruSet(std::size_t capacity = 0) : cap(capacity) {}

    /** Change the capacity (evicts LRU items if shrinking). */
    void
    setCapacity(std::size_t capacity)
    {
        cap = capacity;
        if (items.size() > cap)
            items.resize(cap);
    }

    std::size_t capacity() const { return cap; }
    std::size_t size() const { return items.size(); }
    bool empty() const { return items.empty(); }

    /** Access by recency position (0 = MRU). */
    T &at(std::size_t i) { return items[i]; }
    const T &at(std::size_t i) const { return items[i]; }

    /**
     * Find the first item matching the predicate.
     * @return its recency index, or size() if not found.
     */
    template <typename Pred>
    std::size_t
    find(Pred pred) const
    {
        for (std::size_t i = 0; i < items.size(); ++i)
            if (pred(items[i]))
                return i;
        return items.size();
    }

    /** Promote the item at recency index i to MRU. */
    void
    touch(std::size_t i)
    {
        if (i == 0 || i >= items.size())
            return;
        T tmp = std::move(items[i]);
        items.erase(items.begin() + static_cast<std::ptrdiff_t>(i));
        items.insert(items.begin(), std::move(tmp));
    }

    /**
     * Insert a new item as MRU, evicting the LRU item if the set is
     * full.
     * @return true if an eviction happened.
     */
    bool
    insert(T item)
    {
        bool evicted = false;
        if (cap == 0)
            return false;
        if (items.size() >= cap) {
            items.pop_back();
            evicted = true;
        }
        items.insert(items.begin(), std::move(item));
        return evicted;
    }

    /** Remove the item at recency index i. */
    void
    erase(std::size_t i)
    {
        if (i < items.size())
            items.erase(items.begin() + static_cast<std::ptrdiff_t>(i));
    }

    /** Drop all items. */
    void clear() { items.clear(); }

    /**
     * Verify the set's structural invariant: occupancy never
     * exceeds the configured capacity.  @return empty string if OK,
     * else a description.
     */
    std::string
    audit() const
    {
        if (items.size() > cap)
            return "LRU set holds " + std::to_string(items.size()) +
                " items over its capacity of " + std::to_string(cap);
        return "";
    }

    auto begin() { return items.begin(); }
    auto end() { return items.end(); }
    auto begin() const { return items.begin(); }
    auto end() const { return items.end(); }

  private:
    std::size_t cap;
    std::vector<T> items;
};

} // namespace domino

#endif // DOMINO_COMMON_LRU_H
