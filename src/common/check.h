/**
 * @file
 * Runtime invariant checking: the CHECK / DCHECK macro family.
 *
 * Three tiers, chosen so the Release benchmark binaries stay
 * byte-identical in behaviour and cost:
 *
 *  - CHECK(...)   always on, in every build type.  For conditions
 *    whose violation means the process must not continue (corrupt
 *    metadata, out-of-contract call).  Prints the condition, the
 *    values involved, and the source location, then aborts.
 *  - DCHECK(...)  on in Debug builds and in any build configured
 *    with -DDOMINO_CHECKS=ON (which defines DOMINO_ENABLE_CHECKS).
 *    Compiled to nothing otherwise: operands are not evaluated, so
 *    hot paths may DCHECK freely.
 *  - domino::checksEnabled  a constexpr flag for code that wants to
 *    gate *algorithmic* checking (sampled audit() sweeps in the
 *    timing simulator) rather than a single predicate.
 *
 * The comparison forms (CHECK_EQ, DCHECK_LT, ...) print both
 * operand values on failure, which a plain CHECK(a < b) cannot.
 *
 * See docs/STATIC_ANALYSIS.md for how this fits the wider
 * correctness tooling (clang-tidy gate, sanitizer CI, audits).
 */

#ifndef DOMINO_COMMON_CHECK_H
#define DOMINO_COMMON_CHECK_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace domino
{

#if !defined(NDEBUG) || defined(DOMINO_ENABLE_CHECKS)
/** True when DCHECKs and sampled audits are compiled in. */
inline constexpr bool checksEnabled = true;
#else
inline constexpr bool checksEnabled = false;
#endif

namespace detail
{

/** Render a value for a failure message; falls back for types
 *  without operator<<. */
template <typename T>
std::string
checkValueString(const T &value)
{
    std::ostringstream os;
    os << value;
    return os.str();
}

[[noreturn]] inline void
checkFailed(const char *file, int line, const char *kind,
            const char *expr, const std::string &detail)
{
    std::cerr << file << ':' << line << ": " << kind
              << " failed: " << expr;
    if (!detail.empty())
        std::cerr << " (" << detail << ')';
    std::cerr << std::endl;
    std::abort();
}

} // namespace detail

} // namespace domino

/** Abort with a message unless @p cond holds.  Always compiled in. */
#define DOMINO_CHECK(cond)                                           \
    do {                                                             \
        if (!(cond)) {                                               \
            ::domino::detail::checkFailed(__FILE__, __LINE__,        \
                                          "CHECK", #cond, "");       \
        }                                                            \
    } while (false)

/** CHECK variant printing both operands on failure. */
#define DOMINO_CHECK_OP(op, a, b)                                    \
    do {                                                             \
        const auto &domino_check_a_ = (a);                           \
        const auto &domino_check_b_ = (b);                           \
        if (!(domino_check_a_ op domino_check_b_)) {                 \
            ::domino::detail::checkFailed(                           \
                __FILE__, __LINE__, "CHECK", #a " " #op " " #b,      \
                ::domino::detail::checkValueString(domino_check_a_)  \
                    + " vs " +                                       \
                ::domino::detail::checkValueString(domino_check_b_));\
        }                                                            \
    } while (false)

#define CHECK(cond) DOMINO_CHECK(cond)
#define CHECK_EQ(a, b) DOMINO_CHECK_OP(==, a, b)
#define CHECK_NE(a, b) DOMINO_CHECK_OP(!=, a, b)
#define CHECK_LT(a, b) DOMINO_CHECK_OP(<, a, b)
#define CHECK_LE(a, b) DOMINO_CHECK_OP(<=, a, b)
#define CHECK_GT(a, b) DOMINO_CHECK_OP(>, a, b)
#define CHECK_GE(a, b) DOMINO_CHECK_OP(>=, a, b)

#if !defined(NDEBUG) || defined(DOMINO_ENABLE_CHECKS)
#define DCHECK(cond) DOMINO_CHECK(cond)
#define DCHECK_EQ(a, b) DOMINO_CHECK_OP(==, a, b)
#define DCHECK_NE(a, b) DOMINO_CHECK_OP(!=, a, b)
#define DCHECK_LT(a, b) DOMINO_CHECK_OP(<, a, b)
#define DCHECK_LE(a, b) DOMINO_CHECK_OP(<=, a, b)
#define DCHECK_GT(a, b) DOMINO_CHECK_OP(>, a, b)
#define DCHECK_GE(a, b) DOMINO_CHECK_OP(>=, a, b)
#else
/* Compiled out: operands are never evaluated, matching the
 * documented contract that DCHECK costs nothing in Release. */
#define DOMINO_DCHECK_NOP(...)                                       \
    do {                                                             \
    } while (false)
#define DCHECK(cond) DOMINO_DCHECK_NOP(cond)
#define DCHECK_EQ(a, b) DOMINO_DCHECK_NOP(a, b)
#define DCHECK_NE(a, b) DOMINO_DCHECK_NOP(a, b)
#define DCHECK_LT(a, b) DOMINO_DCHECK_NOP(a, b)
#define DCHECK_LE(a, b) DOMINO_DCHECK_NOP(a, b)
#define DCHECK_GT(a, b) DOMINO_DCHECK_NOP(a, b)
#define DCHECK_GE(a, b) DOMINO_DCHECK_NOP(a, b)
#endif

#endif // DOMINO_COMMON_CHECK_H
