/**
 * @file
 * FlatHashMap: an open-addressing hash map for 64-bit keys, used by
 * the hot metadata-table simulations (STMS/Digram index tables, ISB
 * correlation maps, the N-gram index vectors).
 *
 * Those tables are *pure* key -> value stores: the simulated
 * behaviour depends only on find/insert results, never on iteration
 * order, so the container can be swapped for a faster layout without
 * perturbing any figure output.  (Structures whose semantics DO
 * depend on container order -- the Markov prefetcher picks its
 * bounded-table victim from iteration order -- must keep their
 * original container; see markov.h.)
 *
 * Layout: a control-byte directory in the style of Swiss tables over
 * one key+value slot array.  Each slot has one control byte (0 =
 * empty, else 0x80 | the top 7 hash bits), and probes scan
 * simd::groupBytes control bytes per step with one vector compare
 * (src/common/simd.h) before touching a slot, so misses and long
 * chains resolve from the byte directory alone.  The key and its
 * value stay adjacent in the slot (NOT split into parallel arrays):
 * a successful probe then costs one slot cache line, which matters
 * for the line-keyed ISB successor maps that outgrow L1.  A scalar
 * first-slot check runs ahead of the group loop: at <= 1/2 load most
 * probes settle on their start slot, where the group machinery's
 * fixed cost would dominate.  The probe visits slots in exactly the
 * classic linear-probe order from mix64(key) -- group stepping only
 * batches the scan -- so find/insert results are identical to the
 * previous scalar layout and every figure output is unchanged.  The
 * control array carries a mirror tail (the first groupBytes-1 bytes
 * repeated past the end) so wrapped group loads need no masking.
 * Power-of-two capacity, growth at 1/2 load (probes stay short, and
 * these tables are tiny next to the traces, so we trade memory for
 * speed).  Compared to std::unordered_map this removes the per-node
 * allocation and the pointer chase per lookup, which profiles show
 * dominating the temporal-prefetcher cells of the figure suite.
 * Erase is deliberately not provided (no user needs it; supporting
 * it would require tombstones and slow every probe).
 */

#ifndef DOMINO_COMMON_FLAT_MAP_H
#define DOMINO_COMMON_FLAT_MAP_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/simd.h"
#include "common/types.h"

namespace domino
{

/**
 * Open-addressing map from std::uint64_t to V.
 *
 * Any 64-bit key is valid (occupancy lives in the control bytes,
 * not in a sentinel key).  V must be default-constructible and
 * movable.
 */
template <typename V>
class FlatHashMap
{
  public:
    /** @param initial_capacity pre-sized slot count (rounded up to
     *  a power of two; the map still grows as needed). */
    explicit FlatHashMap(std::size_t initial_capacity = 16)
    {
        reset(ceilPow2(initial_capacity < 2 ? 2 : initial_capacity));
    }

    /** Number of stored keys. */
    std::size_t size() const { return used; }
    bool empty() const { return used == 0; }

    /** Current slot-array capacity (diagnostics/tests). */
    std::size_t capacity() const { return slots.size(); }

    /** Pointer to the value for @p key, or nullptr. */
    const V *
    find(std::uint64_t key) const
    {
        const std::uint64_t h = mix64(key);
        const std::size_t mask = slots.size() - 1;
        const std::uint8_t h2 = ctrlOf(h);
        std::size_t i = static_cast<std::size_t>(h) & mask;
        // First-slot fast path: at <= 1/2 load most probes settle
        // on their start slot, so resolve it with two scalar
        // compares before paying the group machinery's fixed cost.
        // Slot i is the first slot classic linear probing visits,
        // so the probe order is unchanged.
        const std::uint8_t c0 = ctrl[i];
        if (c0 == h2 && slots[i].key == key)
            return &slots[i].val;
        if (c0 == 0)
            return nullptr;
        for (;;) {
            const std::uint8_t *group = ctrl.data() + i;
            const std::uint64_t empty = simd::matchZero(group);
            std::uint64_t match = simd::maskBelowFirst(
                simd::matchByte(group, h2), empty);
            while (match) {
                const std::size_t pos =
                    (i + simd::maskFirst(match)) & mask;
                if (slots[pos].key == key)
                    return &slots[pos].val;
                match = simd::maskClearFirst(match);
            }
            if (empty)
                return nullptr;
            i = (i + simd::groupBytes) & mask;
        }
    }

    V *
    find(std::uint64_t key)
    {
        return const_cast<V *>(
            static_cast<const FlatHashMap *>(this)->find(key));
    }

    bool contains(std::uint64_t key) const { return find(key); }

    /**
     * Hint the cache hierarchy to pull the probe-start slot of
     * @p key ahead of a coming find()/operator[] (lookahead
     * software prefetch).  Pure hint, no observable effect.
     */
    void
    prefetchKey(std::uint64_t key) const
    {
        const std::size_t i = static_cast<std::size_t>(mix64(key)) &
            (slots.size() - 1);
        simd::prefetchRead(ctrl.data() + i);
        simd::prefetchRead(slots.data() + i);
    }

    /** The value for @p key, default-constructed on first use. */
    V &
    operator[](std::uint64_t key)
    {
        if ((used + 1) * 2 > slots.size())
            grow();
        const std::uint64_t h = mix64(key);
        const std::size_t mask = slots.size() - 1;
        const std::uint8_t h2 = ctrlOf(h);
        std::size_t i = static_cast<std::size_t>(h) & mask;
        // Same first-slot fast path as find(); an empty start slot
        // is exactly where classic linear probing would insert.
        const std::uint8_t c0 = ctrl[i];
        if (c0 == h2 && slots[i].key == key)
            return slots[i].val;
        if (c0 == 0) {
            setCtrl(i, h2);
            slots[i].key = key;
            ++used;
            return slots[i].val;
        }
        for (;;) {
            const std::uint8_t *group = ctrl.data() + i;
            const std::uint64_t empty = simd::matchZero(group);
            std::uint64_t match = simd::maskBelowFirst(
                simd::matchByte(group, h2), empty);
            while (match) {
                const std::size_t pos =
                    (i + simd::maskFirst(match)) & mask;
                if (slots[pos].key == key)
                    return slots[pos].val;
                match = simd::maskClearFirst(match);
            }
            if (empty) {
                // First empty slot in probe order: the insert
                // position classic linear probing would pick.
                const std::size_t pos =
                    (i + simd::maskFirst(empty)) & mask;
                setCtrl(pos, h2);
                slots[pos].key = key;
                ++used;
                return slots[pos].val;
            }
            i = (i + simd::groupBytes) & mask;
        }
    }

    /** Drop all entries, keeping the slot arrays. */
    void
    clear()
    {
        std::fill(ctrl.begin(), ctrl.end(),
                  static_cast<std::uint8_t>(0));
        for (Slot &s : slots)
            s = Slot{};
        used = 0;
    }

    /**
     * Verify the map's structural invariants: pow2 capacity, the
     * occupancy count matches the control bytes, every occupied
     * control byte carries the 7-bit hash of its slot's key, the
     * mirror tail repeats the head, the load factor bound holds,
     * and every key is reachable from its probe start.
     * @return empty string if OK, else a description.
     */
    std::string
    audit() const
    {
        const std::size_t cap = slots.size();
        if (cap == 0 || (cap & (cap - 1)))
            return "capacity is not a power of two";
        if (ctrl.size() != cap + simd::groupBytes)
            return "control array size drifted from capacity";
        std::size_t occupied = 0;
        for (std::size_t i = 0; i < cap; ++i) {
            if (ctrl[i] == 0)
                continue;
            ++occupied;
            if (!(ctrl[i] & 0x80))
                return "occupied control byte without its marker "
                       "bit";
            if (ctrl[i] != ctrlOf(mix64(slots[i].key)))
                return "control byte disagrees with its slot's key "
                       "hash";
        }
        for (std::size_t j = 0; j < simd::groupBytes; ++j) {
            if (ctrl[cap + j] != ctrl[(cap + j) & (cap - 1)])
                return "mirror tail disagrees with the head";
        }
        if (occupied != used)
            return "size drifted from control-byte occupancy";
        if (used * 2 > cap)
            return "load factor bound violated";
        for (std::size_t i = 0; i < cap; ++i) {
            if (ctrl[i] && !find(slots[i].key))
                return "key unreachable from its probe start "
                       "(broken probe chain)";
        }
        return "";
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        V val{};
    };

    static std::size_t
    ceilPow2(std::size_t x)
    {
        std::size_t p = 1;
        while (p < x)
            p <<= 1;
        return p;
    }

    /** Control byte of a mixed hash: marker bit + top 7 hash bits
     *  (the probe start uses the low bits, so the two are
     *  independent). */
    static std::uint8_t
    ctrlOf(std::uint64_t h)
    {
        return static_cast<std::uint8_t>(0x80 | (h >> 57));
    }

    /** Write a control byte and keep the mirror tail consistent
     *  (every alias of @p pos inside the tail, which for tiny
     *  capacities repeats more than once). */
    void
    setCtrl(std::size_t pos, std::uint8_t b)
    {
        ctrl[pos] = b;
        for (std::size_t j = pos + slots.size(); j < ctrl.size();
             j += slots.size())
            ctrl[j] = b;
    }

    void
    reset(std::size_t cap)
    {
        ctrl.assign(cap + simd::groupBytes, 0);
        slots.clear();
        slots.resize(cap);
        used = 0;
    }

    void
    grow()
    {
        std::vector<std::uint8_t> old_ctrl = std::move(ctrl);
        std::vector<Slot> old_slots = std::move(slots);
        reset(old_slots.size() * 2);
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (old_ctrl[i])
                (*this)[old_slots[i].key] =
                    std::move(old_slots[i].val);
        }
    }

    /** Control bytes (0 = empty) with a wraparound mirror tail. */
    std::vector<std::uint8_t> ctrl;
    /** Key+value pairs, adjacent so a hit costs one line. */
    std::vector<Slot> slots;
    std::size_t used = 0;
};

} // namespace domino

#endif // DOMINO_COMMON_FLAT_MAP_H
