/**
 * @file
 * FlatHashMap: an open-addressing hash map for 64-bit keys, used by
 * the hot metadata-table simulations (STMS/Digram index tables, ISB
 * correlation maps, the N-gram index vectors).
 *
 * Those tables are *pure* key -> value stores: the simulated
 * behaviour depends only on find/insert results, never on iteration
 * order, so the container can be swapped for a faster layout without
 * perturbing any figure output.  (Structures whose semantics DO
 * depend on container order -- the Markov prefetcher picks its
 * bounded-table victim from iteration order -- must keep their
 * original container; see markov.h.)
 *
 * Layout: one flat slot array, power-of-two capacity, linear
 * probing on mix64(key), growth at 1/2 load (scalar linear probing
 * degrades sharply past ~60% occupancy, and these tables are tiny
 * next to the traces, so we trade memory for short probes).
 * Compared to
 * std::unordered_map this removes the per-node allocation and the
 * pointer chase per lookup, which profiles show dominating the
 * temporal-prefetcher cells of the figure suite.  Erase is
 * deliberately not provided (no user needs it; supporting it would
 * require tombstones and slow every probe).
 */

#ifndef DOMINO_COMMON_FLAT_MAP_H
#define DOMINO_COMMON_FLAT_MAP_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace domino
{

/**
 * Open-addressing map from std::uint64_t to V.
 *
 * Any 64-bit key is valid (occupancy is tracked per slot, not with
 * a sentinel key).  V must be default-constructible and movable.
 */
template <typename V>
class FlatHashMap
{
  public:
    /** @param initial_capacity pre-sized slot count (rounded up to
     *  a power of two; the map still grows as needed). */
    explicit FlatHashMap(std::size_t initial_capacity = 16)
        : slots(ceilPow2(initial_capacity < 2 ? 2 : initial_capacity))
    {}

    /** Number of stored keys. */
    std::size_t size() const { return used; }
    bool empty() const { return used == 0; }

    /** Current slot-array capacity (diagnostics/tests). */
    std::size_t capacity() const { return slots.size(); }

    /** Pointer to the value for @p key, or nullptr. */
    const V *
    find(std::uint64_t key) const
    {
        std::size_t i = probeStart(key);
        while (slots[i].occupied) {
            if (slots[i].key == key)
                return &slots[i].value;
            i = (i + 1) & (slots.size() - 1);
        }
        return nullptr;
    }

    V *
    find(std::uint64_t key)
    {
        return const_cast<V *>(
            static_cast<const FlatHashMap *>(this)->find(key));
    }

    bool contains(std::uint64_t key) const { return find(key); }

    /** The value for @p key, default-constructed on first use. */
    V &
    operator[](std::uint64_t key)
    {
        if ((used + 1) * 2 > slots.size())
            grow();
        std::size_t i = probeStart(key);
        while (slots[i].occupied) {
            if (slots[i].key == key)
                return slots[i].value;
            i = (i + 1) & (slots.size() - 1);
        }
        slots[i].occupied = true;
        slots[i].key = key;
        ++used;
        return slots[i].value;
    }

    /** Drop all entries, keeping the slot array. */
    void
    clear()
    {
        for (Slot &s : slots)
            s = Slot{};
        used = 0;
    }

    /**
     * Verify the map's structural invariants: pow2 capacity, the
     * occupancy count matches the flags, the load factor bound
     * holds, and every key is reachable from its probe start.
     * @return empty string if OK, else a description.
     */
    std::string
    audit() const
    {
        if (slots.empty() || (slots.size() & (slots.size() - 1)))
            return "capacity is not a power of two";
        std::size_t occupied = 0;
        for (const Slot &s : slots)
            occupied += s.occupied ? 1 : 0;
        if (occupied != used)
            return "size drifted from slot occupancy";
        if (used * 2 > slots.size())
            return "load factor bound violated";
        for (const Slot &s : slots) {
            if (s.occupied && !find(s.key))
                return "key unreachable from its probe start "
                       "(broken probe chain)";
        }
        return "";
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        V value{};
        bool occupied = false;
    };

    static std::size_t
    ceilPow2(std::size_t x)
    {
        std::size_t p = 1;
        while (p < x)
            p <<= 1;
        return p;
    }

    std::size_t
    probeStart(std::uint64_t key) const
    {
        return static_cast<std::size_t>(mix64(key)) &
            (slots.size() - 1);
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots);
        slots.assign(old.size() * 2, Slot{});
        used = 0;
        for (Slot &s : old) {
            if (s.occupied)
                (*this)[s.key] = std::move(s.value);
        }
    }

    std::vector<Slot> slots;
    std::size_t used = 0;
};

} // namespace domino

#endif // DOMINO_COMMON_FLAT_MAP_H
