/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every experiment in this repository is reproducible bit-for-bit
 * from a 64-bit seed.  We use SplitMix64 for seeding and
 * Xoshiro256** as the workhorse generator; both are tiny, fast, and
 * well characterised.  std::mt19937 is avoided because its state is
 * bulky and its seeding is easy to get wrong.
 */

#ifndef DOMINO_COMMON_PRNG_H
#define DOMINO_COMMON_PRNG_H

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace domino
{

/**
 * SplitMix64: a tiny 64-bit generator used to expand a single seed
 * into the state of larger generators.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Xoshiro256**: the default PRNG for all workload generation and
 * sampling decisions.
 */
class Prng
{
  public:
    /**
     * Construct from a 64-bit seed (expanded via SplitMix64).
     * Deliberately no default: every PRNG in the repo is seeded
     * explicitly so experiments replay bit-for-bit (enforced by
     * scripts/check_conventions.py).
     */
    explicit Prng(std::uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto &word : s)
            word = sm.next();
    }

    /** Raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t l = static_cast<std::uint64_t>(m);
        if (l < bound) {
            std::uint64_t t = -bound % bound;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric draw: number of failures before the first success
     * with success probability p (support {0, 1, 2, ...}).
     */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 0;
        double u = uniform();
        // Avoid log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return static_cast<std::uint64_t>(
            std::floor(std::log(u) / std::log(1.0 - p)));
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> s;
};

/**
 * Zipf-distributed sampler over {0, ..., n-1} with exponent theta.
 *
 * Precomputes the cumulative distribution; draws are a binary search.
 * Used to pick temporal streams from the stream library so that some
 * streams recur much more often than others, as in real server
 * workloads.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double theta) : cdf(n)
    {
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
            cdf[i] = sum;
        }
        for (auto &v : cdf)
            v /= sum;
    }

    /** Number of items. */
    std::size_t size() const { return cdf.size(); }

    /** Draw an index in [0, n). */
    std::size_t
    draw(Prng &rng) const
    {
        const double u = rng.uniform();
        std::size_t lo = 0, hi = cdf.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (cdf[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    /**
     * Verify the sampler's structural invariants: a non-empty,
     * non-decreasing CDF normalised to 1.  @return empty string if
     * OK, else a description.
     */
    std::string
    audit() const
    {
        if (cdf.empty())
            return "empty CDF";
        for (std::size_t i = 1; i < cdf.size(); ++i)
            if (cdf[i] < cdf[i - 1])
                return "CDF is not non-decreasing";
        if (cdf.back() < 1.0 - 1e-9 || cdf.back() > 1.0 + 1e-9)
            return "CDF is not normalised to 1";
        return "";
    }

  private:
    std::vector<double> cdf;
};

} // namespace domino

#endif // DOMINO_COMMON_PRNG_H
