#include "cli.h"

#include <cstdlib>

namespace domino
{

CliArgs::CliArgs(int argc, char **argv)
{
    if (argc > 0)
        prog = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            pos.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            flags[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)
                   != 0 && flags.find(arg) == flags.end()) {
            // "--name value" form: consume the next token as the
            // value unless it is itself a flag.
            flags[arg] = argv[++i];
        } else {
            flags[arg] = "";
        }
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return flags.find(name) != flags.end();
}

std::string
CliArgs::get(const std::string &name, const std::string &fallback) const
{
    const auto it = flags.find(name);
    return it != flags.end() ? it->second : fallback;
}

std::uint64_t
CliArgs::getU64(const std::string &name, std::uint64_t fallback) const
{
    const auto it = flags.find(name);
    if (it == flags.end() || it->second.empty())
        return fallback;
    return std::strtoull(it->second.c_str(), nullptr, 0);
}

double
CliArgs::getDouble(const std::string &name, double fallback) const
{
    const auto it = flags.find(name);
    if (it == flags.end() || it->second.empty())
        return fallback;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
CliArgs::getBool(const std::string &name, bool fallback) const
{
    const auto it = flags.find(name);
    if (it == flags.end())
        return fallback;
    if (it->second.empty() || it->second == "true" || it->second == "1")
        return true;
    return false;
}

} // namespace domino
