#include "table_format.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace domino
{

TextTable::TextTable(std::vector<std::string> headers)
    : header(std::move(headers))
{}

void
TextTable::newRow()
{
    data.emplace_back();
}

void
TextTable::cell(const std::string &value)
{
    if (data.empty())
        newRow();
    data.back().push_back(value);
}

void
TextTable::cell(double value, int decimals)
{
    cell(formatFixed(value, decimals));
}

void
TextTable::cellPct(double fraction, int decimals)
{
    cell(formatPct(fraction, decimals));
}

void
TextTable::cell(std::uint64_t value)
{
    cell(std::to_string(value));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size(), 0);
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : data)
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            static const std::string empty;
            const std::string &v = c < row.size() ? row[c] : empty;
            os << "  ";
            if (c == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(widths[c])) << v;
        }
        os << "\n";
    };

    emit_row(header);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &row : data)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit_row(header);
    for (const auto &row : data)
        emit_row(row);
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // anonymous namespace

void
TextTable::printJson(std::ostream &os) const
{
    os << "[\n";
    for (std::size_t r = 0; r < data.size(); ++r) {
        os << "  {";
        const auto &row = data[r];
        for (std::size_t c = 0; c < row.size() && c < header.size();
             ++c) {
            if (c)
                os << ", ";
            os << '"' << jsonEscape(header[c]) << "\": \""
               << jsonEscape(row[c]) << '"';
        }
        os << (r + 1 < data.size() ? "},\n" : "}\n");
    }
    os << "]\n";
}

std::string
formatFixed(double value, int decimals)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(decimals) << value;
    return ss.str();
}

std::string
formatPct(double fraction, int decimals)
{
    return formatFixed(100.0 * fraction, decimals) + "%";
}

std::string
formatBytes(std::uint64_t bytes)
{
    static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    double v = static_cast<double>(bytes);
    int unit = 0;
    while (v >= 1024.0 && unit < 4) {
        v /= 1024.0;
        ++unit;
    }
    return formatFixed(v, v < 10 ? 2 : 1) + " " + units[unit];
}

} // namespace domino
