/**
 * @file
 * Text-table and CSV emission for the benchmark harnesses.
 *
 * Every figure/table reproduction prints an aligned text table on
 * stdout (mirroring the paper's rows/series) and can emit the same
 * data as CSV for plotting.
 */

#ifndef DOMINO_COMMON_TABLE_FORMAT_H
#define DOMINO_COMMON_TABLE_FORMAT_H

// conventions: allow-file(audit-coverage) -- render-time formatting buffer; rectangularity is checked at
// render()/csv() time and the output itself is golden-tested

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace domino
{

/**
 * A rectangular table of strings with a header row, rendered either
 * as an aligned monospace table or as CSV.
 */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it. */
    void newRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &value);

    /** Append a numeric cell with fixed decimals. */
    void cell(double value, int decimals = 2);

    /** Append a percentage cell ("12.3%"). */
    void cellPct(double fraction, int decimals = 1);

    /** Append an integer cell. */
    void cell(std::uint64_t value);

    /** Number of data rows. */
    std::size_t rows() const { return data.size(); }

    /** Render as an aligned text table. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

    /**
     * Render as a JSON array of row objects keyed by the column
     * headers.  Cell values are emitted as the formatted strings
     * the other renderers print (e.g. "12.3%"), so the three
     * formats always agree.
     */
    void printJson(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> data;
};

/** Format a double with fixed decimals. */
std::string formatFixed(double value, int decimals);

/** Format a fraction as a percentage string. */
std::string formatPct(double fraction, int decimals = 1);

/** Format a byte count with a human unit (KB/MB/GB). */
std::string formatBytes(std::uint64_t bytes);

} // namespace domino

#endif // DOMINO_COMMON_TABLE_FORMAT_H
