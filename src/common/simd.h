/**
 * @file
 * Portable SIMD primitives for the hot metadata kernels (the packed
 * EIT rows of src/domino/eit.h and the control-byte group probe of
 * src/common/flat_map.h).
 *
 * The backend is selected at compile time: AVX2, SSE2, or NEON when
 * the compiler advertises them, else a portable SWAR fallback on
 * plain 64-bit arithmetic.  Building with -DDOMINO_NO_SIMD=ON forces
 * the SWAR fallback everywhere.  Every backend implements the same
 * observable contract -- findEqU64 returns the same index, the byte
 * masks enumerate the same byte positions in the same order -- so
 * swapping backends cannot perturb any figure output (the
 * byte-identical determinism contract).
 *
 * This is the only file allowed to include vendor intrinsic headers
 * (<immintrin.h>, <arm_neon.h>, ...); the domlint `raw-simd-include`
 * rule enforces that everywhere else goes through these wrappers.
 *
 * Byte masks: matchByte()/matchZero() return an opaque 64-bit mask
 * with at most one set bit per group byte.  The bit *position*
 * encoding differs per backend (movemask vs high-bit lanes), so
 * masks must only be consumed through maskFirst()/maskClearFirst()/
 * maskBelowFirst(), which agree across backends.  The SWAR path
 * assumes little-endian byte order, like the rest of the repo
 * (docs/TRACE_FORMAT.md).
 */

#ifndef DOMINO_COMMON_SIMD_H
#define DOMINO_COMMON_SIMD_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if !defined(DOMINO_NO_SIMD)
#if defined(__AVX2__)
#define DOMINO_SIMD_AVX2 1
#define DOMINO_SIMD_SSE2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#define DOMINO_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define DOMINO_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace domino::simd
{

/** Compile-time backend name (diagnostics, EXPERIMENTS.md tables). */
constexpr const char *
backendName()
{
#if defined(DOMINO_SIMD_AVX2)
    return "avx2";
#elif defined(DOMINO_SIMD_SSE2)
    return "sse2";
#elif defined(DOMINO_SIMD_NEON)
    return "neon";
#else
    return "swar";
#endif
}

/**
 * Hint the cache hierarchy to pull @p p for a future read.  Pure
 * hint: no architectural effect, so callers stay byte-identical
 * with or without it (and on compilers without the builtin).
 */
inline void
prefetchRead(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0, 3);
#else
    (void)p;
#endif
}

/** Bytes scanned per group-probe step (flat_map control bytes). */
inline constexpr std::size_t groupBytes = 8;

namespace detail
{

inline std::uint64_t
loadLe64(const std::uint8_t *p)
{
    std::uint64_t x;
    std::memcpy(&x, p, sizeof(x));
    return x;
}

/**
 * Exact zero-byte detector: bit 8i set iff byte i of @p x is zero.
 * The carry-free form below has no false positives (unlike the
 * classic `(v - 0x01..) & ~v & 0x80..`, which can flag the byte
 * after a borrow), so the SWAR mask is bit-for-bit the set of
 * matching bytes -- required for cross-backend identical results.
 */
inline std::uint64_t
zeroByteBits(std::uint64_t x)
{
    constexpr std::uint64_t low7 = 0x7f7f7f7f7f7f7f7fULL;
    constexpr std::uint64_t high = 0x8080808080808080ULL;
    std::uint64_t y = (x & low7) + low7;  // high bit: low 7 bits != 0
    y |= x;                               // high bit: byte != 0
    return (~y & high) >> 7;
}

} // namespace detail

/**
 * Byte mask of group bytes equal to @p b (group is groupBytes wide).
 */
inline std::uint64_t
matchByte(const std::uint8_t *group, std::uint8_t b)
{
#if defined(DOMINO_SIMD_SSE2)
    const __m128i g = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(group));
    const __m128i eq = _mm_cmpeq_epi8(g, _mm_set1_epi8(
        static_cast<char>(b)));
    return static_cast<std::uint64_t>(_mm_movemask_epi8(eq)) & 0xff;
#elif defined(DOMINO_SIMD_NEON)
    const uint8x8_t g = vld1_u8(group);
    const uint8x8_t eq = vceq_u8(g, vdup_n_u8(b));
    const std::uint64_t m =
        vget_lane_u64(vreinterpret_u64_u8(eq), 0);
    return m & 0x0101010101010101ULL;
#else
    const std::uint64_t x = detail::loadLe64(group) ^
        (0x0101010101010101ULL * b);
    return detail::zeroByteBits(x);
#endif
}

/** Byte mask of zero (empty) group bytes. */
inline std::uint64_t
matchZero(const std::uint8_t *group)
{
#if defined(DOMINO_SIMD_SSE2)
    const __m128i g = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(group));
    const __m128i eq = _mm_cmpeq_epi8(g, _mm_setzero_si128());
    return static_cast<std::uint64_t>(_mm_movemask_epi8(eq)) & 0xff;
#elif defined(DOMINO_SIMD_NEON)
    const uint8x8_t g = vld1_u8(group);
    const uint8x8_t eq = vceq_u8(g, vdup_n_u8(0));
    const std::uint64_t m =
        vget_lane_u64(vreinterpret_u64_u8(eq), 0);
    return m & 0x0101010101010101ULL;
#else
    return detail::zeroByteBits(detail::loadLe64(group));
#endif
}

/** Byte index of the first set mask bit (mask must be nonzero). */
inline std::size_t
maskFirst(std::uint64_t mask)
{
#if defined(DOMINO_SIMD_SSE2)
    return static_cast<std::size_t>(std::countr_zero(mask));
#else
    return static_cast<std::size_t>(std::countr_zero(mask)) >> 3;
#endif
}

/** Clear the first (lowest byte index) set mask bit. */
inline std::uint64_t
maskClearFirst(std::uint64_t mask)
{
    return mask & (mask - 1);
}

/**
 * Restrict @p mask to byte positions strictly before the first set
 * bit of @p ref (all of @p mask when @p ref is zero).  Used to stop
 * a probe chain at the first empty control byte.
 */
inline std::uint64_t
maskBelowFirst(std::uint64_t mask, std::uint64_t ref)
{
    if (!ref)
        return mask;
    return mask & ((ref & (~ref + 1)) - 1);
}

/**
 * First index i < @p n with lanes[i] == @p key, else @p n.  The
 * workhorse of the packed EIT row probe: one vector compare over the
 * contiguous tag lane.
 */
inline std::size_t
findEqU64(const std::uint64_t *lanes, std::size_t n,
          std::uint64_t key)
{
    std::size_t i = 0;
#if defined(DOMINO_SIMD_AVX2)
    const __m256i k4 = _mm256_set1_epi64x(
        static_cast<long long>(key));
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(lanes + i));
        const int m = _mm256_movemask_pd(_mm256_castsi256_pd(
            _mm256_cmpeq_epi64(v, k4)));
        if (m)
            return i + static_cast<std::size_t>(
                std::countr_zero(static_cast<unsigned>(m)));
    }
#elif defined(DOMINO_SIMD_SSE2)
    // SSE2 has no 64-bit compare; match both 32-bit halves.
    const __m128i k2 = _mm_set1_epi64x(static_cast<long long>(key));
    for (; i + 2 <= n; i += 2) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(lanes + i));
        const int m = _mm_movemask_epi8(_mm_cmpeq_epi32(v, k2));
        if ((m & 0x00ff) == 0x00ff)
            return i;
        if ((m & 0xff00) == 0xff00)
            return i + 1;
    }
#elif defined(DOMINO_SIMD_NEON)
    const uint64x2_t k2 = vdupq_n_u64(key);
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t v = vld1q_u64(lanes + i);
        const uint64x2_t eq = vceqq_u64(v, k2);
        if (vgetq_lane_u64(eq, 0))
            return i;
        if (vgetq_lane_u64(eq, 1))
            return i + 1;
    }
#endif
    for (; i < n; ++i) {
        if (lanes[i] == key)
            return i;
    }
    return n;
}

} // namespace domino::simd

#endif // DOMINO_COMMON_SIMD_H
