/**
 * @file
 * Lightweight statistics accumulators used by the analysis layer.
 */

#ifndef DOMINO_COMMON_STATS_H
#define DOMINO_COMMON_STATS_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <mutex>

namespace domino
{

/**
 * Streaming accumulator for mean / variance / min / max using
 * Welford's algorithm (numerically stable, single pass).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n;
        const double delta = x - meanVal;
        meanVal += delta / static_cast<double>(n);
        m2 += delta * (x - meanVal);
        minVal = std::min(minVal, x);
        maxVal = std::max(maxVal, x);
        sumVal += x;
    }

    /** Number of samples seen. */
    std::uint64_t count() const { return n; }

    /** Arithmetic mean (0 if empty). */
    double mean() const { return n ? meanVal : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sumVal; }

    /** Population variance (0 if fewer than two samples). */
    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n) : 0.0;
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Smallest sample (+inf if empty). */
    double min() const { return minVal; }

    /** Largest sample (-inf if empty). */
    double max() const { return maxVal; }

  private:
    std::uint64_t n = 0;
    double meanVal = 0.0;
    double m2 = 0.0;
    double sumVal = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
};

/**
 * Geometric-mean accumulator for speedup aggregation (the paper
 * reports GMean in Figure 14).
 */
class GeoMean
{
  public:
    /** Add one strictly positive sample. */
    void
    add(double x)
    {
        logSum += std::log(x);
        ++n;
    }

    /** Number of samples. */
    std::uint64_t count() const { return n; }

    /** Geometric mean (1.0 if empty). */
    double
    value() const
    {
        return n ? std::exp(logSum / static_cast<double>(n)) : 1.0;
    }

  private:
    double logSum = 0.0;
    std::uint64_t n = 0;
};

/**
 * Thread-safe progress reporter for grid sweeps: counts completed
 * cells against a known total and, when enabled, repaints a
 * one-line "[done/total cells] elapsed" status on stderr so it
 * never interleaves with the result tables on stdout.
 */
class ProgressMeter
{
  public:
    ProgressMeter(std::uint64_t totalCells, bool enabled)
        : total(totalCells), live(enabled),
          start(std::chrono::steady_clock::now())
    {}

    /** Record one completed cell (callable from any thread). */
    void
    tick()
    {
        const std::uint64_t n = done.fetch_add(1) + 1;
        if (!live)
            return;
        std::lock_guard<std::mutex> lock(io);
        std::fprintf(stderr, "\r[%llu/%llu cells] %.1fs",
                     static_cast<unsigned long long>(n),
                     static_cast<unsigned long long>(total),
                     elapsedSeconds());
        std::fflush(stderr);
    }

    /** Terminate the status line once the sweep is over. */
    void
    finish()
    {
        if (live && done.load() > 0)
            std::fputc('\n', stderr);
    }

    /** Cells completed so far. */
    std::uint64_t completed() const { return done.load(); }

    /** Seconds since construction. */
    double
    elapsedSeconds() const
    {
        const auto dt = std::chrono::steady_clock::now() - start;
        return std::chrono::duration<double>(dt).count();
    }

  private:
    std::uint64_t total;
    bool live;
    std::atomic<std::uint64_t> done{0};
    std::mutex io;
    std::chrono::steady_clock::time_point start;
};

/** Safe ratio helper: a/b, 0 when b == 0. */
inline double
ratio(double a, double b)
{
    return b != 0.0 ? a / b : 0.0;
}

/** Percentage helper: 100*a/b, 0 when b == 0. */
inline double
pct(double a, double b)
{
    return 100.0 * ratio(a, b);
}

} // namespace domino

#endif // DOMINO_COMMON_STATS_H
