/**
 * @file
 * Lightweight statistics accumulators used by the analysis layer.
 */

#ifndef DOMINO_COMMON_STATS_H
#define DOMINO_COMMON_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace domino
{

/**
 * Streaming accumulator for mean / variance / min / max using
 * Welford's algorithm (numerically stable, single pass).
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n;
        const double delta = x - meanVal;
        meanVal += delta / static_cast<double>(n);
        m2 += delta * (x - meanVal);
        minVal = std::min(minVal, x);
        maxVal = std::max(maxVal, x);
        sumVal += x;
    }

    /** Number of samples seen. */
    std::uint64_t count() const { return n; }

    /** Arithmetic mean (0 if empty). */
    double mean() const { return n ? meanVal : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sumVal; }

    /** Population variance (0 if fewer than two samples). */
    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n) : 0.0;
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Smallest sample (+inf if empty). */
    double min() const { return minVal; }

    /** Largest sample (-inf if empty). */
    double max() const { return maxVal; }

  private:
    std::uint64_t n = 0;
    double meanVal = 0.0;
    double m2 = 0.0;
    double sumVal = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
};

/**
 * Geometric-mean accumulator for speedup aggregation (the paper
 * reports GMean in Figure 14).
 */
class GeoMean
{
  public:
    /** Add one strictly positive sample. */
    void
    add(double x)
    {
        logSum += std::log(x);
        ++n;
    }

    /** Number of samples. */
    std::uint64_t count() const { return n; }

    /** Geometric mean (1.0 if empty). */
    double
    value() const
    {
        return n ? std::exp(logSum / static_cast<double>(n)) : 1.0;
    }

  private:
    double logSum = 0.0;
    std::uint64_t n = 0;
};

/** Safe ratio helper: a/b, 0 when b == 0. */
inline double
ratio(double a, double b)
{
    return b != 0.0 ? a / b : 0.0;
}

/** Percentage helper: 100*a/b, 0 when b == 0. */
inline double
pct(double a, double b)
{
    return 100.0 * ratio(a, b);
}

} // namespace domino

#endif // DOMINO_COMMON_STATS_H
