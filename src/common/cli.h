/**
 * @file
 * Minimal command-line flag parser for the benchmark harnesses and
 * examples.
 *
 * Supports "--name value", "--name=value", and boolean "--name"
 * forms.  Unknown flags are collected so harnesses can reject typos.
 */

#ifndef DOMINO_COMMON_CLI_H
#define DOMINO_COMMON_CLI_H

// conventions: allow-file(audit-coverage) -- write-once parse result of argv; no mutation after
// construction, so there is no mid-run state to audit

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace domino
{

/** Parsed command line: flag/value pairs plus positional arguments. */
class CliArgs
{
  public:
    /** Parse argv; flags start with "--". */
    CliArgs(int argc, char **argv);

    /** True if the flag was given (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of a flag, or fallback if absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Integer value of a flag, or fallback if absent. */
    std::uint64_t getU64(const std::string &name,
                         std::uint64_t fallback) const;

    /** Double value of a flag, or fallback if absent. */
    double getDouble(const std::string &name, double fallback) const;

    /** Boolean flag: present without value, or "=true/false". */
    bool getBool(const std::string &name, bool fallback = false) const;

    /** Positional (non-flag) arguments, in order. */
    const std::vector<std::string> &positional() const { return pos; }

    /** Program name (argv[0]). */
    const std::string &program() const { return prog; }

  private:
    std::string prog;
    std::map<std::string, std::string> flags;
    std::vector<std::string> pos;
};

} // namespace domino

#endif // DOMINO_COMMON_CLI_H
