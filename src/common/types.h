/**
 * @file
 * Fundamental address and size types shared by every module.
 *
 * The simulator works on byte addresses (Addr) at trace level and on
 * cache-line addresses (LineAddr) inside the memory hierarchy and all
 * prefetchers.  Keeping the two as distinct aliases makes conversion
 * sites explicit and greppable.
 */

#ifndef DOMINO_COMMON_TYPES_H
#define DOMINO_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace domino
{

/** A byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** A cache-line address, i.e. a byte address shifted by the block bits. */
using LineAddr = std::uint64_t;

/** A simulated cycle count. */
using Cycles = std::uint64_t;

/** Log2 of the cache block size used throughout the paper (64 B). */
constexpr unsigned blockBits = 6;

/** Cache block size in bytes. */
constexpr std::uint64_t blockBytes = 1ULL << blockBits;

/** Log2 of the page size assumed by the spatial prefetcher (4 KB). */
constexpr unsigned pageBits = 12;

/** Page size in bytes. */
constexpr std::uint64_t pageBytes = 1ULL << pageBits;

/** Cache blocks per page. */
constexpr std::uint64_t blocksPerPage = pageBytes / blockBytes;

/** Convert a byte address to its cache-line address. */
constexpr LineAddr
lineOf(Addr addr)
{
    return addr >> blockBits;
}

/** Convert a cache-line address back to the byte address of its base. */
constexpr Addr
byteOf(LineAddr line)
{
    return line << blockBits;
}

/** Page number of a cache-line address. */
constexpr std::uint64_t
pageOfLine(LineAddr line)
{
    return line >> (pageBits - blockBits);
}

/** Block offset of a cache-line address inside its page. */
constexpr std::uint64_t
pageOffsetOfLine(LineAddr line)
{
    return line & (blocksPerPage - 1);
}

/** An invalid address sentinel (never produced by the generators). */
constexpr Addr invalidAddr = ~0ULL;

/**
 * Mix the bits of a 64-bit value (finalizer of SplitMix64).
 *
 * Used as the hash for all bucketised metadata tables; cheap and has
 * full avalanche, so low-entropy line addresses spread over rows.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine two addresses into one hashable key (for pair lookups). */
constexpr std::uint64_t
pairKey(std::uint64_t a, std::uint64_t b)
{
    return mix64(a * 0x9ddfea08eb382d69ULL + b);
}

} // namespace domino

#endif // DOMINO_COMMON_TYPES_H
