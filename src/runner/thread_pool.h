/**
 * @file
 * Fixed-size worker pool for the experiment runner.
 *
 * Tasks are dequeued in FIFO submission order; results and
 * exceptions propagate through the std::future returned by
 * submit().  The destructor drains every queued task before
 * joining, so a pool can be destroyed immediately after the last
 * submit() without losing work.
 */

#ifndef DOMINO_RUNNER_THREAD_POOL_H
#define DOMINO_RUNNER_THREAD_POOL_H

// conventions: allow-file(audit-coverage) -- concurrency primitive; its invariants are lock/condvar
// protocol properties a single-threaded structural audit cannot
// observe (covered by the ThreadSanitizer CI job instead)

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace domino::runner
{

/** A fixed-size pool of worker threads executing queued tasks. */
class ThreadPool
{
  public:
    /** Start `threads` workers (clamped to at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /**
     * Queue a nullary callable; its return value (or exception)
     * is delivered through the returned future.
     */
    template <typename Fn>
    auto
    submit(Fn fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using R = std::invoke_result_t<Fn>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> result = task->get_future();
        enqueue([task]() { (*task)(); });
        return result;
    }

    /**
     * The job count meaning "use all hardware threads"
     * (`--jobs 0`): hardware_concurrency, at least one.
     */
    static unsigned defaultJobs();

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    std::mutex mtx;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    bool stopping = false;
    std::vector<std::thread> workers;
};

} // namespace domino::runner

#endif // DOMINO_RUNNER_THREAD_POOL_H
