#include "thread_pool.h"

#include <algorithm>

namespace domino::runner
{

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = std::max(threads, 1u);
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        queue.push_back(std::move(job));
    }
    cv.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mtx);
            cv.wait(lock,
                    [this]() { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and fully drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        job(); // packaged_task captures any exception
    }
}

unsigned
ThreadPool::defaultJobs()
{
    return std::max(std::thread::hardware_concurrency(), 1u);
}

} // namespace domino::runner
