#include "experiment_grid.h"

#include <algorithm>

#include "common/prng.h"

namespace domino::runner
{

std::string
ShardSpec::validate() const
{
    if (shards == 0)
        return "--shards must be at least 1";
    if (shard >= shards) {
        return "--shard " + std::to_string(shard) +
            " out of range for --shards " + std::to_string(shards);
    }
    return "";
}

std::uint64_t
deriveCellSeed(std::uint64_t baseSeed, std::size_t workload,
               std::size_t rep)
{
    if (rep == 0)
        return baseSeed;
    // Two SplitMix64 steps keyed by the coordinates: statistically
    // independent streams per (workload, rep), stable across runs.
    SplitMix64 sm(baseSeed ^
                  (0x9e3779b97f4a7c15ULL * (workload + 1)) ^
                  (0xd1b54a32d192ed03ULL * rep));
    sm.next();
    return sm.next();
}

ExperimentGrid::ExperimentGrid(GridShape shape, std::uint64_t baseSeed)
    : dims(shape), base(baseSeed)
{
    dims.workloads = std::max<std::size_t>(dims.workloads, 1);
    dims.configs = std::max<std::size_t>(dims.configs, 1);
    dims.reps = std::max<std::size_t>(dims.reps, 1);
}

Cell
ExperimentGrid::cell(std::size_t flat) const
{
    Cell c;
    c.flat = flat;
    c.rep = flat % dims.reps;
    flat /= dims.reps;
    c.config = flat % dims.configs;
    c.workload = flat / dims.configs;
    c.seed = deriveCellSeed(base, c.workload, c.rep);
    return c;
}

} // namespace domino::runner
