/**
 * @file
 * ExperimentGrid: deterministic parallel fan-out of experiment
 * cells over a (workload x config x rep) lattice.
 *
 * Every figure harness enumerates the same kind of lattice: each
 * workload is evaluated under several configurations (techniques,
 * table sizes, lookup depths, ...), optionally replicated over
 * seeds.  The grid owns two invariants that make a parallel sweep
 * indistinguishable from a serial one:
 *
 *  1. *Seeding is positional.*  A cell's PRNG seed is a pure
 *     function of its coordinates and the base seed
 *     (deriveCellSeed), never of which worker picked it up or
 *     when.  Rep 0 maps to the base seed itself, so single-rep
 *     runs reproduce the numbers historically measured by the
 *     serial harnesses.  The config axis deliberately does not
 *     participate: all techniques in one figure row must observe
 *     the identical workload trace to be comparable.
 *
 *  2. *Results are assembled in flat order* (rep fastest, then
 *     config, then workload), regardless of completion order.
 *
 * Together these guarantee `--jobs N` produces byte-identical
 * output for every N (asserted by tests/test_runner.cc).
 */

#ifndef DOMINO_RUNNER_EXPERIMENT_GRID_H
#define DOMINO_RUNNER_EXPERIMENT_GRID_H

// conventions: allow-file(audit-coverage) -- result accumulator behind a mutex; cells are append-only and
// validated by the figure golden tests, not mid-run sampling

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/stats.h"
#include "runner/thread_pool.h"

namespace domino::runner
{

/**
 * Multi-process sharding of a grid's *workload axis*: shard i of K
 * owns the workloads w with w % K == i, so K cooperating processes
 * (`--shards K --shard i`) partition a figure without coordination
 * and a merger (scripts/run_sharded.py) reassembles the canonical
 * row order by round-robin interleave.
 *
 * Seed safety: restricting the workload list re-indexes workloads,
 * but rep-0 cells seed with the base seed regardless of position
 * (deriveCellSeed), so for single-rep grids -- every current figure
 * harness -- a sharded run computes bit-identical rows to the
 * unsharded run.  A replicated (reps > 1) grid must instead keep
 * absolute workload indices when sharding; validate() rejects
 * nothing about reps because the grid cannot see the caller's
 * list restriction, so replicated harnesses own that caveat.
 */
struct ShardSpec
{
    unsigned shards = 1;
    unsigned shard = 0;

    /** True when this shard runs workload @p workload (by its
     *  position in the full, unsharded workload list). */
    bool
    owns(std::size_t workload) const
    {
        return shards <= 1 || workload % shards == shard;
    }

    /** True when the spec actually restricts anything. */
    bool active() const { return shards > 1; }

    /**
     * Verify the spec is well-formed: at least one shard and a
     * shard index inside [0, shards).
     * @return empty string if OK, else a description.
     */
    std::string validate() const;
};

/** Extent of each grid axis (all at least one cell). */
struct GridShape
{
    std::size_t workloads = 1;
    std::size_t configs = 1;
    std::size_t reps = 1;
};

/** One experiment cell: coordinates plus the derived seed. */
struct Cell
{
    std::size_t workload = 0;
    std::size_t config = 0;
    std::size_t rep = 0;
    /** Row-major flat index: (workload * configs + config) * reps + rep. */
    std::size_t flat = 0;
    /** Positional PRNG seed (see deriveCellSeed). */
    std::uint64_t seed = 0;
};

/**
 * Per-cell seed: base for rep 0 (serial-harness compatibility),
 * a SplitMix64-mixed function of (base, workload, rep) for
 * higher reps.  Independent of the config axis and of execution
 * order by construction.
 */
std::uint64_t deriveCellSeed(std::uint64_t baseSeed,
                             std::size_t workload, std::size_t rep);

/** The (workload x config x rep) lattice and its parallel driver. */
class ExperimentGrid
{
  public:
    ExperimentGrid(GridShape shape, std::uint64_t baseSeed);

    /** Total number of cells. */
    std::size_t
    size() const
    {
        return dims.workloads * dims.configs * dims.reps;
    }

    const GridShape &shape() const { return dims; }

    /** Reconstruct a cell from its flat index. */
    Cell cell(std::size_t flat) const;

    /**
     * Evaluate `fn(const Cell &)` over every cell using `jobs`
     * worker threads (<=1 runs inline on the calling thread) and
     * return the results in flat order.  `progress`, when given,
     * is ticked once per completed cell from whichever thread
     * finished it.
     *
     * If any cell throws, the exception of the lowest-flat-index
     * failing cell is rethrown after all cells have run.
     */
    template <typename Fn>
    auto
    run(unsigned jobs, Fn fn, ProgressMeter *progress = nullptr) const
        -> std::vector<std::invoke_result_t<Fn, const Cell &>>
    {
        using R = std::invoke_result_t<Fn, const Cell &>;
        static_assert(!std::is_void_v<R>,
                      "grid cells must return a value");
        const std::size_t n = size();
        std::vector<R> results;
        results.reserve(n);

        if (jobs <= 1) {
            for (std::size_t flat = 0; flat < n; ++flat) {
                results.push_back(fn(cell(flat)));
                if (progress)
                    progress->tick();
            }
            return results;
        }

        ThreadPool pool(jobs);
        std::vector<std::future<R>> futures;
        futures.reserve(n);
        for (std::size_t flat = 0; flat < n; ++flat) {
            futures.push_back(pool.submit(
                [this, flat, &fn, progress]() {
                    R r = fn(cell(flat));
                    if (progress)
                        progress->tick();
                    return r;
                }));
        }
        for (auto &f : futures)
            results.push_back(f.get());
        return results;
    }

  private:
    GridShape dims;
    std::uint64_t base;
};

} // namespace domino::runner

#endif // DOMINO_RUNNER_EXPERIMENT_GRID_H
