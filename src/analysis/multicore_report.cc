#include "multicore_report.h"

#include <algorithm>
#include <cstdio>

namespace domino
{

double
MulticoreSummary::imbalance() const
{
    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (const auto &row : cores) {
        if (first) {
            lo = hi = row.ipc;
            first = false;
        } else {
            lo = std::min(lo, row.ipc);
            hi = std::max(hi, row.ipc);
        }
    }
    return lo > 0.0 ? hi / lo : 0.0;
}

MulticoreSummary
summarizeMulticore(const MultiCoreResult &result, double core_ghz)
{
    MulticoreSummary s;
    for (unsigned c = 0; c < result.cores.size(); ++c) {
        const McCoreResult &core = result.cores[c];
        McCoreRow row;
        row.core = c;
        row.ipc = core.ipc();
        row.coverage = core.coverage();
        row.queuePerKiloInst = core.instructions
            ? 1000.0 * static_cast<double>(core.queueCycles) /
                static_cast<double>(core.instructions)
            : 0.0;
        row.channelBytes = core.channelBytes;
        row.droppedPrefetches = core.droppedPrefetches;
        s.cores.push_back(row);
    }
    s.systemIpc = result.systemIpc();
    s.aggregateCoverage = result.aggregateCoverage();
    s.metadataShare = result.metadataShare();
    s.bandwidthGBs = result.bandwidthGBs(core_ghz);
    const Cycles span = result.makespan();
    s.channelUtilization = span
        ? static_cast<double>(result.channelBusyCycles) /
            static_cast<double>(span)
        : 0.0;
    s.queueCycles = result.totalQueueCycles();
    s.traffic = result.traffic;
    return s;
}

std::string
formatMulticoreSummary(const MulticoreSummary &summary)
{
    std::string out;
    char line[160];
    std::snprintf(line, sizeof line,
                  "%-5s %8s %8s %10s %12s %8s\n", "core", "ipc",
                  "cov", "q/kinst", "chanBytes", "dropped");
    out += line;
    for (const auto &row : summary.cores) {
        std::snprintf(line, sizeof line,
                      "%-5u %8.3f %8.3f %10.2f %12llu %8llu\n",
                      row.core, row.ipc, row.coverage,
                      row.queuePerKiloInst,
                      static_cast<unsigned long long>(
                          row.channelBytes),
                      static_cast<unsigned long long>(
                          row.droppedPrefetches));
        out += line;
    }
    std::snprintf(
        line, sizeof line,
        "chip  ipc=%.3f cov=%.3f metaShare=%.3f bw=%.2fGB/s "
        "util=%.3f imbalance=%.3f\n",
        summary.systemIpc, summary.aggregateCoverage,
        summary.metadataShare, summary.bandwidthGBs,
        summary.channelUtilization, summary.imbalance());
    out += line;
    return out;
}

} // namespace domino
