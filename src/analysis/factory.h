/**
 * @file
 * Factory constructing the prefetchers evaluated in the paper
 * (Section IV.D), with experiment-scaled metadata sizes.
 */

#ifndef DOMINO_ANALYSIS_FACTORY_H
#define DOMINO_ANALYSIS_FACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "adaptive/degree_controller.h"
#include "multicore/channel_feedback.h"
#include "prefetch/prefetcher.h"

namespace domino
{

/** Knobs shared by all constructed prefetchers. */
struct FactoryConfig
{
    /** Prefetch degree. */
    unsigned degree = 4;
    /**
     * History capacity for the temporal prefetchers.  The paper uses
     * 16 M entries; the default here is scaled to the benchmark
     * trace lengths (pass the paper value explicitly to reproduce
     * the original configuration).
     */
    std::uint64_t htEntries = 1ULL << 20;
    /** EIT rows for Domino (paper: 2 M). */
    std::uint64_t eitRows = 1ULL << 17;
    /** Entries per EIT super-entry (paper: three). */
    unsigned entriesPerSuper = 3;
    /** Sampling probability for metadata updates (paper: 12.5 %). */
    double samplingProb = 0.125;
    /** Stream-end replay cap (0 = off). */
    unsigned maxReplayPerStream = 48;
    /** Simultaneously tracked active streams (paper: four). */
    unsigned activeStreams = 4;
    /** Lookup depth for the NLookup prefetcher. */
    unsigned nlookupDepth = 2;
    /** Naive two-Index-Table Domino (2 serial trips, ablation). */
    bool naiveDomino = false;
    /** Seed for sampling decisions. */
    std::uint64_t seed = 42;
    /**
     * Adaptive degree throttling (src/adaptive).  When enabled the
     * factory builds the technique at throttle.degreeMax and wraps
     * it in a ThrottledPrefetcher; when disabled (the default) no
     * wrapper is constructed at all, so existing configurations are
     * byte-identical to the pre-adaptive factory.
     */
    ThrottleConfig throttle;
};

/**
 * Construct a prefetcher by name.  Known names: "STMS", "Digram",
 * "Domino", "ISB", "VLDP", "NextLine", "Stride", "Markov", "List",
 * "NLookup", "VLDP+Domino".
 *
 * @return nullptr for an unknown name.
 */
std::unique_ptr<Prefetcher> makePrefetcher(
    const std::string &name, const FactoryConfig &config);

/** The evaluated prefetcher roster, paper order (Figures 11/13). */
std::vector<std::string> evaluatedPrefetchers();

/** HT/EIT placement in a multi-core run. */
enum class MetadataScope
{
    /** One private table set per core. */
    Private,
    /** One table set observing the union of all cores' triggers. */
    Shared,
};

/**
 * The prefetchers of one multi-core run: `perCore[c]` is the
 * instance core c drives (nullptr everywhere for the no-prefetcher
 * baseline).  In shared scope every slot points at the same owned
 * instance; in private scope each slot owns its own.
 */
struct PrefetcherSet
{
    /** Owning storage (one instance, or one per core). */
    std::vector<std::unique_ptr<Prefetcher>> owned;
    /** Per-core view into owned (repeats in shared scope). */
    std::vector<Prefetcher *> perCore;
    /**
     * Per-core channel-feedback hook for CoreBinding::observer
     * (repeats in shared scope, like perCore).  Non-null only when
     * the factory config enabled throttling -- the entries then
     * alias the ThrottledPrefetcher instances in perCore.
     */
    std::vector<ChannelObserver *> observers;
};

/**
 * Positional per-core seed: core 0 keeps @p base (so a 1-core run
 * reproduces the single-core configuration exactly) and every other
 * core derives an independent stream via mix64 -- never additive
 * `base + core`, which correlates neighbouring cores' sampling
 * decisions.
 */
std::uint64_t deriveCoreSeed(std::uint64_t base, unsigned core);

/**
 * Construct the prefetchers for a multi-core run of @p name.
 * Private scope builds @p cores instances with deriveCoreSeed()
 * seeds; shared scope builds one instance (seeded with the base
 * seed) and repeats it.  An empty/unknown name yields a set of
 * nullptrs (the baseline).
 */
PrefetcherSet makePrefetcherSet(const std::string &name,
                                const FactoryConfig &config,
                                unsigned cores,
                                MetadataScope scope);

} // namespace domino

#endif // DOMINO_ANALYSIS_FACTORY_H
