/**
 * @file
 * Reporting helpers for multi-core runs: flatten a MultiCoreResult
 * into per-core rows plus whole-chip aggregates, ready for the
 * experiment tables (bench_multicore_scaling) and tests.
 */

#ifndef DOMINO_ANALYSIS_MULTICORE_REPORT_H
#define DOMINO_ANALYSIS_MULTICORE_REPORT_H

#include <string>
#include <vector>

#include "multicore/multicore_sim.h"

namespace domino
{

/** One core's line of a multi-core report. */
struct McCoreRow
{
    unsigned core = 0;
    double ipc = 0.0;
    double coverage = 0.0;
    /** Channel-queueing cycles per kilo-instruction on this core. */
    double queuePerKiloInst = 0.0;
    /** Bytes this core moved over the shared channel. */
    std::uint64_t channelBytes = 0;
    std::uint64_t droppedPrefetches = 0;
};

/** Whole-chip aggregates of one multi-core run. */
struct MulticoreSummary
{
    std::vector<McCoreRow> cores;
    double systemIpc = 0.0;
    double aggregateCoverage = 0.0;
    /** Metadata bytes over all off-chip bytes. */
    double metadataShare = 0.0;
    /** Achieved off-chip bandwidth over the makespan, GB/s. */
    double bandwidthGBs = 0.0;
    /** Channel busy cycles over the makespan (utilisation). */
    double channelUtilization = 0.0;
    /** Total queueing cycles across cores. */
    Cycles queueCycles = 0;
    /** Byte breakdown (Figure 15 classification). */
    OffChipTraffic traffic;

    /** Slowest over fastest core IPC (1.0 = perfectly balanced). */
    double imbalance() const;
};

/** Flatten @p result into rows + aggregates at @p core_ghz. */
MulticoreSummary summarizeMulticore(const MultiCoreResult &result,
                                    double core_ghz);

/**
 * Render @p summary as an aligned text table (one row per core plus
 * an aggregate line), for experiment logs.
 */
std::string formatMulticoreSummary(const MulticoreSummary &summary);

} // namespace domino

#endif // DOMINO_ANALYSIS_MULTICORE_REPORT_H
