/**
 * @file
 * The trace-driven coverage simulator: L1-D cache + prefetch buffer
 * + prefetcher, producing the coverage / overprediction metrics the
 * paper reports.
 *
 * Metric definitions (Section V.B):
 *  - *covered* misses are demand accesses satisfied by the prefetch
 *    buffer (they would have been misses);
 *  - *uncovered* misses are demand misses;
 *  - *overpredictions* are prefetched blocks evicted (or discarded
 *    with their stream) without ever being used, normalised by the
 *    baseline miss count.
 *
 * Because prefetch-buffer hits install the same block a miss would
 * have filled, the L1 content evolution is identical with and
 * without a prefetcher, so covered + uncovered equals the baseline
 * miss count exactly and the trigger sequence equals the baseline
 * miss sequence.
 */

#ifndef DOMINO_ANALYSIS_COVERAGE_H
#define DOMINO_ANALYSIS_COVERAGE_H

// conventions: allow-file(audit-coverage) -- top-level experiment driver; its lanes hold the audited
// objects (prefetchers, caches) and are themselves sampled via
// lane.prefetcher->audit() every 2048 misses in checked builds

#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "mem/cache.h"
#include "mem/prefetch_buffer.h"
#include "prefetch/prefetcher.h"
#include "trace/replay_image.h"
#include "trace/trace_buffer.h"

namespace domino
{

/** Options for a coverage run. */
struct CoverageOptions
{
    /** L1-D geometry (Table I: 64 KB, 2-way). */
    std::uint64_t l1Bytes = 64 * 1024;
    std::uint32_t l1Ways = 2;
    /** Prefetch buffer capacity (Section IV.D: 32 blocks). */
    std::uint32_t prefetchBufferBlocks = 32;
    /** Collect the trigger (baseline miss) sequence. */
    bool collectTriggerSequence = false;
    /** When set, every trigger (baseline miss) line is pushed into
     *  this sink as it occurs -- the bounded-memory alternative to
     *  collectTriggerSequence for out-of-core runs, where the
     *  billion-access miss sequence must never be materialised
     *  (bench_billion streams it straight into the windowed
     *  opportunity analyzer). */
    std::function<void(LineAddr)> triggerSink;
};

/** Results of a coverage run. */
struct CoverageResult
{
    std::uint64_t accesses = 0;
    std::uint64_t l1Hits = 0;
    /** Demand accesses satisfied by the prefetch buffer. */
    std::uint64_t covered = 0;
    /** Demand misses. */
    std::uint64_t uncovered = 0;
    /** Prefetches inserted into the buffer. */
    std::uint64_t issued = 0;
    /** Buffered blocks dropped without use. */
    std::uint64_t overpredictions = 0;
    /** Prefetcher metadata traffic. */
    MetadataStats metadata;
    /** Lengths of consecutive-covered runs ("streams", Figure 2). */
    EdgeHistogram streamRuns{
        std::vector<std::uint64_t>{0, 2, 4, 8, 16, 32, 64, 128}};

    /** Baseline miss count (see file comment). */
    std::uint64_t
    baselineMisses() const
    {
        return covered + uncovered;
    }

    /** Fraction of baseline misses eliminated. */
    double
    coverage() const
    {
        const std::uint64_t base = baselineMisses();
        return base ? static_cast<double>(covered) /
            static_cast<double>(base) : 0.0;
    }

    /** Incorrect prefetches over baseline misses. */
    double
    overpredictionRate() const
    {
        const std::uint64_t base = baselineMisses();
        return base ? static_cast<double>(overpredictions) /
            static_cast<double>(base) : 0.0;
    }

    /** Mean length of consecutive-correct-prefetch runs. */
    double
    meanStreamRun() const
    {
        return streamRuns.mean();
    }
};

/**
 * The simulator.  It implements PrefetchSink to receive the
 * prefetchers' requests.
 *
 * Because the L1 content evolution is prefetcher-independent (see
 * the file comment), several techniques can share one replay of the
 * source: runMany() drives N independent (prefetcher, buffer) lanes
 * off a single L1 + trace pass and returns exactly the results N
 * separate run() calls would have produced.  The coverage figures
 * use this to amortise the trace iteration and cache simulation
 * across the whole technique roster.
 */
class CoverageSimulator : public PrefetchSink
{
  public:
    explicit CoverageSimulator(const CoverageOptions &options = {});

    /**
     * Run the full source through the hierarchy.
     * @param source access stream (consumed to exhaustion).
     * @param prefetcher technique under test; nullptr = baseline.
     */
    CoverageResult run(AccessSource &source, Prefetcher *prefetcher);

    /**
     * Run the full source once, evaluating every prefetcher in
     * lockstep against its own prefetch buffer and a shared L1.
     *
     * The simulator is storage-tier agnostic: any AccessSource
     * yields the same results, whether resident (TraceView) or
     * streamed from disk with bounded memory
     * (StreamingTraceSource, DESIGN.md section 7) -- the figure
     * harnesses' --stream mode relies on exactly this.
     *
     * @param source access stream (consumed to exhaustion).
     * @param prefetchers one lane per entry; nullptr = baseline.
     * @return per-lane results, index-matched to @p prefetchers and
     *         byte-identical to separate run() calls per lane.
     */
    std::vector<CoverageResult> runMany(
        AccessSource &source,
        const std::vector<Prefetcher *> &prefetchers);

    /**
     * runMany() over a packed replay image: same lockstep lanes,
     * but the trace pass iterates the image's precomputed line/PC
     * arrays -- no virtual cursor, no per-record unpacking.  Yields
     * results byte-identical to runMany() over a TraceView of the
     * image's source trace.
     */
    std::vector<CoverageResult> runMany(
        const ReplayImage &image,
        const std::vector<Prefetcher *> &prefetchers);

    /** Trigger sequence (when collection was enabled). */
    const std::vector<LineAddr> &triggerSequence() const
    {
        return triggers;
    }

    // PrefetchSink interface (called by the prefetcher of the lane
    // currently being triggered).
    void issue(LineAddr line, std::uint32_t stream_id,
               unsigned metadata_trips) override;
    void dropStream(std::uint32_t stream_id) override;

  private:
    /**
     * The shared lockstep loop: @p next_record is called once per
     * record and fills (line, pc); it returns false on exhaustion.
     * @p peek_record reads the upcoming record without consuming it
     * (false when the source cannot look ahead); it only feeds the
     * metadata-row software prefetch, never simulation state.  Both
     * runMany() entry points compile their own copy, so the image
     * path has no per-record dispatch at all.
     */
    template <typename NextRecord, typename PeekRecord>
    std::vector<CoverageResult> runManyImpl(
        NextRecord &&next_record, PeekRecord &&peek_record,
        const std::vector<Prefetcher *> &prefetchers);

    /** One technique under test: its buffer and accumulators. */
    struct Lane
    {
        explicit Lane(std::uint32_t buffer_blocks)
            : buffer(buffer_blocks)
        {}

        PrefetchBuffer buffer;
        Prefetcher *prefetcher = nullptr;
        CoverageResult result;
        std::uint64_t runLen = 0;
        std::uint64_t issuedCnt = 0;
        /** This lane's buffer-probe outcome for the current miss
         *  (carried from the probe loop to the trigger loop). */
        bool pendingHit = false;
        std::uint32_t pendingStream = 0;
    };

    CoverageOptions opts;
    SetAssocCache l1;
    std::vector<Lane> lanes;
    /** Lane whose prefetcher is inside onTrigger (sink routing). */
    std::size_t current = 0;
    std::vector<LineAddr> triggers;
};

/**
 * Convenience: the baseline miss sequence of a source (runs the
 * source through the L1 with no prefetcher).
 */
std::vector<LineAddr> baselineMissSequence(
    AccessSource &source, const CoverageOptions &options = {});

} // namespace domino

#endif // DOMINO_ANALYSIS_COVERAGE_H
