#include "coverage.h"

#include "common/check.h"

namespace domino
{

CoverageSimulator::CoverageSimulator(const CoverageOptions &options)
    : opts(options), l1(options.l1Bytes, options.l1Ways)
{}

void
CoverageSimulator::issue(LineAddr line, std::uint32_t stream_id,
                         unsigned metadata_trips)
{
    (void)metadata_trips;  // timing handled by the timing simulator
    // Redundant prefetches (block already cached or buffered) are
    // filtered at issue, as a real implementation would via an L1
    // probe.
    if (l1.contains(line))
        return;
    Lane &lane = lanes[current];
    if (lane.buffer.insert(line, stream_id, 0))
        ++lane.issuedCnt;
}

void
CoverageSimulator::dropStream(std::uint32_t stream_id)
{
    lanes[current].buffer.invalidateStream(stream_id);
}

CoverageResult
CoverageSimulator::run(AccessSource &source, Prefetcher *prefetcher)
{
    return runMany(source, {prefetcher}).front();
}

std::vector<CoverageResult>
CoverageSimulator::runMany(
    AccessSource &source,
    const std::vector<Prefetcher *> &prefetchers)
{
    return runManyImpl(
        [&source](LineAddr &line, Addr &pc) {
            Access access;
            if (!source.next(access))
                return false;
            line = access.line();
            pc = access.pc;
            return true;
        },
        // Virtual cursors cannot look ahead without consuming.
        [](LineAddr &, Addr &) { return false; },
        prefetchers);
}

std::vector<CoverageResult>
CoverageSimulator::runMany(
    const ReplayImage &image,
    const std::vector<Prefetcher *> &prefetchers)
{
    if constexpr (checksEnabled)
        CHECK_EQ(image.audit(), "");
    const LineAddr *lines = image.linesData();
    const Addr *pcs = image.pcsData();
    const std::size_t n = image.size();
    std::size_t i = 0;
    return runManyImpl(
        [&](LineAddr &line, Addr &pc) {
            if (i >= n)
                return false;
            line = lines[i];
            pc = pcs[i];
            ++i;
            return true;
        },
        // Image lookahead: the record after the one just consumed,
        // read without advancing (feeds the metadata-row warm).
        [&](LineAddr &line, Addr &pc) {
            if (i >= n)
                return false;
            line = lines[i];
            pc = pcs[i];
            return true;
        },
        prefetchers);
}

template <typename NextRecord, typename PeekRecord>
std::vector<CoverageResult>
CoverageSimulator::runManyImpl(
    NextRecord &&next_record, PeekRecord &&peek_record,
    const std::vector<Prefetcher *> &prefetchers)
{
    CHECK(!prefetchers.empty());
    lanes.clear();
    lanes.reserve(prefetchers.size());
    for (Prefetcher *p : prefetchers) {
        lanes.emplace_back(opts.prefetchBufferBlocks);
        lanes.back().prefetcher = p;
    }

    // Shared across lanes: the trace pass and L1 evolution depend
    // only on demand accesses, never on any lane's prefetcher.
    std::uint64_t accesses = 0;
    std::uint64_t l1_hits = 0;

    LineAddr line = 0;
    Addr pc = 0;
    while (next_record(line, pc)) {
        ++accesses;
        if (l1.access(line)) {
            ++l1_hits;
            continue;
        }

        TriggerEvent event;
        event.line = line;
        event.pc = pc;

        // When the source can look ahead, software-prefetch each
        // lane's metadata row for the *upcoming* access while this
        // one's buffer probes and L1 fill run (warming the current
        // row here would hide nothing -- onTrigger probes it
        // immediately).  Pure cache hints: results are
        // byte-identical with or without them.
        LineAddr next_line = 0;
        Addr next_pc = 0;
        if (peek_record(next_line, next_pc)) {
            for (Lane &lane : lanes) {
                if (lane.prefetcher)
                    lane.prefetcher->warmMetadata(next_line,
                                                  next_pc);
            }
        }

        // Per-lane demand probe first (as in a single run, the
        // buffer is probed before the line is installed).
        for (Lane &lane : lanes) {
            const PrefetchBuffer::HitInfo hit =
                lane.buffer.lookup(line);
            if (hit.hit) {
                ++lane.result.covered;
                ++lane.runLen;
            } else {
                ++lane.result.uncovered;
                if (lane.runLen) {
                    lane.result.streamRuns.add(lane.runLen);
                    lane.runLen = 0;
                }
            }
            // Stash the per-lane hit outcome for the trigger below.
            lane.pendingHit = hit.hit;
            lane.pendingStream = hit.streamId;
        }
        l1.fill(line);
        if (opts.collectTriggerSequence)
            triggers.push_back(line);
        if (opts.triggerSink)
            opts.triggerSink(line);

        for (std::size_t i = 0; i < lanes.size(); ++i) {
            Lane &lane = lanes[i];
            if (!lane.prefetcher)
                continue;
            current = i;
            event.wasPrefetchHit = lane.pendingHit;
            event.hitStreamId = lane.pendingStream;
            // Single-event batched dispatch (identical to
            // onTrigger by contract).  Wider batches are off the
            // table here: a prefetch issued at trigger t can
            // satisfy trigger t+1's buffer probe, so deferring
            // training would change wasPrefetchHit outcomes
            // (DESIGN.md "Batched training API").
            lane.prefetcher->trainPredictMany(
                std::span<const TriggerEvent>(&event, 1), *this);
        }

        // Sampled structural audits (Debug / DOMINO_CHECKS only).
        if constexpr (checksEnabled) {
            if ((lanes.front().result.baselineMisses() & 2047) ==
                0) {
                CHECK_EQ(l1.audit(), "");
                for (Lane &lane : lanes) {
                    CHECK_EQ(lane.buffer.audit(), "");
                    if (lane.prefetcher)
                        CHECK_EQ(lane.prefetcher->audit(), "");
                }
            }
        }
    }

    std::vector<CoverageResult> results;
    results.reserve(lanes.size());
    for (Lane &lane : lanes) {
        if (lane.runLen)
            lane.result.streamRuns.add(lane.runLen);
        lane.result.accesses = accesses;
        lane.result.l1Hits = l1_hits;
        lane.result.issued = lane.issuedCnt;
        lane.result.overpredictions =
            lane.buffer.stats().evictedUnused;
        if (lane.prefetcher)
            lane.result.metadata = lane.prefetcher->metadata();
        results.push_back(std::move(lane.result));
    }
    return results;
}

std::vector<LineAddr>
baselineMissSequence(AccessSource &source,
                     const CoverageOptions &options)
{
    CoverageOptions opts = options;
    opts.collectTriggerSequence = true;
    CoverageSimulator sim(opts);
    sim.run(source, nullptr);
    return sim.triggerSequence();
}

} // namespace domino
