#include "coverage.h"

#include "common/check.h"

namespace domino
{

CoverageSimulator::CoverageSimulator(const CoverageOptions &options)
    : opts(options),
      l1(options.l1Bytes, options.l1Ways),
      buffer(options.prefetchBufferBlocks)
{}

void
CoverageSimulator::issue(LineAddr line, std::uint32_t stream_id,
                         unsigned metadata_trips)
{
    (void)metadata_trips;  // timing handled by the timing simulator
    // Redundant prefetches (block already cached or buffered) are
    // filtered at issue, as a real implementation would via an L1
    // probe.
    if (l1.contains(line))
        return;
    if (buffer.insert(line, stream_id, 0))
        ++issuedCnt;
}

void
CoverageSimulator::dropStream(std::uint32_t stream_id)
{
    buffer.invalidateStream(stream_id);
}

CoverageResult
CoverageSimulator::run(AccessSource &source, Prefetcher *prefetcher)
{
    CoverageResult result;
    std::uint64_t run_len = 0;

    Access access;
    while (source.next(access)) {
        ++result.accesses;
        const LineAddr line = access.line();
        if (l1.access(line)) {
            ++result.l1Hits;
            continue;
        }

        TriggerEvent event;
        event.line = line;
        event.pc = access.pc;

        const PrefetchBuffer::HitInfo hit = buffer.lookup(line);
        if (hit.hit) {
            ++result.covered;
            ++run_len;
            event.wasPrefetchHit = true;
            event.hitStreamId = hit.streamId;
        } else {
            ++result.uncovered;
            if (run_len) {
                result.streamRuns.add(run_len);
                run_len = 0;
            }
        }
        l1.fill(line);
        if (opts.collectTriggerSequence)
            triggers.push_back(line);

        if (prefetcher)
            prefetcher->onTrigger(event, *this);

        // Sampled structural audits (Debug / DOMINO_CHECKS only).
        if constexpr (checksEnabled) {
            if ((result.baselineMisses() & 2047) == 0) {
                CHECK_EQ(l1.audit(), "");
                CHECK_EQ(buffer.audit(), "");
                if (prefetcher)
                    CHECK_EQ(prefetcher->audit(), "");
            }
        }
    }
    if (run_len)
        result.streamRuns.add(run_len);

    result.issued = issuedCnt;
    result.overpredictions = buffer.stats().evictedUnused;
    if (prefetcher)
        result.metadata = prefetcher->metadata();
    return result;
}

std::vector<LineAddr>
baselineMissSequence(AccessSource &source,
                     const CoverageOptions &options)
{
    CoverageOptions opts = options;
    opts.collectTriggerSequence = true;
    CoverageSimulator sim(opts);
    sim.run(source, nullptr);
    return sim.triggerSequence();
}

} // namespace domino
