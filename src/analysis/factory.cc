#include "factory.h"

#include "adaptive/throttled_prefetcher.h"
#include "common/types.h"
#include "domino/domino_prefetcher.h"
#include "prefetch/digram.h"
#include "prefetch/isb.h"
#include "prefetch/next_line.h"
#include "prefetch/nlookup.h"
#include "prefetch/stacked.h"
#include "prefetch/list.h"
#include "prefetch/markov.h"
#include "prefetch/stms.h"
#include "prefetch/stride.h"
#include "prefetch/vldp.h"

namespace domino
{

namespace
{

TemporalConfig
temporalFrom(const FactoryConfig &config)
{
    TemporalConfig t;
    t.degree = config.degree;
    t.htEntries = config.htEntries;
    t.samplingProb = config.samplingProb;
    t.maxReplayPerStream = config.maxReplayPerStream;
    t.activeStreams = config.activeStreams;
    t.seed = config.seed;
    return t;
}

DominoConfig
dominoFrom(const FactoryConfig &config)
{
    DominoConfig d;
    static_cast<TemporalConfig &>(d) = temporalFrom(config);
    d.eit.rows = config.eitRows;
    d.eit.entriesPerSuper = config.entriesPerSuper;
    d.firstPrefetchTrips = config.naiveDomino ? 2 : 1;
    return d;
}

/** Construct the raw (unwrapped) technique. */
std::unique_ptr<Prefetcher>
makeRawPrefetcher(const std::string &name,
                  const FactoryConfig &config)
{
    if (name == "STMS")
        return std::make_unique<StmsPrefetcher>(temporalFrom(config));
    if (name == "Digram") {
        return std::make_unique<DigramPrefetcher>(
            temporalFrom(config));
    }
    if (name == "Domino")
        return std::make_unique<DominoPrefetcher>(dominoFrom(config));
    if (name == "ISB") {
        IsbConfig c;
        c.degree = config.degree;
        return std::make_unique<IsbPrefetcher>(c);
    }
    if (name == "VLDP") {
        VldpConfig c;
        c.degree = config.degree;
        return std::make_unique<VldpPrefetcher>(c);
    }
    if (name == "NextLine")
        return std::make_unique<NextLinePrefetcher>(config.degree);
    if (name == "Stride") {
        StrideConfig c;
        c.degree = config.degree;
        return std::make_unique<StridePrefetcher>(c);
    }
    if (name == "List") {
        ListConfig c;
        c.degree = config.degree;
        return std::make_unique<ListPrefetcher>(c);
    }
    if (name == "Markov") {
        MarkovConfig c;
        c.successors = 2;
        // The classic proposal's on-chip correlation table is its
        // scaling wall; bound it in proportion to the bench traces
        // (an unlimited Markov table would be a megabytes-on-chip
        // design the paper's era deemed impractical).
        c.tableEntries = 1ULL << 13;
        return std::make_unique<MarkovPrefetcher>(c);
    }
    if (name == "NLookup") {
        NLookupConfig c;
        c.maxDepth = config.nlookupDepth;
        c.degree = config.degree;
        return std::make_unique<NLookupPrefetcher>(c);
    }
    if (name == "VLDP+Domino") {
        VldpConfig v;
        v.degree = config.degree;
        return std::make_unique<StackedPrefetcher>(
            std::make_unique<VldpPrefetcher>(v),
            std::make_unique<DominoPrefetcher>(dominoFrom(config)));
    }
    return nullptr;
}

} // anonymous namespace

std::unique_ptr<Prefetcher>
makePrefetcher(const std::string &name, const FactoryConfig &config)
{
    if (!config.throttle.enabled)
        return makeRawPrefetcher(name, config);
    // Adaptive wrap: build the technique at the throttle ceiling --
    // the wrapper only ever clamps the issue stream down, so
    // degreeMax is the wrapped instance's own degree.
    FactoryConfig innerConfig = config;
    innerConfig.degree = config.throttle.degreeMax;
    auto raw = makeRawPrefetcher(name, innerConfig);
    if (!raw)
        return nullptr;
    return std::make_unique<ThrottledPrefetcher>(std::move(raw),
                                                 config.throttle);
}

std::vector<std::string>
evaluatedPrefetchers()
{
    return {"VLDP", "ISB", "STMS", "Digram", "Domino"};
}

std::uint64_t
deriveCoreSeed(std::uint64_t base, unsigned core)
{
    if (core == 0)
        return base;
    return mix64(base ^ (0xC0DEC0DEULL + core));
}

PrefetcherSet
makePrefetcherSet(const std::string &name,
                  const FactoryConfig &config, unsigned cores,
                  MetadataScope scope)
{
    PrefetcherSet set;
    set.perCore.assign(cores, nullptr);
    set.observers.assign(cores, nullptr);
    if (name.empty())
        return set;
    // A throttled instance doubles as the core's channel observer
    // (the factory wrapped it, so the downcast is by construction).
    const auto observerOf = [&](Prefetcher *p) -> ChannelObserver * {
        if (!config.throttle.enabled)
            return nullptr;
        return static_cast<ThrottledPrefetcher *>(p);
    };
    if (scope == MetadataScope::Shared) {
        auto shared = makePrefetcher(name, config);
        if (!shared)
            return set;
        Prefetcher *raw = shared.get();
        set.owned.push_back(std::move(shared));
        for (unsigned c = 0; c < cores; ++c) {
            set.perCore[c] = raw;
            set.observers[c] = observerOf(raw);
        }
        return set;
    }
    for (unsigned c = 0; c < cores; ++c) {
        FactoryConfig coreConfig = config;
        coreConfig.seed = deriveCoreSeed(config.seed, c);
        auto p = makePrefetcher(name, coreConfig);
        if (!p) {
            return PrefetcherSet{
                {},
                std::vector<Prefetcher *>(cores, nullptr),
                std::vector<ChannelObserver *>(cores, nullptr)};
        }
        set.perCore[c] = p.get();
        set.observers[c] = observerOf(p.get());
        set.owned.push_back(std::move(p));
    }
    return set;
}

} // namespace domino
