#include "bandwidth_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace domino
{

BandwidthModel::BandwidthModel(const MemoryParams &mem_params,
                               unsigned cores)
    : mem(mem_params), perCore(cores ? cores : 1)
{
    CHECK_GT(mem.bytesPerCycle(), 0.0);
}

Cycles
BandwidthModel::occupancyOf(std::uint64_t bytes) const
{
    if (!bytes)
        return 0;
    return static_cast<Cycles>(std::ceil(
        static_cast<double>(bytes) / mem.bytesPerCycle()));
}

Cycles
BandwidthModel::enqueue(unsigned core, ChannelKind kind,
                        std::uint64_t bytes, Cycles now)
{
    DCHECK_LT(core, perCore.size());
    const Cycles start = std::max(now, channelFreeAt);
    const Cycles occupancy = occupancyOf(bytes);
    channelFreeAt = start + occupancy;
    busy += occupancy;
    perKind[static_cast<unsigned>(kind)] += bytes;
    perCore[core].bytes += bytes;
    return start;
}

Cycles
BandwidthModel::transfer(unsigned core, ChannelKind kind,
                         std::uint64_t bytes, Cycles now)
{
    const Cycles start = enqueue(core, kind, bytes, now);
    perCore[core].queueCycles += start - now;
    ++perCore[core].requests;
    const Cycles latency = kind == ChannelKind::MetadataRead
        ? mem.metadataLatency() : mem.memLatency;
    return start + occupancyOf(bytes) + latency;
}

void
BandwidthModel::post(unsigned core, ChannelKind kind,
                     std::uint64_t bytes, Cycles now)
{
    enqueue(core, kind, bytes, now);
}

void
BandwidthModel::postPair(unsigned core, ChannelKind kind_a,
                         std::uint64_t bytes_a, ChannelKind kind_b,
                         std::uint64_t bytes_b, Cycles now)
{
    DCHECK_LT(core, perCore.size());
    // Sequential-post equivalence: the first post starts at
    // max(now, freeAt) and leaves freeAt >= now, so the second
    // starts exactly where the first ended.  Summing the *per-kind*
    // ceil()ed occupancies therefore reproduces the two-call
    // horizon; summing the bytes before one ceil() would not.
    const Cycles start = std::max(now, channelFreeAt);
    const Cycles occupancy =
        occupancyOf(bytes_a) + occupancyOf(bytes_b);
    channelFreeAt = start + occupancy;
    busy += occupancy;
    perKind[static_cast<unsigned>(kind_a)] += bytes_a;
    perKind[static_cast<unsigned>(kind_b)] += bytes_b;
    perCore[core].bytes += bytes_a + bytes_b;
}

std::uint64_t
BandwidthModel::totalBytes() const
{
    std::uint64_t sum = 0;
    for (unsigned k = 0; k < channelKinds; ++k)
        sum += perKind[k];
    return sum;
}

const ChannelCoreStats &
BandwidthModel::coreStats(unsigned core) const
{
    CHECK_LT(core, perCore.size());
    return perCore[core];
}

std::string
BandwidthModel::audit() const
{
    if (mem.bytesPerCycle() <= 0.0)
        return "non-positive channel bandwidth";
    std::uint64_t coreSum = 0;
    for (const auto &c : perCore)
        coreSum += c.bytes;
    if (coreSum != totalBytes()) {
        return "per-core bytes sum " + std::to_string(coreSum) +
            " != per-kind total " + std::to_string(totalBytes());
    }
    // Occupancy can never outrun the busy horizon: every occupied
    // cycle advanced freeAt by exactly one.
    if (busy > channelFreeAt) {
        return "busy cycles " + std::to_string(busy) +
            " exceed the freeAt horizon " +
            std::to_string(channelFreeAt);
    }
    // The horizon must cover the total occupancy implied by the
    // bytes actually charged.
    const Cycles implied = occupancyOf(totalBytes());
    if (busy + channelKinds < implied) {
        // Per-transfer ceil() can exceed the whole-total ceil() but
        // never undershoot it by more than rounding slack.
        return "busy cycles " + std::to_string(busy) +
            " below the occupancy implied by " +
            std::to_string(totalBytes()) + " bytes";
    }
    return "";
}

} // namespace domino
