#include "bandwidth_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace domino
{

BandwidthModel::BandwidthModel(const MemoryParams &mem_params,
                               unsigned cores)
    : mem(mem_params), perCore(cores ? cores : 1)
{
    CHECK_GT(mem.bytesPerCycle(), 0.0);
}

Cycles
BandwidthModel::occupancyOf(std::uint64_t bytes) const
{
    if (!bytes)
        return 0;
    return static_cast<Cycles>(std::ceil(
        static_cast<double>(bytes) / mem.bytesPerCycle()));
}

void
BandwidthModel::enableOccupancyLog(Cycles window)
{
    CHECK_GT(window, 0u);
    CHECK_EQ(busy, 0u);  // enable before the first request
    occWindow = window;
}

void
BandwidthModel::logOccupancy(Cycles start, Cycles occupancy)
{
    // Split occupancy exactly across window boundaries, so each
    // window's occupied-cycle count never exceeds its length and
    // the log sums to the busy total (audited).
    while (occupancy) {
        const std::size_t w =
            static_cast<std::size_t>(start / occWindow);
        if (occLog.size() <= w)
            occLog.resize(w + 1, 0);
        const Cycles room = occWindow - start % occWindow;
        const Cycles take = std::min(occupancy, room);
        occLog[w] += take;
        start += take;
        occupancy -= take;
    }
}

Cycles
BandwidthModel::enqueue(unsigned core, ChannelKind kind,
                        std::uint64_t bytes, Cycles now)
{
    DCHECK_LT(core, perCore.size());
    const Cycles start = std::max(now, channelFreeAt);
    const Cycles occupancy = occupancyOf(bytes);
    channelFreeAt = start + occupancy;
    busy += occupancy;
    if (occWindow)
        logOccupancy(start, occupancy);
    perKind[static_cast<unsigned>(kind)] += bytes;
    perCore[core].bytes += bytes;
    return start;
}

Cycles
BandwidthModel::transfer(unsigned core, ChannelKind kind,
                         std::uint64_t bytes, Cycles now)
{
    const Cycles start = enqueue(core, kind, bytes, now);
    perCore[core].queueCycles += start - now;
    ++perCore[core].requests;
    if (kind == ChannelKind::MetadataRead ||
        kind == ChannelKind::MetadataUpdate) {
        perCore[core].metaQueueCycles += start - now;
        ++perCore[core].metaRequests;
    }
    const Cycles latency = kind == ChannelKind::MetadataRead
        ? mem.metadataLatency() : mem.memLatency;
    return start + occupancyOf(bytes) + latency;
}

void
BandwidthModel::post(unsigned core, ChannelKind kind,
                     std::uint64_t bytes, Cycles now)
{
    enqueue(core, kind, bytes, now);
}

void
BandwidthModel::postPair(unsigned core, ChannelKind kind_a,
                         std::uint64_t bytes_a, ChannelKind kind_b,
                         std::uint64_t bytes_b, Cycles now)
{
    DCHECK_LT(core, perCore.size());
    // Sequential-post equivalence: the first post starts at
    // max(now, freeAt) and leaves freeAt >= now, so the second
    // starts exactly where the first ended.  Summing the *per-kind*
    // ceil()ed occupancies therefore reproduces the two-call
    // horizon; summing the bytes before one ceil() would not.
    const Cycles start = std::max(now, channelFreeAt);
    const Cycles occupancy =
        occupancyOf(bytes_a) + occupancyOf(bytes_b);
    channelFreeAt = start + occupancy;
    busy += occupancy;
    if (occWindow)
        logOccupancy(start, occupancy);
    perKind[static_cast<unsigned>(kind_a)] += bytes_a;
    perKind[static_cast<unsigned>(kind_b)] += bytes_b;
    perCore[core].bytes += bytes_a + bytes_b;
}

std::uint64_t
BandwidthModel::totalBytes() const
{
    std::uint64_t sum = 0;
    for (unsigned k = 0; k < channelKinds; ++k)
        sum += perKind[k];
    return sum;
}

const ChannelCoreStats &
BandwidthModel::coreStats(unsigned core) const
{
    CHECK_LT(core, perCore.size());
    return perCore[core];
}

std::string
BandwidthModel::audit() const
{
    if (mem.bytesPerCycle() <= 0.0)
        return "non-positive channel bandwidth";
    std::uint64_t coreSum = 0;
    for (const auto &c : perCore)
        coreSum += c.bytes;
    if (coreSum != totalBytes()) {
        return "per-core bytes sum " + std::to_string(coreSum) +
            " != per-kind total " + std::to_string(totalBytes());
    }
    // Occupancy can never outrun the busy horizon: every occupied
    // cycle advanced freeAt by exactly one.
    if (busy > channelFreeAt) {
        return "busy cycles " + std::to_string(busy) +
            " exceed the freeAt horizon " +
            std::to_string(channelFreeAt);
    }
    // The horizon must cover the total occupancy implied by the
    // bytes actually charged.
    const Cycles implied = occupancyOf(totalBytes());
    if (busy + channelKinds < implied) {
        // Per-transfer ceil() can exceed the whole-total ceil() but
        // never undershoot it by more than rounding slack.
        return "busy cycles " + std::to_string(busy) +
            " below the occupancy implied by " +
            std::to_string(totalBytes()) + " bytes";
    }
    // Per-core metadata slices never outgrow their parents.
    for (std::size_t c = 0; c < perCore.size(); ++c) {
        if (perCore[c].metaQueueCycles > perCore[c].queueCycles ||
            perCore[c].metaRequests > perCore[c].requests) {
            return "core " + std::to_string(c) +
                " metadata slice exceeds its totals";
        }
    }
    // The occupancy log is an exact decomposition of the busy sum.
    if (occWindow) {
        Cycles logged = 0;
        for (const Cycles w : occLog) {
            if (w > occWindow) {
                return "occupancy window holds " +
                    std::to_string(w) +
                    " cycles, more than its length " +
                    std::to_string(occWindow);
            }
            logged += w;
        }
        if (logged != busy) {
            return "occupancy log sums to " +
                std::to_string(logged) + ", busy is " +
                std::to_string(busy);
        }
    }
    return "";
}

} // namespace domino
