/**
 * @file
 * The channel-feedback interface between the multi-core substrate
 * and adaptive prefetch control (src/adaptive): a core may attach a
 * ChannelObserver to its binding, and the simulator then feeds it
 * the shared channel's occupancy at every triggering event plus a
 * notification per late prefetch hit.  The interface lives here (not
 * in src/adaptive) so the substrate never depends on the controller
 * layer -- the layering DAG keeps `adaptive` above `multicore`.
 *
 * Determinism: observations are pure integer reads of simulator
 * state, delivered at fixed points of the per-trigger sequence, so
 * an observer that keeps integer-only state (the ThrottledPrefetcher
 * contract) preserves the byte-identical `--jobs` guarantee.
 */

#ifndef DOMINO_MULTICORE_CHANNEL_FEEDBACK_H
#define DOMINO_MULTICORE_CHANNEL_FEEDBACK_H

#include "common/types.h"

namespace domino
{

/**
 * Receives channel-pressure feedback from a multi-core run.
 * Implemented by the adaptive layer (ThrottledPrefetcher); the
 * simulator calls it only when a binding attaches one, so plain
 * runs pay nothing.
 */
class ChannelObserver
{
  public:
    virtual ~ChannelObserver() = default;

    /**
     * One observation, delivered immediately before the observing
     * core's prefetcher handles a triggering event.
     *
     * @param now        the observing core's local clock.
     * @param busy_cycles cumulative cycles the shared channel has
     *        spent transferring (BandwidthModel::busyCycles()).
     *        Both are monotone, so an observer can turn deltas into
     *        a windowed occupancy estimate with integer arithmetic.
     */
    virtual void observeChannel(Cycles now, Cycles busy_cycles) = 0;

    /**
     * A demand access hit a prefetched block whose fill had not yet
     * completed (a *late* prefetch: covered, but it still stalled
     * the core).  Delivered before observeChannel() of the same
     * trigger.
     */
    virtual void noteLatePrefetch() = 0;
};

} // namespace domino

#endif // DOMINO_MULTICORE_CHANNEL_FEEDBACK_H
