#include "multicore_sim.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/check.h"
#include "mem/cache.h"
#include "mem/mshr.h"
#include "mem/prefetch_buffer.h"

namespace domino
{

std::uint64_t
MultiCoreResult::totalInstructions() const
{
    std::uint64_t sum = 0;
    for (const auto &c : cores)
        sum += c.instructions;
    return sum;
}

Cycles
MultiCoreResult::makespan() const
{
    Cycles max = 0;
    for (const auto &c : cores)
        max = std::max(max, c.cycles);
    return max;
}

double
MultiCoreResult::systemIpc() const
{
    const Cycles span = makespan();
    return span ? static_cast<double>(totalInstructions()) /
        static_cast<double>(span) : 0.0;
}

double
MultiCoreResult::speedupOver(const MultiCoreResult &baseline) const
{
    const double base = baseline.systemIpc();
    return base > 0.0 ? systemIpc() / base : 0.0;
}

Cycles
MultiCoreResult::totalQueueCycles() const
{
    Cycles sum = 0;
    for (const auto &c : cores)
        sum += c.queueCycles;
    return sum;
}

Cycles
MultiCoreResult::totalMetaQueueCycles() const
{
    Cycles sum = 0;
    for (const auto &c : cores)
        sum += c.metaQueueCycles;
    return sum;
}

std::uint32_t
MultiCoreResult::occupancyPercentilePm(unsigned pct) const
{
    if (occupancyPm.empty())
        return 0;
    std::vector<std::uint32_t> sorted = occupancyPm;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t last = sorted.size() - 1;
    const std::size_t idx = std::min(
        last, static_cast<std::size_t>(last * pct / 100));
    return sorted[idx];
}

double
MultiCoreResult::aggregateCoverage() const
{
    std::uint64_t covered = 0, base = 0;
    for (const auto &c : cores) {
        covered += c.covered;
        base += c.covered + c.uncovered;
    }
    return base ? static_cast<double>(covered) /
        static_cast<double>(base) : 0.0;
}

double
MultiCoreResult::bandwidthGBs(double core_ghz) const
{
    const Cycles span = makespan();
    if (!span)
        return 0.0;
    const double seconds =
        static_cast<double>(span) / (core_ghz * 1e9);
    return static_cast<double>(traffic.totalBytes()) / seconds / 1e9;
}

double
MultiCoreResult::metadataShare() const
{
    const std::uint64_t total = traffic.totalBytes();
    if (!total)
        return 0.0;
    return static_cast<double>(traffic.metadataReadBytes +
                               traffic.metadataUpdateBytes) /
        static_cast<double>(total);
}

namespace
{

/** Cumulative metadata counters last charged to the channel (one
 *  account per distinct prefetcher instance, so a shared table set
 *  is charged once however many cores drive it). */
struct MetaAccount
{
    Prefetcher *prefetcher = nullptr;
    std::uint64_t readBytes = 0;
    std::uint64_t writeBytes = 0;
};

class CoreState;

/** Shared pieces every core touches. */
struct SharedState
{
    SetAssocCache llc;
    BandwidthModel channel;
    OffChipTraffic traffic;
    std::vector<std::unique_ptr<CoreState>> cores;
    std::vector<MetaAccount> metaAccounts;
    bool sharedScope = false;

    SharedState(const SystemConfig &cfg)
        : llc(cfg.llcBytes, cfg.llcWays),
          channel(cfg.mem, cfg.cores)
    {
        if (cfg.multicore.occupancyWindow)
            channel.enableOccupancyLog(
                cfg.multicore.occupancyWindow);
    }
};

/** Per-core simulation state, including the prefetch sink. */
class CoreState : public PrefetchSink
{
  public:
    CoreState(const SystemConfig &cfg, const CoreBinding &binding,
              unsigned core, SharedState &shared,
              MetaAccount *meta)
        : cfg(cfg), binding(binding), core(core),
          l1(cfg.l1Bytes, cfg.l1Ways),
          buffer(cfg.prefetchBufferBlocks),
          mshrs(cfg.l1Mshrs),
          shared(shared), meta(meta),
          // Per-access constants, hoisted off the hot path.  The
          // prefetcher pointer is cached so the innermost loop does
          // not chase the binding per trigger, and the clock
          // increment / stall divisor reproduce the per-step
          // llround()/max() arithmetic exactly (same operands, same
          // rounding -- the byte-identical contract).
          pf(binding.prefetcher),
          obs(binding.observer),
          img(binding.image),
          clockStep(static_cast<Cycles>(std::llround(
              binding.instPerAccess / cfg.baseIpc))),
          instStep(static_cast<std::uint64_t>(binding.instPerAccess)),
          mlpDiv(std::max(binding.mlpFactor, 1.0))
    {
        if (img) {
            cursor = ReplayCursor(*img, cfg.cores, binding.imageCore,
                                  cfg.multicore.shardChunk);
        }
    }

    /** Process one access; @return false when the source is done. */
    bool
    step()
    {
        LineAddr line;
        Addr pc;
        if (img) {
            // Zero-copy fast path: the shard cursor walks the
            // packed image; no virtual dispatch, no unpacking.
            std::size_t idx;
            if (!cursor.next(idx))
                return false;
            line = img->lineAt(idx);
            pc = img->pcAt(idx);
        } else {
            Access access;
            if (!binding.source->next(access))
                return false;
            line = access.line();
            pc = access.pc;
        }
        ++result.accesses;

        result.instructions += instStep;
        now += clockStep;

        if (l1.access(line))
            return true;  // L1 hit: latency hidden by the pipeline

        TriggerEvent event;
        event.line = line;
        event.pc = pc;

        // On the zero-copy image path, software-prefetch the
        // metadata row of the *upcoming* access (ReplayCursor
        // lookahead) while this trigger's buffer probe and fill
        // run.  Pure cache hint -- byte-identical results with or
        // without it.
        if (pf && img && !cursor.done()) {
            const std::size_t ahead = cursor.peek();
            pf->warmMetadata(img->lineAt(ahead), img->pcAt(ahead));
        }

        const PrefetchBuffer::HitInfo hit = buffer.lookup(line);
        if (hit.hit) {
            ++result.covered;
            event.wasPrefetchHit = true;
            event.hitStreamId = hit.streamId;
            if (hit.readyCycle > now) {
                // Late prefetch: stall for the remainder, capped at
                // what the demand would have paid on its own.
                ++result.lateCovered;
                stall(std::min<Cycles>(hit.readyCycle - now,
                                       hit.altLatency));
                if (obs)
                    obs->noteLatePrefetch();
            }
            shared.traffic.usefulPrefetchBytes += blockBytes;
        } else {
            ++result.uncovered;
            if (shared.llc.access(line)) {
                stall(cfg.mem.llcLatency);
            } else {
                // Demand fill through the contended channel: the
                // stall includes whatever queueing the other cores'
                // traffic (metadata included) has built up.
                const Cycles done = shared.channel.transfer(
                    core, ChannelKind::DemandFill, blockBytes, now);
                stall(done - now);
                shared.llc.fill(line);
                shared.traffic.demandBytes += blockBytes;
            }
        }
        l1.fill(line);

        if (pf) {
            // Feed the adaptive layer first, so a throttled epoch
            // closing on this trigger sees the channel as of now.
            if (obs)
                obs->observeChannel(now, shared.channel.busyCycles());
            // Single-event batched dispatch: the uniform entry
            // point every simulator uses (DESIGN.md "Batched
            // training API"); identical to onTrigger by contract.
            pf->trainPredictMany(
                std::span<const TriggerEvent>(&event, 1), *this);
            chargeMetadataDelta();
        }

        if constexpr (checksEnabled) {
            if ((++stepsSinceAudit & (auditInterval - 1)) == 0)
                auditAll();
        }
        return true;
    }

    /** Run every structural audit; aborts on the first violation. */
    void
    auditAll() const
    {
        CHECK_EQ(l1.audit(), "");
        CHECK_EQ(shared.llc.audit(), "");
        CHECK_EQ(buffer.audit(), "");
        CHECK_EQ(mshrs.audit(), "");
        CHECK_EQ(shared.channel.audit(), "");
        if (pf)
            CHECK_EQ(pf->audit(), "");
        if (img)
            CHECK_EQ(img->audit(), "");
    }

    /** Finalise counters at the end of the run. */
    McCoreResult
    finish()
    {
        incorrectPrefetches += buffer.stats().evictedUnused;
        shared.traffic.incorrectPrefetchBytes +=
            incorrectPrefetches * blockBytes;
        result.cycles = now;
        const ChannelCoreStats &ch = shared.channel.coreStats(core);
        result.queueCycles = ch.queueCycles;
        result.metaQueueCycles = ch.metaQueueCycles;
        result.metaRequests = ch.metaRequests;
        result.channelBytes = ch.bytes;
        return result;
    }

    /** Discard buffered blocks of @p stream_id on this core. */
    void
    invalidateStreamLocal(std::uint32_t stream_id)
    {
        buffer.invalidateStream(stream_id);
    }

    /** This core's local clock. */
    Cycles nowCycle() const { return now; }

    // PrefetchSink interface -------------------------------------
    void
    issue(LineAddr line, std::uint32_t stream_id,
          unsigned metadata_trips) override
    {
        if (l1.contains(line) || buffer.contains(line))
            return;
        // Serial metadata trips gate the prefetch; with a charged
        // channel they also wait out the queue.  Their bytes are
        // charged via the prefetcher's MetadataStats delta, so the
        // probes move zero bytes (no double count).
        Cycles ready = now;
        for (unsigned t = 0; t < metadata_trips; ++t) {
            if (cfg.multicore.chargeMetadata) {
                ready = shared.channel.transfer(
                    core, ChannelKind::MetadataRead, 0, ready);
            } else {
                ready += cfg.mem.metadataLatency();
            }
        }
        Cycles alt;
        if (shared.llc.access(line)) {
            ready += cfg.mem.llcLatency;
            alt = cfg.mem.llcLatency;
        } else {
            alt = cfg.mem.memLatency;
            ready = shared.channel.transfer(
                core, ChannelKind::PrefetchFill, blockBytes, ready);
            shared.llc.fill(line);
            // Fill bytes are classified useful/incorrect on
            // use/eviction (Figure 15 split).
        }
        mshrs.retire(now);
        if (!mshrs.allocate(line, ready)) {
            ++result.droppedPrefetches;
            return;
        }
        buffer.insert(line, stream_id, ready, alt);
    }

    void
    dropStream(std::uint32_t stream_id) override
    {
        if (shared.sharedScope) {
            // A shared table set replays one stream into several
            // cores' buffers; replacing it discards the blocks
            // everywhere.
            for (auto &other : shared.cores)
                other->invalidateStreamLocal(stream_id);
        } else {
            invalidateStreamLocal(stream_id);
        }
    }

  private:
    void
    stall(Cycles amount)
    {
        // Division by the hoisted divisor, NOT multiplication by a
        // reciprocal: llround(x / d) and llround(x * (1/d)) round
        // differently, and the contract is byte-identical output.
        now += static_cast<Cycles>(std::llround(
            static_cast<double>(amount) / mlpDiv));
    }

    /**
     * Post the prefetcher's metadata traffic growth since the last
     * trigger to the shared channel (at this core's clock) and into
     * the traffic breakdown.  Appends and index write-backs are off
     * the critical path, so they post() rather than transfer().
     */
    void
    chargeMetadataDelta()
    {
        const MetadataStats stats = pf->metadata();
        const std::uint64_t reads = stats.readBytes();
        const std::uint64_t writes = stats.writeBytes();
        DCHECK_GE(reads, meta->readBytes);
        DCHECK_GE(writes, meta->writeBytes);
        const std::uint64_t dRead = reads - meta->readBytes;
        const std::uint64_t dWrite = writes - meta->writeBytes;
        meta->readBytes = reads;
        meta->writeBytes = writes;
        shared.traffic.metadataReadBytes += dRead;
        shared.traffic.metadataUpdateBytes += dWrite;
        if (!cfg.multicore.chargeMetadata)
            return;
        if (dRead && dWrite) {
            // Both deltas arrive at the same cycle on every trigger
            // that sampled an EIT update: one merged queueing step
            // (bit-identical to two posts; see postPair).
            shared.channel.postPair(
                core, ChannelKind::MetadataRead, dRead,
                ChannelKind::MetadataUpdate, dWrite, now);
        } else if (dRead) {
            shared.channel.post(core, ChannelKind::MetadataRead,
                                dRead, now);
        } else if (dWrite) {
            shared.channel.post(core, ChannelKind::MetadataUpdate,
                                dWrite, now);
        }
    }

    const SystemConfig &cfg;
    const CoreBinding &binding;
    unsigned core;
    SetAssocCache l1;
    PrefetchBuffer buffer;
    MshrFile mshrs;
    SharedState &shared;
    MetaAccount *meta;
    /** Hoisted per-access constants (see constructor). */
    Prefetcher *const pf;
    ChannelObserver *const obs;
    const ReplayImage *const img;
    ReplayCursor cursor;
    const Cycles clockStep;
    const std::uint64_t instStep;
    const double mlpDiv;
    McCoreResult result;
    Cycles now = 0;
    std::uint64_t incorrectPrefetches = 0;

    /** Audit cadence in triggering events (power of two). */
    static constexpr std::uint64_t auditInterval = 2048;
    std::uint64_t stepsSinceAudit = 0;
};

using CorePtrs = std::vector<std::unique_ptr<CoreState>>;

/**
 * Reference scheduler (the oracle the batched schedulers are
 * verified against): before every single step, scan for the alive
 * core whose (local clock, index) pair is lexicographically
 * smallest, and advance it once.
 */
void
runReferenceMinClock(CorePtrs &cores)
{
    std::vector<bool> done(cores.size(), false);
    std::size_t remaining = cores.size();
    while (remaining) {
        std::size_t pick = cores.size();
        for (std::size_t i = 0; i < cores.size(); ++i) {
            if (done[i])
                continue;
            if (pick == cores.size() ||
                cores[i]->nowCycle() < cores[pick]->nowCycle()) {
                pick = i;
            }
        }
        if (!cores[pick]->step()) {
            done[pick] = true;
            --remaining;
        }
    }
}

/**
 * Run-batched scheduler, linear-scan pick (small core counts).
 *
 * Batching invariant: one step only advances the picked core p's
 * clock, so the lexicographic minimum over the *other* alive cores
 * -- the runner-up (r, ri) -- is unchanged for the whole batch, and
 * p remains the reference scheduler's pick exactly while
 * (clock_p, p) < (r, ri).  Re-checking that inequality before each
 * step therefore reproduces the reference step sequence while
 * paying the O(cores) pick scan once per batch instead of once per
 * access (DESIGN.md section 6, "Run-batched scheduling").
 */
void
runBatchedScan(CorePtrs &cores)
{
    const std::size_t n = cores.size();
    std::vector<bool> done(n, false);
    std::size_t remaining = n;
    while (remaining) {
        // One scan finds both the pick (lexicographic minimum of
        // (clock, index)) and the runner-up among the other alive
        // cores.
        std::size_t pick = n, ru = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (done[i])
                continue;
            if (pick == n ||
                cores[i]->nowCycle() < cores[pick]->nowCycle()) {
                ru = pick;
                pick = i;
            } else if (ru == n || cores[i]->nowCycle() <
                                      cores[ru]->nowCycle()) {
                ru = i;
            }
        }
        if (ru == n) {
            // Last core standing: nothing can overtake it.
            while (cores[pick]->step()) {
            }
            done[pick] = true;
            --remaining;
            continue;
        }
        const Cycles ruClock = cores[ru]->nowCycle();
        for (;;) {
            if (!cores[pick]->step()) {
                done[pick] = true;
                --remaining;
                break;
            }
            const Cycles c = cores[pick]->nowCycle();
            if (c > ruClock || (c == ruClock && pick > ru))
                break;  // the runner-up is now the reference pick
        }
    }
}

/**
 * Run-batched scheduler, index-heap pick (>= 8 cores): a min-heap
 * of (clock, index) pairs replaces the linear scan -- pop the pick,
 * peek the runner-up, batch, push the pick back.  Same batching
 * invariant (and so the same step sequence) as runBatchedScan;
 * std::pair's lexicographic order supplies the tie-break.
 */
void
runBatchedHeap(CorePtrs &cores)
{
    using Key = std::pair<Cycles, std::size_t>;
    const auto byGreater = [](const Key &a, const Key &b) {
        return a > b;
    };
    std::vector<Key> heap;
    heap.reserve(cores.size());
    for (std::size_t i = 0; i < cores.size(); ++i)
        heap.emplace_back(cores[i]->nowCycle(), i);
    std::make_heap(heap.begin(), heap.end(), byGreater);
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), byGreater);
        const std::size_t pick = heap.back().second;
        heap.pop_back();
        if (heap.empty()) {
            while (cores[pick]->step()) {
            }
            continue;
        }
        const Key ru = heap.front();
        bool alive = true;
        for (;;) {
            if (!cores[pick]->step()) {
                alive = false;
                break;
            }
            if (ru < Key{cores[pick]->nowCycle(), pick})
                break;  // the runner-up is now the reference pick
        }
        if (alive) {
            heap.emplace_back(cores[pick]->nowCycle(), pick);
            std::push_heap(heap.begin(), heap.end(), byGreater);
        }
    }
}

} // anonymous namespace

MultiCoreSim::MultiCoreSim(const SystemConfig &config)
    : cfg(config)
{}

MultiCoreResult
MultiCoreSim::run(const std::vector<CoreBinding> &bindings,
                  McScheduler scheduler)
{
    CHECK_EQ(bindings.size(), static_cast<std::size_t>(cfg.cores));

    SharedState shared(cfg);

    // One metadata account per *distinct* prefetcher instance, and
    // shared scope iff any instance serves more than one core.
    for (const auto &b : bindings) {
        if (!b.prefetcher)
            continue;
        bool known = false;
        for (const auto &acct : shared.metaAccounts) {
            if (acct.prefetcher == b.prefetcher) {
                known = true;
                shared.sharedScope = true;
                break;
            }
        }
        if (!known) {
            MetaAccount acct;
            acct.prefetcher = b.prefetcher;
            shared.metaAccounts.push_back(acct);
        }
    }

    shared.cores.reserve(bindings.size());
    for (unsigned c = 0; c < bindings.size(); ++c) {
        MetaAccount *meta = nullptr;
        for (auto &acct : shared.metaAccounts) {
            if (acct.prefetcher == bindings[c].prefetcher) {
                meta = &acct;
                break;
            }
        }
        shared.cores.push_back(std::make_unique<CoreState>(
            cfg, bindings[c], c, shared, meta));
    }

    // Event-ordered interleaving: always advance the core whose
    // (local clock, index) pair is lexicographically smallest.
    // Strict round-robin would let per-core clocks drift apart, and
    // the channel's global freeAt horizon would then bill a
    // behind-clock core "queueing" equal to the drift rather than
    // to genuine contention.  The batched schedulers exploit the
    // invariant that a step changes only the stepped core's clock:
    // the runner-up stays fixed for a whole batch, so the pick scan
    // is paid per batch, not per access, while the step sequence --
    // and therefore every result byte -- matches the reference
    // min-clock stepper (verified by the scheduler-equivalence
    // test).
    if (scheduler == McScheduler::ReferenceMinClock)
        runReferenceMinClock(shared.cores);
    else if (shared.cores.size() >= 8)
        runBatchedHeap(shared.cores);
    else
        runBatchedScan(shared.cores);

    MultiCoreResult result;
    for (auto &core : shared.cores)
        result.cores.push_back(core->finish());
    result.traffic = shared.traffic;
    result.channelBusyCycles = shared.channel.busyCycles();
    if (const Cycles window = shared.channel.occupancyWindow()) {
        result.occupancyWindow = window;
        result.occupancyPm.reserve(
            shared.channel.windowBusy().size());
        for (const Cycles w : shared.channel.windowBusy()) {
            result.occupancyPm.push_back(static_cast<std::uint32_t>(
                std::min<Cycles>(1000, w * 1000 / window)));
        }
    }
    CHECK_EQ(shared.channel.audit(), "");
    return result;
}

} // namespace domino
