/**
 * @file
 * The shared off-chip channel of the multi-core substrate: a
 * bandwidth/queueing account through which every DRAM transfer --
 * demand fills, prefetch fills, and Domino's HT/EIT metadata
 * traffic -- is charged, so metadata bandwidth consumption shows up
 * as *per-core slowdown*, not just as a byte counter.
 *
 * Model: a single channel with MemoryParams::bytesPerCycle() of
 * sustained bandwidth.  A transfer of B bytes occupies the channel
 * for ceil(B / bytesPerCycle) cycles; a request arriving while the
 * channel is busy queues behind the in-flight transfers (freeAt
 * bookkeeping), and the queueing delay is attributed to the
 * requesting core.  This deliberately replaces the single-core
 * timing model's premise (Section V.D: prefetcher traffic never
 * delays demand fetches) with the contended regime the paper's
 * Figure 15 and Triangel's on-chip-vs-off-chip argument care about.
 *
 * Two request flavours:
 *  - transfer(): on the requesting core's critical path; returns the
 *    completion cycle (queue + occupancy + the round-trip latency).
 *    A zero-byte transfer is a *latency probe*: it queues and pays
 *    the round trip but consumes no bandwidth -- the serial metadata
 *    trips use it, because their bytes are charged via the
 *    prefetcher's own MetadataStats (post()) and must not be
 *    double-counted.
 *  - post(): fire-and-forget occupancy for traffic that is off the
 *    critical path (history appends, index write-backs, sampled EIT
 *    updates).  It consumes bandwidth -- delaying *later* requests
 *    from any core -- but stalls nobody at request time.
 *
 * Cores advance on private clocks and meet here: the channel's
 * freeAt horizon is global, so a request can arrive "in the past"
 * relative to another core's transfers.  Round-robin stepping in
 * MultiCoreSim keeps the clocks in step within one access, and the
 * arrival order (and hence every completion time) is a pure
 * function of the configuration -- the account is deterministic.
 */

#ifndef DOMINO_MULTICORE_BANDWIDTH_MODEL_H
#define DOMINO_MULTICORE_BANDWIDTH_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/memory_model.h"

namespace domino
{

/** What a channel transfer carries (per-kind byte accounting). */
enum class ChannelKind : unsigned
{
    DemandFill = 0,
    PrefetchFill,
    MetadataRead,
    MetadataUpdate,
};

/** Number of ChannelKind values (array sizing). */
constexpr unsigned channelKinds = 4;

/** Per-core channel account. */
struct ChannelCoreStats
{
    /** Bytes this core moved over the channel (all kinds). */
    std::uint64_t bytes = 0;
    /** Cycles this core's critical-path requests spent queued. */
    Cycles queueCycles = 0;
    /** Critical-path requests issued (transfer() calls). */
    std::uint64_t requests = 0;
    /** The metadata slice of queueCycles: queueing paid on
     *  critical-path HT/EIT trips (the shared-table contention the
     *  many-core study isolates). */
    Cycles metaQueueCycles = 0;
    /** Critical-path metadata requests (slice of `requests`). */
    std::uint64_t metaRequests = 0;
};

/** The shared channel. */
class BandwidthModel
{
  public:
    /**
     * @param mem latency/bandwidth parameters (the single source of
     *        truth shared with the single-core timing model).
     * @param cores number of per-core accounts.
     */
    BandwidthModel(const MemoryParams &mem, unsigned cores);

    /**
     * Critical-path request: @p bytes for @p core arriving at
     * @p now.  @return the completion cycle (>= now).  Zero bytes =
     * latency probe (queues, pays the round trip, occupies
     * nothing).
     */
    Cycles transfer(unsigned core, ChannelKind kind,
                    std::uint64_t bytes, Cycles now);

    /**
     * Off-critical-path traffic: occupies the channel (delaying
     * later requests) and charges bytes, but returns no completion
     * time -- the requesting core does not wait.
     */
    void post(unsigned core, ChannelKind kind, std::uint64_t bytes,
              Cycles now);

    /**
     * Two same-cycle post() calls merged into one queueing step.
     * Exactly equivalent to post(kind_a) then post(kind_b) at the
     * same @p now -- the per-kind occupancies are still rounded
     * separately, so the busy horizon (and with it every later
     * transfer's completion time) is bit-identical to the two-call
     * sequence.  Saves the second horizon round trip on the per-
     * trigger metadata path, where read and update deltas almost
     * always arrive together.
     */
    void postPair(unsigned core, ChannelKind kind_a,
                  std::uint64_t bytes_a, ChannelKind kind_b,
                  std::uint64_t bytes_b, Cycles now);

    /** Cycle at which the channel next goes idle. */
    Cycles freeAt() const { return channelFreeAt; }

    /** Cycles the channel spent transferring (occupancy sum). */
    Cycles busyCycles() const { return busy; }

    /**
     * Start recording per-window channel occupancy: every occupied
     * cycle is attributed to the fixed-length wall-clock window it
     * falls in (occupancy spanning a boundary is split exactly).
     * Call before the first request; @p window must be positive.
     * The log feeds MultiCoreResult's per-epoch occupancy export.
     */
    void enableOccupancyLog(Cycles window);

    /** The occupancy-log window length (0 = logging off). */
    Cycles occupancyWindow() const { return occWindow; }

    /** Occupied cycles per window (empty when logging is off). */
    const std::vector<Cycles> &windowBusy() const
    {
        return occLog;
    }

    /** Bytes moved for one kind. */
    std::uint64_t
    kindBytes(ChannelKind kind) const
    {
        return perKind[static_cast<unsigned>(kind)];
    }

    /** Total bytes moved (all kinds). */
    std::uint64_t totalBytes() const;

    /** One core's account. */
    const ChannelCoreStats &coreStats(unsigned core) const;

    unsigned cores() const
    {
        return static_cast<unsigned>(perCore.size());
    }

    /**
     * Verify the account's invariants: per-core bytes sum to the
     * per-kind total, occupancy never exceeds the busy horizon, the
     * horizon only moves forward, and the configured bandwidth is
     * positive.
     * @return empty string if OK, else a description.
     */
    std::string audit() const;

  private:
    /** Test-only backdoor for corrupting counters in audit
     *  tests. */
    friend struct BandwidthTestPeer;

    /** Channel occupancy of a transfer, in cycles. */
    Cycles occupancyOf(std::uint64_t bytes) const;

    /** Common queueing step: start time and horizon update. */
    Cycles enqueue(unsigned core, ChannelKind kind,
                   std::uint64_t bytes, Cycles now);

    /** Attribute @p occupancy starting at @p start to the log. */
    void logOccupancy(Cycles start, Cycles occupancy);

    MemoryParams mem;
    Cycles channelFreeAt = 0;
    Cycles busy = 0;
    std::uint64_t perKind[channelKinds] = {};
    std::vector<ChannelCoreStats> perCore;
    /** Occupancy log (see enableOccupancyLog). */
    Cycles occWindow = 0;
    std::vector<Cycles> occLog;
};

} // namespace domino

#endif // DOMINO_MULTICORE_BANDWIDTH_MODEL_H
