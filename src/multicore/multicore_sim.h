/**
 * @file
 * The multi-core simulation substrate: N cores (default 4), each
 * with a private L1-D, MSHR file, prefetch buffer, and prefetcher
 * instance, in front of a shared LLC and a shared off-chip channel
 * (BandwidthModel) that charges demand fills *and* the temporal
 * prefetchers' HT/EIT metadata traffic.
 *
 * This is the paper's actual evaluation substrate (4-core SPARC
 * server, shared LLC, off-chip metadata contending with demand
 * traffic for DRAM bandwidth) where the older src/sim timing model
 * is a per-core approximation with an uncontended channel.  The
 * differences that matter:
 *
 *  - *queueing is first-class*: every off-chip transfer waits for
 *    the shared channel, so one core's metadata traffic slows every
 *    other core's demand fills -- the per-core slowdown the
 *    zero-cost-metadata control isolates;
 *  - *metadata bytes are charged when they move*: after each
 *    triggering event the prefetcher's MetadataStats delta is
 *    posted to the channel at the core's current cycle, instead of
 *    being summed once at the end of the run;
 *  - *HT/EIT scope is configurable*: private (one table set per
 *    core) or shared (one table set observing the union of all
 *    cores' trigger streams; see MulticoreParams::sharedMetadata).
 *    In shared scope a replaced stream's buffered blocks are
 *    discarded on every core.
 *
 * Cores are interleaved in event order -- always the core with the
 * (clock, index)-lexicographically smallest local clock advances --
 * with each core's clock local to it; the shared channel is the
 * only cross-core coupling.  The production scheduler batches runs
 * of steps on the picked core (see McScheduler), which is provably
 * the same interleaving.  The run is a pure function of (sources,
 * prefetchers, config) -- no global state, no scheduling
 * dependence -- so multi-core cells keep the byte-identical
 * `--jobs` determinism contract.
 */

#ifndef DOMINO_MULTICORE_MULTICORE_SIM_H
#define DOMINO_MULTICORE_MULTICORE_SIM_H

#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory_model.h"
#include "multicore/bandwidth_model.h"
#include "multicore/channel_feedback.h"
#include "prefetch/prefetcher.h"
#include "sim/system_config.h"
#include "trace/replay_image.h"
#include "trace/trace_buffer.h"

namespace domino
{

/** One core's binding for a multi-core run. */
struct CoreBinding
{
    /**
     * Access stream for this core (not owned).  Tier-agnostic: a
     * ShardView over a resident trace and a
     * StreamingTraceSource::openShard over a spilled one (same
     * cores/chunk geometry as the system config's shardChunk)
     * produce byte-identical simulations -- the harnesses'
     * --stream mode binds the latter.
     */
    AccessSource *source = nullptr;
    /**
     * Optional zero-copy fast path: when set, the core replays its
     * shard of this packed image (geometry from the system config's
     * cores/shardChunk) instead of pulling `source` -- no virtual
     * dispatch and no record unpacking on the per-access path.  The
     * image must cover the same trace the source would, and
     * `imageCore` selects the shard.  `source` is ignored when an
     * image is bound.
     */
    const ReplayImage *image = nullptr;
    /** Shard of `image` this core replays. */
    unsigned imageCore = 0;
    /**
     * Prefetcher driven by this core's triggers (not owned);
     * nullptr = none.  The same pointer may appear for several
     * cores (shared HT/EIT scope) -- the simulator detects
     * repetition and keeps one metadata account per instance.
     */
    Prefetcher *prefetcher = nullptr;
    /**
     * Optional channel-feedback hook (not owned); nullptr = none.
     * When set, the simulator feeds it the shared channel's
     * occupancy before each of this core's triggering events plus a
     * notification per late prefetch hit -- the adaptive throttle
     * wrapper's control input (PrefetcherSet::observers).
     */
    ChannelObserver *observer = nullptr;
    /** Workload MLP factor (stall overlap divisor). */
    double mlpFactor = 1.3;
    /** Instructions represented by each trace access. */
    double instPerAccess = 3.0;
};

/**
 * Scheduling strategy for MultiCoreSim::run.  Both produce the
 * identical step sequence (and therefore identical results, which
 * the scheduler-equivalence test asserts); RunBatched is the
 * production default, ReferenceMinClock the oracle it is verified
 * against.
 */
enum class McScheduler
{
    /**
     * Run-batched event ordering: pick the (clock, index)-minimal
     * core once, then let it step repeatedly until its clock passes
     * the runner-up's -- the pick scan is paid per *batch*, not per
     * access.  Uses an index heap for the pick at >= 8 cores.
     */
    RunBatched,
    /** O(cores) min-clock scan before every single step. */
    ReferenceMinClock,
};

/** Per-core outcome of a multi-core run. */
struct McCoreResult
{
    std::uint64_t accesses = 0;
    std::uint64_t instructions = 0;
    Cycles cycles = 0;
    std::uint64_t covered = 0;
    std::uint64_t uncovered = 0;
    std::uint64_t lateCovered = 0;
    /** Prefetches dropped for want of an MSHR. */
    std::uint64_t droppedPrefetches = 0;
    /** Cycles this core's off-chip requests spent queued behind
     *  other transfers on the shared channel. */
    Cycles queueCycles = 0;
    /** The metadata slice of queueCycles (critical-path HT/EIT
     *  trips queued behind other cores' traffic). */
    Cycles metaQueueCycles = 0;
    /** Critical-path metadata requests this core issued. */
    std::uint64_t metaRequests = 0;
    /** Bytes this core moved over the shared channel. */
    std::uint64_t channelBytes = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
            static_cast<double>(cycles) : 0.0;
    }

    /** Fraction of baseline misses eliminated on this core. */
    double
    coverage() const
    {
        const std::uint64_t base = covered + uncovered;
        return base ? static_cast<double>(covered) /
            static_cast<double>(base) : 0.0;
    }
};

/** Whole-chip outcome of a multi-core run. */
struct MultiCoreResult
{
    std::vector<McCoreResult> cores;
    /** Byte breakdown (Figure 15 classification). */
    OffChipTraffic traffic;
    /** Cycles the shared channel spent transferring. */
    Cycles channelBusyCycles = 0;
    /** Per-epoch occupancy export: channel occupancy per mille for
     *  each MulticoreParams::occupancyWindow-cycle window (empty
     *  when the export is off). */
    std::vector<std::uint32_t> occupancyPm;
    /** The window length the export used (0 = off). */
    std::uint64_t occupancyWindow = 0;

    /** Total instructions across cores. */
    std::uint64_t totalInstructions() const;
    /** Wall-clock proxy: the slowest core's cycle count. */
    Cycles makespan() const;
    /** Whole-chip throughput: instructions per makespan cycle. */
    double systemIpc() const;
    /** Speedup of this run over a baseline run. */
    double speedupOver(const MultiCoreResult &baseline) const;
    /** Total channel queueing across cores. */
    Cycles totalQueueCycles() const;
    /** Total critical-path metadata queueing across cores. */
    Cycles totalMetaQueueCycles() const;
    /** A percentile of the per-window occupancy export (per mille);
     *  0 when the export is off.  @p pct in [0, 100]. */
    std::uint32_t occupancyPercentilePm(unsigned pct) const;
    /** Aggregate coverage across cores. */
    double aggregateCoverage() const;
    /** Achieved off-chip bandwidth in GB/s over the makespan. */
    double bandwidthGBs(double core_ghz) const;
    /** Metadata bytes as a fraction of all off-chip bytes. */
    double metadataShare() const;
};

/** The multi-core simulator. */
class MultiCoreSim
{
  public:
    explicit MultiCoreSim(const SystemConfig &config = {});

    /**
     * Run all cores in event order to the exhaustion of their
     * sources.  @p bindings must have config.cores entries.
     * @p scheduler selects the stepping strategy; both produce
     * identical results (see McScheduler).
     */
    MultiCoreResult run(const std::vector<CoreBinding> &bindings,
                        McScheduler scheduler =
                            McScheduler::RunBatched);

  private:
    SystemConfig cfg;
};

} // namespace domino

#endif // DOMINO_MULTICORE_MULTICORE_SIM_H
