/**
 * @file
 * Parameter set describing one synthetic server workload.
 *
 * The paper evaluates nine commercial server workloads (Table II)
 * captured with Flexus full-system simulation.  Those traces are not
 * publicly available, so this reproduction generates access traces
 * with the statistical structure that the paper's mechanisms key on:
 *
 *  - *temporal streams*: recurring sequences of cache misses with a
 *    short-dominated length distribution (Figure 12: 10-47 % of
 *    streams have length <= 2, most are < 8, Sequitur mean = 7.6);
 *  - *prefix ambiguity*: many streams share their first miss
 *    address, which is exactly what defeats single-address lookup
 *    (STMS) and what two-address lookup (Digram/Domino) resolves;
 *  - *PC delocalisation*: the same static load PC participates in
 *    many different global streams, which breaks PC-localised
 *    temporal correlation (ISB);
 *  - *spatial runs*: a workload-dependent fraction of misses follows
 *    in-page delta patterns that recur on fresh pages (capturable by
 *    VLDP but not by temporal prefetchers -> Figure 16);
 *  - *cold/irregular misses*: brand-new addresses that no history
 *    prefetcher can cover (dominant in SAT Solver).
 *
 * Each knob below controls one of these properties.
 */

#ifndef DOMINO_WORKLOADS_WORKLOAD_PARAMS_H
#define DOMINO_WORKLOADS_WORKLOAD_PARAMS_H

#include <cstdint>
#include <string>
#include <vector>

namespace domino
{

/** Tunable description of one synthetic server workload. */
struct WorkloadParams
{
    /** Display name (matches Table II of the paper). */
    std::string name;

    // --- Stream library shape -------------------------------------

    /** Number of distinct temporal streams in the library. */
    std::uint32_t numStreams = 1500;
    /** Mean length of the short-stream component (geometric). */
    double shortLenMean = 5.0;
    /** Mean length of the long-stream component (geometric). */
    double longLenMean = 32.0;
    /** Fraction of streams drawn from the long component. */
    double longFraction = 0.35;
    /** Zipf exponent for picking streams (higher = more skewed). */
    double zipfTheta = 0.3;

    // --- Lookup-ambiguity structure -------------------------------

    /**
     * Probability that a stream's first address is copied from an
     * earlier stream (single-address lookup ambiguity).
     */
    double sharedPrefixProb = 0.35;
    /**
     * Probability that a stream's first *two* addresses are copied
     * from an earlier stream (two-address lookup ambiguity; the
     * paper finds matching more than two addresses adds little).
     */
    double sharedPairProb = 0.04;
    /**
     * Per-element probability that a stream element is drawn from a
     * pool of lines shared across streams (index inner nodes, lock
     * words, metadata blocks).  Shared elements are what make a
     * single-address lookup point at the wrong context: the last
     * occurrence of such a line is usually inside a *different*
     * stream, so STMS picks a wrong stream (Figure 3's low
     * single-address accuracy), while the (address, successor) pair
     * still identifies the right one.
     */
    double sharedElementProb = 0.30;
    /** Size of the shared-line pool (0 = max(1024, numStreams)). */
    std::uint32_t sharedPoolLines = 8192;

    // --- Replay perturbation --------------------------------------

    /** Per-element probability of substituting a fresh cold line. */
    double mutateProb = 0.02;
    /** Per-replay probability of truncating the stream. */
    double truncateProb = 0.15;
    /** Fraction of inter-stream gaps that emit a cold-miss run. */
    double coldRunProb = 0.05;
    /** Mean length of a cold-miss run (geometric). */
    double coldRunLen = 3.0;
    /**
     * Volume of isolated *noise revisits*, as a fraction of stream
     * misses.  A noise revisit touches one recently-missed line out
     * of context (cache conflicts, OS interference, other
     * transaction types touching shared structures).  Noise is the
     * key corrupter of single-address indices: the *last* occurrence
     * of a line is frequently such an isolated touch, so STMS
     * replays garbage after it (Figure 2's stream length of 1.4),
     * while the (address, successor) pair of a real run survives in
     * the EIT super-entry's LRU entries -- this is exactly what the
     * paper's three entries per super-entry filter out.
     */
    double noiseRate = 0.12;
    /** Recently-missed window from which noise revisits draw. */
    std::uint32_t noiseWindow = 32768;
    /**
     * Probability that a stream replay is fine-grain interleaved
     * with a second stream (two execution contexts missing
     * concurrently).  Interleaving is what fragments the *last*
     * occurrence of an address in the global history: a
     * single-address index (STMS) then replays the fragmented
     * context and breaks after a couple of prefetches (Figure 2's
     * stream length of 1.4), while a pair entry (Domino's EIT)
     * still points at the last *clean* occurrence of that pair.
     */
    double interleaveProb = 0.40;

    // --- Spatial component (VLDP territory) -----------------------

    /** Fraction of library streams that are in-page delta runs. */
    double spatialFraction = 0.10;
    /**
     * Probability that a spatial stream replays on a *fresh* page
     * (temporal prefetchers cannot cover those misses; VLDP can).
     */
    double spatialNewPageProb = 0.7;

    // --- PC structure (ISB territory) -----------------------------

    /** Size of the static load-PC pool. */
    std::uint32_t numPcs = 2048;
    /**
     * Number of distinct load PCs a stream cycles through (the
     * loop-body model: element k uses PC k mod pcsPerStream).  The
     * PCs themselves are shared across streams, which is what
     * de-localises per-PC miss sequences.
     */
    std::uint32_t pcsPerStream = 4;
    /**
     * Probability that a replayed element keeps the PC it had when
     * the stream was created (lower = more PC churn, worse for ISB).
     */
    double pcStability = 0.62;

    // --- L1-filtering / instruction mix ---------------------------

    /** Number of hot lines that stay resident in the 64 KB L1-D. */
    std::uint32_t hotLines = 64;
    /** Mean number of hot (L1-hit) accesses between misses. */
    double hotPerMiss = 4.0;
    /** Instructions represented by each trace access (timing). */
    double instPerAccess = 3.0;

    // --- Timing-model characterisation ----------------------------

    /**
     * Memory-level-parallelism factor: average number of outstanding
     * demand misses the OOO core overlaps (Web Search and Media
     * Streaming are high-MLP in the paper, so prefetching buys them
     * less).
     */
    double mlpFactor = 1.3;

    /** Total accesses to generate in one standard run. */
    std::uint64_t defaultAccesses = 2'000'000;

    /** Base seed mixed with the user seed (per-workload decoupling). */
    std::uint64_t seedSalt = 0;

    /**
     * Canonical trace-cache key for this parameter set at the given
     * generation seed and access limit.  Serialises *every* field
     * (doubles in hexfloat, so the key is exact, not a rounded
     * display form): two parameter sets produce the same key iff
     * ServerWorkload would produce the same trace for them.
     */
    std::string cacheKey(std::uint64_t seed,
                         std::uint64_t limit) const;
};

/** The nine server workloads of Table II, paper order. */
std::vector<WorkloadParams> serverSuite();

/**
 * Look up one workload of the suite by (case-sensitive) name.
 * Returns true and fills @p out on success.
 */
bool findWorkload(const std::string &name, WorkloadParams &out);

/** Names of all suite workloads, paper order. */
std::vector<std::string> suiteNames();

} // namespace domino

#endif // DOMINO_WORKLOADS_WORKLOAD_PARAMS_H
