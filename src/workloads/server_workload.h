/**
 * @file
 * The synthetic server-workload access generator.
 *
 * Emits an L1-D access trace whose miss sequence (after L1
 * filtering) consists of interleaved temporal-stream replays,
 * spatial in-page runs, cold-miss runs, and noise revisits, in the
 * proportions given by WorkloadParams.  See workload_params.h for
 * how each property maps to a mechanism in the paper.
 */

#ifndef DOMINO_WORKLOADS_SERVER_WORKLOAD_H
#define DOMINO_WORKLOADS_SERVER_WORKLOAD_H

// conventions: allow-file(audit-coverage) -- deterministic generator; (params, seed, limit) fully determine
// the output, which the determinism tests replay bit-for-bit

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/prng.h"
#include "trace/trace_buffer.h"
#include "workloads/stream_library.h"
#include "workloads/workload_params.h"

namespace domino
{

/**
 * Streaming generator implementing AccessSource.
 *
 * Deterministic: (params, seed, limit) fully determine the emitted
 * sequence; reset() restarts it identically.
 */
class ServerWorkload : public AccessSource
{
  public:
    /**
     * @param params workload description.
     * @param seed experiment seed.
     * @param limit number of accesses to emit (0 = params default).
     */
    ServerWorkload(const WorkloadParams &params, std::uint64_t seed,
                   std::uint64_t limit = 0);

    bool next(Access &out) override;
    void reset() override;

    const WorkloadParams &params() const { return p; }
    const StreamLibrary &library() const { return *lib; }

  private:
    /** A materialised replay: (line, pc) per miss. */
    using Replay = std::vector<std::pair<LineAddr, Addr>>;

    void refill();
    void pushMiss(LineAddr line, Addr pc);
    void pushHotBurst();
    void pushNoise();
    Replay materialize(const StreamDef &def);
    Replay materializeTemporal(const StreamDef &def);
    Replay materializeSpatial(const StreamDef &def);
    void emitReplay(const Replay &replay);

    WorkloadParams p;
    std::uint64_t seed;
    std::uint64_t limit;

    std::shared_ptr<StreamLibrary> lib;
    std::unique_ptr<ZipfSampler> zipf;
    std::unique_ptr<AddressAllocator> coldAlloc;
    Prng rng;

    std::deque<Access> queue;
    std::uint64_t emitted = 0;

    /** Ring of recently missed lines (noise revisits draw here). */
    std::vector<LineAddr> recentMisses;
    std::size_t recentCursor = 0;

    /** Hot-set line base (distinct region, stays L1-resident). */
    static constexpr LineAddr hotBase = 0x100;
};

/**
 * Convenience: materialise a full trace for a workload.
 *
 * @param params workload description.
 * @param seed experiment seed.
 * @param limit accesses (0 = params default).
 */
TraceBuffer generateTrace(const WorkloadParams &params,
                          std::uint64_t seed, std::uint64_t limit = 0);

} // namespace domino

#endif // DOMINO_WORKLOADS_SERVER_WORKLOAD_H
