#include "workload_params.h"

#include <ios>
#include <sstream>

namespace domino
{

namespace
{

/**
 * Build the common base every workload starts from; presets below
 * override the knobs that characterise each workload in the paper.
 * The base values were calibrated so that the suite reproduces the
 * paper's relative results (see EXPERIMENTS.md for the calibration
 * notes and known deviations).
 */
WorkloadParams
base(const std::string &name, std::uint64_t salt)
{
    WorkloadParams p;
    p.name = name;
    p.seedSalt = salt;
    return p;
}

} // anonymous namespace

std::vector<WorkloadParams>
serverSuite()
{
    std::vector<WorkloadParams> suite;

    // Data Serving (Cassandra / YCSB): key-value lookups with a mix
    // of temporal chains and in-page scans; clear spatio-temporal
    // synergy in Figure 16.
    {
        WorkloadParams p = base("Data Serving", 0x11);
        p.numStreams = 1500;
        p.spatialFraction = 0.22;
        p.mlpFactor = 1.4;
        suite.push_back(p);
    }

    // MapReduce-C (Hadoop Bayes classification): compute-heavy with
    // long, regular temporal streams; lowest bandwidth demand in the
    // paper (8.7 % utilisation).
    {
        WorkloadParams p = base("MapReduce-C", 0x22);
        p.numStreams = 1200;
        p.shortLenMean = 6.0;
        p.longLenMean = 40.0;
        p.longFraction = 0.40;
        p.interleaveProb = 0.30;
        p.noiseRate = 0.08;
        p.mutateProb = 0.01;
        p.coldRunProb = 0.03;
        p.spatialFraction = 0.08;
        p.hotPerMiss = 6.0;
        p.mlpFactor = 1.2;
        suite.push_back(p);
    }

    // MapReduce-W (Hadoop Mahout): drastically short temporal
    // streams (paper Section V.C), so metadata fetch delay cannot be
    // amortised; the spatio-temporal combination is super-additive
    // (Figure 16).
    {
        WorkloadParams p = base("MapReduce-W", 0x33);
        p.numStreams = 2500;
        p.shortLenMean = 2.0;
        p.longLenMean = 6.0;
        p.longFraction = 0.15;
        p.interleaveProb = 0.45;
        p.noiseRate = 0.15;
        p.spatialFraction = 0.15;
        p.hotPerMiss = 5.0;
        p.mlpFactor = 1.2;
        suite.push_back(p);
    }

    // Media Streaming (Darwin): long mostly-sequential streams and
    // high MLP, so coverage is high but the speedup is muted.
    {
        WorkloadParams p = base("Media Streaming", 0x44);
        p.numStreams = 900;
        p.shortLenMean = 6.0;
        p.longLenMean = 48.0;
        p.longFraction = 0.50;
        p.interleaveProb = 0.25;
        p.noiseRate = 0.08;
        p.spatialFraction = 0.30;
        p.hotPerMiss = 3.0;
        p.mlpFactor = 2.6;
        suite.push_back(p);
    }

    // OLTP (Oracle TPC-C): pointer-chasing dependent misses over
    // heavily shared index structures -- the workload where the
    // two-address lookup buys the most over STMS in the paper.
    {
        WorkloadParams p = base("OLTP", 0x55);
        p.numStreams = 1500;
        p.sharedElementProb = 0.45;
        p.sharedPrefixProb = 0.50;
        p.interleaveProb = 0.45;
        p.noiseRate = 0.15;
        p.spatialFraction = 0.03;
        p.mlpFactor = 1.15;
        suite.push_back(p);
    }

    // SAT Solver (Cloud9): generates its dataset on the fly, so
    // misses are hard to predict -- high cold rate, high mutation,
    // low coverage and high overpredictions for every technique.
    {
        WorkloadParams p = base("SAT Solver", 0x66);
        p.numStreams = 2000;
        p.shortLenMean = 3.0;
        p.longLenMean = 14.0;
        p.longFraction = 0.20;
        p.mutateProb = 0.12;
        p.truncateProb = 0.30;
        p.coldRunProb = 0.30;
        p.coldRunLen = 5.0;
        p.noiseRate = 0.25;
        p.spatialFraction = 0.05;
        p.mlpFactor = 1.3;
        suite.push_back(p);
    }

    // Web Apache (SPECweb99): large footprint and the most
    // bandwidth-hungry workload in the paper (8 GB/s; 32.8 %
    // utilisation with Domino).
    {
        WorkloadParams p = base("Web Apache", 0x77);
        p.numStreams = 2500;
        p.shortLenMean = 4.0;
        p.longLenMean = 26.0;
        p.longFraction = 0.30;
        p.sharedElementProb = 0.35;
        p.spatialFraction = 0.12;
        p.hotPerMiss = 2.5;
        p.mlpFactor = 1.35;
        suite.push_back(p);
    }

    // Web Search (Nutch/Lucene): high MLP, so despite good coverage
    // the speedup is small.
    {
        WorkloadParams p = base("Web Search", 0x88);
        p.numStreams = 1200;
        p.longLenMean = 28.0;
        p.longFraction = 0.30;
        p.interleaveProb = 0.35;
        p.noiseRate = 0.10;
        p.spatialFraction = 0.10;
        p.hotPerMiss = 5.0;
        p.mlpFactor = 2.8;
        suite.push_back(p);
    }

    // Web Zeus (SPECweb99): Apache-like with a slightly smaller
    // footprint.
    {
        WorkloadParams p = base("Web Zeus", 0x99);
        p.numStreams = 2000;
        p.shortLenMean = 4.0;
        p.longLenMean = 26.0;
        p.longFraction = 0.28;
        p.sharedElementProb = 0.32;
        p.spatialFraction = 0.12;
        p.hotPerMiss = 3.0;
        p.mlpFactor = 1.3;
        suite.push_back(p);
    }

    return suite;
}

std::string
WorkloadParams::cacheKey(std::uint64_t seed,
                         std::uint64_t limit) const
{
    // Every generation-relevant field, '|'-separated, doubles in
    // hexfloat (exact round-trip -- a calibration tweak of any knob
    // must produce a different key).  `name` goes last because it
    // is the only free-form field; nothing is parsed back out.
    std::ostringstream key;
    key << std::hexfloat;
    key << "wl|v1"
        << "|seed=" << seed
        << "|limit=" << limit
        << "|streams=" << numStreams
        << "|shortLen=" << shortLenMean
        << "|longLen=" << longLenMean
        << "|longFrac=" << longFraction
        << "|theta=" << zipfTheta
        << "|sharedPrefix=" << sharedPrefixProb
        << "|sharedPair=" << sharedPairProb
        << "|sharedElem=" << sharedElementProb
        << "|pool=" << sharedPoolLines
        << "|mutate=" << mutateProb
        << "|truncate=" << truncateProb
        << "|coldRun=" << coldRunProb
        << "|coldLen=" << coldRunLen
        << "|noise=" << noiseRate
        << "|noiseWin=" << noiseWindow
        << "|interleave=" << interleaveProb
        << "|spatial=" << spatialFraction
        << "|newPage=" << spatialNewPageProb
        << "|pcs=" << numPcs
        << "|pcsPerStream=" << pcsPerStream
        << "|pcStability=" << pcStability
        << "|hotLines=" << hotLines
        << "|hotPerMiss=" << hotPerMiss
        << "|instPerAccess=" << instPerAccess
        << "|mlp=" << mlpFactor
        << "|defaultAccesses=" << defaultAccesses
        << "|salt=" << seedSalt
        << "|name=" << name;
    return key.str();
}

bool
findWorkload(const std::string &name, WorkloadParams &out)
{
    for (const auto &p : serverSuite()) {
        if (p.name == name) {
            out = p;
            return true;
        }
    }
    return false;
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const auto &p : serverSuite())
        names.push_back(p.name);
    return names;
}

} // namespace domino
