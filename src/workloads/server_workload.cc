#include "server_workload.h"

#include <algorithm>

namespace domino
{

namespace
{

/** Region offset for runtime cold-miss allocation (see header). */
constexpr std::uint64_t coldRegionOffset = 0x20'0000'0000ULL;

} // anonymous namespace

ServerWorkload::ServerWorkload(const WorkloadParams &params,
                               std::uint64_t seed_in,
                               std::uint64_t limit_in)
    : p(params),
      seed(seed_in),
      limit(limit_in ? limit_in : params.defaultAccesses),
      lib(std::make_shared<StreamLibrary>(params, seed_in)),
      zipf(std::make_unique<ZipfSampler>(lib->size(), params.zipfTheta)),
      coldAlloc(std::make_unique<AddressAllocator>(
          mix64(seed_in ^ params.seedSalt ^ 0xc01d), coldRegionOffset)),
      rng(mix64(seed_in ^ params.seedSalt ^ 0x9e4))
{}

void
ServerWorkload::reset()
{
    queue.clear();
    emitted = 0;
    rng = Prng(mix64(seed ^ p.seedSalt ^ 0x9e4));
    coldAlloc = std::make_unique<AddressAllocator>(
        mix64(seed ^ p.seedSalt ^ 0xc01d), coldRegionOffset);
}

bool
ServerWorkload::next(Access &out)
{
    if (emitted >= limit)
        return false;
    while (queue.empty())
        refill();
    out = queue.front();
    queue.pop_front();
    ++emitted;
    return true;
}

void
ServerWorkload::pushHotBurst()
{
    // Mean p.hotPerMiss hot accesses per miss; these hit in the
    // 64 KB L1-D and never reach the prefetchers.
    const double prob = 1.0 / (1.0 + std::max(p.hotPerMiss, 0.0));
    const std::uint64_t n = rng.geometric(prob);
    for (std::uint64_t i = 0; i < n; ++i) {
        Access a;
        const LineAddr line = hotBase + rng.below(p.hotLines);
        a.addr = byteOf(line) + 8 * rng.below(8);
        a.pc = 0x10'0000 + 4 * rng.below(256);
        a.isWrite = rng.chance(0.2);
        queue.push_back(a);
    }
}

void
ServerWorkload::pushMiss(LineAddr line, Addr pc)
{
    pushHotBurst();
    Access a;
    a.addr = byteOf(line);
    a.pc = pc;
    a.isWrite = rng.chance(0.1);
    queue.push_back(a);

    // Remember the line for noise revisits.
    if (recentMisses.size() < p.noiseWindow) {
        recentMisses.push_back(line);
    } else if (!recentMisses.empty()) {
        recentMisses[recentCursor] = line;
        recentCursor = (recentCursor + 1) % recentMisses.size();
    }
}

void
ServerWorkload::pushNoise()
{
    if (recentMisses.empty())
        return;
    pushMiss(recentMisses[rng.below(recentMisses.size())],
             lib->randomPc(rng));
}

ServerWorkload::Replay
ServerWorkload::materializeTemporal(const StreamDef &def)
{
    Replay replay;
    std::size_t len = def.lines.size();
    if (len > 1 && rng.chance(p.truncateProb))
        len = 1 + rng.below(len);
    replay.reserve(len);
    for (std::size_t k = 0; k < len; ++k) {
        LineAddr line = def.lines[k];
        if (rng.chance(p.mutateProb))
            line = coldAlloc->freshLine();
        const Addr pc = rng.chance(p.pcStability)
            ? def.pcs[k] : lib->randomPc(rng);
        replay.emplace_back(line, pc);
    }
    return replay;
}

ServerWorkload::Replay
ServerWorkload::materializeSpatial(const StreamDef &def)
{
    Replay replay;
    replay.reserve(def.offsets.size());
    const LineAddr base = rng.chance(p.spatialNewPageProb)
        ? coldAlloc->freshPageBase() : def.homePage;
    for (std::size_t k = 0; k < def.offsets.size(); ++k) {
        const Addr pc = rng.chance(p.pcStability)
            ? def.pcs[k] : lib->randomPc(rng);
        replay.emplace_back(base + def.offsets[k], pc);
    }
    return replay;
}

ServerWorkload::Replay
ServerWorkload::materialize(const StreamDef &def)
{
    return def.spatial ? materializeSpatial(def)
                       : materializeTemporal(def);
}

void
ServerWorkload::emitReplay(const Replay &replay)
{
    // A third of the noise volume lands inside runs (breaking some
    // recorded pairs), the rest between runs (isolated touches).
    const double inside = p.noiseRate * 0.3;
    for (const auto &[line, pc] : replay) {
        if (rng.chance(inside))
            pushNoise();
        pushMiss(line, pc);
    }
    const double between_mean =
        p.noiseRate * 0.7 * static_cast<double>(replay.size());
    if (between_mean > 0) {
        const std::uint64_t n =
            rng.geometric(1.0 / (1.0 + between_mean));
        for (std::uint64_t i = 0; i < n; ++i)
            pushNoise();
    }
}

void
ServerWorkload::refill()
{
    const double u = rng.uniform();
    if (u < p.coldRunProb) {
        // A run of brand-new addresses: unpredictable by any
        // history-based prefetcher.
        const std::uint64_t n =
            1 + rng.geometric(1.0 / std::max(p.coldRunLen, 1.0));
        for (std::uint64_t i = 0; i < n; ++i)
            pushMiss(coldAlloc->freshLine(), lib->randomPc(rng));
        return;
    }
    Replay a = materialize(lib->stream(zipf->draw(rng)));
    if (rng.chance(p.interleaveProb)) {
        // Several contexts miss concurrently: fine-grain merge two
        // or three streams, preserving each stream's internal order
        // (see WorkloadParams::interleaveProb).  Merged recordings
        // are what fragment the history for single-address lookups.
        const unsigned extra =
            1 + static_cast<unsigned>(rng.below(2));
        std::vector<Replay> parts;
        parts.push_back(std::move(a));
        for (unsigned k = 0; k < extra; ++k)
            parts.push_back(materialize(lib->stream(zipf->draw(rng))));

        Replay merged;
        std::size_t total = 0;
        std::vector<std::size_t> pos(parts.size(), 0);
        for (const auto &part : parts)
            total += part.size();
        merged.reserve(total);
        while (merged.size() < total) {
            // Pick a part with probability proportional to its
            // remaining length (uniform random interleaving).
            std::size_t remaining = 0;
            for (std::size_t j = 0; j < parts.size(); ++j)
                remaining += parts[j].size() - pos[j];
            std::size_t pick = rng.below(remaining);
            for (std::size_t j = 0; j < parts.size(); ++j) {
                const std::size_t rem = parts[j].size() - pos[j];
                if (pick < rem) {
                    merged.push_back(parts[j][pos[j]++]);
                    break;
                }
                pick -= rem;
            }
        }
        a = std::move(merged);
    }
    emitReplay(a);
}

TraceBuffer
generateTrace(const WorkloadParams &params, std::uint64_t seed,
              std::uint64_t limit)
{
    ServerWorkload gen(params, seed, limit);
    TraceBuffer trace;
    Access a;
    while (gen.next(a))
        trace.push(a);
    trace.reset();
    return trace;
}

} // namespace domino
