/**
 * @file
 * The library of temporal and spatial streams a synthetic workload
 * replays.
 */

#ifndef DOMINO_WORKLOADS_STREAM_LIBRARY_H
#define DOMINO_WORKLOADS_STREAM_LIBRARY_H

// conventions: allow-file(audit-coverage) -- immutable after its seeded construction; the determinism tests
// replay library construction bit-for-bit

#include <cstdint>
#include <vector>

#include "common/prng.h"
#include "common/types.h"
#include "workloads/workload_params.h"

namespace domino
{

/**
 * One stream definition.
 *
 * A temporal stream is a fixed sequence of cache-line addresses
 * scattered across pages (no spatial pattern), each with an
 * associated load PC.  A spatial stream is an in-page delta pattern
 * that replays on recurring or fresh pages.
 */
struct StreamDef
{
    /** True for an in-page delta-pattern (spatial) stream. */
    bool spatial = false;

    /** Temporal: the cache-line sequence (empty when spatial). */
    std::vector<LineAddr> lines;

    /** Load PC for each element (same length as the sequence). */
    std::vector<Addr> pcs;

    /** Spatial: block offsets within the page, first to last. */
    std::vector<std::uint32_t> offsets;

    /** Spatial: the recurring "home" page (line-address base). */
    std::uint64_t homePage = 0;

    /** Length of one full replay in misses. */
    std::size_t length() const
    {
        return spatial ? offsets.size() : lines.size();
    }
};

/**
 * Allocates fresh, never-before-used cache-line addresses.
 *
 * Consecutive allocations jump pseudo-randomly across pages so that
 * temporal streams carry no incidental spatial pattern for VLDP to
 * exploit.  Distinct regions are used for temporal lines, spatial
 * pages, and the hot set, so they can never collide.
 */
class AddressAllocator
{
  public:
    /**
     * @param seed PRNG seed for the jump sizes.
     * @param region_offset added to both region bases; pass a
     *        distinct offset per allocator so independent allocators
     *        (library vs. runtime cold misses) never collide.
     */
    explicit AddressAllocator(std::uint64_t seed,
                              std::uint64_t region_offset = 0);

    /** A fresh line for temporal streams / cold misses. */
    LineAddr freshLine();

    /** A fresh page base (as a line address) for spatial replays. */
    LineAddr freshPageBase();

    /** Number of lines handed out so far. */
    std::uint64_t linesAllocated() const { return lineCount; }

  private:
    Prng rng;
    std::uint64_t cursor;
    std::uint64_t pageCursor;
    std::uint64_t lineCount = 0;

    /** Line-address base of the temporal region (16 GB in). */
    static constexpr std::uint64_t temporalBase = 0x1000'0000ULL;
    /** Line-address base of the spatial region (1 TB in). */
    static constexpr std::uint64_t spatialBase = 0x4'0000'0000ULL;
};

/**
 * The full stream library of one workload, built deterministically
 * from (params, seed).
 */
class StreamLibrary
{
  public:
    StreamLibrary(const WorkloadParams &params, std::uint64_t seed);

    std::size_t size() const { return streams.size(); }
    const StreamDef &stream(std::size_t i) const { return streams[i]; }

    /** The allocator, positioned after all library addresses. */
    AddressAllocator &allocator() { return alloc; }

    /** Draw a PC uniformly from the workload's static PC pool. */
    Addr
    randomPc(Prng &rng) const
    {
        return pcPoolBase + 4 * rng.below(pcPoolSize);
    }

    /** Mean stream length over the library. */
    double meanLength() const;

  private:
    std::vector<StreamDef> streams;
    AddressAllocator alloc;
    Addr pcPoolBase;
    std::uint32_t pcPoolSize;
};

} // namespace domino

#endif // DOMINO_WORKLOADS_STREAM_LIBRARY_H
