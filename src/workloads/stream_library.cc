#include "stream_library.h"

#include <algorithm>

namespace domino
{

AddressAllocator::AddressAllocator(std::uint64_t seed,
                                   std::uint64_t region_offset)
    : rng(mix64(seed ^ 0xa110c)),
      cursor(temporalBase + region_offset),
      pageCursor(spatialBase + region_offset)
{}

LineAddr
AddressAllocator::freshLine()
{
    // Jump 64..1087 lines (i.e. at least one page) between
    // consecutive allocations so temporal sequences have no in-page
    // delta regularity.
    cursor += blocksPerPage + rng.below(16 * blocksPerPage);
    ++lineCount;
    return cursor;
}

LineAddr
AddressAllocator::freshPageBase()
{
    pageCursor += blocksPerPage * (1 + rng.below(7));
    return pageCursor & ~(blocksPerPage - 1);
}

StreamLibrary::StreamLibrary(const WorkloadParams &params,
                             std::uint64_t seed)
    : alloc(mix64(seed ^ params.seedSalt)),
      pcPoolBase(0x40'0000),
      pcPoolSize(params.numPcs)
{
    Prng rng(mix64(seed ^ params.seedSalt ^ 0x5eed));
    streams.reserve(params.numStreams);

    // Pool of lines shared across streams (see
    // WorkloadParams::sharedElementProb).
    const std::uint32_t pool_size = params.sharedPoolLines
        ? params.sharedPoolLines
        : std::max<std::uint32_t>(1024, params.numStreams);
    std::vector<LineAddr> shared_pool(pool_size);
    for (auto &line : shared_pool)
        line = alloc.freshLine();

    // A small family of recurring in-page delta patterns shared by
    // the spatial streams; VLDP learns these and can then prefetch
    // them on pages it has never seen.
    const std::vector<std::vector<std::uint32_t>> delta_patterns = {
        {1, 1, 1, 1, 1, 1, 1},
        {2, 2, 2, 2, 2, 2},
        {1, 2, 1, 2, 1, 2, 1, 2},
        {3, 3, 3, 3, 3},
        {1, 1, 2, 1, 1, 2, 1, 1, 2},
        {4, 4, 4, 4},
    };

    for (std::uint32_t i = 0; i < params.numStreams; ++i) {
        StreamDef def;
        def.spatial = rng.chance(params.spatialFraction);

        // Draw the length from the short/long mixture; minimum 1.
        const double mean = rng.chance(params.longFraction)
            ? params.longLenMean : params.shortLenMean;
        const double p = 1.0 / std::max(mean, 1.0);
        std::size_t len = 1 + rng.geometric(std::min(p, 1.0));
        len = std::min<std::size_t>(len, 512);

        if (def.spatial) {
            const auto &pattern =
                delta_patterns[rng.below(delta_patterns.size())];
            std::uint32_t off =
                static_cast<std::uint32_t>(rng.below(8));
            def.offsets.push_back(off);
            for (std::size_t k = 1; k < std::max<std::size_t>(len, 3);
                 ++k) {
                off += pattern[(k - 1) % pattern.size()];
                if (off >= blocksPerPage)
                    break;
                def.offsets.push_back(off);
            }
            def.homePage = alloc.freshPageBase();
            def.pcs.resize(def.offsets.size());
        } else {
            def.lines.resize(len);
            for (auto &line : def.lines) {
                line = rng.chance(params.sharedElementProb)
                    ? shared_pool[rng.below(shared_pool.size())]
                    : alloc.freshLine();
            }
            def.pcs.resize(len);

            // Prefix sharing: copy the first one or two addresses
            // from an earlier temporal stream so that a lookup with
            // one (or two) previous misses is ambiguous.
            if (!streams.empty() && len >= 2 &&
                rng.chance(params.sharedPrefixProb)) {
                // Find a temporal donor (bounded scan).
                for (int attempt = 0; attempt < 8; ++attempt) {
                    const auto &donor =
                        streams[rng.below(streams.size())];
                    if (donor.spatial || donor.lines.empty())
                        continue;
                    def.lines[0] = donor.lines[0];
                    if (donor.lines.size() >= 2 && len >= 3 &&
                        rng.chance(params.sharedPairProb /
                                   std::max(params.sharedPrefixProb,
                                            1e-9))) {
                        def.lines[1] = donor.lines[1];
                    }
                    break;
                }
            }
        }

        // Assign PCs with the loop-body model: the stream cycles
        // through a small per-stream set of load PCs drawn from the
        // shared static pool.  The same PC appears in many different
        // streams, which de-localises per-PC miss sequences (the
        // effect that hurts ISB in the paper).
        std::vector<Addr> loop_pcs(std::max(params.pcsPerStream, 1u));
        for (auto &pc : loop_pcs)
            pc = randomPc(rng);
        for (std::size_t k = 0; k < def.pcs.size(); ++k)
            def.pcs[k] = loop_pcs[k % loop_pcs.size()];

        streams.push_back(std::move(def));
    }
}

double
StreamLibrary::meanLength() const
{
    if (streams.empty())
        return 0.0;
    std::uint64_t total = 0;
    for (const auto &s : streams)
        total += s.length();
    return static_cast<double>(total) /
        static_cast<double>(streams.size());
}

} // namespace domino
