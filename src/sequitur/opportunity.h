/**
 * @file
 * Sequitur-based temporal-prefetching opportunity analysis
 * (Figures 1, 2 and 12 of the paper).
 *
 * Following the paper's methodology (and the prior temporal
 * streaming work it cites), the miss sequence is compressed with
 * Sequitur; a miss is *covered* (predictable from history) when it
 * falls inside a repetition of a grammar rule -- i.e. any rule
 * occurrence after the walk has already seen that rule once.  Each
 * such repeated occurrence is an oracle *temporal stream*, whose
 * length is the rule's expanded length.
 */

#ifndef DOMINO_SEQUITUR_OPPORTUNITY_H
#define DOMINO_SEQUITUR_OPPORTUNITY_H

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace domino
{

/** Result of the opportunity analysis over one miss sequence. */
struct OpportunityResult
{
    /** Total misses analysed. */
    std::uint64_t totalMisses = 0;
    /** Misses inside repeated rule expansions. */
    std::uint64_t coveredMisses = 0;
    /** Number of oracle streams (repeated rule occurrences). */
    std::uint64_t streamCount = 0;
    /** Stream-length histogram with Figure 12's bucket edges
     *  {0, 2, 4, 8, 16, 32, 64, 128, 128+}. */
    EdgeHistogram streamLengths{
        std::vector<std::uint64_t>{0, 2, 4, 8, 16, 32, 64, 128}};

    /** Opportunity: fraction of misses that are covered. */
    double
    coverage() const
    {
        return totalMisses ? static_cast<double>(coveredMisses) /
            static_cast<double>(totalMisses) : 0.0;
    }

    /** Mean oracle stream length (paper: 7.6 on average). */
    double
    meanStreamLength() const
    {
        return streamCount ? static_cast<double>(coveredMisses) /
            static_cast<double>(streamCount) : 0.0;
    }
};

/**
 * Run Sequitur over @p misses and compute the opportunity.
 */
OpportunityResult analyzeOpportunity(
    const std::vector<LineAddr> &misses);

/** One recurring stream surfaced by the grammar. */
struct RecurringStream
{
    /** Expanded length in misses. */
    std::uint64_t length = 0;
    /** Number of occurrences in the sequence. */
    std::uint32_t occurrences = 0;
    /** First few miss addresses of the stream. */
    std::vector<LineAddr> prefix;

    /** Misses this stream accounts for in total. */
    std::uint64_t
    volume() const
    {
        return length * occurrences;
    }
};

/**
 * The top-k recurring streams of a miss sequence by covered volume
 * (occurrences x length) -- the workload's "hot temporal streams".
 */
std::vector<RecurringStream> topStreams(
    const std::vector<LineAddr> &misses, std::size_t k);

} // namespace domino

#endif // DOMINO_SEQUITUR_OPPORTUNITY_H
