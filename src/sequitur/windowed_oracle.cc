#include "windowed_oracle.h"

#include <unordered_set>

#include "common/check.h"

namespace domino
{

namespace
{

/**
 * Composable polynomial hash over expanded terminal sequences:
 * digest(A || B) = digest(A) * base^len(B) + digest(B) (mod 2^64),
 * so a rule's digest folds from its sub-rules' (digest, length)
 * pairs without ever expanding the terminals.  Content-based by
 * construction -- identical expansions get identical digests no
 * matter how differently two windows' grammars parsed them.
 */
constexpr std::uint64_t digestBase = 0x100000001b3ULL;

/** splitmix64 finaliser: spreads terminal values so nearby line
 *  addresses do not collide under the polynomial fold. */
std::uint64_t
mixTerm(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** base^e mod 2^64 by square-and-multiply. */
std::uint64_t
powBase(std::uint64_t e)
{
    std::uint64_t result = 1;
    std::uint64_t b = digestBase;
    while (e) {
        if (e & 1)
            result *= b;
        b *= b;
        e >>= 1;
    }
    return result;
}

/**
 * Content digests of every live rule of @p grammar, memoised.
 * Iterative dependency resolution (a rule's digest needs its
 * sub-rules' digests first) so deep grammars cannot overflow the
 * call stack.
 */
class RuleDigests
{
  public:
    explicit RuleDigests(const SequiturGrammar &g) : grammar(g) {}

    std::uint64_t
    digestOf(int rule_id)
    {
        const auto hit = memo.find(rule_id);
        if (hit != memo.end())
            return hit->second;

        std::vector<int> stack{rule_id};
        while (!stack.empty()) {
            const int id = stack.back();
            if (memo.count(id)) {
                stack.pop_back();
                continue;
            }
            bool ready = true;
            const std::vector<SequiturGrammar::Sym> body =
                grammar.ruleBody(id);
            for (const SequiturGrammar::Sym &sym : body) {
                if (sym.isRule && !memo.count(sym.ruleId)) {
                    stack.push_back(sym.ruleId);
                    ready = false;
                }
            }
            if (!ready)
                continue;
            std::uint64_t h = 0;
            for (const SequiturGrammar::Sym &sym : body) {
                if (sym.isRule) {
                    h *= powBase(
                        grammar.expandedLength(sym.ruleId));
                    h += memo[sym.ruleId];
                } else {
                    h = h * digestBase + mixTerm(sym.term);
                }
            }
            memo.emplace(id, h);
            stack.pop_back();
        }
        return memo[rule_id];
    }

  private:
    const SequiturGrammar &grammar;
    std::unordered_map<int, std::uint64_t> memo;
};

} // anonymous namespace

WindowedOpportunityAnalyzer::WindowedOpportunityAnalyzer(
    OracleWindowOptions options)
    : opt(options)
{
    grammar.emplace();
}

void
WindowedOpportunityAnalyzer::push(LineAddr miss)
{
    CHECK(!finished);
    grammar->push(miss);
    ++windowFill;
    ++fed;
    ++acc.totalMisses;
    if (opt.window != 0 && windowFill >= opt.window)
        closeWindow();
}

OpportunityResult
WindowedOpportunityAnalyzer::finish()
{
    CHECK(!finished);
    closeWindow();
    finished = true;
    return acc;
}

void
WindowedOpportunityAnalyzer::closeWindow()
{
    if (windowFill == 0)
        return;

    // The whole-trace opportunity walk (opportunity.cc), extended
    // with one check: a rule first seen in *this* window whose
    // content digest is already in the cross-window LRU repeats
    // from an earlier window, so it is covered without descending.
    // With window = 0 the LRU is empty here and the walk reduces to
    // analyzeOpportunity() exactly.
    RuleDigests digests(*grammar);
    std::unordered_set<int> seen;

    // Fast path: the entire window's content repeats verbatim from
    // an earlier window (rule 0's digest is the window's digest).
    // Without it a window of internally-distinct misses builds no
    // rules, so even an exact window-for-window repeat would have
    // nothing to match the LRU against.
    if (digestKnown(digests.digestOf(0), windowFill)) {
        acc.coveredMisses += windowFill;
        ++acc.streamCount;
        acc.streamLengths.add(windowFill);
        rememberDigest(digests.digestOf(0), windowFill);
        grammar.emplace();
        windowFill = 0;
        return;
    }

    struct Frame
    {
        std::vector<SequiturGrammar::Sym> body;
        std::size_t idx;
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{grammar->ruleBody(0), 0});

    while (!stack.empty()) {
        Frame &top = stack.back();
        if (top.idx >= top.body.size()) {
            stack.pop_back();
            continue;
        }
        const SequiturGrammar::Sym sym = top.body[top.idx++];
        if (!sym.isRule)
            continue;  // bare terminal: not covered
        const std::uint64_t len =
            grammar->expandedLength(sym.ruleId);
        if (!seen.insert(sym.ruleId).second ||
            digestKnown(digests.digestOf(sym.ruleId), len)) {
            acc.coveredMisses += len;
            ++acc.streamCount;
            acc.streamLengths.add(len);
        } else {
            // Genuinely new content: descend (its sub-rules may
            // still repeat, within the window or from history).
            stack.push_back(
                Frame{grammar->ruleBody(sym.ruleId), 0});
        }
    }

    // Publish this window's streams for later windows.  Rule 0 --
    // the window's full content -- is published too, so that the
    // fast path above can recall exact window-for-window repeats;
    // it is published last so it is the most-recent entry.
    for (const int id : grammar->liveRuleIds()) {
        if (id == 0)
            continue;
        rememberDigest(digests.digestOf(id),
                       grammar->expandedLength(id));
    }
    rememberDigest(digests.digestOf(0), windowFill);

    grammar.emplace();  // fresh grammar: memory stays O(window)
    windowFill = 0;
}

bool
WindowedOpportunityAnalyzer::digestKnown(std::uint64_t digest,
                                         std::uint64_t length)
{
    const auto it = lruIndex.find(digest);
    // The length check demotes a digest collision between
    // different-length streams to a miss instead of a miscount.
    if (it == lruIndex.end() || it->second->second != length)
        return false;
    lruList.splice(lruList.begin(), lruList, it->second);
    return true;
}

void
WindowedOpportunityAnalyzer::rememberDigest(std::uint64_t digest,
                                            std::uint64_t length)
{
    const auto it = lruIndex.find(digest);
    if (it != lruIndex.end()) {
        it->second->second = length;
        lruList.splice(lruList.begin(), lruList, it->second);
        return;
    }
    lruList.emplace_front(digest, length);
    lruIndex.emplace(digest, lruList.begin());
    if (lruList.size() > opt.digestCapacity) {
        lruIndex.erase(lruList.back().first);
        lruList.pop_back();
    }
}

std::string
WindowedOpportunityAnalyzer::audit() const
{
    if (opt.window != 0 && windowFill >= opt.window)
        return "open window holds " + std::to_string(windowFill) +
            " misses, at or past the window of " +
            std::to_string(opt.window);
    if (grammar && grammar->inputLength() != windowFill)
        return "open grammar fed " +
            std::to_string(grammar->inputLength()) +
            " terminals but the window holds " +
            std::to_string(windowFill);
    if (lruList.size() != lruIndex.size())
        return "digest LRU index and recency list disagree (" +
            std::to_string(lruIndex.size()) + " vs " +
            std::to_string(lruList.size()) + ")";
    if (lruList.size() > opt.digestCapacity)
        return "digest LRU exceeds its capacity";
    if (acc.coveredMisses > acc.totalMisses)
        return "covered misses exceed total misses";
    if (acc.streamLengths.totalCount() != acc.streamCount)
        return "stream histogram total disagrees with the stream "
            "count";
    if (acc.totalMisses < fed - windowFill)
        return "accumulated total lost closed-window misses";
    return "";
}

OpportunityResult
analyzeOpportunityWindowed(const std::vector<LineAddr> &misses,
                           const OracleWindowOptions &options)
{
    WindowedOpportunityAnalyzer analyzer(options);
    for (const LineAddr m : misses)
        analyzer.push(m);
    return analyzer.finish();
}

} // namespace domino
