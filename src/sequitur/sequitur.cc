#include "sequitur.h"

#include "common/types.h"

// conventions: allow-file(raw-new) -- the classical linear-time
// Sequitur implementation is an intrusive doubly-linked symbol list
// whose nodes change owner as rules form and dissolve; individual
// new/delete with the destructor walking live rules is the clearest
// correct formulation (see checkInvariants for the machine-checked
// structure).

namespace domino
{

SequiturGrammar::SequiturGrammar()
{
    newRule();  // rule 0: the start rule
}

SequiturGrammar::~SequiturGrammar()
{
    for (Rule *r : rules) {
        if (!r->dead) {
            Symbol *s = r->guard->next;
            while (s != r->guard) {
                Symbol *n = s->next;
                delete s;
                s = n;
            }
            delete r->guard;
        }
        delete r;
    }
}

SequiturGrammar::Rule *
SequiturGrammar::newRule()
{
    Rule *r = new Rule;
    r->id = static_cast<int>(rules.size());
    Symbol *g = new Symbol;
    g->guard = true;
    g->rule = r;
    g->next = g;
    g->prev = g;
    r->guard = g;
    rules.push_back(r);
    return r;
}

SequiturGrammar::Symbol *
SequiturGrammar::newTerminal(std::uint64_t term)
{
    Symbol *s = new Symbol;
    s->term = term;
    return s;
}

SequiturGrammar::Symbol *
SequiturGrammar::newNonterminal(Rule *r)
{
    Symbol *s = new Symbol;
    s->rule = r;
    ++r->count;
    return s;
}

std::uint64_t
SequiturGrammar::codeOf(const Symbol *s) const
{
    // Terminals and rule ids live in disjoint code spaces.
    return s->rule ? (static_cast<std::uint64_t>(s->rule->id) << 1) | 1
                   : (s->term << 1);
}

std::uint64_t
SequiturGrammar::digramKey(const Symbol *a) const
{
    return pairKey(codeOf(a), codeOf(a->next));
}

void
SequiturGrammar::removeDigram(Symbol *a)
{
    if (a->guard || !a->next || a->next->guard)
        return;
    const auto it = digrams.find(digramKey(a));
    if (it != digrams.end() && it->second == a)
        digrams.erase(it);
}

void
SequiturGrammar::join(Symbol *left, Symbol *right)
{
    // Linking changes the digram starting at `left`, so drop its
    // index entry first.
    if (left->next)
        removeDigram(left);
    left->next = right;
    right->prev = left;
}

void
SequiturGrammar::insertAfter(Symbol *pos, Symbol *sym)
{
    join(sym, pos->next);
    join(pos, sym);
}

void
SequiturGrammar::deleteSymbol(Symbol *sym)
{
    join(sym->prev, sym->next);
    if (!sym->guard) {
        removeDigram(sym);
        if (sym->rule)
            --sym->rule->count;
    }
    delete sym;
}

bool
SequiturGrammar::check(Symbol *a)
{
    if (a->guard || a->next->guard)
        return false;
    const std::uint64_t key = digramKey(a);
    const auto it = digrams.find(key);
    if (it == digrams.end()) {
        digrams.emplace(key, a);
        return false;
    }
    Symbol *m = it->second;
    if (m == a)
        return true;
    // Overlapping occurrence (e.g. "aaa"): leave it alone.
    if (m->next != a)
        match(a, m);
    return true;
}

void
SequiturGrammar::match(Symbol *newer, Symbol *older)
{
    Rule *r;
    if (older->prev->guard && older->next->next->guard) {
        // The older occurrence is exactly the body of a rule:
        // reuse it.
        r = older->prev->rule;
        substitute(newer, r);
    } else {
        // Create a new rule from the digram and substitute both
        // occurrences.
        r = newRule();
        Symbol *c1 = newer->rule ? newNonterminal(newer->rule)
                                 : newTerminal(newer->term);
        insertAfter(r->guard->prev, c1);
        Symbol *c2 = newer->next->rule
            ? newNonterminal(newer->next->rule)
            : newTerminal(newer->next->term);
        insertAfter(r->guard->prev, c2);
        substitute(older, r);
        // The cascaded checks inside substitute() can themselves
        // trigger matches that expand rule r (its reference count
        // can transiently drop to one); r may be dead afterwards.
        if (r->dead)
            return;
        substitute(newer, r);
        if (r->dead)
            return;
        digrams[digramKey(r->guard->next)] = r->guard->next;
    }
    if (r->dead)
        return;

    // Rule utility: a rule referenced once is expanded in place.
    // After the substitutions above, any rule whose count dropped to
    // one has its sole remaining reference inside r's body.
    Symbol *first = r->guard->next;
    if (first->rule && !first->guard && first->rule->count == 1)
        expand(first);
    // Re-read after the possible expansion above.
    Symbol *last = r->guard->prev;
    if (last->rule && !last->guard && last->rule->count == 1)
        expand(last);
}

void
SequiturGrammar::substitute(Symbol *first, Rule *r)
{
    Symbol *q = first->prev;
    deleteSymbol(q->next);
    deleteSymbol(q->next);
    insertAfter(q, newNonterminal(r));
    if (!check(q))
        check(q->next);
}

void
SequiturGrammar::expand(Symbol *nonterminal)
{
    Rule *r = nonterminal->rule;
    Symbol *left = nonterminal->prev;
    Symbol *right = nonterminal->next;
    Symbol *f = r->guard->next;
    Symbol *l = r->guard->prev;

    // Unregister digrams involving the nonterminal, then unlink it
    // without the usual destructor bookkeeping (the rule is dying).
    removeDigram(nonterminal);
    if (left->next)
        removeDigram(left);
    delete nonterminal;

    // Splice the rule body into place.
    left->next = f;
    f->prev = left;
    l->next = right;
    right->prev = l;

    // Register the digrams formed at the splice seams (last-writer
    // wins, as in the classical algorithm).  When expanding a
    // rule's first symbol the left seam borders the guard and only
    // the right seam exists; expanding the last symbol mirrors it.
    if (!left->guard && !f->guard)
        digrams[digramKey(left)] = left;
    if (!l->guard && !right->guard)
        digrams[digramKey(l)] = l;

    delete r->guard;
    r->guard = nullptr;
    r->dead = true;
    r->count = 0;
    lengthCache.clear();
}

void
SequiturGrammar::push(std::uint64_t terminal)
{
    Rule *start = rules[0];
    Symbol *sym = newTerminal(terminal);
    insertAfter(start->guard->prev, sym);
    ++fed;
    if (sym->prev != start->guard)
        check(sym->prev);
    lengthCache.clear();
}

std::vector<int>
SequiturGrammar::liveRuleIds() const
{
    std::vector<int> ids;
    for (const Rule *r : rules)
        if (!r->dead)
            ids.push_back(r->id);
    return ids;
}

std::uint32_t
SequiturGrammar::ruleUses(int rule_id) const
{
    return rules[static_cast<std::size_t>(rule_id)]->count;
}

std::vector<SequiturGrammar::Sym>
SequiturGrammar::ruleBody(int rule_id) const
{
    std::vector<Sym> body;
    const Rule *r = rules[static_cast<std::size_t>(rule_id)];
    if (r->dead)
        return body;
    for (const Symbol *s = r->guard->next; s != r->guard;
         s = s->next) {
        Sym sym;
        if (s->rule) {
            sym.isRule = true;
            sym.ruleId = s->rule->id;
        } else {
            sym.term = s->term;
        }
        body.push_back(sym);
    }
    return body;
}

std::uint64_t
SequiturGrammar::expandedLength(int rule_id) const
{
    const auto cached = lengthCache.find(rule_id);
    if (cached != lengthCache.end())
        return cached->second;
    std::uint64_t len = 0;
    for (const Sym &s : ruleBody(rule_id))
        len += s.isRule ? expandedLength(s.ruleId) : 1;
    lengthCache.emplace(rule_id, len);
    return len;
}

std::vector<std::uint64_t>
SequiturGrammar::reconstruct() const
{
    std::vector<std::uint64_t> out;
    out.reserve(fed);
    // Iterative expansion of rule 0 to avoid deep recursion.
    struct Frame
    {
        std::vector<Sym> body;
        std::size_t idx;
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{ruleBody(0), 0});
    while (!stack.empty()) {
        Frame &top = stack.back();
        if (top.idx >= top.body.size()) {
            stack.pop_back();
            continue;
        }
        const Sym sym = top.body[top.idx++];
        if (sym.isRule)
            stack.push_back(Frame{ruleBody(sym.ruleId), 0});
        else
            out.push_back(sym.term);
    }
    return out;
}

std::string
SequiturGrammar::checkInvariants() const
{
    // Rule utility: every live rule except the start rule must be
    // referenced at least twice, and stored counts must agree with
    // a full walk.
    std::unordered_map<int, std::uint32_t> walked;
    for (const int id : liveRuleIds()) {
        for (const Sym &s : ruleBody(id)) {
            if (s.isRule)
                ++walked[s.ruleId];
        }
        if (ruleBody(id).size() < 2 && id != 0)
            return "rule body shorter than 2: rule " +
                std::to_string(id);
    }
    for (const int id : liveRuleIds()) {
        if (id == 0)
            continue;
        const auto it = walked.find(id);
        const std::uint32_t uses =
            it == walked.end() ? 0 : it->second;
        if (uses != ruleUses(id))
            return "count mismatch for rule " + std::to_string(id);
        if (uses < 2)
            return "under-used rule " + std::to_string(id);
    }

    // Digram uniqueness: no repeated non-overlapping digram.
    // Exception: rule expansion splices a rule body into its
    // context, and the digrams formed at the splice seams are
    // re-registered last-writer-wins (as in the classical
    // implementation); a pre-existing identical digram elsewhere
    // then remains as an unindexed orphan until a third occurrence
    // forms.  Such a benign orphan is recognisable because the live
    // index still holds the key; true corruption (a repeated digram
    // the index has lost entirely) is reported.
    std::unordered_map<std::uint64_t, const Symbol *> seen;
    for (const Rule *r : rules) {
        if (r->dead)
            continue;
        for (const Symbol *s = r->guard->next;
             s != r->guard && s->next != r->guard; s = s->next) {
            const std::uint64_t key = digramKey(s);
            const auto it = seen.find(key);
            if (it != seen.end()) {
                // Overlapping duplicates ("aaa") are permitted.
                if (it->second->next != s &&
                    digrams.find(key) == digrams.end()) {
                    return "duplicate digram lost by the index";
                }
            }
            seen.emplace(key, s);
        }
    }
    return "";
}

} // namespace domino
