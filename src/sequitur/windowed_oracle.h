/**
 * @file
 * Windowed streaming variant of the opportunity oracle.
 *
 * analyzeOpportunity() (opportunity.h) builds one Sequitur grammar
 * over the whole miss sequence, so its memory is O(trace) -- fine
 * for figure-sized traces, a wall at the billion-access regime.
 * This analyzer compresses the sequence in fixed-size windows
 * instead: each window gets its own grammar (destroyed after the
 * window's opportunity walk), so memory is O(window) regardless of
 * the trace length.
 *
 * Windowing alone would lose every repetition that straddles a
 * window boundary.  To recover cross-window recurrence, the walk
 * carries *rule digests* across windows in a bounded LRU: when a
 * window's grammar forms a rule whose expanded terminal sequence
 * hashed to a digest already in the LRU (same content seen in an
 * earlier window), its first occurrence in this window counts as
 * covered too -- the content literally repeats from history, which
 * is exactly the oracle's definition of predictable.  Digests are
 * content-based (a composable polynomial hash of the expanded
 * terminals), so two windows that parse the same subsequence into
 * different rule shapes still match.
 *
 * Determinism: the analysis is a pure function of the miss sequence
 * and the options -- no pointers, clocks, or randomness feed the
 * result -- so windowed results are byte-stable across --jobs and
 * across processes (pinned by tests/test_windowed_oracle.cc).
 *
 * Equivalence: with the default window of 0 (whole trace), exactly
 * one window exists, the LRU is empty when it is walked, and the
 * walk reduces to analyzeOpportunity()'s -- field-for-field equal
 * results, which keeps the default figure-1/2/12 outputs
 * byte-identical to the resident oracle.
 */

#ifndef DOMINO_SEQUITUR_WINDOWED_ORACLE_H
#define DOMINO_SEQUITUR_WINDOWED_ORACLE_H

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sequitur/opportunity.h"
#include "sequitur/sequitur.h"

namespace domino
{

/** Knobs of the windowed oracle (see file comment). */
struct OracleWindowOptions
{
    /** Misses per window; 0 = whole trace (one window, result
     *  field-for-field equal to analyzeOpportunity()). */
    std::uint64_t window = 0;

    /** Bounded cross-window digest memory: rules remembered across
     *  window boundaries (LRU eviction).  The default remembers
     *  about a million distinct streams -- roughly 48 MiB, far
     *  smaller than any window worth compressing. */
    std::size_t digestCapacity = std::size_t{1} << 20;
};

/**
 * The streaming analyzer: push() misses in trace order, then
 * finish() once for the accumulated OpportunityResult.
 */
class WindowedOpportunityAnalyzer
{
  public:
    explicit WindowedOpportunityAnalyzer(
        OracleWindowOptions options = {});

    /** Feed the next miss of the sequence (trace order). */
    void push(LineAddr miss);

    /** Misses fed so far. */
    std::uint64_t pushed() const { return fed; }

    /**
     * Flush the tail window and return the accumulated result.
     * Call exactly once, after the last push().
     */
    OpportunityResult finish();

    /**
     * Verify the analyzer's invariants: the open window never holds
     * more than a window's worth of misses, the digest LRU respects
     * its capacity and its index agrees with its recency list, and
     * the accumulated counters are mutually consistent.
     * @return empty string if OK, else a description.
     */
    std::string audit() const;

  private:
    /** Walk the open window's grammar and fold it into the result;
     *  publish its rule digests; reset for the next window. */
    void closeWindow();

    /** LRU lookup of (digest, expanded length); refreshes recency
     *  on hit. */
    bool digestKnown(std::uint64_t digest, std::uint64_t length);

    /** Insert-or-refresh a digest; evicts the coldest entry past
     *  capacity. */
    void rememberDigest(std::uint64_t digest, std::uint64_t length);

    OracleWindowOptions opt;
    OpportunityResult acc;
    /** Grammar of the open window (rebuilt per window; optional so
     *  the non-movable grammar can be re-emplaced). */
    std::optional<SequiturGrammar> grammar;
    std::uint64_t windowFill = 0;
    std::uint64_t fed = 0;
    bool finished = false;

    /** Cross-window digest memory: recency list of (digest,
     *  expanded length), most recent first, plus an index into it.
     *  Never iterated (ordered-output rule) -- only find/insert/
     *  erase/splice. */
    std::list<std::pair<std::uint64_t, std::uint64_t>> lruList;
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, std::uint64_t>>::iterator>
        lruIndex;
};

/**
 * Convenience: run the windowed analyzer over a resident miss
 * sequence (tests and the figure benches' non-streamed path).
 */
OpportunityResult analyzeOpportunityWindowed(
    const std::vector<LineAddr> &misses,
    const OracleWindowOptions &options);

} // namespace domino

#endif // DOMINO_SEQUITUR_WINDOWED_ORACLE_H
