/**
 * @file
 * Sequitur hierarchical grammar inference
 * [Nevill-Manning & Witten, JAIR 1997].
 *
 * Sequitur reads a sequence of symbols and incrementally builds a
 * context-free grammar that generates exactly that sequence, while
 * maintaining two invariants:
 *
 *  - *digram uniqueness*: no pair of adjacent symbols appears more
 *    than once in the grammar (a repeated digram becomes a rule);
 *  - *rule utility*: every rule is referenced at least twice (a rule
 *    used once is expanded in place).
 *
 * The paper (like prior temporal-streaming work) uses Sequitur on
 * L1-D miss sequences to measure the *opportunity* of temporal
 * prefetching: misses inside a repeated rule expansion are
 * predictable from history.  See opportunity.h for that analysis.
 *
 * The implementation is the classical linear-time pointer-based one
 * with a digram hash index.
 */

#ifndef DOMINO_SEQUITUR_SEQUITUR_H
#define DOMINO_SEQUITUR_SEQUITUR_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace domino
{

/**
 * A Sequitur grammar under incremental construction.
 *
 * Rule 0 is the start rule (the whole sequence).  After feeding the
 * input with push(), the grammar can be traversed via ruleBody() /
 * liveRuleIds().
 */
class SequiturGrammar
{
  public:
    /** One symbol of a rule body, as seen by traversal. */
    struct Sym
    {
        bool isRule = false;
        /** Terminal value (valid when !isRule). */
        std::uint64_t term = 0;
        /** Referenced rule id (valid when isRule). */
        int ruleId = -1;
    };

    SequiturGrammar();
    ~SequiturGrammar();

    SequiturGrammar(const SequiturGrammar &) = delete;
    SequiturGrammar &operator=(const SequiturGrammar &) = delete;

    /** Feed the next terminal of the input sequence. */
    void push(std::uint64_t terminal);

    /** Number of terminals fed so far. */
    std::uint64_t inputLength() const { return fed; }

    /** Ids of all live (non-expanded) rules, including rule 0. */
    std::vector<int> liveRuleIds() const;

    /** Reference count of a live rule (0 for the start rule). */
    std::uint32_t ruleUses(int rule_id) const;

    /** The body of a live rule, in order. */
    std::vector<Sym> ruleBody(int rule_id) const;

    /** Expanded (terminal) length of a live rule, memoised. */
    std::uint64_t expandedLength(int rule_id) const;

    /**
     * Reconstruct the full input by expanding rule 0 (testing:
     * must equal the pushed sequence).
     */
    std::vector<std::uint64_t> reconstruct() const;

    /** Verify the digram-uniqueness and rule-utility invariants.
     *  @return empty string if OK, else a description. */
    std::string checkInvariants() const;

  private:
    struct Rule;

    struct Symbol
    {
        Symbol *next = nullptr;
        Symbol *prev = nullptr;
        /** Terminal value (when rule == nullptr && !guard). */
        std::uint64_t term = 0;
        /** Non-null for nonterminals; for guards, the owner rule. */
        Rule *rule = nullptr;
        bool guard = false;
    };

    struct Rule
    {
        Symbol *guard = nullptr;
        std::uint32_t count = 0;
        int id = 0;
        bool dead = false;
    };

    // --- construction machinery -----------------------------------
    std::uint64_t codeOf(const Symbol *s) const;
    std::uint64_t digramKey(const Symbol *a) const;
    void removeDigram(Symbol *a);
    void join(Symbol *left, Symbol *right);
    void insertAfter(Symbol *pos, Symbol *sym);
    void deleteSymbol(Symbol *sym);
    bool check(Symbol *a);
    void match(Symbol *newer, Symbol *older);
    void substitute(Symbol *first, Rule *r);
    void expand(Symbol *nonterminal);
    Rule *newRule();
    Symbol *newTerminal(std::uint64_t term);
    Symbol *newNonterminal(Rule *r);

    std::vector<Rule *> rules;
    std::unordered_map<std::uint64_t, Symbol *> digrams;
    std::uint64_t fed = 0;
    mutable std::unordered_map<int, std::uint64_t> lengthCache;
};

} // namespace domino

#endif // DOMINO_SEQUITUR_SEQUITUR_H
