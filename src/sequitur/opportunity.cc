#include "opportunity.h"

#include <algorithm>
#include <unordered_set>

#include "sequitur/sequitur.h"

namespace domino
{

OpportunityResult
analyzeOpportunity(const std::vector<LineAddr> &misses)
{
    OpportunityResult result;
    result.totalMisses = misses.size();
    if (misses.empty())
        return result;

    SequiturGrammar grammar;
    for (const LineAddr m : misses)
        grammar.push(m);

    // Walk the start rule.  The first time a rule is encountered we
    // descend into it (its sub-rules may repeat); every later
    // occurrence is a repeated sequence -- an oracle stream covering
    // its whole expansion.
    std::unordered_set<int> seen;

    struct Frame
    {
        std::vector<SequiturGrammar::Sym> body;
        std::size_t idx;
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{grammar.ruleBody(0), 0});

    while (!stack.empty()) {
        Frame &top = stack.back();
        if (top.idx >= top.body.size()) {
            stack.pop_back();
            continue;
        }
        const SequiturGrammar::Sym sym = top.body[top.idx++];
        if (!sym.isRule)
            continue;  // bare terminal: not covered
        if (seen.insert(sym.ruleId).second) {
            // First occurrence: descend.
            stack.push_back(Frame{grammar.ruleBody(sym.ruleId), 0});
        } else {
            const std::uint64_t len =
                grammar.expandedLength(sym.ruleId);
            result.coveredMisses += len;
            ++result.streamCount;
            result.streamLengths.add(len);
        }
    }
    return result;
}

std::vector<RecurringStream>
topStreams(const std::vector<LineAddr> &misses, std::size_t k)
{
    std::vector<RecurringStream> out;
    if (misses.empty() || k == 0)
        return out;

    SequiturGrammar grammar;
    for (const LineAddr m : misses)
        grammar.push(m);

    for (const int id : grammar.liveRuleIds()) {
        if (id == 0)
            continue;
        RecurringStream stream;
        stream.length = grammar.expandedLength(id);
        stream.occurrences = grammar.ruleUses(id);
        // Expand the first few terminals iteratively.
        struct Frame
        {
            std::vector<SequiturGrammar::Sym> body;
            std::size_t idx;
        };
        std::vector<Frame> stack;
        stack.push_back(Frame{grammar.ruleBody(id), 0});
        while (!stack.empty() && stream.prefix.size() < 4) {
            Frame &top = stack.back();
            if (top.idx >= top.body.size()) {
                stack.pop_back();
                continue;
            }
            const SequiturGrammar::Sym sym = top.body[top.idx++];
            if (sym.isRule)
                stack.push_back(Frame{grammar.ruleBody(sym.ruleId), 0});
            else
                stream.prefix.push_back(sym.term);
        }
        out.push_back(std::move(stream));
    }

    std::sort(out.begin(), out.end(),
              [](const RecurringStream &a, const RecurringStream &b) {
                  return a.volume() > b.volume();
              });
    if (out.size() > k)
        out.resize(k);
    return out;
}

} // namespace domino
