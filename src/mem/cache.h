/**
 * @file
 * Set-associative cache model.
 *
 * Tag-only (no data payload) since the simulators only need hit/miss
 * behaviour and evictions.  Used for the 64 KB 2-way L1-D and the
 * 4 MB 16-way LLC of Table I.
 */

#ifndef DOMINO_MEM_CACHE_H
#define DOMINO_MEM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace domino
{

/** Replacement policy for SetAssocCache. */
enum class ReplPolicy
{
    LRU,
    /** Pseudo-random (xorshift over an internal counter). */
    Random,
};

/** Per-cache event counters. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
            static_cast<double>(accesses) : 0.0;
    }
};

/**
 * A tag-only set-associative cache with configurable size,
 * associativity, and replacement policy.
 */
class SetAssocCache
{
  public:
    /**
     * @param size_bytes total capacity in bytes.
     * @param ways associativity (>= 1).
     * @param policy replacement policy.
     */
    SetAssocCache(std::uint64_t size_bytes, std::uint32_t ways,
                  ReplPolicy policy = ReplPolicy::LRU);

    /**
     * Demand access: looks up the line and updates recency on a hit.
     * Does NOT fill on a miss (the caller decides, because a miss
     * may instead be satisfied by the prefetch buffer).
     *
     * @return true on hit.
     */
    bool access(LineAddr line);

    /** Non-destructive lookup (no stats, no recency update). */
    bool contains(LineAddr line) const;

    /**
     * Install a line (after a demand miss or a prefetch-buffer hit).
     *
     * @param line the line to install.
     * @param evicted set to the victim line when one was evicted.
     * @return true if a valid line was evicted.
     */
    bool fill(LineAddr line, LineAddr &evicted);

    /** Install a line, discarding eviction information. */
    void
    fill(LineAddr line)
    {
        LineAddr dummy;
        fill(line, dummy);
    }

    /** Invalidate a line if present. @return true if it was there. */
    bool invalidate(LineAddr line);

    /** Drop all contents (keeps statistics). */
    void clear();

    std::uint32_t numSets() const { return sets; }
    std::uint32_t numWays() const { return assoc; }
    const CacheStats &stats() const { return stat; }

    /**
     * Verify the cache's structural invariants: the set count is a
     * power of two, every valid tag is unique within its set and
     * hashes to it, the valid ways' ages form a dense permutation
     * {0..k-1} (the LRU order is total), and the hit/miss counters
     * sum to the access count.
     * @return empty string if OK, else a description.
     */
    std::string audit() const;

  private:
    /** Test-only backdoor for corrupting ways in audit tests. */
    friend struct CacheTestPeer;

    /** Age marker for an empty way (also bounds assoc <= 254). */
    static constexpr std::uint8_t invalidAge = 0xff;

    std::uint32_t setIndex(LineAddr line) const;
    std::uint32_t victimWay(std::uint32_t set);
    /** Make way @p w of the set at @p base the MRU (age 0). */
    void promote(std::uint64_t base, std::uint32_t w);

    std::uint32_t sets;
    std::uint32_t assoc;
    ReplPolicy repl;
    /**
     * SoA way storage (hot-path layout): tags[set*assoc + w] and a
     * packed per-way age.  A way's age counts the valid ways of its
     * set used more recently than it, so the valid ways' ages are a
     * dense permutation {0..k-1}, the LRU victim is the unique
     * maximum, and recency updates touch one byte per way instead
     * of a 64-bit global timestamp -- same victims as timestamp LRU
     * because the age order *is* the lastUse order.
     */
    std::vector<LineAddr> tags;
    std::vector<std::uint8_t> ages;
    std::uint64_t randState = 0x123456789abcdefULL;
    CacheStats stat;
};

} // namespace domino

#endif // DOMINO_MEM_CACHE_H
