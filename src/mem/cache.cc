#include "cache.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace domino
{

namespace
{

std::uint32_t
floorPow2(std::uint64_t x)
{
    std::uint32_t p = 1;
    while ((std::uint64_t(p) << 1) <= x)
        p <<= 1;
    return p;
}

} // anonymous namespace

SetAssocCache::SetAssocCache(std::uint64_t size_bytes,
                             std::uint32_t ways_in, ReplPolicy policy)
    : assoc(ways_in ? ways_in : 1), repl(policy)
{
    // invalidAge (0xff) marks an empty way, so valid ages need the
    // range {0..assoc-1} to stay below it.
    CHECK_LE(assoc, 254u);
    const std::uint64_t blocks = size_bytes / blockBytes;
    const std::uint64_t want_sets = blocks / assoc;
    sets = want_sets ? floorPow2(want_sets) : 1;
    tags.assign(std::uint64_t(sets) * assoc, invalidAddr);
    ages.assign(std::uint64_t(sets) * assoc, invalidAge);
}

std::uint32_t
SetAssocCache::setIndex(LineAddr line) const
{
    return static_cast<std::uint32_t>(mix64(line) & (sets - 1));
}

void
SetAssocCache::promote(std::uint64_t base, std::uint32_t w)
{
    // Every valid way more recent than w gets one step older; w
    // becomes the MRU.  invalidAge compares greater than any valid
    // age, so an empty w ages the whole set (a fresh insertion).
    const std::uint8_t old = ages[base + w];
    std::uint8_t *age = &ages[base];
    for (std::uint32_t v = 0; v < assoc; ++v)
        if (age[v] < old)
            ++age[v];
    age[w] = 0;
}

bool
SetAssocCache::access(LineAddr line)
{
    ++stat.accesses;
    const std::uint64_t base =
        std::uint64_t(setIndex(line)) * assoc;
    const LineAddr *tag = &tags[base];
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if (tag[w] == line && ages[base + w] != invalidAge) {
            promote(base, w);
            ++stat.hits;
            return true;
        }
    }
    ++stat.misses;
    return false;
}

bool
SetAssocCache::contains(LineAddr line) const
{
    const std::uint64_t base =
        std::uint64_t(setIndex(line)) * assoc;
    for (std::uint32_t w = 0; w < assoc; ++w)
        if (tags[base + w] == line && ages[base + w] != invalidAge)
            return true;
    return false;
}

std::uint32_t
SetAssocCache::victimWay(std::uint32_t set)
{
    const std::uint64_t base = std::uint64_t(set) * assoc;
    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < assoc; ++w)
        if (ages[base + w] == invalidAge)
            return w;
    if (repl == ReplPolicy::Random) {
        randState ^= randState << 13;
        randState ^= randState >> 7;
        randState ^= randState << 17;
        return static_cast<std::uint32_t>(randState % assoc);
    }
    // All ways valid: the ages are the permutation {0..assoc-1} and
    // the unique maximum is the least recently used.
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < assoc; ++w)
        if (ages[base + w] > ages[base + victim])
            victim = w;
    return victim;
}

bool
SetAssocCache::fill(LineAddr line, LineAddr &evicted)
{
    const std::uint32_t set = setIndex(line);
    const std::uint64_t base = std::uint64_t(set) * assoc;
    // Already present: just refresh recency.
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if (tags[base + w] == line && ages[base + w] != invalidAge) {
            promote(base, w);
            return false;
        }
    }
    ++stat.fills;
    const std::uint32_t w = victimWay(set);
    const bool had_victim = ages[base + w] != invalidAge;
    if (had_victim) {
        evicted = tags[base + w];
        ++stat.evictions;
    }
    tags[base + w] = line;
    promote(base, w);
    return had_victim;
}

bool
SetAssocCache::invalidate(LineAddr line)
{
    const std::uint64_t base =
        std::uint64_t(setIndex(line)) * assoc;
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if (tags[base + w] == line && ages[base + w] != invalidAge) {
            // Keep the survivors' ages dense: everyone older than
            // the removed way moves one step younger.
            const std::uint8_t gone = ages[base + w];
            for (std::uint32_t v = 0; v < assoc; ++v)
                if (ages[base + v] != invalidAge &&
                    ages[base + v] > gone)
                    --ages[base + v];
            ages[base + w] = invalidAge;
            tags[base + w] = invalidAddr;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::clear()
{
    std::fill(tags.begin(), tags.end(), invalidAddr);
    std::fill(ages.begin(), ages.end(), invalidAge);
}

std::string
SetAssocCache::audit() const
{
    if (sets == 0 || (sets & (sets - 1)) != 0)
        return "set count is not a power of two";
    if (tags.size() != std::uint64_t(sets) * assoc ||
        ages.size() != tags.size())
        return "way storage does not match geometry";
    if (stat.hits + stat.misses != stat.accesses)
        return "hit/miss counters do not sum to accesses";
    for (std::uint32_t set = 0; set < sets; ++set) {
        const std::string where =
            "set " + std::to_string(set) + ": ";
        const std::uint64_t base = std::uint64_t(set) * assoc;
        std::unordered_set<LineAddr> seen;
        std::uint32_t valid = 0;
        bool seenAge[256] = {};
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (ages[base + w] == invalidAge)
                continue;
            ++valid;
            if (setIndex(tags[base + w]) != set)
                return where + "tag hashes to a different set";
            if (!seen.insert(tags[base + w]).second)
                return where + "duplicate tag";
            if (ages[base + w] >= assoc)
                return where + "age out of range";
            if (seenAge[ages[base + w]])
                return where + "duplicate age (LRU order is not "
                    "a permutation)";
            seenAge[ages[base + w]] = true;
        }
        // Dense permutation {0..valid-1}: with distinct in-range
        // ages it suffices that none reaches the valid count.
        for (std::uint32_t w = 0; w < assoc; ++w)
            if (ages[base + w] != invalidAge &&
                ages[base + w] >= valid)
                return where + "age gap (LRU order is not dense)";
    }
    return "";
}

} // namespace domino
