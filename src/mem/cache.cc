#include "cache.h"

#include <unordered_set>

namespace domino
{

namespace
{

std::uint32_t
floorPow2(std::uint64_t x)
{
    std::uint32_t p = 1;
    while ((std::uint64_t(p) << 1) <= x)
        p <<= 1;
    return p;
}

} // anonymous namespace

SetAssocCache::SetAssocCache(std::uint64_t size_bytes,
                             std::uint32_t ways_in, ReplPolicy policy)
    : assoc(ways_in ? ways_in : 1), repl(policy)
{
    const std::uint64_t blocks = size_bytes / blockBytes;
    const std::uint64_t want_sets = blocks / assoc;
    sets = want_sets ? floorPow2(want_sets) : 1;
    ways.resize(std::uint64_t(sets) * assoc);
}

std::uint32_t
SetAssocCache::setIndex(LineAddr line) const
{
    return static_cast<std::uint32_t>(mix64(line) & (sets - 1));
}

bool
SetAssocCache::access(LineAddr line)
{
    ++stat.accesses;
    ++tick;
    const std::uint32_t set = setIndex(line);
    Way *base = &ways[std::uint64_t(set) * assoc];
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].lastUse = tick;
            ++stat.hits;
            return true;
        }
    }
    ++stat.misses;
    return false;
}

bool
SetAssocCache::contains(LineAddr line) const
{
    const std::uint32_t set = setIndex(line);
    const Way *base = &ways[std::uint64_t(set) * assoc];
    for (std::uint32_t w = 0; w < assoc; ++w)
        if (base[w].valid && base[w].tag == line)
            return true;
    return false;
}

std::uint32_t
SetAssocCache::victimWay(std::uint32_t set)
{
    Way *base = &ways[std::uint64_t(set) * assoc];
    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < assoc; ++w)
        if (!base[w].valid)
            return w;
    if (repl == ReplPolicy::Random) {
        randState ^= randState << 13;
        randState ^= randState >> 7;
        randState ^= randState << 17;
        return static_cast<std::uint32_t>(randState % assoc);
    }
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < assoc; ++w)
        if (base[w].lastUse < base[victim].lastUse)
            victim = w;
    return victim;
}

bool
SetAssocCache::fill(LineAddr line, LineAddr &evicted)
{
    ++tick;
    const std::uint32_t set = setIndex(line);
    Way *base = &ways[std::uint64_t(set) * assoc];
    // Already present: just refresh recency.
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].lastUse = tick;
            return false;
        }
    }
    ++stat.fills;
    const std::uint32_t w = victimWay(set);
    const bool had_victim = base[w].valid;
    if (had_victim) {
        evicted = base[w].tag;
        ++stat.evictions;
    }
    base[w].valid = true;
    base[w].tag = line;
    base[w].lastUse = tick;
    return had_victim;
}

bool
SetAssocCache::invalidate(LineAddr line)
{
    const std::uint32_t set = setIndex(line);
    Way *base = &ways[std::uint64_t(set) * assoc];
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].valid = false;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::clear()
{
    for (auto &w : ways)
        w = Way{};
}

std::string
SetAssocCache::audit() const
{
    if (sets == 0 || (sets & (sets - 1)) != 0)
        return "set count is not a power of two";
    if (ways.size() != std::uint64_t(sets) * assoc)
        return "way storage does not match geometry";
    if (stat.hits + stat.misses != stat.accesses)
        return "hit/miss counters do not sum to accesses";
    for (std::uint32_t set = 0; set < sets; ++set) {
        const std::string where =
            "set " + std::to_string(set) + ": ";
        const Way *base = &ways[std::uint64_t(set) * assoc];
        std::unordered_set<LineAddr> tags;
        std::unordered_set<std::uint64_t> stamps;
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (!base[w].valid)
                continue;
            if (setIndex(base[w].tag) != set)
                return where + "tag hashes to a different set";
            if (!tags.insert(base[w].tag).second)
                return where + "duplicate tag";
            if (base[w].lastUse > tick)
                return where + "recency stamp from the future";
            if (!stamps.insert(base[w].lastUse).second)
                return where + "duplicate recency stamp (LRU "
                    "order is not a permutation)";
        }
    }
    return "";
}

} // namespace domino
