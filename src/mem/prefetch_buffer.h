/**
 * @file
 * The small fully-associative prefetch buffer next to the L1-D.
 *
 * Following the paper's methodology (Section IV.D), all prefetchers
 * prefetch into a 32-block buffer rather than directly into the
 * L1-D.  A demand access that hits the buffer is a *covered* miss; a
 * buffered block that is evicted without ever being hit is an
 * *overprediction*.
 */

#ifndef DOMINO_MEM_PREFETCH_BUFFER_H
#define DOMINO_MEM_PREFETCH_BUFFER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace domino
{

/** Counters kept by the prefetch buffer. */
struct PrefetchBufferStats
{
    /** Prefetches inserted (deduplicated insertions only). */
    std::uint64_t inserted = 0;
    /** Demand accesses satisfied by the buffer. */
    std::uint64_t hits = 0;
    /** Blocks evicted (or invalidated) without ever being used. */
    std::uint64_t evictedUnused = 0;
    /** Insert attempts dropped because the block was already here. */
    std::uint64_t duplicateDrops = 0;
};

/**
 * Fully-associative LRU prefetch buffer.
 *
 * Each entry carries the id of the active stream that produced it
 * (so stream trackers can credit prefetch hits) and the cycle the
 * prefetched block arrives from memory (so the timing model can
 * charge partial stalls for late prefetches).
 */
class PrefetchBuffer
{
  public:
    /** Result of a demand probe. */
    struct HitInfo
    {
        bool hit = false;
        /** Stream id recorded at insertion. */
        std::uint32_t streamId = 0;
        /** Cycle at which the block is ready (timing model). */
        Cycles readyCycle = 0;
        /** Latency the demand would have paid without the prefetch
         *  (timing model; caps the late-prefetch stall). */
        Cycles altLatency = 0;
    };

    explicit PrefetchBuffer(std::uint32_t capacity = 32)
        : cap(capacity)
    {}

    std::uint32_t capacity() const { return cap; }
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(entries.size());
    }

    /**
     * Insert a prefetched block.  Duplicates are dropped.  When
     * full, the LRU entry is evicted (counted as an overprediction
     * if it was never hit -- entries by construction are removed on
     * hit, so every eviction is an unused one).
     *
     * @return true if actually inserted.
     */
    bool insert(LineAddr line, std::uint32_t stream_id = 0,
                Cycles ready_cycle = 0, Cycles alt_latency = 0);

    /** True if the block is currently buffered (no side effects). */
    bool contains(LineAddr line) const;

    /**
     * Demand probe: on hit the entry is removed (the block moves
     * into the L1-D) and its metadata returned.
     */
    HitInfo lookup(LineAddr line);

    /**
     * Invalidate all blocks belonging to a replaced stream.  The
     * paper discards the prefetch-buffer contents of a stream when
     * the stream is replaced (Section III.B "Replaying").
     */
    void invalidateStream(std::uint32_t stream_id);

    /** Drop everything, counting remaining entries as unused. */
    void flush();

    const PrefetchBufferStats &stats() const { return stat; }

    /**
     * Verify the buffer's invariants: occupancy never exceeds
     * capacity, buffered lines are unique and valid, recency stamps
     * never exceed the global tick and are distinct (insertion
     * dedupes, hits remove), and the entry lifecycle balances --
     * every inserted block is either still buffered, was hit, or
     * was evicted unused.
     * @return empty string if OK, else a description.
     */
    std::string audit() const;

  private:
    /** Test-only backdoor for corrupting entries in audit tests. */
    friend struct PrefetchBufferTestPeer;
    struct Entry
    {
        LineAddr line;
        std::uint32_t streamId;
        Cycles readyCycle;
        Cycles altLatency;
        std::uint64_t lastUse;
    };

    std::uint32_t cap;
    std::vector<Entry> entries;
    std::uint64_t tick = 0;
    PrefetchBufferStats stat;
};

} // namespace domino

#endif // DOMINO_MEM_PREFETCH_BUFFER_H
