/**
 * @file
 * Miss Status Holding Register (MSHR) file.
 *
 * Tracks in-flight fills with merge semantics.  The timing model
 * uses it to bound the number of outstanding prefetches (Table I:
 * 32 L1-D MSHRs): a prefetch that cannot allocate an MSHR is
 * dropped, which throttles burst-heavy prefetchers whose requests
 * occupy entries for multiple serial round trips.  Demand misses
 * are modelled with priority (they stall the core and therefore
 * self-limit), so only prefetches compete here.
 */

#ifndef DOMINO_MEM_MSHR_H
#define DOMINO_MEM_MSHR_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.h"

namespace domino
{

/** MSHR statistics. */
struct MshrStats
{
    std::uint64_t allocations = 0;
    std::uint64_t merges = 0;
    std::uint64_t rejections = 0;
};

/** Fixed-capacity MSHR file with time-based retirement. */
class MshrFile
{
  public:
    explicit MshrFile(unsigned entries)
        : cap(entries ? entries : 1)
    {
        slots.reserve(cap);
    }

    unsigned capacity() const { return cap; }
    std::size_t inFlight() const { return slots.size(); }

    /** Free every entry whose fill completed by @p now. */
    void
    retire(Cycles now)
    {
        // Batched early-out: nothing can retire before the earliest
        // completion, so the (frequent) no-op calls skip the scan.
        if (now < minReady)
            return;
        Cycles next = noReady;
        for (std::size_t i = 0; i < slots.size();) {
            if (slots[i].ready <= now) {
                slots[i] = slots.back();
                slots.pop_back();
            } else {
                if (slots[i].ready < next)
                    next = slots[i].ready;
                ++i;
            }
        }
        minReady = next;
    }

    /** True if a fill for @p line is in flight. */
    bool
    contains(LineAddr line) const
    {
        for (const auto &s : slots)
            if (s.line == line)
                return true;
        return false;
    }

    /**
     * Allocate an entry for @p line completing at @p ready.
     * Merges with an in-flight fill for the same line.
     *
     * @return false if the file is full (request must be dropped
     *         or retried).
     */
    bool
    allocate(LineAddr line, Cycles ready)
    {
        for (const auto &s : slots) {
            if (s.line == line) {
                ++stat.merges;
                return true;
            }
        }
        if (slots.size() >= cap) {
            ++stat.rejections;
            return false;
        }
        slots.push_back(Slot{line, ready});
        if (ready < minReady)
            minReady = ready;
        ++stat.allocations;
        return true;
    }

    const MshrStats &stats() const { return stat; }

    /**
     * Verify the file's invariants: occupancy never exceeds the
     * configured capacity, no line has two entries (allocate merges
     * instead), the entry lifecycle is consistent -- every in-flight
     * entry came from a counted allocation -- and the retire
     * early-out bound never overshoots an in-flight completion.
     * @return empty string if OK, else a description.
     */
    std::string
    audit() const
    {
        if (slots.size() > cap)
            return "occupancy " + std::to_string(slots.size()) +
                " exceeds capacity " + std::to_string(cap);
        if (slots.size() > stat.allocations)
            return "more in-flight entries than allocations";
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (slots[i].ready < minReady)
                return "retire bound overshoots an in-flight "
                    "completion (would skip a due retirement)";
            for (std::size_t j = i + 1; j < slots.size(); ++j)
                if (slots[i].line == slots[j].line)
                    return "duplicate in-flight line (merge "
                        "invariant broken)";
        }
        return "";
    }

  private:
    /** Test-only backdoor for corrupting slots in audit tests. */
    friend struct MshrTestPeer;
    struct Slot
    {
        LineAddr line;
        Cycles ready;
    };

    /** minReady value meaning "no entry in flight". */
    static constexpr Cycles noReady =
        std::numeric_limits<Cycles>::max();

    unsigned cap;
    std::vector<Slot> slots;
    /** Lower bound on every in-flight completion (noReady when
     *  empty): retire(now) is a no-op while now < minReady. */
    Cycles minReady = noReady;
    MshrStats stat;
};

} // namespace domino

#endif // DOMINO_MEM_MSHR_H
