/**
 * @file
 * Miss Status Holding Register (MSHR) file.
 *
 * Tracks in-flight fills with merge semantics.  The timing model
 * uses it to bound the number of outstanding prefetches (Table I:
 * 32 L1-D MSHRs): a prefetch that cannot allocate an MSHR is
 * dropped, which throttles burst-heavy prefetchers whose requests
 * occupy entries for multiple serial round trips.  Demand misses
 * are modelled with priority (they stall the core and therefore
 * self-limit), so only prefetches compete here.
 */

#ifndef DOMINO_MEM_MSHR_H
#define DOMINO_MEM_MSHR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace domino
{

/** MSHR statistics. */
struct MshrStats
{
    std::uint64_t allocations = 0;
    std::uint64_t merges = 0;
    std::uint64_t rejections = 0;
};

/** Fixed-capacity MSHR file with time-based retirement. */
class MshrFile
{
  public:
    explicit MshrFile(unsigned entries)
        : cap(entries ? entries : 1)
    {
        slots.reserve(cap);
    }

    unsigned capacity() const { return cap; }
    std::size_t inFlight() const { return slots.size(); }

    /** Free every entry whose fill completed by @p now. */
    void
    retire(Cycles now)
    {
        for (std::size_t i = 0; i < slots.size();) {
            if (slots[i].ready <= now) {
                slots[i] = slots.back();
                slots.pop_back();
            } else {
                ++i;
            }
        }
    }

    /** True if a fill for @p line is in flight. */
    bool
    contains(LineAddr line) const
    {
        for (const auto &s : slots)
            if (s.line == line)
                return true;
        return false;
    }

    /**
     * Allocate an entry for @p line completing at @p ready.
     * Merges with an in-flight fill for the same line.
     *
     * @return false if the file is full (request must be dropped
     *         or retried).
     */
    bool
    allocate(LineAddr line, Cycles ready)
    {
        for (const auto &s : slots) {
            if (s.line == line) {
                ++stat.merges;
                return true;
            }
        }
        if (slots.size() >= cap) {
            ++stat.rejections;
            return false;
        }
        slots.push_back(Slot{line, ready});
        ++stat.allocations;
        return true;
    }

    const MshrStats &stats() const { return stat; }

    /**
     * Verify the file's invariants: occupancy never exceeds the
     * configured capacity, no line has two entries (allocate merges
     * instead), and the entry lifecycle is consistent -- every
     * in-flight entry came from a counted allocation.
     * @return empty string if OK, else a description.
     */
    std::string
    audit() const
    {
        if (slots.size() > cap)
            return "occupancy " + std::to_string(slots.size()) +
                " exceeds capacity " + std::to_string(cap);
        if (slots.size() > stat.allocations)
            return "more in-flight entries than allocations";
        for (std::size_t i = 0; i < slots.size(); ++i)
            for (std::size_t j = i + 1; j < slots.size(); ++j)
                if (slots[i].line == slots[j].line)
                    return "duplicate in-flight line (merge "
                        "invariant broken)";
        return "";
    }

  private:
    /** Test-only backdoor for corrupting slots in audit tests. */
    friend struct MshrTestPeer;
    struct Slot
    {
        LineAddr line;
        Cycles ready;
    };

    unsigned cap;
    std::vector<Slot> slots;
    MshrStats stat;
};

} // namespace domino

#endif // DOMINO_MEM_MSHR_H
