/**
 * @file
 * Latency and bandwidth parameters of the simulated memory system
 * (Table I of the paper).
 */

#ifndef DOMINO_MEM_MEMORY_MODEL_H
#define DOMINO_MEM_MEMORY_MODEL_H

#include <cstdint>

#include "common/types.h"

namespace domino
{

/** Latency/bandwidth parameters, defaults from Table I at 4 GHz. */
struct MemoryParams
{
    /** Core clock in GHz (Table I: 4 GHz). */
    double coreGhz = 4.0;
    /** L1-D load-to-use latency (Table I: 2 cycles). */
    Cycles l1Latency = 2;
    /** LLC hit latency (Table I: 18 cycles). */
    Cycles llcLatency = 18;
    /** Main-memory round-trip (Table I: 45 ns -> 180 cycles). */
    Cycles memLatency = 180;
    /** Peak off-chip bandwidth (Table I: 37.5 GB/s). */
    double peakBandwidthGBs = 37.5;
    /**
     * Cycles for one serial off-chip metadata round trip; 0 means
     * "same as memLatency" (the metadata tables live in the same
     * DRAM as the data).  A nonzero value models a dedicated
     * metadata store (e.g. a slower far-memory tier).
     */
    Cycles metadataTripCycles = 0;

    /** Cycles for one serial off-chip metadata round trip. */
    Cycles
    metadataLatency() const
    {
        return metadataTripCycles ? metadataTripCycles : memLatency;
    }

    /**
     * Peak off-chip transfer rate in bytes per core cycle (the unit
     * the bandwidth/queueing account works in): GB/s divided by
     * Gcycles/s.  Table I: 37.5 / 4 = 9.375 B/cycle.
     */
    double
    bytesPerCycle() const
    {
        return coreGhz > 0.0 ? peakBandwidthGBs / coreGhz : 0.0;
    }
};

/** Byte counters for the off-chip traffic breakdown (Figure 15). */
struct OffChipTraffic
{
    /** Demand fills (baseline traffic). */
    std::uint64_t demandBytes = 0;
    /** Useful prefetch fills. */
    std::uint64_t usefulPrefetchBytes = 0;
    /** Incorrect (never used) prefetch fills. */
    std::uint64_t incorrectPrefetchBytes = 0;
    /** Metadata reads (index/history rows fetched). */
    std::uint64_t metadataReadBytes = 0;
    /** Metadata updates (history appends, index writebacks). */
    std::uint64_t metadataUpdateBytes = 0;

    std::uint64_t
    totalBytes() const
    {
        return demandBytes + usefulPrefetchBytes +
            incorrectPrefetchBytes + metadataReadBytes +
            metadataUpdateBytes;
    }

    /** Overhead of each extra component relative to demand bytes. */
    double
    overheadFraction() const
    {
        if (!demandBytes)
            return 0.0;
        return static_cast<double>(totalBytes() - demandBytes) /
            static_cast<double>(demandBytes);
    }
};

} // namespace domino

#endif // DOMINO_MEM_MEMORY_MODEL_H
