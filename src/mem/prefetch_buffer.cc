#include "prefetch_buffer.h"

#include <algorithm>
#include <unordered_set>

namespace domino
{

bool
PrefetchBuffer::insert(LineAddr line, std::uint32_t stream_id,
                       Cycles ready_cycle, Cycles alt_latency)
{
    ++tick;
    for (auto &e : entries) {
        if (e.line == line) {
            ++stat.duplicateDrops;
            return false;
        }
    }
    if (entries.size() >= cap) {
        // Evict LRU; it was never used (hits remove entries).
        // Recency lives in the lastUse stamps, not in element
        // order, so the victim slot is reused in place.
        auto lru = entries.begin();
        for (auto it = entries.begin(); it != entries.end(); ++it)
            if (it->lastUse < lru->lastUse)
                lru = it;
        ++stat.evictedUnused;
        *lru = Entry{line, stream_id, ready_cycle, alt_latency,
                     tick};
    } else {
        entries.push_back(
            Entry{line, stream_id, ready_cycle, alt_latency, tick});
    }
    ++stat.inserted;
    return true;
}

bool
PrefetchBuffer::contains(LineAddr line) const
{
    for (const auto &e : entries)
        if (e.line == line)
            return true;
    return false;
}

PrefetchBuffer::HitInfo
PrefetchBuffer::lookup(LineAddr line)
{
    ++tick;
    for (auto it = entries.begin(); it != entries.end(); ++it) {
        if (it->line == line) {
            HitInfo info{true, it->streamId, it->readyCycle,
                         it->altLatency};
            // Element order carries no meaning (see insert), so the
            // hit entry is removed with a swap-pop instead of an
            // order-preserving erase.
            *it = entries.back();
            entries.pop_back();
            ++stat.hits;
            return info;
        }
    }
    return HitInfo{};
}

void
PrefetchBuffer::invalidateStream(std::uint32_t stream_id)
{
    auto it = std::remove_if(entries.begin(), entries.end(),
        [&](const Entry &e) { return e.streamId == stream_id; });
    stat.evictedUnused +=
        static_cast<std::uint64_t>(entries.end() - it);
    entries.erase(it, entries.end());
}

void
PrefetchBuffer::flush()
{
    stat.evictedUnused += entries.size();
    entries.clear();
}

std::string
PrefetchBuffer::audit() const
{
    if (entries.size() > cap)
        return "occupancy " + std::to_string(entries.size()) +
            " exceeds capacity " + std::to_string(cap);
    std::unordered_set<LineAddr> lines;
    std::unordered_set<std::uint64_t> stamps;
    for (const Entry &e : entries) {
        if (e.line == invalidAddr)
            return "invalid buffered line";
        if (!lines.insert(e.line).second)
            return "duplicate buffered line";
        if (e.lastUse > tick)
            return "recency stamp from the future";
        if (!stamps.insert(e.lastUse).second)
            return "duplicate recency stamp";
    }
    if (stat.inserted != stat.hits + stat.evictedUnused +
            entries.size()) {
        return "lifecycle imbalance: inserted != hits + "
            "evicted-unused + buffered";
    }
    return "";
}

} // namespace domino
