#include "markov.h"

// conventions: allow-file(ordered-output) -- the bounded-table
// victim below is table.begin() of an unordered_map, which is
// deliberately iteration-order dependent: libstdc++'s bucket order
// is deterministic for a fixed key sequence, and the "random"-victim
// eviction is part of the modelled design, not of any emitted
// CSV/JSON row.

namespace domino
{

void
MarkovPrefetcher::onTrigger(const TriggerEvent &event,
                            PrefetchSink &sink)
{
    const LineAddr line = event.line;

    // Predict: prefetch every remembered successor, MRU first.
    const auto it = table.find(line);
    if (it != table.end()) {
        for (const LineAddr succ : it->second)
            sink.issue(succ, 0, 0);
    }

    // Train the (prev -> line) transition.
    if (havePrev) {
        auto &succ = table.try_emplace(
            prev, LruSet<LineAddr>(cfg.successors)).first->second;
        const std::size_t idx = succ.find(
            [&](LineAddr s) { return s == line; });
        if (idx < succ.size())
            succ.touch(idx);
        else
            succ.insert(line);
        // Bounded-table mode: drop a pseudo-random victim when
        // over capacity (the classic design is set-associative; a
        // random-victim map keeps the same capacity behaviour).
        if (cfg.tableEntries && table.size() > cfg.tableEntries)
            table.erase(table.begin());
    }
    prev = line;
    havePrev = true;
}

std::string
MarkovPrefetcher::audit() const
{
    if (cfg.tableEntries && table.size() > cfg.tableEntries)
        return "correlation table ran past its configured bound";
    if (havePrev && prev == invalidAddr)
        return "training state claims a previous miss but holds "
            "the invalid address";
    // Iterating the unordered table is fine here: every entry must
    // pass, so the verdict cannot depend on iteration order.
    for (const auto &entry : table) {
        if (entry.second.capacity() != cfg.successors)
            return "successor set capacity drifted from the "
                "configured fan-out";
        if (const std::string issue = entry.second.audit();
            !issue.empty())
            return "successor set: " + issue;
    }
    return "";
}

} // namespace domino
