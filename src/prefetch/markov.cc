#include "markov.h"

namespace domino
{

void
MarkovPrefetcher::onTrigger(const TriggerEvent &event,
                            PrefetchSink &sink)
{
    const LineAddr line = event.line;

    // Predict: prefetch every remembered successor, MRU first.
    const auto it = table.find(line);
    if (it != table.end()) {
        for (const LineAddr succ : it->second)
            sink.issue(succ, 0, 0);
    }

    // Train the (prev -> line) transition.
    if (havePrev) {
        auto &succ = table.try_emplace(
            prev, LruSet<LineAddr>(cfg.successors)).first->second;
        const std::size_t idx = succ.find(
            [&](LineAddr s) { return s == line; });
        if (idx < succ.size())
            succ.touch(idx);
        else
            succ.insert(line);
        // Bounded-table mode: drop a pseudo-random victim when
        // over capacity (the classic design is set-associative; a
        // random-victim map keeps the same capacity behaviour).
        if (cfg.tableEntries && table.size() > cfg.tableEntries)
            table.erase(table.begin());
    }
    prev = line;
    havePrev = true;
}

} // namespace domino
