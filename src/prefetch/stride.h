/**
 * @file
 * Classic per-PC stride prefetcher [Baer & Chen, Supercomputing
 * 1991] with a Reference Prediction Table.
 *
 * The paper's opening argument (after [1], [6]) is that simple
 * stride prefetching is ineffective for server workloads, whose
 * dependent pointer-chasing misses carry no stride pattern.  This
 * implementation exists to demonstrate that claim on the synthetic
 * suite (see bench_fig11_coverage_deg1 --with-simple) and as the
 * canonical example of a state-machine prefetcher in the framework.
 */

#ifndef DOMINO_PREFETCH_STRIDE_H
#define DOMINO_PREFETCH_STRIDE_H

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.h"

namespace domino
{

/** Configuration of the stride prefetcher. */
struct StrideConfig
{
    /** Prefetch degree (strides projected ahead). */
    unsigned degree = 4;
    /** Reference Prediction Table entries (per-PC, set-assoc). */
    unsigned rptEntries = 256;
};

/**
 * Per-PC stride detection with the classic two-bit state machine
 * (initial -> transient -> steady; prefetch only when steady).
 */
class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(const StrideConfig &config);

    std::string name() const override { return "Stride"; }
    void onTrigger(const TriggerEvent &event,
                   PrefetchSink &sink) override;

    /**
     * Structural invariants of the Reference Prediction Table:
     * fixed geometry and only steady entries older than one
     * observation.  @return empty string if OK, else a description.
     */
    std::string
    audit() const override
    {
        if (rpt.size() != (cfg.rptEntries ? cfg.rptEntries : 1))
            return "RPT geometry drifted from the configuration";
        for (const RptEntry &e : rpt)
            if (!e.valid && e.state != State::Initial)
                return "invalid RPT entry left a stale state "
                    "machine";
        return "";
    }

  private:
    enum class State : std::uint8_t
    {
        Initial,
        Transient,
        Steady,
    };

    struct RptEntry
    {
        Addr pc = 0;
        LineAddr lastLine = 0;
        std::int64_t stride = 0;
        State state = State::Initial;
        bool valid = false;
    };

    StrideConfig cfg;
    std::vector<RptEntry> rpt;
};

} // namespace domino

#endif // DOMINO_PREFETCH_STRIDE_H
