/**
 * @file
 * Trivial next-line prefetcher.
 *
 * The paper's baseline has a next-line *instruction* prefetcher and
 * no data prefetcher; we do not model the instruction stream, but a
 * next-line data prefetcher is provided as the canonical "simple
 * prefetching does not work for server workloads" strawman
 * (Ferdman et al., ASPLOS 2012) and for framework tests.
 */

#ifndef DOMINO_PREFETCH_NEXT_LINE_H
#define DOMINO_PREFETCH_NEXT_LINE_H

#include "prefetch/prefetcher.h"

namespace domino
{

/** Prefetches the next sequential line(s) on every trigger. */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(unsigned degree = 1)
        : degree(degree)
    {}

    std::string name() const override { return "NextLine"; }

    void
    onTrigger(const TriggerEvent &event, PrefetchSink &sink) override
    {
        for (unsigned d = 1; d <= degree; ++d)
            sink.issue(event.line + d, 0, 0);
    }

  private:
    unsigned degree;
};

} // namespace domino

#endif // DOMINO_PREFETCH_NEXT_LINE_H
