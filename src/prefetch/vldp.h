/**
 * @file
 * Variable Length Delta Prefetcher (VLDP) [Shevgoor et al.,
 * MICRO 2015], configured as in the paper: 16-entry DHB, 64-entry
 * OPT, three infinite-size DPTs.
 *
 * VLDP is a *spatial* prefetcher: it predicts the next block offset
 * within a 4 KB page from the recent history of deltas in that page,
 * using the deepest delta-history table that matches (3, then 2,
 * then 1 deltas).  The OPT predicts the first delta of a freshly
 * touched page from its first offset.  VLDP is orthogonal to
 * temporal prefetching and is stacked under Domino for Figure 16.
 */

#ifndef DOMINO_PREFETCH_VLDP_H
#define DOMINO_PREFETCH_VLDP_H

#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "prefetch/prefetcher.h"

namespace domino
{

/** VLDP configuration (paper Section IV.D). */
struct VldpConfig
{
    unsigned degree = 4;
    /** Delta History Buffer entries (pages tracked). */
    unsigned dhbEntries = 16;
    /** Offset Prediction Table entries. */
    unsigned optEntries = 64;
};

/** VLDP spatial prefetcher. */
class VldpPrefetcher : public Prefetcher
{
  public:
    explicit VldpPrefetcher(const VldpConfig &config);

    std::string name() const override { return "VLDP"; }

    void
    onTrigger(const TriggerEvent &event, PrefetchSink &sink) override
    {
        step(event, sink);
    }

    /** Batched == scalar: VLDP's tables are small and on-chip, so
     *  the override only amortises the per-event virtual dispatch
     *  (one virtual call per batch, non-virtual steps). */
    void
    trainPredictMany(std::span<const TriggerEvent> events,
                     PrefetchSink &sink) override
    {
        for (const TriggerEvent &event : events)
            step(event, sink);
    }

    /**
     * Structural invariants of the DHB/OPT/DPT tables: fixed
     * geometries, per-page delta histories within the 3-delta
     * depth, recency stamps no newer than the clock, and the DPT
     * maps auditing clean.  @return empty string if OK, else a
     * description.
     */
    std::string
    audit() const override
    {
        if (dhb.size() != cfg.dhbEntries)
            return "DHB geometry drifted from the configuration";
        if (opt.size() != cfg.optEntries)
            return "OPT geometry drifted from the configuration";
        for (const DhbEntry &e : dhb) {
            if (!e.valid)
                continue;
            if (e.deltas.size() > 3)
                return "DHB delta history deeper than the 3-delta "
                    "DPT depth";
            if (e.lastUse > tick)
                return "DHB recency stamp from the future";
        }
        for (const auto &table : dpt)
            if (const std::string issue = table.audit();
                !issue.empty())
                return "DPT: " + issue;
        return "";
    }

  private:
    /** The scalar trigger step (shared by both entry points). */
    void step(const TriggerEvent &event, PrefetchSink &sink);

    struct DhbEntry
    {
        std::uint64_t page = 0;
        std::uint32_t lastOffset = 0;
        /** Most recent deltas, oldest first, at most 3. */
        std::vector<std::int32_t> deltas;
        std::uint32_t firstOffset = 0;
        bool sawSecond = false;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    DhbEntry *findPage(std::uint64_t page);
    DhbEntry &allocatePage(std::uint64_t page);
    void issueChain(std::uint64_t page, std::uint32_t start_offset,
                    std::vector<std::int32_t> history,
                    bool have_first, std::int32_t first_delta,
                    PrefetchSink &sink);
    bool lookupDelta(const std::vector<std::int32_t> &history,
                     std::int32_t &out) const;

    static std::uint64_t packKey(const std::int32_t *deltas,
                                 unsigned n);

    VldpConfig cfg;
    std::vector<DhbEntry> dhb;
    /** DPTs indexed by the number of deltas in the key (1..3).
     *  Flatten-safe: only point lookups and overwrites, never
     *  iterated, so the container cannot leak iteration order into
     *  figure output. */
    FlatHashMap<std::int32_t> dpt[3];
    /** OPT: first offset -> predicted first delta (0 = invalid). */
    std::vector<std::int32_t> opt;
    std::uint64_t tick = 0;
};

} // namespace domino

#endif // DOMINO_PREFETCH_VLDP_H
