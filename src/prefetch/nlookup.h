/**
 * @file
 * N-address lookup machinery for the paper's motivation study
 * (Figures 3, 4 and 5).
 *
 * NGramAnalyzer answers, per lookup depth n: how often does a
 * lookup with the last n triggering events find a match in the
 * history (Figure 4), and how often does a found match predict the
 * next miss correctly (Figure 3)?
 *
 * NLookupPrefetcher is the idealized temporal prefetcher of
 * Figure 5: on each trigger it finds the match with the largest
 * depth <= N (recursively falling back to fewer addresses) and
 * prefetches the addresses that followed that match.
 */

#ifndef DOMINO_PREFETCH_NLOOKUP_H
#define DOMINO_PREFETCH_NLOOKUP_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.h"
#include "prefetch/prefetcher.h"

namespace domino
{

/** Offline per-depth lookup statistics over a trigger sequence. */
class NGramAnalyzer
{
  public:
    /** Per-depth counters. */
    struct DepthStats
    {
        /** Lookups attempted (history deep enough). */
        std::uint64_t lookups = 0;
        /** Lookups that found a match. */
        std::uint64_t matches = 0;
        /** Matches whose prediction equalled the next miss. */
        std::uint64_t correct = 0;

        double matchFraction() const
        {
            return lookups ? static_cast<double>(matches) /
                static_cast<double>(lookups) : 0.0;
        }
        double correctFraction() const
        {
            return matches ? static_cast<double>(correct) /
                static_cast<double>(matches) : 0.0;
        }
    };

    explicit NGramAnalyzer(unsigned max_depth);

    /** Feed the next triggering event of the sequence. */
    void observe(LineAddr line);

    unsigned maxDepth() const { return maxN; }
    const DepthStats &stats(unsigned depth) const
    {
        return depthStats[depth - 1];
    }

    /**
     * Structural invariants: one table, stats row, and pending
     * prediction per depth, counters monotone within each depth,
     * and every per-depth index auditing clean.  @return empty
     * string if OK, else a description.
     */
    std::string
    audit() const
    {
        if (lastPos.size() != maxN || depthStats.size() != maxN ||
            pendingPred.size() != maxN)
            return "per-depth state drifted from the maximum depth";
        for (const DepthStats &d : depthStats)
            if (d.matches > d.lookups || d.correct > d.matches)
                return "per-depth counters are not monotone "
                    "(correct <= matches <= lookups)";
        for (const auto &table : lastPos)
            if (const std::string issue = table.audit();
                !issue.empty())
                return "n-gram index: " + issue;
        return "";
    }

  private:
    std::uint64_t keyFor(unsigned n) const;

    unsigned maxN;
    std::vector<LineAddr> hist;
    /** Per depth: n-gram key -> position of the n-gram's end.
     *  Flat maps: behaviour never depends on iteration order. */
    std::vector<FlatHashMap<std::uint64_t>> lastPos;
    std::vector<DepthStats> depthStats;
    /** Prediction made at the previous trigger, per depth. */
    std::vector<std::optional<LineAddr>> pendingPred;
};

/** Configuration for the idealized multi-depth lookup prefetcher. */
struct NLookupConfig
{
    /** Maximum lookup depth N (tries N, N-1, ..., 1). */
    unsigned maxDepth = 2;
    /** Prefetch degree. */
    unsigned degree = 1;
};

/**
 * Idealized temporal prefetcher with recursive <=N-address lookup
 * and unlimited on-chip metadata (Figure 5).
 */
class NLookupPrefetcher : public Prefetcher
{
  public:
    explicit NLookupPrefetcher(const NLookupConfig &config);

    std::string name() const override;
    void onTrigger(const TriggerEvent &event,
                   PrefetchSink &sink) override;

    /**
     * Structural invariants: one index per lookup depth, each
     * auditing clean.  @return empty string if OK, else a
     * description.
     */
    std::string
    audit() const override
    {
        if (lastPos.size() != (cfg.maxDepth ? cfg.maxDepth : 1))
            return "per-depth indices drifted from the configured "
                "maximum depth";
        for (const auto &table : lastPos)
            if (const std::string issue = table.audit();
                !issue.empty())
                return "n-gram index: " + issue;
        return "";
    }

  private:
    NLookupConfig cfg;
    std::vector<LineAddr> hist;
    std::vector<FlatHashMap<std::uint64_t>> lastPos;
};

} // namespace domino

#endif // DOMINO_PREFETCH_NLOOKUP_H
