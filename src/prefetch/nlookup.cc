#include "nlookup.h"

namespace domino
{

namespace
{

/** Rolling hash of the n history elements ending at index `end`. */
std::uint64_t
ngramKey(const std::vector<LineAddr> &hist, std::size_t end,
         unsigned n)
{
    std::uint64_t key = 0x243f6a8885a308d3ULL ^ n;
    for (std::size_t i = end + 1 - n; i <= end; ++i)
        key = mix64(key ^ hist[i]);
    return key;
}

} // anonymous namespace

NGramAnalyzer::NGramAnalyzer(unsigned max_depth)
    : maxN(max_depth ? max_depth : 1),
      lastPos(maxN),
      depthStats(maxN),
      pendingPred(maxN)
{}

void
NGramAnalyzer::observe(LineAddr line)
{
    // 1. Verify predictions made at the previous trigger.
    for (unsigned n = 1; n <= maxN; ++n) {
        auto &pred = pendingPred[n - 1];
        if (pred) {
            if (*pred == line)
                ++depthStats[n - 1].correct;
            pred.reset();
        }
    }

    // 2. Append and look up the n-grams ending at this trigger.
    hist.push_back(line);
    const std::size_t end = hist.size() - 1;
    for (unsigned n = 1; n <= maxN; ++n) {
        if (hist.size() < n)
            break;
        ++depthStats[n - 1].lookups;
        const std::uint64_t key = ngramKey(hist, end, n);
        auto &map = lastPos[n - 1];
        if (const std::uint64_t *pos = map.find(key)) {
            ++depthStats[n - 1].matches;
            // The match ends at position *pos < end; the
            // prediction is the address that followed it.
            pendingPred[n - 1] = hist[*pos + 1];
        }
        map[key] = end;
    }
}

NLookupPrefetcher::NLookupPrefetcher(const NLookupConfig &config)
    : cfg(config), lastPos(config.maxDepth ? config.maxDepth : 1)
{}

std::string
NLookupPrefetcher::name() const
{
    return "NLookup-" + std::to_string(cfg.maxDepth);
}

void
NLookupPrefetcher::onTrigger(const TriggerEvent &event,
                             PrefetchSink &sink)
{
    hist.push_back(event.line);
    const std::size_t end = hist.size() - 1;
    const unsigned max_n = static_cast<unsigned>(
        std::min<std::size_t>(cfg.maxDepth, hist.size()));

    // Recursive lookup: deepest match wins.
    std::optional<std::uint64_t> match_end;
    for (unsigned n = max_n; n >= 1; --n) {
        const std::uint64_t key = ngramKey(hist, end, n);
        if (const std::uint64_t *pos = lastPos[n - 1].find(key)) {
            match_end = *pos;
            break;
        }
    }

    // Update the maps (after the lookup, so matches are to strictly
    // earlier occurrences).
    for (unsigned n = 1; n <= max_n; ++n)
        lastPos[n - 1][ngramKey(hist, end, n)] = end;

    if (!match_end)
        return;
    for (unsigned d = 1; d <= cfg.degree; ++d) {
        const std::uint64_t pos = *match_end + d;
        if (pos >= hist.size())
            break;
        sink.issue(hist[pos], 0, 0);
    }
}

} // namespace domino
