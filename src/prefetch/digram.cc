#include "digram.h"

namespace domino
{

DigramPrefetcher::DigramPrefetcher(const TemporalConfig &config)
    : cfg(config),
      ht(config.htEntries, config.addrsPerRow),
      streams(config.activeStreams),
      rng(config.seed ^ 0xd1)
{}

void
DigramPrefetcher::record(LineAddr line, bool stream_start)
{
    const std::uint64_t pos = ht.append(line, stream_start);
    if (++pendingInRow >= cfg.addrsPerRow) {
        pendingInRow = 0;
        ++meta.writeBlocks;
    }
    // Sampled index update for the (previous, current) pair.
    if (havePrev && rng.chance(cfg.samplingProb)) {
        it[pairKey(prevTrigger, line)] = pos;
        ++meta.readBlocks;
        ++meta.writeBlocks;
    }
    prevTrigger = line;
    havePrev = true;
}

void
DigramPrefetcher::startStream(LineAddr line, PrefetchSink &sink)
{
    if (!havePrev)
        return;
    // One off-chip trip for the index row.
    ++meta.readBlocks;
    const std::uint64_t *hit = it.find(pairKey(prevTrigger, line));
    if (!hit)
        return;
    const std::uint64_t pos = *hit;
    if (!ht.readable(pos + 1))
        return;

    ActiveStream &stream = streams.allocate(nextStreamId++, sink);
    stream.nextPos = pos + 1;
    ++streamsStartedCnt;

    // Second (serial) trip: history row(s); initial degree burst.
    refillFromHistory(ht, stream, cfg.degree, cfg.maxReplayPerStream,
                      meta, cfg.endDetection);
    unsigned issued = 0;
    while (!stream.pending.empty() && issued < cfg.degree) {
        sink.issue(stream.pending.front(), stream.id, 2);
        stream.pending.pop_front();
        ++stream.replayed;
        ++issued;
    }
}

void
DigramPrefetcher::advanceStream(ActiveStream &stream,
                                PrefetchSink &sink)
{
    streams.touch(stream);
    if (cfg.maxReplayPerStream &&
        stream.replayed >= cfg.maxReplayPerStream) {
        return;
    }
    if (stream.pending.empty()) {
        if (refillFromHistory(ht, stream, 1, cfg.maxReplayPerStream,
                              meta, cfg.endDetection) == 0) {
            return;
        }
        if (stream.pending.empty())
            return;
        sink.issue(stream.pending.front(), stream.id, 1);
    } else {
        sink.issue(stream.pending.front(), stream.id, 0);
    }
    stream.pending.pop_front();
    ++stream.replayed;
}

void
DigramPrefetcher::onTrigger(const TriggerEvent &event,
                            PrefetchSink &sink)
{
    if (event.wasPrefetchHit) {
        record(event.line, false);
        if (ActiveStream *s = streams.findById(event.hitStreamId))
            advanceStream(*s, sink);
        prevWasHit = true;
        return;
    }
    startStream(event.line, sink);
    record(event.line, prevWasHit);
    prevWasHit = false;
}

std::string
DigramPrefetcher::audit() const
{
    if (const std::string issue = ht.audit(); !issue.empty())
        return "HT: " + issue;
    if (const std::string issue = it.audit(); !issue.empty())
        return "IT: " + issue;
    if (const std::string issue = streams.audit(); !issue.empty())
        return "streams: " + issue;
    if (pendingInRow >= cfg.addrsPerRow)
        return "LogMiss row counter ran past the row size";
    if (havePrev && prevTrigger == invalidAddr)
        return "pair state claims a previous trigger but holds "
            "the invalid address";
    return "";
}

} // namespace domino
