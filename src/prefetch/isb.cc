#include "isb.h"

namespace domino
{

void
IsbPrefetcher::step(const TriggerEvent &event, PrefetchSink &sink)
{
    const Addr pc = event.pc;
    const LineAddr line = event.line;

    // Predict the per-PC successor chain BEFORE training, so the
    // chain reflects the previous occurrence.
    auto &succ = nextByPc[pc];
    LineAddr cur = line;
    for (unsigned d = 0; d < cfg.degree; ++d) {
        const LineAddr *next = succ.find(cur);
        if (!next)
            break;
        // Idealized: metadata is on-chip, no off-chip trips.
        sink.issue(*next, 0, 0);
        cur = *next;
    }

    // Train: link the previous miss of this PC to the current one.
    if (const LineAddr *last = lastByPc.find(pc))
        succ[*last] = line;
    lastByPc[pc] = line;
}

} // namespace domino
