#include "isb.h"

namespace domino
{

void
IsbPrefetcher::onTrigger(const TriggerEvent &event, PrefetchSink &sink)
{
    const Addr pc = event.pc;
    const LineAddr line = event.line;

    // Predict the per-PC successor chain BEFORE training, so the
    // chain reflects the previous occurrence.
    auto &succ = nextByPc[pc];
    LineAddr cur = line;
    for (unsigned d = 0; d < cfg.degree; ++d) {
        const auto it = succ.find(cur);
        if (it == succ.end())
            break;
        // Idealized: metadata is on-chip, no off-chip trips.
        sink.issue(it->second, 0, 0);
        cur = it->second;
    }

    // Train: link the previous miss of this PC to the current one.
    const auto last = lastByPc.find(pc);
    if (last != lastByPc.end())
        succ[last->second] = line;
    lastByPc[pc] = line;
}

} // namespace domino
