/**
 * @file
 * The circular History Table (HT) shared by the temporal
 * prefetchers.
 *
 * The HT is a circular log of triggering-event addresses kept in
 * main memory, packed 12 addresses per 64 B row (Section V.A).
 * Positions are monotonically increasing; a position is readable
 * while it is still within the retention window (capacity).
 */

#ifndef DOMINO_PREFETCH_HISTORY_H
#define DOMINO_PREFETCH_HISTORY_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace domino
{

/** Circular history log with monotonic positions. */
class CircularHistory
{
  public:
    /**
     * @param entries capacity in addresses.
     * @param addrs_per_row addresses per 64 B row (traffic unit).
     */
    explicit CircularHistory(std::uint64_t entries,
                             unsigned addrs_per_row = 12)
        : cap(entries ? entries : 1), rowSize(addrs_per_row)
    {
        // Backing storage grows lazily up to the capacity: a run
        // that appends far fewer addresses than the retention
        // window (the common case for bench traces against a 1 M-
        // entry HT) never pays for zeroing the full window.
    }

    /**
     * Append an address; @return its (monotonic) position.
     *
     * @param stream_start true when the triggering event was a
     *        demand miss (a break in the covered stream): the
     *        stream-end detection heuristic [10], [40] stops replay
     *        at such context boundaries.
     */
    std::uint64_t
    append(LineAddr line, bool stream_start = false)
    {
        DCHECK_NE(line, invalidAddr);
        const std::uint64_t pos = total;
        if (buf.size() < cap) {
            // While the log has not wrapped, pos % cap == pos ==
            // buf.size(): appending extends the storage in place.
            buf.push_back(line);
            startFlag.push_back(stream_start ? 1 : 0);
        } else {
            buf[pos % cap] = line;
            startFlag[pos % cap] = stream_start ? 1 : 0;
        }
        ++total;
        return pos;
    }

    /** True if the entry at @p pos began a new context. */
    bool
    startsStream(std::uint64_t pos) const
    {
        return startFlag[pos % cap] != 0;
    }

    /** Total addresses ever appended (== next position). */
    std::uint64_t size() const { return total; }

    /** Capacity in addresses. */
    std::uint64_t capacity() const { return cap; }

    /** True if the position is still within the retention window. */
    bool
    readable(std::uint64_t pos) const
    {
        return pos < total && pos + cap >= total;
    }

    /** Address at a readable position. */
    LineAddr at(std::uint64_t pos) const { return buf[pos % cap]; }

    /** Addresses per row (row = unit of off-chip transfer). */
    unsigned addrsPerRow() const { return rowSize; }

    /** Row number containing a position. */
    std::uint64_t rowOf(std::uint64_t pos) const
    {
        return pos / rowSize;
    }

    /** First position of the row after the one containing pos. */
    std::uint64_t
    nextRowStart(std::uint64_t pos) const
    {
        return (rowOf(pos) + 1) * rowSize;
    }

    /**
     * Verify the circular log's invariants: backing storage matches
     * the configured capacity, start flags are boolean, and every
     * position inside the retention window holds a written (valid)
     * address.  @return empty string if OK, else a description.
     */
    std::string
    audit() const
    {
        if (cap == 0 || rowSize == 0)
            return "degenerate geometry (cap or row size is 0)";
        // Lazily grown storage: exactly min(total, cap) slots have
        // ever been written, and both arrays grow in lockstep.
        const std::uint64_t grown = total < cap ? total : cap;
        if (buf.size() != grown || startFlag.size() != grown)
            return "backing storage does not match capacity";
        for (std::uint64_t i = 0; i < grown; ++i)
            if (startFlag[i] > 1)
                return "non-boolean start flag at slot " +
                    std::to_string(i);
        const std::uint64_t oldest = total > cap ? total - cap : 0;
        for (std::uint64_t pos = oldest; pos < total; ++pos)
            if (buf[pos % cap] == invalidAddr)
                return "unwritten address inside the retention "
                    "window at position " + std::to_string(pos);
        return "";
    }

  private:
    /** Test-only backdoor for corrupting the log in audit tests. */
    friend struct HistoryTestPeer;
    std::uint64_t cap;
    unsigned rowSize;
    std::vector<LineAddr> buf;
    std::vector<std::uint8_t> startFlag;
    std::uint64_t total = 0;
};

} // namespace domino

#endif // DOMINO_PREFETCH_HISTORY_H
