/**
 * @file
 * Active-stream bookkeeping shared by the temporal prefetchers.
 *
 * All three history-based prefetchers (STMS, Digram, Domino) track a
 * small number of active streams (four in the paper); a miss
 * allocates a new stream in place of the least-recently-used one,
 * and a prefetch hit advances the stream that produced the block.
 */

#ifndef DOMINO_PREFETCH_STREAM_TRACKER_H
#define DOMINO_PREFETCH_STREAM_TRACKER_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.h"
#include "prefetch/history.h"
#include "prefetch/prefetcher.h"

namespace domino
{

/** One active replay stream (PointBuf contents + read cursor). */
struct ActiveStream
{
    /** Tag used to credit prefetch-buffer hits. */
    std::uint32_t id = 0;
    /** Addresses fetched from the HT, not yet issued (PointBuf). */
    std::deque<LineAddr> pending;
    /** Next HT position to read when pending runs dry. */
    std::uint64_t nextPos = 0;
    /** Total addresses this stream has supplied (stream-end cap). */
    unsigned replayed = 0;
    /** Recency stamp for LRU replacement. */
    std::uint64_t lastUse = 0;
    /** False for table slots that were never allocated. */
    bool valid = false;
    /** Set when replay reached a recorded context boundary. */
    bool ended = false;
};

/** Fixed-size LRU table of active streams. */
class StreamTable
{
  public:
    explicit StreamTable(unsigned capacity)
        : slots(capacity ? capacity : 1)
    {}

    /** Find the stream with the given id, or nullptr. */
    ActiveStream *
    findById(std::uint32_t id)
    {
        for (auto &s : slots)
            if (s.valid && s.id == id)
                return &s;
        return nullptr;
    }

    /**
     * Allocate a stream slot for a new stream, replacing the LRU
     * one.  The replaced stream's buffered prefetches are discarded
     * through the sink, following the paper.
     */
    ActiveStream &
    allocate(std::uint32_t new_id, PrefetchSink &sink)
    {
        ActiveStream *victim = &slots[0];
        for (auto &s : slots) {
            if (!s.valid) {
                victim = &s;
                break;
            }
            if (s.lastUse < victim->lastUse)
                victim = &s;
        }
        if (victim->valid)
            sink.dropStream(victim->id);
        *victim = ActiveStream{};
        victim->valid = true;
        victim->id = new_id;
        victim->lastUse = ++tick;
        return *victim;
    }

    /** Mark a stream most recently used. */
    void touch(ActiveStream &s) { s.lastUse = ++tick; }

    /** Remove a stream (e.g. a discarded embryonic stream). */
    void
    release(ActiveStream &s)
    {
        s = ActiveStream{};
    }

    /**
     * Verify the table's structural invariants: valid slots carry
     * distinct ids and recency stamps no newer than the clock.
     * @return empty string if OK, else a description.
     */
    std::string
    audit() const
    {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            const ActiveStream &s = slots[i];
            if (!s.valid)
                continue;
            if (s.lastUse > tick)
                return "stream recency stamp from the future";
            for (std::size_t j = i + 1; j < slots.size(); ++j)
                if (slots[j].valid && slots[j].id == s.id)
                    return "duplicate active-stream id " +
                        std::to_string(s.id);
        }
        return "";
    }

  private:
    std::vector<ActiveStream> slots;
    std::uint64_t tick = 0;
};

/**
 * Refill a stream's PointBuf from the history table until it holds
 * at least @p want addresses (or the history ends / the stream-end
 * cap is reached).  Each row read is one off-chip metadata block.
 *
 * @return number of rows read.
 */
inline unsigned
refillFromHistory(const CircularHistory &ht, ActiveStream &stream,
                  std::size_t want, unsigned max_replay,
                  MetadataStats &meta, bool end_detection = true)
{
    unsigned rows_read = 0;
    while (stream.pending.size() < want && !stream.ended) {
        if (max_replay &&
            stream.replayed + stream.pending.size() >= max_replay) {
            break;
        }
        if (!ht.readable(stream.nextPos))
            break;
        // Stream-end detection: a recorded context boundary
        // terminates the replay.
        if (end_detection && ht.startsStream(stream.nextPos)) {
            stream.ended = true;
            break;
        }
        // Read the row containing nextPos; consume addresses up to
        // the end of that row (or the next boundary).
        const std::uint64_t row_end = ht.nextRowStart(stream.nextPos);
        ++meta.readBlocks;
        ++rows_read;
        while (stream.nextPos < row_end &&
               ht.readable(stream.nextPos)) {
            if (end_detection && ht.startsStream(stream.nextPos)) {
                stream.ended = true;
                break;
            }
            stream.pending.push_back(ht.at(stream.nextPos));
            ++stream.nextPos;
        }
    }
    return rows_read;
}

} // namespace domino

#endif // DOMINO_PREFETCH_STREAM_TRACKER_H
