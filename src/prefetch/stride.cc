#include "stride.h"

namespace domino
{

StridePrefetcher::StridePrefetcher(const StrideConfig &config)
    : cfg(config), rpt(config.rptEntries ? config.rptEntries : 1)
{}

void
StridePrefetcher::onTrigger(const TriggerEvent &event,
                            PrefetchSink &sink)
{
    RptEntry &entry = rpt[mix64(event.pc) % rpt.size()];

    if (!entry.valid || entry.pc != event.pc) {
        // Allocate (direct-mapped on the PC hash).
        entry = RptEntry{};
        entry.valid = true;
        entry.pc = event.pc;
        entry.lastLine = event.line;
        return;
    }

    const std::int64_t stride =
        static_cast<std::int64_t>(event.line) -
        static_cast<std::int64_t>(entry.lastLine);
    const bool matches = stride == entry.stride && stride != 0;

    // Two-bit confidence state machine.
    switch (entry.state) {
      case State::Initial:
        entry.state = matches ? State::Steady : State::Transient;
        break;
      case State::Transient:
        entry.state = matches ? State::Steady : State::Transient;
        break;
      case State::Steady:
        if (!matches)
            entry.state = State::Initial;
        break;
    }
    if (!matches)
        entry.stride = stride;
    entry.lastLine = event.line;

    if (entry.state == State::Steady) {
        for (unsigned d = 1; d <= cfg.degree; ++d) {
            const std::int64_t target =
                static_cast<std::int64_t>(event.line) +
                entry.stride * static_cast<std::int64_t>(d);
            if (target <= 0)
                break;
            sink.issue(static_cast<LineAddr>(target), 0, 0);
        }
    }
}

} // namespace domino
