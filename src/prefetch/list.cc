#include "list.h"

namespace domino
{

void
ListPrefetcher::issueAhead(PrefetchSink &sink)
{
    if (!active)
        return;
    const std::size_t end =
        std::min<std::size_t>(pointer + cfg.degree, active->size());
    for (std::size_t i = pointer; i < end; ++i)
        sink.issue((*active)[i], 0, 0);
}

void
ListPrefetcher::onTrigger(const TriggerEvent &event,
                          PrefetchSink &sink)
{
    const LineAddr line = event.line;
    const bool is_miss = !event.wasPrefetchHit;

    // --- region segmentation: a miss right after a covered run
    // (the temporal prefetchers' boundary heuristic), the first
    // trigger ever, a revisit of the current region's head (the
    // region repeated -- the bootstrap case before any coverage
    // exists), or a known region head.
    const bool region_start = is_miss &&
        (prevWasHit || !recordingActive || line == recordingHead ||
         recording.size() >= cfg.maxListLength ||
         lists.find(line) != lists.end());

    if (region_start) {
        // Seal the list under construction.
        if (recordingActive && !recording.empty() &&
            lists.size() < cfg.maxLists) {
            lists[recordingHead] = recording;
        }
        recordingHead = line;
        recording.clear();
        recordingActive = true;

        // Arm replay if a list exists for this head.
        const auto it = lists.find(line);
        if (it != lists.end()) {
            active = &it->second;
            pointer = 0;
            issueAhead(sink);
        } else {
            active = nullptr;
        }
    } else if (recordingActive &&
               recording.size() < cfg.maxListLength) {
        recording.push_back(line);
    }

    // --- replay pointer maintenance with the comparison window.
    if (active && !region_start) {
        const std::size_t end = std::min<std::size_t>(
            pointer + cfg.syncWindow, active->size());
        for (std::size_t i = pointer; i < end; ++i) {
            if ((*active)[i] == line) {
                pointer = i + 1;
                issueAhead(sink);
                break;
            }
        }
        if (pointer >= active->size())
            active = nullptr;
    }

    prevWasHit = event.wasPrefetchHit;
}

} // namespace domino
