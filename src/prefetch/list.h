/**
 * @file
 * List prefetcher, modelled on the IBM Blue Gene/Q "List
 * Prefetching" unit the paper cites as the industrial incarnation
 * of temporal prefetching [24].
 *
 * Blue Gene/Q records the L1 miss sequence of a (software-marked)
 * code region into a list, and on the region's next execution
 * replays the list, keeping a comparison window that re-synchronises
 * the list pointer when the observed misses deviate.  Here the
 * region boundaries come from the same context-boundary heuristic
 * the temporal prefetchers use (a miss right after a covered run),
 * making the unit usable without software hints.
 */

#ifndef DOMINO_PREFETCH_LIST_H
#define DOMINO_PREFETCH_LIST_H

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.h"

namespace domino
{

/** Configuration of the list prefetcher. */
struct ListConfig
{
    /** Prefetch depth ahead of the list pointer. */
    unsigned degree = 4;
    /** Re-synchronisation window: how far ahead of the pointer a
     *  miss may match to pull the pointer forward. */
    unsigned syncWindow = 8;
    /** Maximum recorded list length per region head; reaching it
     *  splits the region (hardware list splitting). */
    unsigned maxListLength = 64;
    /** Lists kept (keyed by region-head address; LRU-less bound). */
    std::uint64_t maxLists = 1 << 16;
};

/** Blue Gene/Q-style list prefetcher. */
class ListPrefetcher : public Prefetcher
{
  public:
    explicit ListPrefetcher(const ListConfig &config)
        : cfg(config)
    {}

    std::string name() const override { return "List"; }
    void onTrigger(const TriggerEvent &event,
                   PrefetchSink &sink) override;

    /** Number of recorded lists (diagnostics). */
    std::size_t recordedLists() const { return lists.size(); }

    /**
     * Structural invariants of the recording/replay state.  The
     * list map is deliberately not iterated (iteration order of an
     * unordered container must stay invisible); per-list bounds are
     * enforced at record time.  @return empty string if OK, else a
     * description.
     */
    std::string
    audit() const override
    {
        if (lists.size() > cfg.maxLists)
            return "list table ran past its configured bound";
        if (recording.size() > cfg.maxListLength)
            return "recording ran past the maximum list length";
        if (recordingActive && recordingHead == invalidAddr)
            return "active recording without a region head";
        if (active && pointer > active->size())
            return "replay pointer ran past the active list";
        return "";
    }

  private:
    void issueAhead(PrefetchSink &sink);

    ListConfig cfg;
    /** Region head -> recorded miss list. */
    std::unordered_map<LineAddr, std::vector<LineAddr>> lists;

    /** Recording state: the list being built. */
    LineAddr recordingHead = invalidAddr;
    std::vector<LineAddr> recording;
    bool recordingActive = false;

    /** Replay state: active list and pointer. */
    const std::vector<LineAddr> *active = nullptr;
    std::size_t pointer = 0;

    bool prevWasHit = false;
};

} // namespace domino

#endif // DOMINO_PREFETCH_LIST_H
