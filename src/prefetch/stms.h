/**
 * @file
 * Sampled Temporal Memory Streaming (STMS) [Wenisch et al.,
 * HPCA 2009] -- the state-of-the-art temporal prefetcher the paper
 * compares against and builds Domino upon.
 *
 * STMS keeps a per-core History Table (circular miss log) and an
 * Index Table mapping a *single* miss address to its last position
 * in the history; both live in main memory.  On a miss it reads the
 * index entry (one off-chip round trip), then the history row it
 * points at (a second round trip), and replays the addresses that
 * followed.  Index updates are sampled (12.5 %).
 */

#ifndef DOMINO_PREFETCH_STMS_H
#define DOMINO_PREFETCH_STMS_H

#include <cstdint>

#include "common/flat_map.h"
#include "common/prng.h"
#include "prefetch/history.h"
#include "prefetch/prefetcher.h"
#include "prefetch/stream_tracker.h"

namespace domino
{

/** STMS prefetcher with off-chip metadata accounting. */
class StmsPrefetcher : public Prefetcher
{
  public:
    explicit StmsPrefetcher(const TemporalConfig &config);

    std::string name() const override { return "STMS"; }

    void
    onTrigger(const TriggerEvent &event, PrefetchSink &sink) override
    {
        step(event, sink);
    }

    /** Batched == scalar (one virtual call, non-virtual steps,
     *  next event's index row prefetched inside the batch). */
    void
    trainPredictMany(std::span<const TriggerEvent> events,
                     PrefetchSink &sink) override
    {
        for (std::size_t i = 0; i < events.size(); ++i) {
            if (i + 1 < events.size())
                it.prefetchKey(events[i + 1].line);
            step(events[i], sink);
        }
    }

    /** Pull the index-table slot a trigger for @p line probes. */
    void
    warmMetadata(LineAddr line, Addr pc) const override
    {
        (void)pc;
        it.prefetchKey(line);
    }

    /**
     * Structural invariants of the metadata tables: the HT log,
     * the index map, and the active-stream table must all audit
     * clean.  @return empty string if OK, else a description.
     */
    std::string audit() const override;

    /** Number of streams ever started (testing/diagnostics). */
    std::uint64_t streamsStarted() const { return streamsStartedCnt; }

  private:
    /** The scalar trigger step (shared by both entry points). */
    void step(const TriggerEvent &event, PrefetchSink &sink);
    void record(LineAddr line, bool stream_start);
    void startStream(LineAddr line, PrefetchSink &sink);
    void advanceStream(ActiveStream &stream, PrefetchSink &sink);

    TemporalConfig cfg;
    CircularHistory ht;
    /** Index Table: last HT position of each miss address.
     *  Modelled unlimited, as in the paper's STMS configuration.
     *  Flat map: the simulated behaviour depends only on
     *  find/insert results, never on iteration order. */
    FlatHashMap<std::uint64_t> it{1u << 16};
    StreamTable streams;
    Prng rng;
    std::uint32_t nextStreamId = 1;
    std::uint64_t pendingInRow = 0;
    bool prevWasHit = false;
    std::uint64_t streamsStartedCnt = 0;
};

} // namespace domino

#endif // DOMINO_PREFETCH_STMS_H
