/**
 * @file
 * Markov prefetcher [Joseph & Grunwald, ISCA 1997] -- the classic
 * ancestor of temporal prefetching the paper cites as [8].
 *
 * A first-order Markov model over the miss sequence: each miss
 * address maps to its most likely successors (an LRU list of the
 * last few observed successors), and a trigger prefetches all of
 * them.  Unlike STMS/Domino, the Markov table is conceptually
 * on-chip and there is no history replay: prediction depth is
 * limited to the successor fan-out, which is why correlation
 * prefetchers evolved into streaming designs.  Included as a
 * baseline and as the degenerate "EIT without pointers" design
 * point: it shows what Domino's super-entries would buy WITHOUT the
 * HT stream replay behind them.
 */

#ifndef DOMINO_PREFETCH_MARKOV_H
#define DOMINO_PREFETCH_MARKOV_H

#include <cstdint>
#include <unordered_map>

#include "common/lru.h"
#include "prefetch/prefetcher.h"

namespace domino
{

/** Configuration of the Markov prefetcher. */
struct MarkovConfig
{
    /** Successors kept per address (fan-out; classic designs: 2-4). */
    unsigned successors = 2;
    /** Table capacity in addresses (0 = unlimited). */
    std::uint64_t tableEntries = 0;
};

/** First-order Markov (pair-correlation) prefetcher. */
class MarkovPrefetcher : public Prefetcher
{
  public:
    explicit MarkovPrefetcher(const MarkovConfig &config)
        : cfg(config)
    {}

    std::string name() const override { return "Markov"; }
    void onTrigger(const TriggerEvent &event,
                   PrefetchSink &sink) override;

    /** Number of trained addresses (diagnostics). */
    std::size_t trainedAddresses() const { return table.size(); }

    /**
     * Structural invariants of the correlation table: the bounded-
     * table capacity holds and every successor set respects its
     * fan-out.  @return empty string if OK, else a description.
     */
    std::string audit() const override;

  private:
    MarkovConfig cfg;
    /** addr -> LRU list of observed successors.
     *
     *  Deliberately NOT a FlatHashMap: the bounded-table mode picks
     *  its eviction victim as `table.erase(table.begin())`, i.e. the
     *  victim depends on container iteration order, which is part of
     *  the committed figure output.  Changing the container would
     *  silently change bench_intro results.  (The pure maps in
     *  STMS/Digram/ISB/NLookup carry no such dependence and were
     *  flattened.) */
    std::unordered_map<LineAddr, LruSet<LineAddr>> table;
    LineAddr prev = invalidAddr;
    bool havePrev = false;
};

} // namespace domino

#endif // DOMINO_PREFETCH_MARKOV_H
