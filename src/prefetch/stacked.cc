#include "stacked.h"

namespace domino
{

void
StackedPrefetcher::onTrigger(const TriggerEvent &event,
                             PrefetchSink &sink)
{
    MappedSink primary_sink(sink, 0);
    MappedSink secondary_sink(sink, 1);

    if (event.wasPrefetchHit) {
        TriggerEvent child = event;
        child.hitStreamId = event.hitStreamId >> 1;
        if ((event.hitStreamId & 1) == 0)
            primary->onTrigger(child, primary_sink);
        else
            secondary->onTrigger(child, secondary_sink);
        return;
    }

    primary->onTrigger(event, primary_sink);
    secondary->onTrigger(event, secondary_sink);
}

} // namespace domino
