/**
 * @file
 * Irregular Stream Buffer (ISB) [Jain & Lin, MICRO 2013] in its
 * *idealized PC/AC* form, as configured in the paper (Section IV.D):
 * PC-localized address correlation with an infinite history table.
 *
 * For every static load PC, ISB records the miss that followed each
 * miss of that PC, and on a trigger replays the per-PC successor
 * chain.  The paper shows PC localization breaks the strong global
 * temporal correlation of server workloads, which is why ISB trails
 * STMS and Domino (Figures 1, 11, 13).
 */

#ifndef DOMINO_PREFETCH_ISB_H
#define DOMINO_PREFETCH_ISB_H

#include <cstdint>

#include "common/flat_map.h"
#include "prefetch/prefetcher.h"

namespace domino
{

/** Configuration for the idealized ISB. */
struct IsbConfig
{
    /** Prefetch degree (chain depth replayed per trigger). */
    unsigned degree = 4;
};

/** Idealized PC/AC ISB prefetcher (on-chip, infinite metadata). */
class IsbPrefetcher : public Prefetcher
{
  public:
    explicit IsbPrefetcher(const IsbConfig &config) : cfg(config) {}

    std::string name() const override { return "ISB"; }

    void
    onTrigger(const TriggerEvent &event, PrefetchSink &sink) override
    {
        step(event, sink);
    }

    /** Batched == scalar with one virtual call and non-virtual
     *  steps.  Dispatch amortisation only: the per-PC maps are
     *  small and cache-resident, so row-warming hints (which is
     *  why warmMetadata is left as the no-op default here) cost
     *  more than they hide. */
    void
    trainPredictMany(std::span<const TriggerEvent> events,
                     PrefetchSink &sink) override
    {
        for (const TriggerEvent &event : events)
            step(event, sink);
    }

    /** Number of distinct PCs trained (diagnostics). */
    std::size_t trainedPcs() const { return lastByPc.size(); }

    /**
     * Structural invariants of the training maps.  @return empty
     * string if OK, else a description.
     */
    std::string
    audit() const override
    {
        if (const std::string issue = nextByPc.audit();
            !issue.empty())
            return "successor map: " + issue;
        if (const std::string issue = lastByPc.audit();
            !issue.empty())
            return "last-miss map: " + issue;
        return "";
    }

  private:
    /** The scalar trigger step (shared by both entry points). */
    void step(const TriggerEvent &event, PrefetchSink &sink);

    IsbConfig cfg;
    /** Per-PC successor map: addr -> next addr for that PC.
     *  Flat maps: behaviour never depends on iteration order. */
    FlatHashMap<FlatHashMap<LineAddr>> nextByPc;
    /** Last miss address observed per PC. */
    FlatHashMap<LineAddr> lastByPc;
};

} // namespace domino

#endif // DOMINO_PREFETCH_ISB_H
