/**
 * @file
 * Spatio-temporal stacking of two prefetchers (Figure 16).
 *
 * The paper stacks Domino on top of VLDP: VLDP handles spatial
 * misses and Domino "trains and prefetches on misses that VLDP
 * cannot capture".  The wrapper routes triggering events
 * accordingly:
 *
 *  - a demand miss is seen by both techniques;
 *  - a prefetch hit is seen only by the technique whose stream
 *    produced the block (a miss covered by VLDP never appears in
 *    Domino's trigger sequence, and vice versa).
 *
 * Stream ids of the two children are disambiguated by the low bit.
 */

#ifndef DOMINO_PREFETCH_STACKED_H
#define DOMINO_PREFETCH_STACKED_H

#include <memory>
#include <utility>

#include "prefetch/prefetcher.h"

namespace domino
{

/** Two prefetchers sharing one prefetch buffer. */
class StackedPrefetcher : public Prefetcher
{
  public:
    StackedPrefetcher(std::unique_ptr<Prefetcher> primary_in,
                      std::unique_ptr<Prefetcher> secondary_in)
        : primary(std::move(primary_in)),
          secondary(std::move(secondary_in))
    {}

    std::string
    name() const override
    {
        return primary->name() + "+" + secondary->name();
    }

    void onTrigger(const TriggerEvent &event,
                   PrefetchSink &sink) override;

    MetadataStats
    metadata() const override
    {
        MetadataStats sum = primary->metadata();
        const MetadataStats s = secondary->metadata();
        sum.readBlocks += s.readBlocks;
        sum.writeBlocks += s.writeBlocks;
        return sum;
    }

  private:
    /** Sink proxy remapping child stream ids into a shared space. */
    class MappedSink : public PrefetchSink
    {
      public:
        MappedSink(PrefetchSink &inner, unsigned tag)
            : inner(inner), tag(tag)
        {}

        void
        issue(LineAddr line, std::uint32_t stream_id,
              unsigned metadata_trips) override
        {
            inner.issue(line, (stream_id << 1) | tag, metadata_trips);
        }

        void
        dropStream(std::uint32_t stream_id) override
        {
            inner.dropStream((stream_id << 1) | tag);
        }

      private:
        PrefetchSink &inner;
        unsigned tag;
    };

    std::unique_ptr<Prefetcher> primary;
    std::unique_ptr<Prefetcher> secondary;
};

} // namespace domino

#endif // DOMINO_PREFETCH_STACKED_H
