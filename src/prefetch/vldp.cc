#include "vldp.h"

#include <algorithm>

namespace domino
{

VldpPrefetcher::VldpPrefetcher(const VldpConfig &config)
    : cfg(config), dhb(config.dhbEntries),
      dpt{FlatHashMap<std::int32_t>(1u << 12),
          FlatHashMap<std::int32_t>(1u << 12),
          FlatHashMap<std::int32_t>(1u << 12)},
      opt(config.optEntries, 0)
{}

std::uint64_t
VldpPrefetcher::packKey(const std::int32_t *deltas, unsigned n)
{
    // Deltas are within a page: |delta| < 64, so 16 bits are ample.
    std::uint64_t key = n;
    for (unsigned i = 0; i < n; ++i) {
        key = (key << 16) |
            (static_cast<std::uint16_t>(deltas[i]) & 0xffff);
    }
    return key;
}

VldpPrefetcher::DhbEntry *
VldpPrefetcher::findPage(std::uint64_t page)
{
    for (auto &e : dhb)
        if (e.valid && e.page == page)
            return &e;
    return nullptr;
}

VldpPrefetcher::DhbEntry &
VldpPrefetcher::allocatePage(std::uint64_t page)
{
    DhbEntry *victim = &dhb[0];
    for (auto &e : dhb) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    *victim = DhbEntry{};
    victim->valid = true;
    victim->page = page;
    return *victim;
}

bool
VldpPrefetcher::lookupDelta(const std::vector<std::int32_t> &history,
                            std::int32_t &out) const
{
    // Deepest-match-first among the DPTs.
    const unsigned depth =
        static_cast<unsigned>(std::min<std::size_t>(history.size(), 3));
    for (unsigned n = depth; n >= 1; --n) {
        const std::uint64_t key =
            packKey(history.data() + history.size() - n, n);
        if (const std::int32_t *hit = dpt[n - 1].find(key)) {
            out = *hit;
            return true;
        }
    }
    return false;
}

void
VldpPrefetcher::issueChain(std::uint64_t page,
                           std::uint32_t start_offset,
                           std::vector<std::int32_t> history,
                           bool have_first, std::int32_t first_delta,
                           PrefetchSink &sink)
{
    // Chain predictions: each predicted delta is appended to the
    // speculative history and used to predict further (the paper
    // notes this compounding is what hurts VLDP's accuracy at
    // degree > 1 on server workloads).
    std::int64_t offset = start_offset;
    const std::uint64_t page_base = page << (pageBits - blockBits);
    for (unsigned d = 0; d < cfg.degree; ++d) {
        std::int32_t delta;
        if (have_first) {
            delta = first_delta;
            have_first = false;
        } else if (!lookupDelta(history, delta)) {
            break;
        }
        offset += delta;
        if (offset < 0 ||
            offset >= static_cast<std::int64_t>(blocksPerPage)) {
            break;
        }
        sink.issue(page_base + static_cast<std::uint64_t>(offset),
                   0, 0);
        history.push_back(delta);
        if (history.size() > 3)
            history.erase(history.begin());
    }
}

void
VldpPrefetcher::step(const TriggerEvent &event, PrefetchSink &sink)
{
    const std::uint64_t page = pageOfLine(event.line);
    const auto offset =
        static_cast<std::uint32_t>(pageOffsetOfLine(event.line));

    DhbEntry *entry = findPage(page);
    if (!entry) {
        // First touch of this page: consult the OPT for the first
        // delta, then chain further predictions from the DPTs.
        entry = &allocatePage(page);
        entry->lastOffset = offset;
        entry->firstOffset = offset;
        entry->lastUse = ++tick;
        const std::int32_t first_delta = opt[offset % cfg.optEntries];
        if (first_delta != 0)
            issueChain(page, offset, {}, true, first_delta, sink);
        return;
    }

    // Known page: compute the new delta and train the tables.
    const std::int32_t delta =
        static_cast<std::int32_t>(offset) -
        static_cast<std::int32_t>(entry->lastOffset);
    entry->lastUse = ++tick;
    if (delta == 0)
        return;

    if (!entry->sawSecond) {
        // The second access in a page trains the OPT.
        opt[entry->firstOffset % cfg.optEntries] = delta;
        entry->sawSecond = true;
    }
    // Train the DPTs: delta-history -> next delta.
    const unsigned depth = static_cast<unsigned>(
        std::min<std::size_t>(entry->deltas.size(), 3));
    for (unsigned n = 1; n <= depth; ++n) {
        const std::uint64_t key = packKey(
            entry->deltas.data() + entry->deltas.size() - n, n);
        dpt[n - 1][key] = delta;
    }

    entry->deltas.push_back(delta);
    if (entry->deltas.size() > 3)
        entry->deltas.erase(entry->deltas.begin());
    entry->lastOffset = offset;

    issueChain(page, offset, entry->deltas, false, 0, sink);
}

} // namespace domino
