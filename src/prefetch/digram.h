/**
 * @file
 * Digram [Wenisch, PhD thesis 2007] -- a temporal prefetcher whose
 * Index Table is keyed by the last *two* consecutive triggering
 * events.
 *
 * Two-address lookup picks longer (more often correct) streams than
 * STMS's single-address lookup, but can never prefetch the first two
 * misses of a stream and finds a match less often; with the
 * short-stream distributions of server workloads the two effects
 * roughly cancel (Figures 2 and 11), which is why the thesis
 * discarded the idea -- and what Domino's combined lookup fixes.
 */

#ifndef DOMINO_PREFETCH_DIGRAM_H
#define DOMINO_PREFETCH_DIGRAM_H

#include <cstdint>

#include "common/flat_map.h"
#include "common/prng.h"
#include "prefetch/history.h"
#include "prefetch/prefetcher.h"
#include "prefetch/stream_tracker.h"

namespace domino
{

/** Digram prefetcher: pair-indexed temporal streaming. */
class DigramPrefetcher : public Prefetcher
{
  public:
    explicit DigramPrefetcher(const TemporalConfig &config);

    std::string name() const override { return "Digram"; }
    void onTrigger(const TriggerEvent &event,
                   PrefetchSink &sink) override;

    /**
     * Structural invariants of the metadata tables: the HT log,
     * the pair-index map, and the active-stream table must all
     * audit clean.  @return empty string if OK, else a description.
     */
    std::string audit() const override;

    /** Number of streams ever started (testing/diagnostics). */
    std::uint64_t streamsStarted() const { return streamsStartedCnt; }

  private:
    void record(LineAddr line, bool stream_start);
    void startStream(LineAddr line, PrefetchSink &sink);
    void advanceStream(ActiveStream &stream, PrefetchSink &sink);

    TemporalConfig cfg;
    CircularHistory ht;
    /** Index: (previous, current) pair -> HT position of current.
     *  Flat map: behaviour never depends on iteration order. */
    FlatHashMap<std::uint64_t> it{1u << 16};
    StreamTable streams;
    Prng rng;
    std::uint32_t nextStreamId = 1;
    std::uint64_t pendingInRow = 0;
    std::uint64_t streamsStartedCnt = 0;
    bool prevWasHit = false;

    /** Previous triggering event (for pair formation). */
    LineAddr prevTrigger = invalidAddr;
    bool havePrev = false;
};

} // namespace domino

#endif // DOMINO_PREFETCH_DIGRAM_H
