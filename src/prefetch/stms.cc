#include "stms.h"

namespace domino
{

StmsPrefetcher::StmsPrefetcher(const TemporalConfig &config)
    : cfg(config),
      ht(config.htEntries, config.addrsPerRow),
      streams(config.activeStreams),
      rng(config.seed)
{}

void
StmsPrefetcher::record(LineAddr line, bool stream_start)
{
    const std::uint64_t pos = ht.append(line, stream_start);
    // LogMiss drains one row at a time: one off-chip write per
    // addrsPerRow appended triggers.
    if (++pendingInRow >= cfg.addrsPerRow) {
        pendingInRow = 0;
        ++meta.writeBlocks;
    }
    // Sampled index update: a read-modify-write of the index row.
    if (rng.chance(cfg.samplingProb)) {
        it[line] = pos;
        ++meta.readBlocks;
        ++meta.writeBlocks;
    }
}

void
StmsPrefetcher::startStream(LineAddr line, PrefetchSink &sink)
{
    // First off-chip trip: read the index row.
    ++meta.readBlocks;
    const std::uint64_t *hit = it.find(line);
    if (!hit)
        return;
    const std::uint64_t pos = *hit;
    if (!ht.readable(pos + 1))
        return;

    ActiveStream &stream = streams.allocate(nextStreamId++, sink);
    stream.nextPos = pos + 1;
    ++streamsStartedCnt;

    // Second off-chip trip (serial after the first): read the
    // history row(s) and issue the initial burst of `degree`
    // prefetches.
    refillFromHistory(ht, stream, cfg.degree, cfg.maxReplayPerStream,
                      meta, cfg.endDetection);
    unsigned issued = 0;
    while (!stream.pending.empty() && issued < cfg.degree) {
        sink.issue(stream.pending.front(), stream.id, 2);
        stream.pending.pop_front();
        ++stream.replayed;
        ++issued;
    }
}

void
StmsPrefetcher::advanceStream(ActiveStream &stream, PrefetchSink &sink)
{
    streams.touch(stream);
    if (cfg.maxReplayPerStream &&
        stream.replayed >= cfg.maxReplayPerStream) {
        return;  // stream-end heuristic: stop extending
    }
    if (stream.pending.empty()) {
        // Need another history row: one off-chip trip before the
        // prefetch can issue.
        if (refillFromHistory(ht, stream, 1, cfg.maxReplayPerStream,
                              meta, cfg.endDetection) == 0) {
            return;
        }
        if (stream.pending.empty())
            return;
        sink.issue(stream.pending.front(), stream.id, 1);
    } else {
        sink.issue(stream.pending.front(), stream.id, 0);
    }
    stream.pending.pop_front();
    ++stream.replayed;
}

void
StmsPrefetcher::step(const TriggerEvent &event, PrefetchSink &sink)
{
    if (event.wasPrefetchHit) {
        record(event.line, false);
        if (ActiveStream *s = streams.findById(event.hitStreamId))
            advanceStream(*s, sink);
        prevWasHit = true;
        return;
    }
    // Look up before recording so the index still points at the
    // *previous* occurrence of this address, not the current one.
    startStream(event.line, sink);
    // A miss right after a covered run marks a context boundary
    // (stream-end detection).
    record(event.line, prevWasHit);
    prevWasHit = false;
}

std::string
StmsPrefetcher::audit() const
{
    if (const std::string issue = ht.audit(); !issue.empty())
        return "HT: " + issue;
    if (const std::string issue = it.audit(); !issue.empty())
        return "IT: " + issue;
    if (const std::string issue = streams.audit(); !issue.empty())
        return "streams: " + issue;
    if (pendingInRow >= cfg.addrsPerRow)
        return "LogMiss row counter ran past the row size";
    return "";
}

} // namespace domino
