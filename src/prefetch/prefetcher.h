/**
 * @file
 * The prefetcher framework: triggering events, the issue sink, and
 * the abstract Prefetcher interface every technique implements.
 *
 * Terminology follows the paper (Section III): prefetchers act on
 * *triggering events*, which are L1-D demand misses and prefetch
 * (buffer) hits.  A prefetch hit is a demand access satisfied by the
 * prefetch buffer -- the access would have been a miss, so the
 * underlying miss sequence is exactly the trigger sequence.
 */

#ifndef DOMINO_PREFETCH_PREFETCHER_H
#define DOMINO_PREFETCH_PREFETCHER_H

#include <cstdint>
#include <span>
#include <string>

#include "common/types.h"

namespace domino
{

/** One triggering event delivered to a prefetcher. */
struct TriggerEvent
{
    /** Cache-line address of the demand access. */
    LineAddr line = 0;
    /** PC of the triggering load/store (used by ISB). */
    Addr pc = 0;
    /** True when the access hit in the prefetch buffer. */
    bool wasPrefetchHit = false;
    /** Stream id that produced the hit (valid iff wasPrefetchHit). */
    std::uint32_t hitStreamId = 0;
};

/**
 * Interface through which a prefetcher issues requests and manages
 * the prefetch buffer; implemented by the simulators.
 */
class PrefetchSink
{
  public:
    virtual ~PrefetchSink() = default;

    /**
     * Issue a prefetch for @p line.
     *
     * @param line       block to prefetch.
     * @param stream_id  active-stream tag for buffer crediting.
     * @param metadata_trips number of *serial* off-chip metadata
     *        round trips that must complete before this prefetch can
     *        be sent to memory (0 for on-chip metadata; STMS needs 2
     *        for the first prefetch of a stream, Domino needs 1).
     */
    virtual void issue(LineAddr line, std::uint32_t stream_id,
                       unsigned metadata_trips) = 0;

    /**
     * Discard all buffered blocks belonging to a replaced stream
     * (the paper discards Prefetch Buffer / PointBuf contents of the
     * replaced stream).
     */
    virtual void dropStream(std::uint32_t stream_id) = 0;
};

/**
 * Off-chip metadata traffic counters, in 64 B block units.
 * Temporal prefetchers keep their tables in main memory, so every
 * table access is an off-chip transfer (Figure 15).
 */
struct MetadataStats
{
    /** Blocks fetched (index rows, history rows). */
    std::uint64_t readBlocks = 0;
    /** Blocks written (history appends, index write-backs). */
    std::uint64_t writeBlocks = 0;

    std::uint64_t readBytes() const { return readBlocks * blockBytes; }
    std::uint64_t writeBytes() const { return writeBlocks * blockBytes; }
};

/** Abstract base for all prefetching techniques. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Human-readable technique name ("STMS", "Domino", ...). */
    virtual std::string name() const = 0;

    /** Handle one triggering event, possibly issuing prefetches. */
    virtual void onTrigger(const TriggerEvent &event,
                           PrefetchSink &sink) = 0;

    /**
     * Handle a batch of triggering events, exactly equivalent to
     * calling onTrigger() once per event in order (the batched ==
     * scalar contract, asserted by tests/test_batched_api.cc).
     * The default loops the scalar virtual; techniques with hot
     * metadata tables override it to amortise the per-event virtual
     * dispatch and to software-prefetch the next event's metadata
     * row inside the batch (DESIGN.md "Metadata kernels").
     */
    virtual void
    trainPredictMany(std::span<const TriggerEvent> events,
                     PrefetchSink &sink)
    {
        for (const TriggerEvent &event : events)
            onTrigger(event, sink);
    }

    /**
     * Hint that a triggering event for (@p line, @p pc) is coming:
     * software-prefetch whatever metadata row the technique would
     * touch first.  Pure cache hint -- no observable effect on any
     * result -- so the simulators may call it speculatively from
     * their replay lookahead.  The default does nothing.
     */
    virtual void
    warmMetadata(LineAddr line, Addr pc) const
    {
        (void)line;
        (void)pc;
    }

    /** Off-chip metadata traffic so far (zero for on-chip designs). */
    virtual MetadataStats metadata() const { return meta; }

    /**
     * Verify the technique's internal metadata invariants.
     * @return empty string if OK, else a description of the first
     *         violation.  The default has nothing to check; the
     *         simulators call this under sampled checking
     *         (DOMINO_CHECKS), so implementations may be thorough.
     */
    virtual std::string audit() const { return ""; }

  protected:
    MetadataStats meta;
};

/**
 * Shared configuration of the temporal prefetchers (STMS, Digram,
 * Domino), mirroring Section IV.D of the paper.
 */
struct TemporalConfig
{
    /** Prefetch degree (paper: 1 for Fig. 11, 4 elsewhere). */
    unsigned degree = 4;
    /** Number of simultaneously tracked active streams. */
    unsigned activeStreams = 4;
    /** Index-update sampling probability (paper: 12.5 %). */
    double samplingProb = 0.125;
    /** History capacity in entries (paper: 16 M for Domino). */
    std::uint64_t htEntries = 1u << 20;
    /** Triggering-event addresses per 64 B history row. */
    unsigned addrsPerRow = 12;
    /**
     * Replay cap: stop extending an active stream after this many
     * replayed addresses (0 = unlimited).
     */
    unsigned maxReplayPerStream = 48;
    /**
     * Stream-end detection [10], [40]: history entries recorded at
     * context boundaries (a demand miss right after a covered run)
     * terminate replay, so a stream does not run past its recorded
     * end into unrelated history.
     */
    bool endDetection = true;
    /** Seed for the sampling PRNG. */
    std::uint64_t seed = 42;
};

} // namespace domino

#endif // DOMINO_PREFETCH_PREFETCHER_H
