#include "eit.h"

#include <unordered_set>

#include "common/check.h"

namespace domino
{

EnhancedIndexTable::EnhancedIndexTable(const EitConfig &config)
    : cfg(config)
{}

std::uint64_t
EnhancedIndexTable::rowIndex(LineAddr tag) const
{
    return mix64(tag) % cfg.rows;
}

const SuperEntry *
EnhancedIndexTable::lookup(LineAddr tag) const
{
    const auto row_it = table.find(rowIndex(tag));
    if (row_it == table.end())
        return nullptr;
    const Row &row = row_it->second;
    const std::size_t idx = row.find(
        [&](const SuperEntry &s) { return s.tag == tag; });
    if (idx == row.size())
        return nullptr;
    return &row.at(idx);
}

void
EnhancedIndexTable::update(LineAddr tag, LineAddr next,
                           std::uint64_t pos)
{
    DCHECK_NE(tag, invalidAddr);
    DCHECK_NE(next, invalidAddr);
    Row &row = table.try_emplace(rowIndex(tag),
                                 Row(cfg.supersPerRow)).first->second;

    std::size_t idx = row.find(
        [&](const SuperEntry &s) { return s.tag == tag; });
    if (idx == row.size()) {
        SuperEntry fresh;
        fresh.tag = tag;
        fresh.entries.setCapacity(cfg.entriesPerSuper);
        if (row.insert(std::move(fresh)))
            ++superEvictCnt;
        idx = 0;
    } else {
        row.touch(idx);
        idx = 0;
    }

    SuperEntry &super = row.at(idx);
    const std::size_t e = super.entries.find(
        [&](const EitEntry &entry) { return entry.next == next; });
    if (e == super.entries.size()) {
        super.entries.insert(EitEntry{next, pos});
    } else {
        super.entries.at(e).pos = pos;
        super.entries.touch(e);
    }
}

std::string
EnhancedIndexTable::audit(std::uint64_t ht_positions) const
{
    for (const auto &[row_idx, row] : table) {
        const std::string where =
            "row " + std::to_string(row_idx) + ": ";
        if (row_idx >= cfg.rows)
            return where + "index outside configured geometry";
        if (row.capacity() != cfg.supersPerRow)
            return where + "capacity drifted from supersPerRow";
        if (row.size() > cfg.supersPerRow)
            return where + "holds more super-entries than ways";
        std::unordered_set<LineAddr> tags;
        for (const SuperEntry &super : row) {
            if (super.tag == invalidAddr)
                return where + "invalid super-entry tag";
            if (rowIndex(super.tag) != row_idx)
                return where + "super-entry tag hashes elsewhere";
            if (!tags.insert(super.tag).second)
                return where + "duplicate super-entry tag";
            if (super.entries.capacity() != cfg.entriesPerSuper)
                return where + "entry capacity drifted";
            if (super.entries.size() > cfg.entriesPerSuper)
                return where + "super-entry holds more than " +
                    std::to_string(cfg.entriesPerSuper) + " entries";
            std::unordered_set<LineAddr> nexts;
            for (const EitEntry &entry : super.entries) {
                if (entry.next == invalidAddr)
                    return where + "invalid successor address";
                if (!nexts.insert(entry.next).second)
                    return where + "duplicate successor in "
                        "super-entry";
                if (entry.pos >= ht_positions)
                    return where + "HT pointer " +
                        std::to_string(entry.pos) +
                        " out of range (>= " +
                        std::to_string(ht_positions) + ")";
            }
        }
    }
    return "";
}

} // namespace domino
