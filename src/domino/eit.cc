#include "eit.h"

namespace domino
{

EnhancedIndexTable::EnhancedIndexTable(const EitConfig &config)
    : cfg(config)
{}

std::uint64_t
EnhancedIndexTable::rowIndex(LineAddr tag) const
{
    return mix64(tag) % cfg.rows;
}

const SuperEntry *
EnhancedIndexTable::lookup(LineAddr tag) const
{
    const auto row_it = table.find(rowIndex(tag));
    if (row_it == table.end())
        return nullptr;
    const Row &row = row_it->second;
    const std::size_t idx = row.find(
        [&](const SuperEntry &s) { return s.tag == tag; });
    if (idx == row.size())
        return nullptr;
    return &row.at(idx);
}

void
EnhancedIndexTable::update(LineAddr tag, LineAddr next,
                           std::uint64_t pos)
{
    Row &row = table.try_emplace(rowIndex(tag),
                                 Row(cfg.supersPerRow)).first->second;

    std::size_t idx = row.find(
        [&](const SuperEntry &s) { return s.tag == tag; });
    if (idx == row.size()) {
        SuperEntry fresh;
        fresh.tag = tag;
        fresh.entries.setCapacity(cfg.entriesPerSuper);
        if (row.insert(std::move(fresh)))
            ++superEvictCnt;
        idx = 0;
    } else {
        row.touch(idx);
        idx = 0;
    }

    SuperEntry &super = row.at(idx);
    const std::size_t e = super.entries.find(
        [&](const EitEntry &entry) { return entry.next == next; });
    if (e == super.entries.size()) {
        super.entries.insert(EitEntry{next, pos});
    } else {
        super.entries.at(e).pos = pos;
        super.entries.touch(e);
    }
}

} // namespace domino
