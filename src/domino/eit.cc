#include "eit.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace domino
{

namespace
{

std::uint64_t
ceilPow2(std::uint64_t x)
{
    std::uint64_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

} // namespace

EnhancedIndexTable::EnhancedIndexTable(const EitConfig &config)
    : cfg(config), rowMask(ceilPow2(cfg.rows ? cfg.rows : 1) - 1),
      supers(cfg.supersPerRow ? cfg.supersPerRow : 1),
      ents(cfg.entriesPerSuper ? cfg.entriesPerSuper : 1),
      rowWords(supers * (1 + 2 * static_cast<std::size_t>(ents)))
{
    // One null pointer per row up front (8 B each); the packed row
    // blocks are allocated on first update, so cold rows cost
    // nothing beyond the pointer.
    table.resize(rowMask + 1);
}

EnhancedIndexTable::SuperView
EnhancedIndexTable::lookup(LineAddr tag) const
{
    // invalidAddr is the empty-slot sentinel; it can never be
    // stored, so it can never be found.
    if (tag == invalidAddr)
        return SuperView{};
    const std::uint64_t *row = table[rowIndex(tag)].get();
    if (!row)
        return SuperView{};
    const std::size_t s = simd::findEqU64(row, supers, tag);
    if (s == supers)
        return SuperView{};
    return SuperView(tag, nextLaneOf(row, s), posLaneOf(row, s),
                     ents);
}

void
EnhancedIndexTable::rotateToFront(std::uint64_t *row,
                                  std::size_t idx) const
{
    if (idx == 0)
        return;
    // Physical MRU-first order: bring way idx to lane position 0,
    // sliding ways [0, idx) down one -- exactly LruSet's
    // move-to-front, applied to each lane.
    std::rotate(row, row + idx, row + idx + 1);
    std::uint64_t *nexts = nextLaneOf(row, 0);
    std::rotate(nexts, nexts + idx * ents, nexts + (idx + 1) * ents);
    std::uint64_t *poss = posLaneOf(row, 0);
    std::rotate(poss, poss + idx * ents, poss + (idx + 1) * ents);
}

void
EnhancedIndexTable::update(LineAddr tag, LineAddr next,
                           std::uint64_t pos)
{
    DCHECK_NE(tag, invalidAddr);
    DCHECK_NE(next, invalidAddr);
    std::unique_ptr<std::uint64_t[]> &slot = table[rowIndex(tag)];
    if (!slot) {
        slot = std::make_unique<std::uint64_t[]>(rowWords);
        // Tag and next lanes start empty (invalidAddr sentinels),
        // pos lanes zeroed -- the audited rest state.
        std::uint64_t *fresh = slot.get();
        const std::size_t addrWords =
            supers + static_cast<std::size_t>(supers) * ents;
        std::fill(fresh, fresh + addrWords, invalidAddr);
        std::fill(fresh + addrWords, fresh + rowWords, 0);
        ++touchedCnt;
    }
    std::uint64_t *row = slot.get();

    std::size_t s = simd::findEqU64(row, supers, tag);
    if (s == supers) {
        // Not present: take the first empty way, else evict the LRU
        // (physically last) way, and install the fresh super-entry
        // at the MRU position.
        std::size_t victim = simd::findEqU64(row, supers,
                                             invalidAddr);
        if (victim == supers) {
            victim = supers - 1;
            ++superEvictCnt;
        }
        rotateToFront(row, victim);
        row[0] = tag;
        std::uint64_t *nl = nextLaneOf(row, 0);
        std::uint64_t *pl = posLaneOf(row, 0);
        std::fill(nl, nl + ents, invalidAddr);
        std::fill(pl, pl + ents, 0);
    } else {
        rotateToFront(row, s);
    }

    // Entry level, within the now-MRU super-entry.
    std::uint64_t *nl = nextLaneOf(row, 0);
    std::uint64_t *pl = posLaneOf(row, 0);
    const std::size_t e = simd::findEqU64(nl, ents, next);
    if (e == ents) {
        std::size_t victim = simd::findEqU64(nl, ents, invalidAddr);
        if (victim == ents)
            victim = ents - 1;
        std::rotate(nl, nl + victim, nl + victim + 1);
        std::rotate(pl, pl + victim, pl + victim + 1);
        nl[0] = next;
        pl[0] = pos;
    } else {
        std::rotate(nl, nl + e, nl + e + 1);
        std::rotate(pl, pl + e, pl + e + 1);
        pl[0] = pos;
    }
}

std::string
EnhancedIndexTable::audit(std::uint64_t ht_positions) const
{
    if (table.size() != rowMask + 1)
        return "row vector size drifted from rounded geometry";
    std::size_t allocated = 0;
    for (std::uint64_t row_idx = 0; row_idx < table.size();
         ++row_idx) {
        const std::uint64_t *row = table[row_idx].get();
        if (!row)
            continue;
        ++allocated;
        const std::string where =
            "row " + std::to_string(row_idx) + ": ";

        // Tag lane: a contiguous, non-empty prefix of unique tags
        // that hash to this row.
        std::size_t live = supers;
        for (std::size_t s = 0; s < supers; ++s) {
            if (row[s] == invalidAddr) {
                live = s;
                break;
            }
        }
        if (live == 0)
            return where + "allocated row with an empty tag lane";
        for (std::size_t s = live; s < supers; ++s) {
            if (row[s] != invalidAddr)
                return where + "tag lane not contiguous (valid tag "
                    "behind an empty slot)";
        }
        std::unordered_set<LineAddr> tags;
        for (std::size_t s = 0; s < live; ++s) {
            if (rowIndex(row[s]) != row_idx)
                return where + "super-entry tag hashes elsewhere";
            if (!tags.insert(row[s]).second)
                return where + "duplicate super-entry tag";
        }

        // Entry lanes: consistent with the tag lane in both
        // directions -- live ways hold a contiguous non-empty
        // prefix of unique successors, empty ways hold nothing.
        for (std::size_t s = 0; s < supers; ++s) {
            const std::uint64_t *nl = nextLaneOf(row, s);
            const std::uint64_t *pl = posLaneOf(row, s);
            std::size_t ecnt = ents;
            for (std::size_t e = 0; e < ents; ++e) {
                if (nl[e] == invalidAddr) {
                    ecnt = e;
                    break;
                }
            }
            for (std::size_t e = ecnt; e < ents; ++e) {
                if (nl[e] != invalidAddr)
                    return where + "entry lane not contiguous "
                        "(valid successor behind an empty slot)";
                if (pl[e] != 0)
                    return where + "stale HT pointer behind an "
                        "empty entry slot";
            }
            if (s >= live) {
                if (ecnt != 0)
                    return where + "entry lanes behind an empty "
                        "tag slot";
                continue;
            }
            if (ecnt == 0)
                return where + "live super-entry with no entries";
            std::unordered_set<LineAddr> nexts;
            for (std::size_t e = 0; e < ecnt; ++e) {
                if (!nexts.insert(nl[e]).second)
                    return where + "duplicate successor in "
                        "super-entry";
                if (pl[e] >= ht_positions)
                    return where + "HT pointer " +
                        std::to_string(pl[e]) +
                        " out of range (>= " +
                        std::to_string(ht_positions) + ")";
            }
        }
    }
    if (allocated != touchedCnt)
        return "touched-row counter drifted from table contents "
               "(counter " + std::to_string(touchedCnt) +
               ", allocated rows " + std::to_string(allocated) + ")";
    return "";
}

} // namespace domino
