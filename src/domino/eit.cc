#include "eit.h"

#include <unordered_set>

#include "common/check.h"

namespace domino
{

namespace
{

std::uint64_t
ceilPow2(std::uint64_t x)
{
    std::uint64_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

} // namespace

EnhancedIndexTable::EnhancedIndexTable(const EitConfig &config)
    : cfg(config), rowMask(ceilPow2(cfg.rows ? cfg.rows : 1) - 1)
{
    // Pre-size the whole geometry.  Rows start as empty LruSets
    // (32 bytes, no heap storage), so this costs ~rows * 32 B up
    // front and makes every later row access a plain array index.
    table.assign(rowMask + 1, Row(cfg.supersPerRow));
}

std::uint64_t
EnhancedIndexTable::rowIndex(LineAddr tag) const
{
    return mix64(tag) & rowMask;
}

const SuperEntry *
EnhancedIndexTable::lookup(LineAddr tag) const
{
    const Row &row = table[rowIndex(tag)];
    const std::size_t idx = row.find(
        [&](const SuperEntry &s) { return s.tag == tag; });
    if (idx == row.size())
        return nullptr;
    return &row.at(idx);
}

void
EnhancedIndexTable::update(LineAddr tag, LineAddr next,
                           std::uint64_t pos)
{
    DCHECK_NE(tag, invalidAddr);
    DCHECK_NE(next, invalidAddr);
    Row &row = table[rowIndex(tag)];
    if (row.empty())
        ++touchedCnt;

    std::size_t idx = row.find(
        [&](const SuperEntry &s) { return s.tag == tag; });
    if (idx == row.size()) {
        SuperEntry fresh;
        fresh.tag = tag;
        fresh.entries.setCapacity(cfg.entriesPerSuper);
        if (row.insert(std::move(fresh)))
            ++superEvictCnt;
        idx = 0;
    } else {
        row.touch(idx);
        idx = 0;
    }

    SuperEntry &super = row.at(idx);
    const std::size_t e = super.entries.find(
        [&](const EitEntry &entry) { return entry.next == next; });
    if (e == super.entries.size()) {
        super.entries.insert(EitEntry{next, pos});
    } else {
        super.entries.at(e).pos = pos;
        super.entries.touch(e);
    }
}

std::string
EnhancedIndexTable::audit(std::uint64_t ht_positions) const
{
    if (table.size() != rowMask + 1)
        return "row vector size drifted from rounded geometry";
    std::size_t non_empty = 0;
    for (std::uint64_t row_idx = 0; row_idx < table.size();
         ++row_idx) {
        const Row &row = table[row_idx];
        if (row.empty())
            continue;
        ++non_empty;
        const std::string where =
            "row " + std::to_string(row_idx) + ": ";
        if (row.capacity() != cfg.supersPerRow)
            return where + "capacity drifted from supersPerRow";
        if (row.size() > cfg.supersPerRow)
            return where + "holds more super-entries than ways";
        std::unordered_set<LineAddr> tags;
        for (const SuperEntry &super : row) {
            if (super.tag == invalidAddr)
                return where + "invalid super-entry tag";
            if (rowIndex(super.tag) != row_idx)
                return where + "super-entry tag hashes elsewhere";
            if (!tags.insert(super.tag).second)
                return where + "duplicate super-entry tag";
            if (super.entries.capacity() != cfg.entriesPerSuper)
                return where + "entry capacity drifted";
            if (super.entries.size() > cfg.entriesPerSuper)
                return where + "super-entry holds more than " +
                    std::to_string(cfg.entriesPerSuper) + " entries";
            std::unordered_set<LineAddr> nexts;
            for (const EitEntry &entry : super.entries) {
                if (entry.next == invalidAddr)
                    return where + "invalid successor address";
                if (!nexts.insert(entry.next).second)
                    return where + "duplicate successor in "
                        "super-entry";
                if (entry.pos >= ht_positions)
                    return where + "HT pointer " +
                        std::to_string(entry.pos) +
                        " out of range (>= " +
                        std::to_string(ht_positions) + ")";
            }
        }
    }
    if (non_empty != touchedCnt)
        return "touched-row counter drifted from table contents "
               "(counter " + std::to_string(touchedCnt) +
               ", non-empty rows " + std::to_string(non_empty) + ")";
    return "";
}

} // namespace domino
