/**
 * @file
 * The Domino temporal data prefetcher -- the paper's contribution.
 *
 * Domino looks up the miss history with *both* the last two
 * triggering events and the current one:
 *
 *  1. On a miss m, it fetches the EIT row of m (ONE off-chip round
 *     trip) and, if a super-entry for m exists, immediately
 *     prefetches the successor address of the most recent entry --
 *     this is the single-address lookup, and the reason Domino's
 *     first prefetch needs one round trip where STMS needs two.
 *     The super-entry is retained in the allocated stream slot; the
 *     stream is *embryonic* until a second event picks the entry.
 *
 *  2. The embryonic stream is confirmed by its next triggering
 *     event: either the immediately following miss t (two-address
 *     lookup (m, t) -- Domino searches the retained super-entry for
 *     the entry whose address field is t), or a later hit of its
 *     first prefetch.  The matched entry's pointer locates the
 *     correct stream in the History Table; the slot becomes an
 *     *active* stream replayed with the configured degree.
 *
 * Streams (four slots, embryonic or active) are managed LRU; a
 * prefetch hit advances the active stream that produced the block.
 * Recording appends triggering events to the off-chip HT and
 * updates the EIT with sampled probability (12.5 %).
 */

#ifndef DOMINO_DOMINO_DOMINO_PREFETCHER_H
#define DOMINO_DOMINO_DOMINO_PREFETCHER_H

#include <cstdint>
#include <deque>
#include <vector>

#include "common/prng.h"
#include "domino/eit.h"
#include "prefetch/history.h"
#include "prefetch/prefetcher.h"

namespace domino
{

/** Full Domino configuration: temporal knobs plus EIT geometry. */
struct DominoConfig : TemporalConfig
{
    EitConfig eit;
    /**
     * Serial off-chip metadata round trips before the first prefetch
     * of a stream can issue.  The practical EIT design needs 1; the
     * naive two-Index-Table design (DESIGN.md ablation) needs 2,
     * like STMS.
     */
    unsigned firstPrefetchTrips = 1;
};

/** Diagnostic counters exposed for tests and analysis. */
struct DominoCounters
{
    /** EIT rows fetched (single-address lookups). */
    std::uint64_t eitLookups = 0;
    /** Lookups that found a super-entry (embryo created). */
    std::uint64_t embryosCreated = 0;
    /** Embryos confirmed by the immediately following miss. */
    std::uint64_t confirmedByMiss = 0;
    /** Embryos confirmed by a hit of their first prefetch. */
    std::uint64_t confirmedByHit = 0;
    /** Miss-pair lookups that found no matching entry. */
    std::uint64_t pairMisses = 0;

    std::uint64_t
    streamsConfirmed() const
    {
        return confirmedByMiss + confirmedByHit;
    }
};

/** The Domino prefetcher. */
class DominoPrefetcher : public Prefetcher
{
  public:
    explicit DominoPrefetcher(const DominoConfig &config);

    std::string name() const override { return "Domino"; }

    void
    onTrigger(const TriggerEvent &event, PrefetchSink &sink) override
    {
        step(event, sink);
    }

    /** Batched == scalar (one virtual call, non-virtual steps,
     *  next event's EIT row prefetched inside the batch). */
    void
    trainPredictMany(std::span<const TriggerEvent> events,
                     PrefetchSink &sink) override
    {
        for (std::size_t i = 0; i < events.size(); ++i) {
            if (i + 1 < events.size())
                eit.prefetchRow(events[i + 1].line);
            step(events[i], sink);
        }
    }

    /** Pull the EIT row a trigger for @p line would probe. */
    void
    warmMetadata(LineAddr line, Addr pc) const override
    {
        (void)pc;
        eit.prefetchRow(line);
    }

    /**
     * Verify stream-slot invariants (unique ids, embryonic entry
     * counts within EIT geometry, replay cursors inside the HT) and
     * delegate to the EIT and HT audits.
     */
    std::string audit() const override;

    const DominoCounters &counters() const { return counts; }
    const EnhancedIndexTable &eitTable() const { return eit; }

  private:
    /** Test-only backdoor for corrupting internals in audit tests. */
    friend struct DominoTestPeer;

    /** One stream slot: embryonic (super-entry held) or active. */
    struct Stream
    {
        bool valid = false;
        bool embryonic = false;
        std::uint32_t id = 0;
        /** Embryonic: the miss whose EIT row was fetched. */
        LineAddr trigger = invalidAddr;
        /** Embryonic: super-entry contents, MRU first. */
        std::vector<EitEntry> entries;
        /** Active: PointBuf contents and HT cursor. */
        std::deque<LineAddr> pending;
        std::uint64_t nextPos = 0;
        unsigned replayed = 0;
        std::uint64_t lastUse = 0;
        /** Replay reached a recorded context boundary. */
        bool ended = false;
    };

    /** The scalar trigger step (shared by both entry points). */
    void step(const TriggerEvent &event, PrefetchSink &sink);
    void record(LineAddr line, bool stream_start);
    Stream *findById(std::uint32_t id);
    Stream &allocateSlot(PrefetchSink &sink);
    void startEmbryo(LineAddr line, PrefetchSink &sink);
    /** Turn an embryonic slot into an active stream via the entry
     *  matching @p line.  @return true on a match. */
    bool confirm(Stream &stream, LineAddr line, PrefetchSink &sink);
    void advanceStream(Stream &stream, PrefetchSink &sink);
    void refill(Stream &stream, std::size_t want);

    DominoConfig cfg;
    CircularHistory ht;
    EnhancedIndexTable eit;
    std::vector<Stream> slots;
    Prng rng;
    DominoCounters counts;

    /** Slot id of the embryo created by the immediately previous
     *  triggering event (0 = none): only that embryo is eligible
     *  for two-address confirmation by the current miss. */
    std::uint32_t lastEmbryoId = 0;

    LineAddr prevTrigger = invalidAddr;
    std::uint64_t prevPos = 0;
    bool havePrev = false;
    std::uint32_t nextStreamId = 1;
    std::uint64_t pendingInRow = 0;
    std::uint64_t useTick = 0;
    bool prevWasHit = false;
};

} // namespace domino

#endif // DOMINO_DOMINO_DOMINO_PREFETCHER_H
