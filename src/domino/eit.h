/**
 * @file
 * The Enhanced Index Table (EIT) -- the paper's key structure
 * (Section III.B, Figure 7).
 *
 * The EIT is a bucketised hash table indexed by a *single*
 * triggering-event address.  Each row holds several *super-entries*;
 * a super-entry consists of a tag t and several *entries* (a, p),
 * each meaning: "the last time address t was followed by address a,
 * t was at position p in the History Table".  LRU order is kept
 * among the super-entries of a row and among the entries of a
 * super-entry.
 *
 * Storing the successor address a next to the pointer is what lets
 * Domino (1) disambiguate streams with the last *two* triggering
 * events while indexing with one, and (2) issue the first prefetch
 * of a stream after a single off-chip round trip (the successor is
 * right there in the fetched row).
 *
 * Storage is structure-of-arrays: each row is one packed 64-bit
 * word block laid out as
 *
 *   [ tag lane: supersPerRow words |
 *     next lane: supersPerRow x entriesPerSuper words |
 *     pos  lane: supersPerRow x entriesPerSuper words ]
 *
 * so the row probe is a single vector compare over the contiguous
 * tag lane (src/common/simd.h) instead of a pointer chase through
 * list nodes.  LRU order is *physical*: lane position 0 is the MRU
 * way and rotation on touch/insert preserves exactly the
 * move-to-front semantics of LruSet.  Occupancy is implicit --
 * empty tag/entry slots hold invalidAddr and every lane keeps its
 * valid prefix contiguous (the audit checks both directions of the
 * tag-lane <-> entry-lane consistency).  Row blocks are allocated
 * lazily on first update, so an untouched row costs one null
 * pointer; rows are rounded up to a power of two so indexing is a
 * single mask (mix64(tag) & rowMask).  Degenerate geometries are
 * clamped: rows, supersPerRow and entriesPerSuper are each treated
 * as at least 1.
 */

#ifndef DOMINO_DOMINO_EIT_H
#define DOMINO_DOMINO_EIT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/simd.h"
#include "common/types.h"

namespace domino
{

/** One (address, pointer) pair inside a super-entry. */
struct EitEntry
{
    /** The triggering event that followed the tag. */
    LineAddr next = invalidAddr;
    /** HT position of the tag's occurrence. */
    std::uint64_t pos = 0;
};

/** Geometry of the EIT. */
struct EitConfig
{
    /** Number of rows (paper: 2 M rows = 128 MB).  Rounded up to a
     *  power of two by the table. */
    std::uint64_t rows = 1ULL << 21;
    /** Super-entries per row. */
    unsigned supersPerRow = 4;
    /** Entries per super-entry (paper: three). */
    unsigned entriesPerSuper = 3;
};

/**
 * The EIT proper: lazily allocated packed SoA rows indexed by a
 * mask of the mixed tag.
 */
class EnhancedIndexTable
{
  public:
    /**
     * Read-only view of one super-entry inside a packed row, as
     * returned by lookup().  Entries are MRU first; size() is the
     * length of the valid prefix.  The view borrows the row storage
     * and is invalidated by the next update().
     */
    class SuperView
    {
      public:
        SuperView() = default;

        /** True when lookup() found the tag. */
        explicit operator bool() const { return nextLane != nullptr; }

        LineAddr tag() const { return tagVal; }

        /** Number of valid entries (MRU-first prefix length). */
        std::size_t
        size() const
        {
            return simd::findEqU64(nextLane, cap, invalidAddr);
        }

        /** Successor address of entry @p i (i < size()). */
        LineAddr next(std::size_t i) const { return nextLane[i]; }

        /** HT position of entry @p i (i < size()). */
        std::uint64_t pos(std::size_t i) const { return posLane[i]; }

      private:
        friend class EnhancedIndexTable;

        SuperView(LineAddr tag, const std::uint64_t *nexts,
                  const std::uint64_t *poss, std::size_t capacity)
            : tagVal(tag), nextLane(nexts), posLane(poss),
              cap(capacity)
        {}

        LineAddr tagVal = invalidAddr;
        const std::uint64_t *nextLane = nullptr;
        const std::uint64_t *posLane = nullptr;
        std::size_t cap = 0;
    };

    explicit EnhancedIndexTable(const EitConfig &config);

    /**
     * Find the super-entry for @p tag, as the replay path does after
     * fetching the row.  Does not modify LRU state (replay works on
     * the fetched copy; recency is updated by the record path).
     *
     * @return a view of the super-entry; false-y when absent.
     */
    SuperView lookup(LineAddr tag) const;

    /**
     * Record that @p tag was followed by @p next with the tag at HT
     * position @p pos (the record path's read-modify-write).
     * Allocates super-entry and entry with LRU replacement.
     */
    void update(LineAddr tag, LineAddr next, std::uint64_t pos);

    /**
     * Hint the cache hierarchy to pull the row of @p tag ahead of a
     * coming lookup()/update() (lookahead software prefetch).  Pure
     * hint: no observable effect on any result.
     */
    void
    prefetchRow(LineAddr tag) const
    {
        const std::uint64_t *row = table[rowIndex(tag)].get();
        if (row)
            simd::prefetchRead(row);
    }

    const EitConfig &config() const { return cfg; }

    /** Actual row count after power-of-two rounding. */
    std::uint64_t rows() const { return rowMask + 1; }

    /** Actual ways per row after clamping (>= 1). */
    unsigned supersPerRow() const { return supers; }

    /** Actual entries per super-entry after clamping (>= 1). */
    unsigned entriesPerSuper() const { return ents; }

    /** Number of rows ever written (diagnostics). */
    std::size_t touchedRows() const { return touchedCnt; }

    /** Count of super-entry evictions (diagnostics). */
    std::uint64_t superEvictions() const { return superEvictCnt; }

    /**
     * Verify the table's structural invariants: the row vector
     * matches the rounded geometry and the touched-row counter;
     * every allocated row keeps a contiguous, non-empty prefix of
     * unique, correctly-hashed tags in its tag lane; entry lanes
     * are consistent with the tag lane (a live super-entry has a
     * contiguous, non-empty prefix of unique successors, an empty
     * tag slot has fully empty entry lanes with zeroed positions);
     * and, when @p ht_positions is given, every HT pointer is in
     * range (pos < ht_positions).
     *
     * @return empty string if OK, else a description of the first
     *         violation (same contract as
     *         SequiturGrammar::checkInvariants).
     */
    std::string audit(std::uint64_t ht_positions = ~0ULL) const;

  private:
    /** Test-only backdoor for corrupting the table in audit tests. */
    friend struct EitTestPeer;

    std::uint64_t
    rowIndex(LineAddr tag) const
    {
        return mix64(tag) & rowMask;
    }

    /** Move super-entry @p idx of @p row to the MRU position. */
    void rotateToFront(std::uint64_t *row, std::size_t idx) const;

    std::uint64_t *nextLaneOf(std::uint64_t *row, std::size_t s) const
    {
        return row + supers + s * ents;
    }

    std::uint64_t *posLaneOf(std::uint64_t *row, std::size_t s) const
    {
        return row + supers + static_cast<std::size_t>(supers) * ents +
            s * ents;
    }

    const std::uint64_t *
    nextLaneOf(const std::uint64_t *row, std::size_t s) const
    {
        return row + supers + s * ents;
    }

    const std::uint64_t *
    posLaneOf(const std::uint64_t *row, std::size_t s) const
    {
        return row + supers + static_cast<std::size_t>(supers) * ents +
            s * ents;
    }

    EitConfig cfg;
    std::uint64_t rowMask;
    /** Clamped geometry (>= 1 each). */
    unsigned supers;
    unsigned ents;
    /** Words per row block: supers * (1 + 2 * ents). */
    std::size_t rowWords;
    /** Lazily allocated packed row blocks (null = untouched row). */
    std::vector<std::unique_ptr<std::uint64_t[]>> table;
    std::size_t touchedCnt = 0;
    std::uint64_t superEvictCnt = 0;
};

} // namespace domino

#endif // DOMINO_DOMINO_EIT_H
