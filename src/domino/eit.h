/**
 * @file
 * The Enhanced Index Table (EIT) -- the paper's key structure
 * (Section III.B, Figure 7).
 *
 * The EIT is a bucketised hash table indexed by a *single*
 * triggering-event address.  Each row holds several *super-entries*;
 * a super-entry consists of a tag t and several *entries* (a, p),
 * each meaning: "the last time address t was followed by address a,
 * t was at position p in the History Table".  LRU order is kept
 * among the super-entries of a row and among the entries of a
 * super-entry.
 *
 * Storing the successor address a next to the pointer is what lets
 * Domino (1) disambiguate streams with the last *two* triggering
 * events while indexing with one, and (2) issue the first prefetch
 * of a stream after a single off-chip round trip (the successor is
 * right there in the fetched row).
 *
 * Storage is a flat row vector of the configured geometry, matching
 * the fixed bucketised table the paper describes: rows are rounded
 * up to a power of two so indexing is a single mask
 * (mix64(tag) & rowMask), and the vector is pre-sized at
 * construction.  Untouched rows are empty LruSets (no heap
 * allocation until first use), so capacity behaviour is unchanged
 * from the earlier lazily-materialised map while every row access
 * is one array index instead of a hash-map probe.  All geometries
 * used by the factory, benches, and tests are already powers of
 * two, for which the mask is bit-identical to the previous
 * `mix64(tag) % rows`.
 */

#ifndef DOMINO_DOMINO_EIT_H
#define DOMINO_DOMINO_EIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/lru.h"
#include "common/types.h"

namespace domino
{

/** One (address, pointer) pair inside a super-entry. */
struct EitEntry
{
    /** The triggering event that followed the tag. */
    LineAddr next = invalidAddr;
    /** HT position of the tag's occurrence. */
    std::uint64_t pos = 0;
};

/** A tag plus its LRU-ordered successor entries. */
struct SuperEntry
{
    LineAddr tag = invalidAddr;
    LruSet<EitEntry> entries;
};

/** Geometry of the EIT. */
struct EitConfig
{
    /** Number of rows (paper: 2 M rows = 128 MB).  Rounded up to a
     *  power of two by the table. */
    std::uint64_t rows = 1ULL << 21;
    /** Super-entries per row. */
    unsigned supersPerRow = 4;
    /** Entries per super-entry (paper: three). */
    unsigned entriesPerSuper = 3;
};

/**
 * The EIT proper: a pre-sized flat array of rows indexed by a mask
 * of the mixed tag.
 */
class EnhancedIndexTable
{
  public:
    explicit EnhancedIndexTable(const EitConfig &config);

    /**
     * Find the super-entry for @p tag, as the replay path does after
     * fetching the row.  Does not modify LRU state (replay works on
     * the fetched copy; recency is updated by the record path).
     *
     * @return pointer to the super-entry, or nullptr.
     */
    const SuperEntry *lookup(LineAddr tag) const;

    /**
     * Record that @p tag was followed by @p next with the tag at HT
     * position @p pos (the record path's read-modify-write).
     * Allocates super-entry and entry with LRU replacement.
     */
    void update(LineAddr tag, LineAddr next, std::uint64_t pos);

    const EitConfig &config() const { return cfg; }

    /** Actual row count after power-of-two rounding. */
    std::uint64_t rows() const { return rowMask + 1; }

    /** Number of rows ever written (diagnostics). */
    std::size_t touchedRows() const { return touchedCnt; }

    /** Count of super-entry evictions (diagnostics). */
    std::uint64_t superEvictions() const { return superEvictCnt; }

    /**
     * Verify the table's structural invariants: the row vector
     * matches the rounded geometry and the touched-row counter;
     * every row holds at most supersPerRow super-entries with
     * unique, correctly-hashed, valid tags; every super-entry holds
     * at most entriesPerSuper entries with unique successor
     * addresses; and, when @p ht_positions is given, every HT
     * pointer is in range (pos < ht_positions).
     *
     * @return empty string if OK, else a description of the first
     *         violation (same contract as
     *         SequiturGrammar::checkInvariants).
     */
    std::string audit(std::uint64_t ht_positions = ~0ULL) const;

  private:
    using Row = LruSet<SuperEntry>;

    /** Test-only backdoor for corrupting the table in audit tests. */
    friend struct EitTestPeer;

    std::uint64_t rowIndex(LineAddr tag) const;

    EitConfig cfg;
    std::uint64_t rowMask;
    std::vector<Row> table;
    std::size_t touchedCnt = 0;
    std::uint64_t superEvictCnt = 0;
};

} // namespace domino

#endif // DOMINO_DOMINO_EIT_H
