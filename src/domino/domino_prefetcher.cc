#include "domino_prefetcher.h"

#include <unordered_set>

namespace domino
{

DominoPrefetcher::DominoPrefetcher(const DominoConfig &config)
    : cfg(config),
      ht(config.htEntries, config.addrsPerRow),
      eit(config.eit),
      slots(config.activeStreams ? config.activeStreams : 1),
      rng(config.seed ^ 0xd0)
{}

void
DominoPrefetcher::record(LineAddr line, bool stream_start)
{
    const std::uint64_t pos = ht.append(line, stream_start);
    // LogMiss drains one 64 B row per addrsPerRow triggering events.
    if (++pendingInRow >= cfg.addrsPerRow) {
        pendingInRow = 0;
        ++meta.writeBlocks;
    }
    // Sampled EIT update: fetch the row into FetchBuf, modify, write
    // back (Section III.B "Recording").  The entry records that
    // prevTrigger was followed by line, with prevTrigger at prevPos.
    if (havePrev && rng.chance(cfg.samplingProb)) {
        eit.update(prevTrigger, line, prevPos);
        ++meta.readBlocks;
        ++meta.writeBlocks;
    }
    prevTrigger = line;
    prevPos = pos;
    havePrev = true;
}

DominoPrefetcher::Stream *
DominoPrefetcher::findById(std::uint32_t id)
{
    for (auto &s : slots)
        if (s.valid && s.id == id)
            return &s;
    return nullptr;
}

DominoPrefetcher::Stream &
DominoPrefetcher::allocateSlot(PrefetchSink &sink)
{
    Stream *victim = &slots[0];
    for (auto &s : slots) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lastUse < victim->lastUse)
            victim = &s;
    }
    if (victim->valid)
        sink.dropStream(victim->id);
    *victim = Stream{};
    victim->valid = true;
    victim->id = nextStreamId++;
    victim->lastUse = ++useTick;
    return *victim;
}

void
DominoPrefetcher::refill(Stream &stream, std::size_t want)
{
    while (stream.pending.size() < want && !stream.ended) {
        if (cfg.maxReplayPerStream &&
            stream.replayed + stream.pending.size() >=
                cfg.maxReplayPerStream) {
            break;
        }
        if (!ht.readable(stream.nextPos))
            break;
        // Stream-end detection: stop at recorded context
        // boundaries.
        if (cfg.endDetection && ht.startsStream(stream.nextPos)) {
            stream.ended = true;
            break;
        }
        const std::uint64_t row_end = ht.nextRowStart(stream.nextPos);
        ++meta.readBlocks;
        while (stream.nextPos < row_end &&
               ht.readable(stream.nextPos)) {
            if (cfg.endDetection &&
                ht.startsStream(stream.nextPos)) {
                stream.ended = true;
                break;
            }
            stream.pending.push_back(ht.at(stream.nextPos));
            ++stream.nextPos;
        }
    }
}

void
DominoPrefetcher::startEmbryo(LineAddr line, PrefetchSink &sink)
{
    // Single-address lookup: fetch the EIT row of `line` (one
    // off-chip round trip).
    ++counts.eitLookups;
    ++meta.readBlocks;
    const EnhancedIndexTable::SuperView super = eit.lookup(line);
    const std::size_t found = super ? super.size() : 0;
    if (found == 0)
        return;

    Stream &stream = allocateSlot(sink);
    stream.embryonic = true;
    stream.trigger = line;
    stream.entries.clear();
    stream.entries.reserve(found);
    for (std::size_t i = 0; i < found; ++i)
        stream.entries.push_back(EitEntry{super.next(i),
                                          super.pos(i)});
    ++counts.embryosCreated;
    lastEmbryoId = stream.id;

    // Prefetch the successor of the most recent entry right away:
    // the first prefetch of the stream after ONE round trip (STMS
    // needs two).
    sink.issue(stream.entries.front().next, stream.id,
               cfg.firstPrefetchTrips);
}

bool
DominoPrefetcher::confirm(Stream &stream, LineAddr line,
                          PrefetchSink &sink)
{
    for (const EitEntry &entry : stream.entries) {
        if (entry.next != line)
            continue;
        // Two-address match (stream.trigger, line): the pointer
        // locates the stream.  entry.pos is the occurrence of the
        // first address; +1 is `line` itself; replay starts at +2.
        stream.embryonic = false;
        stream.entries.clear();
        stream.pending.clear();
        stream.nextPos = entry.pos + 2;
        stream.replayed = 0;
        stream.lastUse = ++useTick;
        refill(stream, cfg.degree);
        unsigned issued = 0;
        while (!stream.pending.empty() && issued < cfg.degree) {
            // One serial off-chip trip (the HT row) precedes these.
            sink.issue(stream.pending.front(), stream.id,
                       cfg.firstPrefetchTrips);
            stream.pending.pop_front();
            ++stream.replayed;
            ++issued;
        }
        return true;
    }
    return false;
}

void
DominoPrefetcher::advanceStream(Stream &stream, PrefetchSink &sink)
{
    stream.lastUse = ++useTick;
    if (cfg.maxReplayPerStream &&
        stream.replayed >= cfg.maxReplayPerStream) {
        return;  // stream-end heuristic
    }
    if (stream.pending.empty()) {
        refill(stream, 1);
        if (stream.pending.empty())
            return;
        sink.issue(stream.pending.front(), stream.id, 1);
    } else {
        sink.issue(stream.pending.front(), stream.id, 0);
    }
    stream.pending.pop_front();
    ++stream.replayed;
}

std::string
DominoPrefetcher::audit() const
{
    std::unordered_set<std::uint32_t> ids;
    for (const Stream &s : slots) {
        if (!s.valid) {
            continue;
        }
        if (s.id == 0 || s.id >= nextStreamId)
            return "stream id outside the issued range";
        if (!ids.insert(s.id).second)
            return "duplicate stream id";
        if (s.lastUse > useTick)
            return "stream recency stamp from the future";
        if (s.embryonic) {
            if (s.trigger == invalidAddr)
                return "embryonic stream without a trigger";
            if (s.entries.size() > eit.entriesPerSuper())
                return "embryonic stream holds more entries than "
                    "the EIT geometry allows";
        } else {
            // Replay cursor: at most one row beyond the last
            // readable position (refill stops at the row boundary
            // after the newest appended address).
            if (s.nextPos > ht.size() + ht.addrsPerRow())
                return "replay cursor runs past the history";
            if (s.pending.size() > cfg.degree + ht.addrsPerRow())
                return "PointBuf overfilled";
        }
    }
    if (const std::string eit_issue = eit.audit(ht.size());
        !eit_issue.empty()) {
        return "EIT: " + eit_issue;
    }
    if (const std::string ht_issue = ht.audit(); !ht_issue.empty())
        return "HT: " + ht_issue;
    return "";
}

void
DominoPrefetcher::step(const TriggerEvent &event,
                       PrefetchSink &sink)
{
    const LineAddr line = event.line;

    if (event.wasPrefetchHit) {
        lastEmbryoId = 0;
        if (Stream *s = findById(event.hitStreamId)) {
            if (s->embryonic) {
                // The embryo's first prefetch was used: the matched
                // entry identifies the stream.
                if (confirm(*s, line, sink))
                    ++counts.confirmedByHit;
            } else {
                advanceStream(*s, sink);
            }
        }
        record(line, false);
        prevWasHit = true;
        return;
    }

    // Demand miss: first the two-address lookup -- the current miss
    // is matched against the super-entry retained by the embryo of
    // the immediately preceding triggering event...
    bool confirmed = false;
    if (lastEmbryoId) {
        if (Stream *s = findById(lastEmbryoId)) {
            if (s->embryonic) {
                confirmed = confirm(*s, line, sink);
                if (confirmed)
                    ++counts.confirmedByMiss;
                else
                    ++counts.pairMisses;
                // An unconfirmed embryo stays dormant in its slot:
                // its first prefetch may still hit later.
            }
        }
        lastEmbryoId = 0;
    }
    // ...and if that fails, the single-address lookup with the
    // current miss spawns a new embryonic stream.
    if (!confirmed)
        startEmbryo(line, sink);

    // A miss right after a covered run marks a context boundary
    // (stream-end detection).
    record(line, prevWasHit);
    prevWasHit = false;
}

} // namespace domino
