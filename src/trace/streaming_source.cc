#include "streaming_source.h"

#include <algorithm>
#include <cstring>

namespace domino
{

// This file rereads packed DOMTRACE records with its own memcpy
// offsets (refill() below), so it pins the on-disk layout of
// docs/TRACE_FORMAT.md independently of trace_io.cc.
static_assert(traceHeaderBytes == 20,
              "DOMTRACE header layout drifted from TRACE_FORMAT.md");
static_assert(traceRecordBytes == 17,
              "DOMTRACE record layout drifted from TRACE_FORMAT.md");

IoResult
StreamingTraceSource::open(const std::string &path,
                           std::uint32_t buffer_records)
{
    return openShard(path, 1, 0, 1, buffer_records);
}

IoResult
StreamingTraceSource::openShard(const std::string &path,
                                unsigned cores, unsigned core,
                                std::uint32_t chunk,
                                std::uint32_t buffer_records)
{
    if (cores == 0 || chunk == 0)
        return IoResult::failure("degenerate shard geometry for: " +
                                 path);
    if (core >= cores) {
        return IoResult::failure(
            "shard core " + std::to_string(core) + " out of " +
            std::to_string(cores) + " for: " + path);
    }
    if (buffer_records == 0)
        return IoResult::failure("zero-record streaming buffer for: "
                                 + path);

    // Validate and position exactly like readTrace would (the rules
    // live in trace_io.cc); on failure the source stays unopened.
    std::ifstream stream;
    std::uint64_t count = 0;
    if (IoResult res = openTraceStream(path, stream, count); !res.ok)
        return res;

    is = std::move(stream);
    filePath = path;
    opened = true;
    ioError.clear();
    total = count;
    nCores = cores;
    coreIdx = core;
    chunkLen = chunk;
    bufCap = buffer_records;
    buffer.clear();
    buffer.reserve(std::min<std::uint64_t>(bufCap, total));
    reset();
    return IoResult::success();
}

void
StreamingTraceSource::reset()
{
    buffer.clear();
    bufPos = 0;
    yielded = 0;
    chunkLeft = chunkLen;
    if (!opened)
        return;
    is.clear();
    nextGlobal = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(coreIdx) * chunkLen, total);
    seekToRecord(nextGlobal);
}

void
StreamingTraceSource::seekToRecord(std::uint64_t record)
{
    is.seekg(static_cast<std::streamoff>(
        traceHeaderBytes + record * traceRecordBytes));
    if (!is)
        ioError = "seek failed at record " + std::to_string(record) +
            " in: " + filePath;
}

bool
StreamingTraceSource::refill()
{
    buffer.clear();
    bufPos = 0;
    if (!opened || !ioError.empty())
        return false;

    // Scratch for one sequential read: packed records straight off
    // the file, unpacked into the Access buffer below.
    std::vector<char> raw;
    while (buffer.size() < bufCap && nextGlobal < total) {
        if (chunkLeft == 0) {
            // Chunk boundary: hop over the other cores' chunks.
            const std::uint64_t skip =
                static_cast<std::uint64_t>(nCores - 1) * chunkLen;
            nextGlobal = std::min(nextGlobal + skip, total);
            chunkLeft = chunkLen;
            if (nextGlobal >= total)
                break;
            if (skip > 0)
                seekToRecord(nextGlobal);
            if (!ioError.empty())
                return false;
        }
        const std::uint64_t span = std::min<std::uint64_t>(
            {bufCap - buffer.size(), chunkLeft, total - nextGlobal});
        raw.resize(span * traceRecordBytes);
        is.read(raw.data(),
                static_cast<std::streamsize>(raw.size()));
        if (!is) {
            // Open-time validation pinned the exact file length, so
            // a short read here means the file changed underneath us
            // or the device failed -- surface it, don't truncate.
            ioError = "short read at record " +
                std::to_string(nextGlobal) + " in: " + filePath;
            return false;
        }
        for (std::uint64_t i = 0; i < span; ++i) {
            const char *rec = raw.data() + i * traceRecordBytes;
            Access a;
            std::memcpy(&a.pc, rec, 8);
            std::memcpy(&a.addr, rec + 8, 8);
            a.isWrite = rec[16] != 0;
            buffer.push_back(a);
        }
        nextGlobal += span;
        chunkLeft -= static_cast<std::uint32_t>(span);
    }
    return !buffer.empty();
}

bool
StreamingTraceSource::next(Access &out)
{
    if (bufPos >= buffer.size() && !refill())
        return false;
    out = buffer[bufPos++];
    ++yielded;
    return true;
}

std::size_t
StreamingTraceSource::shardSize() const
{
    if (!opened)
        return 0;
    // Mirror ShardView / ReplayCursor: full dealing cycles hand each
    // core one chunk; the remainder hands core c the records clamped
    // to its chunk slot.
    const std::uint64_t cycle =
        static_cast<std::uint64_t>(nCores) * chunkLen;
    const std::uint64_t full = total / cycle;
    const std::uint64_t rem = total % cycle;
    const std::uint64_t slot =
        static_cast<std::uint64_t>(coreIdx) * chunkLen;
    const std::uint64_t tail = std::min<std::uint64_t>(
        rem > slot ? rem - slot : 0, chunkLen);
    return static_cast<std::size_t>(full * chunkLen + tail);
}

std::string
StreamingTraceSource::audit() const
{
    if (!ioError.empty())
        return ioError;
    if (!opened) {
        if (total != 0 || yielded != 0)
            return "unopened source carries state";
        return "";
    }
    if (buffer.size() > bufCap) {
        return "buffer holds " + std::to_string(buffer.size()) +
            " records over its " + std::to_string(bufCap) +
            "-record capacity";
    }
    if (bufPos > buffer.size())
        return "buffer cursor past the buffered records";
    if (nextGlobal > total) {
        return "file cursor at record " + std::to_string(nextGlobal) +
            " past the " + std::to_string(total) + "-record trace";
    }
    if (yielded > shardSize()) {
        return "yielded " + std::to_string(yielded) +
            " records of a " + std::to_string(shardSize()) +
            "-record shard";
    }
    return "";
}

} // namespace domino
