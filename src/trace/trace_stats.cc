#include "trace_stats.h"

#include <unordered_set>

namespace domino
{

TraceStats
computeTraceStats(const TraceBuffer &trace)
{
    TraceStats stats;
    stats.accesses = trace.size();

    std::unordered_set<LineAddr> lines;
    std::unordered_set<std::uint64_t> pages;
    std::unordered_set<Addr> pcs;
    std::uint64_t reused = 0;
    std::uint64_t same_page = 0;
    std::uint64_t prev_page = ~0ULL;
    bool have_prev = false;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Access &a = trace[i];
        const LineAddr line = a.line();
        const std::uint64_t page = pageOfLine(line);
        if (!lines.insert(line).second)
            ++reused;
        pages.insert(page);
        pcs.insert(a.pc);
        if (have_prev && page == prev_page)
            ++same_page;
        prev_page = page;
        have_prev = true;
    }

    stats.distinctLines = lines.size();
    stats.distinctPages = pages.size();
    stats.distinctPcs = pcs.size();
    if (stats.accesses) {
        stats.lineReuseFraction = static_cast<double>(reused) /
            static_cast<double>(stats.accesses);
    }
    if (stats.accesses > 1) {
        stats.samePageFraction = static_cast<double>(same_page) /
            static_cast<double>(stats.accesses - 1);
    }
    return stats;
}

} // namespace domino
