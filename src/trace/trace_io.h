/**
 * @file
 * Binary trace serialisation.
 *
 * Format: a 20-byte header ("DOMTRACE" magic, version u32, record
 * count u64) followed by packed little-endian 17-byte records of
 * (pc u64, addr u64, flags u8).  Deliberately simple so external
 * tools (ChampSim converters, python) can parse it.  The layout
 * and its versioning rules are specified in docs/TRACE_FORMAT.md;
 * any record-layout change must bump the version there and here.
 */

#ifndef DOMINO_TRACE_TRACE_IO_H
#define DOMINO_TRACE_TRACE_IO_H

#include <string>

#include "trace/trace_buffer.h"

namespace domino
{

/** Binary header size: 8-byte magic + u32 version + u64 count
 *  (docs/TRACE_FORMAT.md "Header"). */
inline constexpr std::size_t traceHeaderBytes = 8 + 4 + 8;

/** Binary record size: u64 pc + u64 addr + u8 flags
 *  (docs/TRACE_FORMAT.md "Record"). */
inline constexpr std::size_t traceRecordBytes = 8 + 8 + 1;

/** Result of a trace I/O operation. */
struct IoResult
{
    bool ok = true;
    std::string error;

    static IoResult success() { return {}; }
    static IoResult failure(std::string msg) { return {false,
        std::move(msg)}; }
};

/** Write a trace to a file. */
IoResult writeTrace(const std::string &path, const TraceBuffer &trace);

/**
 * Read a trace from a file.  Rejects (with a clear error and
 * without touching @p trace) a bad magic, an unknown version, a
 * truncated header or body, and a file whose byte length does not
 * match its declared record count (docs/TRACE_FORMAT.md "Error
 * handling").
 */
IoResult readTrace(const std::string &path, TraceBuffer &trace);

/**
 * Write a trace in the text interchange format: one access per
 * line, "<pc-hex> <addr-hex> R|W".  Intended for importing traces
 * from other simulators (e.g. converted ChampSim traces) and for
 * eyeballing generated workloads.
 */
IoResult writeTextTrace(const std::string &path,
                        const TraceBuffer &trace);

/** Read the text interchange format (see writeTextTrace). */
IoResult readTextTrace(const std::string &path, TraceBuffer &trace);

} // namespace domino

#endif // DOMINO_TRACE_TRACE_IO_H
