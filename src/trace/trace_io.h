/**
 * @file
 * Binary trace serialisation.
 *
 * Format: a 20-byte header ("DOMTRACE" magic, version u32, record
 * count u64) followed by packed little-endian 17-byte records of
 * (pc u64, addr u64, flags u8).  Deliberately simple so external
 * tools (ChampSim converters, python) can parse it.  The layout
 * and its versioning rules are specified in docs/TRACE_FORMAT.md;
 * any record-layout change must bump the version there and here.
 */

#ifndef DOMINO_TRACE_TRACE_IO_H
#define DOMINO_TRACE_TRACE_IO_H

#include <string>

#include "trace/trace_buffer.h"

namespace domino
{

/** Binary header size: 8-byte magic + u32 version + u64 count
 *  (docs/TRACE_FORMAT.md "Header"). */
inline constexpr std::size_t traceHeaderBytes = 8 + 4 + 8;

/** Binary record size: u64 pc + u64 addr + u8 flags
 *  (docs/TRACE_FORMAT.md "Record"). */
inline constexpr std::size_t traceRecordBytes = 8 + 8 + 1;

/** Result of a trace I/O operation. */
struct IoResult
{
    bool ok = true;
    std::string error;

    static IoResult success() { return {}; }
    static IoResult failure(std::string msg) { return {false,
        std::move(msg)}; }
};

/** Write a trace to a file. */
IoResult writeTrace(const std::string &path, const TraceBuffer &trace);

/**
 * Write a trace to a file directly from a streaming source without
 * materialising it: records are drained from @p source in bounded
 * chunks and the header's record count is backpatched at the end.
 * The resulting file is byte-identical to writeTrace() of the same
 * record sequence (same format, same version -- the on-disk layout
 * does not know how it was produced).  This is the generation path
 * of the out-of-core disk tier: a billion-access workload spills
 * with O(chunk) memory.
 *
 * @param source drained to exhaustion (it is NOT reset first, so a
 *        partially consumed source writes its remainder).
 * @param count_out when non-null, receives the record count.
 */
IoResult writeTraceStreamed(const std::string &path,
                            AccessSource &source,
                            std::uint64_t *count_out = nullptr);

/**
 * Read a trace from a file.  Rejects (with a clear error and
 * without touching @p trace) a bad magic, an unknown version, a
 * truncated header or body, and a file whose byte length does not
 * match its declared record count (docs/TRACE_FORMAT.md "Error
 * handling").
 */
IoResult readTrace(const std::string &path, TraceBuffer &trace);

/**
 * Open @p path for incremental record reading: validates the header
 * and the exact file byte length with readTrace's rules, fills
 * @p count, and leaves @p is positioned at the first record.  The
 * streaming replay layer (src/trace/streaming_source.h) builds on
 * this so the validation rules live in exactly one place.
 */
IoResult openTraceStream(const std::string &path, std::ifstream &is,
                         std::uint64_t &count);

/**
 * Write a trace in the text interchange format: one access per
 * line, "<pc-hex> <addr-hex> R|W".  Intended for importing traces
 * from other simulators (e.g. converted ChampSim traces) and for
 * eyeballing generated workloads.
 */
IoResult writeTextTrace(const std::string &path,
                        const TraceBuffer &trace);

/** Read the text interchange format (see writeTextTrace). */
IoResult readTextTrace(const std::string &path, TraceBuffer &trace);

} // namespace domino

#endif // DOMINO_TRACE_TRACE_IO_H
