/**
 * @file
 * Generate-once trace cache: materialise each workload trace a
 * single time and share the immutable buffer across every
 * experiment cell that replays it.
 *
 * The experiment runner fans (workload x config) cells over a
 * thread pool, and every config cell of one figure row consumes the
 * *identical* access stream (the determinism contract pins the
 * per-cell seed to the grid position, not the config).  Before this
 * cache each cell regenerated that stream from scratch; now the
 * first cell to ask for a key generates it and every other cell --
 * concurrent or later -- replays the shared buffer through a
 * zero-copy TraceView.
 *
 * Concurrency model: *single-flight generation*.  Cells requesting
 * a key that is being generated block on the generator's future
 * instead of racing duplicate generations.  Once published, a
 * buffer is immutable (std::shared_ptr<const TraceBuffer>), so
 * replay needs no synchronisation at all.
 *
 * The cache is keyed by an opaque string so this layer stays below
 * the workload generators (src/workloads depends on src/trace, not
 * the other way around); WorkloadParams::cacheKey() produces the
 * canonical key for synthetic workloads.
 *
 * Disk tier (out-of-core substrate): setSpillDir() adds a second,
 * cross-process tier under the same keys.  tracePath()/stream()
 * materialise a workload once as an on-disk `DOMTRACE` file --
 * generated via bounded-memory streaming, never fully resident --
 * and image() transparently reloads spilled `DOMIMAGE` files
 * instead of re-unpacking.  Files are hash-named (FNV-1a of the
 * key) with the full key stored alongside (sidecar for traces,
 * embedded section for images) and verified before trust; they are
 * published by atomic rename, so concurrent *processes* either see
 * a complete file or none.  Duplicate generation across processes
 * is harmless: generation is deterministic, so last-rename-wins
 * publishes identical bytes (DESIGN.md "Out-of-core substrate").
 *
 * Mmap tier (setMmapTier): by default a disk-tier image() hit
 * copies the spill into a fresh heap image (buffered read, works
 * for every spill version).  With the mmap tier enabled, a
 * version-2 spill is instead memory-mapped read-only and the image
 * is served as a zero-copy view into the mapping
 * (MappedReplayImage): no heap copy, and N sharded sibling
 * processes replaying one spill share the same page-cache pages
 * instead of each materialising a private copy.  A v1 or
 * unmappable spill silently falls back to the buffered path --
 * the tier is a performance property, never a correctness one.
 */

#ifndef DOMINO_TRACE_TRACE_CACHE_H
#define DOMINO_TRACE_TRACE_CACHE_H

// conventions: allow-file(audit-coverage) -- generate-once cache behind a mutex; keys are opaque and
// entries are immutable after insertion, the cached TraceBuffer
// contents are validated by the generators' own tests

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "trace/replay_image.h"
#include "trace/streaming_source.h"
#include "trace/trace_buffer.h"
#include "trace/trace_io.h"

namespace domino
{

/**
 * Zero-copy read cursor over a shared immutable trace.
 *
 * Each cell owns its own TraceView (and thus its own cursor) while
 * all views of one key share the underlying records; a view is two
 * words plus a reference count, so passing it by value is cheap.
 */
class TraceView : public AccessSource
{
  public:
    /** An empty view (no buffer): next() immediately reports
     *  exhaustion.  Exists so views can be members/placeholders. */
    TraceView() = default;

    explicit TraceView(std::shared_ptr<const TraceBuffer> buffer)
        : buf(std::move(buffer))
    {}

    bool
    next(Access &out) override
    {
        if (!buf || cursor >= buf->size())
            return false;
        out = (*buf)[cursor++];
        return true;
    }

    void reset() override { cursor = 0; }

    /** Records in the underlying trace (0 for an empty view). */
    std::size_t size() const { return buf ? buf->size() : 0; }

    /** Records already consumed since construction/reset(). */
    std::size_t position() const { return cursor; }

    /** The shared buffer itself (null for an empty view). */
    const std::shared_ptr<const TraceBuffer> &buffer() const
    {
        return buf;
    }

    /**
     * Verify the view's structural invariants: the cursor never
     * runs past the trace, and an empty view has no progress.
     *
     * @return empty string if OK, else a description of the first
     *         violation (same contract as the table audits).
     */
    std::string
    audit() const
    {
        if (!buf)
            return cursor == 0 ? ""
                               : "cursor advanced on an empty view";
        if (cursor > buf->size())
            return "cursor " + std::to_string(cursor) +
                " past trace size " + std::to_string(buf->size());
        return "";
    }

  private:
    std::shared_ptr<const TraceBuffer> buf;
    std::size_t cursor = 0;
};

/**
 * The generate-once cache.  Thread-safe; generators run outside
 * the cache lock (only one per key, see file comment).
 *
 * Two value planes share the keyspace conventions: full traces
 * (get/view) and derived baseline miss sequences (missSequence) --
 * the latter so the L1-filter pass that several analysis cells need
 * (opportunity/Sequitur columns) also runs once per key.
 *
 * A generator that throws is not cached: the exception propagates
 * to the generating cell *and* to every cell blocked on the same
 * key, and a later request retries generation.
 */
class TraceCache
{
  public:
    using Generator = std::function<TraceBuffer()>;
    using MissGenerator = std::function<std::vector<LineAddr>()>;
    /** Factory of a fresh workload cursor for bounded-memory spill
     *  (drained once by writeTraceStreamed; never materialised). */
    using SourceFactory =
        std::function<std::unique_ptr<AccessSource>()>;

    TraceCache() = default;
    TraceCache(const TraceCache &) = delete;
    TraceCache &operator=(const TraceCache &) = delete;

    /**
     * The shared trace for @p key, generating it via @p generate
     * if this is the first request (single-flight: concurrent
     * requests for one key block on one generation).
     */
    std::shared_ptr<const TraceBuffer> get(const std::string &key,
                                           const Generator &generate);

    /** Convenience: a fresh cursor over get(key, generate). */
    TraceView
    view(const std::string &key, const Generator &generate)
    {
        return TraceView(get(key, generate));
    }

    /**
     * The memoised baseline miss sequence for @p key (same
     * single-flight semantics as get(), separate value plane --
     * callers conventionally prefix the trace key, e.g. "miss:").
     */
    std::shared_ptr<const std::vector<LineAddr>> missSequence(
        const std::string &key, const MissGenerator &generate);

    /**
     * The memoised packed replay image of the trace for @p key
     * (third value plane, same single-flight semantics).  Built
     * from get(key, generate), so the first request may generate
     * the trace too; every later cell -- any technique, any core --
     * shares one unpacking pass.
     */
    std::shared_ptr<const ReplayImage> image(
        const std::string &key, const Generator &generate);

    /**
     * Enable the disk tier rooted at @p dir (created on first use);
     * an empty @p dir disables it.  Not synchronised against
     * in-flight requests: configure before fanning out cells (the
     * bench harness does this during CLI parsing).
     */
    void setSpillDir(std::string dir);

    /** The disk-tier root, empty when the tier is disabled. */
    const std::string &spillDir() const { return spillRoot; }

    /**
     * Serve image() disk-tier hits as zero-copy views of a
     * read-only file mapping instead of buffered heap copies (see
     * file comment, "Mmap tier").  Requires the disk tier; like
     * setSpillDir(), configure before fanning out cells.
     */
    void setMmapTier(bool on);

    /** True when image() prefers the mapped load path. */
    bool mmapTier() const { return mmapLoad; }

    /** Disk-tier image() hits served zero-copy from a mapping
     *  (subset of diskHits()). */
    std::uint64_t
    mmapHits() const
    {
        return mmapHitCnt.load(std::memory_order_relaxed);
    }

    /**
     * The on-disk `DOMTRACE` file for @p key, generating it via one
     * bounded-memory streamed pass over @p makeSource() if no valid
     * spill exists (single-flight in-process; atomic-rename
     * publication across processes).  Requires the disk tier.
     *
     * @param path_out receives the file path on success.
     */
    IoResult tracePath(const std::string &key,
                       const SourceFactory &makeSource,
                       std::string &path_out);

    /**
     * Convenience: open @p source as a whole-trace streaming cursor
     * over tracePath(key, makeSource).  The run's memory stays
     * O(buffer_records) regardless of the trace length.
     */
    IoResult stream(const std::string &key,
                    const SourceFactory &makeSource,
                    StreamingTraceSource &source,
                    std::uint32_t buffer_records =
                        defaultStreamBufferRecords);

    /** Disk-tier requests served by an existing valid spill file. */
    std::uint64_t
    diskHits() const
    {
        return diskHitCnt.load(std::memory_order_relaxed);
    }

    /** Spill files actually written (disk-tier generations). */
    std::uint64_t
    spills() const
    {
        return spillCnt.load(std::memory_order_relaxed);
    }

    /** Traces actually generated (cache misses that ran a
     *  generator to completion, both planes). */
    std::uint64_t
    generations() const
    {
        return generationCnt.load(std::memory_order_relaxed);
    }

    /** Requests served from an existing or in-flight entry. */
    std::uint64_t
    hits() const
    {
        return hitCnt.load(std::memory_order_relaxed);
    }

    /** Entries currently cached (both planes). */
    std::size_t size() const;

    /** Drop every cached entry (counters keep accumulating). */
    void clear();

  private:
    template <typename V>
    using FutureMap = std::unordered_map<
        std::string, std::shared_future<std::shared_ptr<const V>>>;

    /** Single-flight lookup-or-generate over one value plane. */
    template <typename V, typename G>
    std::shared_ptr<const V> getOrGenerate(FutureMap<V> &map,
                                           const std::string &key,
                                           const G &generate);

    /** Hash-named spill file path for @p key (no I/O). */
    std::string spillFilePath(const std::string &key,
                              const char *extension) const;

    /** Generate-or-reuse the DOMTRACE spill for @p key; throws
     *  std::runtime_error on I/O failure (the single-flight layer
     *  converts that into an unpublished entry). */
    std::string ensureTraceFile(const std::string &key,
                                const SourceFactory &makeSource);

    mutable std::mutex mu;
    FutureMap<TraceBuffer> traces;
    FutureMap<std::vector<LineAddr>> misses;
    FutureMap<ReplayImage> images;
    FutureMap<std::string> tracePaths;
    std::string spillRoot;
    bool mmapLoad = false;
    std::atomic<std::uint64_t> generationCnt{0};
    std::atomic<std::uint64_t> hitCnt{0};
    std::atomic<std::uint64_t> diskHitCnt{0};
    std::atomic<std::uint64_t> mmapHitCnt{0};
    std::atomic<std::uint64_t> spillCnt{0};
};

} // namespace domino

#endif // DOMINO_TRACE_TRACE_CACHE_H
