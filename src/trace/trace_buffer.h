/**
 * @file
 * In-memory access trace container and streaming source interface.
 */

#ifndef DOMINO_TRACE_TRACE_BUFFER_H
#define DOMINO_TRACE_TRACE_BUFFER_H

// conventions: allow-file(audit-coverage) -- append-only recording of an access sequence; any record is a
// valid record, and on-disk round-trips are checked by
// readTrace/writeTrace and their tests

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "trace/access.h"

namespace domino
{

/**
 * Abstract source of accesses.  Both stored traces and on-the-fly
 * workload generators implement this, so simulators can consume
 * either without materialising multi-gigabyte traces.
 */
class AccessSource
{
  public:
    virtual ~AccessSource() = default;

    /**
     * Produce the next access.
     * @param out filled with the next access when available.
     * @return false when the source is exhausted.
     */
    virtual bool next(Access &out) = 0;

    /** Restart the source from the beginning, if supported. */
    virtual void reset() = 0;
};

/**
 * A trace held fully in memory.  Used by tests and by experiments
 * that must replay the identical access stream under several
 * prefetchers (coverage comparisons need this).
 */
class TraceBuffer : public AccessSource
{
  public:
    TraceBuffer() = default;
    explicit TraceBuffer(std::vector<Access> recs)
        : records(std::move(recs))
    {}

    /** Append one access. */
    void push(const Access &a) { records.push_back(a); }

    /** Append a read access by address (pc defaults to 0). */
    void
    pushRead(Addr addr, Addr pc = 0)
    {
        records.push_back(Access{pc, addr, false});
    }

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }
    const Access &
    operator[](std::size_t i) const
    {
        DCHECK_LT(i, records.size());
        return records[i];
    }
    const std::vector<Access> &data() const { return records; }
    std::vector<Access> &data() { return records; }

    bool
    next(Access &out) override
    {
        if (cursor >= records.size())
            return false;
        out = records[cursor++];
        return true;
    }

    void reset() override { cursor = 0; }

  private:
    std::vector<Access> records;
    std::size_t cursor = 0;
};

} // namespace domino

#endif // DOMINO_TRACE_TRACE_BUFFER_H
