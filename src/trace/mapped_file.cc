#include "mapped_file.h"

// The one file allowed to touch the raw mapping syscalls (domlint
// rule `raw-mmap`): every mapped consumer shares this wrapper so
// mapping lifetime and error handling are audited in one place.
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace domino
{

MappedFile::MappedFile(MappedFile &&other) noexcept
    : base(other.base), bytes(other.bytes),
      filePath(std::move(other.filePath)), opened(other.opened)
{
    other.base = nullptr;
    other.bytes = 0;
    other.opened = false;
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        unmap();
        base = other.base;
        bytes = other.bytes;
        filePath = std::move(other.filePath);
        opened = other.opened;
        other.base = nullptr;
        other.bytes = 0;
        other.opened = false;
    }
    return *this;
}

MappedFile::~MappedFile() { unmap(); }

void
MappedFile::unmap()
{
    if (base) {
        // The mapping was created by this class, read-only, over the
        // whole file; failure here has no caller-visible remedy.
        ::munmap(const_cast<unsigned char *>(base), bytes);
    }
    base = nullptr;
    bytes = 0;
    opened = false;
}

IoResult
MappedFile::map(const std::string &path, MappedFile &out)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        return IoResult::failure("cannot open for mapping: " + path +
                                 " (" + std::strerror(errno) + ")");
    }

    struct stat st;
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        return IoResult::failure("cannot stat for mapping: " + path +
                                 " (" + std::strerror(err) + ")");
    }
    if (!S_ISREG(st.st_mode)) {
        ::close(fd);
        return IoResult::failure("not a regular file: " + path);
    }

    MappedFile fresh;
    fresh.filePath = path;
    fresh.bytes = static_cast<std::size_t>(st.st_size);
    if (fresh.bytes > 0) {
        void *addr = ::mmap(nullptr, fresh.bytes, PROT_READ,
                            MAP_SHARED, fd, 0);
        if (addr == MAP_FAILED) {
            const int err = errno;
            ::close(fd);
            return IoResult::failure("mmap failed: " + path + " (" +
                                     std::strerror(err) + ")");
        }
        fresh.base = static_cast<const unsigned char *>(addr);
    }
    // The mapping persists after the descriptor closes (POSIX); not
    // holding fds means N sharded siblings never exhaust the limit.
    ::close(fd);
    fresh.opened = true;
    out = std::move(fresh);
    return IoResult::success();
}

void
MappedFile::advise(Advice advice) const
{
    if (!base)
        return;
    int hint = MADV_NORMAL;
    switch (advice) {
    case Advice::Normal:
        hint = MADV_NORMAL;
        break;
    case Advice::Sequential:
        hint = MADV_SEQUENTIAL;
        break;
    case Advice::Random:
        hint = MADV_RANDOM;
        break;
    }
    // Advisory only: a failure changes nothing observable.
    ::madvise(const_cast<unsigned char *>(base), bytes, hint);
}

std::string
MappedFile::audit() const
{
    if (!opened) {
        if (base != nullptr || bytes != 0)
            return "unopened wrapper carries a mapping";
        return "";
    }
    if (bytes == 0 && base != nullptr)
        return "zero-byte mapping carries a base pointer";
    if (bytes > 0 && base == nullptr)
        return "non-empty mapping lost its base pointer";
    return "";
}

} // namespace domino
