#include "trace_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace domino
{

namespace
{

constexpr char magic[8] = {'D', 'O', 'M', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t version = 1;
constexpr std::size_t recordBytes = traceRecordBytes;

// The on-disk layout is a contract with external tools
// (docs/TRACE_FORMAT.md); any change here is a version bump there.
static_assert(traceHeaderBytes == 20,
              "header layout changed: bump the version and update "
              "docs/TRACE_FORMAT.md");
static_assert(traceRecordBytes == 17,
              "record layout changed: bump the version and update "
              "docs/TRACE_FORMAT.md");
static_assert(sizeof(magic) + sizeof(version) +
                  sizeof(std::uint64_t) == traceHeaderBytes,
              "header fields no longer sum to the documented size");
static_assert(sizeof(Access::pc) == 8 && sizeof(Access::addr) == 8,
              "Access field widths no longer match the documented "
              "8-byte pc/addr record fields");

} // anonymous namespace

IoResult
writeTrace(const std::string &path, const TraceBuffer &trace)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return IoResult::failure("cannot open for writing: " + path);

    os.write(magic, sizeof(magic));
    std::uint32_t ver = version;
    os.write(reinterpret_cast<const char *>(&ver), sizeof(ver));
    std::uint64_t count = trace.size();
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));

    std::vector<char> buf;
    buf.reserve(trace.size() * recordBytes);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Access &a = trace[i];
        char rec[recordBytes];
        std::memcpy(rec, &a.pc, 8);
        std::memcpy(rec + 8, &a.addr, 8);
        rec[16] = a.isWrite ? 1 : 0;
        buf.insert(buf.end(), rec, rec + recordBytes);
    }
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!os)
        return IoResult::failure("short write: " + path);
    return IoResult::success();
}

IoResult
writeTraceStreamed(const std::string &path, AccessSource &source,
                   std::uint64_t *count_out)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return IoResult::failure("cannot open for writing: " + path);

    os.write(magic, sizeof(magic));
    std::uint32_t ver = version;
    os.write(reinterpret_cast<const char *>(&ver), sizeof(ver));
    // Placeholder count, backpatched once the source is drained.
    std::uint64_t count = 0;
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));

    // Bounded chunk buffer: the only per-call memory, independent of
    // the trace length.
    constexpr std::size_t chunk_records = 1u << 16;
    std::vector<char> buf;
    buf.reserve(chunk_records * recordBytes);
    Access a;
    while (source.next(a)) {
        char rec[recordBytes];
        std::memcpy(rec, &a.pc, 8);
        std::memcpy(rec + 8, &a.addr, 8);
        rec[16] = a.isWrite ? 1 : 0;
        buf.insert(buf.end(), rec, rec + recordBytes);
        ++count;
        if (buf.size() >= chunk_records * recordBytes) {
            os.write(buf.data(),
                     static_cast<std::streamsize>(buf.size()));
            buf.clear();
        }
    }
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));

    // Backpatch the record count (offset 12: magic + version).
    os.seekp(static_cast<std::streamoff>(sizeof(magic) +
                                         sizeof(ver)));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    if (!os)
        return IoResult::failure("short write: " + path);
    if (count_out)
        *count_out = count;
    return IoResult::success();
}

IoResult
openTraceStream(const std::string &path, std::ifstream &is,
                std::uint64_t &count)
{
    is.open(path, std::ios::binary | std::ios::ate);
    if (!is)
        return IoResult::failure("cannot open for reading: " + path);
    const std::streamoff file_bytes = is.tellg();
    is.seekg(0);

    if (file_bytes < static_cast<std::streamoff>(traceHeaderBytes))
        return IoResult::failure("truncated header: " + path);

    char got_magic[8];
    is.read(got_magic, sizeof(got_magic));
    if (!is || std::memcmp(got_magic, magic, sizeof(magic)) != 0)
        return IoResult::failure("bad magic: " + path);

    std::uint32_t ver = 0;
    is.read(reinterpret_cast<char *>(&ver), sizeof(ver));
    if (!is || ver != version)
        return IoResult::failure("unsupported version in: " + path);

    count = 0;
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is)
        return IoResult::failure("truncated header: " + path);

    // The byte length must match the declared record count exactly;
    // a short body would silently yield a partial trace and a long
    // one indicates a corrupt count or a concatenated file.
    const std::uint64_t body_bytes =
        static_cast<std::uint64_t>(file_bytes) - traceHeaderBytes;
    if (body_bytes < count * recordBytes) {
        return IoResult::failure(
            "truncated body: " + path + " declares " +
            std::to_string(count) + " records (" +
            std::to_string(count * recordBytes) + " bytes) but holds "
            + std::to_string(body_bytes) + " body bytes");
    }
    if (body_bytes > count * recordBytes) {
        return IoResult::failure(
            "trailing bytes after " + std::to_string(count) +
            " declared records in: " + path);
    }
    return IoResult::success();
}

IoResult
readTrace(const std::string &path, TraceBuffer &trace)
{
    std::ifstream is;
    std::uint64_t count = 0;
    if (IoResult open = openTraceStream(path, is, count); !open.ok)
        return open;

    // Parse into a scratch buffer so a failure cannot leave the
    // caller holding a partial trace.
    std::vector<Access> records;
    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        char rec[recordBytes];
        is.read(rec, recordBytes);
        if (!is)
            return IoResult::failure("truncated record in: " + path);
        Access a;
        std::memcpy(&a.pc, rec, 8);
        std::memcpy(&a.addr, rec + 8, 8);
        a.isWrite = rec[16] != 0;
        records.push_back(a);
    }
    trace.data() = std::move(records);
    trace.reset();
    return IoResult::success();
}

IoResult
writeTextTrace(const std::string &path, const TraceBuffer &trace)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return IoResult::failure("cannot open for writing: " + path);
    os << std::hex;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Access &a = trace[i];
        os << a.pc << ' ' << a.addr << ' '
           << (a.isWrite ? 'W' : 'R') << '\n';
    }
    if (!os)
        return IoResult::failure("short write: " + path);
    return IoResult::success();
}

IoResult
readTextTrace(const std::string &path, TraceBuffer &trace)
{
    std::ifstream is(path);
    if (!is)
        return IoResult::failure("cannot open for reading: " + path);
    std::vector<Access> records;
    std::string kind;
    std::uint64_t pc = 0, addr = 0;
    std::size_t line_no = 0;
    while (is >> std::hex >> pc >> addr >> kind) {
        ++line_no;
        if (kind != "R" && kind != "W") {
            return IoResult::failure(
                "bad access kind at record " +
                std::to_string(line_no) + " in: " + path);
        }
        records.push_back(Access{pc, addr, kind == "W"});
    }
    // eof with a clean partial extraction is the normal end; a fail
    // mid-stream means an unparsable field (previously this slipped
    // through when it happened on the very first record).
    if (!is.eof() && is.fail()) {
        return IoResult::failure("parse error at record " +
            std::to_string(line_no + 1) + " in: " + path);
    }
    trace.data() = std::move(records);
    trace.reset();
    return IoResult::success();
}

} // namespace domino
