#include "replay_image.h"

namespace domino
{

ReplayImage::ReplayImage(const TraceBuffer &trace)
{
    const std::size_t n = trace.size();
    lineArr.reserve(n);
    pcArr.reserve(n);
    rwArr.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Access &a = trace[i];
        lineArr.push_back(a.line());
        pcArr.push_back(a.pc);
        rwArr.push_back(a.isWrite ? 1 : 0);
    }
}

std::string
ReplayImage::audit() const
{
    if (pcArr.size() != lineArr.size() ||
        rwArr.size() != lineArr.size()) {
        return "parallel arrays disagree on the record count (" +
            std::to_string(lineArr.size()) + " lines, " +
            std::to_string(pcArr.size()) + " PCs, " +
            std::to_string(rwArr.size()) + " rw flags)";
    }
    for (std::size_t i = 0; i < rwArr.size(); ++i)
        if (rwArr[i] > 1)
            return "non-boolean rw flag at record " +
                std::to_string(i);
    return "";
}

std::string
ReplayImage::auditAgainst(const TraceBuffer &trace) const
{
    if (const std::string internal = audit(); !internal.empty())
        return internal;
    if (size() != trace.size()) {
        return "image holds " + std::to_string(size()) +
            " records of a " + std::to_string(trace.size()) +
            "-record trace";
    }
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Access &a = trace[i];
        if (lineArr[i] != a.line() || pcArr[i] != a.pc ||
            (rwArr[i] != 0) != a.isWrite) {
            return "record " + std::to_string(i) +
                " does not match the source trace";
        }
    }
    return "";
}

std::string
ReplayImage::auditAgainst(const ReplayImage &other) const
{
    if (const std::string internal = audit(); !internal.empty())
        return internal;
    if (const std::string internal = other.audit();
        !internal.empty())
        return "other image: " + internal;
    if (size() != other.size()) {
        return "image holds " + std::to_string(size()) +
            " records, other holds " + std::to_string(other.size());
    }
    if (lineArr != other.lineArr)
        return "line arrays differ";
    if (pcArr != other.pcArr)
        return "pc arrays differ";
    if (rwArr != other.rwArr)
        return "rw arrays differ";
    return "";
}

std::string
ReplayImage::auditPartition(unsigned cores,
                            std::uint32_t chunk) const
{
    if (cores == 0 || chunk == 0)
        return "degenerate shard geometry";
    std::vector<std::uint8_t> covered(size(), 0);
    for (unsigned c = 0; c < cores; ++c) {
        ReplayCursor cursor(*this, cores, c, chunk);
        std::size_t idx = 0;
        std::size_t prev = 0;
        bool first = true;
        while (cursor.next(idx)) {
            if (!first && idx <= prev) {
                return "core " + std::to_string(c) +
                    " cursor is not monotone at record " +
                    std::to_string(idx);
            }
            if (idx >= size()) {
                return "core " + std::to_string(c) +
                    " cursor yields record " + std::to_string(idx) +
                    " past the image";
            }
            if (covered[idx]) {
                return "record " + std::to_string(idx) +
                    " yielded by two shards";
            }
            covered[idx] = 1;
            prev = idx;
            first = false;
        }
    }
    for (std::size_t i = 0; i < covered.size(); ++i)
        if (!covered[i])
            return "record " + std::to_string(i) +
                " missing from every shard (not a partition)";
    return "";
}

} // namespace domino
