#include "replay_image.h"

#include <algorithm>

namespace domino
{

ReplayImage::ReplayImage(const TraceBuffer &trace)
{
    const std::size_t n = trace.size();
    lineArr.reserve(n);
    pcArr.reserve(n);
    rwArr.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Access &a = trace[i];
        lineArr.push_back(a.line());
        pcArr.push_back(a.pc);
        rwArr.push_back(a.isWrite ? 1 : 0);
    }
}

std::string
ReplayImage::audit() const
{
    if (viewBacked) {
        if (viewCount > 0 &&
            (!viewLines || !viewPcs || !viewRw || !backing)) {
            return "mapped view lost a lane pointer or its backing";
        }
        if (!lineArr.empty() || !pcArr.empty() || !rwArr.empty())
            return "mapped view also owns heap lanes";
    } else if (pcArr.size() != lineArr.size() ||
               rwArr.size() != lineArr.size()) {
        return "parallel arrays disagree on the record count (" +
            std::to_string(lineArr.size()) + " lines, " +
            std::to_string(pcArr.size()) + " PCs, " +
            std::to_string(rwArr.size()) + " rw flags)";
    }
    const std::uint8_t *rw = rwData();
    for (std::size_t i = 0; i < size(); ++i)
        if (rw[i] > 1)
            return "non-boolean rw flag at record " +
                std::to_string(i);
    return "";
}

std::string
ReplayImage::auditAgainst(const TraceBuffer &trace) const
{
    if (const std::string internal = audit(); !internal.empty())
        return internal;
    if (size() != trace.size()) {
        return "image holds " + std::to_string(size()) +
            " records of a " + std::to_string(trace.size()) +
            "-record trace";
    }
    const LineAddr *lines = linesData();
    const Addr *pcs = pcsData();
    const std::uint8_t *rw = rwData();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Access &a = trace[i];
        if (lines[i] != a.line() || pcs[i] != a.pc ||
            (rw[i] != 0) != a.isWrite) {
            return "record " + std::to_string(i) +
                " does not match the source trace";
        }
    }
    return "";
}

std::string
ReplayImage::auditAgainst(const ReplayImage &other) const
{
    if (const std::string internal = audit(); !internal.empty())
        return internal;
    if (const std::string internal = other.audit();
        !internal.empty())
        return "other image: " + internal;
    if (size() != other.size()) {
        return "image holds " + std::to_string(size()) +
            " records, other holds " + std::to_string(other.size());
    }
    // Lane-pointer comparison so any storage-mode pairing (owning
    // vs owning, owning vs mapped view, view vs view) is checked
    // byte-for-byte -- the loaded-vs-mapped equality contract.
    const std::size_t n = size();
    if (!std::equal(linesData(), linesData() + n,
                    other.linesData()))
        return "line arrays differ";
    if (!std::equal(pcsData(), pcsData() + n, other.pcsData()))
        return "pc arrays differ";
    if (!std::equal(rwData(), rwData() + n, other.rwData()))
        return "rw arrays differ";
    return "";
}

std::string
ReplayImage::auditPartition(unsigned cores,
                            std::uint32_t chunk) const
{
    if (cores == 0 || chunk == 0)
        return "degenerate shard geometry";
    std::vector<std::uint8_t> covered(size(), 0);
    for (unsigned c = 0; c < cores; ++c) {
        ReplayCursor cursor(*this, cores, c, chunk);
        std::size_t idx = 0;
        std::size_t prev = 0;
        bool first = true;
        while (cursor.next(idx)) {
            if (!first && idx <= prev) {
                return "core " + std::to_string(c) +
                    " cursor is not monotone at record " +
                    std::to_string(idx);
            }
            if (idx >= size()) {
                return "core " + std::to_string(c) +
                    " cursor yields record " + std::to_string(idx) +
                    " past the image";
            }
            if (covered[idx]) {
                return "record " + std::to_string(idx) +
                    " yielded by two shards";
            }
            covered[idx] = 1;
            prev = idx;
            first = false;
        }
    }
    for (std::size_t i = 0; i < covered.size(); ++i)
        if (!covered[i])
            return "record " + std::to_string(i) +
                " missing from every shard (not a partition)";
    return "";
}

} // namespace domino
