#include "replay_spill.h"

#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

namespace domino
{

namespace
{

constexpr char magic[8] = {'D', 'O', 'M', 'I', 'M', 'A', 'G', 'E'};
/** The only version the writer emits (64-byte-aligned sections). */
constexpr std::uint32_t currentVersion = 2;
/** Still readable: PR 6's contiguous-section layout. */
constexpr std::uint32_t legacyVersion = 1;

/** Section ids, in the order sections appear in the file
 *  (docs/TRACE_FORMAT.md "Section ids"). */
enum SectionId : std::uint32_t
{
    SecKey = 1,
    SecLines = 2,
    SecPcs = 3,
    SecRw = 4,
};

// The on-disk layout is a contract with external tools and future
// repo versions (docs/TRACE_FORMAT.md); any change here is a
// version bump there.
static_assert(imageHeaderBytes == 24,
              "spill header layout changed: bump the version and "
              "update docs/TRACE_FORMAT.md");
static_assert(imageSectionEntryBytes == 32,
              "section-table entry layout changed: bump the version "
              "and update docs/TRACE_FORMAT.md");
static_assert(imageSectionCount == 4,
              "section roster changed: bump the version and update "
              "docs/TRACE_FORMAT.md");
static_assert(imageSectionAlign == 64,
              "v2 section alignment changed: bump the version and "
              "update docs/TRACE_FORMAT.md");
static_assert(sizeof(LineAddr) == 8 && sizeof(Addr) == 8,
              "array element widths no longer match the documented "
              "8-byte line/pc section fields");

/** End of the fixed header + section table (both versions). */
constexpr std::uint64_t tableEndBytes = imageHeaderBytes +
    std::uint64_t{imageSectionCount} * imageSectionEntryBytes;

/** Next v2 section boundary at or after @p offset. */
constexpr std::uint64_t
alignSection(std::uint64_t offset)
{
    return (offset + imageSectionAlign - 1) &
        ~(imageSectionAlign - 1);
}

/** One parsed section-table entry. */
struct Section
{
    std::uint32_t id = 0;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
};

/** Everything the fixed front of a spill file declares. */
struct SpillLayout
{
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    Section sections[imageSectionCount];
};

void
putU32(std::string &out, std::uint32_t v)
{
    char b[4];
    std::memcpy(b, &v, 4);
    out.append(b, 4);
}

void
putU64(std::string &out, std::uint64_t v)
{
    char b[8];
    std::memcpy(b, &v, 8);
    out.append(b, 8);
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

} // anonymous namespace

std::uint64_t
fnv1a64(const void *data, std::size_t bytes)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

IoResult
spillReplayImage(const std::string &path, const ReplayImage &image,
                 const std::string &key)
{
    const std::size_t n = image.size();

    struct Body
    {
        std::uint32_t id;
        const void *data;
        std::uint64_t bytes;
    };
    const Body bodies[imageSectionCount] = {
        {SecKey, key.data(), key.size()},
        {SecLines, image.linesData(), n * sizeof(LineAddr)},
        {SecPcs, image.pcsData(), n * sizeof(Addr)},
        {SecRw, image.rwData(), n},
    };

    // Header + section table, then the section bytes in id order,
    // each section's start padded to the v2 alignment with zero
    // bytes (the loader enforces exactly this geometry).
    std::string head;
    head.append(magic, sizeof(magic));
    putU32(head, currentVersion);
    putU32(head, imageSectionCount);
    putU64(head, n);
    std::uint64_t offset = tableEndBytes;
    for (const Body &b : bodies) {
        offset = alignSection(offset);
        putU32(head, b.id);
        putU32(head, 0);  // reserved, written as zero
        putU64(head, offset);
        putU64(head, b.bytes);
        putU64(head, fnv1a64(b.data, b.bytes));
        offset += b.bytes;
    }

    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return IoResult::failure("cannot open for writing: " + path);
    os.write(head.data(), static_cast<std::streamsize>(head.size()));
    const char pad[imageSectionAlign] = {};
    std::uint64_t written = tableEndBytes;
    for (const Body &b : bodies) {
        const std::uint64_t gap = alignSection(written) - written;
        os.write(pad, static_cast<std::streamsize>(gap));
        os.write(static_cast<const char *>(b.data),
                 static_cast<std::streamsize>(b.bytes));
        written += gap + b.bytes;
    }
    if (!os)
        return IoResult::failure("short write: " + path);
    return IoResult::success();
}

namespace
{

/**
 * Validate the fixed front of a spill file -- @p head must hold its
 * first tableEndBytes bytes -- against @p file_bytes: magic, a
 * known version, the section roster, id order, version-appropriate
 * offsets (v1 contiguous, v2 aligned), fixed-width lane lengths vs
 * the record count, and the exact file length.  Shared by the
 * buffered and mapped loaders so the geometry rules live once.
 */
IoResult
parseSpillHead(const unsigned char *head, std::uint64_t file_bytes,
               const std::string &path, SpillLayout &layout)
{
    if (file_bytes < tableEndBytes)
        return IoResult::failure("truncated header: " + path);
    if (std::memcmp(head, magic, sizeof(magic)) != 0)
        return IoResult::failure("bad magic: " + path);

    layout.version = getU32(head + 8);
    const std::uint32_t nsec = getU32(head + 12);
    if (layout.version != currentVersion &&
        layout.version != legacyVersion)
        return IoResult::failure("unsupported version in: " + path);
    if (nsec != imageSectionCount)
        return IoResult::failure("unexpected section count in: " +
                                 path);
    layout.count = getU64(head + 16);

    std::uint64_t expect_offset = tableEndBytes;
    for (std::uint32_t i = 0; i < imageSectionCount; ++i) {
        const unsigned char *e =
            head + imageHeaderBytes + i * imageSectionEntryBytes;
        Section &s = layout.sections[i];
        s.id = getU32(e);
        const std::uint32_t reserved = getU32(e + 4);
        s.offset = getU64(e + 8);
        s.bytes = getU64(e + 16);
        s.checksum = getU64(e + 24);
        if (s.id != i + 1 || reserved != 0)
            return IoResult::failure("malformed section table in: " +
                                     path);
        if (layout.version >= currentVersion)
            expect_offset = alignSection(expect_offset);
        if (s.offset != expect_offset) {
            return IoResult::failure(
                layout.version >= currentVersion
                    ? "misaligned section layout in: " + path
                    : "non-contiguous section layout in: " + path);
        }
        expect_offset += s.bytes;
    }

    // Fixed-width sections must match the declared record count, and
    // the file must end exactly where the last section does.
    if (layout.sections[SecLines - 1].bytes != layout.count * 8 ||
        layout.sections[SecPcs - 1].bytes != layout.count * 8 ||
        layout.sections[SecRw - 1].bytes != layout.count) {
        return IoResult::failure(
            "section lengths disagree with the record count in: " +
            path);
    }
    if (file_bytes != expect_offset) {
        return IoResult::failure(
            "file length does not match the section table in: " +
            path);
    }
    return IoResult::success();
}

/** Reject non-zero bytes in an alignment gap (v2 padding rule). */
IoResult
checkPadZero(const unsigned char *gap, std::size_t bytes,
             const std::string &path)
{
    for (std::size_t i = 0; i < bytes; ++i)
        if (gap[i] != 0)
            return IoResult::failure(
                "non-zero section padding in: " + path);
    return IoResult::success();
}

/**
 * Shared front half of the buffered loaders: open, validate header
 * and section table and (for v2) the zero padding, return the
 * parsed layout.
 */
IoResult
parseSpillLayout(const std::string &path, std::ifstream &is,
                 SpillLayout &layout)
{
    is.open(path, std::ios::binary | std::ios::ate);
    if (!is)
        return IoResult::failure("cannot open for reading: " + path);
    const std::streamoff file_bytes = is.tellg();
    is.seekg(0);

    unsigned char head[tableEndBytes];
    if (file_bytes < static_cast<std::streamoff>(tableEndBytes))
        return IoResult::failure("truncated header: " + path);
    is.read(reinterpret_cast<char *>(head), sizeof(head));
    if (!is)
        return IoResult::failure("truncated header: " + path);
    if (IoResult r = parseSpillHead(
            head, static_cast<std::uint64_t>(file_bytes), path,
            layout);
        !r.ok)
        return r;

    if (layout.version >= currentVersion) {
        // The alignment gaps are part of the format: non-zero bytes
        // there mean a foreign or corrupt writer.
        std::uint64_t prev_end = tableEndBytes;
        for (const Section &s : layout.sections) {
            const std::uint64_t gap = s.offset - prev_end;
            unsigned char buf[imageSectionAlign];
            is.seekg(static_cast<std::streamoff>(prev_end));
            is.read(reinterpret_cast<char *>(buf),
                    static_cast<std::streamsize>(gap));
            if (!is)
                return IoResult::failure("truncated padding in: " +
                                         path);
            if (IoResult r = checkPadZero(buf, gap, path); !r.ok)
                return r;
            prev_end = s.offset + s.bytes;
        }
    }
    return IoResult::success();
}

/** Read one section's bytes into @p out and verify its checksum. */
IoResult
readSection(const std::string &path, std::ifstream &is,
            const Section &s, char *out)
{
    is.seekg(static_cast<std::streamoff>(s.offset));
    is.read(out, static_cast<std::streamsize>(s.bytes));
    if (!is)
        return IoResult::failure("truncated section in: " + path);
    if (fnv1a64(out, s.bytes) != s.checksum) {
        return IoResult::failure(
            "checksum mismatch in section " + std::to_string(s.id) +
            " of: " + path);
    }
    return IoResult::success();
}

} // anonymous namespace

IoResult
loadReplayImage(const std::string &path, ReplayImage &image,
                std::string *key)
{
    std::ifstream is;
    SpillLayout layout;
    if (IoResult r = parseSpillLayout(path, is, layout); !r.ok)
        return r;
    const Section *sections = layout.sections;
    const std::uint64_t count = layout.count;

    std::string got_key(sections[SecKey - 1].bytes, '\0');
    std::vector<LineAddr> lines(count);
    std::vector<Addr> pcs(count);
    std::vector<std::uint8_t> rw(count);
    if (IoResult r = readSection(path, is, sections[SecKey - 1],
                                 got_key.data());
        !r.ok)
        return r;
    if (IoResult r = readSection(
            path, is, sections[SecLines - 1],
            reinterpret_cast<char *>(lines.data()));
        !r.ok)
        return r;
    if (IoResult r = readSection(path, is, sections[SecPcs - 1],
                                 reinterpret_cast<char *>(pcs.data()));
        !r.ok)
        return r;
    if (IoResult r = readSection(path, is, sections[SecRw - 1],
                                 reinterpret_cast<char *>(rw.data()));
        !r.ok)
        return r;

    ReplayImage loaded(std::move(lines), std::move(pcs),
                       std::move(rw));
    // Belt and braces: the structural audit re-checks what the
    // geometry validation promised (and catches non-boolean rw
    // bytes, which checksums alone would pass through).
    if (const std::string err = loaded.audit(); !err.empty())
        return IoResult::failure("loaded image fails audit (" + err +
                                 "): " + path);
    image = std::move(loaded);
    if (key)
        *key = std::move(got_key);
    return IoResult::success();
}

IoResult
readImageKey(const std::string &path, std::string &key)
{
    std::ifstream is;
    SpillLayout layout;
    if (IoResult r = parseSpillLayout(path, is, layout); !r.ok)
        return r;
    std::string got_key(layout.sections[SecKey - 1].bytes, '\0');
    if (IoResult r = readSection(path, is,
                                 layout.sections[SecKey - 1],
                                 got_key.data());
        !r.ok)
        return r;
    key = std::move(got_key);
    return IoResult::success();
}

IoResult
MappedReplayImage::open(const std::string &path)
{
    auto fresh = std::make_shared<MappedFile>();
    if (IoResult r = MappedFile::map(path, *fresh); !r.ok)
        return r;
    const unsigned char *base = fresh->data();
    const std::uint64_t file_bytes = fresh->size();

    SpillLayout layout;
    if (file_bytes < tableEndBytes)
        return IoResult::failure("truncated header: " + path);
    if (IoResult r = parseSpillHead(base, file_bytes, path, layout);
        !r.ok)
        return r;
    if (layout.version != currentVersion) {
        return IoResult::failure(
            "mapped load needs a version-2 (aligned) spill; "
            "re-spill or use the buffered loader for: " + path);
    }

    // Eager cheap checks: zero padding and the tiny key section.
    // The lane checksums wait for the first image() call.
    std::uint64_t prev_end = tableEndBytes;
    for (const Section &s : layout.sections) {
        if (IoResult r = checkPadZero(base + prev_end,
                                      s.offset - prev_end, path);
            !r.ok)
            return r;
        prev_end = s.offset + s.bytes;
    }
    const Section &ks = layout.sections[SecKey - 1];
    if (fnv1a64(base + ks.offset, ks.bytes) != ks.checksum) {
        return IoResult::failure(
            "checksum mismatch in section " +
            std::to_string(ks.id) + " of: " + path);
    }

    embeddedKey.assign(
        reinterpret_cast<const char *>(base + ks.offset), ks.bytes);
    records = layout.count;
    for (unsigned i = 0; i < imageSectionCount; ++i) {
        secOffset[i] = layout.sections[i].offset;
        secBytes[i] = layout.sections[i].bytes;
        secChecksum[i] = layout.sections[i].checksum;
        laneValidated[i] = false;
    }
    laneValidated[SecKey - 1] = true;
    file = std::move(fresh);
    return IoResult::success();
}

const std::string &
MappedReplayImage::path() const
{
    static const std::string empty;
    return file ? file->path() : empty;
}

IoResult
MappedReplayImage::validateLane(unsigned idx)
{
    if (laneValidated[idx])
        return IoResult::success();
    // First touch walks the lane front to back; tell the kernel so
    // readahead fills the page cache at disk bandwidth.
    file->advise(MappedFile::Advice::Sequential);
    if (fnv1a64(file->data() + secOffset[idx], secBytes[idx]) !=
        secChecksum[idx]) {
        return IoResult::failure(
            "checksum mismatch in section " +
            std::to_string(idx + 1) + " of: " + file->path());
    }
    laneValidated[idx] = true;
    return IoResult::success();
}

IoResult
MappedReplayImage::image(ReplayImage &out)
{
    if (!file)
        return IoResult::failure("mapped image is not open");
    for (const unsigned lane :
         {SecLines - 1u, SecPcs - 1u, SecRw - 1u}) {
        if (IoResult r = validateLane(lane); !r.ok)
            return r;
    }
    const unsigned char *base = file->data();
    ReplayImage view(
        reinterpret_cast<const LineAddr *>(base +
                                           secOffset[SecLines - 1]),
        reinterpret_cast<const Addr *>(base +
                                       secOffset[SecPcs - 1]),
        base + secOffset[SecRw - 1], records,
        std::shared_ptr<const void>(file));
    if (const std::string err = view.audit(); !err.empty())
        return IoResult::failure("mapped image fails audit (" + err +
                                 "): " + file->path());
    out = std::move(view);
    return IoResult::success();
}

std::string
MappedReplayImage::auditAgainst(const ReplayImage &other)
{
    ReplayImage view;
    if (IoResult r = image(view); !r.ok)
        return r.error;
    return view.auditAgainst(other);
}

std::string
MappedReplayImage::audit() const
{
    if (!file) {
        if (records != 0 || !embeddedKey.empty())
            return "unopened loader carries state";
        return "";
    }
    if (const std::string err = file->audit(); !err.empty())
        return "mapping: " + err;
    if (secBytes[SecLines - 1] != records * 8 ||
        secBytes[SecPcs - 1] != records * 8 ||
        secBytes[SecRw - 1] != records) {
        return "lane geometry disagrees with the record count";
    }
    for (unsigned i = 0; i < imageSectionCount; ++i) {
        if (secOffset[i] % imageSectionAlign != 0)
            return "section " + std::to_string(i + 1) +
                " is not aligned";
        if (secOffset[i] + secBytes[i] > file->size())
            return "section " + std::to_string(i + 1) +
                " runs past the mapping";
    }
    if (embeddedKey.size() != secBytes[SecKey - 1])
        return "embedded key length disagrees with its section";
    return "";
}

} // namespace domino
