#include "replay_spill.h"

#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

namespace domino
{

namespace
{

constexpr char magic[8] = {'D', 'O', 'M', 'I', 'M', 'A', 'G', 'E'};
constexpr std::uint32_t version = 1;

/** Section ids, in the order sections appear in the file
 *  (docs/TRACE_FORMAT.md "Section ids"). */
enum SectionId : std::uint32_t
{
    SecKey = 1,
    SecLines = 2,
    SecPcs = 3,
    SecRw = 4,
};

// The on-disk layout is a contract with external tools and future
// repo versions (docs/TRACE_FORMAT.md); any change here is a
// version bump there.
static_assert(imageHeaderBytes == 24,
              "spill header layout changed: bump the version and "
              "update docs/TRACE_FORMAT.md");
static_assert(imageSectionEntryBytes == 32,
              "section-table entry layout changed: bump the version "
              "and update docs/TRACE_FORMAT.md");
static_assert(imageSectionCount == 4,
              "section roster changed: bump the version and update "
              "docs/TRACE_FORMAT.md");
static_assert(sizeof(LineAddr) == 8 && sizeof(Addr) == 8,
              "array element widths no longer match the documented "
              "8-byte line/pc section fields");

/** One parsed section-table entry. */
struct Section
{
    std::uint32_t id = 0;
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::uint64_t checksum = 0;
};

void
putU32(std::string &out, std::uint32_t v)
{
    char b[4];
    std::memcpy(b, &v, 4);
    out.append(b, 4);
}

void
putU64(std::string &out, std::uint64_t v)
{
    char b[8];
    std::memcpy(b, &v, 8);
    out.append(b, 8);
}

} // anonymous namespace

std::uint64_t
fnv1a64(const void *data, std::size_t bytes)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

IoResult
spillReplayImage(const std::string &path, const ReplayImage &image,
                 const std::string &key)
{
    const std::size_t n = image.size();
    const std::vector<LineAddr> &lines = image.lines();
    const std::vector<Addr> &pcs = image.pcs();

    // The rw flags have no zero-copy accessor; rebuild the packed
    // byte array through the public record interface.
    std::vector<std::uint8_t> rw(n);
    for (std::size_t i = 0; i < n; ++i)
        rw[i] = image.writeAt(i) ? 1 : 0;

    struct Body
    {
        std::uint32_t id;
        const void *data;
        std::uint64_t bytes;
    };
    const Body bodies[imageSectionCount] = {
        {SecKey, key.data(), key.size()},
        {SecLines, lines.data(), n * sizeof(LineAddr)},
        {SecPcs, pcs.data(), n * sizeof(Addr)},
        {SecRw, rw.data(), n},
    };

    // Header + section table, then the section bytes contiguously in
    // id order (the loader enforces exactly this geometry).
    std::string head;
    head.append(magic, sizeof(magic));
    putU32(head, version);
    putU32(head, imageSectionCount);
    putU64(head, n);
    std::uint64_t offset = imageHeaderBytes +
        std::uint64_t{imageSectionCount} * imageSectionEntryBytes;
    for (const Body &b : bodies) {
        putU32(head, b.id);
        putU32(head, 0);  // reserved, written as zero
        putU64(head, offset);
        putU64(head, b.bytes);
        putU64(head, fnv1a64(b.data, b.bytes));
        offset += b.bytes;
    }

    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return IoResult::failure("cannot open for writing: " + path);
    os.write(head.data(), static_cast<std::streamsize>(head.size()));
    for (const Body &b : bodies)
        os.write(static_cast<const char *>(b.data),
                 static_cast<std::streamsize>(b.bytes));
    if (!os)
        return IoResult::failure("short write: " + path);
    return IoResult::success();
}

namespace
{

/**
 * Shared front half of the loaders: open, validate header and
 * section table, return the parsed sections (id order, contiguous,
 * exact file length).  On success @p is is positioned at the first
 * section.
 */
IoResult
parseSpillLayout(const std::string &path, std::ifstream &is,
                 std::uint64_t &count, std::vector<Section> &sections)
{
    is.open(path, std::ios::binary | std::ios::ate);
    if (!is)
        return IoResult::failure("cannot open for reading: " + path);
    const std::streamoff file_bytes = is.tellg();
    is.seekg(0);

    const std::uint64_t table_end = imageHeaderBytes +
        std::uint64_t{imageSectionCount} * imageSectionEntryBytes;
    if (file_bytes < static_cast<std::streamoff>(table_end))
        return IoResult::failure("truncated header: " + path);

    char got_magic[8];
    is.read(got_magic, sizeof(got_magic));
    if (!is || std::memcmp(got_magic, magic, sizeof(magic)) != 0)
        return IoResult::failure("bad magic: " + path);

    std::uint32_t ver = 0;
    std::uint32_t nsec = 0;
    is.read(reinterpret_cast<char *>(&ver), sizeof(ver));
    is.read(reinterpret_cast<char *>(&nsec), sizeof(nsec));
    if (!is || ver != version)
        return IoResult::failure("unsupported version in: " + path);
    if (nsec != imageSectionCount)
        return IoResult::failure("unexpected section count in: " +
                                 path);
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is)
        return IoResult::failure("truncated header: " + path);

    sections.resize(imageSectionCount);
    std::uint64_t expect_offset = table_end;
    for (std::uint32_t i = 0; i < imageSectionCount; ++i) {
        Section &s = sections[i];
        std::uint32_t reserved = ~0u;
        is.read(reinterpret_cast<char *>(&s.id), 4);
        is.read(reinterpret_cast<char *>(&reserved), 4);
        is.read(reinterpret_cast<char *>(&s.offset), 8);
        is.read(reinterpret_cast<char *>(&s.bytes), 8);
        is.read(reinterpret_cast<char *>(&s.checksum), 8);
        if (!is)
            return IoResult::failure("truncated section table: " +
                                     path);
        if (s.id != i + 1 || reserved != 0)
            return IoResult::failure("malformed section table in: " +
                                     path);
        if (s.offset != expect_offset) {
            return IoResult::failure(
                "non-contiguous section layout in: " + path);
        }
        expect_offset += s.bytes;
    }

    // Fixed-width sections must match the declared record count, and
    // the file must end exactly where the last section does.
    if (sections[SecLines - 1].bytes != count * 8 ||
        sections[SecPcs - 1].bytes != count * 8 ||
        sections[SecRw - 1].bytes != count) {
        return IoResult::failure(
            "section lengths disagree with the record count in: " +
            path);
    }
    if (static_cast<std::uint64_t>(file_bytes) != expect_offset) {
        return IoResult::failure(
            "file length does not match the section table in: " +
            path);
    }
    return IoResult::success();
}

/** Read one section's bytes into @p out and verify its checksum. */
IoResult
readSection(const std::string &path, std::ifstream &is,
            const Section &s, char *out)
{
    is.seekg(static_cast<std::streamoff>(s.offset));
    is.read(out, static_cast<std::streamsize>(s.bytes));
    if (!is)
        return IoResult::failure("truncated section in: " + path);
    if (fnv1a64(out, s.bytes) != s.checksum) {
        return IoResult::failure(
            "checksum mismatch in section " + std::to_string(s.id) +
            " of: " + path);
    }
    return IoResult::success();
}

} // anonymous namespace

IoResult
loadReplayImage(const std::string &path, ReplayImage &image,
                std::string *key)
{
    std::ifstream is;
    std::uint64_t count = 0;
    std::vector<Section> sections;
    if (IoResult r = parseSpillLayout(path, is, count, sections);
        !r.ok)
        return r;

    std::string got_key(sections[SecKey - 1].bytes, '\0');
    std::vector<LineAddr> lines(count);
    std::vector<Addr> pcs(count);
    std::vector<std::uint8_t> rw(count);
    if (IoResult r = readSection(path, is, sections[SecKey - 1],
                                 got_key.data());
        !r.ok)
        return r;
    if (IoResult r = readSection(
            path, is, sections[SecLines - 1],
            reinterpret_cast<char *>(lines.data()));
        !r.ok)
        return r;
    if (IoResult r = readSection(path, is, sections[SecPcs - 1],
                                 reinterpret_cast<char *>(pcs.data()));
        !r.ok)
        return r;
    if (IoResult r = readSection(path, is, sections[SecRw - 1],
                                 reinterpret_cast<char *>(rw.data()));
        !r.ok)
        return r;

    ReplayImage loaded(std::move(lines), std::move(pcs),
                       std::move(rw));
    // Belt and braces: the structural audit re-checks what the
    // geometry validation promised (and catches non-boolean rw
    // bytes, which checksums alone would pass through).
    if (const std::string err = loaded.audit(); !err.empty())
        return IoResult::failure("loaded image fails audit (" + err +
                                 "): " + path);
    image = std::move(loaded);
    if (key)
        *key = std::move(got_key);
    return IoResult::success();
}

IoResult
readImageKey(const std::string &path, std::string &key)
{
    std::ifstream is;
    std::uint64_t count = 0;
    std::vector<Section> sections;
    if (IoResult r = parseSpillLayout(path, is, count, sections);
        !r.ok)
        return r;
    std::string got_key(sections[SecKey - 1].bytes, '\0');
    if (IoResult r = readSection(path, is, sections[SecKey - 1],
                                 got_key.data());
        !r.ok)
        return r;
    key = std::move(got_key);
    return IoResult::success();
}

} // namespace domino
