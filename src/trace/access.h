/**
 * @file
 * The memory-access record carried from workload generators into the
 * cache hierarchy.
 */

#ifndef DOMINO_TRACE_ACCESS_H
#define DOMINO_TRACE_ACCESS_H

#include <cstdint>

#include "common/types.h"

namespace domino
{

/**
 * One L1-D access as seen by the simulated core.
 *
 * The paper trains all prefetchers on L1-D miss sequences; the
 * access trace is the input that the cache model filters into that
 * miss sequence.  PC is carried because ISB is PC-localized.
 */
struct Access
{
    /** Program counter of the load/store instruction. */
    Addr pc = 0;
    /** Byte address touched. */
    Addr addr = 0;
    /** True for stores (stores also trigger fills on miss). */
    bool isWrite = false;

    /** Cache-line address of the access. */
    LineAddr line() const { return lineOf(addr); }

    bool
    operator==(const Access &other) const
    {
        return pc == other.pc && addr == other.addr &&
            isWrite == other.isWrite;
    }
};

} // namespace domino

#endif // DOMINO_TRACE_ACCESS_H
