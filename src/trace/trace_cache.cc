#include "trace_cache.h"

namespace domino
{

template <typename V, typename G>
std::shared_ptr<const V>
TraceCache::getOrGenerate(FutureMap<V> &map, const std::string &key,
                          const G &generate)
{
    std::promise<std::shared_ptr<const V>> promise;
    std::shared_future<std::shared_ptr<const V>> future;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        const auto it = map.find(key);
        if (it != map.end()) {
            future = it->second;
            hitCnt.fetch_add(1, std::memory_order_relaxed);
        } else {
            future = promise.get_future().share();
            map.emplace(key, future);
            leader = true;
        }
    }
    if (leader) {
        try {
            auto value = std::make_shared<const V>(generate());
            generationCnt.fetch_add(1, std::memory_order_relaxed);
            promise.set_value(std::move(value));
        } catch (...) {
            // Don't cache failures: unpublish the entry so a later
            // request retries, then deliver the exception to this
            // caller and every waiter via the shared future.
            {
                std::lock_guard<std::mutex> lock(mu);
                map.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::shared_ptr<const TraceBuffer>
TraceCache::get(const std::string &key, const Generator &generate)
{
    return getOrGenerate(traces, key, generate);
}

std::shared_ptr<const std::vector<LineAddr>>
TraceCache::missSequence(const std::string &key,
                         const MissGenerator &generate)
{
    return getOrGenerate(misses, key, generate);
}

std::shared_ptr<const ReplayImage>
TraceCache::image(const std::string &key, const Generator &generate)
{
    return getOrGenerate(images, key, [&] {
        // The trace plane memoises the expensive part; the image is
        // one unpacking pass over the shared buffer.
        return ReplayImage(*get(key, generate));
    });
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return traces.size() + misses.size() + images.size();
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    traces.clear();
    misses.clear();
    images.clear();
}

} // namespace domino
