#include "trace_cache.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <system_error>

#include "trace/replay_spill.h"

namespace domino
{

namespace
{

/**
 * A collision-safe temporary sibling of @p path for atomic
 * publication: write the full file, then std::rename onto the final
 * name.  The suffix only needs to be unique enough that two
 * concurrent *writers* never interleave into one temp file; the
 * rename itself is what readers synchronise on.  pid + a process-
 * local counter gives that uniqueness without any randomness (which
 * the conventions ban outright, and which names must not need: they
 * never influence experiment output).
 */
std::string
tempSibling(const std::string &path)
{
    static std::atomic<std::uint64_t> serial{0};
    const std::uint64_t tag =
        (static_cast<std::uint64_t>(::getpid()) << 32)
        ^ serial.fetch_add(1, std::memory_order_relaxed);
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(tag));
    return path + ".tmp-" + buf;
}

/** Read a small sidecar file whole; empty string when absent. */
std::string
readSidecar(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return "";
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

} // anonymous namespace

template <typename V, typename G>
std::shared_ptr<const V>
TraceCache::getOrGenerate(FutureMap<V> &map, const std::string &key,
                          const G &generate)
{
    std::promise<std::shared_ptr<const V>> promise;
    std::shared_future<std::shared_ptr<const V>> future;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        const auto it = map.find(key);
        if (it != map.end()) {
            future = it->second;
            hitCnt.fetch_add(1, std::memory_order_relaxed);
        } else {
            future = promise.get_future().share();
            map.emplace(key, future);
            leader = true;
        }
    }
    if (leader) {
        try {
            auto value = std::make_shared<const V>(generate());
            generationCnt.fetch_add(1, std::memory_order_relaxed);
            promise.set_value(std::move(value));
        } catch (...) {
            // Don't cache failures: unpublish the entry so a later
            // request retries, then deliver the exception to this
            // caller and every waiter via the shared future.
            {
                std::lock_guard<std::mutex> lock(mu);
                map.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::shared_ptr<const TraceBuffer>
TraceCache::get(const std::string &key, const Generator &generate)
{
    return getOrGenerate(traces, key, generate);
}

std::shared_ptr<const std::vector<LineAddr>>
TraceCache::missSequence(const std::string &key,
                         const MissGenerator &generate)
{
    return getOrGenerate(misses, key, generate);
}

std::shared_ptr<const ReplayImage>
TraceCache::image(const std::string &key, const Generator &generate)
{
    return getOrGenerate(images, key, [&]() -> ReplayImage {
        // Disk tier first: a valid spilled DOMIMAGE whose embedded
        // provenance key matches replaces both the workload
        // generation and the unpacking pass.  Any defect (missing
        // file, checksum, foreign key, v1 on the mapped path) falls
        // through to the next tier.
        const std::string spill_path =
            spillRoot.empty() ? ""
                              : spillFilePath(key, ".domimage");
        if (!spill_path.empty() && mmapLoad) {
            // Mmap tier: serve the lanes zero-copy out of a shared
            // read-only mapping (see trace_cache.h, "Mmap tier").
            MappedReplayImage mapped;
            ReplayImage view;
            if (mapped.open(spill_path).ok &&
                mapped.key() == key && mapped.image(view).ok) {
                diskHitCnt.fetch_add(1, std::memory_order_relaxed);
                mmapHitCnt.fetch_add(1, std::memory_order_relaxed);
                return view;
            }
        }
        if (!spill_path.empty()) {
            ReplayImage loaded;
            std::string loaded_key;
            if (loadReplayImage(spill_path, loaded,
                                &loaded_key).ok &&
                loaded_key == key) {
                diskHitCnt.fetch_add(1, std::memory_order_relaxed);
                return loaded;
            }
        }

        // The trace plane memoises the expensive part; the image is
        // one unpacking pass over the shared buffer.
        ReplayImage built(*get(key, generate));

        if (!spill_path.empty()) {
            // Publish for later processes (atomic rename).  Failure
            // here only loses the cache write -- the resident image
            // is already correct -- so it does not fail the request.
            std::error_code ec;
            std::filesystem::create_directories(spillRoot, ec);
            const std::string tmp = tempSibling(spill_path);
            if (spillReplayImage(tmp, built, key).ok &&
                std::rename(tmp.c_str(), spill_path.c_str()) == 0) {
                spillCnt.fetch_add(1, std::memory_order_relaxed);
                if (mmapLoad) {
                    // Swap the freshly spilled copy in as a mapped
                    // view so even the generating process frees its
                    // private heap lanes (the siblings will map the
                    // same pages).
                    MappedReplayImage mapped;
                    ReplayImage view;
                    if (mapped.open(spill_path).ok &&
                        mapped.key() == key &&
                        mapped.image(view).ok) {
                        mmapHitCnt.fetch_add(
                            1, std::memory_order_relaxed);
                        return view;
                    }
                }
            } else {
                std::remove(tmp.c_str());
            }
        }
        return built;
    });
}

void
TraceCache::setSpillDir(std::string dir)
{
    std::lock_guard<std::mutex> lock(mu);
    spillRoot = std::move(dir);
}

void
TraceCache::setMmapTier(bool on)
{
    std::lock_guard<std::mutex> lock(mu);
    mmapLoad = on;
}

std::string
TraceCache::spillFilePath(const std::string &key,
                          const char *extension) const
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(key.data(), key.size())));
    return spillRoot + "/" + buf + extension;
}

std::string
TraceCache::ensureTraceFile(const std::string &key,
                            const SourceFactory &makeSource)
{
    std::error_code ec;
    std::filesystem::create_directories(spillRoot, ec);
    if (ec) {
        throw std::runtime_error("cannot create spill dir " +
                                 spillRoot + ": " + ec.message());
    }

    const std::string path = spillFilePath(key, ".domtrace");
    const std::string key_path = path + ".key";

    // A hash-named file is only trusted when its sidecar holds the
    // full key (vets hash collisions and foreign spill dirs) and its
    // header still validates (vets torn files from dirty shutdowns;
    // publication order guarantees sidecar => trace file).
    if (readSidecar(key_path) == key) {
        std::ifstream probe;
        std::uint64_t count = 0;
        if (openTraceStream(path, probe, count).ok) {
            diskHitCnt.fetch_add(1, std::memory_order_relaxed);
            return path;
        }
    }

    // Generate with bounded memory: drain a fresh workload cursor
    // straight to disk, then publish trace-before-sidecar.
    const std::string tmp = tempSibling(path);
    std::unique_ptr<AccessSource> source = makeSource();
    if (!source)
        throw std::runtime_error("null workload source for: " + key);
    if (IoResult res = writeTraceStreamed(tmp, *source); !res.ok) {
        std::remove(tmp.c_str());
        throw std::runtime_error("trace spill failed: " + res.error);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot publish spill: " + path);
    }

    const std::string key_tmp = tempSibling(key_path);
    {
        std::ofstream os(key_tmp,
                         std::ios::binary | std::ios::trunc);
        os.write(key.data(),
                 static_cast<std::streamsize>(key.size()));
        if (!os) {
            std::remove(key_tmp.c_str());
            throw std::runtime_error("cannot write spill sidecar: " +
                                     key_path);
        }
    }
    if (std::rename(key_tmp.c_str(), key_path.c_str()) != 0) {
        std::remove(key_tmp.c_str());
        throw std::runtime_error("cannot publish spill sidecar: " +
                                 key_path);
    }
    spillCnt.fetch_add(1, std::memory_order_relaxed);
    return path;
}

IoResult
TraceCache::tracePath(const std::string &key,
                      const SourceFactory &makeSource,
                      std::string &path_out)
{
    if (spillRoot.empty()) {
        return IoResult::failure(
            "disk tier disabled: setSpillDir() before tracePath()");
    }
    try {
        path_out = *getOrGenerate(tracePaths, key, [&] {
            return ensureTraceFile(key, makeSource);
        });
    } catch (const std::exception &e) {
        return IoResult::failure(e.what());
    }
    return IoResult::success();
}

IoResult
TraceCache::stream(const std::string &key,
                   const SourceFactory &makeSource,
                   StreamingTraceSource &source,
                   std::uint32_t buffer_records)
{
    std::string path;
    if (IoResult res = tracePath(key, makeSource, path); !res.ok)
        return res;
    return source.open(path, buffer_records);
}

std::size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return traces.size() + misses.size() + images.size() +
        tracePaths.size();
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    traces.clear();
    misses.clear();
    images.clear();
    tracePaths.clear();
}

} // namespace domino
