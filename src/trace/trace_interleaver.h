/**
 * @file
 * Deterministic sharding of one workload trace into per-core access
 * streams for the multi-core substrate (src/multicore).
 *
 * The paper's substrate runs one server workload across four cores:
 * every core executes the same application, so the per-core miss
 * streams are statistically alike but not identical.  The
 * interleaver reproduces that by chunked round-robin dealing of a
 * *single* generated trace: record i belongs to core
 * (i / chunk) % cores.  Chunks keep temporal streams intact inside
 * one core's shard (a stream replay spans consecutive records)
 * while consecutive chunks land on different cores, so cores run
 * distinct-but-kin streams -- exactly the sharing structure a
 * shared LLC and shared metadata tables are sensitive to.
 *
 * Sharding is a pure function of (trace, cores, chunk): it composes
 * with the generate-once TraceCache (one generation per workload
 * key, every shard a zero-copy view of the shared buffer) and keeps
 * the byte-identical `--jobs` determinism contract, because no
 * state depends on which worker thread shards when.
 */

#ifndef DOMINO_TRACE_TRACE_INTERLEAVER_H
#define DOMINO_TRACE_TRACE_INTERLEAVER_H

#include <cstdint>
#include <memory>
#include <string>

#include "trace/replay_image.h"
#include "trace/trace_buffer.h"

namespace domino
{

/**
 * Zero-copy cursor over one core's shard of a shared trace: yields
 * exactly the records i with (i / chunk) % cores == core, in trace
 * order.  Copyable and cheap (shared pointer + cursor), like
 * TraceView.
 */
class ShardView : public AccessSource
{
  public:
    /** An empty shard (no buffer); next() reports exhaustion. */
    ShardView() = default;

    ShardView(std::shared_ptr<const TraceBuffer> buffer,
              unsigned cores, unsigned core, std::uint32_t chunk);

    bool next(Access &out) override;
    void reset() override;

    /** Records in this shard (closed form). */
    std::size_t size() const;

    /** Records already consumed since construction/reset(). */
    std::size_t consumed() const { return taken; }

    /**
     * Verify the cursor invariants: the position is either past the
     * trace (exhausted) or inside a chunk belonging to this core,
     * and never more records were taken than the shard holds.
     * @return empty string if OK, else a description.
     */
    std::string audit() const;

  private:
    /** Test-only backdoor for corrupting the cursor in audit
     *  tests. */
    friend struct ShardViewTestPeer;

    std::shared_ptr<const TraceBuffer> buf;
    unsigned nCores = 1;
    unsigned coreIdx = 0;
    std::uint32_t chunkLen = 1;
    /** Global record index of the next record to yield. */
    std::size_t pos = 0;
    /** Records yielded so far. */
    std::size_t taken = 0;
};

/**
 * The sharder: hands out per-core ShardViews over one shared trace.
 * Shards partition the trace exactly (every record in exactly one
 * shard), which audit() verifies.
 */
class TraceInterleaver
{
  public:
    /**
     * @param buffer shared immutable trace (from TraceCache).
     * @param cores number of shards (>= 1; 1 = identity).
     * @param chunk records per dealing chunk (>= 1).
     */
    TraceInterleaver(std::shared_ptr<const TraceBuffer> buffer,
                     unsigned cores, std::uint32_t chunk = 256);

    unsigned cores() const { return nCores; }
    std::uint32_t chunk() const { return chunkLen; }

    /** Total records in the underlying trace. */
    std::size_t traceSize() const;

    /** A fresh cursor over core @p core's shard. */
    ShardView shard(unsigned core) const;

    /**
     * A fresh zero-copy cursor over core @p core's shard of
     * @p image, with this interleaver's (cores, chunk) geometry:
     * the cursor yields exactly the record indices shard(core)
     * would visit.  @p image must be the image of the same trace
     * (ReplayImage::auditAgainst pins that in checked builds via
     * the callers' audits) and must outlive the cursor.
     */
    ReplayCursor imageShard(const ReplayImage &image,
                            unsigned core) const;

    /** Records in core @p core's shard (closed form, O(1)). */
    std::size_t shardSize(unsigned core) const;

    /**
     * Verify the partition invariants: shard sizes sum to the trace
     * size, the closed form agrees with an actual walk of each
     * shard, and the geometry is sane.
     * @return empty string if OK, else a description.
     */
    std::string audit() const;

  private:
    std::shared_ptr<const TraceBuffer> buf;
    unsigned nCores;
    std::uint32_t chunkLen;
};

} // namespace domino

#endif // DOMINO_TRACE_TRACE_INTERLEAVER_H
