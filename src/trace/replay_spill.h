/**
 * @file
 * On-disk spill/load of a packed ReplayImage (`DOMIMAGE` format).
 *
 * The packed SoA layout of ReplayImage (three fixed-width parallel
 * arrays, no pointers) serialises directly: a spill file is a small
 * versioned header, a section table, and the raw little-endian
 * array bytes, each section guarded by an FNV-1a 64-bit checksum.
 * Spilling lets the generate-once TraceCache keep a *disk tier*: a
 * trace unpacked once can be reloaded by a later process (or a
 * sharded sibling process) without regenerating the workload.
 *
 * The layout is a contract with external tools and with future
 * versions of this repo; it is specified normatively in
 * docs/TRACE_FORMAT.md ("ReplayImage spill format"), and the
 * static_asserts in replay_spill.cc tie the constants below to that
 * document.  `loadReplayImage` verifies the header, the section
 * geometry, the exact file length, and every section checksum
 * before publishing anything to the caller -- a corrupt or
 * truncated spill never yields a partial image.
 *
 * Two spill versions exist.  Version 1 packed the sections
 * contiguously; version 2 (the only version the writer emits) pads
 * every section start to a 64-byte boundary (imageSectionAlign,
 * zero-filled gaps) so a memory-mapped loader can serve the lanes
 * in place with cache-line-aligned pointers.  Both versions load
 * through `loadReplayImage` (buffered, heap image); only version 2
 * loads through `MappedReplayImage` (zero-copy view).
 *
 * The determinism contract extends to disk: a spilled-and-reloaded
 * image must audit byte-equal to its in-memory source
 * (ReplayImage::auditAgainst(const ReplayImage &)), which
 * tests/test_replay_spill.cc pins across seeds -- for the mapped
 * path too (MappedReplayImage::auditAgainst).
 */

#ifndef DOMINO_TRACE_REPLAY_SPILL_H
#define DOMINO_TRACE_REPLAY_SPILL_H

#include <cstdint>
#include <memory>
#include <string>

#include "trace/mapped_file.h"
#include "trace/replay_image.h"
#include "trace/trace_io.h"

namespace domino
{

/** Spill header size: 8-byte magic + u32 version + u32 section
 *  count + u64 record count (docs/TRACE_FORMAT.md). */
inline constexpr std::size_t imageHeaderBytes = 8 + 4 + 4 + 8;

/** Section-table entry size: u32 id + u32 reserved + u64 offset +
 *  u64 byte length + u64 FNV-1a checksum. */
inline constexpr std::size_t imageSectionEntryBytes =
    4 + 4 + 8 + 8 + 8;

/** Number of sections in a spill file (key, lines, PCs, rw flags --
 *  docs/TRACE_FORMAT.md "Section ids"; same roster in v1 and v2). */
inline constexpr std::uint32_t imageSectionCount = 4;

/** Version-2 section alignment: every section's offset is a
 *  multiple of this, gaps zero-filled (docs/TRACE_FORMAT.md
 *  "Section alignment").  64 so mapped lane pointers start on a
 *  cache-line boundary. */
inline constexpr std::uint64_t imageSectionAlign = 64;

/**
 * FNV-1a 64-bit checksum over @p bytes (the spill format's section
 * checksum; offset basis / prime from the FNV reference).
 */
std::uint64_t fnv1a64(const void *data, std::size_t bytes);

/**
 * Spill @p image to @p path (always writes version 2: sections
 * padded to imageSectionAlign).
 *
 * @param key optional provenance string stored in the file (the
 *        TraceCache key of the source trace); loaders can verify it
 *        before trusting a hash-named file.  May be empty.
 */
IoResult spillReplayImage(const std::string &path,
                          const ReplayImage &image,
                          const std::string &key = "");

/**
 * Load a spilled image from @p path into owning heap arrays
 * (buffered read; accepts both v1 and v2 files).  Rejects (with a
 * clear error and without touching @p image) a bad magic, an
 * unknown version, a malformed section table, a file length that
 * does not match the section geometry, non-zero v2 padding, and any
 * section whose checksum does not verify.
 *
 * @param key when non-null, receives the provenance key stored at
 *        spill time.
 */
IoResult loadReplayImage(const std::string &path, ReplayImage &image,
                         std::string *key = nullptr);

/**
 * Read only the provenance key of a spilled image (header + key
 * section; the arrays are not touched).  Used by the TraceCache
 * disk tier to vet hash-named files cheaply.
 */
IoResult readImageKey(const std::string &path, std::string &key);

/**
 * Zero-copy loader of a version-2 spill file: maps the file
 * read-only (src/trace/mapped_file.h) and serves the lines/pcs/rw
 * lanes as a view-backed ReplayImage pointing straight into the
 * mapping -- no heap copy, and N sharded sibling processes mapping
 * one spill fault the same page-cache pages.
 *
 * Validation is staged so open() stays cheap: the header, section
 * table, v2 alignment/padding geometry, and the (tiny) key section
 * are verified eagerly by open(); the three lane checksums are
 * verified lazily, each on the first image() call, and memoised --
 * a second image() hands out another view for free.  A version-1
 * file is rejected by open() with a clear error (its unaligned,
 * contiguous sections cannot be served in place); callers fall back
 * to the buffered loadReplayImage().
 *
 * Not thread-safe (the memoised validation flags are plain bools);
 * the TraceCache mmap tier drives it from within a single-flight
 * generator, which serialises all access.
 */
class MappedReplayImage
{
  public:
    MappedReplayImage() = default;

    /**
     * Map and validate @p path (see class comment for what is
     * checked eagerly).  On failure the object is left unopened and
     * the error names the file and the failing check.
     */
    IoResult open(const std::string &path);

    /** True after a successful open(). */
    bool ok() const { return file != nullptr; }

    /** Records in the mapped image (0 before open()). */
    std::uint64_t count() const { return records; }

    /** The provenance key embedded at spill time. */
    const std::string &key() const { return embeddedKey; }

    /** The mapped file's path (empty before open()). */
    const std::string &path() const;

    /**
     * A zero-copy view of the mapped lanes.  The first call
     * verifies the three lane checksums (one sequential pass over
     * the mapping); later calls reuse the memoised verdict.  The
     * returned image shares ownership of the mapping, so it remains
     * valid after this loader is destroyed.
     */
    IoResult image(ReplayImage &out);

    /**
     * Verify the mapped lanes byte-for-byte against @p other (the
     * loaded-vs-mapped equality contract: a buffered load and a
     * mapped view of one file must agree exactly).
     * @return empty string if OK, else a description.
     */
    std::string auditAgainst(const ReplayImage &other);

    /**
     * Verify the loader's invariants: an unopened loader holds no
     * state; an opened one has lane geometry matching its record
     * count and a mapping that covers every section.
     * @return empty string if OK, else a description.
     */
    std::string audit() const;

  private:
    IoResult validateLane(unsigned idx);

    /** Shared so view images can outlive the loader. */
    std::shared_ptr<const MappedFile> file;
    std::string embeddedKey;
    std::uint64_t records = 0;
    /** Parsed section table (offset/bytes/checksum per section, in
     *  id order), flattened to fixed arrays. */
    std::uint64_t secOffset[imageSectionCount] = {};
    std::uint64_t secBytes[imageSectionCount] = {};
    std::uint64_t secChecksum[imageSectionCount] = {};
    /** Lane checksum already verified (memoised lazy validation). */
    bool laneValidated[imageSectionCount] = {};
};

} // namespace domino

#endif // DOMINO_TRACE_REPLAY_SPILL_H
