/**
 * @file
 * On-disk spill/load of a packed ReplayImage (`DOMIMAGE` format).
 *
 * The packed SoA layout of ReplayImage (three fixed-width parallel
 * arrays, no pointers) serialises directly: a spill file is a small
 * versioned header, a section table, and the raw little-endian
 * array bytes, each section guarded by an FNV-1a 64-bit checksum.
 * Spilling lets the generate-once TraceCache keep a *disk tier*: a
 * trace unpacked once can be reloaded by a later process (or a
 * sharded sibling process) without regenerating the workload.
 *
 * The layout is a contract with external tools and with future
 * versions of this repo; it is specified normatively in
 * docs/TRACE_FORMAT.md ("ReplayImage spill format"), and the
 * static_asserts in replay_spill.cc tie the constants below to that
 * document.  `loadReplayImage` verifies the header, the section
 * geometry, the exact file length, and every section checksum
 * before publishing anything to the caller -- a corrupt or
 * truncated spill never yields a partial image.
 *
 * The determinism contract extends to disk: a spilled-and-reloaded
 * image must audit byte-equal to its in-memory source
 * (ReplayImage::auditAgainst(const ReplayImage &)), which
 * tests/test_replay_spill.cc pins across seeds.
 */

#ifndef DOMINO_TRACE_REPLAY_SPILL_H
#define DOMINO_TRACE_REPLAY_SPILL_H

#include <cstdint>
#include <string>

#include "trace/replay_image.h"
#include "trace/trace_io.h"

namespace domino
{

/** Spill header size: 8-byte magic + u32 version + u32 section
 *  count + u64 record count (docs/TRACE_FORMAT.md). */
inline constexpr std::size_t imageHeaderBytes = 8 + 4 + 4 + 8;

/** Section-table entry size: u32 id + u32 reserved + u64 offset +
 *  u64 byte length + u64 FNV-1a checksum. */
inline constexpr std::size_t imageSectionEntryBytes =
    4 + 4 + 8 + 8 + 8;

/** Number of sections in a version-1 spill file (key, lines, PCs,
 *  rw flags -- docs/TRACE_FORMAT.md "Section ids"). */
inline constexpr std::uint32_t imageSectionCount = 4;

/**
 * FNV-1a 64-bit checksum over @p bytes (the spill format's section
 * checksum; offset basis / prime from the FNV reference).
 */
std::uint64_t fnv1a64(const void *data, std::size_t bytes);

/**
 * Spill @p image to @p path.
 *
 * @param key optional provenance string stored in the file (the
 *        TraceCache key of the source trace); loaders can verify it
 *        before trusting a hash-named file.  May be empty.
 */
IoResult spillReplayImage(const std::string &path,
                          const ReplayImage &image,
                          const std::string &key = "");

/**
 * Load a spilled image from @p path.  Rejects (with a clear error
 * and without touching @p image) a bad magic, an unknown version, a
 * malformed section table, a file length that does not match the
 * section geometry, and any section whose checksum does not verify.
 *
 * @param key when non-null, receives the provenance key stored at
 *        spill time.
 */
IoResult loadReplayImage(const std::string &path, ReplayImage &image,
                         std::string *key = nullptr);

/**
 * Read only the provenance key of a spilled image (header + key
 * section; the arrays are not touched).  Used by the TraceCache
 * disk tier to vet hash-named files cheaply.
 */
IoResult readImageKey(const std::string &path, std::string &key);

} // namespace domino

#endif // DOMINO_TRACE_REPLAY_SPILL_H
