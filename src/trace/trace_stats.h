/**
 * @file
 * Descriptive statistics over an access trace (footprint, reuse,
 * spatial locality).  Used by tests to validate that the synthetic
 * workloads have the structure the paper's workloads exhibit.
 */

#ifndef DOMINO_TRACE_TRACE_STATS_H
#define DOMINO_TRACE_TRACE_STATS_H

#include <cstdint>

#include "trace/trace_buffer.h"

namespace domino
{

/** Summary statistics of an access trace. */
struct TraceStats
{
    /** Number of accesses. */
    std::uint64_t accesses = 0;
    /** Number of distinct cache lines touched. */
    std::uint64_t distinctLines = 0;
    /** Number of distinct pages touched. */
    std::uint64_t distinctPages = 0;
    /** Number of distinct PCs. */
    std::uint64_t distinctPcs = 0;
    /** Fraction of accesses whose line was seen before. */
    double lineReuseFraction = 0.0;
    /** Fraction of successive accesses falling in the same page. */
    double samePageFraction = 0.0;
    /** Footprint in bytes (distinct lines x block size). */
    std::uint64_t footprintBytes() const
    {
        return distinctLines * blockBytes;
    }
};

/** Compute summary statistics for a trace. */
TraceStats computeTraceStats(const TraceBuffer &trace);

} // namespace domino

#endif // DOMINO_TRACE_TRACE_STATS_H
