/**
 * @file
 * Bounded-memory streaming replay of an on-disk trace.
 *
 * Every simulator consumes an AccessSource cursor, and until now
 * every cursor was backed by a fully resident TraceBuffer or
 * ReplayImage -- which caps runs at what one process's arena holds
 * (~10^5-10^6 accesses).  StreamingTraceSource replays a binary
 * `DOMTRACE` file (docs/TRACE_FORMAT.md) through a fixed-size
 * record buffer with sequential I/O: memory is O(buffer), not
 * O(trace), so the same CoverageSimulator / MultiCoreSim code paths
 * scale to billion-access spilled traces.
 *
 * The cursor optionally carries the multicore shard geometry
 * (cores, core, chunk): it then yields exactly the records
 * ShardView / ReplayCursor would deal to that core -- record i with
 * (i / chunk) % cores == core -- by reading each of the core's
 * chunks sequentially and seeking over the other cores' chunks.
 *
 * Determinism: the file validates exactly like readTrace at open
 * (magic, version, exact byte length), and the yielded record
 * sequence equals a TraceView replay of the same trace record for
 * record, so any simulation switched from a resident cursor to a
 * streaming cursor produces byte-identical output
 * (tests/test_streaming_source.cc pins both).
 */

#ifndef DOMINO_TRACE_STREAMING_SOURCE_H
#define DOMINO_TRACE_STREAMING_SOURCE_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_buffer.h"
#include "trace/trace_io.h"

namespace domino
{

/** Default streaming buffer: 64 Ki records (~1.5 MB of unpacked
 *  Access structs) -- small enough that dozens of concurrent
 *  streams stay cheap, large enough to amortise read syscalls. */
inline constexpr std::uint32_t defaultStreamBufferRecords = 1u << 16;

/** The streaming cursor (see file comment). */
class StreamingTraceSource : public AccessSource
{
  public:
    /** An unopened source: next() immediately reports exhaustion. */
    StreamingTraceSource() = default;

    StreamingTraceSource(StreamingTraceSource &&) = default;
    StreamingTraceSource &operator=(StreamingTraceSource &&) =
        default;

    /**
     * Open @p path (a DOMTRACE file) for whole-trace streaming.
     * Validates the header and the exact file length like
     * readTrace; on failure the source stays unopened.
     *
     * @param buffer_records streaming buffer capacity (>= 1); the
     *        run's memory budget knob.
     */
    IoResult open(const std::string &path,
                  std::uint32_t buffer_records =
                      defaultStreamBufferRecords);

    /**
     * Open @p path for shard streaming: yield core @p core's shard
     * of the (cores, chunk) chunked round-robin dealing, matching
     * ShardView / ReplayCursor exactly.
     */
    IoResult openShard(const std::string &path, unsigned cores,
                       unsigned core, std::uint32_t chunk,
                       std::uint32_t buffer_records =
                           defaultStreamBufferRecords);

    bool next(Access &out) override;

    /** Restart at the shard's first record (rewinds the file). */
    void reset() override;

    /** True when open() succeeded and no read error occurred. */
    bool ok() const { return opened && ioError.empty(); }

    /** Total records in the underlying file (0 when unopened). */
    std::size_t size() const { return total; }

    /** Records this cursor will yield over a full pass. */
    std::size_t shardSize() const;

    /** Records yielded since open/reset. */
    std::size_t position() const { return yielded; }

    /** The streaming buffer capacity in records. */
    std::uint32_t bufferCapacity() const { return bufCap; }

    /** The file being streamed (empty when unopened). */
    const std::string &path() const { return filePath; }

    /**
     * Verify the cursor invariants: the buffer never exceeds its
     * capacity, the file cursor never runs past the trace, no more
     * records were yielded than the shard holds, and no read error
     * is pending.
     * @return empty string if OK, else a description.
     */
    std::string audit() const;

  private:
    /** Refill the buffer from the file; false at exhaustion. */
    bool refill();

    /** Seek the file cursor to absolute record index @p record. */
    void seekToRecord(std::uint64_t record);

    std::ifstream is;
    std::string filePath;
    bool opened = false;
    std::string ioError;

    std::uint64_t total = 0;
    unsigned nCores = 1;
    unsigned coreIdx = 0;
    std::uint32_t chunkLen = 1;
    std::uint32_t bufCap = defaultStreamBufferRecords;

    /** Unpacked in-flight records (bounded by bufCap). */
    std::vector<Access> buffer;
    std::size_t bufPos = 0;
    /** Absolute index of the next record to read from the file. */
    std::uint64_t nextGlobal = 0;
    /** Records left in the current chunk before the skip. */
    std::uint32_t chunkLeft = 1;
    std::uint64_t yielded = 0;
};

} // namespace domino

#endif // DOMINO_TRACE_STREAMING_SOURCE_H
