#include "trace_interleaver.h"

#include <algorithm>

#include "common/check.h"

namespace domino
{

ShardView::ShardView(std::shared_ptr<const TraceBuffer> buffer,
                     unsigned cores, unsigned core,
                     std::uint32_t chunk)
    : buf(std::move(buffer)), nCores(cores ? cores : 1),
      coreIdx(core), chunkLen(chunk ? chunk : 1)
{
    DCHECK_LT(coreIdx, nCores);
    pos = static_cast<std::size_t>(coreIdx) * chunkLen;
}

bool
ShardView::next(Access &out)
{
    if (!buf || pos >= buf->size())
        return false;
    out = (*buf)[pos];
    ++taken;
    ++pos;
    // Crossing a chunk boundary skips the other cores' chunks.
    if (pos % chunkLen == 0)
        pos += static_cast<std::size_t>(nCores - 1) * chunkLen;
    return true;
}

void
ShardView::reset()
{
    pos = static_cast<std::size_t>(coreIdx) * chunkLen;
    taken = 0;
}

std::size_t
ShardView::size() const
{
    if (!buf)
        return 0;
    const std::size_t n = buf->size();
    const std::size_t group =
        static_cast<std::size_t>(chunkLen) * nCores;
    const std::size_t full = n / group;
    const std::size_t rem = n % group;
    const std::size_t myStart =
        static_cast<std::size_t>(coreIdx) * chunkLen;
    std::size_t extra = 0;
    if (rem > myStart)
        extra = std::min<std::size_t>(rem - myStart, chunkLen);
    return full * chunkLen + extra;
}

std::string
ShardView::audit() const
{
    if (!buf) {
        return (pos == 0 && taken == 0)
            ? "" : "cursor advanced on an empty shard";
    }
    if (taken > size())
        return "shard yielded " + std::to_string(taken) +
            " records, more than its size " +
            std::to_string(size());
    if (pos < buf->size() &&
        (pos / chunkLen) % nCores != coreIdx) {
        return "cursor at record " + std::to_string(pos) +
            " which belongs to core " +
            std::to_string((pos / chunkLen) % nCores) + ", not " +
            std::to_string(coreIdx);
    }
    return "";
}

TraceInterleaver::TraceInterleaver(
    std::shared_ptr<const TraceBuffer> buffer, unsigned cores,
    std::uint32_t chunk)
    : buf(std::move(buffer)), nCores(cores ? cores : 1),
      chunkLen(chunk ? chunk : 1)
{}

std::size_t
TraceInterleaver::traceSize() const
{
    return buf ? buf->size() : 0;
}

ShardView
TraceInterleaver::shard(unsigned core) const
{
    CHECK_LT(core, nCores);
    return ShardView(buf, nCores, core, chunkLen);
}

ReplayCursor
TraceInterleaver::imageShard(const ReplayImage &image,
                            unsigned core) const
{
    CHECK_LT(core, nCores);
    return ReplayCursor(image, nCores, core, chunkLen);
}

std::size_t
TraceInterleaver::shardSize(unsigned core) const
{
    CHECK_LT(core, nCores);
    return ShardView(buf, nCores, core, chunkLen).size();
}

std::string
TraceInterleaver::audit() const
{
    std::size_t total = 0;
    for (unsigned c = 0; c < nCores; ++c) {
        const std::size_t closed = shardSize(c);
        // Walk the shard and compare against the closed form.
        ShardView view = shard(c);
        std::size_t walked = 0;
        Access a;
        while (view.next(a))
            ++walked;
        if (walked != closed) {
            return "core " + std::to_string(c) + " shard walks " +
                std::to_string(walked) + " records but computes " +
                std::to_string(closed);
        }
        const std::string v = view.audit();
        if (!v.empty())
            return "core " + std::to_string(c) + " view: " + v;
        total += closed;
    }
    if (total != traceSize()) {
        return "shards cover " + std::to_string(total) +
            " records of a " + std::to_string(traceSize()) +
            "-record trace (not a partition)";
    }
    return "";
}

} // namespace domino
