/**
 * @file
 * Read-only memory mapping of an on-disk file.
 *
 * The out-of-core substrate's buffered loaders (`loadReplayImage`,
 * `StreamingTraceSource`) copy file bytes into private heap arrays,
 * so N sharded sibling processes replaying one spilled trace each
 * materialise their own copy.  MappedFile maps the file read-only
 * instead: the kernel's page cache holds the bytes exactly once per
 * machine, every process that maps the same file faults the same
 * physical pages, and nothing is copied into the heap at all --
 * the shared-memory fan-out path of the billion-access pipeline
 * (DESIGN.md "Out-of-core substrate").
 *
 * This header/.cc pair is the *only* place in the repo allowed to
 * call mmap/munmap/madvise (enforced by the domlint `raw-mmap`
 * rule): every mapped consumer -- today the `MappedReplayImage`
 * DOMIMAGE loader -- goes through this RAII wrapper, so lifetime
 * and error handling are audited in one file.
 *
 * A mapping is immutable (PROT_READ) and survives moves; copying is
 * deleted.  Consumers that outlive unpredictable scopes share the
 * mapping via `std::shared_ptr<const MappedFile>` (the keepalive a
 * zero-copy ReplayImage view carries).
 */

#ifndef DOMINO_TRACE_MAPPED_FILE_H
#define DOMINO_TRACE_MAPPED_FILE_H

#include <cstddef>
#include <string>

#include "trace/trace_io.h"

namespace domino
{

/** The read-only mapping (see file comment). */
class MappedFile
{
  public:
    /** Expected access pattern, forwarded to madvise as a plain
     *  performance hint (never affects results). */
    enum class Advice
    {
        Normal,
        /** Touch front to back once (checksum passes, scans). */
        Sequential,
        /** Scattered faults (shard cursors over one mapping). */
        Random,
    };

    /** An empty wrapper: data() == nullptr, size() == 0. */
    MappedFile() = default;

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** Unmaps (the descriptor is closed right after mapping). */
    ~MappedFile();

    /**
     * Map @p path read-only in its entirety.  On failure @p out is
     * left empty and the error names the file and the failing step.
     * A zero-byte file maps successfully to (nullptr, 0) -- mmap
     * itself rejects empty ranges, so no mapping is created.
     */
    static IoResult map(const std::string &path, MappedFile &out);

    /** First byte of the mapping (nullptr when empty). */
    const unsigned char *data() const { return base; }

    /** Mapped length in bytes. */
    std::size_t size() const { return bytes; }

    /** The mapped file's path (empty when default-constructed). */
    const std::string &path() const { return filePath; }

    /** True when map() succeeded (a zero-byte file counts). */
    bool ok() const { return opened; }

    /** Advise the kernel about the expected access pattern. */
    void advise(Advice advice) const;

    /**
     * Verify the wrapper's invariants: an empty wrapper carries no
     * mapping, a non-empty one has a base pointer matching its
     * length.
     * @return empty string if OK, else a description.
     */
    std::string audit() const;

  private:
    void unmap();

    const unsigned char *base = nullptr;
    std::size_t bytes = 0;
    std::string filePath;
    bool opened = false;
};

} // namespace domino

#endif // DOMINO_TRACE_MAPPED_FILE_H
