/**
 * @file
 * Packed structure-of-arrays replay image of a trace.
 *
 * Every simulator consumes a trace as (cache line, PC, rw flag)
 * tuples, but the canonical TraceBuffer stores byte-level Access
 * records behind a virtual AccessSource cursor: each replay pays a
 * virtual next() call and a lineOf() shift per record, once per
 * (cell x technique x core).  A ReplayImage precomputes the line
 * addresses, PCs, and rw flags into three packed parallel arrays --
 * built once per trace (and memoised by TraceCache) so every replay
 * iterates plain arrays with no dispatch and no unpacking.
 *
 * The image is immutable after construction and carries exactly the
 * information the hot paths read, in trace order, so any simulator
 * switched from a TraceView/ShardView to an image cursor produces a
 * byte-identical result (the determinism contract's requirement for
 * adopting the fast path).
 *
 * Two storage modes share one consumer surface: an *owning* image
 * holds the three lanes in heap vectors (built from a trace or the
 * buffered spill loader), while a *mapped view* borrows the lanes
 * straight out of a read-only DOMIMAGE file mapping and carries a
 * refcounted keepalive of that mapping (MappedReplayImage in
 * src/trace/replay_spill.h).  Consumers cannot tell them apart --
 * lineAt/pcAt/writeAt and the linesData/pcsData/rwData lane
 * pointers behave identically -- but a mapped view costs no heap
 * and N sharded sibling processes mapping one spill share the same
 * page-cache pages.
 */

#ifndef DOMINO_TRACE_REPLAY_IMAGE_H
#define DOMINO_TRACE_REPLAY_IMAGE_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "trace/trace_buffer.h"

namespace domino
{

/** The packed SoA image (see file comment). */
class ReplayImage
{
  public:
    /** An empty image (no records). */
    ReplayImage() = default;

    /** Build the image of @p trace (one unpacking pass). */
    explicit ReplayImage(const TraceBuffer &trace);

    /**
     * Adopt already-packed arrays (the buffered spill loader's path
     * -- src/trace/replay_spill.cc).  The arrays must be parallel
     * and boolean-flagged; audit() verifies exactly that, and the
     * loader rejects a file whose arrays fail it.
     */
    ReplayImage(std::vector<LineAddr> lines, std::vector<Addr> pcs,
                std::vector<std::uint8_t> rw)
        : lineArr(std::move(lines)), pcArr(std::move(pcs)),
          rwArr(std::move(rw))
    {}

    /**
     * Borrow already-packed lanes owned by someone else (the mapped
     * spill loader's path -- MappedReplayImage serves the lanes
     * zero-copy straight out of a read-only file mapping).  The
     * image holds @p keepalive so the backing storage outlives every
     * copy of the view; nothing is copied into the heap.
     */
    ReplayImage(const LineAddr *lines, const Addr *pcs,
                const std::uint8_t *rw, std::size_t count,
                std::shared_ptr<const void> keepalive)
        : viewLines(lines), viewPcs(pcs), viewRw(rw),
          viewCount(count), backing(std::move(keepalive)),
          viewBacked(true)
    {}

    /** Copies share the (refcounted) backing of a mapped view. */
    ReplayImage(const ReplayImage &) = default;
    ReplayImage &operator=(const ReplayImage &) = default;

    /** Moving resets the source to an empty image so a moved-from
     *  view never dangles into backing it no longer keeps alive. */
    ReplayImage(ReplayImage &&other) noexcept { swap(other); }
    ReplayImage &
    operator=(ReplayImage &&other) noexcept
    {
        if (this != &other) {
            ReplayImage released;
            released.swap(other); // leaves other empty
            swap(released);       // old *this dies with released
        }
        return *this;
    }

    ~ReplayImage() = default;

    /** Records in the image. */
    std::size_t
    size() const
    {
        return viewBacked ? viewCount : lineArr.size();
    }

    /** True when the lanes are served out of borrowed (mapped)
     *  storage instead of owning heap arrays. */
    bool mapped() const { return viewBacked; }

    /** The packed line-address lane (zero-copy iteration). */
    const LineAddr *
    linesData() const
    {
        return viewBacked ? viewLines : lineArr.data();
    }

    /** The packed PC lane. */
    const Addr *
    pcsData() const
    {
        return viewBacked ? viewPcs : pcArr.data();
    }

    /** The packed rw-flag lane (0 = load, 1 = store). */
    const std::uint8_t *
    rwData() const
    {
        return viewBacked ? viewRw : rwArr.data();
    }

    /** Cache-line address of record @p i (precomputed). */
    LineAddr
    lineAt(std::size_t i) const
    {
        DCHECK_LT(i, size());
        return linesData()[i];
    }

    /** Program counter of record @p i. */
    Addr
    pcAt(std::size_t i) const
    {
        DCHECK_LT(i, size());
        return pcsData()[i];
    }

    /** True when record @p i is a store. */
    bool
    writeAt(std::size_t i) const
    {
        DCHECK_LT(i, size());
        return rwData()[i] != 0;
    }

    /**
     * Verify the image's internal invariants: the three parallel
     * arrays have one entry per record.
     * @return empty string if OK, else a description.
     */
    std::string audit() const;

    /**
     * Verify the image against its source trace: same length, and
     * every record's line/PC/flag matches the unpacked original.
     * @return empty string if OK, else a description.
     */
    std::string auditAgainst(const TraceBuffer &trace) const;

    /**
     * Verify the image against another image byte-for-byte: the
     * three packed arrays must compare equal.  This is the
     * determinism contract for the disk tier -- a
     * spilled-and-reloaded image must pass auditAgainst its
     * in-memory source (tests/test_replay_spill.cc).
     * @return empty string if OK, else a description.
     */
    std::string auditAgainst(const ReplayImage &other) const;

    /**
     * Verify that the (cores, chunk) shard cursors partition the
     * image: every record index is yielded by exactly one core's
     * cursor, and each cursor's index sequence is strictly
     * increasing (monotone).  Mirrors TraceInterleaver::audit() for
     * the zero-copy path.
     * @return empty string if OK, else a description.
     */
    std::string auditPartition(unsigned cores,
                               std::uint32_t chunk) const;

  private:
    friend struct ReplayImageTestPeer;

    void
    swap(ReplayImage &other) noexcept
    {
        lineArr.swap(other.lineArr);
        pcArr.swap(other.pcArr);
        rwArr.swap(other.rwArr);
        std::swap(viewLines, other.viewLines);
        std::swap(viewPcs, other.viewPcs);
        std::swap(viewRw, other.viewRw);
        std::swap(viewCount, other.viewCount);
        backing.swap(other.backing);
        std::swap(viewBacked, other.viewBacked);
    }

    /** Owning storage (heap-built and buffered-loaded images). */
    std::vector<LineAddr> lineArr;
    std::vector<Addr> pcArr;
    std::vector<std::uint8_t> rwArr;

    /** Borrowed storage (mapped views); null when owning. */
    const LineAddr *viewLines = nullptr;
    const Addr *viewPcs = nullptr;
    const std::uint8_t *viewRw = nullptr;
    std::size_t viewCount = 0;
    /** Keeps the borrowed storage (the file mapping) alive. */
    std::shared_ptr<const void> backing;
    bool viewBacked = false;
};

/**
 * Shard cursor over a ReplayImage: yields the record indices of one
 * core's shard -- the records i with (i / chunk) % cores == core --
 * in increasing order, matching ShardView's dealing exactly.  The
 * chunk-boundary skip uses a countdown instead of a modulo, so the
 * per-record cost is two additions and a branch.
 *
 * Non-virtual and header-inline on purpose: this is the innermost
 * per-access iterator of the multicore substrate.
 */
class ReplayCursor
{
  public:
    /** An exhausted cursor over nothing. */
    ReplayCursor() = default;

    /**
     * @param image shared image (not owned; must outlive the
     *        cursor).
     * @param cores number of shards (>= 1).
     * @param core this cursor's shard (< cores).
     * @param chunk records per dealing chunk (>= 1).
     */
    ReplayCursor(const ReplayImage &image, unsigned cores,
                 unsigned core, std::uint32_t chunk)
        : img(&image), nCores(cores ? cores : 1), coreIdx(core),
          chunkLen(chunk ? chunk : 1)
    {
        DCHECK_LT(coreIdx, nCores);
        reset();
    }

    /**
     * Index of the next record of this shard, or the image size
     * when the shard is exhausted.  Does not advance.
     */
    std::size_t
    peek() const
    {
        return img ? pos : 0;
    }

    /** True when every record of the shard has been yielded. */
    bool
    done() const
    {
        return !img || pos >= img->size();
    }

    /**
     * Yield the next record index of the shard.
     * @param out set to the record index on success.
     * @return false when the shard is exhausted.
     */
    bool
    next(std::size_t &out)
    {
        if (!img || pos >= img->size())
            return false;
        out = pos;
        ++pos;
        if (--chunkLeft == 0) {
            // Crossing a chunk boundary skips the other cores'
            // chunks (no modulo: the countdown tracks the boundary).
            pos += skip;
            chunkLeft = chunkLen;
        }
        return true;
    }

    /** Restart the cursor at the shard's first record. */
    void
    reset()
    {
        pos = static_cast<std::size_t>(coreIdx) * chunkLen;
        chunkLeft = chunkLen;
        skip = static_cast<std::size_t>(nCores - 1) * chunkLen;
    }

  private:
    const ReplayImage *img = nullptr;
    unsigned nCores = 1;
    unsigned coreIdx = 0;
    std::uint32_t chunkLen = 1;
    /** Record index the cursor will yield next. */
    std::size_t pos = 0;
    /** Records left in the current chunk before the skip. */
    std::uint32_t chunkLeft = 1;
    /** Precomputed skip over the other cores' chunks. */
    std::size_t skip = 0;
};

} // namespace domino

#endif // DOMINO_TRACE_REPLAY_IMAGE_H
