/**
 * @file
 * ThrottledPrefetcher: the adaptive wrapper any technique can wear.
 * It interposes on the issue path of a wrapped Prefetcher, counts
 * issued/useful/late prefetches per epoch, folds in the shared
 * channel's observed occupancy (ChannelObserver feedback from the
 * multi-core substrate), and clamps the per-trigger issue budget to
 * the DegreeController's current degree.
 *
 * The wrapper is itself a Prefetcher, so every simulator -- the
 * coverage lanes, the single-core timing model, and the multi-core
 * substrate -- drives it through the ordinary trainPredictMany()
 * path; the wrapped technique never knows it is throttled.  With
 * `enabled == false` the wrapper is a strict pass-through: calls are
 * forwarded verbatim (whole batches included), so results are
 * byte-identical to the unwrapped prefetcher, which the adaptive
 * tests assert for every evaluated technique.
 */

#ifndef DOMINO_ADAPTIVE_THROTTLED_PREFETCHER_H
#define DOMINO_ADAPTIVE_THROTTLED_PREFETCHER_H

#include <cstdint>
#include <memory>
#include <string>

#include "adaptive/degree_controller.h"
#include "multicore/channel_feedback.h"
#include "prefetch/prefetcher.h"

namespace domino
{

/** The adaptive degree-throttling wrapper. */
class ThrottledPrefetcher final : public Prefetcher,
                                  public ChannelObserver,
                                  private PrefetchSink
{
  public:
    /**
     * @param inner the technique to wrap (owned).  Build it with
     *        degree == config.degreeMax: the wrapper only ever
     *        clamps the issue stream down.
     */
    ThrottledPrefetcher(std::unique_ptr<Prefetcher> inner,
                        const ThrottleConfig &config);

    // Prefetcher interface ---------------------------------------
    std::string name() const override;
    void onTrigger(const TriggerEvent &event,
                   PrefetchSink &sink) override;
    void trainPredictMany(std::span<const TriggerEvent> events,
                          PrefetchSink &sink) override;
    void warmMetadata(LineAddr line, Addr pc) const override;
    MetadataStats metadata() const override;
    std::string audit() const override;

    // ChannelObserver interface ----------------------------------
    void observeChannel(Cycles now, Cycles busy_cycles) override;
    void noteLatePrefetch() override;

    // Introspection for reports and tests ------------------------
    /** The controller's current effective degree. */
    std::uint32_t currentDegree() const { return ctl.degree(); }
    /** Prefetches clamped by the degree budget so far. */
    std::uint64_t clampedPrefetches() const { return clampedTotal; }
    /** Non-hit triggers withheld from the wrapped technique while
     *  metadata suppression was engaged. */
    std::uint64_t suppressedTriggers() const
    {
        return suppressedTotal;
    }
    /** The controller (read-only). */
    const DegreeController &controller() const { return ctl; }
    /** The wrapped technique (not owned by the caller). */
    Prefetcher *innerPrefetcher() const { return inner.get(); }

  private:
    /** Test-only backdoor for corrupting counters in audit
     *  tests. */
    friend struct ThrottleTestPeer;

    /** Account one trigger and forward it under a fresh budget. */
    void handleOne(const TriggerEvent &event, PrefetchSink &sink);
    /** Fold the channel samples into the epoch and step the
     *  controller. */
    void closeEpochNow();

    // PrefetchSink interface (the interposed issue path) ---------
    void issue(LineAddr line, std::uint32_t stream_id,
               unsigned metadata_trips) override;
    void dropStream(std::uint32_t stream_id) override;

    std::unique_ptr<Prefetcher> inner;
    ThrottleConfig cfg;
    DegreeController ctl;

    /** The real sink during one forwarded trigger (never retained
     *  across calls). */
    PrefetchSink *downstream = nullptr;
    /** Issues remaining for the trigger in flight. */
    std::uint32_t budget = 0;

    /** Epoch accumulators (occupancyPm is filled at close). */
    ThrottleEpochStats epoch;
    /** Deterministic parity for metadata suppression. */
    std::uint64_t suppressTick = 0;

    /** Latest channel observation (both monotone). */
    Cycles lastNow = 0;
    Cycles lastBusy = 0;
    /** Observation at the previous epoch boundary. */
    Cycles epochStartNow = 0;
    Cycles epochStartBusy = 0;

    /** Lifetime totals. */
    std::uint64_t attemptedTotal = 0;
    std::uint64_t issuedTotal = 0;
    std::uint64_t clampedTotal = 0;
    std::uint64_t suppressedTotal = 0;
};

} // namespace domino

#endif // DOMINO_ADAPTIVE_THROTTLED_PREFETCHER_H
