#include "degree_controller.h"

#include <algorithm>

#include "common/check.h"

namespace domino
{

DegreeController::DegreeController(const ThrottleConfig &config)
    : cfg(config), deg(config.degreeMax)
{
    CHECK_GE(cfg.degreeMin, 1u);
    CHECK_LE(cfg.degreeMin, cfg.degreeMax);
    CHECK_GE(cfg.epochTriggers, 1u);
}

void
DegreeController::closeEpoch(const ThrottleEpochStats &epoch)
{
    // Per-mille accuracy of the *forwarded* prefetches.  Useful hits
    // may exceed the epoch's own issues (they can stem from the
    // previous epoch's fills), so cap at 1000.
    const std::uint64_t accuracyPm = epoch.issued
        ? std::min<std::uint64_t>(
              1000, epoch.useful * 1000 / epoch.issued)
        : 1000;
    const std::uint64_t latePm =
        epoch.useful ? epoch.late * 1000 / epoch.useful : 0;

    const bool pressured = epoch.occupancyPm > cfg.occupancyHighPm;
    const bool inaccurate =
        epoch.issued > 0 && accuracyPm < cfg.accuracyLowPm;

    if (pressured || inaccurate) {
        deg = std::max(cfg.degreeMin, deg / 2);
        ++nDecreases;
        // Suppression is a last resort: only when halving has
        // bottomed out and the channel is still saturated.
        suppress =
            cfg.suppressMeta && pressured && deg == cfg.degreeMin;
    } else if (accuracyPm >= cfg.accuracyHighPm &&
               latePm <= cfg.lateHighPm) {
        deg = std::min(cfg.degreeMax, deg + 1);
        ++nIncreases;
        suppress = false;
    } else {
        ++nHolds;
        suppress = false;
    }
    ++nEpochs;
}

std::string
DegreeController::audit() const
{
    if (deg < cfg.degreeMin || deg > cfg.degreeMax) {
        return "degree " + std::to_string(deg) + " outside [" +
            std::to_string(cfg.degreeMin) + ", " +
            std::to_string(cfg.degreeMax) + "]";
    }
    if (nIncreases + nDecreases + nHolds != nEpochs) {
        return "transition counters " +
            std::to_string(nIncreases + nDecreases + nHolds) +
            " do not sum to the epoch count " +
            std::to_string(nEpochs);
    }
    if (suppress && !cfg.suppressMeta)
        return "suppression engaged but not configured";
    return "";
}

} // namespace domino
