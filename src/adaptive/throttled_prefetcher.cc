#include "throttled_prefetcher.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace domino
{

ThrottledPrefetcher::ThrottledPrefetcher(
    std::unique_ptr<Prefetcher> inner_pf,
    const ThrottleConfig &config)
    : inner(std::move(inner_pf)), cfg(config), ctl(config)
{
    CHECK(inner != nullptr);
}

std::string
ThrottledPrefetcher::name() const
{
    return cfg.enabled ? inner->name() + "+throttle" : inner->name();
}

void
ThrottledPrefetcher::onTrigger(const TriggerEvent &event,
                               PrefetchSink &sink)
{
    if (!cfg.enabled) {
        inner->onTrigger(event, sink);
        return;
    }
    handleOne(event, sink);
}

void
ThrottledPrefetcher::trainPredictMany(
    std::span<const TriggerEvent> events, PrefetchSink &sink)
{
    if (!cfg.enabled) {
        // Pass-through: keep the wrapped technique's own batching
        // (and its lookahead row warming) fully intact.
        inner->trainPredictMany(events, sink);
        return;
    }
    // The budget resets per triggering event, so the batch is
    // unrolled here; each event still reaches the wrapped technique
    // through its batched entry point (batched == scalar contract).
    for (const TriggerEvent &event : events)
        handleOne(event, sink);
}

void
ThrottledPrefetcher::handleOne(const TriggerEvent &event,
                               PrefetchSink &sink)
{
    ++epoch.triggers;
    if (event.wasPrefetchHit)
        ++epoch.useful;

    bool forward = true;
    if (ctl.suppressing() && !event.wasPrefetchHit) {
        // Metadata suppression: withhold every other miss trigger
        // from the wrapped technique, halving its HT/EIT traffic.
        // Hits always pass so active streams stay credited.
        if (suppressTick++ & 1) {
            forward = false;
            ++suppressedTotal;
        }
    }
    if (forward) {
        budget = ctl.degree();
        downstream = &sink;
        const std::span<const TriggerEvent> one(&event, 1);
        inner->trainPredictMany(one, *this);
        downstream = nullptr;
        budget = 0;
    }
    if (epoch.triggers >= cfg.epochTriggers)
        closeEpochNow();
}

void
ThrottledPrefetcher::closeEpochNow()
{
    ThrottleEpochStats stats = epoch;
    // Channel occupancy over the epoch, from the monotone
    // (clock, busy) samples the substrate feeds observeChannel().
    // Coverage runs attach no observer; both deltas stay zero and
    // the controller steers on accuracy alone.
    if (lastNow > epochStartNow) {
        const Cycles dBusy = lastBusy - epochStartBusy;
        const Cycles dNow = lastNow - epochStartNow;
        stats.occupancyPm = static_cast<std::uint32_t>(
            std::min<Cycles>(1000, dBusy * 1000 / dNow));
    }
    ctl.closeEpoch(stats);
    epochStartNow = lastNow;
    epochStartBusy = lastBusy;
    epoch = ThrottleEpochStats{};
}

void
ThrottledPrefetcher::warmMetadata(LineAddr line, Addr pc) const
{
    inner->warmMetadata(line, pc);
}

MetadataStats
ThrottledPrefetcher::metadata() const
{
    return inner->metadata();
}

void
ThrottledPrefetcher::observeChannel(Cycles now, Cycles busy_cycles)
{
    // max(): in shared scope several cores drive one wrapper and
    // their local clocks interleave non-monotonically.
    lastNow = std::max(lastNow, now);
    lastBusy = std::max(lastBusy, busy_cycles);
}

void
ThrottledPrefetcher::noteLatePrefetch()
{
    if (cfg.enabled)
        ++epoch.late;
}

void
ThrottledPrefetcher::issue(LineAddr line, std::uint32_t stream_id,
                           unsigned metadata_trips)
{
    ++epoch.attempted;
    ++attemptedTotal;
    if (budget == 0) {
        ++clampedTotal;
        return;
    }
    --budget;
    ++epoch.issued;
    ++issuedTotal;
    downstream->issue(line, stream_id, metadata_trips);
}

void
ThrottledPrefetcher::dropStream(std::uint32_t stream_id)
{
    downstream->dropStream(stream_id);
}

std::string
ThrottledPrefetcher::audit() const
{
    if (const std::string err = ctl.audit(); !err.empty())
        return "controller: " + err;
    if (epoch.triggers >= cfg.epochTriggers && cfg.enabled) {
        return "open epoch holds " +
            std::to_string(epoch.triggers) +
            " triggers, at or past the epoch length " +
            std::to_string(cfg.epochTriggers);
    }
    if (epoch.useful > epoch.triggers) {
        return "epoch useful count " +
            std::to_string(epoch.useful) +
            " exceeds its trigger count " +
            std::to_string(epoch.triggers);
    }
    if (epoch.issued > epoch.attempted) {
        return "epoch issued count " +
            std::to_string(epoch.issued) +
            " exceeds its attempted count " +
            std::to_string(epoch.attempted);
    }
    if (issuedTotal + clampedTotal != attemptedTotal) {
        return "issued " + std::to_string(issuedTotal) +
            " + clamped " + std::to_string(clampedTotal) +
            " != attempted " + std::to_string(attemptedTotal);
    }
    if (lastBusy < epochStartBusy || lastNow < epochStartNow)
        return "channel samples ran backwards";
    if (budget != 0)
        return "issue budget leaked outside a trigger";
    return inner->audit();
}

} // namespace domino
