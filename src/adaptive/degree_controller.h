/**
 * @file
 * The feedback-directed degree controller of the adaptive prefetch
 * subsystem (DESIGN.md "Adaptive prefetch control"): an AIMD state
 * machine that turns per-epoch accuracy, timeliness, and channel
 * occupancy into an effective prefetch degree.
 *
 * All state and arithmetic are integer-only (per-mille thresholds,
 * truncating division): a run at fixed configuration visits exactly
 * the same controller states in the same order regardless of
 * --jobs, SIMD width, or streaming tier, so the adaptive runs keep
 * the repo's byte-identical determinism contract.  This is the same
 * design pressure that keeps the samplers on counter-free integer
 * PRNGs -- floating-point controller state would accumulate
 * rounding that varies with evaluation order.
 */

#ifndef DOMINO_ADAPTIVE_DEGREE_CONTROLLER_H
#define DOMINO_ADAPTIVE_DEGREE_CONTROLLER_H

#include <cstdint>
#include <string>

namespace domino
{

/**
 * Configuration of the throttle wrapper and its controller.
 * Defaults follow the AIMD literature (and Triangel's thresholds in
 * spirit): react hard to inaccuracy or channel saturation, recover
 * additively.
 */
struct ThrottleConfig
{
    /** Master switch: disabled = the wrapper is a pass-through and
     *  every result byte matches the unwrapped prefetcher. */
    bool enabled = false;
    /** Triggering events per controller epoch. */
    std::uint32_t epochTriggers = 256;
    /** Degree floor (multiplicative decrease stops here). */
    std::uint32_t degreeMin = 1;
    /** Degree ceiling (additive increase stops here); the wrapped
     *  prefetcher is built with this degree and the wrapper clamps
     *  per-trigger issues down to the controller's current value. */
    std::uint32_t degreeMax = 8;
    /** Below this per-mille accuracy the degree halves. */
    std::uint32_t accuracyLowPm = 400;
    /** At or above this per-mille accuracy (and no channel
     *  pressure) the degree grows by one. */
    std::uint32_t accuracyHighPm = 700;
    /** Channel occupancy (per mille of the epoch's cycles) above
     *  which the channel counts as pressured: the degree halves
     *  regardless of accuracy. */
    std::uint32_t occupancyHighPm = 850;
    /** Late hits per mille of useful hits above which the degree
     *  holds instead of growing (prefetches arrive, but too late to
     *  hide the latency -- growing the degree will not help). */
    std::uint32_t lateHighPm = 500;
    /** Optional metadata-charge suppression: when the controller is
     *  pinned at degreeMin under channel pressure, forward only
     *  every other non-hit trigger to the wrapped prefetcher, so
     *  its HT/EIT traffic (reads *and* sampled updates) halves
     *  while streams stay credited on hits. */
    bool suppressMeta = false;
};

/** One epoch's integer inputs to the controller. */
struct ThrottleEpochStats
{
    /** Triggering events observed. */
    std::uint64_t triggers = 0;
    /** Prefetches the wrapped technique attempted to issue. */
    std::uint64_t attempted = 0;
    /** Prefetches forwarded downstream (attempted minus clamped). */
    std::uint64_t issued = 0;
    /** Triggers that hit the prefetch buffer. */
    std::uint64_t useful = 0;
    /** Useful hits whose fill was still in flight (late). */
    std::uint64_t late = 0;
    /** Shared-channel occupancy over the epoch, per mille (0 when
     *  no channel feedback is attached, e.g. coverage runs). */
    std::uint32_t occupancyPm = 0;
};

/**
 * The AIMD state machine.  closeEpoch() applies one transition:
 *
 *   pressured  = occupancyPm > occupancyHighPm
 *   inaccurate = issued > 0 && accuracyPm < accuracyLowPm
 *   if pressured || inaccurate:  degree = max(degreeMin, degree/2)
 *   elif accuracyPm >= accuracyHighPm && latePm <= lateHighPm:
 *                                degree = min(degreeMax, degree+1)
 *   else:                        hold
 *
 * with accuracyPm = min(1000, useful*1000/issued) and
 * latePm = late*1000/useful (0 when useful == 0).  The degree
 * starts at degreeMax -- optimistic until the feedback says
 * otherwise, like the paper's fixed-degree configurations.
 */
class DegreeController
{
  public:
    explicit DegreeController(const ThrottleConfig &config);

    /** Effective prefetch degree for the current epoch. */
    std::uint32_t degree() const { return deg; }

    /** True while metadata suppression is engaged (pinned at
     *  degreeMin under pressure with suppressMeta configured). */
    bool suppressing() const { return suppress; }

    /** Apply one epoch's worth of feedback. */
    void closeEpoch(const ThrottleEpochStats &epoch);

    /** Epoch-transition counters, for reports and tests. */
    std::uint64_t epochs() const { return nEpochs; }
    std::uint64_t increases() const { return nIncreases; }
    std::uint64_t decreases() const { return nDecreases; }
    std::uint64_t holds() const { return nHolds; }

    /**
     * Verify the controller's invariants: the degree stays inside
     * [degreeMin, degreeMax], the transition counters sum to the
     * epoch count, and suppression only engages when configured.
     * @return empty string if OK, else a description.
     */
    std::string audit() const;

  private:
    /** Test-only backdoor for corrupting state in audit tests. */
    friend struct ThrottleTestPeer;

    ThrottleConfig cfg;
    std::uint32_t deg;
    bool suppress = false;
    std::uint64_t nEpochs = 0;
    std::uint64_t nIncreases = 0;
    std::uint64_t nDecreases = 0;
    std::uint64_t nHolds = 0;
};

} // namespace domino

#endif // DOMINO_ADAPTIVE_DEGREE_CONTROLLER_H
