# Empty dependencies file for domino_workloads.
# This may be replaced when dependencies are built.
