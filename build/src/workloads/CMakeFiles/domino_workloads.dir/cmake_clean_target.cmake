file(REMOVE_RECURSE
  "libdomino_workloads.a"
)
