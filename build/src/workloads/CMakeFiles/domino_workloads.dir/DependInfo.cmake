
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/server_workload.cc" "src/workloads/CMakeFiles/domino_workloads.dir/server_workload.cc.o" "gcc" "src/workloads/CMakeFiles/domino_workloads.dir/server_workload.cc.o.d"
  "/root/repo/src/workloads/stream_library.cc" "src/workloads/CMakeFiles/domino_workloads.dir/stream_library.cc.o" "gcc" "src/workloads/CMakeFiles/domino_workloads.dir/stream_library.cc.o.d"
  "/root/repo/src/workloads/workload_params.cc" "src/workloads/CMakeFiles/domino_workloads.dir/workload_params.cc.o" "gcc" "src/workloads/CMakeFiles/domino_workloads.dir/workload_params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/domino_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/domino_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
