file(REMOVE_RECURSE
  "CMakeFiles/domino_workloads.dir/server_workload.cc.o"
  "CMakeFiles/domino_workloads.dir/server_workload.cc.o.d"
  "CMakeFiles/domino_workloads.dir/stream_library.cc.o"
  "CMakeFiles/domino_workloads.dir/stream_library.cc.o.d"
  "CMakeFiles/domino_workloads.dir/workload_params.cc.o"
  "CMakeFiles/domino_workloads.dir/workload_params.cc.o.d"
  "libdomino_workloads.a"
  "libdomino_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
