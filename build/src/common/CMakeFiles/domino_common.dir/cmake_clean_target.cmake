file(REMOVE_RECURSE
  "libdomino_common.a"
)
