file(REMOVE_RECURSE
  "CMakeFiles/domino_common.dir/cli.cc.o"
  "CMakeFiles/domino_common.dir/cli.cc.o.d"
  "CMakeFiles/domino_common.dir/table_format.cc.o"
  "CMakeFiles/domino_common.dir/table_format.cc.o.d"
  "libdomino_common.a"
  "libdomino_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
