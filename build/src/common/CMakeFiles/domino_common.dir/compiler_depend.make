# Empty compiler generated dependencies file for domino_common.
# This may be replaced when dependencies are built.
