file(REMOVE_RECURSE
  "CMakeFiles/domino_mem.dir/cache.cc.o"
  "CMakeFiles/domino_mem.dir/cache.cc.o.d"
  "CMakeFiles/domino_mem.dir/prefetch_buffer.cc.o"
  "CMakeFiles/domino_mem.dir/prefetch_buffer.cc.o.d"
  "libdomino_mem.a"
  "libdomino_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
