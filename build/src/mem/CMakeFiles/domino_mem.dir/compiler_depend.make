# Empty compiler generated dependencies file for domino_mem.
# This may be replaced when dependencies are built.
