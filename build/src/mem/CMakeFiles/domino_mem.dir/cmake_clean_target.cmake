file(REMOVE_RECURSE
  "libdomino_mem.a"
)
