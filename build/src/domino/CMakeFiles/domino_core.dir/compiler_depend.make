# Empty compiler generated dependencies file for domino_core.
# This may be replaced when dependencies are built.
