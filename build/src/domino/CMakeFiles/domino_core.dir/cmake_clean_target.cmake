file(REMOVE_RECURSE
  "libdomino_core.a"
)
