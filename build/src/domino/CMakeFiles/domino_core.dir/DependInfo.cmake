
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/domino/domino_prefetcher.cc" "src/domino/CMakeFiles/domino_core.dir/domino_prefetcher.cc.o" "gcc" "src/domino/CMakeFiles/domino_core.dir/domino_prefetcher.cc.o.d"
  "/root/repo/src/domino/eit.cc" "src/domino/CMakeFiles/domino_core.dir/eit.cc.o" "gcc" "src/domino/CMakeFiles/domino_core.dir/eit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/domino_common.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/domino_prefetch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
