file(REMOVE_RECURSE
  "CMakeFiles/domino_core.dir/domino_prefetcher.cc.o"
  "CMakeFiles/domino_core.dir/domino_prefetcher.cc.o.d"
  "CMakeFiles/domino_core.dir/eit.cc.o"
  "CMakeFiles/domino_core.dir/eit.cc.o.d"
  "libdomino_core.a"
  "libdomino_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
