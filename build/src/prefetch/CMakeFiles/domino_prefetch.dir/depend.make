# Empty dependencies file for domino_prefetch.
# This may be replaced when dependencies are built.
