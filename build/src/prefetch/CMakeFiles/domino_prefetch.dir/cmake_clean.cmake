file(REMOVE_RECURSE
  "CMakeFiles/domino_prefetch.dir/digram.cc.o"
  "CMakeFiles/domino_prefetch.dir/digram.cc.o.d"
  "CMakeFiles/domino_prefetch.dir/isb.cc.o"
  "CMakeFiles/domino_prefetch.dir/isb.cc.o.d"
  "CMakeFiles/domino_prefetch.dir/list.cc.o"
  "CMakeFiles/domino_prefetch.dir/list.cc.o.d"
  "CMakeFiles/domino_prefetch.dir/markov.cc.o"
  "CMakeFiles/domino_prefetch.dir/markov.cc.o.d"
  "CMakeFiles/domino_prefetch.dir/nlookup.cc.o"
  "CMakeFiles/domino_prefetch.dir/nlookup.cc.o.d"
  "CMakeFiles/domino_prefetch.dir/stacked.cc.o"
  "CMakeFiles/domino_prefetch.dir/stacked.cc.o.d"
  "CMakeFiles/domino_prefetch.dir/stms.cc.o"
  "CMakeFiles/domino_prefetch.dir/stms.cc.o.d"
  "CMakeFiles/domino_prefetch.dir/stride.cc.o"
  "CMakeFiles/domino_prefetch.dir/stride.cc.o.d"
  "CMakeFiles/domino_prefetch.dir/vldp.cc.o"
  "CMakeFiles/domino_prefetch.dir/vldp.cc.o.d"
  "libdomino_prefetch.a"
  "libdomino_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
