file(REMOVE_RECURSE
  "libdomino_prefetch.a"
)
