
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/digram.cc" "src/prefetch/CMakeFiles/domino_prefetch.dir/digram.cc.o" "gcc" "src/prefetch/CMakeFiles/domino_prefetch.dir/digram.cc.o.d"
  "/root/repo/src/prefetch/isb.cc" "src/prefetch/CMakeFiles/domino_prefetch.dir/isb.cc.o" "gcc" "src/prefetch/CMakeFiles/domino_prefetch.dir/isb.cc.o.d"
  "/root/repo/src/prefetch/list.cc" "src/prefetch/CMakeFiles/domino_prefetch.dir/list.cc.o" "gcc" "src/prefetch/CMakeFiles/domino_prefetch.dir/list.cc.o.d"
  "/root/repo/src/prefetch/markov.cc" "src/prefetch/CMakeFiles/domino_prefetch.dir/markov.cc.o" "gcc" "src/prefetch/CMakeFiles/domino_prefetch.dir/markov.cc.o.d"
  "/root/repo/src/prefetch/nlookup.cc" "src/prefetch/CMakeFiles/domino_prefetch.dir/nlookup.cc.o" "gcc" "src/prefetch/CMakeFiles/domino_prefetch.dir/nlookup.cc.o.d"
  "/root/repo/src/prefetch/stacked.cc" "src/prefetch/CMakeFiles/domino_prefetch.dir/stacked.cc.o" "gcc" "src/prefetch/CMakeFiles/domino_prefetch.dir/stacked.cc.o.d"
  "/root/repo/src/prefetch/stms.cc" "src/prefetch/CMakeFiles/domino_prefetch.dir/stms.cc.o" "gcc" "src/prefetch/CMakeFiles/domino_prefetch.dir/stms.cc.o.d"
  "/root/repo/src/prefetch/stride.cc" "src/prefetch/CMakeFiles/domino_prefetch.dir/stride.cc.o" "gcc" "src/prefetch/CMakeFiles/domino_prefetch.dir/stride.cc.o.d"
  "/root/repo/src/prefetch/vldp.cc" "src/prefetch/CMakeFiles/domino_prefetch.dir/vldp.cc.o" "gcc" "src/prefetch/CMakeFiles/domino_prefetch.dir/vldp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/domino_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
