file(REMOVE_RECURSE
  "libdomino_sequitur.a"
)
