file(REMOVE_RECURSE
  "CMakeFiles/domino_sequitur.dir/opportunity.cc.o"
  "CMakeFiles/domino_sequitur.dir/opportunity.cc.o.d"
  "CMakeFiles/domino_sequitur.dir/sequitur.cc.o"
  "CMakeFiles/domino_sequitur.dir/sequitur.cc.o.d"
  "libdomino_sequitur.a"
  "libdomino_sequitur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_sequitur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
