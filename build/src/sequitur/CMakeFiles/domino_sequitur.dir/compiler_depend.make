# Empty compiler generated dependencies file for domino_sequitur.
# This may be replaced when dependencies are built.
