file(REMOVE_RECURSE
  "CMakeFiles/domino_analysis.dir/coverage.cc.o"
  "CMakeFiles/domino_analysis.dir/coverage.cc.o.d"
  "CMakeFiles/domino_analysis.dir/factory.cc.o"
  "CMakeFiles/domino_analysis.dir/factory.cc.o.d"
  "libdomino_analysis.a"
  "libdomino_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
