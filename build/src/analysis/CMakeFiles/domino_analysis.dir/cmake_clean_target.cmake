file(REMOVE_RECURSE
  "libdomino_analysis.a"
)
