
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/coverage.cc" "src/analysis/CMakeFiles/domino_analysis.dir/coverage.cc.o" "gcc" "src/analysis/CMakeFiles/domino_analysis.dir/coverage.cc.o.d"
  "/root/repo/src/analysis/factory.cc" "src/analysis/CMakeFiles/domino_analysis.dir/factory.cc.o" "gcc" "src/analysis/CMakeFiles/domino_analysis.dir/factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/domino_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/domino_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/domino_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/domino_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/domino/CMakeFiles/domino_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
