# Empty compiler generated dependencies file for domino_analysis.
# This may be replaced when dependencies are built.
