file(REMOVE_RECURSE
  "libdomino_sim.a"
)
