file(REMOVE_RECURSE
  "CMakeFiles/domino_sim.dir/timing_sim.cc.o"
  "CMakeFiles/domino_sim.dir/timing_sim.cc.o.d"
  "libdomino_sim.a"
  "libdomino_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
