
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/timing_sim.cc" "src/sim/CMakeFiles/domino_sim.dir/timing_sim.cc.o" "gcc" "src/sim/CMakeFiles/domino_sim.dir/timing_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/domino_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/domino_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/domino_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/domino_prefetch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
