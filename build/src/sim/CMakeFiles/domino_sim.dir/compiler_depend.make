# Empty compiler generated dependencies file for domino_sim.
# This may be replaced when dependencies are built.
