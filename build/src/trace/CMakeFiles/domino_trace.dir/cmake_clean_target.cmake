file(REMOVE_RECURSE
  "libdomino_trace.a"
)
