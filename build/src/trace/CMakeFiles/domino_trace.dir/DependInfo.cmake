
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/domino_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/domino_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/trace_stats.cc" "src/trace/CMakeFiles/domino_trace.dir/trace_stats.cc.o" "gcc" "src/trace/CMakeFiles/domino_trace.dir/trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/domino_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
