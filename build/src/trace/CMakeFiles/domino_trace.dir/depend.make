# Empty dependencies file for domino_trace.
# This may be replaced when dependencies are built.
