file(REMOVE_RECURSE
  "CMakeFiles/domino_trace.dir/trace_io.cc.o"
  "CMakeFiles/domino_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/domino_trace.dir/trace_stats.cc.o"
  "CMakeFiles/domino_trace.dir/trace_stats.cc.o.d"
  "libdomino_trace.a"
  "libdomino_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
