file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_coverage_deg1.dir/bench_fig11_coverage_deg1.cc.o"
  "CMakeFiles/bench_fig11_coverage_deg1.dir/bench_fig11_coverage_deg1.cc.o.d"
  "bench_fig11_coverage_deg1"
  "bench_fig11_coverage_deg1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_coverage_deg1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
