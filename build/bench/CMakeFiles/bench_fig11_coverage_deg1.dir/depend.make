# Empty dependencies file for bench_fig11_coverage_deg1.
# This may be replaced when dependencies are built.
