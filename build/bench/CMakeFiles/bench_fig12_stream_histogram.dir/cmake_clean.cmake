file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_stream_histogram.dir/bench_fig12_stream_histogram.cc.o"
  "CMakeFiles/bench_fig12_stream_histogram.dir/bench_fig12_stream_histogram.cc.o.d"
  "bench_fig12_stream_histogram"
  "bench_fig12_stream_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_stream_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
