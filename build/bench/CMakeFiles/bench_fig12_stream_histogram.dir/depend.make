# Empty dependencies file for bench_fig12_stream_histogram.
# This may be replaced when dependencies are built.
