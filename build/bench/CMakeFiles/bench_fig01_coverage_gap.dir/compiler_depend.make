# Empty compiler generated dependencies file for bench_fig01_coverage_gap.
# This may be replaced when dependencies are built.
