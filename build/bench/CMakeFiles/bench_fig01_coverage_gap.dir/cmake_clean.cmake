file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_coverage_gap.dir/bench_fig01_coverage_gap.cc.o"
  "CMakeFiles/bench_fig01_coverage_gap.dir/bench_fig01_coverage_gap.cc.o.d"
  "bench_fig01_coverage_gap"
  "bench_fig01_coverage_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_coverage_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
