file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_stream_length.dir/bench_fig02_stream_length.cc.o"
  "CMakeFiles/bench_fig02_stream_length.dir/bench_fig02_stream_length.cc.o.d"
  "bench_fig02_stream_length"
  "bench_fig02_stream_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_stream_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
