# Empty compiler generated dependencies file for bench_fig02_stream_length.
# This may be replaced when dependencies are built.
