# Empty compiler generated dependencies file for bench_ablation_streams.
# This may be replaced when dependencies are built.
