file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_bandwidth.dir/bench_fig15_bandwidth.cc.o"
  "CMakeFiles/bench_fig15_bandwidth.dir/bench_fig15_bandwidth.cc.o.d"
  "bench_fig15_bandwidth"
  "bench_fig15_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
