# Empty dependencies file for bench_fig15_bandwidth.
# This may be replaced when dependencies are built.
