file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_lookup_sweep.dir/bench_fig05_lookup_sweep.cc.o"
  "CMakeFiles/bench_fig05_lookup_sweep.dir/bench_fig05_lookup_sweep.cc.o.d"
  "bench_fig05_lookup_sweep"
  "bench_fig05_lookup_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_lookup_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
