# Empty compiler generated dependencies file for bench_fig05_lookup_sweep.
# This may be replaced when dependencies are built.
