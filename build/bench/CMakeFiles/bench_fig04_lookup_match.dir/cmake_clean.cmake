file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_lookup_match.dir/bench_fig04_lookup_match.cc.o"
  "CMakeFiles/bench_fig04_lookup_match.dir/bench_fig04_lookup_match.cc.o.d"
  "bench_fig04_lookup_match"
  "bench_fig04_lookup_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_lookup_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
