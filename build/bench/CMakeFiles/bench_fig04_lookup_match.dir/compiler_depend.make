# Empty compiler generated dependencies file for bench_fig04_lookup_match.
# This may be replaced when dependencies are built.
