# Empty dependencies file for bench_fig09_ht_sensitivity.
# This may be replaced when dependencies are built.
