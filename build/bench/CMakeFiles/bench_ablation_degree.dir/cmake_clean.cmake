file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_degree.dir/bench_ablation_degree.cc.o"
  "CMakeFiles/bench_ablation_degree.dir/bench_ablation_degree.cc.o.d"
  "bench_ablation_degree"
  "bench_ablation_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
