# Empty dependencies file for bench_ablation_degree.
# This may be replaced when dependencies are built.
