file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_simple_prefetchers.dir/bench_intro_simple_prefetchers.cc.o"
  "CMakeFiles/bench_intro_simple_prefetchers.dir/bench_intro_simple_prefetchers.cc.o.d"
  "bench_intro_simple_prefetchers"
  "bench_intro_simple_prefetchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_simple_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
