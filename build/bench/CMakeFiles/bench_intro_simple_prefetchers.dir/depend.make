# Empty dependencies file for bench_intro_simple_prefetchers.
# This may be replaced when dependencies are built.
