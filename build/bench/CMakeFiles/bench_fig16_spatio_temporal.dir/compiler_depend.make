# Empty compiler generated dependencies file for bench_fig16_spatio_temporal.
# This may be replaced when dependencies are built.
