file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_spatio_temporal.dir/bench_fig16_spatio_temporal.cc.o"
  "CMakeFiles/bench_fig16_spatio_temporal.dir/bench_fig16_spatio_temporal.cc.o.d"
  "bench_fig16_spatio_temporal"
  "bench_fig16_spatio_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_spatio_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
