# Empty dependencies file for bench_fig03_lookup_accuracy.
# This may be replaced when dependencies are built.
