file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_lookup_accuracy.dir/bench_fig03_lookup_accuracy.cc.o"
  "CMakeFiles/bench_fig03_lookup_accuracy.dir/bench_fig03_lookup_accuracy.cc.o.d"
  "bench_fig03_lookup_accuracy"
  "bench_fig03_lookup_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_lookup_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
