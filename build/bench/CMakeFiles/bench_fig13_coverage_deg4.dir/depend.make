# Empty dependencies file for bench_fig13_coverage_deg4.
# This may be replaced when dependencies are built.
