file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_coverage_deg4.dir/bench_fig13_coverage_deg4.cc.o"
  "CMakeFiles/bench_fig13_coverage_deg4.dir/bench_fig13_coverage_deg4.cc.o.d"
  "bench_fig13_coverage_deg4"
  "bench_fig13_coverage_deg4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_coverage_deg4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
