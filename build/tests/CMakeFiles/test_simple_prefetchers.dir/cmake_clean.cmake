file(REMOVE_RECURSE
  "CMakeFiles/test_simple_prefetchers.dir/test_simple_prefetchers.cc.o"
  "CMakeFiles/test_simple_prefetchers.dir/test_simple_prefetchers.cc.o.d"
  "test_simple_prefetchers"
  "test_simple_prefetchers.pdb"
  "test_simple_prefetchers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simple_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
