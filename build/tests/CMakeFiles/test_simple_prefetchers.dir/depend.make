# Empty dependencies file for test_simple_prefetchers.
# This may be replaced when dependencies are built.
