file(REMOVE_RECURSE
  "CMakeFiles/test_history.dir/test_history.cc.o"
  "CMakeFiles/test_history.dir/test_history.cc.o.d"
  "test_history"
  "test_history.pdb"
  "test_history[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
