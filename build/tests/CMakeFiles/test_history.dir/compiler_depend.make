# Empty compiler generated dependencies file for test_history.
# This may be replaced when dependencies are built.
