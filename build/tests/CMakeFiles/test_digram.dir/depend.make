# Empty dependencies file for test_digram.
# This may be replaced when dependencies are built.
