file(REMOVE_RECURSE
  "CMakeFiles/test_digram.dir/test_digram.cc.o"
  "CMakeFiles/test_digram.dir/test_digram.cc.o.d"
  "test_digram"
  "test_digram.pdb"
  "test_digram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_digram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
