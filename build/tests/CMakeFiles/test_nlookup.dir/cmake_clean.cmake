file(REMOVE_RECURSE
  "CMakeFiles/test_nlookup.dir/test_nlookup.cc.o"
  "CMakeFiles/test_nlookup.dir/test_nlookup.cc.o.d"
  "test_nlookup"
  "test_nlookup.pdb"
  "test_nlookup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
