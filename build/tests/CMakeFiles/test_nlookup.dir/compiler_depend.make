# Empty compiler generated dependencies file for test_nlookup.
# This may be replaced when dependencies are built.
