file(REMOVE_RECURSE
  "CMakeFiles/test_isb.dir/test_isb.cc.o"
  "CMakeFiles/test_isb.dir/test_isb.cc.o.d"
  "test_isb"
  "test_isb.pdb"
  "test_isb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
