# Empty dependencies file for test_isb.
# This may be replaced when dependencies are built.
