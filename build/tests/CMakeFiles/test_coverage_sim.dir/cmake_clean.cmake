file(REMOVE_RECURSE
  "CMakeFiles/test_coverage_sim.dir/test_coverage_sim.cc.o"
  "CMakeFiles/test_coverage_sim.dir/test_coverage_sim.cc.o.d"
  "test_coverage_sim"
  "test_coverage_sim.pdb"
  "test_coverage_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coverage_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
