# Empty dependencies file for test_coverage_sim.
# This may be replaced when dependencies are built.
