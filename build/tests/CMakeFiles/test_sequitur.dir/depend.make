# Empty dependencies file for test_sequitur.
# This may be replaced when dependencies are built.
