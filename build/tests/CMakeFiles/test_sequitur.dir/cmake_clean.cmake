file(REMOVE_RECURSE
  "CMakeFiles/test_sequitur.dir/test_sequitur.cc.o"
  "CMakeFiles/test_sequitur.dir/test_sequitur.cc.o.d"
  "test_sequitur"
  "test_sequitur.pdb"
  "test_sequitur[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequitur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
