file(REMOVE_RECURSE
  "CMakeFiles/test_stacked.dir/test_stacked.cc.o"
  "CMakeFiles/test_stacked.dir/test_stacked.cc.o.d"
  "test_stacked"
  "test_stacked.pdb"
  "test_stacked[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stacked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
