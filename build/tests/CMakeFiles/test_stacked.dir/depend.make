# Empty dependencies file for test_stacked.
# This may be replaced when dependencies are built.
