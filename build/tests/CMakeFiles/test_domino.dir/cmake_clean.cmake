file(REMOVE_RECURSE
  "CMakeFiles/test_domino.dir/test_domino.cc.o"
  "CMakeFiles/test_domino.dir/test_domino.cc.o.d"
  "test_domino"
  "test_domino.pdb"
  "test_domino[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_domino.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
