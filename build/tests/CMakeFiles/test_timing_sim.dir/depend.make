# Empty dependencies file for test_timing_sim.
# This may be replaced when dependencies are built.
