file(REMOVE_RECURSE
  "CMakeFiles/test_timing_sim.dir/test_timing_sim.cc.o"
  "CMakeFiles/test_timing_sim.dir/test_timing_sim.cc.o.d"
  "test_timing_sim"
  "test_timing_sim.pdb"
  "test_timing_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
