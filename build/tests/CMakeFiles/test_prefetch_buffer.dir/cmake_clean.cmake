file(REMOVE_RECURSE
  "CMakeFiles/test_prefetch_buffer.dir/test_prefetch_buffer.cc.o"
  "CMakeFiles/test_prefetch_buffer.dir/test_prefetch_buffer.cc.o.d"
  "test_prefetch_buffer"
  "test_prefetch_buffer.pdb"
  "test_prefetch_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetch_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
