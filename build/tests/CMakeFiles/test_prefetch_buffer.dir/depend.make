# Empty dependencies file for test_prefetch_buffer.
# This may be replaced when dependencies are built.
