file(REMOVE_RECURSE
  "CMakeFiles/test_eit.dir/test_eit.cc.o"
  "CMakeFiles/test_eit.dir/test_eit.cc.o.d"
  "test_eit"
  "test_eit.pdb"
  "test_eit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
