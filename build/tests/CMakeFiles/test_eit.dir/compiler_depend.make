# Empty compiler generated dependencies file for test_eit.
# This may be replaced when dependencies are built.
