# Empty dependencies file for test_vldp.
# This may be replaced when dependencies are built.
