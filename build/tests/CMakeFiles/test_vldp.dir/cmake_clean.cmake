file(REMOVE_RECURSE
  "CMakeFiles/test_vldp.dir/test_vldp.cc.o"
  "CMakeFiles/test_vldp.dir/test_vldp.cc.o.d"
  "test_vldp"
  "test_vldp.pdb"
  "test_vldp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vldp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
