file(REMOVE_RECURSE
  "CMakeFiles/test_stms.dir/test_stms.cc.o"
  "CMakeFiles/test_stms.dir/test_stms.cc.o.d"
  "test_stms"
  "test_stms.pdb"
  "test_stms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
