# Empty dependencies file for test_stms.
# This may be replaced when dependencies are built.
