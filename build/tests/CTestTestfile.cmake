# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch_buffer[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_sequitur[1]_include.cmake")
include("/root/repo/build/tests/test_stms[1]_include.cmake")
include("/root/repo/build/tests/test_digram[1]_include.cmake")
include("/root/repo/build/tests/test_eit[1]_include.cmake")
include("/root/repo/build/tests/test_domino[1]_include.cmake")
include("/root/repo/build/tests/test_isb[1]_include.cmake")
include("/root/repo/build/tests/test_vldp[1]_include.cmake")
include("/root/repo/build/tests/test_nlookup[1]_include.cmake")
include("/root/repo/build/tests/test_stacked[1]_include.cmake")
include("/root/repo/build/tests/test_coverage_sim[1]_include.cmake")
include("/root/repo/build/tests/test_timing_sim[1]_include.cmake")
include("/root/repo/build/tests/test_simple_prefetchers[1]_include.cmake")
include("/root/repo/build/tests/test_mshr[1]_include.cmake")
include("/root/repo/build/tests/test_history[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
