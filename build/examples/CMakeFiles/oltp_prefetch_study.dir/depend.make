# Empty dependencies file for oltp_prefetch_study.
# This may be replaced when dependencies are built.
