file(REMOVE_RECURSE
  "CMakeFiles/oltp_prefetch_study.dir/oltp_prefetch_study.cpp.o"
  "CMakeFiles/oltp_prefetch_study.dir/oltp_prefetch_study.cpp.o.d"
  "oltp_prefetch_study"
  "oltp_prefetch_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_prefetch_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
