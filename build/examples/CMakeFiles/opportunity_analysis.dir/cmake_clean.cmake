file(REMOVE_RECURSE
  "CMakeFiles/opportunity_analysis.dir/opportunity_analysis.cpp.o"
  "CMakeFiles/opportunity_analysis.dir/opportunity_analysis.cpp.o.d"
  "opportunity_analysis"
  "opportunity_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opportunity_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
