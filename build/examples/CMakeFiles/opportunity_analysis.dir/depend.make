# Empty dependencies file for opportunity_analysis.
# This may be replaced when dependencies are built.
