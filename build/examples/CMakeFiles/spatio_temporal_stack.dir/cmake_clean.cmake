file(REMOVE_RECURSE
  "CMakeFiles/spatio_temporal_stack.dir/spatio_temporal_stack.cpp.o"
  "CMakeFiles/spatio_temporal_stack.dir/spatio_temporal_stack.cpp.o.d"
  "spatio_temporal_stack"
  "spatio_temporal_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatio_temporal_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
