
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/spatio_temporal_stack.cpp" "examples/CMakeFiles/spatio_temporal_stack.dir/spatio_temporal_stack.cpp.o" "gcc" "examples/CMakeFiles/spatio_temporal_stack.dir/spatio_temporal_stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/domino_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/domino_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sequitur/CMakeFiles/domino_sequitur.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/domino_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/domino/CMakeFiles/domino_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/domino_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/domino_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/domino_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/domino_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
