# Empty compiler generated dependencies file for spatio_temporal_stack.
# This may be replaced when dependencies are built.
