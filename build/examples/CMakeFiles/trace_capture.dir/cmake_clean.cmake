file(REMOVE_RECURSE
  "CMakeFiles/trace_capture.dir/trace_capture.cpp.o"
  "CMakeFiles/trace_capture.dir/trace_capture.cpp.o.d"
  "trace_capture"
  "trace_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
