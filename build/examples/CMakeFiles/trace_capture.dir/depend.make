# Empty dependencies file for trace_capture.
# This may be replaced when dependencies are built.
