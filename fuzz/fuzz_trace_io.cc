/**
 * @file
 * Fuzz harness for the DOMTRACE binary parser (readTrace /
 * writeTrace, src/trace/trace_io.cc).
 *
 * The input bytes are presented to readTrace as a candidate trace
 * file.  Oracles on accepted inputs:
 *
 *   - canonical fixed point: write(read(x)) must itself read back
 *     to the same record sequence, and a second
 *     write(read(write(read(x)))) must be byte-identical -- one
 *     round trip canonicalises (e.g. nonzero flag bytes collapse
 *     to 1), after which serialisation is a fixed point;
 *   - the re-serialised byte length matches the format arithmetic
 *     (header + count * record size from docs/TRACE_FORMAT.md).
 *
 * Rejected inputs must report an error message and leave the output
 * buffer untouched (the "without touching @p trace" contract of
 * trace_io.h).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "trace/trace_io.h"

#include "fuzz_util.h"

using namespace domino;
using namespace domino::fuzz;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    ScratchFile input("trace-in", data, size);

    TraceBuffer first;
    first.pushRead(0xdead); // canary: rejection must not touch it
    const IoResult read1 = readTrace(input.path(), first);
    if (!read1.ok) {
        CHECK(!read1.error.empty());
        CHECK_EQ(first.size(), std::size_t{1});
        CHECK_EQ(first[0].addr, Addr{0xdead});
        return 0;
    }

    // Accepted: one write canonicalises; it must read back to the
    // identical record sequence.
    ScratchFile canon("trace-canon");
    CHECK(writeTrace(canon.path(), first).ok);
    const std::vector<std::uint8_t> canonBytes =
        readFileBytes(canon.path());
    CHECK_EQ(canonBytes.size(),
             traceHeaderBytes + first.size() * traceRecordBytes);

    TraceBuffer second;
    CHECK(readTrace(canon.path(), second).ok);
    CHECK_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < second.size(); ++i) {
        CHECK_EQ(first[i].pc, second[i].pc);
        CHECK_EQ(first[i].addr, second[i].addr);
        CHECK_EQ(first[i].isWrite, second[i].isWrite);
    }

    // Fixed point: re-serialising the round-tripped buffer must be
    // byte-identical to the canonical file.
    ScratchFile again("trace-again");
    CHECK(writeTrace(again.path(), second).ok);
    CHECK(readFileBytes(again.path()) == canonBytes);
    return 0;
}
