/**
 * @file
 * Differential fuzz oracle: FlatHashMap (src/common/flat_map.h)
 * against std::unordered_map over an input-derived operation
 * stream.
 *
 * FlatHashMap backs the index tables of STMS/Digram/ISB/NLookup,
 * where a silent divergence from map semantics would skew figure
 * results rather than crash.  The harness decodes the fuzzer input
 * into (op, key, value) triples -- insert-or-assign, lookup,
 * contains, clear -- applies each to both maps, and CHECKs
 * per-operation agreement.  Keys are drawn from a 10-bit space so
 * probe chains collide heavily (the interesting regime for the
 * open-addressing layout).  After the stream: sizes match, every
 * key in the reference is found with the same value, and the
 * structural audit passes.
 */

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/check.h"
#include "common/flat_map.h"

#include "fuzz_util.h"

using namespace domino;
using namespace domino::fuzz;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    ByteReader in(data, size);
    FlatHashMap<std::uint64_t> map(8);
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    while (!in.done()) {
        const std::uint8_t op = in.u8() % 4;
        const std::uint64_t key = in.u16() & 0x3ff;
        switch (op) {
        case 0: { // insert-or-assign
            const std::uint64_t value = in.u64();
            map[key] = value;
            ref[key] = value;
            break;
        }
        case 1: { // lookup
            const std::uint64_t *got = map.find(key);
            const auto want = ref.find(key);
            CHECK_EQ(got != nullptr, want != ref.end());
            if (got)
                CHECK_EQ(*got, want->second);
            break;
        }
        case 2: // contains
            CHECK_EQ(map.contains(key), ref.count(key) != 0);
            break;
        case 3: // clear (rare: only when the low bits align)
            if (key % 64 == 0) {
                map.clear();
                ref.clear();
            }
            break;
        }
        CHECK_EQ(map.size(), ref.size());
    }

    // Final cross-check and structural audit.
    for (const auto &[key, value] : ref) {
        const std::uint64_t *got = map.find(key);
        CHECK(got != nullptr);
        CHECK_EQ(*got, value);
    }
    CHECK_EQ(map.audit(), std::string{});
    return 0;
}
