/**
 * @file
 * Differential fuzz oracle: the packed SoA EnhancedIndexTable
 * (src/domino/eit.cc) against a row-aware deque reference model
 * with the same two-level LRU rules.
 *
 * The geometry is derived from the input: supersPerRow AND
 * entriesPerSuper both sweep 1..4, and the row count is tiny (16
 * rows) so row pressure -- super-entry eviction, way rotation --
 * fires constantly, exercising exactly the lane rotations the SoA
 * layout replaces LruSet node splicing with.  The reference keeps
 * one deque of (tag, successor deque) per row, MRU first; after the
 * op stream the two models must agree exactly (same tags present,
 * same MRU-first successor order, same HT positions, same eviction
 * and touched-row counters) and the EIT's structural audit must
 * pass with the op count as the HT bound.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "domino/eit.h"

#include "fuzz_util.h"

using namespace domino;
using namespace domino::fuzz;

namespace
{

/** Row-aware two-level LRU reference mirroring the EIT rules. */
class ReferenceModel
{
  public:
    ReferenceModel(const EitConfig &cfg, std::uint64_t rows)
        : superCap(cfg.supersPerRow), entryCap(cfg.entriesPerSuper),
          rowMask(rows - 1), table(rows)
    {}

    void
    update(LineAddr tag, LineAddr next, std::uint64_t pos)
    {
        Row &row = table[mix64(tag) & rowMask];
        auto it = std::find_if(
            row.begin(), row.end(),
            [&](const Super &s) { return s.tag == tag; });
        if (it == row.end()) {
            if (row.size() >= superCap) {
                row.pop_back();
                ++evictions;
            }
            row.emplace_front();
            row.front().tag = tag;
        } else if (it != row.begin()) {
            Super moved = std::move(*it);
            row.erase(it);
            row.push_front(std::move(moved));
        }
        auto &entries = row.front().entries;
        auto e = std::find_if(
            entries.begin(), entries.end(),
            [&](const std::pair<LineAddr, std::uint64_t> &entry) {
                return entry.first == next;
            });
        if (e != entries.end())
            entries.erase(e);
        entries.emplace_front(next, pos);
        if (entries.size() > entryCap)
            entries.pop_back();
    }

    const std::deque<std::pair<LineAddr, std::uint64_t>> *
    lookup(LineAddr tag) const
    {
        const Row &row = table[mix64(tag) & rowMask];
        const auto it = std::find_if(
            row.begin(), row.end(),
            [&](const Super &s) { return s.tag == tag; });
        return it == row.end() ? nullptr : &it->entries;
    }

    std::uint64_t superEvictions() const { return evictions; }

    std::size_t
    touchedRows() const
    {
        std::size_t touched = 0;
        for (const Row &row : table)
            touched += row.empty() ? 0 : 1;
        return touched;
    }

  private:
    struct Super
    {
        LineAddr tag = invalidAddr;
        std::deque<std::pair<LineAddr, std::uint64_t>> entries;
    };
    using Row = std::deque<Super>;

    std::size_t superCap;
    std::size_t entryCap;
    std::uint64_t rowMask;
    std::vector<Row> table;
    std::uint64_t evictions = 0;
};

} // anonymous namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    ByteReader in(data, size);

    EitConfig cfg;
    cfg.rows = 16; // tiny: row pressure on nearly every update
    cfg.supersPerRow = 1 + in.u8() % 4;
    cfg.entriesPerSuper = 1 + in.u8() % 4;
    EnhancedIndexTable eit(cfg);
    ReferenceModel ref(cfg, eit.rows());

    constexpr std::uint64_t tagSpace = 64;
    std::uint64_t ops = 0;
    while (!in.done()) {
        const LineAddr tag = in.u8() % tagSpace;
        const LineAddr next = in.u8() % 16;
        eit.update(tag, next, ops);
        ref.update(tag, next, ops);
        ++ops;
    }

    for (LineAddr tag = 0; tag < tagSpace; ++tag) {
        const EnhancedIndexTable::SuperView got = eit.lookup(tag);
        const auto *want = ref.lookup(tag);
        CHECK_EQ(static_cast<bool>(got), want != nullptr);
        if (!want)
            continue;
        CHECK_EQ(got.tag(), tag);
        CHECK_EQ(got.size(), want->size());
        for (std::size_t i = 0; i < want->size(); ++i) {
            CHECK_EQ(got.next(i), (*want)[i].first);
            CHECK_EQ(got.pos(i), (*want)[i].second);
        }
    }
    CHECK_EQ(eit.superEvictions(), ref.superEvictions());
    CHECK_EQ(eit.touchedRows(), ref.touchedRows());
    CHECK_EQ(eit.audit(ops ? ops : 1), std::string{});
    return 0;
}
