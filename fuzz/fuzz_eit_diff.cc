/**
 * @file
 * Differential fuzz oracle: the flat-row EnhancedIndexTable
 * (src/domino/eit.cc) against a map-plus-deque reference model with
 * the same LRU capacity rules (the model of
 * tests/test_eit.cc::EitReferenceModel).
 *
 * The geometry forces no row pressure (64 K rows, 8 supers per row,
 * tags from a 6-bit space), so super-entry eviction never fires and
 * the two models must agree exactly: same tags present, same
 * successor order (MRU first), same HT positions.  The
 * entries-per-super capacity is derived from the input so all four
 * paper-relevant capacities (1..4) are exercised.  After the op
 * stream the EIT's structural audit must pass with the op count as
 * the HT bound.
 */

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <utility>

#include "common/check.h"
#include "domino/eit.h"

#include "fuzz_util.h"

using namespace domino;
using namespace domino::fuzz;

namespace
{

/** Per-tag LRU successor list mirroring EitEntry semantics. */
class ReferenceModel
{
  public:
    explicit ReferenceModel(unsigned entries_per_super)
        : cap(entries_per_super)
    {}

    void
    update(LineAddr tag, LineAddr next, std::uint64_t pos)
    {
        auto &lst = model[tag];
        for (auto it = lst.begin(); it != lst.end(); ++it) {
            if (it->first == next) {
                lst.erase(it);
                break;
            }
        }
        lst.emplace_front(next, pos);
        if (lst.size() > cap)
            lst.pop_back();
    }

    const std::deque<std::pair<LineAddr, std::uint64_t>> *
    lookup(LineAddr tag) const
    {
        const auto it = model.find(tag);
        return it == model.end() ? nullptr : &it->second;
    }

  private:
    unsigned cap;
    std::map<LineAddr,
             std::deque<std::pair<LineAddr, std::uint64_t>>> model;
};

} // anonymous namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    ByteReader in(data, size);

    EitConfig cfg;
    cfg.rows = 1 << 16; // effectively no row pressure
    cfg.supersPerRow = 8;
    cfg.entriesPerSuper = 1 + in.u8() % 4;
    EnhancedIndexTable eit(cfg);
    ReferenceModel ref(cfg.entriesPerSuper);

    constexpr std::uint64_t tagSpace = 64;
    std::uint64_t ops = 0;
    while (!in.done()) {
        const LineAddr tag = in.u8() % tagSpace;
        const LineAddr next = in.u8() % 16;
        eit.update(tag, next, ops);
        ref.update(tag, next, ops);
        ++ops;
    }

    for (LineAddr tag = 0; tag < tagSpace; ++tag) {
        const SuperEntry *got = eit.lookup(tag);
        const auto *want = ref.lookup(tag);
        CHECK_EQ(got != nullptr, want != nullptr);
        if (!want)
            continue;
        CHECK_EQ(got->entries.size(), want->size());
        for (std::size_t i = 0; i < want->size(); ++i) {
            CHECK_EQ(got->entries.at(i).next, (*want)[i].first);
            CHECK_EQ(got->entries.at(i).pos, (*want)[i].second);
        }
    }
    CHECK_EQ(eit.audit(ops ? ops : 1), std::string{});
    return 0;
}
