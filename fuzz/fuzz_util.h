/**
 * @file
 * Shared plumbing for the fuzz harnesses: a deterministic byte
 * reader over the fuzzer input, a self-cleaning scratch file (the
 * parsers under test read from paths, not buffers), and a whole-file
 * reader for byte-identity oracles.
 *
 * Harnesses CHECK their oracles (src/common/check.h): a violated
 * oracle aborts, which both libFuzzer and the standalone driver
 * report as a crash on the offending input.
 */

#ifndef DOMINO_FUZZ_FUZZ_UTIL_H
#define DOMINO_FUZZ_FUZZ_UTIL_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/check.h"

namespace domino::fuzz
{

/**
 * Sequential little-endian reader over the fuzzer input.  Reads
 * past the end yield zeros, so every input prefix decodes to a
 * well-defined operation stream (no rejected inputs, which keeps
 * coverage feedback smooth).
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : p(data), n(size)
    {}

    std::size_t remaining() const { return n - pos; }
    bool done() const { return pos >= n; }

    std::uint8_t
    u8()
    {
        return pos < n ? p[pos++] : 0;
    }

    std::uint16_t
    u16()
    {
        std::uint16_t v = u8();
        v = static_cast<std::uint16_t>(v | (u8() << 8));
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }

  private:
    const std::uint8_t *p;
    std::size_t n;
    std::size_t pos = 0;
};

/**
 * A scratch file holding one fuzzer input (or a harness-produced
 * re-serialisation), removed on destruction.  Paths are unique per
 * process and per instance so parallel CTest smoke runs never
 * collide.
 */
class ScratchFile
{
  public:
    explicit ScratchFile(const char *stem)
    {
        static unsigned long serial = 0;
        name = std::string("/tmp/domino-fuzz-") + stem + "-" +
               std::to_string(static_cast<long>(::getpid())) + "-" +
               std::to_string(serial++) + ".bin";
    }

    ScratchFile(const char *stem, const std::uint8_t *data,
                std::size_t size)
        : ScratchFile(stem)
    {
        write(data, size);
    }

    ~ScratchFile() { std::remove(name.c_str()); }

    ScratchFile(const ScratchFile &) = delete;
    ScratchFile &operator=(const ScratchFile &) = delete;

    void
    write(const std::uint8_t *data, std::size_t size)
    {
        std::ofstream os(name, std::ios::binary | std::ios::trunc);
        CHECK(os.good());
        os.write(reinterpret_cast<const char *>(data),
                 static_cast<std::streamsize>(size));
        CHECK(os.good());
    }

    const std::string &path() const { return name; }

  private:
    std::string name;
};

/** The full contents of @p path (CHECKs that the read succeeds). */
inline std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    CHECK(is.good());
    const std::streamsize size = is.tellg();
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(size));
    is.seekg(0);
    if (size > 0)
        is.read(reinterpret_cast<char *>(bytes.data()), size);
    CHECK(is.good());
    return bytes;
}

} // namespace domino::fuzz

#endif // DOMINO_FUZZ_FUZZ_UTIL_H
