#!/usr/bin/env python3
"""Deterministic seed-corpus generator for the fuzz harnesses.

Regenerates every file under fuzz/corpus/ from scratch (stdlib
only, fixed seeds -- rerunning produces byte-identical corpora, so
the committed files never drift).  The corpus mirrors the parser
test suites: valid files of both binary formats plus the corruption
cases of tests/test_trace.cc (TraceIoErrors) and
tests/test_replay_spill.cc, giving the fuzzers productive starting
points on both the accept and reject paths.

Usage: python3 fuzz/make_corpus.py
"""

from __future__ import annotations

import random
import shutil
import struct
from pathlib import Path

CORPUS = Path(__file__).resolve().parent / "corpus"

# ------------------------------------------------------------------
# DOMTRACE (docs/TRACE_FORMAT.md): 20-byte header, 17-byte records.


def trace_bytes(records, magic=b"DOMTRACE", version=1,
                count=None) -> bytes:
    out = magic + struct.pack("<IQ", version,
                              len(records) if count is None
                              else count)
    for pc, addr, flags in records:
        out += struct.pack("<QQB", pc, addr, flags)
    return out


def trace_corpus() -> dict[str, bytes]:
    rng = random.Random(0xD0711)
    small = [(rng.getrandbits(48), rng.getrandbits(40), i % 2)
             for i in range(5)]
    many = [(rng.getrandbits(48), rng.getrandbits(40), i % 2)
            for i in range(23)]
    valid_small = trace_bytes(small)
    return {
        "empty_file": b"",
        "valid_empty": trace_bytes([]),
        "valid_small": valid_small,
        "valid_many": trace_bytes(many),
        # A nonzero non-1 flag byte: accepted, canonicalised to 1.
        "valid_flags2": trace_bytes([(1, 2, 2)]),
        "bad_magic": trace_bytes(small, magic=b"DOMTRACF"),
        "bad_version": trace_bytes(small, version=9),
        "truncated_header": valid_small[:10],
        "truncated_body": valid_small[:-5],
        "length_mismatch": valid_small + b"\x00",
        "count_overclaim": trace_bytes(small, count=6),
    }


# ------------------------------------------------------------------
# DOMIMAGE (docs/TRACE_FORMAT.md "ReplayImage spill format").

FNV_BASIS = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3


def fnv1a64(data: bytes) -> int:
    h = FNV_BASIS
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


def image_bytes(lines, pcs, rw, key=b"fuzz-corpus", *,
                magic=b"DOMIMAGE", version=1, count=None,
                reserved=0, id_order=(1, 2, 3, 4)) -> bytes:
    n = len(lines) if count is None else count
    bodies = {
        1: key,
        2: b"".join(struct.pack("<Q", v) for v in lines),
        3: b"".join(struct.pack("<Q", v) for v in pcs),
        4: bytes(rw),
    }
    head = magic + struct.pack("<IIQ", version, len(id_order), n)
    offset = 24 + 32 * len(id_order)
    table = b""
    payload = b""
    for sec_id in id_order:
        body = bodies[sec_id]
        table += struct.pack("<IIQQQ", sec_id, reserved, offset,
                             len(body), fnv1a64(body))
        payload += body
        offset += len(body)
    return head + table + payload


def image_corpus() -> dict[str, bytes]:
    rng = random.Random(0xD0712)
    n = 6
    lines = [rng.getrandbits(34) for _ in range(n)]
    pcs = [rng.getrandbits(48) for _ in range(n)]
    rw = [i % 2 for i in range(n)]
    valid = image_bytes(lines, pcs, rw)
    bad_checksum = bytearray(valid)
    bad_checksum[-1] ^= 0x40  # flip inside SecRw, checksum now wrong
    return {
        "valid_empty": image_bytes([], [], []),
        "valid_small": valid,
        "valid_nokey": image_bytes(lines, pcs, rw, key=b""),
        "bad_magic": image_bytes(lines, pcs, rw,
                                 magic=b"DOMIMAGF"),
        "bad_version": image_bytes(lines, pcs, rw, version=9),
        "bad_checksum": bytes(bad_checksum),
        "reserved_nonzero": image_bytes(lines, pcs, rw, reserved=7),
        "sections_out_of_order": image_bytes(lines, pcs, rw,
                                             id_order=(1, 3, 2, 4)),
        "truncated": valid[:-3],
        "trailing_garbage": valid + b"\x00\x00",
        "rw_nonbool": image_bytes(lines, pcs, [2] * n),
        "count_overclaim": image_bytes(lines, pcs, rw, count=n + 1),
    }


# ------------------------------------------------------------------
# Op-stream corpora for the differential oracles: random blobs from
# fixed seeds plus hand-shaped streams hitting the rare paths.


def blob_corpus(seed: int, extras: dict[str, bytes]) \
        -> dict[str, bytes]:
    rng = random.Random(seed)
    out = {f"random_{size}": rng.randbytes(size)
           for size in (16, 128, 512, 2048)}
    out.update(extras)
    return out


def flat_map_extras() -> dict[str, bytes]:
    # op=3 with key 0 triggers clear(); surround it with inserts.
    stream = b""
    for k in range(8):
        stream += bytes([0]) + struct.pack("<H", k) + bytes(8)
    stream += bytes([3]) + struct.pack("<H", 0)
    for k in range(8):
        stream += bytes([1]) + struct.pack("<H", k)
    return {"insert_clear_lookup": stream}


def eit_extras() -> dict[str, bytes]:
    # Leading two bytes pick the geometry (supersPerRow,
    # entriesPerSuper, each 1 + byte % 4).
    # One tag hammered enough to cycle its LRU entries repeatedly.
    single = bytes([1, 2]) + bytes(
        b for i in range(64) for b in (7, i % 16))
    # Every tag of the 6-bit space round-robin over 16 rows at the
    # narrowest geometry: constant super-entry eviction.
    churn = bytes([0, 0]) + bytes(
        b for i in range(128) for b in (i % 64, (i * 3) % 16))
    return {"single_tag": single, "row_churn": churn}


# ------------------------------------------------------------------


def main() -> None:
    corpora = {
        "fuzz_trace_io": trace_corpus(),
        # The streaming harness reads the same format; shard
        # geometry comes from the tail bytes, which differ across
        # these files naturally.
        "fuzz_streaming_source": trace_corpus(),
        "fuzz_replay_spill": image_corpus(),
        "fuzz_flat_map_diff": blob_corpus(0xF1A7, flat_map_extras()),
        "fuzz_eit_diff": blob_corpus(0xE17, eit_extras()),
    }
    for harness, files in corpora.items():
        out_dir = CORPUS / harness
        if out_dir.exists():
            shutil.rmtree(out_dir)
        out_dir.mkdir(parents=True)
        for name, data in sorted(files.items()):
            (out_dir / f"{name}.bin").write_bytes(data)
        print(f"{harness}: {len(files)} seed(s)")


if __name__ == "__main__":
    main()
