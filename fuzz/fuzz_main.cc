/**
 * @file
 * Standalone corpus-replay driver for toolchains without libFuzzer
 * (g++ has no -fsanitize=fuzzer).  Linked into every harness when
 * CMake detects the flag is unavailable, so the identical CTest
 * smoke command -- `<harness> -runs=0 <corpus-dir>` -- works under
 * both clang (libFuzzer interprets the flags) and g++ (this driver
 * ignores dash-arguments and replays the corpus once).
 *
 * Exit status 0 means every corpus input ran without tripping an
 * oracle; an oracle CHECK failure aborts, which CTest reports.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

namespace
{

std::vector<std::uint8_t>
slurp(const std::filesystem::path &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    const std::streamsize size = is.tellg();
    std::vector<std::uint8_t> bytes(
        size > 0 ? static_cast<std::size_t>(size) : 0);
    is.seekg(0);
    if (!bytes.empty())
        is.read(reinterpret_cast<char *>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    return bytes;
}

int
runOne(const std::filesystem::path &path)
{
    const std::vector<std::uint8_t> bytes = slurp(path);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int ran = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!arg.empty() && arg[0] == '-')
            continue; // libFuzzer flag; meaningless here
        const std::filesystem::path p(arg);
        if (std::filesystem::is_directory(p)) {
            // Sorted replay: deterministic order regardless of
            // directory enumeration order.
            std::vector<std::filesystem::path> files;
            for (const auto &entry :
                 std::filesystem::directory_iterator(p))
                if (entry.is_regular_file())
                    files.push_back(entry.path());
            std::sort(files.begin(), files.end());
            for (const auto &f : files)
                ran += runOne(f);
        } else if (std::filesystem::is_regular_file(p)) {
            ran += runOne(p);
        } else {
            std::fprintf(stderr,
                         "fuzz_main: no such input: %s\n",
                         arg.c_str());
            return 2;
        }
    }
    std::printf("fuzz_main: replayed %d corpus input(s) cleanly\n",
                ran);
    return 0;
}
