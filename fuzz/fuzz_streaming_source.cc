/**
 * @file
 * Fuzz harness for the streaming trace reader
 * (src/trace/streaming_source.cc) against the resident parser as a
 * differential oracle.
 *
 * The input bytes are presented both to readTrace (resident) and to
 * StreamingTraceSource (streamed, with a buffer size derived from
 * the input so refill boundaries vary).  Oracles:
 *
 *   - accept/reject agreement: both parsers share one validation
 *     path (openTraceStream), so they must agree on every input;
 *   - streamed ≡ resident: the streamed record sequence equals the
 *     resident one, record for record, and a second pass after
 *     reset() replays it identically;
 *   - sharded dealing: for a core count derived from the input,
 *     the per-core shards partition the resident records exactly as
 *     the round-robin chunk deal specifies, and shardSize() matches
 *     what each shard actually yields;
 *   - the source audits clean after every pass.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "trace/streaming_source.h"
#include "trace/trace_io.h"

#include "fuzz_util.h"

using namespace domino;
using namespace domino::fuzz;

namespace
{

void
checkSameAccess(const Access &want, const Access &got)
{
    CHECK_EQ(want.pc, got.pc);
    CHECK_EQ(want.addr, got.addr);
    CHECK_EQ(want.isWrite, got.isWrite);
}

} // anonymous namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    // Derive replay geometry from the tail of the input so the
    // file bytes (the head) and the geometry vary independently.
    const std::uint32_t bufRecords =
        1 + (size ? data[size - 1] % 7 : 0);
    const unsigned cores = 1 + (size > 1 ? data[size - 2] % 4 : 0);
    const std::uint32_t chunk =
        1 + (size > 2 ? data[size - 3] % 5 : 0);

    ScratchFile input("stream-in", data, size);

    TraceBuffer resident;
    const IoResult res = readTrace(input.path(), resident);

    StreamingTraceSource streamed;
    const IoResult open =
        streamed.open(input.path(), bufRecords);
    CHECK_EQ(res.ok, open.ok);
    if (!res.ok) {
        CHECK(!open.error.empty());
        return 0;
    }

    // Two passes (reset between them) must both equal the resident
    // sequence.
    for (int pass = 0; pass < 2; ++pass) {
        Access got;
        for (std::size_t i = 0; i < resident.size(); ++i) {
            CHECK(streamed.next(got));
            checkSameAccess(resident[i], got);
        }
        CHECK(!streamed.next(got));
        CHECK_EQ(streamed.audit(), std::string{});
        streamed.reset();
    }

    // Shard dealing: record i belongs to core (i / chunk) % cores.
    std::size_t dealt = 0;
    for (unsigned core = 0; core < cores; ++core) {
        StreamingTraceSource shard;
        CHECK(shard.openShard(input.path(), cores, core, chunk,
                              bufRecords).ok);
        std::size_t mine = 0;
        Access got;
        for (std::size_t i = 0; i < resident.size(); ++i) {
            if ((i / chunk) % cores != core)
                continue;
            CHECK(shard.next(got));
            checkSameAccess(resident[i], got);
            ++mine;
        }
        CHECK(!shard.next(got));
        CHECK_EQ(shard.shardSize(), mine);
        CHECK_EQ(shard.audit(), std::string{});
        dealt += mine;
    }
    CHECK_EQ(dealt, resident.size());
    return 0;
}
