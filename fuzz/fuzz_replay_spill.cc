/**
 * @file
 * Fuzz harness for the DOMIMAGE spill loader (loadReplayImage /
 * spillReplayImage / readImageKey, src/trace/replay_spill.cc).
 *
 * The input bytes are presented to loadReplayImage as a candidate
 * spill file.  Oracles on accepted inputs:
 *
 *   - the published image passes its structural audit (the loader
 *     promises never to yield a partial image);
 *   - readImageKey agrees with the key loadReplayImage returned;
 *   - respill fixed point: spilling the loaded image with the same
 *     key and loading it back must produce a byte-identical file
 *     and an image that audits equal to the first
 *     (ReplayImage::auditAgainst);
 *   - the file length matches the section geometry (header +
 *     section table + key + three fixed-width arrays).
 *
 * Rejected inputs must report an error message.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "trace/replay_spill.h"

#include "fuzz_util.h"

using namespace domino;
using namespace domino::fuzz;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    ScratchFile input("spill-in", data, size);

    ReplayImage image;
    std::string key;
    const IoResult load1 =
        loadReplayImage(input.path(), image, &key);
    if (!load1.ok) {
        CHECK(!load1.error.empty());
        return 0;
    }

    // Accepted: the image must be structurally sound, and the cheap
    // key probe must agree with the full load.
    CHECK_EQ(image.audit(), std::string{});
    std::string probed;
    CHECK(readImageKey(input.path(), probed).ok);
    CHECK_EQ(probed, key);

    // Respill fixed point: the accepted file was produced by the
    // canonical writer (checksummed sections leave no slack bytes),
    // so respilling the loaded image must be byte-identical.
    ScratchFile respill("spill-out");
    CHECK(spillReplayImage(respill.path(), image, key).ok);
    CHECK(readFileBytes(respill.path()) ==
          readFileBytes(input.path()));

    ReplayImage reloaded;
    std::string key2;
    CHECK(loadReplayImage(respill.path(), reloaded, &key2).ok);
    CHECK_EQ(key2, key);
    CHECK_EQ(reloaded.auditAgainst(image), std::string{});
    return 0;
}
