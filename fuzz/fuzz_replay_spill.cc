/**
 * @file
 * Fuzz harness for the DOMIMAGE spill loader (loadReplayImage /
 * spillReplayImage / readImageKey, src/trace/replay_spill.cc).
 *
 * The input bytes are presented to loadReplayImage as a candidate
 * spill file.  Oracles on accepted inputs:
 *
 *   - the published image passes its structural audit (the loader
 *     promises never to yield a partial image);
 *   - readImageKey agrees with the key loadReplayImage returned;
 *   - respill fixed point: spilling the loaded image with the same
 *     key and loading it back must produce an image that audits
 *     equal to the first (ReplayImage::auditAgainst); when the
 *     input already carried the current version (v2), the respilled
 *     file must additionally be byte-identical (a v1 input upgrades
 *     to the aligned v2 layout, so only image equality holds);
 *   - the mapped loader (MappedReplayImage) accepts every respilled
 *     v2 file and agrees with the buffered load byte-for-byte;
 *   - the file length matches the section geometry (header +
 *     section table + key + three fixed-width arrays).
 *
 * Rejected inputs must report an error message.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "trace/replay_spill.h"

#include "fuzz_util.h"

using namespace domino;
using namespace domino::fuzz;

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    ScratchFile input("spill-in", data, size);

    ReplayImage image;
    std::string key;
    const IoResult load1 =
        loadReplayImage(input.path(), image, &key);
    if (!load1.ok) {
        CHECK(!load1.error.empty());
        return 0;
    }

    // Accepted: the image must be structurally sound, and the cheap
    // key probe must agree with the full load.
    CHECK_EQ(image.audit(), std::string{});
    std::string probed;
    CHECK(readImageKey(input.path(), probed).ok);
    CHECK_EQ(probed, key);

    // Respill fixed point: the writer emits the current version, so
    // a current-version input (byte 8 holds the little-endian
    // version's low byte; 2 for v2) respills byte-identically --
    // the checksummed sections and zero padding leave no slack.  A
    // v1 input upgrades to the aligned layout, so only the image
    // contract holds for it.
    ScratchFile respill("spill-out");
    CHECK(spillReplayImage(respill.path(), image, key).ok);
    if (size > 11 && data[8] == 2 && data[9] == 0 &&
        data[10] == 0 && data[11] == 0) {
        CHECK(readFileBytes(respill.path()) ==
              readFileBytes(input.path()));
    }

    ReplayImage reloaded;
    std::string key2;
    CHECK(loadReplayImage(respill.path(), reloaded, &key2).ok);
    CHECK_EQ(key2, key);
    CHECK_EQ(reloaded.auditAgainst(image), std::string{});

    // The respilled file is canonical v2, so the mapped loader must
    // accept it and agree with the buffered load byte-for-byte.
    MappedReplayImage mapped;
    CHECK(mapped.open(respill.path()).ok);
    CHECK_EQ(mapped.key(), key);
    CHECK_EQ(mapped.auditAgainst(reloaded), std::string{});
    return 0;
}
