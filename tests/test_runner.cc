/**
 * @file
 * Tests for the experiment runner: grid indexing, positional seed
 * derivation, and the determinism contract -- the aggregated stats
 * of a sweep must be byte-identical for --jobs 1 and --jobs 8.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/table_format.h"
#include "runner/experiment_grid.h"
#include "trace/trace_cache.h"
#include "workloads/server_workload.h"
#include "workloads/workload_params.h"

namespace domino
{
namespace
{

using runner::Cell;
using runner::deriveCellSeed;
using runner::ExperimentGrid;
using runner::GridShape;

// --- indexing and seeding ------------------------------------------

TEST(ExperimentGrid, FlatIndexRoundTripsRowMajor)
{
    const ExperimentGrid grid({3, 4, 2}, 99);
    EXPECT_EQ(grid.size(), 24u);
    std::size_t flat = 0;
    for (std::size_t w = 0; w < 3; ++w) {
        for (std::size_t c = 0; c < 4; ++c) {
            for (std::size_t r = 0; r < 2; ++r, ++flat) {
                const Cell cell = grid.cell(flat);
                EXPECT_EQ(cell.workload, w);
                EXPECT_EQ(cell.config, c);
                EXPECT_EQ(cell.rep, r);
                EXPECT_EQ(cell.flat, flat);
            }
        }
    }
}

TEST(ExperimentGrid, RepZeroSeedIsTheBaseSeed)
{
    // Serial-harness compatibility: single-rep grids must see the
    // exact seed the figure harnesses have always used.
    const ExperimentGrid grid({5, 3, 1}, 1234);
    for (std::size_t flat = 0; flat < grid.size(); ++flat)
        EXPECT_EQ(grid.cell(flat).seed, 1234u);
}

TEST(ExperimentGrid, HigherRepSeedsAreDistinctAndStable)
{
    std::set<std::uint64_t> seeds;
    for (std::size_t w = 0; w < 8; ++w) {
        for (std::size_t r = 1; r < 8; ++r) {
            const std::uint64_t s = deriveCellSeed(7, w, r);
            EXPECT_EQ(s, deriveCellSeed(7, w, r));
            EXPECT_NE(s, 7u);
            seeds.insert(s);
        }
    }
    EXPECT_EQ(seeds.size(), 8u * 7u);
    // The config axis never participates: all techniques in one
    // figure row must observe the identical workload trace.
    EXPECT_NE(deriveCellSeed(7, 0, 1), deriveCellSeed(8, 0, 1));
}

// --- parallel execution --------------------------------------------

/** Per-cell PRNG chain with cell-dependent length: execution-order
 *  bugs show up as different draws, load imbalance stresses the
 *  result-reassembly ordering. */
std::uint64_t
chainedDraw(const Cell &cell)
{
    Prng rng(cell.seed ^ (cell.flat * 0x9e3779b97f4a7c15ULL));
    std::uint64_t x = 0;
    const std::size_t steps = 100 + (cell.flat % 7) * 500;
    for (std::size_t i = 0; i < steps; ++i)
        x ^= rng.next();
    return x;
}

TEST(ExperimentGrid, ResultsIdenticalForAnyJobCount)
{
    const ExperimentGrid grid({6, 5, 3}, 42);
    const auto serial = grid.run(1, chainedDraw);
    const auto two = grid.run(2, chainedDraw);
    const auto eight = grid.run(8, chainedDraw);
    EXPECT_EQ(serial, two);
    EXPECT_EQ(serial, eight);
}

TEST(ExperimentGrid, CellExceptionPropagatesFromRun)
{
    const ExperimentGrid grid({2, 3, 1}, 1);
    const auto boom = [](const Cell &cell) -> int {
        if (cell.flat == 4)
            throw std::runtime_error("cell 4 failed");
        return static_cast<int>(cell.flat);
    };
    EXPECT_THROW(grid.run(1, boom), std::runtime_error);
    EXPECT_THROW(grid.run(4, boom), std::runtime_error);
}

TEST(ExperimentGrid, ProgressMeterSeesEveryCell)
{
    const ExperimentGrid grid({4, 4, 1}, 1);
    ProgressMeter progress(grid.size(), /*enabled=*/false);
    grid.run(3, [](const Cell &c) { return c.flat; }, &progress);
    EXPECT_EQ(progress.completed(), grid.size());
    EXPECT_GE(progress.elapsedSeconds(), 0.0);
}

// --- the figure-harness determinism contract -----------------------

/**
 * A miniature figure harness: (workload x technique) coverage grid
 * over real generators and prefetchers, aggregated exactly the way
 * the bench binaries do (per-cell rows plus RunningStat averages),
 * rendered to CSV.
 */
std::string
coverageSweepCsv(unsigned jobs)
{
    std::vector<WorkloadParams> workloads;
    for (const auto &p : serverSuite()) {
        if (workloads.size() < 3)
            workloads.push_back(p);
    }
    const std::vector<std::string> techniques = {"STMS", "Domino"};
    const std::uint64_t accesses = 30'000;

    const ExperimentGrid grid(
        {workloads.size(), techniques.size(), 1}, 1);
    const auto cells = grid.run(jobs, [&](const Cell &cell) {
        FactoryConfig f;
        f.seed = cell.seed ^ 0xfac;
        auto pf = makePrefetcher(techniques[cell.config], f);
        ServerWorkload src(workloads[cell.workload], cell.seed,
                           accesses);
        CoverageSimulator sim;
        const CoverageResult r = sim.run(src, pf.get());
        return std::pair<double, double>(r.coverage(),
                                         r.overpredictionRate());
    });

    TextTable table({"Workload", "Prefetcher", "Coverage",
                     "Overpredictions"});
    std::vector<RunningStat> avg(techniques.size());
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t t = 0; t < techniques.size(); ++t) {
            const auto &r = cells[w * techniques.size() + t];
            table.newRow();
            table.cell(workloads[w].name);
            table.cell(techniques[t]);
            table.cellPct(r.first);
            table.cellPct(r.second);
            avg[t].add(r.first);
        }
    }
    for (std::size_t t = 0; t < techniques.size(); ++t) {
        table.newRow();
        table.cell("Average");
        table.cell(techniques[t]);
        table.cellPct(avg[t].mean());
        table.cell("");
    }

    std::ostringstream os;
    table.printCsv(os);
    return os.str();
}

TEST(RunnerDeterminism, AggregatedStatsByteIdenticalAcrossJobs)
{
    const std::string serial = coverageSweepCsv(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, coverageSweepCsv(8));
    // And stable across repeated parallel runs.
    EXPECT_EQ(serial, coverageSweepCsv(8));
}

/**
 * The same sweep through a shared TraceCache, as the bench binaries
 * run it: cells race on the cache under the worker pool, each
 * replays a zero-copy TraceView of the single generated buffer.
 */
std::string
cachedSweepCsv(unsigned jobs, TraceCache &cache)
{
    std::vector<WorkloadParams> workloads;
    for (const auto &p : serverSuite()) {
        if (workloads.size() < 3)
            workloads.push_back(p);
    }
    const std::vector<std::string> techniques = {"STMS", "Domino"};
    const std::uint64_t accesses = 30'000;

    const ExperimentGrid grid(
        {workloads.size(), techniques.size(), 1}, 1);
    const auto cells = grid.run(jobs, [&](const Cell &cell) {
        const WorkloadParams &wl = workloads[cell.workload];
        FactoryConfig f;
        f.seed = cell.seed ^ 0xfac;
        auto pf = makePrefetcher(techniques[cell.config], f);
        TraceView src = cache.view(
            wl.cacheKey(cell.seed, accesses),
            [&] { return generateTrace(wl, cell.seed, accesses); });
        CoverageSimulator sim;
        const CoverageResult r = sim.run(src, pf.get());
        return std::pair<double, double>(r.coverage(),
                                         r.overpredictionRate());
    });

    TextTable table({"Workload", "Prefetcher", "Coverage",
                     "Overpredictions"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t t = 0; t < techniques.size(); ++t) {
            const auto &r = cells[w * techniques.size() + t];
            table.newRow();
            table.cell(workloads[w].name);
            table.cell(techniques[t]);
            table.cellPct(r.first);
            table.cellPct(r.second);
        }
    }
    std::ostringstream os;
    table.printCsv(os);
    return os.str();
}

TEST(RunnerDeterminism, TraceCacheSweepByteIdenticalAcrossJobs)
{
    // Fresh generation under --jobs 1 vs. races under --jobs 8 vs.
    // pure cache replay: all three must agree byte-for-byte, and
    // the fresh-workload sweep above must agree too (the cached
    // trace is the same access stream).
    TraceCache cold;
    const std::string serial = cachedSweepCsv(1, cold);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(cold.generations(), 3u);  // one per workload

    TraceCache racy;
    EXPECT_EQ(serial, cachedSweepCsv(8, racy));
    EXPECT_EQ(racy.generations(), 3u);

    // Replay from the warm cache (all hits, no generation).
    const std::uint64_t gens = racy.generations();
    EXPECT_EQ(serial, cachedSweepCsv(8, racy));
    EXPECT_EQ(racy.generations(), gens);
}

// --- JSON emission (the --json bench output path) ------------------

TEST(TableJson, RowsBecomeObjectsKeyedByHeader)
{
    TextTable table({"Workload", "Coverage"});
    table.newRow();
    table.cell(std::string("OLTP"));
    table.cellPct(0.123);
    table.newRow();
    table.cell(std::string("Web \"quoted\""));
    table.cellPct(0.5);

    std::ostringstream os;
    table.printJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("[\n"), std::string::npos);
    EXPECT_NE(json.find("{\"Workload\": \"OLTP\", "
                        "\"Coverage\": \"12.3%\"},"),
              std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("]\n"), std::string::npos);
}

} // anonymous namespace
} // namespace domino
