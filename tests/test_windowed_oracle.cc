/**
 * @file
 * Tests for the windowed streaming opportunity oracle
 * (src/sequitur/windowed_oracle.*): exact equivalence to the
 * whole-trace analyzeOpportunity() when the window covers the trace,
 * determinism of windowed results across jobs/processes (pure
 * function of sequence + options), cross-window digest recall, LRU
 * bounds, and the analyzer's structural audit.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/coverage.h"
#include "sequitur/opportunity.h"
#include "sequitur/windowed_oracle.h"
#include "workloads/server_workload.h"

namespace domino
{
namespace
{

/** The baseline miss sequence of a small workload trace (the input
 *  the real harnesses feed the oracle). */
std::vector<LineAddr>
testMisses(std::uint64_t seed, std::uint64_t accesses)
{
    WorkloadParams wl;
    findWorkload("OLTP", wl);
    TraceBuffer trace = generateTrace(wl, seed, accesses);
    return baselineMissSequence(trace);
}

void
expectEqualResults(const OpportunityResult &a,
                   const OpportunityResult &b)
{
    EXPECT_EQ(a.totalMisses, b.totalMisses);
    EXPECT_EQ(a.coveredMisses, b.coveredMisses);
    EXPECT_EQ(a.streamCount, b.streamCount);
    ASSERT_EQ(a.streamLengths.buckets(),
              b.streamLengths.buckets());
    for (std::size_t i = 0; i < a.streamLengths.buckets(); ++i)
        EXPECT_EQ(a.streamLengths.count(i),
                  b.streamLengths.count(i));
}

TEST(WindowedOracle, DefaultWindowEqualsWholeTraceOracle)
{
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
        const auto misses = testMisses(seed, 6000);
        const OpportunityResult whole = analyzeOpportunity(misses);
        // window = 0 (whole trace): field-for-field equal -- the
        // guarantee that keeps figure 1/2/12 outputs byte-identical
        // at default flags.
        const OpportunityResult windowed =
            analyzeOpportunityWindowed(misses, {});
        expectEqualResults(whole, windowed);
    }
}

TEST(WindowedOracle, WindowLargerThanTraceEqualsWholeTrace)
{
    const auto misses = testMisses(3, 6000);
    const OpportunityResult whole = analyzeOpportunity(misses);
    OracleWindowOptions opt;
    opt.window = misses.size() + 1;
    expectEqualResults(whole,
                       analyzeOpportunityWindowed(misses, opt));
    opt.window = misses.size();
    // A window exactly the trace length closes once with every miss
    // inside it: still the whole-trace walk.
    expectEqualResults(whole,
                       analyzeOpportunityWindowed(misses, opt));
}

TEST(WindowedOracle, WindowedResultsAreDeterministic)
{
    // The analysis is a pure function of (sequence, options): two
    // independent analyzers over the same input must agree exactly
    // -- the property that makes windowed sweep results stable
    // across --jobs and across processes.
    for (std::uint64_t seed : {2ULL, 9ULL, 31ULL}) {
        const auto misses = testMisses(seed, 8000);
        OracleWindowOptions opt;
        opt.window = 512;
        const OpportunityResult a =
            analyzeOpportunityWindowed(misses, opt);
        const OpportunityResult b =
            analyzeOpportunityWindowed(misses, opt);
        expectEqualResults(a, b);
        EXPECT_EQ(a.totalMisses, misses.size());
        EXPECT_LE(a.coveredMisses, a.totalMisses);
    }
}

TEST(WindowedOracle, CrossWindowRepetitionIsRecalled)
{
    // A sequence whose second half repeats its first half, split so
    // the repetition straddles the window boundary: the digest LRU
    // must recognise the repeated content even though each window
    // builds an independent grammar.
    std::vector<LineAddr> misses;
    for (int rep = 0; rep < 2; ++rep)
        for (LineAddr a = 1; a <= 64; ++a)
            misses.push_back(a);
    OracleWindowOptions opt;
    opt.window = 64; // window 1 = first pass, window 2 = repeat
    const OpportunityResult r =
        analyzeOpportunityWindowed(misses, opt);
    EXPECT_EQ(r.totalMisses, misses.size());
    // The second window's content is a verbatim repeat of the
    // first: a substantial fraction must be covered via the digest
    // memory (the exact count depends on the grammar's rule
    // shapes, so pin a floor, not an exact value).
    EXPECT_GT(r.coveredMisses, 32u);
    EXPECT_GT(r.streamCount, 0u);
}

TEST(WindowedOracle, WithoutDigestMemoryCrossWindowRepeatIsLost)
{
    // Control for the test above: windows [A A] [B B] [A A] with a
    // capacity-1 LRU.  The B window's digests evict every A digest,
    // so when A returns the third window covers only its internal
    // repeat (the second A, via the grammar) and loses the
    // cross-window credit a default-capacity LRU grants.
    std::vector<LineAddr> misses;
    auto appendTwice = [&misses](LineAddr base) {
        for (int rep = 0; rep < 2; ++rep)
            for (LineAddr a = base; a < base + 32; ++a)
                misses.push_back(a);
    };
    appendTwice(1);    // window 1: A A
    appendTwice(101);  // window 2: B B
    appendTwice(1);    // window 3: A A again
    OracleWindowOptions big;
    big.window = 64;
    OracleWindowOptions tiny;
    tiny.window = 64;
    tiny.digestCapacity = 1;
    const OpportunityResult with =
        analyzeOpportunityWindowed(misses, big);
    const OpportunityResult without =
        analyzeOpportunityWindowed(misses, tiny);
    EXPECT_LT(without.coveredMisses, with.coveredMisses);
}

TEST(WindowedOracle, StreamingPushMatchesResidentConvenience)
{
    const auto misses = testMisses(5, 5000);
    OracleWindowOptions opt;
    opt.window = 300;
    WindowedOpportunityAnalyzer analyzer(opt);
    for (const LineAddr m : misses) {
        analyzer.push(m);
        ASSERT_EQ(analyzer.audit(), "");
    }
    EXPECT_EQ(analyzer.pushed(), misses.size());
    const OpportunityResult streamed = analyzer.finish();
    expectEqualResults(streamed,
                       analyzeOpportunityWindowed(misses, opt));
}

TEST(WindowedOracle, EmptySequence)
{
    WindowedOpportunityAnalyzer analyzer;
    EXPECT_EQ(analyzer.audit(), "");
    const OpportunityResult r = analyzer.finish();
    EXPECT_EQ(r.totalMisses, 0u);
    EXPECT_EQ(r.coveredMisses, 0u);
    EXPECT_EQ(r.streamCount, 0u);
}

TEST(WindowedOracle, SeededSweepPinsWindowedValues)
{
    // A seeded sweep over (seed, window) with pinned aggregate
    // equalities: totalMisses always equals the input length,
    // coverage never exceeds 1, and shrinking the window never
    // crashes or breaks the audit.  Values must match across runs
    // byte-for-byte (determinism), which the repeated-evaluation
    // loop checks without committing environment-sensitive goldens.
    for (std::uint64_t seed : {1ULL, 4ULL}) {
        const auto misses = testMisses(seed, 4000);
        for (std::uint64_t window : {64ULL, 777ULL, 2048ULL}) {
            OracleWindowOptions opt;
            opt.window = window;
            const OpportunityResult first =
                analyzeOpportunityWindowed(misses, opt);
            const OpportunityResult second =
                analyzeOpportunityWindowed(misses, opt);
            expectEqualResults(first, second);
            EXPECT_EQ(first.totalMisses, misses.size());
            EXPECT_LE(first.coverage(), 1.0);
        }
    }
}

} // namespace
} // namespace domino
