/**
 * @file
 * Unit tests for the runner thread pool: submission-order results,
 * exception propagation, drain-on-destruction, and actual
 * concurrency.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runner/thread_pool.h"

namespace domino::runner
{
namespace
{

TEST(ThreadPool, ResultsArriveThroughFuturesInSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SingleWorkerExecutesFifo)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::mutex mtx;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.submit([i, &order, &mtx]() {
            std::lock_guard<std::mutex> lock(mtx);
            order.push_back(i);
        }));
    }
    for (auto &f : futures)
        f.get();
    ASSERT_EQ(order.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ExceptionsPropagateThroughTheFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([]() { return 7; });
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("cell exploded");
    });
    EXPECT_EQ(ok.get(), 7);
    try {
        bad.get();
        FAIL() << "expected the task's exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "cell exploded");
    }
    // The pool stays usable after a task threw.
    EXPECT_EQ(pool.submit([]() { return 42; }).get(), 42);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> completed{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            pool.submit([&completed]() {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                completed.fetch_add(1);
            });
        }
        // Destruction must wait for all 64, not abandon the queue.
    }
    EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, TasksRunConcurrently)
{
    // Two tasks each wait (bounded) until both have started; they
    // can only both finish with `true` if two workers run them in
    // overlapping time.
    ThreadPool pool(2);
    std::atomic<int> started{0};
    auto rendezvous = [&started]() {
        started.fetch_add(1);
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (started.load() < 2) {
            if (std::chrono::steady_clock::now() > deadline)
                return false;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        return true;
    };
    auto a = pool.submit(rendezvous);
    auto b = pool.submit(rendezvous);
    EXPECT_TRUE(a.get());
    EXPECT_TRUE(b.get());
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
    EXPECT_EQ(pool.submit([]() { return 3; }).get(), 3);
}

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

} // anonymous namespace
} // namespace domino::runner
