/**
 * @file
 * Unit tests for the spatio-temporal stacking wrapper (Figure 16):
 * trigger routing, stream-id tagging, and the orthogonality
 * property.
 */

#include <gtest/gtest.h>

#include <memory>

#include "analysis/factory.h"
#include "prefetch/stacked.h"
#include "test_util.h"

namespace domino
{
namespace
{

using test::MiniSim;
using test::RecordingSink;

/** A probe prefetcher that records what it sees and issues a fixed
 *  response. */
class ProbePrefetcher : public Prefetcher
{
  public:
    explicit ProbePrefetcher(LineAddr respond_with)
        : respond(respond_with)
    {}

    std::string name() const override { return "Probe"; }

    void
    onTrigger(const TriggerEvent &event, PrefetchSink &sink) override
    {
        seen.push_back(event);
        sink.issue(respond, 5, 0);
    }

    std::vector<TriggerEvent> seen;
    LineAddr respond;
};

TEST(Stacked, MissesRoutedToBoth)
{
    auto a = std::make_unique<ProbePrefetcher>(1000);
    auto b = std::make_unique<ProbePrefetcher>(2000);
    ProbePrefetcher *pa = a.get(), *pb = b.get();
    StackedPrefetcher stack(std::move(a), std::move(b));

    RecordingSink sink;
    TriggerEvent e;
    e.line = 42;
    stack.onTrigger(e, sink);
    EXPECT_EQ(pa->seen.size(), 1u);
    EXPECT_EQ(pb->seen.size(), 1u);
    // Issues are id-tagged: primary even, secondary odd.
    ASSERT_EQ(sink.issues.size(), 2u);
    EXPECT_EQ(sink.issues[0].streamId & 1, 0u);
    EXPECT_EQ(sink.issues[1].streamId & 1, 1u);
}

TEST(Stacked, HitsRoutedToOwnerOnly)
{
    auto a = std::make_unique<ProbePrefetcher>(1000);
    auto b = std::make_unique<ProbePrefetcher>(2000);
    ProbePrefetcher *pa = a.get(), *pb = b.get();
    StackedPrefetcher stack(std::move(a), std::move(b));

    RecordingSink sink;
    TriggerEvent hit;
    hit.line = 1000;
    hit.wasPrefetchHit = true;
    hit.hitStreamId = (5 << 1) | 0;  // primary's stream 5
    stack.onTrigger(hit, sink);
    ASSERT_EQ(pa->seen.size(), 1u);
    EXPECT_EQ(pb->seen.size(), 0u);
    EXPECT_TRUE(pa->seen[0].wasPrefetchHit);
    EXPECT_EQ(pa->seen[0].hitStreamId, 5u);  // unmapped id

    hit.hitStreamId = (9 << 1) | 1;  // secondary's stream 9
    stack.onTrigger(hit, sink);
    EXPECT_EQ(pa->seen.size(), 1u);
    ASSERT_EQ(pb->seen.size(), 1u);
    EXPECT_EQ(pb->seen[0].hitStreamId, 9u);
}

TEST(Stacked, NameAndMetadataCombine)
{
    FactoryConfig f;
    auto stack = makePrefetcher("VLDP+Domino", f);
    ASSERT_NE(stack, nullptr);
    EXPECT_EQ(stack->name(), "VLDP+Domino");

    RecordingSink sink;
    for (LineAddr l = 0; l < 50; ++l) {
        TriggerEvent e;
        e.line = l * 97;
        stack->onTrigger(e, sink);
    }
    // Domino's EIT lookups must show through the combined counters.
    EXPECT_GT(stack->metadata().readBlocks, 0u);
}

TEST(Stacked, CoversBothMissClasses)
{
    // Spatial +1 runs on fresh pages (VLDP territory) interleaved
    // with a recurring temporal chain across pages (Domino
    // territory): the stack must cover both; each alone covers
    // mostly its own class.
    const auto build = [](const std::string &name) {
        FactoryConfig f;
        f.degree = 4;
        f.samplingProb = 1.0;
        return makePrefetcher(name, f);
    };
    const auto run = [](Prefetcher &pf) {
        MiniSim sim(pf);
        // Temporal chain: fixed pseudo-random lines, far apart.
        std::vector<LineAddr> chain;
        for (int k = 0; k < 8; ++k)
            chain.push_back(1'000'000 + k * 5000 + 13);
        std::uint64_t page = 10;
        for (int r = 0; r < 120; ++r) {
            sim.run(chain);
            for (std::uint32_t off = 2; off < 8; ++off)
                sim.demand((page << 6) + off);
            ++page;  // fresh page each round
        }
        return sim.coverage();
    };
    auto vldp = build("VLDP");
    auto domino = build("Domino");
    auto stack = build("VLDP+Domino");
    const double cov_vldp = run(*vldp);
    const double cov_domino = run(*domino);
    const double cov_stack = run(*stack);
    EXPECT_GT(cov_stack, cov_vldp + 0.1);
    EXPECT_GT(cov_stack, cov_domino + 0.1);
}

} // anonymous namespace
} // namespace domino
