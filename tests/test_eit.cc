/**
 * @file
 * Unit tests for the Enhanced Index Table: super-entry/entry
 * allocation, LRU order at both levels, pointer updates, row
 * capacity pressure, and lazy row accounting -- all through the
 * packed-SoA lookup view.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "common/prng.h"
#include "domino/eit.h"

namespace domino
{
namespace
{

using SuperView = EnhancedIndexTable::SuperView;

EitConfig
smallConfig()
{
    EitConfig cfg;
    cfg.rows = 64;
    cfg.supersPerRow = 2;
    cfg.entriesPerSuper = 3;
    return cfg;
}

/** First entry index of @p s whose successor is @p next, else
 *  s.size() -- the view-level equivalent of LruSet::find. */
std::size_t
findNext(const SuperView &s, LineAddr next)
{
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s.next(i) == next)
            return i;
    }
    return s.size();
}

TEST(Eit, LookupMissOnEmpty)
{
    EnhancedIndexTable eit(smallConfig());
    EXPECT_FALSE(eit.lookup(42));
    EXPECT_EQ(eit.touchedRows(), 0u);
}

TEST(Eit, UpdateThenLookup)
{
    EnhancedIndexTable eit(smallConfig());
    eit.update(10, 11, 100);
    const SuperView s = eit.lookup(10);
    ASSERT_TRUE(s);
    EXPECT_EQ(s.tag(), 10u);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.next(0), 11u);
    EXPECT_EQ(s.pos(0), 100u);
}

TEST(Eit, EntryPointerUpdatedInPlace)
{
    EnhancedIndexTable eit(smallConfig());
    eit.update(10, 11, 100);
    eit.update(10, 11, 200);  // same successor, newer position
    const SuperView s = eit.lookup(10);
    ASSERT_TRUE(s);
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s.pos(0), 200u);
}

TEST(Eit, EntriesKeptInRecencyOrder)
{
    EnhancedIndexTable eit(smallConfig());
    eit.update(10, 11, 1);
    eit.update(10, 12, 2);
    eit.update(10, 13, 3);
    SuperView s = eit.lookup(10);
    ASSERT_TRUE(s);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s.next(0), 13u);  // MRU
    EXPECT_EQ(s.next(2), 11u);  // LRU

    // Re-touching an old successor promotes it.
    eit.update(10, 11, 4);
    s = eit.lookup(10);
    EXPECT_EQ(s.next(0), 11u);
}

TEST(Eit, EntryLruEvictionAtCapacity)
{
    EnhancedIndexTable eit(smallConfig());  // 3 entries/super
    eit.update(10, 11, 1);
    eit.update(10, 12, 2);
    eit.update(10, 13, 3);
    eit.update(10, 14, 4);  // evicts 11
    const SuperView s = eit.lookup(10);
    ASSERT_TRUE(s);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(findNext(s, 11), s.size());
    EXPECT_EQ(s.next(0), 14u);
}

TEST(Eit, SuperEntryLruWithinRow)
{
    // Force three tags into the same row of a 2-super-per-row EIT.
    EitConfig cfg = smallConfig();
    cfg.rows = 1;  // everything collides
    EnhancedIndexTable eit(cfg);
    eit.update(1, 100, 1);
    eit.update(2, 200, 2);
    ASSERT_TRUE(eit.lookup(1));
    ASSERT_TRUE(eit.lookup(2));
    // Touch tag 1 so tag 2 becomes LRU, then insert tag 3.
    eit.update(1, 101, 3);
    eit.update(3, 300, 4);
    EXPECT_TRUE(eit.lookup(1));
    EXPECT_FALSE(eit.lookup(2));  // evicted
    EXPECT_TRUE(eit.lookup(3));
    EXPECT_EQ(eit.superEvictions(), 1u);
}

TEST(Eit, DistinctTagsDistinctSuperEntries)
{
    EnhancedIndexTable eit(smallConfig());
    eit.update(10, 11, 1);
    eit.update(20, 21, 2);
    const SuperView a = eit.lookup(10);
    const SuperView b = eit.lookup(20);
    ASSERT_TRUE(a);
    ASSERT_TRUE(b);
    EXPECT_EQ(a.next(0), 11u);
    EXPECT_EQ(b.next(0), 21u);
}

TEST(Eit, TouchedRowsGrowLazily)
{
    EitConfig cfg;
    cfg.rows = 1 << 20;
    EnhancedIndexTable eit(cfg);
    for (LineAddr t = 0; t < 100; ++t)
        eit.update(t, t + 1, t);
    EXPECT_LE(eit.touchedRows(), 100u);
    EXPECT_GT(eit.touchedRows(), 50u);  // few collisions expected
}

TEST(Eit, ManyRowsNoCrosstalk)
{
    EitConfig cfg;
    cfg.rows = 1 << 16;
    EnhancedIndexTable eit(cfg);
    for (LineAddr t = 0; t < 5000; ++t)
        eit.update(t, t * 2 + 1, t);
    for (LineAddr t = 0; t < 5000; ++t) {
        const SuperView s = eit.lookup(t);
        // With 64 K rows and 2+ supers per row, evictions are rare;
        // verify content where present.
        if (s)
            EXPECT_LT(findNext(s, t * 2 + 1), s.size())
                << "tag " << t;
    }
}

TEST(Eit, PrefetchRowIsPureHint)
{
    EnhancedIndexTable eit(smallConfig());
    eit.prefetchRow(10);  // cold row: no allocation, no effect
    EXPECT_EQ(eit.touchedRows(), 0u);
    eit.update(10, 11, 1);
    eit.prefetchRow(10);  // warm row: still no observable effect
    const SuperView s = eit.lookup(10);
    ASSERT_TRUE(s);
    EXPECT_EQ(s.next(0), 11u);
    EXPECT_EQ(eit.touchedRows(), 1u);
    EXPECT_EQ(eit.audit(), "");
}

TEST(Eit, InvalidTagNeverMatchesAnEmptySlot)
{
    // invalidAddr is the empty-slot sentinel of the packed tag
    // lane; looking it up must miss, not alias a free way.
    EnhancedIndexTable eit(smallConfig());
    eit.update(10, 11, 1);
    EXPECT_FALSE(eit.lookup(invalidAddr));
}

/**
 * Reference model: per-tag LRU successor list with the same
 * capacity rules, ignoring row-level super-entry eviction (checked
 * by forcing a huge row count so rows never overflow).
 */
class EitReferenceModel
{
  public:
    explicit EitReferenceModel(unsigned entries_per_super)
        : cap(entries_per_super)
    {}

    void
    update(LineAddr tag, LineAddr next, std::uint64_t pos)
    {
        auto &lst = model[tag];
        for (auto it = lst.begin(); it != lst.end(); ++it) {
            if (it->first == next) {
                lst.erase(it);
                break;
            }
        }
        lst.emplace_front(next, pos);
        if (lst.size() > cap)
            lst.pop_back();
    }

    const std::deque<std::pair<LineAddr, std::uint64_t>> *
    lookup(LineAddr tag) const
    {
        const auto it = model.find(tag);
        return it == model.end() ? nullptr : &it->second;
    }

  private:
    unsigned cap;
    std::map<LineAddr,
             std::deque<std::pair<LineAddr, std::uint64_t>>> model;
};

class EitPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(EitPropertyTest, MatchesReferenceModel)
{
    Prng rng(static_cast<std::uint64_t>(GetParam()) ^ 0xe17);
    EitConfig cfg;
    cfg.rows = 1 << 16;  // effectively no row pressure
    cfg.supersPerRow = 8;
    cfg.entriesPerSuper = 1 + GetParam() % 4;
    EnhancedIndexTable eit(cfg);
    EitReferenceModel ref(cfg.entriesPerSuper);

    const std::uint64_t tags = 64;
    for (int op = 0; op < 20000; ++op) {
        const LineAddr tag = rng.below(tags);
        const LineAddr next = rng.below(16);
        eit.update(tag, next, op);
        ref.update(tag, next, op);
    }
    for (LineAddr tag = 0; tag < tags; ++tag) {
        const SuperView got = eit.lookup(tag);
        const auto *want = ref.lookup(tag);
        if (!want) {
            EXPECT_FALSE(got) << "tag " << tag;
            continue;
        }
        ASSERT_TRUE(got) << "tag " << tag;
        ASSERT_EQ(got.size(), want->size()) << "tag " << tag;
        for (std::size_t i = 0; i < want->size(); ++i) {
            EXPECT_EQ(got.next(i), (*want)[i].first)
                << "tag " << tag << " slot " << i;
            EXPECT_EQ(got.pos(i), (*want)[i].second)
                << "tag " << tag << " slot " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EitPropertyTest,
                         ::testing::Range(0, 8));

} // anonymous namespace
} // namespace domino
