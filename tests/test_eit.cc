/**
 * @file
 * Unit tests for the Enhanced Index Table: super-entry/entry
 * allocation, LRU order at both levels, pointer updates, row
 * capacity pressure, and lazy row accounting.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "common/prng.h"
#include "domino/eit.h"

namespace domino
{
namespace
{

EitConfig
smallConfig()
{
    EitConfig cfg;
    cfg.rows = 64;
    cfg.supersPerRow = 2;
    cfg.entriesPerSuper = 3;
    return cfg;
}

TEST(Eit, LookupMissOnEmpty)
{
    EnhancedIndexTable eit(smallConfig());
    EXPECT_EQ(eit.lookup(42), nullptr);
    EXPECT_EQ(eit.touchedRows(), 0u);
}

TEST(Eit, UpdateThenLookup)
{
    EnhancedIndexTable eit(smallConfig());
    eit.update(10, 11, 100);
    const SuperEntry *s = eit.lookup(10);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->tag, 10u);
    ASSERT_EQ(s->entries.size(), 1u);
    EXPECT_EQ(s->entries.at(0).next, 11u);
    EXPECT_EQ(s->entries.at(0).pos, 100u);
}

TEST(Eit, EntryPointerUpdatedInPlace)
{
    EnhancedIndexTable eit(smallConfig());
    eit.update(10, 11, 100);
    eit.update(10, 11, 200);  // same successor, newer position
    const SuperEntry *s = eit.lookup(10);
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->entries.size(), 1u);
    EXPECT_EQ(s->entries.at(0).pos, 200u);
}

TEST(Eit, EntriesKeptInRecencyOrder)
{
    EnhancedIndexTable eit(smallConfig());
    eit.update(10, 11, 1);
    eit.update(10, 12, 2);
    eit.update(10, 13, 3);
    const SuperEntry *s = eit.lookup(10);
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->entries.size(), 3u);
    EXPECT_EQ(s->entries.at(0).next, 13u);  // MRU
    EXPECT_EQ(s->entries.at(2).next, 11u);  // LRU

    // Re-touching an old successor promotes it.
    eit.update(10, 11, 4);
    s = eit.lookup(10);
    EXPECT_EQ(s->entries.at(0).next, 11u);
}

TEST(Eit, EntryLruEvictionAtCapacity)
{
    EnhancedIndexTable eit(smallConfig());  // 3 entries/super
    eit.update(10, 11, 1);
    eit.update(10, 12, 2);
    eit.update(10, 13, 3);
    eit.update(10, 14, 4);  // evicts 11
    const SuperEntry *s = eit.lookup(10);
    ASSERT_EQ(s->entries.size(), 3u);
    EXPECT_EQ(s->entries.find([](const EitEntry &e) {
        return e.next == 11;
    }), s->entries.size());
    EXPECT_EQ(s->entries.at(0).next, 14u);
}

TEST(Eit, SuperEntryLruWithinRow)
{
    // Force three tags into the same row of a 2-super-per-row EIT.
    EitConfig cfg = smallConfig();
    cfg.rows = 1;  // everything collides
    EnhancedIndexTable eit(cfg);
    eit.update(1, 100, 1);
    eit.update(2, 200, 2);
    ASSERT_NE(eit.lookup(1), nullptr);
    ASSERT_NE(eit.lookup(2), nullptr);
    // Touch tag 1 so tag 2 becomes LRU, then insert tag 3.
    eit.update(1, 101, 3);
    eit.update(3, 300, 4);
    EXPECT_NE(eit.lookup(1), nullptr);
    EXPECT_EQ(eit.lookup(2), nullptr);  // evicted
    EXPECT_NE(eit.lookup(3), nullptr);
    EXPECT_EQ(eit.superEvictions(), 1u);
}

TEST(Eit, DistinctTagsDistinctSuperEntries)
{
    EnhancedIndexTable eit(smallConfig());
    eit.update(10, 11, 1);
    eit.update(20, 21, 2);
    const SuperEntry *a = eit.lookup(10);
    const SuperEntry *b = eit.lookup(20);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->entries.at(0).next, 11u);
    EXPECT_EQ(b->entries.at(0).next, 21u);
}

TEST(Eit, TouchedRowsGrowLazily)
{
    EitConfig cfg;
    cfg.rows = 1 << 20;
    EnhancedIndexTable eit(cfg);
    for (LineAddr t = 0; t < 100; ++t)
        eit.update(t, t + 1, t);
    EXPECT_LE(eit.touchedRows(), 100u);
    EXPECT_GT(eit.touchedRows(), 50u);  // few collisions expected
}

TEST(Eit, ManyRowsNoCrosstalk)
{
    EitConfig cfg;
    cfg.rows = 1 << 16;
    EnhancedIndexTable eit(cfg);
    for (LineAddr t = 0; t < 5000; ++t)
        eit.update(t, t * 2 + 1, t);
    for (LineAddr t = 0; t < 5000; ++t) {
        const SuperEntry *s = eit.lookup(t);
        // With 64 K rows and 2+ supers per row, evictions are rare;
        // verify content where present.
        if (s) {
            const std::size_t i = s->entries.find(
                [&](const EitEntry &e) { return e.next == t * 2 + 1; });
            EXPECT_LT(i, s->entries.size()) << "tag " << t;
        }
    }
}

/**
 * Reference model: per-tag LRU successor list with the same
 * capacity rules, ignoring row-level super-entry eviction (checked
 * by forcing a huge row count so rows never overflow).
 */
class EitReferenceModel
{
  public:
    explicit EitReferenceModel(unsigned entries_per_super)
        : cap(entries_per_super)
    {}

    void
    update(LineAddr tag, LineAddr next, std::uint64_t pos)
    {
        auto &lst = model[tag];
        for (auto it = lst.begin(); it != lst.end(); ++it) {
            if (it->first == next) {
                lst.erase(it);
                break;
            }
        }
        lst.emplace_front(next, pos);
        if (lst.size() > cap)
            lst.pop_back();
    }

    const std::deque<std::pair<LineAddr, std::uint64_t>> *
    lookup(LineAddr tag) const
    {
        const auto it = model.find(tag);
        return it == model.end() ? nullptr : &it->second;
    }

  private:
    unsigned cap;
    std::map<LineAddr,
             std::deque<std::pair<LineAddr, std::uint64_t>>> model;
};

class EitPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(EitPropertyTest, MatchesReferenceModel)
{
    Prng rng(static_cast<std::uint64_t>(GetParam()) ^ 0xe17);
    EitConfig cfg;
    cfg.rows = 1 << 16;  // effectively no row pressure
    cfg.supersPerRow = 8;
    cfg.entriesPerSuper = 1 + GetParam() % 4;
    EnhancedIndexTable eit(cfg);
    EitReferenceModel ref(cfg.entriesPerSuper);

    const std::uint64_t tags = 64;
    for (int op = 0; op < 20000; ++op) {
        const LineAddr tag = rng.below(tags);
        const LineAddr next = rng.below(16);
        eit.update(tag, next, op);
        ref.update(tag, next, op);
    }
    for (LineAddr tag = 0; tag < tags; ++tag) {
        const SuperEntry *got = eit.lookup(tag);
        const auto *want = ref.lookup(tag);
        if (!want) {
            EXPECT_EQ(got, nullptr) << "tag " << tag;
            continue;
        }
        ASSERT_NE(got, nullptr) << "tag " << tag;
        ASSERT_EQ(got->entries.size(), want->size())
            << "tag " << tag;
        for (std::size_t i = 0; i < want->size(); ++i) {
            EXPECT_EQ(got->entries.at(i).next, (*want)[i].first)
                << "tag " << tag << " slot " << i;
            EXPECT_EQ(got->entries.at(i).pos, (*want)[i].second)
                << "tag " << tag << " slot " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EitPropertyTest,
                         ::testing::Range(0, 8));

} // anonymous namespace
} // namespace domino
