/**
 * @file
 * Unit tests for the CHECK/DCHECK macro family (common/check.h):
 * passing checks are silent, failing CHECKs abort with the
 * condition and both operand values in the message, and DCHECK
 * follows the build mode (on in Debug/DOMINO_CHECKS, compiled out
 * -- operands unevaluated -- otherwise).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/check.h"

namespace domino
{
namespace
{

TEST(Check, PassingChecksAreSilent)
{
    CHECK(true);
    CHECK_EQ(1, 1);
    CHECK_NE(1, 2);
    CHECK_LT(1, 2);
    CHECK_LE(2, 2);
    CHECK_GT(3, 2);
    CHECK_GE(3, 3);
    DCHECK(true);
    DCHECK_EQ(std::uint64_t{5}, 5u);
}

TEST(CheckDeathTest, CheckAbortsWithCondition)
{
    EXPECT_DEATH(CHECK(1 + 1 == 3), "CHECK failed: 1 \\+ 1 == 3");
}

TEST(CheckDeathTest, ComparisonPrintsBothValues)
{
    const int lhs = 7;
    const int rhs = 9;
    EXPECT_DEATH(CHECK_EQ(lhs, rhs), "lhs == rhs.*7 vs 9");
    EXPECT_DEATH(CHECK_GE(lhs, rhs), "lhs >= rhs.*7 vs 9");
}

TEST(CheckDeathTest, MessageNamesTheSourceFile)
{
    EXPECT_DEATH(CHECK(false), "test_check.cc");
}

TEST(Check, OperandsEvaluatedExactlyOnceOnSuccess)
{
    int evaluations = 0;
    const auto bump = [&evaluations]() { return ++evaluations; };
    CHECK_GE(bump(), 1);
    EXPECT_EQ(evaluations, 1);
}

TEST(Check, DcheckFollowsBuildMode)
{
    int evaluations = 0;
    const auto bump = [&evaluations]() {
        ++evaluations;
        return true;
    };
    DCHECK(bump());
    if constexpr (checksEnabled) {
        EXPECT_EQ(evaluations, 1);
    } else {
        // Compiled out: the operand must not be evaluated.
        EXPECT_EQ(evaluations, 0);
    }
}

TEST(CheckDeathTest, DcheckAbortsWhenChecksEnabled)
{
    if constexpr (checksEnabled) {
        EXPECT_DEATH(DCHECK_LT(2, 1), "CHECK failed: 2 < 1");
    } else {
        DCHECK_LT(2, 1);  // no-op in this build mode
        SUCCEED();
    }
}

} // anonymous namespace
} // namespace domino
