/**
 * @file
 * Unit tests for the Domino prefetcher: the one-round-trip first
 * prefetch, two-address confirmation (by miss and by hit), noise
 * immunity through multi-entry super-entries, stream slots, and
 * the naive-design ablation knob.
 */

#include <gtest/gtest.h>

#include "domino/domino_prefetcher.h"
#include "prefetch/stms.h"
#include "test_util.h"

namespace domino
{
namespace
{

using test::MiniSim;
using test::RecordingSink;

DominoConfig
alwaysSampleConfig(unsigned degree = 1)
{
    DominoConfig cfg;
    cfg.degree = degree;
    cfg.samplingProb = 1.0;
    return cfg;
}

void
train(Prefetcher &pf, RecordingSink &sink,
      const std::vector<LineAddr> &seq)
{
    for (const LineAddr l : seq) {
        TriggerEvent e;
        e.line = l;
        pf.onTrigger(e, sink);
    }
}

TEST(Domino, FirstPrefetchAfterOneTrip)
{
    DominoPrefetcher pf(alwaysSampleConfig(4));
    RecordingSink sink;
    train(pf, sink, {10, 11, 12, 13});
    sink.issues.clear();
    TriggerEvent e;
    e.line = 10;
    pf.onTrigger(e, sink);
    // Embryo: exactly one prefetch (the MRU successor), ONE trip.
    ASSERT_EQ(sink.issues.size(), 1u);
    EXPECT_EQ(sink.issues[0].line, 11u);
    EXPECT_EQ(sink.issues[0].metadataTrips, 1u);
    EXPECT_EQ(pf.counters().embryosCreated, 1u);
}

TEST(Domino, ConfirmByMissActivatesStream)
{
    DominoPrefetcher pf(alwaysSampleConfig(2));
    RecordingSink sink;
    // Two streams share head 100; train both.
    train(pf, sink, {100, 1, 2, 3, 99});
    train(pf, sink, {100, 51, 52, 53, 98});
    sink.issues.clear();
    // Replay the A stream: miss 100 (embryo prefetches MRU = 51,
    // wrong), then miss 1 -> the (100, 1) entry must confirm and
    // replay 2, 3.
    TriggerEvent e;
    e.line = 100;
    pf.onTrigger(e, sink);
    ASSERT_EQ(sink.issues.size(), 1u);
    EXPECT_EQ(sink.issues[0].line, 51u);  // MRU pick is the B stream

    e.line = 1;
    pf.onTrigger(e, sink);
    ASSERT_GE(sink.issues.size(), 3u);
    EXPECT_EQ(sink.issues[1].line, 2u);
    EXPECT_EQ(sink.issues[2].line, 3u);
    EXPECT_EQ(sink.issues[1].metadataTrips, 1u);
    EXPECT_EQ(pf.counters().confirmedByMiss, 1u);
}

TEST(Domino, ConfirmByHitActivatesStream)
{
    DominoConfig cfg = alwaysSampleConfig(2);
    DominoPrefetcher pf(cfg);
    MiniSim sim(pf);
    const std::vector<LineAddr> stream = {10, 11, 12, 13, 14};
    sim.run(stream);
    sim.run(stream);
    // Third replay: embryo at 10 prefetches 11; the hit of 11
    // confirms and bursts; tail covered.
    const std::uint64_t covered_before = sim.covered();
    sim.run(stream);
    EXPECT_GE(sim.covered() - covered_before, 3u);
    EXPECT_GE(pf.counters().confirmedByHit, 1u);
}

TEST(Domino, NoisyMruFilteredByOlderEntry)
{
    // The key EIT property: an isolated noise occurrence of a
    // stream head corrupts the MRU entry, but the older (real)
    // entry still confirms the right stream at the next miss.
    DominoPrefetcher pf(alwaysSampleConfig(2));
    RecordingSink sink;
    train(pf, sink, {10, 11, 12, 13, 99});
    // Noise: 10 followed by an unrelated line.
    train(pf, sink, {200, 10, 777, 201});
    sink.issues.clear();

    TriggerEvent e;
    e.line = 10;
    pf.onTrigger(e, sink);
    ASSERT_EQ(sink.issues.size(), 1u);
    EXPECT_EQ(sink.issues[0].line, 777u);  // corrupted MRU

    e.line = 11;
    pf.onTrigger(e, sink);  // pair (10, 11): older entry confirms
    ASSERT_GE(sink.issues.size(), 2u);
    EXPECT_EQ(sink.issues[1].line, 12u);
    EXPECT_EQ(pf.counters().confirmedByMiss, 1u);
}

TEST(Domino, PairMissDiscardsButKeepsDormantEmbryo)
{
    DominoPrefetcher pf(alwaysSampleConfig(1));
    RecordingSink sink;
    train(pf, sink, {10, 11, 12, 13});
    sink.issues.clear();
    TriggerEvent e;
    e.line = 10;
    pf.onTrigger(e, sink);  // embryo, prefetch 11
    e.line = 500;           // unrelated miss: pair (10,500) unknown
    pf.onTrigger(e, sink);
    EXPECT_EQ(pf.counters().pairMisses, 1u);
    // The dormant embryo's prefetch (11) can still confirm by hit.
    TriggerEvent hit;
    hit.line = 11;
    hit.wasPrefetchHit = true;
    hit.hitStreamId = sink.issues[0].streamId;
    sink.issues.clear();
    pf.onTrigger(hit, sink);
    ASSERT_FALSE(sink.issues.empty());
    EXPECT_EQ(sink.issues[0].line, 12u);
    EXPECT_EQ(pf.counters().confirmedByHit, 1u);
}

TEST(Domino, StaleEmbryoNotConfirmedByLaterMiss)
{
    // The two-address lookup only pairs *consecutive* triggers: a
    // miss two steps later must not confirm the old embryo.
    DominoPrefetcher pf(alwaysSampleConfig(1));
    RecordingSink sink;
    train(pf, sink, {10, 11, 12, 13});
    sink.issues.clear();
    TriggerEvent e;
    e.line = 10;
    pf.onTrigger(e, sink);  // embryo (10)
    e.line = 500;
    pf.onTrigger(e, sink);  // intervening miss
    const auto confirmed_before = pf.counters().confirmedByMiss;
    e.line = 11;            // would match the stale embryo
    pf.onTrigger(e, sink);
    EXPECT_EQ(pf.counters().confirmedByMiss, confirmed_before);
}

TEST(Domino, TracksMultipleStreams)
{
    // Interleaved replays of two streams: both must be covered
    // concurrently (four stream slots).
    DominoPrefetcher pf(alwaysSampleConfig(2));
    MiniSim sim(pf);
    const std::vector<LineAddr> a = {1, 2, 3, 4, 5, 6};
    const std::vector<LineAddr> b = {51, 52, 53, 54, 55, 56};
    for (int r = 0; r < 3; ++r) {
        sim.run(a);
        sim.run(b);
    }
    // Interleave fine-grained.
    const std::uint64_t covered_before = sim.covered();
    for (std::size_t k = 0; k < a.size(); ++k) {
        sim.demand(a[k]);
        sim.demand(b[k]);
    }
    EXPECT_GE(sim.covered() - covered_before, 6u);
}

TEST(Domino, NaiveTripsKnob)
{
    DominoConfig cfg = alwaysSampleConfig(1);
    cfg.firstPrefetchTrips = 2;
    DominoPrefetcher pf(cfg);
    RecordingSink sink;
    train(pf, sink, {10, 11, 12});
    sink.issues.clear();
    TriggerEvent e;
    e.line = 10;
    pf.onTrigger(e, sink);
    ASSERT_EQ(sink.issues.size(), 1u);
    EXPECT_EQ(sink.issues[0].metadataTrips, 2u);
}

TEST(Domino, CoverageAtLeastStmsOnAmbiguousMix)
{
    // The headline property on an ambiguity-heavy synthetic mix:
    // Domino's coverage must be at least STMS's.
    const auto run_mix = [](Prefetcher &pf) {
        MiniSim sim(pf);
        Prng rng(13);
        std::vector<std::vector<LineAddr>> streams;
        for (int s = 0; s < 12; ++s) {
            std::vector<LineAddr> st = {9000};  // shared head
            for (int k = 0; k < 6; ++k)
                st.push_back(100 * (s + 1) + k);
            streams.push_back(st);
        }
        for (int r = 0; r < 300; ++r) {
            sim.run(streams[rng.below(streams.size())]);
            if (rng.chance(0.3)) {
                // isolated noise revisit
                const auto &st = streams[rng.below(streams.size())];
                sim.demand(st[rng.below(st.size())]);
            }
        }
        return sim.coverage();
    };
    TemporalConfig base;
    base.degree = 4;
    base.samplingProb = 1.0;
    StmsPrefetcher stms(base);
    DominoConfig dcfg;
    static_cast<TemporalConfig &>(dcfg) = base;
    DominoPrefetcher dom(dcfg);
    EXPECT_GE(run_mix(dom) + 0.01, run_mix(stms));
}

TEST(Domino, MetadataReadPerMiss)
{
    DominoPrefetcher pf(alwaysSampleConfig(1));
    RecordingSink sink;
    const auto reads_before = pf.metadata().readBlocks;
    TriggerEvent e;
    e.line = 42;
    pf.onTrigger(e, sink);
    // One EIT row fetch even when nothing is found, plus the
    // sampled update machinery (no previous trigger yet -> none).
    EXPECT_EQ(pf.metadata().readBlocks, reads_before + 1);
}

} // anonymous namespace
} // namespace domino
