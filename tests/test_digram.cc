/**
 * @file
 * Unit tests for the Digram baseline: pair-indexed lookup, the
 * inability to prefetch the first two misses of a stream, and the
 * disambiguation property that motivates two-address lookup.
 */

#include <gtest/gtest.h>

#include "prefetch/digram.h"
#include "prefetch/stms.h"
#include "test_util.h"

namespace domino
{
namespace
{

using test::MiniSim;
using test::RecordingSink;

TemporalConfig
alwaysSampleConfig(unsigned degree = 1)
{
    TemporalConfig cfg;
    cfg.degree = degree;
    cfg.samplingProb = 1.0;
    return cfg;
}

TEST(Digram, NeedsTwoTriggersToMatch)
{
    DigramPrefetcher pf(alwaysSampleConfig(2));
    RecordingSink sink;
    for (LineAddr l : {10, 11, 12, 13}) {
        TriggerEvent e;
        e.line = l;
        pf.onTrigger(e, sink);
    }
    // A single trigger of 10 cannot match (pair index); the pair
    // (10, 11) can.
    sink.issues.clear();
    TriggerEvent e;
    e.line = 10;
    pf.onTrigger(e, sink);
    EXPECT_TRUE(sink.issues.empty());
    e.line = 11;
    pf.onTrigger(e, sink);
    ASSERT_EQ(sink.issues.size(), 2u);
    EXPECT_EQ(sink.issues[0].line, 12u);
    EXPECT_EQ(sink.issues[1].line, 13u);
}

TEST(Digram, CannotCoverFirstTwoMisses)
{
    DigramPrefetcher pf(alwaysSampleConfig(4));
    MiniSim sim(pf);
    // Train ONCE, fenced by unique separators so no cross-replay
    // pair can predict the stream head.
    LineAddr sep = 100000;
    const std::vector<LineAddr> stream = {1, 2, 3, 4, 5, 6};
    sim.run(stream);
    for (int i = 0; i < 4; ++i)
        sim.demand(sep++);
    // Replay: elements 3..6 coverable via the (1, 2) pair; the two
    // leading misses never are.
    const std::uint64_t covered_before = sim.covered();
    const std::uint64_t uncovered_before = sim.uncovered();
    sim.run(stream);
    EXPECT_GE(sim.covered() - covered_before, 3u);
    // Exactly the two leading misses stay uncovered.
    EXPECT_GE(sim.uncovered() - uncovered_before, 2u);
}

TEST(Digram, PairDisambiguatesSharedHead)
{
    // Streams [X, A1, A2, A3] and [X, B1, B2, B3] share their head.
    // After training both, the pair (X, A1) must replay the A
    // stream, and (X, B1) the B stream -- the property single-
    // address lookup lacks.
    DigramPrefetcher pf(alwaysSampleConfig(2));
    RecordingSink sink;
    const std::vector<LineAddr> a = {100, 1, 2, 3};
    const std::vector<LineAddr> b = {100, 51, 52, 53};
    LineAddr sep = 100000;
    for (const auto &st : {a, b, a, b}) {
        for (const LineAddr l : st) {
            TriggerEvent e;
            e.line = l;
            pf.onTrigger(e, sink);
        }
        // Unique separator so tail-to-head pairs never repeat.
        TriggerEvent s2;
        s2.line = sep++;
        pf.onTrigger(s2, sink);
    }

    sink.issues.clear();
    TriggerEvent e;
    e.line = 100;
    pf.onTrigger(e, sink);
    e.line = 1;
    pf.onTrigger(e, sink);
    ASSERT_FALSE(sink.issues.empty());
    EXPECT_EQ(sink.issues[0].line, 2u);

    sink.issues.clear();
    e.line = 100;
    pf.onTrigger(e, sink);
    e.line = 51;
    pf.onTrigger(e, sink);
    ASSERT_FALSE(sink.issues.empty());
    EXPECT_EQ(sink.issues[0].line, 52u);
}

TEST(Digram, FewerOverpredictionsThanStms)
{
    // On an ambiguous-head mix, Digram must be more conservative
    // (fewer issues that never hit) than STMS.
    const auto run_mix = [](Prefetcher &pf) {
        MiniSim sim(pf);
        Prng rng(7);
        std::vector<std::vector<LineAddr>> streams;
        for (int s = 0; s < 8; ++s) {
            std::vector<LineAddr> st = {5000};  // shared head
            for (int k = 0; k < 5; ++k)
                st.push_back(100 * (s + 1) + k);
            streams.push_back(st);
        }
        for (int r = 0; r < 200; ++r)
            sim.run(streams[rng.below(streams.size())]);
        return sim.issuedCount() - sim.covered();
    };
    TemporalConfig cfg = alwaysSampleConfig(4);
    StmsPrefetcher stms(cfg);
    DigramPrefetcher digram(cfg);
    const std::uint64_t stms_wasted = run_mix(stms);
    const std::uint64_t digram_wasted = run_mix(digram);
    EXPECT_LT(digram_wasted, stms_wasted);
}

TEST(Digram, StartCostsTwoTrips)
{
    DigramPrefetcher pf(alwaysSampleConfig(1));
    RecordingSink sink;
    for (LineAddr l : {10, 11, 12, 13}) {
        TriggerEvent e;
        e.line = l;
        pf.onTrigger(e, sink);
    }
    sink.issues.clear();
    TriggerEvent e;
    e.line = 10;
    pf.onTrigger(e, sink);
    e.line = 11;
    pf.onTrigger(e, sink);
    ASSERT_FALSE(sink.issues.empty());
    EXPECT_EQ(sink.issues[0].metadataTrips, 2u);
}

} // anonymous namespace
} // namespace domino
