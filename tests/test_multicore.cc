/**
 * @file
 * Tests for the multi-core substrate: the bandwidth/queueing
 * account, per-core seed derivation, shared vs private HT/EIT
 * scope, run-to-run and cross-`--jobs` determinism, and the
 * acceptance property that charged off-chip metadata traffic
 * shifts speedup against the zero-cost-metadata control.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/factory.h"
#include "analysis/multicore_report.h"
#include "multicore/multicore_sim.h"
#include "runner/experiment_grid.h"
#include "trace/trace_interleaver.h"
#include "workloads/server_workload.h"

namespace domino
{

/** Test-only backdoor for corrupting BandwidthModel counters. */
struct BandwidthTestPeer
{
    static void
    addKindBytes(BandwidthModel &model, ChannelKind kind,
                 std::uint64_t bytes)
    {
        model.perKind[static_cast<unsigned>(kind)] += bytes;
    }

    static void
    setBusy(BandwidthModel &model, Cycles busy)
    {
        model.busy = busy;
    }
};

namespace
{

MemoryParams
tableOneMem()
{
    // Table I defaults: 180-cycle memory, 37.5 GB/s at 4 GHz
    // (9.375 bytes per cycle -> a 64-byte block occupies 7 cycles).
    return MemoryParams{};
}

TEST(BandwidthModel, UncontendedTransfer)
{
    BandwidthModel channel(tableOneMem(), 2);
    const Cycles done = channel.transfer(
        0, ChannelKind::DemandFill, blockBytes, 100);
    // ceil(64 / 9.375) = 7 cycles of occupancy + 180 latency.
    EXPECT_EQ(done, 100u + 7u + 180u);
    EXPECT_EQ(channel.busyCycles(), 7u);
    EXPECT_EQ(channel.kindBytes(ChannelKind::DemandFill),
              blockBytes);
    EXPECT_EQ(channel.coreStats(0).queueCycles, 0u);
    EXPECT_EQ(channel.coreStats(0).requests, 1u);
    EXPECT_EQ(channel.audit(), "");
}

TEST(BandwidthModel, QueueingAttributedToRequester)
{
    BandwidthModel channel(tableOneMem(), 2);
    channel.transfer(0, ChannelKind::DemandFill, blockBytes, 0);
    // Core 1 arrives while core 0's transfer occupies the channel.
    const Cycles done = channel.transfer(
        1, ChannelKind::DemandFill, blockBytes, 0);
    EXPECT_EQ(done, 7u + 7u + 180u);
    EXPECT_EQ(channel.coreStats(1).queueCycles, 7u);
    EXPECT_EQ(channel.coreStats(0).queueCycles, 0u);
    EXPECT_EQ(channel.busyCycles(), 14u);
    EXPECT_EQ(channel.audit(), "");
}

TEST(BandwidthModel, ZeroByteLatencyProbe)
{
    BandwidthModel channel(tableOneMem(), 1);
    // An idle channel: the probe pays only the round trip.
    EXPECT_EQ(channel.transfer(0, ChannelKind::MetadataRead, 0, 50),
              50u + 180u);
    EXPECT_EQ(channel.totalBytes(), 0u);
    EXPECT_EQ(channel.busyCycles(), 0u);
    // Behind a posted burst: the probe queues but still moves no
    // bytes.
    channel.post(0, ChannelKind::MetadataUpdate, 1000, 60);
    const Cycles done =
        channel.transfer(0, ChannelKind::MetadataRead, 0, 60);
    EXPECT_GT(done, 60u + 180u);
    EXPECT_EQ(channel.totalBytes(), 1000u);
    EXPECT_EQ(channel.audit(), "");
}

TEST(BandwidthModel, PostDelaysLaterTransfers)
{
    BandwidthModel channel(tableOneMem(), 1);
    const Cycles alone = channel.transfer(
        0, ChannelKind::DemandFill, blockBytes, 0);
    BandwidthModel busy(tableOneMem(), 1);
    busy.post(0, ChannelKind::MetadataUpdate, 4096, 0);
    const Cycles behind = busy.transfer(
        0, ChannelKind::DemandFill, blockBytes, 0);
    EXPECT_GT(behind, alone);
    EXPECT_EQ(busy.audit(), "");
}

TEST(BandwidthModel, MetadataLatencyOverride)
{
    MemoryParams mem = tableOneMem();
    mem.metadataTripCycles = 400;
    BandwidthModel channel(mem, 1);
    EXPECT_EQ(channel.transfer(0, ChannelKind::MetadataRead, 0, 0),
              400u);
    // Non-metadata transfers keep the data latency.
    EXPECT_EQ(channel.transfer(0, ChannelKind::DemandFill, 0, 0),
              180u);
}

TEST(BandwidthModel, AuditDetectsCorruption)
{
    BandwidthModel channel(tableOneMem(), 2);
    channel.transfer(0, ChannelKind::DemandFill, blockBytes, 0);
    EXPECT_EQ(channel.audit(), "");
    // Per-kind total no longer matches the per-core sum.
    BandwidthTestPeer::addKindBytes(channel,
                                    ChannelKind::MetadataRead, 64);
    EXPECT_NE(channel.audit(), "");
}

TEST(BandwidthModel, AuditDetectsBusyBeyondHorizon)
{
    BandwidthModel channel(tableOneMem(), 1);
    channel.transfer(0, ChannelKind::DemandFill, blockBytes, 0);
    BandwidthTestPeer::setBusy(channel, 1'000'000);
    EXPECT_NE(channel.audit(), "");
}

TEST(Factory, DeriveCoreSeedIsPositionalNotAdditive)
{
    const std::uint64_t base = 42;
    EXPECT_EQ(deriveCoreSeed(base, 0), base);
    std::vector<std::uint64_t> seeds;
    for (unsigned c = 0; c < 8; ++c)
        seeds.push_back(deriveCoreSeed(base, c));
    for (unsigned a = 0; a < 8; ++a)
        for (unsigned b = a + 1; b < 8; ++b)
            EXPECT_NE(seeds[a], seeds[b]);
    for (unsigned c = 1; c < 8; ++c)
        EXPECT_NE(seeds[c], base + c);
}

TEST(Factory, PrefetcherSetScopes)
{
    FactoryConfig f;
    PrefetcherSet priv = makePrefetcherSet("Domino", f, 4,
                                           MetadataScope::Private);
    ASSERT_EQ(priv.perCore.size(), 4u);
    EXPECT_EQ(priv.owned.size(), 4u);
    for (unsigned a = 0; a < 4; ++a) {
        ASSERT_NE(priv.perCore[a], nullptr);
        for (unsigned b = a + 1; b < 4; ++b)
            EXPECT_NE(priv.perCore[a], priv.perCore[b]);
    }

    PrefetcherSet shared = makePrefetcherSet("Domino", f, 4,
                                             MetadataScope::Shared);
    ASSERT_EQ(shared.perCore.size(), 4u);
    EXPECT_EQ(shared.owned.size(), 1u);
    for (unsigned c = 1; c < 4; ++c)
        EXPECT_EQ(shared.perCore[c], shared.perCore[0]);

    PrefetcherSet none =
        makePrefetcherSet("", f, 4, MetadataScope::Private);
    EXPECT_TRUE(none.owned.empty());
    for (Prefetcher *p : none.perCore)
        EXPECT_EQ(p, nullptr);
}

SystemConfig
scaledSystem(unsigned cores)
{
    SystemConfig sys;
    sys.cores = cores;
    sys.llcBytes = 512 * 1024;  // scaled (see bench docs)
    return sys;
}

MultiCoreResult
runMulticore(const std::string &tech, const SystemConfig &sys,
             std::uint64_t seed, std::uint64_t accesses)
{
    WorkloadParams wl;
    findWorkload("OLTP", wl);
    const TraceBuffer trace = generateTrace(wl, seed, accesses);
    const auto buf =
        std::make_shared<const TraceBuffer>(std::move(trace));
    TraceInterleaver interleaver(buf, sys.cores,
                                 sys.multicore.shardChunk);

    FactoryConfig f;
    f.degree = 4;
    f.samplingProb = 0.5;
    f.seed = seed ^ 0xfac;
    PrefetcherSet set = makePrefetcherSet(
        tech, f, sys.cores,
        sys.multicore.sharedMetadata ? MetadataScope::Shared
                                     : MetadataScope::Private);

    std::vector<ShardView> shards;
    shards.reserve(sys.cores);
    std::vector<CoreBinding> bindings;
    for (unsigned c = 0; c < sys.cores; ++c) {
        shards.push_back(interleaver.shard(c));
        CoreBinding binding;
        binding.source = &shards.back();
        binding.prefetcher = set.perCore[c];
        binding.mlpFactor = wl.mlpFactor;
        binding.instPerAccess = wl.instPerAccess;
        bindings.push_back(binding);
    }
    MultiCoreSim sim(sys);
    return sim.run(bindings);
}

/** Full equality of every observable counter of two runs. */
void
expectIdentical(const MultiCoreResult &a, const MultiCoreResult &b)
{
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t c = 0; c < a.cores.size(); ++c) {
        EXPECT_EQ(a.cores[c].accesses, b.cores[c].accesses);
        EXPECT_EQ(a.cores[c].instructions, b.cores[c].instructions);
        EXPECT_EQ(a.cores[c].cycles, b.cores[c].cycles);
        EXPECT_EQ(a.cores[c].covered, b.cores[c].covered);
        EXPECT_EQ(a.cores[c].uncovered, b.cores[c].uncovered);
        EXPECT_EQ(a.cores[c].lateCovered, b.cores[c].lateCovered);
        EXPECT_EQ(a.cores[c].queueCycles, b.cores[c].queueCycles);
        EXPECT_EQ(a.cores[c].channelBytes, b.cores[c].channelBytes);
    }
    EXPECT_EQ(a.traffic.totalBytes(), b.traffic.totalBytes());
    EXPECT_EQ(a.traffic.metadataReadBytes,
              b.traffic.metadataReadBytes);
    EXPECT_EQ(a.traffic.metadataUpdateBytes,
              b.traffic.metadataUpdateBytes);
    EXPECT_EQ(a.channelBusyCycles, b.channelBusyCycles);
}

TEST(MultiCoreSim, BaselineProducesSaneIpc)
{
    const MultiCoreResult r =
        runMulticore("", scaledSystem(4), 1, 40000);
    ASSERT_EQ(r.cores.size(), 4u);
    std::uint64_t accesses = 0;
    for (const auto &c : r.cores) {
        EXPECT_GT(c.instructions, 0u);
        EXPECT_GT(c.ipc(), 0.01);
        EXPECT_LT(c.ipc(), 4.0);
        accesses += c.accesses;
    }
    EXPECT_EQ(accesses, 40000u);  // shards partition the trace
    EXPECT_GT(r.traffic.demandBytes, 0u);
    EXPECT_EQ(r.traffic.metadataReadBytes, 0u);
    EXPECT_GT(r.systemIpc(), 0.0);
}

TEST(MultiCoreSim, RunTwiceIsIdentical)
{
    for (std::uint64_t seed : {1u, 7u}) {
        const MultiCoreResult a =
            runMulticore("Domino", scaledSystem(4), seed, 30000);
        const MultiCoreResult b =
            runMulticore("Domino", scaledSystem(4), seed, 30000);
        expectIdentical(a, b);
    }
}

TEST(MultiCoreSim, GridResultsIdenticalAcrossJobs)
{
    // The bench-harness shape: a (1 workload x 4 config) grid of
    // 4-core runs, evaluated at --jobs 1 and --jobs 8, must be
    // byte-identical -- for base seeds 1 and 7.
    const std::vector<std::string> techs = {"", "ISB", "STMS",
                                            "Domino"};
    for (std::uint64_t seed : {1u, 7u}) {
        runner::ExperimentGrid grid({1, techs.size(), 1}, seed);
        const auto evaluate = [&](const runner::Cell &cell) {
            return runMulticore(techs[cell.config],
                                scaledSystem(4), cell.seed, 20000);
        };
        const auto serial = grid.run(1, evaluate);
        const auto parallel = grid.run(8, evaluate);
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectIdentical(serial[i], parallel[i]);
    }
}

TEST(MultiCoreSim, DominoReportsOffChipMetadataTraffic)
{
    const MultiCoreResult r =
        runMulticore("Domino", scaledSystem(4), 1, 40000);
    EXPECT_GT(r.traffic.metadataReadBytes, 0u);
    EXPECT_GT(r.traffic.metadataUpdateBytes, 0u);
    EXPECT_GT(r.metadataShare(), 0.0);
}

TEST(MultiCoreSim, ChargedMetadataShiftsSpeedup)
{
    // The zero-cost-metadata control moves the same metadata bytes
    // but pays no bandwidth for them; charging them must slow the
    // chip down (per-core slowdown, not just a byte counter).
    SystemConfig charged = scaledSystem(4);
    SystemConfig free = scaledSystem(4);
    free.multicore.chargeMetadata = false;
    const MultiCoreResult with =
        runMulticore("Domino", charged, 1, 40000);
    const MultiCoreResult without =
        runMulticore("Domino", free, 1, 40000);
    EXPECT_GT(with.traffic.metadataReadBytes, 0u);
    EXPECT_GT(without.traffic.metadataReadBytes, 0u);
    EXPECT_LT(with.systemIpc(), without.systemIpc());
    // The control still queues nothing for metadata, so its queue
    // account is smaller.
    EXPECT_LT(without.totalQueueCycles(), with.totalQueueCycles());
}

TEST(MultiCoreSim, SharedScopeRunsAndDiffersFromPrivate)
{
    SystemConfig priv = scaledSystem(4);
    SystemConfig shared = scaledSystem(4);
    shared.multicore.sharedMetadata = true;
    const MultiCoreResult a =
        runMulticore("Domino", priv, 1, 40000);
    const MultiCoreResult b =
        runMulticore("Domino", shared, 1, 40000);
    // One shared table set sees the union of the cores' trigger
    // streams; private tables see one shard each.  The metadata
    // byte streams cannot coincide.
    EXPECT_NE(a.traffic.metadataReadBytes +
                  a.traffic.metadataUpdateBytes,
              b.traffic.metadataReadBytes +
                  b.traffic.metadataUpdateBytes);
}

TEST(MultiCoreSim, SummaryAggregatesConsistently)
{
    const SystemConfig sys = scaledSystem(4);
    const MultiCoreResult r = runMulticore("Domino", sys, 7, 30000);
    const MulticoreSummary s =
        summarizeMulticore(r, sys.mem.coreGhz);
    ASSERT_EQ(s.cores.size(), 4u);
    for (const auto &row : s.cores) {
        EXPECT_GE(row.ipc, 0.0);
        EXPECT_GE(row.coverage, 0.0);
        EXPECT_LE(row.coverage, 1.0);
    }
    EXPECT_NEAR(s.systemIpc, r.systemIpc(), 1e-12);
    EXPECT_GE(s.metadataShare, 0.0);
    EXPECT_LE(s.metadataShare, 1.0);
    EXPECT_GT(s.bandwidthGBs, 0.0);
    EXPECT_GE(s.imbalance(), 1.0);
    EXPECT_FALSE(formatMulticoreSummary(s).empty());
}

TEST(MultiCoreSim, OneCoreMatchesTraceOrder)
{
    // cores=1 must consume the whole trace on core 0.
    const MultiCoreResult r =
        runMulticore("", scaledSystem(1), 1, 25000);
    ASSERT_EQ(r.cores.size(), 1u);
    EXPECT_EQ(r.cores[0].accesses, 25000u);
}

} // anonymous namespace
} // namespace domino
