/**
 * @file
 * Unit tests for src/common: types, PRNG, stats, LRU, histogram,
 * table formatting, CLI parsing.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "common/cli.h"
#include "common/histogram.h"
#include "common/lru.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/table_format.h"
#include "common/types.h"

namespace domino
{
namespace
{

// --- types ---------------------------------------------------------

TEST(Types, LineConversionRoundTrips)
{
    EXPECT_EQ(lineOf(0), 0u);
    EXPECT_EQ(lineOf(63), 0u);
    EXPECT_EQ(lineOf(64), 1u);
    EXPECT_EQ(byteOf(lineOf(0x12345678)), 0x12345678ULL & ~63ULL);
}

TEST(Types, PageHelpers)
{
    const LineAddr line = (5 << 6) | 3;  // page 5, offset 3
    EXPECT_EQ(pageOfLine(line), 5u);
    EXPECT_EQ(pageOffsetOfLine(line), 3u);
    EXPECT_EQ(blocksPerPage, 64u);
}

TEST(Types, Mix64Avalanches)
{
    // Consecutive inputs must map to wildly different outputs.
    std::set<std::uint64_t> outs;
    for (std::uint64_t i = 0; i < 1000; ++i)
        outs.insert(mix64(i));
    EXPECT_EQ(outs.size(), 1000u);
}

TEST(Types, PairKeyOrderSensitive)
{
    EXPECT_NE(pairKey(1, 2), pairKey(2, 1));
    EXPECT_EQ(pairKey(7, 9), pairKey(7, 9));
}

// --- prng ----------------------------------------------------------

TEST(Prng, Deterministic)
{
    Prng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer)
{
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Prng, BelowStaysInRange)
{
    Prng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Prng, BelowCoversRange)
{
    Prng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, UniformInUnitInterval)
{
    Prng rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, GeometricMeanMatches)
{
    Prng rng(11);
    const double p = 0.25;
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean of geometric (failures) is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Prng, ChanceProbability)
{
    Prng rng(5);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.chance(0.125))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.125, 0.01);
}

TEST(ZipfSampler, SkewsTowardLowIndices)
{
    Prng rng(17);
    ZipfSampler zipf(100, 1.0);
    std::map<std::size_t, int> counts;
    for (int i = 0; i < 20000; ++i)
        ++counts[zipf.draw(rng)];
    EXPECT_GT(counts[0], counts[50]);
    EXPECT_GT(counts[0], 20000 / 100);
}

TEST(ZipfSampler, ThetaZeroIsUniform)
{
    Prng rng(19);
    ZipfSampler zipf(10, 0.0);
    std::map<std::size_t, int> counts;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.draw(rng)];
    for (const auto &[idx, c] : counts)
        EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02)
            << "index " << idx;
}

// --- stats ---------------------------------------------------------

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        s.add(x);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 2.0);
    EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(RunningStat, EmptyIsSafe)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(GeoMean, KnownValue)
{
    GeoMean g;
    g.add(1.0);
    g.add(4.0);
    EXPECT_NEAR(g.value(), 2.0, 1e-12);
}

TEST(GeoMean, EmptyIsOne)
{
    GeoMean g;
    EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(StatsHelpers, RatioAndPct)
{
    EXPECT_DOUBLE_EQ(ratio(1.0, 2.0), 0.5);
    EXPECT_DOUBLE_EQ(ratio(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(pct(1.0, 4.0), 25.0);
}

// --- lru -----------------------------------------------------------

TEST(LruSet, InsertAndEvict)
{
    LruSet<int> lru(3);
    EXPECT_FALSE(lru.insert(1));
    EXPECT_FALSE(lru.insert(2));
    EXPECT_FALSE(lru.insert(3));
    // MRU order: 3 2 1
    EXPECT_EQ(lru.at(0), 3);
    EXPECT_EQ(lru.at(2), 1);
    EXPECT_TRUE(lru.insert(4));  // evicts 1
    EXPECT_EQ(lru.size(), 3u);
    EXPECT_EQ(lru.at(0), 4);
    EXPECT_EQ(lru.find([](int x) { return x == 1; }), lru.size());
}

TEST(LruSet, TouchPromotes)
{
    LruSet<int> lru(3);
    lru.insert(1);
    lru.insert(2);
    lru.insert(3);
    const std::size_t idx = lru.find([](int x) { return x == 1; });
    ASSERT_LT(idx, lru.size());
    lru.touch(idx);
    EXPECT_EQ(lru.at(0), 1);
    lru.insert(4);  // evicts LRU, which is now 2
    EXPECT_EQ(lru.find([](int x) { return x == 2; }), lru.size());
    EXPECT_LT(lru.find([](int x) { return x == 1; }), lru.size());
}

TEST(LruSet, EraseAndClear)
{
    LruSet<int> lru(4);
    lru.insert(1);
    lru.insert(2);
    lru.erase(0);
    EXPECT_EQ(lru.size(), 1u);
    EXPECT_EQ(lru.at(0), 1);
    lru.clear();
    EXPECT_TRUE(lru.empty());
}

TEST(LruSet, ZeroCapacityRejectsInserts)
{
    LruSet<int> lru(0);
    EXPECT_FALSE(lru.insert(1));
    EXPECT_TRUE(lru.empty());
}

TEST(LruSet, ShrinkDropsLru)
{
    LruSet<int> lru(4);
    for (int i = 1; i <= 4; ++i)
        lru.insert(i);
    lru.setCapacity(2);
    EXPECT_EQ(lru.size(), 2u);
    EXPECT_EQ(lru.at(0), 4);
    EXPECT_EQ(lru.at(1), 3);
}

// --- histogram -----------------------------------------------------

TEST(EdgeHistogram, BucketAssignment)
{
    EdgeHistogram h({0, 2, 4, 8});
    h.add(0);   // bucket 0 (<= 0)
    h.add(1);   // bucket 1 (<= 2)
    h.add(2);   // bucket 1
    h.add(5);   // bucket 3 (<= 8)
    h.add(100); // overflow
    EXPECT_EQ(h.buckets(), 5u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_EQ(h.count(3), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.totalCount(), 5u);
}

TEST(EdgeHistogram, CumulativeAndMean)
{
    EdgeHistogram h({2, 4});
    h.add(1);
    h.add(3);
    h.add(9);
    EXPECT_NEAR(h.cumulative(0), 1.0 / 3, 1e-12);
    EXPECT_NEAR(h.cumulative(1), 2.0 / 3, 1e-12);
    EXPECT_NEAR(h.mean(), (1 + 3 + 9) / 3.0, 1e-12);
}

// --- table format ---------------------------------------------------

TEST(TextTable, AlignedOutputContainsCells)
{
    TextTable t({"Workload", "Coverage"});
    t.newRow();
    t.cell("OLTP");
    t.cellPct(0.56);
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("Workload"), std::string::npos);
    EXPECT_NE(s.find("OLTP"), std::string::npos);
    EXPECT_NE(s.find("56.0%"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"a", "b"});
    t.newRow();
    t.cell(std::uint64_t{1});
    t.cell(2.5, 1);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2.5\n");
}

TEST(Format, Helpers)
{
    EXPECT_EQ(formatFixed(1.2345, 2), "1.23");
    EXPECT_EQ(formatPct(0.1234, 1), "12.3%");
    EXPECT_EQ(formatBytes(64), "64.0 B");
    EXPECT_EQ(formatBytes(85ULL * 1024 * 1024), "85.0 MB");
}

// --- cli -----------------------------------------------------------

TEST(CliArgs, ParsesAllForms)
{
    const char *argv[] = {"prog", "--n", "100", "--csv",
                          "--seed=7", "pos1"};
    CliArgs args(6, const_cast<char **>(argv));
    EXPECT_EQ(args.getU64("n", 0), 100u);
    EXPECT_TRUE(args.getBool("csv"));
    EXPECT_EQ(args.getU64("seed", 0), 7u);
    EXPECT_FALSE(args.has("missing"));
    EXPECT_EQ(args.getU64("missing", 42), 42u);
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(CliArgs, DoubleAndStringValues)
{
    const char *argv[] = {"prog", "--theta=0.7", "--name", "OLTP"};
    CliArgs args(4, const_cast<char **>(argv));
    EXPECT_DOUBLE_EQ(args.getDouble("theta", 0), 0.7);
    EXPECT_EQ(args.get("name"), "OLTP");
}

} // anonymous namespace
} // namespace domino
