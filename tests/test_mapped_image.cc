/**
 * @file
 * Tests for the zero-copy mapped load path: the MappedFile RAII
 * wrapper (src/trace/mapped_file.*), the MappedReplayImage loader
 * over version-2 DOMIMAGE spills, its loaded-vs-mapped byte-equality
 * contract (auditAgainst), the v2 alignment/padding rules, legacy
 * version-1 buffered loading, and the TraceCache mmap tier
 * (docs/TRACE_FORMAT.md "Section alignment").
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/mapped_file.h"
#include "trace/replay_image.h"
#include "trace/replay_spill.h"
#include "trace/trace_cache.h"
#include "workloads/server_workload.h"

namespace domino
{
namespace
{

TraceBuffer
testTrace(std::uint64_t seed, std::uint64_t accesses)
{
    WorkloadParams wl;
    findWorkload("OLTP", wl);
    return generateTrace(wl, seed, accesses);
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    const std::streamoff bytes = is.tellg();
    is.seekg(0);
    std::vector<char> out(static_cast<std::size_t>(bytes));
    is.read(out.data(), bytes);
    return out;
}

void
spit(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
}

void
putU32(std::vector<char> &out, std::uint32_t v)
{
    char buf[4];
    std::memcpy(buf, &v, 4);
    out.insert(out.end(), buf, buf + 4);
}

void
putU64(std::vector<char> &out, std::uint64_t v)
{
    char buf[8];
    std::memcpy(buf, &v, 8);
    out.insert(out.end(), buf, buf + 8);
}

/** Serialise @p image as a *version-1* spill (contiguous sections,
 *  the legacy layout the current writer no longer emits) so the
 *  legacy-read path stays covered by a deterministic input. */
std::vector<char>
buildV1Spill(const ReplayImage &image, const std::string &key)
{
    const std::uint64_t count = image.size();
    const char *payload[4] = {
        key.data(),
        reinterpret_cast<const char *>(image.linesData()),
        reinterpret_cast<const char *>(image.pcsData()),
        reinterpret_cast<const char *>(image.rwData())};
    const std::uint64_t lengths[4] = {key.size(), 8 * count,
                                      8 * count, count};

    std::vector<char> out;
    out.insert(out.end(), {'D', 'O', 'M', 'I', 'M', 'A', 'G', 'E'});
    putU32(out, 1); // legacy version
    putU32(out, imageSectionCount);
    putU64(out, count);
    std::uint64_t offset =
        imageHeaderBytes + imageSectionCount * imageSectionEntryBytes;
    for (std::uint32_t s = 0; s < imageSectionCount; ++s) {
        putU32(out, s + 1);
        putU32(out, 0);
        putU64(out, offset);
        putU64(out, lengths[s]);
        putU64(out, fnv1a64(payload[s], lengths[s]));
        offset += lengths[s];
    }
    for (std::uint32_t s = 0; s < imageSectionCount; ++s)
        out.insert(out.end(), payload[s], payload[s] + lengths[s]);
    return out;
}

TEST(MappedFile, MissingFileFails)
{
    MappedFile file;
    const IoResult res =
        MappedFile::map("/nonexistent/dir/x.bin", file);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(file.ok());
}

TEST(MappedFile, DirectoryRejected)
{
    MappedFile file;
    EXPECT_FALSE(MappedFile::map("/tmp", file).ok);
    EXPECT_FALSE(file.ok());
}

TEST(MappedFile, EmptyFileMapsToZeroBytes)
{
    const std::string path = "/tmp/domino_test_map_empty.bin";
    spit(path, {});
    MappedFile file;
    ASSERT_TRUE(MappedFile::map(path, file).ok);
    EXPECT_TRUE(file.ok());
    EXPECT_EQ(file.size(), 0u);
    EXPECT_EQ(file.audit(), "");
    std::remove(path.c_str());
}

TEST(MappedFile, ContentsMatchTheFileAndMoveTransfers)
{
    const std::string path = "/tmp/domino_test_map_bytes.bin";
    const std::vector<char> bytes = {'d', 'o', 'm', 'i', 'n', 'o'};
    spit(path, bytes);
    MappedFile file;
    ASSERT_TRUE(MappedFile::map(path, file).ok);
    ASSERT_EQ(file.size(), bytes.size());
    EXPECT_EQ(std::memcmp(file.data(), bytes.data(), bytes.size()),
              0);
    EXPECT_EQ(file.path(), path);
    file.advise(MappedFile::Advice::Sequential);

    MappedFile moved = std::move(file);
    EXPECT_TRUE(moved.ok());
    EXPECT_FALSE(file.ok());
    EXPECT_EQ(moved.size(), bytes.size());
    EXPECT_EQ(moved.audit(), "");
    EXPECT_EQ(file.audit(), "");
    std::remove(path.c_str());
}

TEST(MappedImage, MappedEqualsLoadedAcrossSeeds)
{
    const std::string path = "/tmp/domino_test_mapped_eq.domimage";
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
        const TraceBuffer trace = testTrace(seed, 4000);
        const ReplayImage image(trace);
        ASSERT_TRUE(spillReplayImage(path, image, "key").ok);

        ReplayImage loaded;
        ASSERT_TRUE(loadReplayImage(path, loaded).ok);

        MappedReplayImage mapped;
        ASSERT_TRUE(mapped.open(path).ok);
        EXPECT_EQ(mapped.key(), "key");
        EXPECT_EQ(mapped.count(), image.size());
        EXPECT_EQ(mapped.audit(), "");
        // The loaded-vs-mapped equality contract, both directions.
        EXPECT_EQ(mapped.auditAgainst(loaded), "");
        EXPECT_EQ(mapped.auditAgainst(image), "");

        ReplayImage view;
        ASSERT_TRUE(mapped.image(view).ok);
        EXPECT_TRUE(view.mapped());
        EXPECT_EQ(view.audit(), "");
        EXPECT_EQ(view.auditAgainst(loaded), "");
        EXPECT_EQ(view.auditAgainst(trace), "");
    }
    std::remove(path.c_str());
}

TEST(MappedImage, ViewOutlivesTheLoader)
{
    const std::string path = "/tmp/domino_test_mapped_life.domimage";
    const ReplayImage image(testTrace(3, 2000));
    ASSERT_TRUE(spillReplayImage(path, image, "").ok);

    ReplayImage view;
    {
        MappedReplayImage mapped;
        ASSERT_TRUE(mapped.open(path).ok);
        ASSERT_TRUE(mapped.image(view).ok);
    } // loader destroyed; the view shares mapping ownership
    EXPECT_EQ(view.auditAgainst(image), "");

    // Copies and moves of a view stay valid and equal.
    ReplayImage copy = view;
    EXPECT_EQ(copy.auditAgainst(image), "");
    ReplayImage moved = std::move(copy);
    EXPECT_EQ(moved.auditAgainst(image), "");
    EXPECT_EQ(copy.size(), 0u);
    EXPECT_EQ(copy.audit(), "");
    std::remove(path.c_str());
}

TEST(MappedImage, SectionsAre64ByteAligned)
{
    const std::string path = "/tmp/domino_test_mapped_align.domimage";
    // An awkward key length so the gap after the key section is
    // non-trivial.
    const ReplayImage image(testTrace(11, 1500));
    ASSERT_TRUE(spillReplayImage(path, image, "odd-length-key!").ok);
    const std::vector<char> bytes = slurp(path);
    // Walk the section table: every offset must be a multiple of
    // imageSectionAlign (the v2 invariant mapped lane pointers rely
    // on).
    for (std::uint32_t s = 0; s < imageSectionCount; ++s) {
        std::uint64_t offset = 0;
        std::memcpy(&offset,
                    bytes.data() + imageHeaderBytes +
                        s * imageSectionEntryBytes + 8,
                    8);
        EXPECT_EQ(offset % imageSectionAlign, 0u)
            << "section " << s + 1;
    }
    std::remove(path.c_str());
}

TEST(MappedImage, NonZeroPaddingRejected)
{
    const std::string path = "/tmp/domino_test_mapped_pad.domimage";
    const ReplayImage image(testTrace(5, 1000));
    ASSERT_TRUE(spillReplayImage(path, image, "k").ok);
    std::vector<char> bytes = slurp(path);
    // The key section is 1 byte, so the byte right after it is
    // padding up to the next 64-byte boundary.
    std::uint64_t key_off = 0;
    std::uint64_t key_len = 0;
    std::memcpy(&key_off, bytes.data() + imageHeaderBytes + 8, 8);
    std::memcpy(&key_len, bytes.data() + imageHeaderBytes + 16, 8);
    ASSERT_NE((key_off + key_len) % imageSectionAlign, 0u);
    bytes[static_cast<std::size_t>(key_off + key_len)] = 0x5a;
    spit(path, bytes);

    ReplayImage loaded;
    const IoResult buffered = loadReplayImage(path, loaded);
    EXPECT_FALSE(buffered.ok);
    EXPECT_NE(buffered.error.find("padding"), std::string::npos);

    MappedReplayImage mapped;
    const IoResult res = mapped.open(path);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("padding"), std::string::npos);
    std::remove(path.c_str());
}

TEST(MappedImage, LaneCorruptionCaughtLazilyAtImage)
{
    const std::string path = "/tmp/domino_test_mapped_lane.domimage";
    const ReplayImage image(testTrace(9, 2000));
    ASSERT_TRUE(spillReplayImage(path, image, "k").ok);
    std::vector<char> bytes = slurp(path);
    // Flip one byte inside the lines section (id 2).
    std::uint64_t lines_off = 0;
    std::memcpy(&lines_off,
                bytes.data() + imageHeaderBytes +
                    imageSectionEntryBytes + 8,
                8);
    bytes[static_cast<std::size_t>(lines_off) + 5] ^= 0x40;
    spit(path, bytes);

    // open() validates only header/table/padding/key: it succeeds.
    MappedReplayImage mapped;
    ASSERT_TRUE(mapped.open(path).ok);
    // The lane checksum pass at image() must reject.
    ReplayImage view;
    const IoResult res = mapped.image(view);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("checksum"), std::string::npos);
    EXPECT_EQ(view.size(), 0u);
    std::remove(path.c_str());
}

TEST(MappedImage, LegacyV1LoadsBufferedButNotMapped)
{
    const std::string path = "/tmp/domino_test_mapped_v1.domimage";
    const ReplayImage image(testTrace(13, 3000));
    spit(path, buildV1Spill(image, "legacy-key"));

    // The buffered loader accepts the legacy contiguous layout...
    ReplayImage loaded;
    std::string key;
    ASSERT_TRUE(loadReplayImage(path, loaded, &key).ok);
    EXPECT_EQ(key, "legacy-key");
    EXPECT_EQ(loaded.auditAgainst(image), "");

    // ...the mapped loader rejects it with a clear error.
    MappedReplayImage mapped;
    const IoResult res = mapped.open(path);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("version-2"), std::string::npos);
    EXPECT_FALSE(mapped.ok());
    std::remove(path.c_str());
}

TEST(MappedImage, EmptyImageRoundTripsMapped)
{
    const std::string path = "/tmp/domino_test_mapped_em.domimage";
    const ReplayImage empty;
    ASSERT_TRUE(spillReplayImage(path, empty).ok);
    MappedReplayImage mapped;
    ASSERT_TRUE(mapped.open(path).ok);
    EXPECT_EQ(mapped.count(), 0u);
    ReplayImage view;
    ASSERT_TRUE(mapped.image(view).ok);
    EXPECT_EQ(view.size(), 0u);
    EXPECT_EQ(view.audit(), "");
    std::remove(path.c_str());
}

/** One disk-tier round through TraceCache::image with the mmap tier
 *  on: the first call generates and spills, a fresh cache then
 *  serves the same key from the mapping, and both images compare
 *  byte-equal to the buffered tier's. */
TEST(MappedImage, TraceCacheMmapTierServesViews)
{
    const std::string dir = "/tmp/domino_test_mmap_tier";
    const std::string key = "mmap-tier-test";
    const auto gen = [] { return testTrace(21, 2500); };

    TraceCache warm;
    warm.setSpillDir(dir);
    warm.setMmapTier(true);
    EXPECT_TRUE(warm.mmapTier());
    const auto first = warm.image(key, gen);
    ASSERT_TRUE(first);
    EXPECT_EQ(warm.spills(), 1u);
    // The generating process re-maps after spilling, so even the
    // first image is a view.
    EXPECT_EQ(warm.mmapHits(), 1u);
    EXPECT_TRUE(first->mapped());

    TraceCache buffered;
    buffered.setSpillDir(dir);
    const auto heap = buffered.image(key, gen);
    ASSERT_TRUE(heap);
    EXPECT_EQ(buffered.diskHits(), 1u);
    EXPECT_EQ(buffered.mmapHits(), 0u);
    EXPECT_FALSE(heap->mapped());

    TraceCache cold;
    cold.setSpillDir(dir);
    cold.setMmapTier(true);
    const auto view = cold.image(key, gen);
    ASSERT_TRUE(view);
    EXPECT_EQ(cold.diskHits(), 1u);
    EXPECT_EQ(cold.mmapHits(), 1u);
    EXPECT_TRUE(view->mapped());

    EXPECT_EQ(view->auditAgainst(*heap), "");
    EXPECT_EQ(first->auditAgainst(*view), "");

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

} // namespace
} // namespace domino
