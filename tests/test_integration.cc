/**
 * @file
 * Integration tests: the paper's headline orderings end-to-end on
 * the synthetic suite -- the properties every figure harness relies
 * on.  These run the real pipeline (workload -> L1 -> prefetch
 * buffer -> prefetcher) at reduced trace lengths.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "sequitur/opportunity.h"
#include "workloads/server_workload.h"

namespace domino
{
namespace
{

constexpr std::uint64_t kAccesses = 150'000;
constexpr std::uint64_t kSeed = 1;

CoverageResult
runTech(const WorkloadParams &wl, const std::string &tech,
        unsigned degree)
{
    FactoryConfig f;
    f.degree = degree;
    f.samplingProb = 0.5;
    auto pf = makePrefetcher(tech, f);
    ServerWorkload src(wl, kSeed, kAccesses);
    CoverageSimulator sim;
    return sim.run(src, pf.get());
}

/** Suite-average coverage of one technique. */
double
suiteAverage(const std::string &tech, unsigned degree)
{
    double sum = 0;
    const auto suite = serverSuite();
    for (const auto &wl : suite)
        sum += runTech(wl, tech, degree).coverage();
    return sum / static_cast<double>(suite.size());
}

TEST(Integration, OrderingDominoStmsDigramIsbVldp)
{
    // Figure 11's average ordering at degree 1.
    const double domino = suiteAverage("Domino", 1);
    const double stms = suiteAverage("STMS", 1);
    const double digram = suiteAverage("Digram", 1);
    const double isb = suiteAverage("ISB", 1);
    const double vldp = suiteAverage("VLDP", 1);

    EXPECT_GE(domino, stms);
    EXPECT_GT(stms, digram);
    EXPECT_GT(digram, isb);
    EXPECT_GT(isb, vldp);
}

TEST(Integration, OpportunityExceedsAllPrefetchers)
{
    WorkloadParams wl;
    findWorkload("OLTP", wl);
    ServerWorkload src(wl, kSeed, kAccesses);
    const auto misses = baselineMissSequence(src);
    const double opportunity = analyzeOpportunity(misses).coverage();
    for (const char *tech : {"Domino", "STMS", "Digram", "ISB"}) {
        EXPECT_GT(opportunity,
                  runTech(wl, tech, 1).coverage())
            << tech;
    }
}

TEST(Integration, DominoOverpredictionsWellBelowStms)
{
    // Figure 13's headline at degree 4 (paper: about one third).
    double stms_over = 0, domino_over = 0;
    for (const auto &wl : serverSuite()) {
        stms_over += runTech(wl, "STMS", 4).overpredictionRate();
        domino_over += runTech(wl, "Domino", 4).overpredictionRate();
    }
    EXPECT_LT(domino_over, 0.6 * stms_over);
}

TEST(Integration, DegreeFourRaisesCoverageAndOverpredictions)
{
    WorkloadParams wl;
    findWorkload("Web Apache", wl);
    const CoverageResult d1 = runTech(wl, "STMS", 1);
    const CoverageResult d4 = runTech(wl, "STMS", 4);
    EXPECT_GT(d4.coverage(), d1.coverage());
    EXPECT_GT(d4.overpredictionRate(), d1.overpredictionRate());
}

TEST(Integration, SpatioTemporalStackingOrthogonal)
{
    // Figure 16 on the most spatial workload.
    WorkloadParams wl;
    findWorkload("Data Serving", wl);
    const double vldp = runTech(wl, "VLDP", 4).coverage();
    const double domino = runTech(wl, "Domino", 4).coverage();
    const double stack = runTech(wl, "VLDP+Domino", 4).coverage();
    EXPECT_GT(stack, vldp + 0.03);
    EXPECT_GT(stack, domino + 0.03);
}

TEST(Integration, SatSolverHardestWorkload)
{
    // SAT Solver generates its dataset on the fly: lowest coverage
    // for the temporal prefetchers (paper Section V.C).
    WorkloadParams sat, oltp;
    findWorkload("SAT Solver", sat);
    findWorkload("OLTP", oltp);
    EXPECT_LT(runTech(sat, "Domino", 4).coverage(),
              runTech(oltp, "Domino", 4).coverage());
}

TEST(Integration, StreamLengthOrderingStmsDigramSequitur)
{
    // Figure 2: Sequitur > Digram > STMS on mean stream length.
    WorkloadParams wl;
    findWorkload("OLTP", wl);
    const double stms = runTech(wl, "STMS", 1).meanStreamRun();
    const double digram = runTech(wl, "Digram", 1).meanStreamRun();
    ServerWorkload src(wl, kSeed, kAccesses);
    const auto misses = baselineMissSequence(src);
    const double seq = analyzeOpportunity(misses).meanStreamLength();
    EXPECT_GT(digram, stms);
    EXPECT_GT(seq, digram);
}

TEST(Integration, HtSensitivityMonotoneToSaturation)
{
    // Figure 9's shape: growing the HT never hurts much and helps
    // up to saturation.
    WorkloadParams wl;
    findWorkload("Web Zeus", wl);
    std::map<std::uint64_t, double> cov;
    for (const std::uint64_t entries :
         {1ULL << 11, 1ULL << 14, 1ULL << 18}) {
        FactoryConfig f;
        f.degree = 4;
        f.samplingProb = 0.5;
        f.htEntries = entries;
        auto pf = makePrefetcher("Domino", f);
        ServerWorkload src(wl, kSeed, kAccesses);
        CoverageSimulator sim;
        cov[entries] = sim.run(src, pf.get()).coverage();
    }
    EXPECT_GT(cov[1ULL << 14], cov[1ULL << 11]);
    EXPECT_GE(cov[1ULL << 18] + 0.02, cov[1ULL << 14]);
}

TEST(Integration, Figure5ShapeDepthTwoSufficient)
{
    WorkloadParams wl;
    findWorkload("OLTP", wl);
    const auto run_depth = [&](unsigned depth) {
        FactoryConfig f;
        f.degree = 1;
        f.nlookupDepth = depth;
        auto pf = makePrefetcher("NLookup", f);
        ServerWorkload src(wl, kSeed, kAccesses);
        CoverageSimulator sim;
        return sim.run(src, pf.get());
    };
    const CoverageResult d1 = run_depth(1);
    const CoverageResult d2 = run_depth(2);
    const CoverageResult d4 = run_depth(4);
    // Depth 2 improves on depth 1 markedly; depth 4 adds little.
    EXPECT_GT(d2.coverage(), d1.coverage() + 0.02);
    EXPECT_LT(d4.coverage() - d2.coverage(),
              d2.coverage() - d1.coverage());
    EXPECT_LT(d2.overpredictionRate(), d1.overpredictionRate());
}

} // anonymous namespace
} // namespace domino
