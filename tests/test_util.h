/**
 * @file
 * Shared helpers for the prefetcher unit tests: a recording sink
 * and a miniature trigger-level simulator (prefetch buffer
 * semantics without the L1), so tests can drive prefetchers with
 * hand-built trigger sequences and inspect every issued request.
 */

#ifndef DOMINO_TESTS_TEST_UTIL_H
#define DOMINO_TESTS_TEST_UTIL_H

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.h"

namespace domino::test
{

/** Records every issue()/dropStream() call. */
class RecordingSink : public PrefetchSink
{
  public:
    struct Issue
    {
        LineAddr line;
        std::uint32_t streamId;
        unsigned metadataTrips;
    };

    void
    issue(LineAddr line, std::uint32_t stream_id,
          unsigned metadata_trips) override
    {
        issues.push_back(Issue{line, stream_id, metadata_trips});
    }

    void
    dropStream(std::uint32_t stream_id) override
    {
        drops.push_back(stream_id);
    }

    std::vector<Issue> issues;
    std::vector<std::uint32_t> drops;

    /** Lines issued, in order. */
    std::vector<LineAddr>
    lines() const
    {
        std::vector<LineAddr> out;
        for (const auto &i : issues)
            out.push_back(i.line);
        return out;
    }

    bool
    issued(LineAddr line) const
    {
        for (const auto &i : issues)
            if (i.line == line)
                return true;
        return false;
    }
};

/**
 * Trigger-level mini simulator: a small prefetch "buffer" plus
 * coverage counters, for driving a prefetcher with raw trigger
 * sequences (no L1 model, every address is a demand).
 */
class MiniSim : public PrefetchSink
{
  public:
    explicit MiniSim(Prefetcher &pf, std::uint32_t capacity = 32)
        : pf(pf), cap(capacity)
    {}

    void
    issue(LineAddr line, std::uint32_t stream_id,
          unsigned metadata_trips) override
    {
        (void)metadata_trips;
        for (const auto &e : buf)
            if (e.first == line)
                return;
        if (buf.size() >= cap)
            buf.erase(buf.begin());
        buf.emplace_back(line, stream_id);
        ++issuedCnt;
    }

    void
    dropStream(std::uint32_t stream_id) override
    {
        for (std::size_t i = 0; i < buf.size();) {
            if (buf[i].second == stream_id)
                buf.erase(buf.begin() +
                          static_cast<std::ptrdiff_t>(i));
            else
                ++i;
        }
    }

    /** Feed one demand; returns true if it was a prefetch hit. */
    bool
    demand(LineAddr line, Addr pc = 0)
    {
        TriggerEvent event;
        event.line = line;
        event.pc = pc;
        for (std::size_t i = 0; i < buf.size(); ++i) {
            if (buf[i].first == line) {
                event.wasPrefetchHit = true;
                event.hitStreamId = buf[i].second;
                buf.erase(buf.begin() +
                          static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
        if (event.wasPrefetchHit)
            ++coveredCnt;
        else
            ++uncoveredCnt;
        pf.onTrigger(event, *this);
        return event.wasPrefetchHit;
    }

    /** Feed a whole sequence. */
    void
    run(const std::vector<LineAddr> &seq)
    {
        for (const LineAddr line : seq)
            demand(line);
    }

    double
    coverage() const
    {
        const std::uint64_t total = coveredCnt + uncoveredCnt;
        return total ? static_cast<double>(coveredCnt) /
            static_cast<double>(total) : 0.0;
    }

    std::uint64_t covered() const { return coveredCnt; }
    std::uint64_t uncovered() const { return uncoveredCnt; }
    std::uint64_t issuedCount() const { return issuedCnt; }
    bool buffered(LineAddr line) const
    {
        for (const auto &e : buf)
            if (e.first == line)
                return true;
        return false;
    }

  private:
    Prefetcher &pf;
    std::uint32_t cap;
    std::vector<std::pair<LineAddr, std::uint32_t>> buf;
    std::uint64_t coveredCnt = 0;
    std::uint64_t uncoveredCnt = 0;
    std::uint64_t issuedCnt = 0;
};

} // namespace domino::test

#endif // DOMINO_TESTS_TEST_UTIL_H
