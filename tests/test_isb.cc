/**
 * @file
 * Unit tests for the idealized PC/AC ISB: per-PC training,
 * successor-chain prediction, and PC-delocalisation sensitivity.
 */

#include <gtest/gtest.h>

#include "prefetch/isb.h"
#include "test_util.h"

namespace domino
{
namespace
{

using test::MiniSim;
using test::RecordingSink;

void
trigger(Prefetcher &pf, RecordingSink &sink, LineAddr line, Addr pc)
{
    TriggerEvent e;
    e.line = line;
    e.pc = pc;
    pf.onTrigger(e, sink);
}

TEST(Isb, PredictsPerPcSuccessor)
{
    IsbPrefetcher pf(IsbConfig{1});
    RecordingSink sink;
    // PC 7: 10 -> 20 -> 30.
    trigger(pf, sink, 10, 7);
    trigger(pf, sink, 20, 7);
    trigger(pf, sink, 30, 7);
    sink.issues.clear();
    trigger(pf, sink, 10, 7);
    ASSERT_EQ(sink.issues.size(), 1u);
    EXPECT_EQ(sink.issues[0].line, 20u);
    EXPECT_EQ(sink.issues[0].metadataTrips, 0u);  // on-chip
}

TEST(Isb, ChainsToDegree)
{
    IsbPrefetcher pf(IsbConfig{3});
    RecordingSink sink;
    for (LineAddr l : {10, 20, 30, 40})
        trigger(pf, sink, l, 7);
    sink.issues.clear();
    trigger(pf, sink, 10, 7);
    ASSERT_EQ(sink.issues.size(), 3u);
    EXPECT_EQ(sink.issues[0].line, 20u);
    EXPECT_EQ(sink.issues[1].line, 30u);
    EXPECT_EQ(sink.issues[2].line, 40u);
}

TEST(Isb, PcLocalizationSeparatesStreams)
{
    IsbPrefetcher pf(IsbConfig{1});
    RecordingSink sink;
    // Same addresses, different PCs: successors must not leak
    // between the PC-localized histories.
    trigger(pf, sink, 10, 1);
    trigger(pf, sink, 20, 1);
    trigger(pf, sink, 10, 2);
    trigger(pf, sink, 99, 2);
    sink.issues.clear();
    trigger(pf, sink, 10, 1);
    ASSERT_EQ(sink.issues.size(), 1u);
    EXPECT_EQ(sink.issues[0].line, 20u);
    sink.issues.clear();
    trigger(pf, sink, 10, 2);
    ASSERT_EQ(sink.issues.size(), 1u);
    EXPECT_EQ(sink.issues[0].line, 99u);
}

TEST(Isb, InterleavedPcSequencesStayCorrelated)
{
    // The global sequence interleaves two PCs; per-PC streams are
    // still clean -- ISB's strength.
    IsbPrefetcher pf(IsbConfig{1});
    MiniSim sim(pf);
    for (int r = 0; r < 4; ++r) {
        for (int k = 0; k < 6; ++k) {
            TriggerEvent dummy;
            (void)dummy;
            // alternate PCs with distinct address spaces
            sim.demand(100 + k, 1);
            sim.demand(200 + k, 2);
        }
    }
    // After warmup rounds the per-PC successors cover the replays.
    EXPECT_GT(sim.coverage(), 0.5);
}

TEST(Isb, PcChurnBreaksCoverage)
{
    // If every replay uses fresh PCs, per-PC histories never
    // repeat and ISB covers nothing -- the paper's delocalisation
    // argument in its extreme form.
    IsbPrefetcher pf(IsbConfig{2});
    MiniSim sim(pf);
    Addr pc = 1;
    for (int r = 0; r < 50; ++r)
        for (int k = 0; k < 6; ++k)
            sim.demand(100 + k, pc++);
    EXPECT_EQ(sim.covered(), 0u);
}

TEST(Isb, TrainedPcsCounted)
{
    IsbPrefetcher pf(IsbConfig{1});
    RecordingSink sink;
    trigger(pf, sink, 1, 10);
    trigger(pf, sink, 2, 11);
    trigger(pf, sink, 3, 12);
    EXPECT_EQ(pf.trainedPcs(), 3u);
}

} // anonymous namespace
} // namespace domino
