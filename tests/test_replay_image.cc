/**
 * @file
 * Tests for the packed replay image and its shard cursor: the image
 * must reproduce the TraceView record sequence exactly, the cursor
 * must deal records like ShardView, the coverage simulator's image
 * overload must match its AccessSource overload, and the audits
 * must catch corrupted images.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "trace/replay_image.h"
#include "trace/trace_cache.h"
#include "trace/trace_interleaver.h"
#include "workloads/server_workload.h"

namespace domino
{

/** Test-only backdoor for corrupting ReplayImage arrays. */
struct ReplayImageTestPeer
{
    static std::vector<LineAddr> &
    lines(ReplayImage &image)
    {
        return image.lineArr;
    }

    static std::vector<Addr> &
    pcs(ReplayImage &image)
    {
        return image.pcArr;
    }

    static std::vector<std::uint8_t> &
    rws(ReplayImage &image)
    {
        return image.rwArr;
    }
};

namespace
{

TraceBuffer
testTrace(std::uint64_t seed, std::uint64_t accesses)
{
    WorkloadParams wl;
    findWorkload("OLTP", wl);
    return generateTrace(wl, seed, accesses);
}

TEST(ReplayImage, MatchesTraceRecordSequence)
{
    const TraceBuffer trace = testTrace(3, 5000);
    const ReplayImage image(trace);
    ASSERT_EQ(image.size(), trace.size());
    // The image must yield, record for record, exactly what a
    // TraceView replay unpacks.
    TraceBuffer replay = trace;
    Access a;
    std::size_t i = 0;
    while (replay.next(a)) {
        ASSERT_LT(i, image.size());
        EXPECT_EQ(image.lineAt(i), a.line());
        EXPECT_EQ(image.pcAt(i), a.pc);
        EXPECT_EQ(image.writeAt(i), a.isWrite);
        ++i;
    }
    EXPECT_EQ(i, image.size());
    EXPECT_EQ(image.audit(), "");
    EXPECT_EQ(image.auditAgainst(trace), "");
}

TEST(ReplayImage, CursorDealsLikeShardView)
{
    const TraceBuffer trace = testTrace(5, 4097);  // non-dividing
    const auto buf = std::make_shared<const TraceBuffer>(trace);
    const ReplayImage image(trace);
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        for (std::uint32_t chunk : {1u, 7u, 64u}) {
            TraceInterleaver interleaver(buf, cores, chunk);
            for (unsigned c = 0; c < cores; ++c) {
                ShardView view = interleaver.shard(c);
                ReplayCursor cursor =
                    interleaver.imageShard(image, c);
                Access a;
                std::size_t idx = 0;
                while (view.next(a)) {
                    ASSERT_TRUE(cursor.next(idx))
                        << "cores=" << cores << " chunk=" << chunk;
                    EXPECT_EQ(image.lineAt(idx), a.line());
                    EXPECT_EQ(image.pcAt(idx), a.pc);
                }
                EXPECT_FALSE(cursor.next(idx));
                EXPECT_TRUE(cursor.done());
            }
            EXPECT_EQ(image.auditPartition(cores, chunk), "");
        }
    }
}

TEST(ReplayImage, CoverageRunManyMatchesSourceOverload)
{
    const TraceBuffer trace = testTrace(9, 20000);
    const ReplayImage image(trace);
    FactoryConfig f;
    f.degree = 4;
    f.samplingProb = 0.5;
    f.seed = 9 ^ 0xfac;
    for (const char *tech : {"Domino", "STMS"}) {
        auto pfSrc = makePrefetcher(tech, f);
        auto pfImg = makePrefetcher(tech, f);
        TraceBuffer src = trace;
        CoverageSimulator simSrc;
        CoverageSimulator simImg;
        const CoverageResult a =
            simSrc.runMany(src, {pfSrc.get()}).front();
        const CoverageResult b =
            simImg.runMany(image, {pfImg.get()}).front();
        EXPECT_EQ(a.accesses, b.accesses);
        EXPECT_EQ(a.l1Hits, b.l1Hits);
        EXPECT_EQ(a.covered, b.covered);
        EXPECT_EQ(a.uncovered, b.uncovered);
        EXPECT_EQ(a.issued, b.issued);
        EXPECT_EQ(a.overpredictions, b.overpredictions);
        EXPECT_EQ(a.metadata.readBytes(), b.metadata.readBytes());
        EXPECT_EQ(a.metadata.writeBytes(), b.metadata.writeBytes());
    }
}

TEST(ReplayImage, EmptyImageIsExhausted)
{
    const ReplayImage image;
    EXPECT_EQ(image.size(), 0u);
    EXPECT_EQ(image.audit(), "");
    ReplayCursor cursor(image, 4, 2, 16);
    std::size_t idx = 0;
    EXPECT_TRUE(cursor.done());
    EXPECT_FALSE(cursor.next(idx));
}

TEST(ReplayImage, AuditCatchesLengthMismatch)
{
    const TraceBuffer trace = testTrace(1, 500);
    ReplayImage image(trace);
    ReplayImageTestPeer::pcs(image).pop_back();
    EXPECT_NE(image.audit(), "");
}

TEST(ReplayImage, AuditCatchesNonBooleanFlag)
{
    const TraceBuffer trace = testTrace(1, 500);
    ReplayImage image(trace);
    ReplayImageTestPeer::rws(image)[17] = 3;
    EXPECT_NE(image.audit(), "");
}

TEST(ReplayImage, AuditAgainstCatchesDivergence)
{
    const TraceBuffer trace = testTrace(1, 500);
    ReplayImage image(trace);
    EXPECT_EQ(image.auditAgainst(trace), "");
    // A different trace of the same length diverges record-wise.
    const TraceBuffer other = testTrace(2, 500);
    ASSERT_EQ(other.size(), trace.size());
    EXPECT_NE(image.auditAgainst(other), "");
    // A corrupted line address diverges from the original.
    ReplayImageTestPeer::lines(image)[42] ^= 1;
    EXPECT_NE(image.auditAgainst(trace), "");
}

TEST(ReplayImage, TraceCacheMemoisesImagePlane)
{
    TraceCache cache;
    unsigned generated = 0;
    const auto gen = [&] {
        ++generated;
        return testTrace(4, 1000);
    };
    const auto a = cache.image("k", gen);
    const auto b = cache.image("k", gen);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(generated, 1u);  // buffer generated once, image once
    EXPECT_EQ(a->size(), 1000u);
    EXPECT_EQ(a->audit(), "");
}

} // anonymous namespace
} // namespace domino
