/**
 * @file
 * Unit tests for the trace interleaver: exact partition of the
 * trace across shards, closed-form size agreement, identity at one
 * core, reset semantics, and the audit's corruption detection.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "trace/trace_interleaver.h"

namespace domino
{

/** Test-only backdoor for corrupting ShardView cursors. */
struct ShardViewTestPeer
{
    static void
    setPos(ShardView &view, std::size_t pos)
    {
        view.pos = pos;
    }

    static void
    setTaken(ShardView &view, std::size_t taken)
    {
        view.taken = taken;
    }
};

namespace
{

std::shared_ptr<const TraceBuffer>
makeTrace(std::size_t n)
{
    TraceBuffer trace;
    for (std::size_t i = 0; i < n; ++i)
        trace.pushRead(static_cast<Addr>(i) * blockBytes,
                       static_cast<Addr>(1000 + i));
    return std::make_shared<const TraceBuffer>(std::move(trace));
}

/** Collect all addresses a shard yields. */
std::vector<Addr>
collect(ShardView view)
{
    std::vector<Addr> out;
    Access a;
    while (view.next(a))
        out.push_back(a.addr);
    return out;
}

TEST(TraceInterleaver, PartitionsTraceExactly)
{
    // Deliberately awkward geometry: remainder chunk mid-core.
    const std::size_t n = 38;
    TraceInterleaver interleaver(makeTrace(n), 4, 3);

    std::vector<bool> seen(n, false);
    std::size_t total = 0;
    for (unsigned c = 0; c < 4; ++c) {
        const auto addrs = collect(interleaver.shard(c));
        Addr prev = 0;
        bool first = true;
        for (Addr addr : addrs) {
            const std::size_t idx = addr / blockBytes;
            ASSERT_LT(idx, n);
            EXPECT_FALSE(seen[idx]) << "record " << idx << " dealt "
                                    << "to two shards";
            seen[idx] = true;
            // Within a shard, records keep trace order.
            if (!first) {
                EXPECT_GT(addr, prev);
            }
            prev = addr;
            first = false;
            // Record idx belongs to core (idx / chunk) % cores.
            EXPECT_EQ((idx / 3) % 4, c);
        }
        total += addrs.size();
    }
    EXPECT_EQ(total, n);
    EXPECT_EQ(interleaver.audit(), "");
}

TEST(TraceInterleaver, ClosedFormSizeMatchesWalk)
{
    for (std::size_t n : {0u, 1u, 5u, 16u, 17u, 100u, 257u}) {
        for (unsigned cores : {1u, 2u, 3u, 4u, 8u}) {
            for (std::uint32_t chunk : {1u, 2u, 7u, 256u}) {
                TraceInterleaver inter(makeTrace(n), cores, chunk);
                std::size_t total = 0;
                for (unsigned c = 0; c < cores; ++c) {
                    EXPECT_EQ(inter.shardSize(c),
                              collect(inter.shard(c)).size())
                        << "n=" << n << " cores=" << cores
                        << " chunk=" << chunk << " core=" << c;
                    total += inter.shardSize(c);
                }
                EXPECT_EQ(total, n);
                EXPECT_EQ(inter.audit(), "");
            }
        }
    }
}

TEST(TraceInterleaver, OneCoreIsIdentity)
{
    const auto buf = makeTrace(41);
    TraceInterleaver interleaver(buf, 1, 256);
    const auto addrs = collect(interleaver.shard(0));
    ASSERT_EQ(addrs.size(), buf->size());
    for (std::size_t i = 0; i < addrs.size(); ++i)
        EXPECT_EQ(addrs[i], (*buf)[i].addr);
}

TEST(TraceInterleaver, ResetReplaysIdentically)
{
    TraceInterleaver interleaver(makeTrace(50), 2, 4);
    ShardView view = interleaver.shard(1);
    const auto first = collect(view);
    view.reset();
    EXPECT_EQ(view.consumed(), 0u);
    EXPECT_EQ(collect(view), first);
}

TEST(TraceInterleaver, EmptyTrace)
{
    TraceInterleaver interleaver(makeTrace(0), 4, 8);
    for (unsigned c = 0; c < 4; ++c) {
        ShardView view = interleaver.shard(c);
        Access a;
        EXPECT_FALSE(view.next(a));
        EXPECT_EQ(view.size(), 0u);
        EXPECT_EQ(view.audit(), "");
    }
    EXPECT_EQ(interleaver.audit(), "");

    ShardView empty;
    Access a;
    EXPECT_FALSE(empty.next(a));
    EXPECT_EQ(empty.audit(), "");
}

TEST(TraceInterleaver, AuditDetectsForeignCursor)
{
    TraceInterleaver interleaver(makeTrace(64), 4, 4);
    ShardView view = interleaver.shard(1);
    EXPECT_EQ(view.audit(), "");
    // Record 0 belongs to core 0, not core 1.
    ShardViewTestPeer::setPos(view, 0);
    EXPECT_NE(view.audit(), "");
}

TEST(TraceInterleaver, AuditDetectsOverconsumption)
{
    TraceInterleaver interleaver(makeTrace(64), 4, 4);
    ShardView view = interleaver.shard(2);
    ShardViewTestPeer::setTaken(view, view.size() + 1);
    EXPECT_NE(view.audit(), "");
}

} // anonymous namespace
} // namespace domino
