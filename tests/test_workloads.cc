/**
 * @file
 * Tests for the synthetic server-workload generators: determinism,
 * suite completeness, and the statistical structure the paper's
 * mechanisms depend on (temporal repetition, stream-length shape,
 * shared elements, spatial runs, PC structure).
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "trace/trace_stats.h"
#include "workloads/server_workload.h"
#include "workloads/stream_library.h"
#include "workloads/workload_params.h"

namespace domino
{
namespace
{

TEST(WorkloadSuite, HasNinePaperWorkloads)
{
    const auto suite = serverSuite();
    ASSERT_EQ(suite.size(), 9u);
    const std::vector<std::string> expected = {
        "Data Serving", "MapReduce-C", "MapReduce-W",
        "Media Streaming", "OLTP", "SAT Solver", "Web Apache",
        "Web Search", "Web Zeus"};
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(suite[i].name, expected[i]);
}

TEST(WorkloadSuite, FindByName)
{
    WorkloadParams p;
    EXPECT_TRUE(findWorkload("OLTP", p));
    EXPECT_EQ(p.name, "OLTP");
    EXPECT_FALSE(findWorkload("NoSuchWorkload", p));
}

TEST(AddressAllocator, FreshLinesNeverRepeat)
{
    AddressAllocator alloc(1);
    std::unordered_set<LineAddr> seen;
    for (int i = 0; i < 100000; ++i)
        EXPECT_TRUE(seen.insert(alloc.freshLine()).second);
}

TEST(AddressAllocator, RegionsDisjoint)
{
    AddressAllocator a(1);
    AddressAllocator b(2, 0x20'0000'0000ULL);
    std::unordered_set<LineAddr> lines_a;
    for (int i = 0; i < 10000; ++i)
        lines_a.insert(a.freshLine());
    for (int i = 0; i < 10000; ++i)
        EXPECT_EQ(lines_a.count(b.freshLine()), 0u);
}

TEST(AddressAllocator, PageBasesAligned)
{
    AddressAllocator alloc(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(alloc.freshPageBase() % blocksPerPage, 0u);
}

TEST(StreamLibrary, DeterministicConstruction)
{
    WorkloadParams p;
    findWorkload("OLTP", p);
    p.numStreams = 200;
    StreamLibrary a(p, 7), b(p, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.stream(i).lines, b.stream(i).lines);
        EXPECT_EQ(a.stream(i).pcs, b.stream(i).pcs);
        EXPECT_EQ(a.stream(i).offsets, b.stream(i).offsets);
    }
}

TEST(StreamLibrary, DifferentSeedsDiffer)
{
    WorkloadParams p;
    findWorkload("OLTP", p);
    p.numStreams = 50;
    StreamLibrary a(p, 7), b(p, 8);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size() && !any_diff; ++i)
        any_diff = a.stream(i).lines != b.stream(i).lines ||
            a.stream(i).offsets != b.stream(i).offsets;
    EXPECT_TRUE(any_diff);
}

TEST(StreamLibrary, SpatialFractionRespected)
{
    WorkloadParams p;
    findWorkload("Data Serving", p);  // spatialFraction 0.22
    p.numStreams = 2000;
    StreamLibrary lib(p, 3);
    std::size_t spatial = 0;
    for (std::size_t i = 0; i < lib.size(); ++i)
        if (lib.stream(i).spatial)
            ++spatial;
    const double frac =
        static_cast<double>(spatial) / static_cast<double>(lib.size());
    EXPECT_NEAR(frac, p.spatialFraction, 0.04);
}

TEST(StreamLibrary, SharedElementsExist)
{
    WorkloadParams p;
    findWorkload("OLTP", p);
    p.numStreams = 500;
    StreamLibrary lib(p, 3);
    // Count lines that appear in more than one temporal stream.
    std::unordered_map<LineAddr, int> owners;
    for (std::size_t i = 0; i < lib.size(); ++i) {
        if (lib.stream(i).spatial)
            continue;
        std::unordered_set<LineAddr> mine(
            lib.stream(i).lines.begin(), lib.stream(i).lines.end());
        for (const LineAddr l : mine)
            ++owners[l];
    }
    std::size_t shared = 0;
    for (const auto &[line, count] : owners)
        if (count > 1)
            ++shared;
    EXPECT_GT(shared, 100u);
}

TEST(StreamLibrary, SpatialOffsetsInPage)
{
    WorkloadParams p;
    findWorkload("Media Streaming", p);
    p.numStreams = 500;
    StreamLibrary lib(p, 5);
    for (std::size_t i = 0; i < lib.size(); ++i) {
        const StreamDef &s = lib.stream(i);
        if (!s.spatial)
            continue;
        for (const auto off : s.offsets)
            EXPECT_LT(off, blocksPerPage);
        // Offsets strictly increase (positive delta patterns).
        for (std::size_t k = 1; k < s.offsets.size(); ++k)
            EXPECT_GT(s.offsets[k], s.offsets[k - 1]);
    }
}

TEST(ServerWorkload, DeterministicAndResettable)
{
    WorkloadParams p;
    findWorkload("Web Search", p);
    ServerWorkload a(p, 5, 20000), b(p, 5, 20000);
    Access x, y;
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(a.next(x));
        ASSERT_TRUE(b.next(y));
        ASSERT_TRUE(x == y) << "at access " << i;
    }
    EXPECT_FALSE(a.next(x));

    a.reset();
    b.reset();
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(a.next(x));
        ASSERT_TRUE(b.next(y));
        ASSERT_TRUE(x == y);
    }
}

TEST(ServerWorkload, RespectsLimit)
{
    WorkloadParams p;
    findWorkload("OLTP", p);
    ServerWorkload gen(p, 1, 5000);
    Access a;
    std::uint64_t count = 0;
    while (gen.next(a))
        ++count;
    EXPECT_EQ(count, 5000u);
}

TEST(ServerWorkload, GenerateTraceMatchesStreaming)
{
    WorkloadParams p;
    findWorkload("OLTP", p);
    const TraceBuffer t = generateTrace(p, 3, 5000);
    ServerWorkload gen(p, 3, 5000);
    Access a;
    for (std::size_t i = 0; i < t.size(); ++i) {
        ASSERT_TRUE(gen.next(a));
        ASSERT_TRUE(a == t[i]);
    }
}

TEST(ServerWorkload, HasSubstantialLineReuse)
{
    // The temporal structure the whole paper depends on: a large
    // fraction of misses must be to previously seen lines.
    WorkloadParams p;
    findWorkload("OLTP", p);
    const TraceBuffer t = generateTrace(p, 1, 100000);
    const TraceStats s = computeTraceStats(t);
    EXPECT_GT(s.lineReuseFraction, 0.5);
}

TEST(ServerWorkload, FootprintExceedsL1)
{
    // If the footprint fit in the 64 KB L1-D, there would be no
    // misses to prefetch.
    WorkloadParams p;
    findWorkload("Web Apache", p);
    const TraceBuffer t = generateTrace(p, 1, 100000);
    const TraceStats s = computeTraceStats(t);
    EXPECT_GT(s.footprintBytes(), 512u * 1024);
}

class SuiteWorkloadTest
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(SuiteWorkloadTest, ProducesValidAccesses)
{
    WorkloadParams p;
    ASSERT_TRUE(findWorkload(GetParam(), p));
    ServerWorkload gen(p, 11, 20000);
    Access a;
    std::uint64_t count = 0;
    while (gen.next(a)) {
        ASSERT_NE(a.addr, invalidAddr);
        ++count;
    }
    EXPECT_EQ(count, 20000u);
}

TEST_P(SuiteWorkloadTest, MissRateInServerBand)
{
    // Every workload's L1 in-flow must be neither trivial nor
    // saturated: hot accesses hit, stream accesses mostly miss.
    WorkloadParams p;
    ASSERT_TRUE(findWorkload(GetParam(), p));
    const TraceBuffer t = generateTrace(p, 11, 50000);
    const TraceStats s = computeTraceStats(t);
    EXPECT_GT(s.distinctLines, 1000u);
    EXPECT_GT(s.lineReuseFraction, 0.3);
    EXPECT_LT(s.lineReuseFraction, 0.999);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SuiteWorkloadTest,
                         ::testing::ValuesIn(suiteNames()));

} // anonymous namespace
} // namespace domino
