/**
 * @file
 * Unit tests for VLDP: delta training, deepest-match DPT
 * prediction, OPT first-delta prediction on fresh pages, chained
 * degree prediction, and page-boundary safety.
 */

#include <gtest/gtest.h>

#include "prefetch/vldp.h"
#include "test_util.h"

namespace domino
{
namespace
{

using test::MiniSim;
using test::RecordingSink;

LineAddr
lineAt(std::uint64_t page, std::uint32_t offset)
{
    return page * blocksPerPage + offset;
}

void
trigger(Prefetcher &pf, RecordingSink &sink, LineAddr line)
{
    TriggerEvent e;
    e.line = line;
    pf.onTrigger(e, sink);
}

TEST(Vldp, LearnsConstantStride)
{
    VldpPrefetcher pf(VldpConfig{1, 16, 64});
    RecordingSink sink;
    // Page 5: offsets 0, 2, 4, 6 -> delta 2 learned.
    for (std::uint32_t off : {0u, 2u, 4u})
        trigger(pf, sink, lineAt(5, off));
    sink.issues.clear();
    trigger(pf, sink, lineAt(5, 6));
    ASSERT_FALSE(sink.issues.empty());
    EXPECT_EQ(sink.issues.back().line, lineAt(5, 8));
}

TEST(Vldp, OptPredictsOnFreshPage)
{
    VldpPrefetcher pf(VldpConfig{1, 16, 64});
    RecordingSink sink;
    // Train pages 1 and 2 with first offset 3, first delta +2.
    for (std::uint64_t page : {1ull, 2ull}) {
        trigger(pf, sink, lineAt(page, 3));
        trigger(pf, sink, lineAt(page, 5));
        trigger(pf, sink, lineAt(page, 7));
    }
    // Fresh page, same first offset: OPT must fire immediately --
    // VLDP's ability to prefetch unobserved misses.
    sink.issues.clear();
    trigger(pf, sink, lineAt(99, 3));
    ASSERT_FALSE(sink.issues.empty());
    EXPECT_EQ(sink.issues[0].line, lineAt(99, 5));
}

TEST(Vldp, DeepestMatchWins)
{
    VldpPrefetcher pf(VldpConfig{1, 16, 64});
    RecordingSink sink;
    // Teach: after deltas (1, 1) comes 4; after a bare 1 comes 1.
    // Page A: 0,1,2,6 -> deltas 1,1,4.
    for (std::uint32_t off : {0u, 1u, 2u, 6u})
        trigger(pf, sink, lineAt(1, off));
    // Page B: 10, 11 -> delta 1; then predict.
    trigger(pf, sink, lineAt(2, 10));
    sink.issues.clear();
    trigger(pf, sink, lineAt(2, 11));
    // History is (1); DPT1[1] was last trained by page A's second
    // delta (1->1): prediction 11+1=12... but after page A, DPT1[1]
    // maps to 4 (the last delta following a 1).  Deepest match with
    // only one delta of history is DPT1.
    ASSERT_FALSE(sink.issues.empty());
    EXPECT_EQ(sink.issues[0].line, lineAt(2, 15));

    // Now with two deltas of history (1,1), DPT2 must override.
    trigger(pf, sink, lineAt(3, 20));
    trigger(pf, sink, lineAt(3, 21));
    sink.issues.clear();
    trigger(pf, sink, lineAt(3, 22));  // history (1,1)
    ASSERT_FALSE(sink.issues.empty());
    EXPECT_EQ(sink.issues[0].line, lineAt(3, 26));  // 22 + 4
}

TEST(Vldp, ChainedDegreePrediction)
{
    VldpPrefetcher pf(VldpConfig{3, 16, 64});
    RecordingSink sink;
    for (std::uint32_t off : {0u, 1u, 2u, 3u, 4u})
        trigger(pf, sink, lineAt(1, off));
    sink.issues.clear();
    trigger(pf, sink, lineAt(2, 8));
    trigger(pf, sink, lineAt(2, 9));
    // Chain: 10, 11, 12 predicted from compounding +1 deltas.
    ASSERT_GE(sink.issues.size(), 3u);
    EXPECT_EQ(sink.issues[0].line, lineAt(2, 10));
    EXPECT_EQ(sink.issues[1].line, lineAt(2, 11));
    EXPECT_EQ(sink.issues[2].line, lineAt(2, 12));
}

TEST(Vldp, NeverCrossesPageBoundary)
{
    VldpPrefetcher pf(VldpConfig{4, 16, 64});
    RecordingSink sink;
    // Stride +8 near the top of the page.
    for (std::uint32_t off : {32u, 40u, 48u, 56u})
        trigger(pf, sink, lineAt(7, off));
    for (const auto &i : sink.issues)
        EXPECT_EQ(pageOfLine(i.line), 7u)
            << "prefetch crossed the page";
}

TEST(Vldp, DhbEvictionBounded)
{
    // Touch many more pages than DHB entries; no crash, and old
    // pages are forgotten (re-touch behaves like a fresh page).
    VldpPrefetcher pf(VldpConfig{1, 4, 64});
    RecordingSink sink;
    for (std::uint64_t page = 0; page < 100; ++page) {
        trigger(pf, sink, lineAt(page, 0));
        trigger(pf, sink, lineAt(page, 1));
    }
    SUCCEED();
}

TEST(Vldp, CoversSpatialRunsAcrossFreshPages)
{
    // End-to-end property: recurring +1 runs on always-new pages
    // are covered via OPT + DPT (temporal prefetchers cover none
    // of this).
    VldpPrefetcher pf(VldpConfig{4, 16, 64});
    MiniSim sim(pf);
    for (std::uint64_t page = 1; page <= 60; ++page)
        for (std::uint32_t off = 4; off < 12; ++off)
            sim.demand(lineAt(page, off));
    EXPECT_GT(sim.coverage(), 0.5);
}

} // anonymous namespace
} // namespace domino
