/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/prng.h"
#include "mem/cache.h"

namespace domino
{
namespace
{

TEST(Cache, MissThenHitAfterFill)
{
    SetAssocCache cache(64 * 1024, 2);
    EXPECT_FALSE(cache.access(42));
    cache.fill(42);
    EXPECT_TRUE(cache.access(42));
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, GeometryFromSize)
{
    SetAssocCache l1(64 * 1024, 2);
    EXPECT_EQ(l1.numSets(), 512u);
    EXPECT_EQ(l1.numWays(), 2u);
    SetAssocCache llc(4ULL * 1024 * 1024, 16);
    EXPECT_EQ(llc.numSets(), 4096u);
}

TEST(Cache, ContainsIsSideEffectFree)
{
    SetAssocCache cache(4096, 2);
    cache.fill(7);
    const auto accesses = cache.stats().accesses;
    EXPECT_TRUE(cache.contains(7));
    EXPECT_FALSE(cache.contains(8));
    EXPECT_EQ(cache.stats().accesses, accesses);
}

TEST(Cache, LruEviction)
{
    // Direct construction of a tiny cache: 2 sets x 2 ways.
    SetAssocCache cache(4 * blockBytes, 2);
    ASSERT_EQ(cache.numSets(), 2u);

    // Find three lines mapping to the same set.
    std::vector<LineAddr> same_set;
    std::uint32_t target_set = 2;  // decided by the first line found
    for (LineAddr line = 0; same_set.size() < 3 && line < 10000;
         ++line) {
        const std::uint32_t set =
            static_cast<std::uint32_t>(mix64(line) & 1);
        if (same_set.empty()) {
            target_set = set;
            same_set.push_back(line);
        } else if (set == target_set) {
            same_set.push_back(line);
        }
    }
    ASSERT_EQ(same_set.size(), 3u);

    cache.fill(same_set[0]);
    cache.fill(same_set[1]);
    // Touch [0] so [1] becomes LRU.
    EXPECT_TRUE(cache.access(same_set[0]));
    LineAddr evicted = invalidAddr;
    EXPECT_TRUE(cache.fill(same_set[2], evicted));
    EXPECT_EQ(evicted, same_set[1]);
    EXPECT_TRUE(cache.contains(same_set[0]));
    EXPECT_FALSE(cache.contains(same_set[1]));
}

TEST(Cache, FillExistingDoesNotEvict)
{
    SetAssocCache cache(4096, 2);
    cache.fill(1);
    LineAddr evicted;
    EXPECT_FALSE(cache.fill(1, evicted));
    EXPECT_EQ(cache.stats().fills, 1u);
}

TEST(Cache, Invalidate)
{
    SetAssocCache cache(4096, 2);
    cache.fill(5);
    EXPECT_TRUE(cache.invalidate(5));
    EXPECT_FALSE(cache.contains(5));
    EXPECT_FALSE(cache.invalidate(5));
}

TEST(Cache, ClearEmptiesContents)
{
    SetAssocCache cache(4096, 2);
    for (LineAddr l = 0; l < 10; ++l)
        cache.fill(l);
    cache.clear();
    for (LineAddr l = 0; l < 10; ++l)
        EXPECT_FALSE(cache.contains(l));
}

TEST(Cache, CapacityBounds)
{
    // Fill with far more lines than capacity; hit rate on re-access
    // must reflect capacity misses.
    SetAssocCache cache(64 * 1024, 2);  // 1024 lines
    for (LineAddr l = 0; l < 4096; ++l)
        if (!cache.access(l))
            cache.fill(l);
    std::uint64_t resident = 0;
    for (LineAddr l = 0; l < 4096; ++l)
        if (cache.contains(l))
            ++resident;
    EXPECT_LE(resident, 1024u);
    EXPECT_GT(resident, 512u);  // should be nearly full
}

TEST(Cache, SmallWorkingSetStaysResident)
{
    SetAssocCache cache(64 * 1024, 2);
    // 64 lines touched repeatedly must stay resident.
    for (int round = 0; round < 10; ++round)
        for (LineAddr l = 0; l < 64; ++l)
            if (!cache.access(l))
                cache.fill(l);
    // Final round: all hits.
    for (LineAddr l = 0; l < 64; ++l)
        EXPECT_TRUE(cache.access(l)) << "line " << l;
}

TEST(Cache, InterleavedStreamsKeepBothResident)
{
    // Two interleaved sequential streams that together fit: the
    // interleaving (the multicore substrate's access shape) must
    // not evict either stream.
    SetAssocCache cache(64 * 1024, 2);  // 1024 lines
    for (int round = 0; round < 4; ++round) {
        for (LineAddr i = 0; i < 200; ++i) {
            for (LineAddr base : {LineAddr{0}, LineAddr{100000}}) {
                const LineAddr line = base + i;
                if (!cache.access(line))
                    cache.fill(line);
                ASSERT_EQ(cache.audit(), "");
            }
        }
    }
    // Nearly all of both streams survives the interleaving (hashed
    // set indexing makes a few 3-deep set collisions inevitable
    // among 400 lines over 512 2-way sets, so demand only ~95 %).
    std::uint64_t residentA = 0, residentB = 0;
    for (LineAddr i = 0; i < 200; ++i) {
        residentA += cache.contains(i);
        residentB += cache.contains(100000 + i);
    }
    EXPECT_GT(residentA, 180u);
    EXPECT_GT(residentB, 180u);
}

TEST(Cache, InterleavedThrashingIsFair)
{
    // Two interleaved working sets that together overflow a tiny
    // cache: strict alternation under LRU must not let one stream
    // monopolise it, and the stats must stay consistent.
    SetAssocCache cache(64 * blockBytes, 2);  // 64 lines
    std::uint64_t residentA = 0, residentB = 0;
    for (int round = 0; round < 6; ++round) {
        for (LineAddr i = 0; i < 64; ++i) {
            for (LineAddr base : {LineAddr{0}, LineAddr{500000}}) {
                const LineAddr line = base + i;
                if (!cache.access(line))
                    cache.fill(line);
            }
        }
    }
    ASSERT_EQ(cache.audit(), "");
    for (LineAddr i = 0; i < 64; ++i) {
        residentA += cache.contains(i);
        residentB += cache.contains(500000 + i);
    }
    EXPECT_LE(residentA + residentB, 64u);
    EXPECT_GT(residentA, 0u);
    EXPECT_GT(residentB, 0u);
    EXPECT_EQ(cache.stats().fills,
              cache.stats().evictions + residentA + residentB);
}

class CacheReplacementTest
    : public ::testing::TestWithParam<ReplPolicy>
{};

TEST_P(CacheReplacementTest, NeverExceedsCapacity)
{
    SetAssocCache cache(8 * 1024, 4, GetParam());  // 128 lines
    Prng rng(33);
    for (int i = 0; i < 10000; ++i) {
        const LineAddr line = rng.below(1000);
        if (!cache.access(line))
            cache.fill(line);
    }
    std::uint64_t resident = 0;
    for (LineAddr l = 0; l < 1000; ++l)
        if (cache.contains(l))
            ++resident;
    EXPECT_LE(resident, 128u);
    EXPECT_EQ(cache.stats().fills,
              cache.stats().evictions + resident);
}

INSTANTIATE_TEST_SUITE_P(Policies, CacheReplacementTest,
                         ::testing::Values(ReplPolicy::LRU,
                                           ReplPolicy::Random));

} // anonymous namespace
} // namespace domino
