/**
 * @file
 * Unit tests for src/trace: access records, trace buffer, binary
 * I/O round trips, and trace statistics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/prng.h"
#include "trace/access.h"
#include "trace/trace_buffer.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "workloads/server_workload.h"

namespace domino
{
namespace
{

TEST(Access, LineDerivation)
{
    Access a;
    a.addr = 0x1234;
    EXPECT_EQ(a.line(), 0x1234ULL >> 6);
}

TEST(TraceBuffer, PushAndIterate)
{
    TraceBuffer t;
    t.pushRead(0x1000, 0x400000);
    t.pushRead(0x2000);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].addr, 0x1000u);
    EXPECT_EQ(t[0].pc, 0x400000u);
    EXPECT_FALSE(t[0].isWrite);

    Access a;
    ASSERT_TRUE(t.next(a));
    EXPECT_EQ(a.addr, 0x1000u);
    ASSERT_TRUE(t.next(a));
    EXPECT_EQ(a.addr, 0x2000u);
    EXPECT_FALSE(t.next(a));

    t.reset();
    ASSERT_TRUE(t.next(a));
    EXPECT_EQ(a.addr, 0x1000u);
}

TEST(TraceIo, RoundTrip)
{
    TraceBuffer t;
    Prng rng(9);
    for (int i = 0; i < 1000; ++i) {
        Access a;
        a.addr = rng.next();
        a.pc = rng.next();
        a.isWrite = rng.chance(0.3);
        t.push(a);
    }

    const std::string path = "/tmp/domino_test_trace.bin";
    ASSERT_TRUE(writeTrace(path, t).ok);

    TraceBuffer back;
    ASSERT_TRUE(readTrace(path, back).ok);
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_TRUE(back[i] == t[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails)
{
    TraceBuffer t;
    const IoResult r = readTrace("/nonexistent/path/trace.bin", t);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
}

TEST(TraceIo, BadMagicFails)
{
    const std::string path = "/tmp/domino_test_badmagic.bin";
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATRACEFILE___", f);
    std::fclose(f);

    TraceBuffer t;
    EXPECT_FALSE(readTrace(path, t).ok);
    std::remove(path.c_str());
}

TEST(TraceStats, CountsDistinctAndReuse)
{
    TraceBuffer t;
    // Lines 0, 1, 0 -> one reuse; two distinct lines; pcs 1 and 2.
    t.push(Access{1, 0 * blockBytes, false});
    t.push(Access{2, 1 * blockBytes, false});
    t.push(Access{1, 0 * blockBytes, false});

    const TraceStats s = computeTraceStats(t);
    EXPECT_EQ(s.accesses, 3u);
    EXPECT_EQ(s.distinctLines, 2u);
    EXPECT_EQ(s.distinctPcs, 2u);
    EXPECT_NEAR(s.lineReuseFraction, 1.0 / 3, 1e-12);
    EXPECT_EQ(s.footprintBytes(), 2 * blockBytes);
}

TEST(TraceStats, SamePageFraction)
{
    TraceBuffer t;
    // Two consecutive accesses in page 0, then a jump to page 100.
    t.pushRead(0);
    t.pushRead(64);
    t.pushRead(100 * pageBytes);
    const TraceStats s = computeTraceStats(t);
    EXPECT_NEAR(s.samePageFraction, 0.5, 1e-12);
    EXPECT_EQ(s.distinctPages, 2u);
}

TEST(TraceIo, TextRoundTrip)
{
    TraceBuffer t;
    Prng rng(13);
    for (int i = 0; i < 500; ++i) {
        Access a;
        a.addr = rng.next() >> 8;
        a.pc = rng.next() >> 40;
        a.isWrite = rng.chance(0.25);
        t.push(a);
    }
    const std::string path = "/tmp/domino_test_trace.txt";
    ASSERT_TRUE(writeTextTrace(path, t).ok);
    TraceBuffer back;
    ASSERT_TRUE(readTextTrace(path, back).ok);
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_TRUE(back[i] == t[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(TraceIo, TextRejectsBadKind)
{
    const std::string path = "/tmp/domino_test_badkind.txt";
    FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("400 1000 R\n400 1040 X\n", f);
    std::fclose(f);
    TraceBuffer t;
    EXPECT_FALSE(readTextTrace(path, t).ok);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Error paths of the binary reader (docs/TRACE_FORMAT.md: the file
// must be exactly 20 + 17 * count bytes; failures leave the
// caller's buffer untouched).

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    EXPECT_TRUE(is.good());
    std::vector<char> bytes(static_cast<std::size_t>(is.tellg()));
    is.seekg(0);
    is.read(bytes.data(),
            static_cast<std::streamsize>(bytes.size()));
    return bytes;
}

void
spit(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(os.good());
}

TraceBuffer
tinyTrace()
{
    TraceBuffer t;
    t.pushRead(0x1000, 0x400000);
    t.pushRead(0x2000, 0x400004);
    t.pushRead(0x3000, 0x400008);
    return t;
}

/** The caller's buffer before a read that is expected to fail. */
TraceBuffer
sentinelBuffer()
{
    TraceBuffer t;
    t.pushRead(0xdead0000);
    return t;
}

void
expectUntouched(const TraceBuffer &t)
{
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].addr, 0xdead0000u);
}

TEST(TraceIoErrors, TruncatedBodyFails)
{
    const std::string path = "/tmp/domino_test_truncbody.bin";
    ASSERT_TRUE(writeTrace(path, tinyTrace()).ok);
    std::vector<char> bytes = slurp(path);
    bytes.resize(bytes.size() - 5);  // chop mid-record
    spit(path, bytes);

    TraceBuffer t = sentinelBuffer();
    const IoResult r = readTrace(path, t);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("truncated body"), std::string::npos)
        << r.error;
    expectUntouched(t);
    std::remove(path.c_str());
}

TEST(TraceIoErrors, TrailingBytesFail)
{
    const std::string path = "/tmp/domino_test_trailing.bin";
    ASSERT_TRUE(writeTrace(path, tinyTrace()).ok);
    std::vector<char> bytes = slurp(path);
    bytes.push_back('\0');  // one byte too many
    spit(path, bytes);

    TraceBuffer t = sentinelBuffer();
    const IoResult r = readTrace(path, t);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("trailing bytes"), std::string::npos)
        << r.error;
    expectUntouched(t);
    std::remove(path.c_str());
}

TEST(TraceIoErrors, CorruptCountIsATruncatedBody)
{
    const std::string path = "/tmp/domino_test_badcount.bin";
    ASSERT_TRUE(writeTrace(path, tinyTrace()).ok);
    std::vector<char> bytes = slurp(path);
    // Inflate the record count (little-endian u64 at offset 12).
    bytes[12] = 100;
    spit(path, bytes);

    TraceBuffer t = sentinelBuffer();
    const IoResult r = readTrace(path, t);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("truncated body"), std::string::npos)
        << r.error;
    expectUntouched(t);
    std::remove(path.c_str());
}

TEST(TraceIoErrors, UnknownVersionFails)
{
    const std::string path = "/tmp/domino_test_badversion.bin";
    ASSERT_TRUE(writeTrace(path, tinyTrace()).ok);
    std::vector<char> bytes = slurp(path);
    bytes[8] = 99;  // version field (little-endian u32 at offset 8)
    spit(path, bytes);

    TraceBuffer t = sentinelBuffer();
    const IoResult r = readTrace(path, t);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("version"), std::string::npos)
        << r.error;
    expectUntouched(t);
    std::remove(path.c_str());
}

TEST(TraceIoErrors, TruncatedHeaderFails)
{
    const std::string path = "/tmp/domino_test_truncheader.bin";
    spit(path, {'D', 'O', 'M', 'T', 'R', 'A'});

    TraceBuffer t = sentinelBuffer();
    const IoResult r = readTrace(path, t);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("truncated header"), std::string::npos)
        << r.error;
    expectUntouched(t);
    std::remove(path.c_str());
}

TEST(TraceIoErrors, BadMagicLeavesBufferUntouched)
{
    const std::string path = "/tmp/domino_test_badmagic2.bin";
    // Full header size, wrong magic.
    spit(path, std::vector<char>(traceHeaderBytes, 'x'));

    TraceBuffer t = sentinelBuffer();
    const IoResult r = readTrace(path, t);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("bad magic"), std::string::npos)
        << r.error;
    expectUntouched(t);
    std::remove(path.c_str());
}

TEST(TraceIoErrors, TextParseErrorOnFirstRecord)
{
    // Regression: an unparsable FIRST record used to slip through as
    // an empty success because the error test required a non-empty
    // parse.
    const std::string path = "/tmp/domino_test_badtext.txt";
    FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not-a-number 1000 R\n", f);
    std::fclose(f);

    TraceBuffer t = sentinelBuffer();
    const IoResult r = readTextTrace(path, t);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("parse error"), std::string::npos)
        << r.error;
    expectUntouched(t);
    std::remove(path.c_str());
}

TEST(TraceIo, BinaryAndTextAgree)
{
    WorkloadParams p;  // default-parameterised workload
    p.name = "test";
    const TraceBuffer t = generateTrace(p, 7, 2000);
    ASSERT_TRUE(writeTrace("/tmp/domino_agree.bin", t).ok);
    ASSERT_TRUE(writeTextTrace("/tmp/domino_agree.txt", t).ok);
    TraceBuffer bin, txt;
    ASSERT_TRUE(readTrace("/tmp/domino_agree.bin", bin).ok);
    ASSERT_TRUE(readTextTrace("/tmp/domino_agree.txt", txt).ok);
    ASSERT_EQ(bin.size(), txt.size());
    for (std::size_t i = 0; i < bin.size(); ++i)
        EXPECT_TRUE(bin[i] == txt[i]);
    std::remove("/tmp/domino_agree.bin");
    std::remove("/tmp/domino_agree.txt");
}

} // anonymous namespace
} // namespace domino
