/**
 * @file
 * Unit tests for the N-gram lookup machinery behind Figures 3-5:
 * match/correct accounting and the recursive-depth prefetcher.
 */

#include <gtest/gtest.h>

#include "common/prng.h"
#include "prefetch/nlookup.h"
#include "test_util.h"

namespace domino
{
namespace
{

using test::MiniSim;
using test::RecordingSink;

TEST(NGramAnalyzer, NoMatchesOnUniqueSequence)
{
    NGramAnalyzer an(3);
    for (LineAddr l = 0; l < 100; ++l)
        an.observe(l);
    for (unsigned n = 1; n <= 3; ++n) {
        EXPECT_EQ(an.stats(n).matches, 0u);
        EXPECT_EQ(an.stats(n).correct, 0u);
        EXPECT_GT(an.stats(n).lookups, 0u);
    }
}

TEST(NGramAnalyzer, PerfectRepetitionHighAccuracy)
{
    NGramAnalyzer an(3);
    for (int r = 0; r < 50; ++r)
        for (LineAddr l = 0; l < 10; ++l)
            an.observe(100 + l);
    for (unsigned n = 1; n <= 3; ++n) {
        EXPECT_GT(an.stats(n).matchFraction(), 0.9) << "n=" << n;
        EXPECT_GT(an.stats(n).correctFraction(), 0.95) << "n=" << n;
    }
}

TEST(NGramAnalyzer, AmbiguousSingleUnambiguousPair)
{
    // X is followed alternately by A-content and B-content:
    // single-address prediction is ~50 % correct, pair prediction
    // ~100 %.
    NGramAnalyzer an(2);
    for (int r = 0; r < 100; ++r) {
        // (P, X, A) then (Q, X, B): pairs (P,X)->A and (Q,X)->B are
        // deterministic; X alone alternates.
        an.observe(1);
        an.observe(100);
        an.observe(10);
        an.observe(2);
        an.observe(100);
        an.observe(20);
    }
    EXPECT_LT(an.stats(1).correctFraction(), 0.75);
    EXPECT_GT(an.stats(2).correctFraction(), 0.9);
}

TEST(NGramAnalyzer, MatchRateFallsWithDepth)
{
    // Random-ish sequence over a small alphabet: deeper n-grams
    // match less often.
    NGramAnalyzer an(4);
    Prng rng(3);
    for (int i = 0; i < 20000; ++i)
        an.observe(rng.below(32));
    for (unsigned n = 2; n <= 4; ++n) {
        EXPECT_LE(an.stats(n).matchFraction(),
                  an.stats(n - 1).matchFraction() + 1e-9)
            << "n=" << n;
    }
}

TEST(NLookupPrefetcher, CoversRepeatedStream)
{
    NLookupConfig cfg;
    cfg.maxDepth = 2;
    cfg.degree = 1;
    NLookupPrefetcher pf(cfg);
    MiniSim sim(pf);
    const std::vector<LineAddr> stream = {1, 2, 3, 4, 5, 6, 7, 8};
    sim.run(stream);
    const std::uint64_t covered_before = sim.covered();
    sim.run(stream);
    EXPECT_GE(sim.covered() - covered_before, 6u);
}

TEST(NLookupPrefetcher, DeeperBeatsShallowerOnNoise)
{
    // Isolated noise revisits corrupt the single-address index (the
    // last occurrence of a touched element now has a junk
    // successor) while leaving pair predictions intact -- depth 2
    // must cover more than depth 1.
    const auto run = [](unsigned depth) {
        NLookupConfig cfg;
        cfg.maxDepth = depth;
        cfg.degree = 1;
        NLookupPrefetcher pf(cfg);
        MiniSim sim(pf);
        Prng rng(21);
        std::vector<std::vector<LineAddr>> streams;
        for (int s = 0; s < 15; ++s) {
            std::vector<LineAddr> st;
            for (int k = 0; k < 7; ++k)
                st.push_back(100 * (s + 1) + k);
            streams.push_back(st);
        }
        for (int r = 0; r < 400; ++r) {
            sim.run(streams[rng.below(streams.size())]);
            // Several isolated noise touches of random elements.
            for (int n = 0; n < 6; ++n) {
                const auto &st = streams[rng.below(streams.size())];
                sim.demand(st[rng.below(st.size())]);
            }
        }
        return sim.coverage();
    };
    EXPECT_GT(run(2), run(1) + 0.02);
}

TEST(NLookupPrefetcher, DegreeControlsIssueDepth)
{
    NLookupConfig cfg;
    cfg.maxDepth = 1;
    cfg.degree = 3;
    NLookupPrefetcher pf(cfg);
    RecordingSink sink;
    for (LineAddr l : {10, 11, 12, 13, 14}) {
        TriggerEvent e;
        e.line = l;
        pf.onTrigger(e, sink);
    }
    sink.issues.clear();
    TriggerEvent e;
    e.line = 10;
    pf.onTrigger(e, sink);
    ASSERT_EQ(sink.issues.size(), 3u);
    EXPECT_EQ(sink.issues[0].line, 11u);
    EXPECT_EQ(sink.issues[2].line, 13u);
}

} // anonymous namespace
} // namespace domino
