/**
 * @file
 * Tests for the structural audit() methods: every table audits
 * clean after normal use, and each encoded invariant trips when the
 * structure is deliberately corrupted through its test peer.  Under
 * checks-enabled builds the simulators' sampled audits must also
 * catch a corruption mid-run (death test).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "analysis/coverage.h"
#include "common/check.h"
#include "common/prng.h"
#include "domino/domino_prefetcher.h"
#include "domino/eit.h"
#include "mem/cache.h"
#include "mem/mshr.h"
#include "mem/prefetch_buffer.h"
#include "prefetch/history.h"
#include "trace/trace_buffer.h"

namespace domino
{

/* Test peers: friend structs giving the audit tests (and nothing
 * else) access to the tables' internals so they can corrupt them. */

struct EitTestPeer
{
    static auto &table(EnhancedIndexTable &eit) { return eit.table; }
    static std::uint64_t
    rowIndex(const EnhancedIndexTable &eit, LineAddr tag)
    {
        return eit.rowIndex(tag);
    }
    /** The packed row block holding @p tag (null if untouched).
     *  Word 0..supers-1 is the tag lane. */
    static std::uint64_t *
    rowOf(EnhancedIndexTable &eit, LineAddr tag)
    {
        return eit.table[eit.rowIndex(tag)].get();
    }
    /** The first allocated row (for corruption tests that only need
     *  some occupied row). */
    static std::uint64_t *
    firstAllocatedRow(EnhancedIndexTable &eit)
    {
        for (auto &row : eit.table)
            if (row)
                return row.get();
        return nullptr;
    }
    static std::uint64_t *
    nextLane(EnhancedIndexTable &eit, std::uint64_t *row, unsigned s)
    {
        return eit.nextLaneOf(row, s);
    }
    static std::uint64_t *
    posLane(EnhancedIndexTable &eit, std::uint64_t *row, unsigned s)
    {
        return eit.posLaneOf(row, s);
    }
};

struct HistoryTestPeer
{
    static auto &buf(CircularHistory &ht) { return ht.buf; }
    static auto &startFlag(CircularHistory &ht) { return ht.startFlag; }
};

struct CacheTestPeer
{
    static auto &tags(SetAssocCache &cache) { return cache.tags; }
    static auto &ages(SetAssocCache &cache) { return cache.ages; }
    static constexpr std::uint8_t invalidAge =
        SetAssocCache::invalidAge;
    static std::uint32_t
    setIndex(const SetAssocCache &cache, LineAddr line)
    {
        return cache.setIndex(line);
    }
};

struct MshrTestPeer
{
    static auto &slots(MshrFile &mshrs) { return mshrs.slots; }
};

struct PrefetchBufferTestPeer
{
    static auto &entries(PrefetchBuffer &buffer)
    {
        return buffer.entries;
    }
    static auto &stat(PrefetchBuffer &buffer) { return buffer.stat; }
};

struct DominoTestPeer
{
    static EnhancedIndexTable &eit(DominoPrefetcher &d)
    {
        return d.eit;
    }
};

namespace
{

// ---------------------------------------------------------------
// EIT

EitConfig
smallEit()
{
    EitConfig cfg;
    cfg.rows = 64;
    cfg.supersPerRow = 2;
    cfg.entriesPerSuper = 3;
    return cfg;
}

EnhancedIndexTable
populatedEit()
{
    EnhancedIndexTable eit(smallEit());
    Prng rng(0xa0d17);
    for (int i = 0; i < 400; ++i)
        eit.update(rng.below(64), rng.below(64) + 100, i);
    return eit;
}

TEST(EitAudit, CleanAfterHeavyUse)
{
    EnhancedIndexTable eit = populatedEit();
    EXPECT_EQ(eit.audit(), "");
    EXPECT_EQ(eit.audit(/*ht_positions=*/400), "");
}

/** Second tag that lands in the same row as @p anchor. */
LineAddr
sameRowTag(EnhancedIndexTable &eit, LineAddr anchor)
{
    LineAddr other = anchor + 1;
    while (EitTestPeer::rowIndex(eit, other) !=
           EitTestPeer::rowIndex(eit, anchor)) {
        ++other;
    }
    return other;
}

TEST(EitAudit, CatchesDuplicateTags)
{
    EnhancedIndexTable eit(smallEit());
    eit.update(10, 11, 1);
    eit.update(sameRowTag(eit, 10), 12, 2);
    std::uint64_t *row = EitTestPeer::rowOf(eit, 10);
    row[1] = row[0];
    EXPECT_NE(eit.audit().find("duplicate super-entry tag"),
              std::string::npos);
}

TEST(EitAudit, CatchesMisplacedTag)
{
    EnhancedIndexTable eit(smallEit());
    eit.update(10, 11, 1);
    std::uint64_t *row = EitTestPeer::rowOf(eit, 10);
    // Find a tag that hashes to a different row and plant it here.
    LineAddr alien = 10;
    while (EitTestPeer::rowIndex(eit, alien) ==
           EitTestPeer::rowIndex(eit, 10)) {
        ++alien;
    }
    row[0] = alien;
    EXPECT_NE(eit.audit().find("hashes elsewhere"),
              std::string::npos);
}

TEST(EitAudit, CatchesEmptyTagLane)
{
    EnhancedIndexTable eit(smallEit());
    eit.update(10, 11, 1);
    // Blank the only live tag: the row block stays allocated with
    // its entry payload, but no way claims it.
    EitTestPeer::rowOf(eit, 10)[0] = invalidAddr;
    EXPECT_NE(eit.audit().find("empty tag lane"),
              std::string::npos);
}

TEST(EitAudit, CatchesTagLaneGap)
{
    // Three ways in one row so a hole can sit between live tags
    // (blanking the MRU way would read as an empty tag lane).
    EitConfig cfg = smallEit();
    cfg.rows = 1;
    cfg.supersPerRow = 3;
    EnhancedIndexTable eit(cfg);
    eit.update(1, 11, 1);
    eit.update(2, 12, 2);
    eit.update(3, 13, 3);
    // Punch a hole in the valid prefix: way 1 empty, way 2 live.
    EitTestPeer::rowOf(eit, 1)[1] = invalidAddr;
    EXPECT_NE(eit.audit().find("tag lane not contiguous"),
              std::string::npos);
}

TEST(EitAudit, CatchesEntryLaneGap)
{
    EnhancedIndexTable eit(smallEit());
    eit.update(10, 20, 1);
    eit.update(10, 21, 2);
    std::uint64_t *row = EitTestPeer::rowOf(eit, 10);
    // Two valid successors; blank the MRU one (position too, so the
    // hole is clean), leaving the second stranded behind it.
    EitTestPeer::nextLane(eit, row, 0)[0] = invalidAddr;
    EitTestPeer::posLane(eit, row, 0)[0] = 0;
    EXPECT_NE(eit.audit().find("entry lane not contiguous"),
              std::string::npos);
}

TEST(EitAudit, CatchesStaleHtPointerBehindEmptySlot)
{
    EnhancedIndexTable eit(smallEit());
    eit.update(10, 20, 5);
    std::uint64_t *row = EitTestPeer::rowOf(eit, 10);
    // A nonzero position under an empty next slot: the lanes
    // disagree about which entries exist.
    EitTestPeer::posLane(eit, row, 0)[1] = 7;
    EXPECT_NE(eit.audit().find("stale HT pointer"),
              std::string::npos);
}

TEST(EitAudit, CatchesEntriesBehindEmptyTagSlot)
{
    EnhancedIndexTable eit(smallEit());
    eit.update(10, 20, 1);
    std::uint64_t *row = EitTestPeer::rowOf(eit, 10);
    // Way 1's tag slot is empty, yet its entry lane claims a
    // successor: tag lane and entry lanes are inconsistent.
    EitTestPeer::nextLane(eit, row, 1)[0] = 33;
    EXPECT_NE(eit.audit().find("entry lanes behind an empty tag"),
              std::string::npos);
}

TEST(EitAudit, CatchesLiveSuperWithNoEntries)
{
    EnhancedIndexTable eit(smallEit());
    eit.update(10, 20, 1);
    std::uint64_t *row = EitTestPeer::rowOf(eit, 10);
    // The converse direction: a live tag whose entry lane is empty
    // (updates always install at least one entry).
    EitTestPeer::nextLane(eit, row, 0)[0] = invalidAddr;
    EitTestPeer::posLane(eit, row, 0)[0] = 0;
    EXPECT_NE(eit.audit().find("no entries"), std::string::npos);
}

TEST(EitAudit, CatchesDuplicateSuccessor)
{
    EnhancedIndexTable eit(smallEit());
    eit.update(10, 20, 1);
    eit.update(10, 21, 2);
    std::uint64_t *row = EitTestPeer::rowOf(eit, 10);
    std::uint64_t *nl = EitTestPeer::nextLane(eit, row, 0);
    nl[1] = nl[0];
    EXPECT_NE(eit.audit().find("duplicate successor"),
              std::string::npos);
}

TEST(EitAudit, CatchesTouchedCounterDrift)
{
    EnhancedIndexTable eit(smallEit());
    eit.update(10, 11, 1);
    // Free the row block behind the counter's back.
    EitTestPeer::table(eit)[EitTestPeer::rowIndex(eit, 10)].reset();
    EXPECT_NE(eit.audit().find("touched-row counter drifted"),
              std::string::npos);
}

TEST(EitAudit, CatchesHtPointerOutOfRange)
{
    EnhancedIndexTable eit(smallEit());
    eit.update(10, 11, /*pos=*/500);
    EXPECT_EQ(eit.audit(/*ht_positions=*/501), "");
    EXPECT_NE(eit.audit(/*ht_positions=*/500).find("out of range"),
              std::string::npos);
}

// ---------------------------------------------------------------
// History Table

TEST(HistoryAudit, CleanAcrossWraparound)
{
    CircularHistory ht(16, 4);
    for (std::uint64_t i = 0; i < 50; ++i)
        ht.append(1000 + i, i % 7 == 0);
    EXPECT_EQ(ht.audit(), "");
}

TEST(HistoryAudit, CatchesCorruptWindowEntry)
{
    CircularHistory ht(16, 4);
    for (std::uint64_t i = 0; i < 20; ++i)
        ht.append(1000 + i);
    HistoryTestPeer::buf(ht)[5] = invalidAddr;
    EXPECT_NE(ht.audit().find("retention window"),
              std::string::npos);
}

TEST(HistoryAudit, CatchesNonBooleanFlag)
{
    CircularHistory ht(16, 4);
    ht.append(1);
    HistoryTestPeer::startFlag(ht)[0] = 7;
    EXPECT_NE(ht.audit().find("non-boolean start flag"),
              std::string::npos);
}

TEST(HistoryAudit, CatchesShrunkenStorage)
{
    CircularHistory ht(16, 4);
    ht.append(1);
    HistoryTestPeer::buf(ht).resize(3);
    EXPECT_NE(ht.audit().find("does not match capacity"),
              std::string::npos);
}

// ---------------------------------------------------------------
// Set-associative cache

SetAssocCache
populatedCache()
{
    SetAssocCache cache(4 * 1024, 2);
    Prng rng(0xcac4e);
    for (int i = 0; i < 500; ++i) {
        const LineAddr line = rng.below(256);
        if (!cache.access(line))
            cache.fill(line);
    }
    return cache;
}

TEST(CacheAudit, CleanAfterHeavyUse)
{
    SetAssocCache cache = populatedCache();
    EXPECT_EQ(cache.audit(), "");
}

TEST(CacheAudit, CatchesDuplicateTag)
{
    SetAssocCache cache(4 * 1024, 2);
    // Two lines in the same set, then clone the tag.
    LineAddr a = 1, b = 2;
    while (CacheTestPeer::setIndex(cache, b) !=
           CacheTestPeer::setIndex(cache, a)) {
        ++b;
    }
    cache.fill(a);
    cache.fill(b);
    auto &tags = CacheTestPeer::tags(cache);
    auto &ages = CacheTestPeer::ages(cache);
    bool cloned = false;
    for (std::size_t i = 0; i < tags.size(); ++i) {
        if (ages[i] != CacheTestPeer::invalidAge && tags[i] == b) {
            tags[i] = a;
            cloned = true;
        }
    }
    ASSERT_TRUE(cloned);
    EXPECT_NE(cache.audit().find("duplicate tag"),
              std::string::npos);
}

TEST(CacheAudit, CatchesMisplacedTag)
{
    SetAssocCache cache = populatedCache();
    auto &tags = CacheTestPeer::tags(cache);
    auto &ages = CacheTestPeer::ages(cache);
    for (std::size_t i = 0; i < tags.size(); ++i) {
        if (ages[i] == CacheTestPeer::invalidAge)
            continue;
        // Move the tag until it hashes to some other set.
        const std::uint32_t home =
            CacheTestPeer::setIndex(cache, tags[i]);
        while (CacheTestPeer::setIndex(cache, tags[i]) == home)
            ++tags[i];
        break;
    }
    EXPECT_NE(cache.audit().find("different set"),
              std::string::npos);
}

TEST(CacheAudit, CatchesAgeOutOfRange)
{
    SetAssocCache cache = populatedCache();
    auto &ages = CacheTestPeer::ages(cache);
    for (auto &age : ages) {
        if (age != CacheTestPeer::invalidAge) {
            age = 0xfe;  // valid marker-wise, beyond assoc
            break;
        }
    }
    EXPECT_NE(cache.audit().find("age out of range"),
              std::string::npos);
}

TEST(CacheAudit, CatchesDuplicateAge)
{
    SetAssocCache cache = populatedCache();
    auto &ages = CacheTestPeer::ages(cache);
    // Find a set with both ways valid (2-way geometry) and clone
    // one age onto the other: the LRU order stops being total.
    bool planted = false;
    for (std::size_t i = 0; i + 1 < ages.size() && !planted;
         i += 2) {
        if (ages[i] != CacheTestPeer::invalidAge &&
            ages[i + 1] != CacheTestPeer::invalidAge) {
            ages[i + 1] = ages[i];
            planted = true;
        }
    }
    ASSERT_TRUE(planted);
    EXPECT_NE(cache.audit().find("duplicate age"),
              std::string::npos);
}

// ---------------------------------------------------------------
// MSHR file

TEST(MshrAudit, CleanAfterChurn)
{
    MshrFile mshrs(4);
    for (Cycles c = 0; c < 100; ++c) {
        mshrs.retire(c);
        mshrs.allocate(c % 7, c + 50);
    }
    EXPECT_EQ(mshrs.audit(), "");
}

TEST(MshrAudit, CatchesDuplicateLine)
{
    MshrFile mshrs(4);
    mshrs.allocate(1, 100);
    mshrs.allocate(2, 100);
    auto &slots = MshrTestPeer::slots(mshrs);
    slots[1].line = slots[0].line;
    EXPECT_NE(mshrs.audit().find("duplicate in-flight line"),
              std::string::npos);
}

TEST(MshrAudit, CatchesOverflowAndLifecycle)
{
    MshrFile mshrs(2);
    mshrs.allocate(1, 100);
    mshrs.allocate(2, 100);
    auto &slots = MshrTestPeer::slots(mshrs);
    slots.push_back(slots[0]);
    slots.back().line = 3;
    // Three slots now: both over capacity and more entries than
    // counted allocations; occupancy is reported first.
    EXPECT_NE(mshrs.audit().find("exceeds capacity"),
              std::string::npos);
    slots.pop_back();
    EXPECT_EQ(mshrs.audit(), "");
}

// ---------------------------------------------------------------
// Prefetch buffer

PrefetchBuffer
populatedBuffer()
{
    PrefetchBuffer buffer(8);
    for (LineAddr line = 0; line < 20; ++line)
        buffer.insert(100 + line, static_cast<std::uint32_t>(line));
    buffer.lookup(115);  // one hit (still resident: last 8 survive)
    return buffer;
}

TEST(PrefetchBufferAudit, CleanAfterChurn)
{
    PrefetchBuffer buffer = populatedBuffer();
    EXPECT_EQ(buffer.audit(), "");
}

TEST(PrefetchBufferAudit, CatchesDuplicateLine)
{
    PrefetchBuffer buffer = populatedBuffer();
    auto &entries = PrefetchBufferTestPeer::entries(buffer);
    ASSERT_GE(entries.size(), 2u);
    entries[1].line = entries[0].line;
    EXPECT_NE(buffer.audit().find("duplicate buffered line"),
              std::string::npos);
}

TEST(PrefetchBufferAudit, CatchesLifecycleImbalance)
{
    PrefetchBuffer buffer = populatedBuffer();
    // Drop an entry behind the stats' back: inserted no longer
    // equals hits + evicted-unused + buffered.
    PrefetchBufferTestPeer::entries(buffer).pop_back();
    EXPECT_NE(buffer.audit().find("lifecycle imbalance"),
              std::string::npos);
}

TEST(PrefetchBufferAudit, CatchesOverflow)
{
    PrefetchBuffer buffer = populatedBuffer();
    auto &entries = PrefetchBufferTestPeer::entries(buffer);
    auto &stat = PrefetchBufferTestPeer::stat(buffer);
    while (entries.size() <= buffer.capacity()) {
        entries.push_back(entries[0]);
        entries.back().line = 10'000 + entries.size();
        entries.back().lastUse = 1'000 + entries.size();
        ++stat.inserted;
    }
    EXPECT_NE(buffer.audit().find("exceeds capacity"),
              std::string::npos);
}

// ---------------------------------------------------------------
// Domino end to end

DominoConfig
smallDomino()
{
    DominoConfig cfg;
    cfg.eit.rows = 256;
    cfg.htEntries = 1 << 12;
    return cfg;
}

TraceBuffer
loopTrace(int laps, int stride)
{
    TraceBuffer trace;
    for (int lap = 0; lap < laps; ++lap)
        for (int i = 0; i < stride; ++i)
            trace.pushRead(byteOf(LineAddr(1000 + i)));
    return trace;
}

TEST(DominoAudit, CleanAfterReplayHeavyRun)
{
    DominoPrefetcher domino(smallDomino());
    TraceBuffer trace = loopTrace(20, 300);
    CoverageSimulator sim;
    sim.run(trace, &domino);
    EXPECT_EQ(domino.audit(), "");
}

TEST(DominoAudit, CatchesCorruptedEmbeddedEit)
{
    DominoPrefetcher domino(smallDomino());
    TraceBuffer trace = loopTrace(20, 300);
    CoverageSimulator sim;
    sim.run(trace, &domino);

    EnhancedIndexTable &eit = DominoTestPeer::eit(domino);
    ASSERT_GT(eit.touchedRows(), 0u);
    std::uint64_t *row = EitTestPeer::firstAllocatedRow(eit);
    ASSERT_NE(row, nullptr);
    // Blank the MRU tag: either the row goes tag-less or a live way
    // is stranded behind the hole -- both are tag-lane violations.
    row[0] = invalidAddr;
    const std::string report = domino.audit();
    EXPECT_NE(report.find("EIT:"), std::string::npos);
    EXPECT_NE(report.find("tag lane"), std::string::npos);
}

TEST(SimulatorAuditDeathTest, SampledAuditCatchesCorruptionMidRun)
{
    if constexpr (!checksEnabled) {
        GTEST_SKIP() << "sampled audits are compiled out of this "
                        "build (enable with -DDOMINO_CHECKS=ON)";
    }
    DominoPrefetcher domino(smallDomino());
    TraceBuffer warmup = loopTrace(4, 300);
    CoverageSimulator sim;
    sim.run(warmup, &domino);

    EnhancedIndexTable &eit = DominoTestPeer::eit(domino);
    ASSERT_GT(eit.touchedRows(), 0u);
    // Corrupt durably: a blanked tag self-repairs on the next
    // insert to the row (the hole becomes the victim way), but a
    // freed row block leaves the touched-row counter drifted no
    // matter what later updates do.
    bool freed = false;
    for (auto &row : EitTestPeer::table(eit)) {
        if (row) {
            row.reset();
            freed = true;
            break;
        }
    }
    ASSERT_TRUE(freed);

    // > 2048 further misses guarantee a sampled audit fires.
    TraceBuffer rest;
    for (LineAddr line = 1; line <= 5000; ++line)
        rest.pushRead(byteOf(line * 64));
    EXPECT_DEATH(
        {
            CoverageSimulator fresh;
            fresh.run(rest, &domino);
        },
        "touched-row counter drifted");
}

} // anonymous namespace
} // namespace domino
