/**
 * @file
 * Tests for the Sequitur grammar and the opportunity analysis:
 * reconstruction property tests, grammar invariants (digram
 * uniqueness, rule utility), compression behaviour, and the
 * opportunity/stream metrics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/prng.h"
#include "sequitur/opportunity.h"
#include "sequitur/sequitur.h"

namespace domino
{
namespace
{

std::vector<std::uint64_t>
feed(SequiturGrammar &g, const std::vector<std::uint64_t> &input)
{
    for (const auto s : input)
        g.push(s);
    return g.reconstruct();
}

TEST(Sequitur, EmptyGrammar)
{
    SequiturGrammar g;
    EXPECT_EQ(g.inputLength(), 0u);
    EXPECT_TRUE(g.reconstruct().empty());
    EXPECT_EQ(g.checkInvariants(), "");
}

TEST(Sequitur, SingleSymbol)
{
    SequiturGrammar g;
    g.push(42);
    EXPECT_EQ(g.reconstruct(), std::vector<std::uint64_t>{42});
    EXPECT_EQ(g.checkInvariants(), "");
}

TEST(Sequitur, ClassicAbcabc)
{
    // "abcabc" must form a rule for "abc" (via "ab" + c hierarchy
    // or directly); reconstruction must be exact and invariants
    // hold.
    SequiturGrammar g;
    const std::vector<std::uint64_t> in = {1, 2, 3, 1, 2, 3};
    EXPECT_EQ(feed(g, in), in);
    EXPECT_EQ(g.checkInvariants(), "");
    EXPECT_GT(g.liveRuleIds().size(), 1u);  // at least one rule
}

TEST(Sequitur, OverlappingPairs)
{
    // "aaa" has overlapping digrams that must NOT form a rule.
    SequiturGrammar g;
    const std::vector<std::uint64_t> in = {7, 7, 7};
    EXPECT_EQ(feed(g, in), in);
    EXPECT_EQ(g.checkInvariants(), "");
}

TEST(Sequitur, LongRunOfOneSymbol)
{
    SequiturGrammar g;
    const std::vector<std::uint64_t> in(64, 9);
    EXPECT_EQ(feed(g, in), in);
    EXPECT_EQ(g.checkInvariants(), "");
    // Heavy compression expected: the start rule must be much
    // shorter than the input.
    EXPECT_LT(g.ruleBody(0).size(), in.size() / 2);
}

TEST(Sequitur, RuleUtilityExpandsSingletons)
{
    // "abcdbcabcd": rules form and partially dissolve; the final
    // grammar must satisfy rule utility (every rule used >= 2x).
    SequiturGrammar g;
    const std::vector<std::uint64_t> in =
        {1, 2, 3, 4, 2, 3, 1, 2, 3, 4};
    EXPECT_EQ(feed(g, in), in);
    EXPECT_EQ(g.checkInvariants(), "");
}

TEST(Sequitur, ExpandedLengthMatchesInput)
{
    SequiturGrammar g;
    Prng rng(5);
    std::vector<std::uint64_t> in;
    for (int i = 0; i < 500; ++i)
        in.push_back(rng.below(20));
    feed(g, in);
    EXPECT_EQ(g.expandedLength(0), in.size());
}

TEST(Sequitur, RepeatedBlockCompresses)
{
    // 50 copies of a 10-symbol block: grammar must be tiny.
    SequiturGrammar g;
    std::vector<std::uint64_t> in;
    for (int r = 0; r < 50; ++r)
        for (std::uint64_t s = 0; s < 10; ++s)
            in.push_back(100 + s);
    EXPECT_EQ(feed(g, in), in);
    EXPECT_EQ(g.checkInvariants(), "");
    std::size_t grammar_size = 0;
    for (const int id : g.liveRuleIds())
        grammar_size += g.ruleBody(id).size();
    EXPECT_LT(grammar_size, in.size() / 5);
}

class SequiturPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(SequiturPropertyTest, RandomSequenceRoundTrips)
{
    // Property: for any input, reconstruct() == input and the two
    // grammar invariants hold.  Exercised across alphabet sizes and
    // lengths.
    const int seed = GetParam();
    Prng rng(static_cast<std::uint64_t>(seed));
    const std::size_t len = 200 + rng.below(2000);
    const std::uint64_t alphabet = 2 + rng.below(40);
    std::vector<std::uint64_t> in;
    for (std::size_t i = 0; i < len; ++i)
        in.push_back(rng.below(alphabet));

    SequiturGrammar g;
    EXPECT_EQ(feed(g, in), in) << "seed " << seed;
    EXPECT_EQ(g.checkInvariants(), "") << "seed " << seed;
}

TEST_P(SequiturPropertyTest, StreamySequenceRoundTrips)
{
    // Property test on miss-like inputs: repeated multi-symbol
    // streams with noise, mimicking the opportunity-analysis input.
    const int seed = GetParam();
    Prng rng(static_cast<std::uint64_t>(seed) ^ 0xbeef);
    std::vector<std::vector<std::uint64_t>> streams;
    for (int s = 0; s < 10; ++s) {
        std::vector<std::uint64_t> st;
        const std::size_t len = 2 + rng.below(12);
        for (std::size_t k = 0; k < len; ++k)
            st.push_back(1000 * (s + 1) + k);
        streams.push_back(st);
    }
    std::vector<std::uint64_t> in;
    for (int r = 0; r < 60; ++r) {
        const auto &st = streams[rng.below(streams.size())];
        in.insert(in.end(), st.begin(), st.end());
        if (rng.chance(0.3))
            in.push_back(rng.below(100));  // noise
    }

    SequiturGrammar g;
    EXPECT_EQ(feed(g, in), in) << "seed " << seed;
    EXPECT_EQ(g.checkInvariants(), "") << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequiturPropertyTest,
                         ::testing::Range(0, 20));

// --- opportunity analysis -------------------------------------------

TEST(Opportunity, EmptySequence)
{
    const OpportunityResult r = analyzeOpportunity({});
    EXPECT_EQ(r.totalMisses, 0u);
    EXPECT_EQ(r.coverage(), 0.0);
}

TEST(Opportunity, NoRepetitionNoCoverage)
{
    std::vector<LineAddr> misses;
    for (LineAddr l = 0; l < 500; ++l)
        misses.push_back(l);
    const OpportunityResult r = analyzeOpportunity(misses);
    EXPECT_EQ(r.coveredMisses, 0u);
    EXPECT_EQ(r.streamCount, 0u);
}

TEST(Opportunity, PerfectRepetitionHighCoverage)
{
    // A 16-miss stream repeated 20 times: everything after the
    // first occurrence is covered.
    std::vector<LineAddr> misses;
    for (int r = 0; r < 20; ++r)
        for (LineAddr l = 0; l < 16; ++l)
            misses.push_back(100 + l);
    const OpportunityResult res = analyzeOpportunity(misses);
    EXPECT_GT(res.coverage(), 0.85);
    EXPECT_GT(res.meanStreamLength(), 3.0);
}

TEST(Opportunity, MixedStreamsMatchExpectation)
{
    // Two streams replayed alternately with distinct content: the
    // opportunity must be high and the stream-length histogram
    // populated.
    std::vector<LineAddr> misses;
    for (int r = 0; r < 30; ++r) {
        for (LineAddr l = 0; l < 8; ++l)
            misses.push_back(1000 + l);
        for (LineAddr l = 0; l < 5; ++l)
            misses.push_back(2000 + l);
    }
    const OpportunityResult res = analyzeOpportunity(misses);
    EXPECT_GT(res.coverage(), 0.8);
    // Sequitur merges repeats hierarchically (rules of rules), so
    // the oracle stream count is far below the replay count.
    EXPECT_GT(res.streamCount, 3u);
    EXPECT_GT(res.streamLengths.totalCount(), 0u);
}

TEST(Opportunity, ColdMissesReduceCoverage)
{
    Prng rng(17);
    std::vector<LineAddr> repeated, with_cold;
    for (int r = 0; r < 40; ++r)
        for (LineAddr l = 0; l < 8; ++l)
            repeated.push_back(100 + l);
    LineAddr cold = 1'000'000;
    for (std::size_t i = 0; i < repeated.size(); ++i) {
        with_cold.push_back(repeated[i]);
        if (rng.chance(0.5))
            with_cold.push_back(cold++);
    }
    const double cov_repeated =
        analyzeOpportunity(repeated).coverage();
    const double cov_cold = analyzeOpportunity(with_cold).coverage();
    EXPECT_GT(cov_repeated, cov_cold + 0.15);
}

TEST(TopStreams, SurfacesHotStream)
{
    // One dominant 6-miss stream replayed 40 times plus a rare
    // 3-miss stream replayed 3 times.
    std::vector<LineAddr> misses;
    for (int r = 0; r < 40; ++r) {
        for (LineAddr l = 0; l < 6; ++l)
            misses.push_back(500 + l);
        if (r % 13 == 0)
            for (LineAddr l = 0; l < 3; ++l)
                misses.push_back(900 + l);
    }
    const auto streams = topStreams(misses, 3);
    ASSERT_FALSE(streams.empty());
    // The top stream must be (part of) the dominant one: its
    // prefix lies inside [500, 506).
    ASSERT_FALSE(streams[0].prefix.empty());
    EXPECT_GE(streams[0].prefix[0], 500u);
    EXPECT_LT(streams[0].prefix[0], 506u);
    EXPECT_GE(streams[0].occurrences, 2u);
}

TEST(TopStreams, EmptyAndBoundaries)
{
    EXPECT_TRUE(topStreams({}, 5).empty());
    EXPECT_TRUE(topStreams({1, 2, 3}, 0).empty());
    // No repetition: no rules, no streams.
    std::vector<LineAddr> unique;
    for (LineAddr l = 0; l < 100; ++l)
        unique.push_back(l);
    EXPECT_TRUE(topStreams(unique, 5).empty());
}

TEST(TopStreams, RespectsK)
{
    std::vector<LineAddr> misses;
    for (int r = 0; r < 20; ++r)
        for (int s = 0; s < 6; ++s)
            for (LineAddr l = 0; l < 4; ++l)
                misses.push_back(1000 * (s + 1) + l);
    const auto streams = topStreams(misses, 2);
    EXPECT_LE(streams.size(), 2u);
    ASSERT_GE(streams.size(), 1u);
    // Sorted by volume.
    for (std::size_t i = 1; i < streams.size(); ++i)
        EXPECT_GE(streams[i - 1].volume(), streams[i].volume());
}

} // anonymous namespace
} // namespace domino
