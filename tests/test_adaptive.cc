/**
 * @file
 * Tests for the adaptive prefetch-control subsystem (src/adaptive):
 * the AIMD degree controller's transition table, the throttle
 * wrapper's pass-through contract (disabled == unwrapped, for every
 * evaluated technique, call-for-call), its clamping and suppression
 * mechanics, audit() corruption detection through the test peer,
 * and scheduler-equivalence / repeat-run determinism of throttled
 * multi-core runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "adaptive/degree_controller.h"
#include "adaptive/throttled_prefetcher.h"
#include "analysis/factory.h"
#include "common/prng.h"
#include "multicore/multicore_sim.h"
#include "trace/replay_image.h"
#include "workloads/server_workload.h"

namespace domino
{

/** The friend backdoor: corrupts private state so audit() has
 *  something real to catch. */
struct ThrottleTestPeer
{
    static void
    setDegree(DegreeController &ctl, std::uint32_t deg)
    {
        ctl.deg = deg;
    }

    static void
    bumpEpochs(DegreeController &ctl)
    {
        ++ctl.nEpochs;
    }

    static void
    forceSuppress(DegreeController &ctl)
    {
        ctl.suppress = true;
    }

    static DegreeController &
    controller(ThrottledPrefetcher &pf)
    {
        return pf.ctl;
    }

    static void
    bumpIssuedTotal(ThrottledPrefetcher &pf)
    {
        ++pf.issuedTotal;
    }

    static void
    overfillEpoch(ThrottledPrefetcher &pf)
    {
        pf.epoch.triggers = pf.cfg.epochTriggers;
    }

    static void
    leakBudget(ThrottledPrefetcher &pf)
    {
        pf.budget = 1;
    }

    static void
    rewindChannelSamples(ThrottledPrefetcher &pf)
    {
        pf.epochStartNow = pf.lastNow + 1;
    }
};

namespace
{

ThrottleConfig
enabledConfig()
{
    ThrottleConfig cfg;
    cfg.enabled = true;
    return cfg;
}

ThrottleEpochStats
epochOf(std::uint64_t issued, std::uint64_t useful,
        std::uint64_t late = 0, std::uint32_t occupancyPm = 0)
{
    ThrottleEpochStats e;
    e.triggers = 256;
    e.attempted = issued;
    e.issued = issued;
    e.useful = useful;
    e.late = late;
    e.occupancyPm = occupancyPm;
    return e;
}

// --- DegreeController unit tests --------------------------------

TEST(DegreeController, StartsAtDegreeMax)
{
    const DegreeController ctl(enabledConfig());
    EXPECT_EQ(ctl.degree(), 8u);
    EXPECT_FALSE(ctl.suppressing());
    EXPECT_EQ(ctl.audit(), "");
}

TEST(DegreeController, InaccuracyHalvesDownToFloor)
{
    DegreeController ctl(enabledConfig());
    // accuracyPm = 100 < 400: multiplicative decrease each epoch.
    ctl.closeEpoch(epochOf(100, 10));
    EXPECT_EQ(ctl.degree(), 4u);
    ctl.closeEpoch(epochOf(100, 10));
    EXPECT_EQ(ctl.degree(), 2u);
    ctl.closeEpoch(epochOf(100, 10));
    EXPECT_EQ(ctl.degree(), 1u);
    ctl.closeEpoch(epochOf(100, 10));
    EXPECT_EQ(ctl.degree(), 1u) << "decrease stops at degreeMin";
    EXPECT_EQ(ctl.decreases(), 4u);
    EXPECT_EQ(ctl.audit(), "");
}

TEST(DegreeController, AccuracyGrowsAdditivelyToCeiling)
{
    DegreeController ctl(enabledConfig());
    ctl.closeEpoch(epochOf(100, 10));  // down to 4
    ctl.closeEpoch(epochOf(100, 10));  // down to 2
    ASSERT_EQ(ctl.degree(), 2u);
    // accuracyPm = 900 >= 700, latePm 0: +1 per epoch.
    for (unsigned i = 0; i < 10; ++i)
        ctl.closeEpoch(epochOf(100, 90));
    EXPECT_EQ(ctl.degree(), 8u) << "increase stops at degreeMax";
    EXPECT_EQ(ctl.increases(), 10u);
    EXPECT_EQ(ctl.epochs(),
              ctl.increases() + ctl.decreases() + ctl.holds());
    EXPECT_EQ(ctl.audit(), "");
}

TEST(DegreeController, PressureHalvesRegardlessOfAccuracy)
{
    DegreeController ctl(enabledConfig());
    // Perfect accuracy, but occupancy 900 > 850.
    ctl.closeEpoch(epochOf(100, 100, 0, 900));
    EXPECT_EQ(ctl.degree(), 4u);
    EXPECT_EQ(ctl.decreases(), 1u);
}

TEST(DegreeController, MiddlingAccuracyHolds)
{
    DegreeController ctl(enabledConfig());
    // accuracyPm = 500: neither < 400 nor >= 700.
    ctl.closeEpoch(epochOf(100, 50));
    EXPECT_EQ(ctl.degree(), 8u);
    EXPECT_EQ(ctl.holds(), 1u);
}

TEST(DegreeController, LatenessBlocksGrowth)
{
    DegreeController ctl(enabledConfig());
    ctl.closeEpoch(epochOf(100, 10));  // down to 4
    // Accurate but late: 80 of 90 hits late -> latePm 888 > 500.
    ctl.closeEpoch(epochOf(100, 90, 80));
    EXPECT_EQ(ctl.degree(), 4u);
    EXPECT_EQ(ctl.holds(), 1u);
}

TEST(DegreeController, ZeroIssuesCountAsAccurate)
{
    DegreeController ctl(enabledConfig());
    ctl.closeEpoch(epochOf(100, 10));  // down to 4
    // A quiet epoch (no issues) must not read as inaccurate; with
    // accuracyPm defaulting to 1000 the degree recovers.
    ctl.closeEpoch(epochOf(0, 0));
    EXPECT_EQ(ctl.degree(), 5u);
}

TEST(DegreeController, SuppressionOnlyAtFloorUnderPressure)
{
    ThrottleConfig cfg = enabledConfig();
    cfg.suppressMeta = true;
    DegreeController ctl(cfg);
    // Pressure above the floor: no suppression yet.
    ctl.closeEpoch(epochOf(100, 100, 0, 900));  // 8 -> 4
    ctl.closeEpoch(epochOf(100, 100, 0, 900));  // 4 -> 2
    EXPECT_FALSE(ctl.suppressing());
    ctl.closeEpoch(epochOf(100, 100, 0, 900));  // 2 -> 1
    EXPECT_TRUE(ctl.suppressing());
    EXPECT_EQ(ctl.audit(), "");
    // Pressure released: suppression disengages on the next epoch.
    ctl.closeEpoch(epochOf(100, 100));
    EXPECT_FALSE(ctl.suppressing());
}

TEST(DegreeController, SuppressionNeverEngagesWhenUnconfigured)
{
    DegreeController ctl(enabledConfig());
    for (unsigned i = 0; i < 6; ++i)
        ctl.closeEpoch(epochOf(100, 100, 0, 1000));
    EXPECT_EQ(ctl.degree(), 1u);
    EXPECT_FALSE(ctl.suppressing());
}

TEST(DegreeController, AuditCatchesCorruption)
{
    DegreeController ctl(enabledConfig());
    EXPECT_EQ(ctl.audit(), "");
    ThrottleTestPeer::setDegree(ctl, 99);
    EXPECT_NE(ctl.audit(), "") << "degree outside [min, max]";
    ThrottleTestPeer::setDegree(ctl, 8);
    EXPECT_EQ(ctl.audit(), "");
    ThrottleTestPeer::bumpEpochs(ctl);
    EXPECT_NE(ctl.audit(), "") << "transition counters desynced";
}

TEST(DegreeController, AuditCatchesUnconfiguredSuppression)
{
    DegreeController ctl(enabledConfig());
    ThrottleTestPeer::forceSuppress(ctl);
    EXPECT_NE(ctl.audit(), "");
}

// --- Wrapper pass-through (disabled == unwrapped) ---------------

/** Records every sink call, in order, with all arguments. */
struct CallRecorder : PrefetchSink
{
    using Call =
        std::tuple<bool, std::uint64_t, std::uint32_t, unsigned>;
    std::vector<Call> calls;

    void
    issue(LineAddr line, std::uint32_t stream_id,
          unsigned metadata_trips) override
    {
        calls.emplace_back(true, line, stream_id, metadata_trips);
    }

    void
    dropStream(std::uint32_t stream_id) override
    {
        calls.emplace_back(false, stream_id, stream_id, 0u);
    }
};

/** A miss-heavy trigger stream with recurring laps, so temporal
 *  techniques build history and replay. */
std::vector<TriggerEvent>
makeTriggers(std::uint64_t seed, std::size_t count)
{
    Prng rng(seed);
    std::vector<TriggerEvent> events;
    events.reserve(count);
    while (events.size() < count) {
        const LineAddr base = 1000 + rng.below(8) * 100;
        const std::size_t lap = 4 + rng.below(12);
        for (std::size_t i = 0; i < lap && events.size() < count;
             ++i) {
            TriggerEvent ev;
            ev.line = base + i;
            ev.pc = 0x400000 + (base % 7) * 4;
            events.push_back(ev);
        }
    }
    return events;
}

TEST(ThrottledPrefetcher, DisabledIsPassThroughForAllTechniques)
{
    const auto events = makeTriggers(0xad, 3000);
    for (const std::string &tech : evaluatedPrefetchers()) {
        SCOPED_TRACE(tech);
        FactoryConfig f;
        f.degree = 4;
        f.samplingProb = 0.5;
        f.seed = 0xfac;
        auto plain = makePrefetcher(tech, f);
        ThrottleConfig cfg;  // enabled == false
        ThrottledPrefetcher wrapped(makePrefetcher(tech, f), cfg);
        EXPECT_EQ(wrapped.name(), plain->name());

        CallRecorder a, b;
        // Mixed scalar and batched dispatch, same partitioning on
        // both sides: the disabled wrapper must forward verbatim.
        for (std::size_t i = 0; i < events.size();) {
            const std::size_t chunk =
                std::min<std::size_t>(1 + i % 7,
                                      events.size() - i);
            const std::span<const TriggerEvent> span(
                events.data() + i, chunk);
            plain->trainPredictMany(span, a);
            wrapped.trainPredictMany(span, b);
            i += chunk;
        }
        EXPECT_EQ(a.calls, b.calls);
        EXPECT_EQ(plain->metadata().readBlocks,
                  wrapped.metadata().readBlocks);
        EXPECT_EQ(plain->metadata().writeBlocks,
                  wrapped.metadata().writeBlocks);
        EXPECT_EQ(wrapped.clampedPrefetches(), 0u);
        EXPECT_EQ(wrapped.audit(), "");
    }
}

TEST(ThrottledPrefetcher, FactoryWrapsOnlyWhenEnabled)
{
    FactoryConfig f;
    f.seed = 0xfac;
    for (const std::string &tech : evaluatedPrefetchers()) {
        SCOPED_TRACE(tech);
        auto plain = makePrefetcher(tech, f);
        EXPECT_EQ(plain->name().find("+throttle"),
                  std::string::npos);
        FactoryConfig ft = f;
        ft.throttle.enabled = true;
        ft.throttle.degreeMax = 8;
        auto throttled = makePrefetcher(tech, ft);
        EXPECT_EQ(throttled->name(), plain->name() + "+throttle");
    }
}

// --- Clamping and suppression mechanics -------------------------

/** Scripted technique: issues `fanout` sequential lines on every
 *  trigger, so the wrapper's budget arithmetic is exactly
 *  observable. */
class FanoutPrefetcher final : public Prefetcher
{
  public:
    explicit FanoutPrefetcher(unsigned fanout) : fan(fanout) {}

    std::string name() const override { return "Fanout"; }

    void
    onTrigger(const TriggerEvent &event, PrefetchSink &sink) override
    {
        ++triggersSeen;
        for (unsigned i = 1; i <= fan; ++i)
            sink.issue(event.line + i, 0, 0);
    }

    unsigned fan;
    std::uint64_t triggersSeen = 0;
};

TEST(ThrottledPrefetcher, ClampsIssuesToControllerDegree)
{
    ThrottleConfig cfg = enabledConfig();
    cfg.epochTriggers = 16;
    ThrottledPrefetcher pf(std::make_unique<FanoutPrefetcher>(8),
                           cfg);
    CallRecorder sink;
    TriggerEvent miss;  // never a hit: accuracy 0, degree collapses
    for (std::uint64_t i = 0; i < 16 * 4; ++i) {
        miss.line = 10 * i;
        pf.onTrigger(miss, sink);
    }
    // Epochs closed: 0-accuracy epochs halve 8 -> 4 -> 2 -> 1.
    EXPECT_EQ(pf.currentDegree(), 1u);
    EXPECT_EQ(pf.controller().epochs(), 4u);
    // First epoch ran at degree 8 (nothing clamped); later epochs
    // clamp 8 attempts down to the current degree.
    EXPECT_GT(pf.clampedPrefetches(), 0u);
    std::uint64_t forwarded = sink.calls.size();
    EXPECT_EQ(forwarded + pf.clampedPrefetches(), 16u * 4u * 8u);
    EXPECT_EQ(pf.audit(), "");

    // At degree 1, exactly one of the 8 fanout issues survives.
    sink.calls.clear();
    miss.line = 999'999;
    pf.onTrigger(miss, sink);
    EXPECT_EQ(sink.calls.size(), 1u);
}

TEST(ThrottledPrefetcher, SuppressionWithholdsAlternateMisses)
{
    ThrottleConfig cfg = enabledConfig();
    cfg.epochTriggers = 16;
    cfg.suppressMeta = true;
    ThrottledPrefetcher pf(std::make_unique<FanoutPrefetcher>(8),
                           cfg);
    auto *fan =
        static_cast<FanoutPrefetcher *>(pf.innerPrefetcher());
    CallRecorder sink;
    // Saturated channel from the observer feed; perfect-accuracy
    // epochs would otherwise grow the degree.
    TriggerEvent miss;
    for (std::uint64_t i = 0; i < 16 * 8; ++i) {
        pf.observeChannel(1000 * (i + 1), 999 * (i + 1));
        miss.line = 10 * i;
        pf.onTrigger(miss, sink);
    }
    EXPECT_EQ(pf.currentDegree(), 1u);
    EXPECT_TRUE(pf.controller().suppressing());
    EXPECT_GT(pf.suppressedTriggers(), 0u);
    // Withheld triggers never reached the wrapped technique.
    EXPECT_EQ(fan->triggersSeen + pf.suppressedTriggers(),
              16u * 8u);
    EXPECT_EQ(pf.audit(), "");
}

TEST(ThrottledPrefetcher, AuditCatchesCounterCorruption)
{
    ThrottledPrefetcher pf(std::make_unique<FanoutPrefetcher>(4),
                           enabledConfig());
    CallRecorder sink;
    TriggerEvent miss;
    miss.line = 42;
    pf.onTrigger(miss, sink);
    EXPECT_EQ(pf.audit(), "");
    ThrottleTestPeer::bumpIssuedTotal(pf);
    EXPECT_NE(pf.audit(), "") << "issued + clamped != attempted";
}

TEST(ThrottledPrefetcher, AuditCatchesEpochAndChannelCorruption)
{
    const ThrottleConfig cfg = enabledConfig();
    {
        ThrottledPrefetcher pf(
            std::make_unique<FanoutPrefetcher>(4), cfg);
        ThrottleTestPeer::overfillEpoch(pf);
        EXPECT_NE(pf.audit(), "") << "open epoch at epoch length";
    }
    {
        ThrottledPrefetcher pf(
            std::make_unique<FanoutPrefetcher>(4), cfg);
        ThrottleTestPeer::leakBudget(pf);
        EXPECT_NE(pf.audit(), "") << "budget leaked";
    }
    {
        ThrottledPrefetcher pf(
            std::make_unique<FanoutPrefetcher>(4), cfg);
        ThrottleTestPeer::rewindChannelSamples(pf);
        EXPECT_NE(pf.audit(), "") << "channel samples backwards";
    }
    {
        ThrottledPrefetcher pf(
            std::make_unique<FanoutPrefetcher>(4), cfg);
        ThrottleTestPeer::setDegree(
            ThrottleTestPeer::controller(pf), 0);
        EXPECT_NE(pf.audit(), "") << "controller fault surfaces";
    }
}

// --- Throttled multi-core determinism ---------------------------

MultiCoreResult
runThrottled(unsigned cores, McScheduler scheduler,
             bool suppress = false)
{
    SystemConfig sys;
    sys.cores = cores;
    sys.llcBytes = 512 * 1024;
    sys.multicore.occupancyWindow = 2048;

    WorkloadParams wl;
    findWorkload("OLTP", wl);
    const TraceBuffer buf = generateTrace(wl, 7, 20000);
    const ReplayImage image(buf);

    FactoryConfig f;
    f.degree = 4;
    f.samplingProb = 0.5;
    f.seed = 7 ^ 0xfac;
    f.throttle.enabled = true;
    f.throttle.epochTriggers = 64;
    f.throttle.suppressMeta = suppress;
    PrefetcherSet set = makePrefetcherSet(
        "Domino", f, cores, MetadataScope::Private);

    std::vector<CoreBinding> bindings;
    for (unsigned c = 0; c < cores; ++c) {
        CoreBinding binding;
        binding.image = &image;
        binding.imageCore = c;
        binding.prefetcher = set.perCore[c];
        binding.observer = set.observers[c];
        binding.mlpFactor = wl.mlpFactor;
        binding.instPerAccess = wl.instPerAccess;
        bindings.push_back(binding);
    }
    MultiCoreSim sim(sys);
    MultiCoreResult result = sim.run(bindings, scheduler);
    for (const auto &p : set.owned)
        EXPECT_EQ(p->audit(), "");
    return result;
}

void
expectIdenticalResults(const MultiCoreResult &a,
                       const MultiCoreResult &b)
{
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t c = 0; c < a.cores.size(); ++c) {
        EXPECT_EQ(a.cores[c].accesses, b.cores[c].accesses);
        EXPECT_EQ(a.cores[c].cycles, b.cores[c].cycles);
        EXPECT_EQ(a.cores[c].covered, b.cores[c].covered);
        EXPECT_EQ(a.cores[c].uncovered, b.cores[c].uncovered);
        EXPECT_EQ(a.cores[c].lateCovered, b.cores[c].lateCovered);
        EXPECT_EQ(a.cores[c].queueCycles, b.cores[c].queueCycles);
        EXPECT_EQ(a.cores[c].channelBytes, b.cores[c].channelBytes);
        EXPECT_EQ(a.cores[c].metaQueueCycles,
                  b.cores[c].metaQueueCycles);
        EXPECT_EQ(a.cores[c].metaRequests, b.cores[c].metaRequests);
    }
    EXPECT_EQ(a.traffic.demandBytes, b.traffic.demandBytes);
    EXPECT_EQ(a.traffic.usefulPrefetchBytes,
              b.traffic.usefulPrefetchBytes);
    EXPECT_EQ(a.traffic.incorrectPrefetchBytes,
              b.traffic.incorrectPrefetchBytes);
    EXPECT_EQ(a.traffic.metadataReadBytes,
              b.traffic.metadataReadBytes);
    EXPECT_EQ(a.traffic.metadataUpdateBytes,
              b.traffic.metadataUpdateBytes);
    EXPECT_EQ(a.channelBusyCycles, b.channelBusyCycles);
    EXPECT_EQ(a.occupancyPm, b.occupancyPm);
    EXPECT_EQ(a.occupancyWindow, b.occupancyWindow);
}

TEST(ThrottledMulticore, SchedulersAgreeAndRunsRepeat)
{
    // The throttled wrapper adds feedback state to the dispatch
    // path; both schedulers must still agree with each other and
    // with a repeated run, at linear-scan and index-heap core
    // counts, with and without metadata suppression.
    for (unsigned cores : {2u, 4u, 16u}) {
        for (bool suppress : {false, true}) {
            SCOPED_TRACE("cores=" + std::to_string(cores) +
                         " suppress=" + std::to_string(suppress));
            const MultiCoreResult batched = runThrottled(
                cores, McScheduler::RunBatched, suppress);
            const MultiCoreResult reference = runThrottled(
                cores, McScheduler::ReferenceMinClock, suppress);
            expectIdenticalResults(batched, reference);
            const MultiCoreResult again = runThrottled(
                cores, McScheduler::RunBatched, suppress);
            expectIdenticalResults(batched, again);
        }
    }
}

TEST(ThrottledMulticore, ThrottleActuallyEngagesUnderContention)
{
    // A 16-core run over one contended channel must actually move
    // the controller: some wrapper must have closed epochs and
    // left degreeMax (otherwise the study measures nothing).
    SystemConfig sys;
    sys.cores = 16;
    sys.llcBytes = 512 * 1024;
    WorkloadParams wl;
    findWorkload("OLTP", wl);
    const TraceBuffer buf = generateTrace(wl, 11, 48000);
    const ReplayImage image(buf);

    FactoryConfig f;
    f.degree = 4;
    f.samplingProb = 0.5;
    f.seed = 11 ^ 0xfac;
    f.throttle.enabled = true;
    f.throttle.epochTriggers = 64;
    PrefetcherSet set = makePrefetcherSet(
        "Domino", f, sys.cores, MetadataScope::Private);
    std::vector<CoreBinding> bindings;
    for (unsigned c = 0; c < sys.cores; ++c) {
        CoreBinding binding;
        binding.image = &image;
        binding.imageCore = c;
        binding.prefetcher = set.perCore[c];
        binding.observer = set.observers[c];
        binding.mlpFactor = wl.mlpFactor;
        binding.instPerAccess = wl.instPerAccess;
        bindings.push_back(binding);
    }
    MultiCoreSim sim(sys);
    sim.run(bindings);

    std::uint64_t epochs = 0;
    bool moved = false;
    for (const auto &p : set.owned) {
        const auto *tp =
            static_cast<const ThrottledPrefetcher *>(p.get());
        epochs += tp->controller().epochs();
        moved = moved ||
            tp->currentDegree() < f.throttle.degreeMax ||
            tp->clampedPrefetches() > 0;
        EXPECT_EQ(tp->audit(), "");
    }
    EXPECT_GT(epochs, 0u);
    EXPECT_TRUE(moved);
}

} // anonymous namespace
} // namespace domino
