/**
 * @file
 * Unit tests for the MSHR file: allocation, merge, capacity,
 * time-based retirement, and its effect in the timing simulator.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "analysis/factory.h"
#include "common/prng.h"
#include "mem/mshr.h"
#include "sim/timing_sim.h"
#include "workloads/server_workload.h"

namespace domino
{
namespace
{

TEST(Mshr, AllocateAndRetire)
{
    MshrFile mshrs(4);
    EXPECT_TRUE(mshrs.allocate(1, 100));
    EXPECT_TRUE(mshrs.allocate(2, 200));
    EXPECT_EQ(mshrs.inFlight(), 2u);
    EXPECT_TRUE(mshrs.contains(1));
    EXPECT_FALSE(mshrs.contains(3));

    mshrs.retire(150);
    EXPECT_FALSE(mshrs.contains(1));
    EXPECT_TRUE(mshrs.contains(2));
    EXPECT_EQ(mshrs.inFlight(), 1u);
}

TEST(Mshr, MergesInFlightLine)
{
    MshrFile mshrs(4);
    EXPECT_TRUE(mshrs.allocate(1, 100));
    EXPECT_TRUE(mshrs.allocate(1, 300));  // merge, no new slot
    EXPECT_EQ(mshrs.inFlight(), 1u);
    EXPECT_EQ(mshrs.stats().merges, 1u);
    EXPECT_EQ(mshrs.stats().allocations, 1u);
}

TEST(Mshr, RejectsWhenFull)
{
    MshrFile mshrs(2);
    EXPECT_TRUE(mshrs.allocate(1, 100));
    EXPECT_TRUE(mshrs.allocate(2, 100));
    EXPECT_FALSE(mshrs.allocate(3, 100));
    EXPECT_EQ(mshrs.stats().rejections, 1u);
    // After retirement the slot frees up.
    mshrs.retire(100);
    EXPECT_TRUE(mshrs.allocate(3, 200));
}

TEST(Mshr, CapacityFloorOfOne)
{
    MshrFile mshrs(0);
    EXPECT_EQ(mshrs.capacity(), 1u);
    EXPECT_TRUE(mshrs.allocate(1, 10));
    EXPECT_FALSE(mshrs.allocate(2, 10));
}

TEST(Mshr, MergeOverflowChurn)
{
    // Sustained allocate/merge/reject/retire churn against a small
    // file, checked against a reference model of the same policy.
    MshrFile mshrs(8);
    Prng rng(321);
    std::vector<std::pair<LineAddr, Cycles>> model;
    std::uint64_t merges = 0, rejections = 0, allocations = 0;

    for (Cycles t = 0; t < 3000; t += 1 + rng.below(3)) {
        // Retire completed fills in both.
        mshrs.retire(t);
        for (std::size_t i = 0; i < model.size();) {
            if (model[i].second <= t) {
                model[i] = model.back();
                model.pop_back();
            } else {
                ++i;
            }
        }

        const LineAddr line = rng.below(24);
        const Cycles ready = t + 20 + rng.below(200);
        bool inModel = false;
        for (const auto &slot : model)
            inModel |= slot.first == line;
        const bool accepted = mshrs.allocate(line, ready);
        if (inModel) {
            EXPECT_TRUE(accepted);
            ++merges;
        } else if (model.size() >= 8) {
            EXPECT_FALSE(accepted);
            ++rejections;
        } else {
            EXPECT_TRUE(accepted);
            model.emplace_back(line, ready);
            ++allocations;
        }
        ASSERT_EQ(mshrs.inFlight(), model.size());
        ASSERT_EQ(mshrs.audit(), "");
    }

    EXPECT_GT(merges, 0u);
    EXPECT_GT(rejections, 0u);
    EXPECT_EQ(mshrs.stats().merges, merges);
    EXPECT_EQ(mshrs.stats().rejections, rejections);
    EXPECT_EQ(mshrs.stats().allocations, allocations);
}

TEST(Mshr, TimingSimThrottlesWithFewMshrs)
{
    // With a single MSHR, nearly every prefetch is dropped; the
    // prefetcher's timing benefit must shrink accordingly.
    WorkloadParams wl;
    findWorkload("OLTP", wl);

    const auto ipc_with_mshrs = [&](unsigned mshrs) {
        SystemConfig sys;
        sys.cores = 1;
        sys.llcBytes = 512 * 1024;
        sys.l1Mshrs = mshrs;
        ServerWorkload src(wl, 1, 60000);
        FactoryConfig f;
        f.degree = 4;
        f.samplingProb = 0.5;
        auto pf = makePrefetcher("Domino", f);
        CoreSetup setup;
        setup.source = &src;
        setup.prefetcher = pf.get();
        setup.mlpFactor = wl.mlpFactor;
        setup.instPerAccess = wl.instPerAccess;
        std::vector<CoreSetup> setups = {setup};
        TimingSimulator sim(sys);
        return sim.run(setups).systemIpc();
    };
    EXPECT_GT(ipc_with_mshrs(32), ipc_with_mshrs(1));
}

} // anonymous namespace
} // namespace domino
