/**
 * @file
 * The batched == scalar contract of
 * Prefetcher::trainPredictMany(): for every technique -- and in
 * particular for the ones that override the default loop (Domino,
 * STMS, ISB, VLDP) -- feeding a trigger stream through the batched
 * entry point must produce exactly the sink-call sequence of the
 * per-event onTrigger() loop, for any batch partitioning.  The
 * intra-batch metadata software prefetch the overrides add is a
 * pure cache hint, so it must never show through here.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/factory.h"
#include "common/prng.h"
#include "prefetch/prefetcher.h"

namespace domino
{
namespace
{

/** Records every sink call, in order, with all arguments. */
struct RecordingSink : PrefetchSink
{
    /** (is_issue, line-or-stream, stream_id, metadata_trips). */
    using Call =
        std::tuple<bool, std::uint64_t, std::uint32_t, unsigned>;
    std::vector<Call> calls;

    void
    issue(LineAddr line, std::uint32_t stream_id,
          unsigned metadata_trips) override
    {
        calls.emplace_back(true, line, stream_id, metadata_trips);
    }

    void
    dropStream(std::uint32_t stream_id) override
    {
        calls.emplace_back(false, stream_id, stream_id, 0u);
    }
};

/** A miss-heavy pseudo-trigger stream with recurring sequences so
 *  the temporal techniques actually replay (issue + dropStream). */
std::vector<TriggerEvent>
makeTriggers(std::uint64_t seed, std::size_t count)
{
    Prng rng(seed);
    std::vector<TriggerEvent> events;
    events.reserve(count);
    while (events.size() < count) {
        // A short repeating loop with occasional random breaks:
        // temporal history forms, streams start, streams die.
        const LineAddr base = 1000 + rng.below(8) * 100;
        const std::size_t lap = 4 + rng.below(12);
        for (std::size_t i = 0; i < lap && events.size() < count;
             ++i) {
            TriggerEvent ev;
            ev.line = base + i;
            ev.pc = 0x400000 + (base % 7) * 4;
            events.push_back(ev);
        }
        if (rng.below(4) == 0 && events.size() < count) {
            TriggerEvent noise;
            noise.line = 50'000 + rng.below(10'000);
            noise.pc = 0x500000 + rng.below(64) * 4;
            events.push_back(noise);
        }
    }
    return events;
}

FactoryConfig
smallConfig()
{
    FactoryConfig cfg;
    cfg.htEntries = 1 << 12;
    cfg.eitRows = 1 << 10;
    return cfg;
}

class BatchedApiTest : public ::testing::TestWithParam<
                           std::tuple<std::string, std::uint64_t>>
{};

TEST_P(BatchedApiTest, BatchedMatchesScalarLoop)
{
    const auto &[name, seed] = GetParam();
    const std::vector<TriggerEvent> events =
        makeTriggers(seed, 3000);

    std::unique_ptr<Prefetcher> scalar =
        makePrefetcher(name, smallConfig());
    std::unique_ptr<Prefetcher> batched =
        makePrefetcher(name, smallConfig());
    ASSERT_NE(scalar, nullptr);
    ASSERT_NE(batched, nullptr);

    RecordingSink want;
    for (const TriggerEvent &ev : events)
        scalar->onTrigger(ev, want);

    // Feed the same stream in randomly-sized batches (including
    // size-1 and empty ones) -- the partitioning must not matter.
    RecordingSink got;
    Prng rng(seed ^ 0xba7c4);
    std::span<const TriggerEvent> rest(events);
    while (!rest.empty()) {
        const std::size_t take = std::min<std::size_t>(
            rest.size(), rng.below(17));
        batched->trainPredictMany(rest.subspan(0, take), got);
        rest = rest.subspan(take);
    }

    EXPECT_EQ(got.calls, want.calls) << name << " seed " << seed;
    const MetadataStats sm = scalar->metadata();
    const MetadataStats bm = batched->metadata();
    EXPECT_EQ(bm.readBlocks, sm.readBlocks);
    EXPECT_EQ(bm.writeBlocks, sm.writeBlocks);
    EXPECT_EQ(batched->audit(), "");
}

TEST_P(BatchedApiTest, WarmMetadataHasNoObservableEffect)
{
    const auto &[name, seed] = GetParam();
    const std::vector<TriggerEvent> events =
        makeTriggers(seed, 1500);

    std::unique_ptr<Prefetcher> plain =
        makePrefetcher(name, smallConfig());
    std::unique_ptr<Prefetcher> warmed =
        makePrefetcher(name, smallConfig());
    ASSERT_NE(plain, nullptr);
    ASSERT_NE(warmed, nullptr);

    RecordingSink want;
    RecordingSink got;
    for (std::size_t i = 0; i < events.size(); ++i) {
        plain->onTrigger(events[i], want);
        // Spray hints around, including for events that never come.
        warmed->warmMetadata(events[i].line, events[i].pc);
        if (i + 1 < events.size())
            warmed->warmMetadata(events[i + 1].line,
                                 events[i + 1].pc);
        warmed->warmMetadata(events[i].line + 12345, 0);
        warmed->onTrigger(events[i], got);
    }
    EXPECT_EQ(got.calls, want.calls) << name << " seed " << seed;
    EXPECT_EQ(warmed->audit(), "");
}

INSTANTIATE_TEST_SUITE_P(
    OverridingTechniques, BatchedApiTest,
    ::testing::Combine(
        // Every trainPredictMany/warmMetadata override, plus one
        // default-implementation technique as a control.
        ::testing::Values("Domino", "STMS", "ISB", "VLDP",
                          "NextLine"),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{7})),
    [](const auto &info) {
        return std::get<0>(info.param) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

} // anonymous namespace
} // namespace domino
