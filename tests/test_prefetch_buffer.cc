/**
 * @file
 * Unit tests for the 32-block prefetch buffer: LRU eviction,
 * overprediction accounting, stream invalidation, timing metadata.
 */

#include <gtest/gtest.h>

#include "mem/prefetch_buffer.h"

namespace domino
{
namespace
{

TEST(PrefetchBuffer, InsertAndHit)
{
    PrefetchBuffer buf(4);
    EXPECT_TRUE(buf.insert(100, 7, 55, 18));
    EXPECT_TRUE(buf.contains(100));

    const auto hit = buf.lookup(100);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.streamId, 7u);
    EXPECT_EQ(hit.readyCycle, 55u);
    EXPECT_EQ(hit.altLatency, 18u);
    // A hit removes the entry.
    EXPECT_FALSE(buf.contains(100));
    EXPECT_EQ(buf.stats().hits, 1u);
    EXPECT_EQ(buf.stats().evictedUnused, 0u);
}

TEST(PrefetchBuffer, MissReturnsNoHit)
{
    PrefetchBuffer buf(4);
    EXPECT_FALSE(buf.lookup(1).hit);
}

TEST(PrefetchBuffer, DuplicatesDropped)
{
    PrefetchBuffer buf(4);
    EXPECT_TRUE(buf.insert(1));
    EXPECT_FALSE(buf.insert(1));
    EXPECT_EQ(buf.stats().duplicateDrops, 1u);
    EXPECT_EQ(buf.size(), 1u);
}

TEST(PrefetchBuffer, LruEvictionCountsUnused)
{
    PrefetchBuffer buf(2);
    buf.insert(1);
    buf.insert(2);
    buf.insert(3);  // evicts 1, never used
    EXPECT_FALSE(buf.contains(1));
    EXPECT_TRUE(buf.contains(2));
    EXPECT_TRUE(buf.contains(3));
    EXPECT_EQ(buf.stats().evictedUnused, 1u);
}

TEST(PrefetchBuffer, StreamInvalidation)
{
    PrefetchBuffer buf(8);
    buf.insert(1, 10);
    buf.insert(2, 10);
    buf.insert(3, 20);
    buf.invalidateStream(10);
    EXPECT_FALSE(buf.contains(1));
    EXPECT_FALSE(buf.contains(2));
    EXPECT_TRUE(buf.contains(3));
    EXPECT_EQ(buf.stats().evictedUnused, 2u);
}

TEST(PrefetchBuffer, FlushCountsRemaining)
{
    PrefetchBuffer buf(8);
    buf.insert(1);
    buf.insert(2);
    buf.lookup(1);  // used
    buf.flush();
    EXPECT_EQ(buf.stats().evictedUnused, 1u);
    EXPECT_EQ(buf.size(), 0u);
}

TEST(PrefetchBuffer, EvictionInvariant)
{
    // inserted == hits + evictedUnused + resident, always.
    PrefetchBuffer buf(4);
    for (LineAddr l = 0; l < 100; ++l) {
        buf.insert(l);
        if (l % 3 == 0)
            buf.lookup(l);
    }
    const auto &s = buf.stats();
    EXPECT_EQ(s.inserted, s.hits + s.evictedUnused + buf.size());
}

TEST(PrefetchBuffer, CapacityNeverExceeded)
{
    PrefetchBuffer buf(32);
    for (LineAddr l = 0; l < 1000; ++l)
        buf.insert(l);
    EXPECT_EQ(buf.size(), 32u);
}

} // anonymous namespace
} // namespace domino
