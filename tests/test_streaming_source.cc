/**
 * @file
 * Tests for the out-of-core streaming substrate: the streamed write
 * path must produce byte-identical files to the resident writer, a
 * StreamingTraceSource must yield the TraceView record sequence
 * exactly (whole-trace and per-shard), simulations driven from a
 * streaming cursor must match their resident-image runs, and the
 * TraceCache disk tier must spill once and reuse across requests --
 * the determinism contract extended to disk
 * (docs/TRACE_FORMAT.md, DESIGN.md "Out-of-core substrate").
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "multicore/multicore_sim.h"
#include "trace/replay_image.h"
#include "trace/streaming_source.h"
#include "trace/trace_cache.h"
#include "trace/trace_io.h"
#include "workloads/server_workload.h"

namespace domino
{

namespace
{

TraceBuffer
testTrace(std::uint64_t seed, std::uint64_t accesses)
{
    WorkloadParams wl;
    findWorkload("OLTP", wl);
    return generateTrace(wl, seed, accesses);
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    const std::streamoff bytes = is.tellg();
    is.seekg(0);
    std::vector<char> out(static_cast<std::size_t>(bytes));
    is.read(out.data(), bytes);
    return out;
}

TEST(TraceIoStreamed, WriteStreamedMatchesWriteTraceByteForByte)
{
    const TraceBuffer trace = testTrace(3, 4097);
    const std::string resident = "/tmp/domino_test_ws_res.domtrace";
    const std::string streamed = "/tmp/domino_test_ws_str.domtrace";
    ASSERT_TRUE(writeTrace(resident, trace).ok);

    TraceBuffer source = trace;
    std::uint64_t count = 0;
    ASSERT_TRUE(writeTraceStreamed(streamed, source, &count).ok);
    EXPECT_EQ(count, trace.size());
    // The on-disk layout must not betray how it was produced.
    EXPECT_EQ(slurp(resident), slurp(streamed));
    std::remove(resident.c_str());
    std::remove(streamed.c_str());
}

TEST(StreamingSource, YieldsTraceViewSequenceExactly)
{
    const TraceBuffer trace = testTrace(5, 3000);
    const std::string path = "/tmp/domino_test_stream_seq.domtrace";
    ASSERT_TRUE(writeTrace(path, trace).ok);

    // A deliberately tiny buffer forces many refills.
    StreamingTraceSource src;
    ASSERT_TRUE(src.open(path, 64).ok);
    EXPECT_EQ(src.size(), trace.size());
    EXPECT_EQ(src.shardSize(), trace.size());

    for (int pass = 0; pass < 2; ++pass) {
        Access got, want;
        TraceBuffer replay = trace;
        std::size_t i = 0;
        while (replay.next(want)) {
            ASSERT_TRUE(src.next(got)) << "record " << i;
            EXPECT_EQ(got.pc, want.pc);
            EXPECT_EQ(got.addr, want.addr);
            EXPECT_EQ(got.isWrite, want.isWrite);
            ++i;
        }
        EXPECT_FALSE(src.next(got));
        EXPECT_EQ(src.position(), trace.size());
        EXPECT_EQ(src.audit(), "");
        src.reset(); // second pass must replay identically
    }
    std::remove(path.c_str());
}

TEST(StreamingSource, ShardMatchesReplayCursorDealing)
{
    const TraceBuffer trace = testTrace(7, 5000);
    const ReplayImage image(trace);
    const std::string path = "/tmp/domino_test_stream_shard.domtrace";
    ASSERT_TRUE(writeTrace(path, trace).ok);

    for (unsigned cores : {1u, 2u, 3u, 4u}) {
        for (std::uint32_t chunk : {1u, 7u, 64u, 6000u}) {
            for (unsigned core = 0; core < cores; ++core) {
                StreamingTraceSource src;
                ASSERT_TRUE(
                    src.openShard(path, cores, core, chunk, 32).ok);
                ReplayCursor cursor(image, cores, core, chunk);
                std::size_t idx = 0;
                std::size_t n = 0;
                Access got;
                while (cursor.next(idx)) {
                    ASSERT_TRUE(src.next(got))
                        << cores << "x" << chunk << " core " << core
                        << " record " << n;
                    EXPECT_EQ(got.pc, trace[idx].pc);
                    EXPECT_EQ(got.addr, trace[idx].addr);
                    ++n;
                }
                EXPECT_FALSE(src.next(got));
                EXPECT_EQ(src.shardSize(), n);
                EXPECT_EQ(src.audit(), "");
            }
        }
    }
    std::remove(path.c_str());
}

TEST(StreamingSource, UnopenedAndInvalidSourcesFailCleanly)
{
    StreamingTraceSource src;
    Access a;
    EXPECT_FALSE(src.next(a));
    EXPECT_FALSE(src.ok());
    EXPECT_EQ(src.size(), 0u);
    EXPECT_EQ(src.audit(), "");

    EXPECT_FALSE(src.open("/nonexistent/trace.domtrace").ok);
    const std::string path = "/tmp/domino_test_stream_bad.domtrace";
    ASSERT_TRUE(writeTrace(path, testTrace(1, 100)).ok);
    EXPECT_FALSE(src.openShard(path, 2, 2, 4).ok); // core >= cores
    EXPECT_FALSE(src.openShard(path, 0, 0, 4).ok);
    EXPECT_FALSE(src.openShard(path, 2, 0, 0).ok);
    EXPECT_FALSE(src.open(path, 0).ok); // zero-record buffer
    std::remove(path.c_str());
}

TEST(StreamingSource, ZeroRecordBufferRejectedWithClearError)
{
    // The documented minimum buffer is 1 record (streaming_source.h:
    // a zero-record buffer could never make refill progress), and
    // the CLI layer enforces the same bound for --stream-chunk.
    const std::string path = "/tmp/domino_test_stream_zb.domtrace";
    ASSERT_TRUE(writeTrace(path, testTrace(2, 200)).ok);

    StreamingTraceSource src;
    const IoResult whole = src.open(path, 0);
    EXPECT_FALSE(whole.ok);
    EXPECT_NE(whole.error.find("zero-record"), std::string::npos);
    EXPECT_FALSE(src.ok());

    const IoResult shard = src.openShard(path, 2, 1, 4, 0);
    EXPECT_FALSE(shard.ok);
    EXPECT_NE(shard.error.find("zero-record"), std::string::npos);
    EXPECT_FALSE(src.ok());

    // The rejected open must leave the source reusable: the
    // smallest legal buffer (1 record) still streams everything.
    ASSERT_TRUE(src.open(path, 1).ok);
    Access a;
    std::uint64_t n = 0;
    while (src.next(a))
        ++n;
    EXPECT_EQ(n, src.size());
    EXPECT_EQ(src.audit(), "");
    std::remove(path.c_str());
}

TEST(StreamingSource, CoverageMatchesResidentImageRun)
{
    const TraceBuffer trace = testTrace(11, 6000);
    const ReplayImage image(trace);
    const std::string path = "/tmp/domino_test_stream_cov.domtrace";
    ASSERT_TRUE(writeTrace(path, trace).ok);

    FactoryConfig f;
    f.degree = 4;
    f.seed = 11 ^ 0xfac;
    for (const std::string &tech : evaluatedPrefetchers()) {
        auto resident_pf = makePrefetcher(tech, f);
        CoverageSimulator resident_sim;
        const CoverageResult resident =
            resident_sim.runMany(image, {resident_pf.get()}).front();

        auto streamed_pf = makePrefetcher(tech, f);
        StreamingTraceSource src;
        ASSERT_TRUE(src.open(path, 128).ok);
        CoverageSimulator streamed_sim;
        const CoverageResult streamed =
            streamed_sim.runMany(src, {streamed_pf.get()}).front();
        EXPECT_EQ(src.audit(), "");

        EXPECT_EQ(resident.covered, streamed.covered) << tech;
        EXPECT_EQ(resident.uncovered, streamed.uncovered) << tech;
        EXPECT_EQ(resident.issued, streamed.issued) << tech;
        EXPECT_EQ(resident.overpredictions, streamed.overpredictions)
            << tech;
    }
    std::remove(path.c_str());
}

TEST(StreamingSource, MultiCoreSimMatchesResidentImageRun)
{
    const TraceBuffer trace = testTrace(13, 6000);
    const ReplayImage image(trace);
    const std::string path = "/tmp/domino_test_stream_mc.domtrace";
    ASSERT_TRUE(writeTrace(path, trace).ok);

    SystemConfig sys;
    sys.cores = 4;
    sys.llcBytes = 256 * 1024;

    const auto run = [&](bool stream) {
        FactoryConfig f;
        f.degree = 4;
        f.seed = 13 ^ 0xfac;
        PrefetcherSet set = makePrefetcherSet(
            "Domino", f, sys.cores, MetadataScope::Private);
        std::vector<StreamingTraceSource> shards(sys.cores);
        std::vector<CoreBinding> bindings;
        for (unsigned c = 0; c < sys.cores; ++c) {
            CoreBinding b;
            if (stream) {
                EXPECT_TRUE(shards[c]
                                .openShard(path, sys.cores, c,
                                           sys.multicore.shardChunk,
                                           64)
                                .ok);
                b.source = &shards[c];
            } else {
                b.image = &image;
                b.imageCore = c;
            }
            b.prefetcher = set.perCore[c];
            bindings.push_back(b);
        }
        MultiCoreSim sim(sys);
        return sim.run(bindings);
    };

    const MultiCoreResult resident = run(false);
    const MultiCoreResult streamed = run(true);
    ASSERT_EQ(resident.cores.size(), streamed.cores.size());
    for (std::size_t c = 0; c < resident.cores.size(); ++c) {
        EXPECT_EQ(resident.cores[c].cycles, streamed.cores[c].cycles)
            << "core " << c;
        EXPECT_EQ(resident.cores[c].covered,
                  streamed.cores[c].covered)
            << "core " << c;
        EXPECT_EQ(resident.cores[c].uncovered,
                  streamed.cores[c].uncovered)
            << "core " << c;
    }
    EXPECT_EQ(resident.traffic.totalBytes(),
              streamed.traffic.totalBytes());
    std::remove(path.c_str());
}

TEST(TraceCacheDiskTier, SpillsOnceAndReusesAcrossRequests)
{
    const std::string dir = "/tmp/domino_test_disk_tier";
    std::filesystem::remove_all(dir);

    WorkloadParams wl;
    findWorkload("OLTP", wl);
    const auto factory = [&]() -> std::unique_ptr<AccessSource> {
        return std::make_unique<ServerWorkload>(wl, 17, 2000);
    };

    TraceCache cache;
    StreamingTraceSource src;
    // Disabled tier refuses rather than silently going resident.
    EXPECT_FALSE(cache.stream("k", factory, src).ok);

    cache.setSpillDir(dir);
    ASSERT_TRUE(cache.stream("k", factory, src).ok);
    EXPECT_EQ(cache.spills(), 1u);
    EXPECT_EQ(cache.diskHits(), 0u);

    // Same key again: the in-process plane memoises the path.
    StreamingTraceSource again;
    ASSERT_TRUE(cache.stream("k", factory, again).ok);
    EXPECT_EQ(cache.spills(), 1u);

    // A fresh cache over the same dir (a sibling process) reuses
    // the published file instead of regenerating.
    TraceCache sibling;
    sibling.setSpillDir(dir);
    StreamingTraceSource reused;
    ASSERT_TRUE(sibling.stream("k", factory, reused).ok);
    EXPECT_EQ(sibling.spills(), 0u);
    EXPECT_EQ(sibling.diskHits(), 1u);

    // The streamed records equal a direct generation.
    ServerWorkload direct(wl, 17, 2000);
    Access got, want;
    while (direct.next(want)) {
        ASSERT_TRUE(reused.next(got));
        EXPECT_EQ(got.pc, want.pc);
        EXPECT_EQ(got.addr, want.addr);
        EXPECT_EQ(got.isWrite, want.isWrite);
    }
    EXPECT_FALSE(reused.next(got));

    std::filesystem::remove_all(dir);
}

TEST(TraceCacheDiskTier, ForeignSidecarTriggersRegeneration)
{
    const std::string dir = "/tmp/domino_test_disk_vet";
    std::filesystem::remove_all(dir);

    WorkloadParams wl;
    findWorkload("OLTP", wl);
    const auto factory = [&]() -> std::unique_ptr<AccessSource> {
        return std::make_unique<ServerWorkload>(wl, 19, 500);
    };

    TraceCache cache;
    cache.setSpillDir(dir);
    std::string path;
    ASSERT_TRUE(cache.tracePath("vet-key", factory, path).ok);
    EXPECT_EQ(cache.spills(), 1u);

    // Corrupt the sidecar: a hash-named file whose key does not
    // match must not be trusted (hash collisions, foreign dirs).
    {
        std::ofstream os(path + ".key", std::ios::trunc);
        os << "some-other-key";
    }
    TraceCache fresh;
    fresh.setSpillDir(dir);
    std::string path2;
    ASSERT_TRUE(fresh.tracePath("vet-key", factory, path2).ok);
    EXPECT_EQ(path2, path);
    EXPECT_EQ(fresh.spills(), 1u); // regenerated, not trusted
    EXPECT_EQ(fresh.diskHits(), 0u);

    std::filesystem::remove_all(dir);
}

TEST(TraceCacheDiskTier, ImagePlaneReloadsSpilledImage)
{
    const std::string dir = "/tmp/domino_test_disk_image";
    std::filesystem::remove_all(dir);

    WorkloadParams wl;
    findWorkload("OLTP", wl);
    const auto generate = [&] { return generateTrace(wl, 23, 1500); };

    TraceCache cache;
    cache.setSpillDir(dir);
    const auto built = cache.image("img-key", generate);
    EXPECT_EQ(cache.spills(), 1u);

    // A sibling cache must load the spilled DOMIMAGE byte-equal
    // instead of regenerating the workload.
    TraceCache sibling;
    sibling.setSpillDir(dir);
    const auto reloaded = sibling.image("img-key", generate);
    EXPECT_EQ(sibling.diskHits(), 1u);
    EXPECT_EQ(sibling.generations(), 1u); // image plane only
    EXPECT_EQ(built->auditAgainst(*reloaded), "");

    std::filesystem::remove_all(dir);
}

} // anonymous namespace

} // namespace domino
