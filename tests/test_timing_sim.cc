/**
 * @file
 * Tests for the timing simulator: cycle accounting, speedup
 * directionality, timeliness (metadata-trip) effects, traffic
 * accounting, and multi-core interleaving.
 */

#include <gtest/gtest.h>

#include "analysis/factory.h"
#include "sim/timing_sim.h"
#include "workloads/server_workload.h"

namespace domino
{
namespace
{

SystemConfig
scaledSystem()
{
    SystemConfig sys;
    sys.cores = 2;
    sys.llcBytes = 512 * 1024;  // scaled (see bench docs)
    return sys;
}

TimingResult
runWorkload(const std::string &tech, unsigned cores,
            std::uint64_t accesses, const SystemConfig &sys,
            double sampling = 0.5)
{
    WorkloadParams wl;
    findWorkload("OLTP", wl);
    std::vector<std::unique_ptr<ServerWorkload>> sources;
    std::vector<std::unique_ptr<Prefetcher>> prefetchers;
    std::vector<CoreSetup> setups;
    for (unsigned c = 0; c < cores; ++c) {
        sources.push_back(std::make_unique<ServerWorkload>(
            wl, 1 + c, accesses));
        CoreSetup setup;
        setup.source = sources.back().get();
        if (!tech.empty()) {
            FactoryConfig f;
            f.degree = 4;
            f.samplingProb = sampling;
            prefetchers.push_back(makePrefetcher(tech, f));
            setup.prefetcher = prefetchers.back().get();
        }
        setup.mlpFactor = wl.mlpFactor;
        setup.instPerAccess = wl.instPerAccess;
        setups.push_back(setup);
    }
    TimingSimulator sim(sys);
    return sim.run(setups);
}

TEST(TimingSim, BaselineProducesSaneIpc)
{
    const SystemConfig sys = scaledSystem();
    const TimingResult r = runWorkload("", 2, 30000, sys);
    ASSERT_EQ(r.cores.size(), 2u);
    for (const auto &c : r.cores) {
        EXPECT_GT(c.instructions, 0u);
        EXPECT_GT(c.cycles, c.instructions / 4);  // 4-wide bound
        EXPECT_GT(c.ipc(), 0.01);
        EXPECT_LT(c.ipc(), 4.0);
    }
    EXPECT_GT(r.traffic.demandBytes, 0u);
}

TEST(TimingSim, CoverageImprovesIpc)
{
    const SystemConfig sys = scaledSystem();
    const TimingResult base = runWorkload("", 2, 60000, sys);
    const TimingResult dom = runWorkload("Domino", 2, 60000, sys);
    EXPECT_GT(dom.speedupOver(base), 1.0);
}

TEST(TimingSim, PracticalDominoBeatsNaive)
{
    // The one-round-trip first prefetch must buy measurable
    // timeliness over the naive two-trip design, all else equal.
    const SystemConfig sys = scaledSystem();
    WorkloadParams wl;
    findWorkload("OLTP", wl);

    const auto run = [&](bool naive) {
        std::vector<std::unique_ptr<ServerWorkload>> sources;
        std::vector<std::unique_ptr<Prefetcher>> prefetchers;
        std::vector<CoreSetup> setups;
        for (unsigned c = 0; c < 2; ++c) {
            sources.push_back(std::make_unique<ServerWorkload>(
                wl, 1 + c, 60000));
            FactoryConfig f;
            f.degree = 4;
            f.samplingProb = 0.5;
            f.naiveDomino = naive;
            prefetchers.push_back(makePrefetcher("Domino", f));
            CoreSetup setup;
            setup.source = sources.back().get();
            setup.prefetcher = prefetchers.back().get();
            setup.mlpFactor = wl.mlpFactor;
            setup.instPerAccess = wl.instPerAccess;
            setups.push_back(setup);
        }
        TimingSimulator sim(sys);
        return sim.run(setups);
    };
    const TimingResult practical = run(false);
    const TimingResult naive = run(true);
    EXPECT_GT(practical.systemIpc(), naive.systemIpc());
}

TEST(TimingSim, TrafficBreakdownPopulated)
{
    const SystemConfig sys = scaledSystem();
    const TimingResult r = runWorkload("STMS", 2, 40000, sys);
    EXPECT_GT(r.traffic.demandBytes, 0u);
    EXPECT_GT(r.traffic.usefulPrefetchBytes, 0u);
    EXPECT_GT(r.traffic.incorrectPrefetchBytes, 0u);
    EXPECT_GT(r.traffic.metadataReadBytes, 0u);
    EXPECT_GT(r.traffic.metadataUpdateBytes, 0u);
    EXPECT_GT(r.bandwidthGBs(sys.mem.coreGhz), 0.0);
}

TEST(TimingSim, StmsTrafficExceedsDomino)
{
    // Figure 15's headline: STMS moves more off-chip bytes.
    const SystemConfig sys = scaledSystem();
    const TimingResult stms = runWorkload("STMS", 2, 60000, sys,
                                          0.125);
    const TimingResult dom = runWorkload("Domino", 2, 60000, sys,
                                         0.125);
    EXPECT_GT(stms.traffic.incorrectPrefetchBytes,
              dom.traffic.incorrectPrefetchBytes);
}

TEST(TimingSim, HighMlpReducesPrefetchGain)
{
    // The same workload with a higher MLP factor gains less from
    // prefetching (Web Search / Media Streaming in the paper).
    const SystemConfig sys = scaledSystem();
    WorkloadParams wl;
    findWorkload("OLTP", wl);

    const auto speedup_at = [&](double mlp) {
        const auto run = [&](bool with_pf) {
            std::vector<std::unique_ptr<ServerWorkload>> sources;
            std::vector<std::unique_ptr<Prefetcher>> prefetchers;
            std::vector<CoreSetup> setups;
            sources.push_back(std::make_unique<ServerWorkload>(
                wl, 1, 60000));
            CoreSetup setup;
            setup.source = sources.back().get();
            if (with_pf) {
                FactoryConfig f;
                f.degree = 4;
                f.samplingProb = 0.5;
                prefetchers.push_back(makePrefetcher("Domino", f));
                setup.prefetcher = prefetchers.back().get();
            }
            setup.mlpFactor = mlp;
            setup.instPerAccess = wl.instPerAccess;
            setups.push_back(setup);
            TimingSimulator sim(sys);
            return sim.run(setups);
        };
        const TimingResult base = run(false);
        const TimingResult pf = run(true);
        return pf.speedupOver(base);
    };
    EXPECT_GT(speedup_at(1.1), speedup_at(3.0));
}

TEST(TimingSim, AggregatesAcrossCores)
{
    const SystemConfig sys = scaledSystem();
    const TimingResult r = runWorkload("", 2, 20000, sys);
    EXPECT_EQ(r.totalInstructions(),
              r.cores[0].instructions + r.cores[1].instructions);
    EXPECT_EQ(r.totalCycles(),
              r.cores[0].cycles + r.cores[1].cycles);
    EXPECT_NEAR(r.systemIpc(),
                static_cast<double>(r.totalInstructions()) /
                    static_cast<double>(r.totalCycles()),
                1e-12);
}

} // anonymous namespace
} // namespace domino
