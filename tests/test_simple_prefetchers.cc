/**
 * @file
 * Unit tests for the simple baselines: next-line, per-PC stride,
 * the first-order Markov prefetcher, and the Blue Gene/Q-style
 * list prefetcher, including the paper's Section I claim that
 * simple designs are ineffective on pointer-chasing server misses.
 */

#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "analysis/factory.h"
#include "prefetch/list.h"
#include "prefetch/markov.h"
#include "prefetch/next_line.h"
#include "prefetch/stride.h"
#include "test_util.h"
#include "workloads/server_workload.h"

namespace domino
{
namespace
{

using test::MiniSim;
using test::RecordingSink;

void
trigger(Prefetcher &pf, RecordingSink &sink, LineAddr line,
        Addr pc = 0)
{
    TriggerEvent e;
    e.line = line;
    e.pc = pc;
    pf.onTrigger(e, sink);
}

// --- next-line -----------------------------------------------------

TEST(NextLine, IssuesSequentialLines)
{
    NextLinePrefetcher pf(3);
    RecordingSink sink;
    trigger(pf, sink, 100);
    ASSERT_EQ(sink.issues.size(), 3u);
    EXPECT_EQ(sink.issues[0].line, 101u);
    EXPECT_EQ(sink.issues[2].line, 103u);
}

// --- stride --------------------------------------------------------

TEST(Stride, DetectsConstantStride)
{
    StridePrefetcher pf(StrideConfig{2, 256});
    RecordingSink sink;
    // Same PC, stride +3 lines: steady after two confirmations.
    trigger(pf, sink, 10, 7);
    trigger(pf, sink, 13, 7);
    sink.issues.clear();
    trigger(pf, sink, 16, 7);
    ASSERT_EQ(sink.issues.size(), 2u);
    EXPECT_EQ(sink.issues[0].line, 19u);
    EXPECT_EQ(sink.issues[1].line, 22u);
}

TEST(Stride, NoPrefetchWhileTransient)
{
    StridePrefetcher pf(StrideConfig{2, 256});
    RecordingSink sink;
    trigger(pf, sink, 10, 7);
    trigger(pf, sink, 13, 7);  // first stride observation
    // Only the steady state prefetches; the two training accesses
    // must not have issued anything.
    EXPECT_TRUE(sink.issues.empty());
}

TEST(Stride, BreaksOnIrregularPattern)
{
    StridePrefetcher pf(StrideConfig{2, 256});
    RecordingSink sink;
    trigger(pf, sink, 10, 7);
    trigger(pf, sink, 13, 7);
    trigger(pf, sink, 16, 7);  // steady, prefetches
    sink.issues.clear();
    trigger(pf, sink, 99, 7);  // pattern broken
    EXPECT_TRUE(sink.issues.empty());
}

TEST(Stride, PcsTrackedIndependently)
{
    StridePrefetcher pf(StrideConfig{1, 256});
    RecordingSink sink;
    // PC 1 strides by +1, PC 2 by +10, interleaved.
    for (int k = 0; k < 3; ++k) {
        trigger(pf, sink, 100 + k, 1);
        trigger(pf, sink, 500 + 10 * k, 2);
    }
    sink.issues.clear();
    trigger(pf, sink, 103, 1);
    ASSERT_EQ(sink.issues.size(), 1u);
    EXPECT_EQ(sink.issues[0].line, 104u);
    sink.issues.clear();
    trigger(pf, sink, 530, 2);
    ASSERT_EQ(sink.issues.size(), 1u);
    EXPECT_EQ(sink.issues[0].line, 540u);
}

TEST(Stride, NegativeStrideSupported)
{
    StridePrefetcher pf(StrideConfig{1, 256});
    RecordingSink sink;
    trigger(pf, sink, 100, 7);
    trigger(pf, sink, 95, 7);
    sink.issues.clear();
    trigger(pf, sink, 90, 7);
    ASSERT_EQ(sink.issues.size(), 1u);
    EXPECT_EQ(sink.issues[0].line, 85u);
}

TEST(Stride, IneffectiveOnPointerChasing)
{
    // The paper's Section I claim, pinned: stride coverage on the
    // OLTP-like workload is negligible.
    FactoryConfig f;
    f.degree = 4;
    auto pf = makePrefetcher("Stride", f);
    WorkloadParams wl;
    findWorkload("OLTP", wl);
    ServerWorkload src(wl, 1, 80000);
    CoverageSimulator sim;
    EXPECT_LT(sim.run(src, pf.get()).coverage(), 0.05);
}

// --- markov --------------------------------------------------------

TEST(Markov, LearnsSuccessors)
{
    MarkovPrefetcher pf(MarkovConfig{2, 0});
    RecordingSink sink;
    trigger(pf, sink, 1);
    trigger(pf, sink, 2);
    trigger(pf, sink, 3);
    sink.issues.clear();
    trigger(pf, sink, 1);
    ASSERT_EQ(sink.issues.size(), 1u);
    EXPECT_EQ(sink.issues[0].line, 2u);
}

TEST(Markov, KeepsMultipleSuccessorsMruFirst)
{
    MarkovPrefetcher pf(MarkovConfig{2, 0});
    RecordingSink sink;
    // 1 -> 2, then 1 -> 5: both remembered, 5 more recent.
    trigger(pf, sink, 1);
    trigger(pf, sink, 2);
    trigger(pf, sink, 1);
    trigger(pf, sink, 5);
    sink.issues.clear();
    trigger(pf, sink, 1);
    ASSERT_EQ(sink.issues.size(), 2u);
    EXPECT_EQ(sink.issues[0].line, 5u);
    EXPECT_EQ(sink.issues[1].line, 2u);
}

TEST(Markov, FanOutBounded)
{
    MarkovPrefetcher pf(MarkovConfig{2, 0});
    RecordingSink sink;
    // Five distinct successors of 1: only the two most recent kept.
    for (LineAddr succ : {10, 20, 30, 40, 50}) {
        trigger(pf, sink, 1);
        trigger(pf, sink, succ);
    }
    sink.issues.clear();
    trigger(pf, sink, 1);
    ASSERT_EQ(sink.issues.size(), 2u);
    EXPECT_EQ(sink.issues[0].line, 50u);
    EXPECT_EQ(sink.issues[1].line, 40u);
}

TEST(Markov, TableCapacityBounded)
{
    MarkovPrefetcher pf(MarkovConfig{2, 16});
    RecordingSink sink;
    for (LineAddr l = 0; l < 200; ++l)
        trigger(pf, sink, l);
    EXPECT_LE(pf.trainedAddresses(), 17u);
}

TEST(Markov, NoReplayDepth)
{
    // Markov covers at most `successors` ahead per trigger; a long
    // stream still misses when the fan-out cannot keep pace with a
    // deeper prefetch degree -- the structural gap to streaming
    // designs like Domino.
    MarkovPrefetcher markov(MarkovConfig{1, 0});
    MiniSim sim(markov);
    const std::vector<LineAddr> stream = {1, 2, 3, 4, 5, 6, 7, 8};
    sim.run(stream);
    const std::uint64_t covered_before = sim.covered();
    sim.run(stream);
    // Fan-out 1 chains one-ahead on every trigger: covers the tail
    // but can never run ahead of the demand stream.
    EXPECT_GE(sim.covered() - covered_before, 6u);
    EXPECT_LE(sim.issuedCount(), 2 * stream.size());
}

// --- list (Blue Gene/Q style) ---------------------------------------

TEST(List, RecordsAndReplaysRegion)
{
    ListPrefetcher pf(ListConfig{});
    MiniSim sim(pf);
    const std::vector<LineAddr> region = {1, 2, 3, 4, 5, 6};
    // First pass records (head 1 starts a region).
    sim.run(region);
    // A fresh head seals the list, then replaying the region must
    // cover its tail from the recorded list.
    sim.demand(999);
    const std::uint64_t covered_before = sim.covered();
    sim.run(region);
    EXPECT_GE(sim.covered() - covered_before, 4u);
    EXPECT_GE(pf.recordedLists(), 1u);
}

TEST(List, ResynchronisesAfterDeviation)
{
    ListPrefetcher pf(ListConfig{4, 8, 64, 1 << 16});
    MiniSim sim(pf);
    const std::vector<LineAddr> region = {1, 2, 3, 4, 5, 6, 7, 8};
    sim.run(region);
    sim.demand(999);  // seal
    sim.run(region);  // arm a clean replay pass
    sim.demand(998);  // seal again
    // Deviant replay: skip elements 2 and 3; the window must pull
    // the pointer forward at 4 and keep covering 5..8.
    const std::vector<LineAddr> deviant = {1, 4, 5, 6, 7, 8};
    const std::uint64_t covered_before = sim.covered();
    sim.run(deviant);
    EXPECT_GE(sim.covered() - covered_before, 4u);
}

TEST(List, NoReplayWithoutRecordedList)
{
    ListPrefetcher pf(ListConfig{});
    RecordingSink sink;
    trigger(pf, sink, 42);
    trigger(pf, sink, 43);
    EXPECT_TRUE(sink.issues.empty());
}

TEST(List, LongRegionSplitsIntoChainedLists)
{
    // A region longer than maxListLength is split into several
    // lists (hardware list splitting); replay chains across them,
    // so the long region is still mostly covered.
    ListPrefetcher pf(ListConfig{4, 8, 8, 1 << 16});
    MiniSim sim(pf);
    std::vector<LineAddr> region;
    for (LineAddr l = 0; l < 40; ++l)
        region.push_back(100 + l);
    sim.run(region);
    sim.demand(999);
    EXPECT_GE(pf.recordedLists(), 4u);  // ~40/8 splits
    const std::uint64_t covered_before = sim.covered();
    sim.run(region);
    EXPECT_GE(sim.covered() - covered_before, 25u);
}

} // anonymous namespace
} // namespace domino
